// A realistic scenario: a sweep of kernels (stencils, blocked updates,
// variable-distance loops) run through the parallelizer, with wall-clock
// timing of sequential vs. thread-pool execution — the "automatic
// parallelization in an FPT-like compiler" use case from the paper's
// introduction.
#include <chrono>
#include <iomanip>
#include <iostream>

#include "core/parallelizer.h"
#include "core/suite.h"

using namespace vdep;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  const intlin::i64 n = 60;  // ~14k iterations per 2-deep kernel
  ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  core::PdmParallelizer::Options opts;
  opts.emit_c = false;
  core::PdmParallelizer parallelizer(opts);

  std::cout << std::left << std::setw(22) << "kernel" << std::setw(9)
            << "doall" << std::setw(9) << "classes" << std::setw(11)
            << "items" << std::setw(12) << "t_seq(ms)" << std::setw(12)
            << "t_par(ms)" << "speedup\n";

  for (const core::NamedNest& c : core::paper_suite(n)) {
    core::Report r = parallelizer.analyze(c.nest);

    exec::ArrayStore ref(c.nest);
    ref.fill_pattern();
    exec::ArrayStore par = ref;

    auto t0 = Clock::now();
    exec::run_sequential(c.nest, ref);
    double t_seq = seconds_since(t0);

    t0 = Clock::now();
    exec::run_parallel(c.nest, r.plan, par, pool);
    double t_par = seconds_since(t0);

    if (!(ref == par)) {
      std::cerr << "FATAL: " << c.name << " diverged!\n";
      return 1;
    }

    std::cout << std::left << std::setw(22) << c.name << std::setw(9)
              << r.doall_loops << std::setw(9) << r.partition_classes
              << std::setw(11) << r.work_items << std::setw(12) << std::fixed
              << std::setprecision(2) << t_seq * 1e3 << std::setw(12)
              << t_par * 1e3 << std::setprecision(2) << t_seq / t_par << "\n";
  }
  std::cout << "\nall kernels verified against sequential execution.\n";
  return 0;
}
