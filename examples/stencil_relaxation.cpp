// A realistic scenario: a sweep of kernels (stencils, blocked updates,
// variable-distance loops) run through the parallelizer, with wall-clock
// timing of sequential vs. thread-pool execution — the "automatic
// parallelization in an FPT-like compiler" use case from the paper's
// introduction.
#include <chrono>
#include <iomanip>
#include <iostream>

#include "api/vdep.h"
#include "core/suite.h"
#include "exec/interpreter.h"

using namespace vdep;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  const intlin::i64 n = 60;  // ~14k iterations per 2-deep kernel
  ThreadPool pool(std::max(2u, std::thread::hardware_concurrency()));
  // One Compiler session across the sweep: every kernel is analyzed once,
  // no matter how many sizes would be run through it.
  Compiler compiler;

  std::cout << std::left << std::setw(22) << "kernel" << std::setw(9)
            << "doall" << std::setw(9) << "classes" << std::setw(11)
            << "items" << std::setw(12) << "t_seq(ms)" << std::setw(12)
            << "t_par(ms)" << "speedup\n";

  for (const core::NamedNest& c : core::paper_suite(n)) {
    CompiledLoop loop = compiler.compile(c.nest).value();
    exec::RunStats measured = loop.measure();

    exec::ArrayStore ref(c.nest);
    ref.fill_pattern();
    exec::ArrayStore par = ref;

    // Exact arithmetic: kernels whose values outgrow int64 at this size
    // (the wavefront is binomial in n) refuse to wrap. The overflow comes
    // back as a typed kOverflow diagnostic — print it and move on; any
    // other error kind is a real failure.
    auto t0 = Clock::now();
    Expected<exec::ArrayStore*> seq = try_invoke([&] {
      exec::run_sequential(c.nest, ref);
      return &ref;
    });
    if (!seq) {
      if (seq.error().kind != ErrorKind::kOverflow) {
        std::cerr << "FATAL: " << c.name << ": " << seq.error().to_string()
                  << "\n";
        return 1;
      }
      std::cout << std::left << std::setw(22) << c.name
                << "checked-overflow diagnostic at n=" << n << ": "
                << seq.error().message << "\n";
      continue;
    }
    double t_seq = seconds_since(t0);

    t0 = Clock::now();
    ExecReport run =
        loop.execute(ExecPolicy{}.mode(ExecMode::kMaterialized), par, pool)
            .value();
    double t_par = seconds_since(t0);

    if (!(ref == par)) {
      std::cerr << "FATAL: " << c.name << " diverged!\n";
      return 1;
    }
    (void)run;

    std::cout << std::left << std::setw(22) << c.name << std::setw(9)
              << loop.plan().doall_loops << std::setw(9)
              << loop.plan().partition_classes << std::setw(11)
              << measured.work_items << std::setw(12) << std::fixed
              << std::setprecision(2) << t_seq * 1e3 << std::setw(12)
              << t_par * 1e3 << std::setprecision(2) << t_seq / t_par << "\n";
  }
  std::cout << "\nall kernels verified against sequential execution.\n";
  return 0;
}
