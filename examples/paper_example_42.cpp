// Paper Section 4.2 walkthrough (full-rank pseudo distance matrix).
//
// The loop's distances satisfy d1 - 2*d2 = 4 (variable!), the PDM is
// [[2,1],[0,2]] with det 4, and Theorem 2 splits the square iteration space
// into 4 independent sub-spaces (Figure 5) whose offsets are *skewed* by
// the t1*h12 coupling term. Also exports the ISDGs as Graphviz files.
#include <fstream>
#include <iostream>

#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/isdg.h"
#include "exec/verify.h"
#include "trans/planner.h"

using namespace vdep;

int main() {
  const intlin::i64 n = 10;
  loopir::LoopNest nest = core::example42(n);

  std::cout << "== original loop (paper 4.2, reconstructed) ==\n"
            << nest.to_string() << "\n";

  dep::Pdm pdm = dep::compute_pdm(nest);
  std::cout << pdm.to_string() << "  det = " << pdm.determinant() << "\n\n";

  trans::TransformPlan plan = trans::plan_transform(pdm);
  const trans::Partitioning& part = *plan.partition;
  std::cout << "partitioning into " << part.num_classes()
            << " residue classes of the lattice " <<
      part.lattice_basis().to_string() << "\n";

  // Show the skewed offsets (Figure 5): iterations (0,0) and (2,1) share a
  // class because (2,1) is a lattice generator; (2,0) does not.
  std::cout << "class of (0,0): " << part.class_id({0, 0})
            << ", class of (2,1): " << part.class_id({2, 1})
            << ", class of (2,0): " << part.class_id({2, 0}) << "\n\n";

  // Figure 4 evidence: every dependence arrow jumps a stride >= 2.
  exec::Isdg g = exec::build_isdg(nest);
  intlin::Vec stride = g.min_abs_stride();
  std::cout << "ISDG: " << g.node_count() << " nodes, " << g.edge_count()
            << " edges; min |stride| per dim = " << intlin::to_string(stride)
            << " (paper: always > 1 along i1 and/or i2)\n";

  // Figure 5 evidence: the 4 classes are fully independent.
  exec::Schedule sched = exec::build_schedule(nest, plan);
  std::cout << "classes: " << sched.parallelism()
            << ", cross-class dependence edges: " << g.cross_item_edges(sched)
            << "\n";
  for (std::size_t k = 0; k < sched.items.size(); ++k)
    std::cout << "  class " << k << ": " << sched.items[k].size()
              << " iterations\n";

  exec::VerifyResult v = exec::verify_schedule(nest, sched);
  std::cout << "trace verification: " << (v.ok ? "legal" : "ILLEGAL") << "\n";

  // Export the ISDG for plotting (neato -n2 renders the layout).
  std::ofstream("example42_isdg.dot") << g.to_dot();
  std::cout << "wrote example42_isdg.dot\n";
  return v.ok ? 0 : 1;
}
