// Quickstart: parse a loop from the mini-DSL, compute the pseudo distance
// matrix, derive the legal parallelizing transformation, print the report
// and the generated OpenMP C code, and prove semantic equivalence by
// running both versions.
//
//   $ ./quickstart
#include <iostream>

#include "core/parallelizer.h"
#include "dsl/parser.h"

int main() {
  // The paper's Example 4.1 (reconstructed): variable dependence distances
  // — every distance is an even multiple of (1,-1), which no constant
  // distance vector can describe.
  const char* program = R"(
# A is written through a nonsingular skewing of the index space and read
# twice; all dependence distances are (2k, -2k).
array A[-70:70, -70:70]
do i1 = -10, 10
  do i2 = -10, 10
    A[3*i1 - 2*i2 + 2, -2*i1 + 3*i2 - 2] = A[i1, i2] + A[i1 + 2, i2 - 2] + 1
  enddo
enddo
)";

  vdep::loopir::LoopNest nest = vdep::dsl::parse_loop_nest(program);

  vdep::core::PdmParallelizer parallelizer;
  vdep::ThreadPool pool(4);
  // analyze + run sequential and parallel executions, throwing if they
  // disagree in a single array element. Execution goes through the
  // streaming runtime (ExecMode::Streaming, the default): work-stealing
  // descriptors scanned on the fly, nothing materialized.
  vdep::core::Report report = parallelizer.parallelize_and_check(nest, pool);

  std::cout << report.summary() << "\n";
  std::cout << "=== generated C (transformed, OpenMP) ===\n"
            << report.c_transformed << "\n";
  std::cout << "parallel execution verified against the sequential reference."
            << std::endl;
  return 0;
}
