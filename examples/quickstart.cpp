// Quickstart for the staged compilation API: compile a loop from the
// mini-DSL once, query the staged artifacts (analysis / plan / codegen),
// prove semantic equivalence by running plan and reference, then reuse the
// cached plan at much larger bounds — the "compile once, serve any size"
// model.
//
//   $ ./quickstart
#include <iostream>

#include "api/vdep.h"
#include "core/suite.h"

int main() {
  // The paper's Example 4.1 (reconstructed): variable dependence distances
  // — every distance is an even multiple of (1,-1), which no constant
  // distance vector can describe.
  const std::string program = R"(
# A is written through a nonsingular skewing of the index space and read
# twice; all dependence distances are (2k, -2k).
array A[-70:70, -70:70]
do i1 = -10, 10
  do i2 = -10, 10
    A[3*i1 - 2*i2 + 2, -2*i1 + 3*i2 - 2] = A[i1, i2] + A[i1 + 2, i2 - 2] + 1
  enddo
enddo
)";

  vdep::Compiler compiler;

  // Stage 0: parse + analyze (or cache hit). Errors are values, not
  // exceptions: inspect loop.error() instead of catching.
  vdep::Expected<vdep::CompiledLoop> loop = compiler.compile(program);
  if (!loop) {
    std::cerr << loop.error().to_string() << "\n";
    return 1;
  }

  // Stages 1-3, queryable separately and computed at most once.
  std::cout << loop->summary() << "\n";
  std::cout << "=== generated C (transformed, OpenMP) ===\n"
            << loop->codegen(vdep::CodegenOptions{}.openmp(true)) << "\n";

  // Stage 4: run the plan through the streaming runtime and verify the
  // final store bit-for-bit against the sequential reference.
  vdep::Expected<vdep::ExecReport> run =
      loop->check(vdep::ExecPolicy{}.threads(4));
  if (!run) {
    std::cerr << run.error().to_string() << "\n";
    return 1;
  }
  std::cout << "verified at compiled bounds: " << run->iterations
            << " iterations, " << run->tasks << " descriptor(s), checksum "
            << run->checksum << "\n";

  // The plan depends only on the loop's structure, never its bounds:
  // re-compiling the same kernel at n=60 is a cache hit, and the check
  // re-verifies the *same* cached plan on the larger space.
  vdep::CompiledLoop big =
      compiler.compile(vdep::core::example41(60)).value();
  vdep::ExecReport big_run = big.check(vdep::ExecPolicy{}.threads(4)).value();
  vdep::CacheStats stats = compiler.cache_stats();
  std::cout << "verified at n=60 from the cached plan: " << big_run.iterations
            << " iterations (cache: " << stats.hits << " hit(s), "
            << stats.misses << " miss(es))\n";
  return 0;
}
