// FPT-like command-line driver: reads a loop program in the mini-DSL from a
// file (or stdin), prints the staged compilation report and emits the
// transformed OpenMP C code.
//
//   $ ./dsl_driver loop.vdep          # analyze a file
//   $ ./dsl_driver --emit-c loop.vdep # also print generated C
//   $ echo 'do i = 0, 9 ... enddo' | ./dsl_driver -
//
// Parse failures are reported compiler-style with a caret under the
// offending column:
//
//   loop.vdep:2:11: parse error (line 2, col 11): expected an expression...
//     A[i] = @
//            ^
#include <fstream>
#include <iostream>
#include <sstream>

#include "api/vdep.h"

namespace {

std::string read_input(const std::string& path) {
  if (path == "-") {
    std::ostringstream os;
    os << std::cin.rdbuf();
    return os.str();
  }
  std::ifstream f(path);
  if (!f) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(2);
  }
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// Prints `path:line:col: message`, the offending source line, and a caret
/// column marker — the classic compiler diagnostic shape.
void print_diagnostic(const std::string& path, const std::string& source,
                      const vdep::ApiError& err) {
  std::cerr << path;
  if (err.line > 0) {
    std::cerr << ":" << err.line;
    if (err.column > 0) std::cerr << ":" << err.column;
  }
  std::cerr << ": " << err.message << "\n";
  if (err.line <= 0) return;

  // Find the offending line (1-based) in the source.
  std::istringstream is(source);
  std::string text;
  for (int k = 0; k < err.line && std::getline(is, text); ++k) {
  }
  std::cerr << "  " << text << "\n";
  if (err.column > 0) {
    std::cerr << "  ";
    for (int k = 1; k < err.column; ++k)
      std::cerr << (k - 1 < static_cast<int>(text.size()) && text[k - 1] == '\t'
                        ? '\t'
                        : ' ');
    std::cerr << "^\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_c = false;
  std::string path;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--emit-c") {
      emit_c = true;
    } else if (arg == "--help") {
      std::cout << "usage: dsl_driver [--emit-c] <file|->\n";
      return 0;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: dsl_driver [--emit-c] <file|->\n";
    return 2;
  }

  std::string source = read_input(path);
  vdep::Compiler compiler;
  vdep::Expected<vdep::CompiledLoop> loop = compiler.compile(source);
  if (!loop) {
    print_diagnostic(path, source, loop.error());
    return 1;
  }

  // The post-compile stages (measure / summary / codegen) run against the
  // *bounded* nest and may still throw, e.g. OverflowError when iteration
  // counting or Fourier-Motzkin on near-int64 bounds exceeds exact range.
  try {
    std::cout << loop->summary();
    vdep::exec::RunStats ms = loop->measure();
    std::cout << "-- measured parallelism --\n"
              << ms.work_items << " independent work items, longest "
              << ms.max_item << " of " << ms.iterations << " iterations\n";
    if (emit_c)
      std::cout << "\n=== generated C ===\n"
                << loop->codegen(vdep::CodegenOptions{}.openmp(true));
  } catch (const vdep::Error& e) {
    std::cerr << "analysis error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
