// FPT-like command-line driver: reads a loop program in the mini-DSL from a
// file (or stdin), prints the dependence/PDM analysis report and emits the
// transformed OpenMP C code.
//
//   $ ./dsl_driver loop.vdep          # analyze a file
//   $ ./dsl_driver --emit-c loop.vdep # also print generated C
//   $ echo 'do i = 0, 9 ... enddo' | ./dsl_driver -
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/parallelizer.h"
#include "dsl/parser.h"

namespace {

std::string read_input(const std::string& path) {
  if (path == "-") {
    std::ostringstream os;
    os << std::cin.rdbuf();
    return os.str();
  }
  std::ifstream f(path);
  if (!f) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(2);
  }
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_c = false;
  std::string path;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--emit-c") {
      emit_c = true;
    } else if (arg == "--help") {
      std::cout << "usage: dsl_driver [--emit-c] <file|->\n";
      return 0;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: dsl_driver [--emit-c] <file|->\n";
    return 2;
  }

  try {
    vdep::loopir::LoopNest nest = vdep::dsl::parse_loop_nest(read_input(path));
    vdep::core::PdmParallelizer::Options opts;
    opts.emit_c = emit_c;
    vdep::core::PdmParallelizer p(opts);
    vdep::core::Report r = p.analyze(nest);
    std::cout << r.summary();
    if (emit_c)
      std::cout << "\n=== generated C ===\n" << r.c_transformed;
    return 0;
  } catch (const vdep::dsl::ParseError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  } catch (const vdep::Error& e) {
    std::cerr << "analysis error: " << e.what() << "\n";
    return 1;
  }
}
