// Domain example: the classic matrix-multiply reduction
//
//   do i; do j; do k:  C[i,j] = C[i,j] + A[i,k]*B[k,j]
//
// The only dependence is the reduction self-dependence on C[i,j], whose
// distance lattice is spanned by (0,0,1): the PDM has two zero columns, so
// Lemma 1 makes the i and j loops DOALL with no transformation at all —
// the PDM framework recovers the textbook answer as a degenerate case.
// Verifies the result against a plain triple-loop computation.
#include <iostream>

#include "api/vdep.h"
#include "core/suite.h"

using namespace vdep;

int main() {
  const intlin::i64 n = 40;
  loopir::LoopNest nest = core::matmul_reduction(n);

  Compiler compiler;
  CompiledLoop loop = compiler.compile(nest).value();
  exec::RunStats measured = loop.measure();

  std::cout << "PDM: " << loop.analysis().pdm.matrix().to_string() << "\n";
  std::cout << "DOALL loops: " << loop.plan().doall_loops
            << " (expect 2: i and j), partition classes: "
            << loop.plan().partition_classes << "\n";
  std::cout << "independent work items: " << measured.work_items << " (expect "
            << (n + 1) * (n + 1) << ")\n\n";

  // Execute in parallel and validate against a hand-written reference.
  ThreadPool pool(4);
  exec::ArrayStore store(nest);
  store.fill_pattern();
  // Snapshot inputs for the reference computation.
  exec::ArrayStore inputs = store;
  loop.execute(ExecPolicy{}, store, pool).value();

  bool ok = true;
  for (intlin::i64 i = 0; i <= n && ok; ++i) {
    for (intlin::i64 j = 0; j <= n && ok; ++j) {
      intlin::i64 acc = inputs.read("C", {i, j});
      for (intlin::i64 k = 0; k <= n; ++k)
        acc += inputs.read("A", {i, k}) * inputs.read("B", {k, j});
      ok = acc == store.read("C", {i, j});
    }
  }
  std::cout << "parallel matmul " << (ok ? "matches" : "DOES NOT match")
            << " the hand-written reference.\n";
  return ok ? 0 : 1;
}
