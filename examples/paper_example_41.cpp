// Paper Section 4.1 walkthrough (non-full-rank pseudo distance matrix).
//
// Reproduces, step by step, what the paper shows in Figures 2 and 3:
//   1. the dependence equations and their solution lattice,
//   2. the PDM H = [2 -2] (rank 1 < depth 2),
//   3. Algorithm 1's legal unimodular T with H*T = [0 2],
//   4. the transformed loop: outer DOALL + inner loop partitioned by 2,
//   5. ISDG statistics before/after and an execution proof.
#include <iostream>

#include "api/vdep.h"
#include "core/suite.h"
#include "exec/isdg.h"
#include "exec/verify.h"

using namespace vdep;

int main() {
  const intlin::i64 n = 10;  // the paper plots N = 10
  loopir::LoopNest nest = core::example41(n);

  std::cout << "== original loop (paper 4.1, reconstructed) ==\n"
            << nest.to_string() << "\n";

  // Step 1-2: dependence analysis and the PDM, through the staged API —
  // compile() runs the pipeline once, the stage accessors are lookups.
  Compiler compiler;
  CompiledLoop loop = compiler.compile(nest).value();
  const dep::Pdm& pdm = loop.analysis().pdm;
  for (const dep::DepPair& p : pdm.pairs()) {
    std::cout << dep::to_string(p.kind)
              << " dependence: delta0 = " << intlin::to_string(p.solution.offset)
              << ", generators = " << p.solution.generators.to_string() << "\n";
  }
  std::cout << pdm.to_string() << "\n\n";

  // Step 3: Algorithm 1 (the plan ships with its Theorem 1 certificate).
  const trans::TransformPlan& plan = loop.plan().transform;
  std::cout << "Algorithm 1: T = " << plan.t.to_string()
            << "  =>  H*T = " << plan.transformed_pdm.to_string() << "\n";
  std::cout << "ops:";
  for (const auto& op : plan.algorithm1_ops) std::cout << " " << op;
  std::cout << "\nlegal (Theorem 1): " << (loop.plan().legal ? "yes" : "NO")
            << "\n\n";

  // Step 4: transformed code.
  codegen::TransformedNest tn = codegen::rewrite_nest(nest, plan);
  std::cout << "== transformed loop ==\n" << tn.nest.to_string() << "\n";
  std::cout << "partition classes on the trailing block: "
            << plan.partition_classes << "\n\n";

  // Step 5: figures' numbers. Figure 2 = original ISDG; Figure 3 =
  // partitioned space (arrows only within a DOALL line, stride doubled).
  exec::Isdg g = exec::build_isdg(nest);
  std::cout << "ISDG (N=" << n << "): " << g.node_count() << " nodes, "
            << g.edge_count() << " edges, " << g.dependent_node_count()
            << " dependent nodes, " << g.chain_count() << " chains, "
            << "critical path " << g.critical_path_length() << "\n";

  exec::Schedule sched = exec::build_schedule(nest, plan);
  std::cout << "schedule: " << sched.parallelism()
            << " independent work items, longest " << sched.max_item_size()
            << " iterations, cross-item dependence edges: "
            << g.cross_item_edges(sched) << "\n";

  exec::VerifyResult v = exec::verify_schedule(nest, sched);
  std::cout << "trace verification: " << (v.ok ? "legal" : "ILLEGAL") << "\n";

  // Execution proof.
  ThreadPool pool(4);
  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore par = ref;
  exec::run_sequential(nest, ref);
  exec::run_parallel(nest, plan, par, pool);
  std::cout << "parallel result "
            << (ref == par ? "matches" : "DOES NOT match")
            << " the sequential reference (checksum " << ref.checksum()
            << ")\n";
  return ref == par && v.ok ? 0 : 1;
}
