// Plan-cache latency: cold compile() vs cache-hit compile() across the
// paper suite, each structure served at 50 different sizes — the staged
// API's core claim that one analysis amortizes over every request size.
//
// Plain printf/chrono (no Google Benchmark), one JSON object per line so
// the output scrapes straight into BENCH_runtime.json:
//   {"bench":"plan_cache","name":"example_4_1","cold_ns":...,"hit_ns":...,
//    "speedup":...,"sizes":50,"hits":...,"misses":...,"hit_rate":...}
// plus one aggregate line with name "ALL" (geometric-mean speedup, pooled
// hit rate).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/vdep.h"
#include "core/suite.h"

using namespace vdep;
using Clock = std::chrono::steady_clock;

namespace {

std::size_t hw_threads() {
  static const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  return hw;
}

i64 ns_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
      .count();
}

loopir::LoopNest suite_nest(const std::string& name, i64 n) {
  for (core::NamedNest& c : core::paper_suite(n))
    if (c.name == name) return std::move(c.nest);
  std::fprintf(stderr, "unknown suite kernel %s\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  // --gate: exit nonzero when the geomean speedup misses 10x. Off by
  // default so the CI scrape job only measures; timing noise on shared
  // runners must not fail a build. Local acceptance: ./bench_plan_cache --gate
  bool gate = false;
  for (int a = 1; a < argc; ++a)
    if (std::string(argv[a]) == "--gate") gate = true;

  constexpr int kSizes = 50;
  constexpr i64 kBaseSize = 4;
  constexpr int kColdReps = 5;

  std::vector<std::string> names;
  for (const core::NamedNest& c : core::paper_suite(kBaseSize))
    names.push_back(c.name);

  double speedup_log_sum = 0.0;
  i64 total_hits = 0, total_misses = 0;

  for (const std::string& name : names) {
    // Cold latency: fresh session each rep, so every compile runs the full
    // pipeline; keep the minimum as the noise-resistant estimate.
    i64 cold_ns = 0;
    for (int rep = 0; rep < kColdReps; ++rep) {
      Compiler fresh;
      loopir::LoopNest nest = suite_nest(name, kBaseSize);
      auto t0 = Clock::now();
      fresh.compile(nest).value();
      i64 ns = ns_since(t0);
      if (rep == 0 || ns < cold_ns) cold_ns = ns;
    }

    // Hit latency: one session, one cold compile, then kSizes requests of
    // the same structure at different bounds — every one a cache hit.
    Compiler session;
    session.compile(suite_nest(name, kBaseSize)).value();
    std::vector<loopir::LoopNest> sized;
    sized.reserve(kSizes);
    for (i64 n = kBaseSize; n < kBaseSize + kSizes; ++n)
      sized.push_back(suite_nest(name, n));
    auto t0 = Clock::now();
    for (const loopir::LoopNest& nest : sized) session.compile(nest).value();
    i64 hit_ns = ns_since(t0) / kSizes;

    CacheStats s = session.cache_stats();
    double speedup =
        hit_ns > 0 ? static_cast<double>(cold_ns) / static_cast<double>(hit_ns)
                   : 0.0;
    speedup_log_sum += std::log(speedup > 0 ? speedup : 1.0);
    total_hits += s.hits;
    total_misses += s.misses;

    std::printf(
        "{\"bench\":\"plan_cache\",\"name\":\"%s\",\"hw_threads\":%zu,"
        "\"cold_ns\":%lld,"
        "\"hit_ns\":%lld,\"speedup\":%.1f,\"sizes\":%d,\"hits\":%lld,"
        "\"misses\":%lld,\"hit_rate\":%.4f}\n",
        name.c_str(), hw_threads(), static_cast<long long>(cold_ns),
        static_cast<long long>(hit_ns), speedup, kSizes,
        static_cast<long long>(s.hits), static_cast<long long>(s.misses),
        s.hit_rate());
  }

  double geomean = std::exp(speedup_log_sum / static_cast<double>(names.size()));
  double pooled_rate =
      total_hits + total_misses > 0
          ? static_cast<double>(total_hits) /
                static_cast<double>(total_hits + total_misses)
          : 0.0;
  std::printf(
      "{\"bench\":\"plan_cache\",\"name\":\"ALL\",\"hw_threads\":%zu,"
      "\"kernels\":%zu,"
      "\"speedup_geomean\":%.1f,\"hits\":%lld,\"misses\":%lld,"
      "\"hit_rate\":%.4f}\n",
      hw_threads(), names.size(), geomean, static_cast<long long>(total_hits),
      static_cast<long long>(total_misses), pooled_rate);

  // The acceptance gate: cache-hit compile must be >= 10x faster than cold.
  if (gate && geomean < 10.0) {
    std::fprintf(stderr, "FAIL: plan-cache speedup %.1fx < 10x\n", geomean);
    return 1;
  }
  return 0;
}
