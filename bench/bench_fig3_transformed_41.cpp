// E2 / Figure 3: Example 4.1 after the unimodular transformation and the
// partitioning step.
//
// The paper's figure shows two separate partitions (jo2 in {0,1}) whose
// dependence arrows are parallel to the sequential axis and whose stride
// doubled. Regenerated here as: DOALL width, class count, per-item sizes,
// zero cross-item dependence edges, and the transformed distance vectors
// (0, 2k). Timed: schedule construction and the parallel execution.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/isdg.h"
#include "exec/verify.h"
#include "trans/planner.h"

using namespace vdep;

namespace {

void print_report() {
  const intlin::i64 n = 10;
  loopir::LoopNest nest = core::example41(n);
  dep::Pdm pdm = dep::compute_pdm(nest);
  trans::TransformPlan plan = trans::plan_transform(pdm);

  std::cout << "=== Figure 3: transformed + partitioned Example 4.1 ===\n";
  std::cout << "T = " << plan.t.to_string()
            << ", H*T = " << plan.transformed_pdm.to_string() << "\n";
  std::cout << "outer DOALL loops: " << plan.num_doall
            << ", partition classes: " << plan.partition_classes << "\n";

  // Transformed distances: d * T must be (0, even) — arrows perpendicular
  // to the DOALL axis, stride 2 (the paper's "shortened arrows").
  exec::Isdg g = exec::build_isdg(nest);
  bool all_vertical = true;
  intlin::i64 min_stride = 0;
  for (const intlin::Vec& d : g.distance_vectors()) {
    intlin::Vec dt = intlin::vec_mat_mul(d, plan.t);
    all_vertical = all_vertical && dt[0] == 0;
    intlin::i64 s = checked::abs(dt[1]);
    if (min_stride == 0 || s < min_stride) min_stride = s;
  }
  std::cout << "transformed arrows perpendicular to DOALL axis: "
            << (all_vertical ? "yes" : "NO")
            << ", min stride along j2: " << min_stride << "\n";

  exec::Schedule sched = exec::build_schedule(nest, plan);
  std::cout << "independent work items: " << sched.parallelism()
            << " (DOALL width " << 4 * n + 1 << " x 2 classes), longest item "
            << sched.max_item_size() << "\n";
  std::cout << "cross-item dependence edges: " << g.cross_item_edges(sched)
            << " (paper: partitions are fully separate)\n";
  exec::VerifyResult v = exec::verify_schedule(nest, sched);
  std::cout << "legality (trace verifier): " << (v.ok ? "legal" : "ILLEGAL")
            << "\n"
            << std::endl;
}

void BM_BuildSchedule41(benchmark::State& state) {
  loopir::LoopNest nest = core::example41(state.range(0));
  trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
  for (auto _ : state) {
    exec::Schedule sched = exec::build_schedule(nest, plan);
    benchmark::DoNotOptimize(sched.parallelism());
  }
}
BENCHMARK(BM_BuildSchedule41)->Arg(10)->Arg(20)->Arg(40);

void BM_ParallelRun41(benchmark::State& state) {
  loopir::LoopNest nest = core::example41(state.range(0));
  trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    exec::ArrayStore store(nest);
    store.fill_pattern();
    exec::run_parallel(nest, plan, store, pool);
    benchmark::DoNotOptimize(store.checksum());
  }
}
BENCHMARK(BM_ParallelRun41)->Args({40, 1})->Args({40, 2})->Args({40, 4});

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
