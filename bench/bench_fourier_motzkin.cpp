// E10 (ablation): Fourier-Motzkin cost and exactness across dimensions —
// the only bounds-dependent step of the pipeline (code generation).
#include <benchmark/benchmark.h>

#include <iostream>

#include "intlin/det.h"
#include "poly/fourier_motzkin.h"
#include "support/rng.h"

using namespace vdep;
using poly::ConstraintSystem;

namespace {

// Unimodular image of an n-D box: the shape codegen feeds to FM.
ConstraintSystem transformed_box(int n, Rng& rng) {
  ConstraintSystem cs(n);
  for (int k = 0; k < n; ++k) cs.add_box(k, -10, 10);
  intlin::Mat t = intlin::Mat::identity(n);
  for (int step = 0; step < 2 * n; ++step) {
    int a = static_cast<int>(rng.uniform(0, n - 1));
    int b = static_cast<int>(rng.uniform(0, n - 1));
    if (a == b) continue;
    if (rng.chance(1, 4))
      t.swap_cols(a, b);
    else
      t.add_col_multiple(a, b, rng.uniform(-2, 2));
  }
  return cs.transformed(t);
}

void print_report() {
  std::cout << "=== E10: Fourier-Motzkin ablation ===\n";
  Rng rng(7777);
  for (int n = 2; n <= 5; ++n) {
    ConstraintSystem cs = transformed_box(n, rng);
    poly::NestBounds nb = poly::extract_bounds(cs);
    // Count scanned points vs. inner-empty overshoot.
    intlin::i64 points = 0, outer_steps = 0;
    intlin::Vec iter(static_cast<std::size_t>(n), 0);
    std::function<void(int)> rec = [&](int k) {
      if (k == n) {
        ++points;
        return;
      }
      intlin::i64 lo = nb.lower[static_cast<std::size_t>(k)].eval_lower(iter);
      intlin::i64 hi = nb.upper[static_cast<std::size_t>(k)].eval_upper(iter);
      if (k == n - 1) outer_steps += hi >= lo ? 0 : 1;  // empty innermost rows
      for (intlin::i64 v = lo; v <= hi; ++v) {
        iter[static_cast<std::size_t>(k)] = v;
        rec(k + 1);
      }
      iter[static_cast<std::size_t>(k)] = 0;
    };
    rec(0);
    intlin::i64 expected = 1;
    for (int k = 0; k < n; ++k) expected *= 21;
    std::cout << "  dim " << n << ": scanned " << points << " points (box "
              << expected << "), empty innermost rows: " << outer_steps
              << " (rational-shadow overshoot)\n";
  }
  std::cout << std::endl;
}

void BM_FourierMotzkinExtract(benchmark::State& state) {
  Rng rng(1234 + static_cast<std::uint64_t>(state.range(0)));
  ConstraintSystem cs = transformed_box(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    poly::NestBounds nb = poly::extract_bounds(cs);
    benchmark::DoNotOptimize(nb.lower.size());
  }
}
BENCHMARK(BM_FourierMotzkinExtract)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_EliminateOneVariable(benchmark::State& state) {
  Rng rng(42);
  ConstraintSystem cs = transformed_box(static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    ConstraintSystem p = poly::eliminate_variable(cs, static_cast<int>(state.range(0)) - 1);
    benchmark::DoNotOptimize(p.constraints().size());
  }
}
BENCHMARK(BM_EliminateOneVariable)->Arg(2)->Arg(4)->Arg(6);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
