// E3 / Figure 4: ISDG of the original Example 4.2 loop (N = 10).
//
// The paper's observation: "An arrow between two dependent iterations
// always jumps a stride greater than 1 along i1 and/or i2, which implies
// the existence of independent partitions." Regenerated as the distance
// multiset and per-dimension minimum strides.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <map>

#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/isdg.h"

using namespace vdep;

namespace {

void print_report() {
  const intlin::i64 n = 10;
  loopir::LoopNest nest = core::example42(n);
  exec::Isdg g = exec::build_isdg(nest);

  std::cout << "=== Figure 4: ISDG of the original loop, Example 4.2 ===\n";
  std::cout << "N=" << n << ": nodes " << g.node_count() << ", edges "
            << g.edge_count() << ", dependent nodes "
            << g.dependent_node_count() << ", chains " << g.chain_count()
            << ", critical path " << g.critical_path_length() << "\n";

  // Distance histogram (the paper numbers the arrows 1..8 along each line).
  std::map<intlin::Vec, int> hist;
  for (const exec::IsdgEdge& e : g.edges())
    hist[intlin::sub(e.dst, e.src)]++;
  std::cout << "distance histogram:\n";
  for (const auto& [d, count] : hist)
    std::cout << "  d = " << intlin::to_string(d) << " x " << count << "\n";

  intlin::Vec stride = g.min_abs_stride();
  std::cout << "min |stride|: i1 -> " << stride[0] << ", i2 -> " << stride[1]
            << "  (paper: every arrow jumps > 1 along i1 and/or i2)\n";

  // Every observed distance satisfies d1 - 2 d2 = +-4 or 0 and lies in the
  // PDM lattice [[2,1],[0,2]].
  intlin::Lattice lat = dep::compute_pdm(nest).lattice();
  bool all_in = true;
  for (const auto& [d, count] : hist) all_in = all_in && lat.contains(d);
  std::cout << "all distances inside lattice([[2,1],[0,2]]): "
            << (all_in ? "yes" : "NO") << "\n";

  std::ofstream("fig4_isdg_original_42.dot") << g.to_dot();
  std::cout << "wrote fig4_isdg_original_42.dot\n" << std::endl;
}

void BM_BuildIsdg42(benchmark::State& state) {
  loopir::LoopNest nest = core::example42(state.range(0));
  for (auto _ : state) {
    exec::Isdg g = exec::build_isdg(nest);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_BuildIsdg42)->Arg(5)->Arg(10)->Arg(20);

void BM_ExactPairSolve42(benchmark::State& state) {
  loopir::LoopNest nest = core::example42(10);
  auto acc = nest.accesses();
  for (auto _ : state) {
    dep::PairDependence s = dep::solve_pair(acc[0].ref, acc[1].ref);
    benchmark::DoNotOptimize(s.exists);
  }
}
BENCHMARK(BM_ExactPairSolve42);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
