// Interpreter vs JIT streaming throughput across the paper suite.
//
// Both backends run the identical streaming runtime (same descriptors,
// same work stealing); only leaf execution differs: the interpreter
// backend walks expression trees per iteration, the JIT backend hands each
// descriptor rectangle to a dlopen-ed native kernel compiled from
// emit_c_range_kernel by the system toolchain. The postfix CompiledKernel
// backend (the streaming default) is measured too, as the middle point.
//
// Output is one JSON object per line (scraped into BENCH_runtime.json):
//   {"bench":"jit_speedup","name":...,"backend":"interpreter|compiled|jit",
//    "threads":...,"n":...,"iterations":...,"seconds":...,"iters_per_sec":...}
// plus a per-kernel comparison line and a final ALL geomean line.
//
// `--gate` exits non-zero unless every suite kernel actually ran natively
// (no silent fallback) with a bit-identical checksum and the geomean
// JIT-vs-interpreter speedup is >= 2.0 — the acceptance bar of the JIT PR.
//
// `--partition-gate` instead compares the verified steady-state partitioned
// kernel (-O3 -march=native, clamp-free steady region) against the clamped
// JIT baseline (-O2) over steady-state-shaped nests plus the partitioning
// suite kernels: geomean >= 1.3, every partitioned run must actually take
// the partitioned fast path, and every checksum must be bit-identical to
// the clamped run. Hosts without a vector ISA (no AVX2 on x86, non-NEON)
// emit a skip line and exit 0 — the comparison is meaningless there.
// `--cold-start-gate` measures what the on-disk artifact cache buys a fresh
// process: session A populates an empty cache directory (cold: full
// analysis + cc subprocess), session B re-runs the same suite against the
// warm directory with cold in-memory state. The gate fails unless session B
// invoked cc exactly zero times (counter-verified via vdep_jit_builds_total)
// and produced bit-identical checksums.
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/vdep.h"
#include "core/suite.h"
#include "jit/toolchain.h"
#include "loopir/builder.h"
#include "obs/metrics.h"

using namespace vdep;
using intlin::i64;

namespace {

struct Sample {
  i64 iterations = 0;
  double seconds = 0;
  i64 checksum = 0;
  bool jit = false;
  bool ok = false;
  std::string error;
};

// Accumulates execute() runs (each from a fresh pattern-filled store) until
// the measured time is stable enough to compare: >= `min_seconds` or
// `max_reps`. Timing uses the report's own wall_ns, so store setup between
// repetitions is excluded.
Sample run_backend(const CompiledLoop& loop, ExecBackend backend,
                   std::size_t threads, double min_seconds, int max_reps) {
  Sample s;
  exec::ArrayStore base(loop.nest());
  base.fill_pattern();
  {
    // Warmup rep, untimed: the first kJit execute pays the toolchain
    // (~tens of ms); steady-state throughput is what the gate compares —
    // the amortization itself is bench_plan_cache / jit_test territory.
    exec::ArrayStore store = base;
    ExecPolicy policy;
    policy.threads(threads).backend(backend);
    Expected<ExecReport> r = loop.execute(policy, store);
    if (!r) {
      s.error = r.error().to_string();
      return s;
    }
  }
  for (int rep = 0; rep < max_reps && s.seconds < min_seconds; ++rep) {
    exec::ArrayStore store = base;
    ExecPolicy policy;
    policy.threads(threads).backend(backend);
    Expected<ExecReport> r = loop.execute(policy, store);
    if (!r) {
      s.error = r.error().to_string();
      return s;
    }
    s.iterations += r->iterations;
    s.seconds += static_cast<double>(r->wall_ns) * 1e-9;
    s.checksum = r->checksum;
    s.jit = r->jit;
  }
  s.ok = true;
  return s;
}

std::size_t hw_threads() {
  static const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  return hw;
}

void emit(const std::string& name, const char* backend, std::size_t threads,
          i64 n, const Sample& s) {
  std::printf(
      "{\"bench\":\"jit_speedup\",\"name\":\"%s\",\"backend\":\"%s\","
      "\"hw_threads\":%zu,"
      "\"threads\":%zu,\"n\":%lld,\"iterations\":%lld,\"seconds\":%.6f,"
      "\"iters_per_sec\":%.0f,\"jit\":%s}\n",
      name.c_str(), backend, hw_threads(), threads, static_cast<long long>(n),
      static_cast<long long>(s.iterations), s.seconds,
      s.seconds > 0 ? static_cast<double>(s.iterations) / s.seconds : 0.0,
      s.jit ? "true" : "false");
}

double throughput(const Sample& s) {
  return s.seconds > 0 ? static_cast<double>(s.iterations) / s.seconds : 0.0;
}

// ---------------------------------------------------------- partition gate

// The partitioned kernel's steady-region advantage is vectorization of the
// constant-trip inner loops; without a vector ISA the -O3/-march=native vs
// -O2 comparison measures nothing the pass controls.
bool vector_isa_available() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#elif defined(__aarch64__)
  return true;  // NEON is baseline on AArch64
#else
  return false;
#endif
}

// Ramp nest — the steady-state motif: i in [0,n], j in [0, min(w, i)].
// Dependence-free, so both levels are DOALL; the partition pass proves the
// steady sub-range i in [w, n] where the j clamp is the identity and the
// inner loop runs a constant w+1 trips.
loopir::LoopNest ramp_nest(i64 n, i64 w) {
  loopir::LoopNestBuilder b;
  b.loop("i", 0, n);
  loopir::Bound up = loopir::Bound::constant(2, w);
  up.add_term({loopir::AffineExpr(intlin::Vec{1, 0}, 0), 1});
  b.loop("j", loopir::Bound(loopir::AffineExpr::constant(2, 0)), up);
  b.array("A", {{0, n}, {0, w}});
  b.array("B", {{0, n}, {0, w}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
           loopir::Expr::add(
               b.read("A", {b.idx(0), b.idx(1)}),
               loopir::Expr::mul(b.read("B", {b.idx(0), b.idx(1)}),
                                 loopir::Expr::constant(3))));
  return b.build();
}

Sample run_jit(const CompiledLoop& loop, const jit::JitOptions& jo,
               std::size_t threads, double min_seconds, int max_reps,
               bool* partitioned) {
  Sample s;
  exec::ArrayStore base(loop.nest());
  base.fill_pattern();
  *partitioned = false;
  for (int rep = -1; rep < max_reps && s.seconds < min_seconds; ++rep) {
    exec::ArrayStore store = base;
    ExecPolicy policy;
    policy.threads(threads).backend(ExecBackend::kJit).jit_options(jo);
    Expected<ExecReport> r = loop.execute(policy, store);
    if (!r) {
      s.error = r.error().to_string();
      return s;
    }
    s.jit = r->jit;
    *partitioned = r->jit_partitioned;
    if (rep < 0) continue;  // warmup rep pays the toolchain, untimed
    s.iterations += r->iterations;
    s.seconds += static_cast<double>(r->wall_ns) * 1e-9;
    s.checksum = r->checksum;
  }
  s.ok = true;
  return s;
}

int partition_gate_main(bool gate) {
  const std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  if (!vector_isa_available()) {
    std::printf(
        "{\"bench\":\"jit_speedup\",\"mode\":\"partition_gate\","
        "\"name\":\"ALL\",\"hw_threads\":%zu,\"skipped\":true,"
        "\"reason\":\"no vector ISA (AVX2/NEON) on this host\"}\n",
        hw_threads());
    return 0;
  }

  // Steady-state ramps across inner widths (vector-register to L1-sized
  // rows) plus every suite kernel whose plan partitions. Sizes aim at a few
  // million iterations per run so a single rep is already measurable.
  struct GateNest {
    std::string name;
    loopir::LoopNest nest;
  };
  std::vector<GateNest> cases;
  for (auto [w, n] : std::vector<std::pair<i64, i64>>{
           {16, 350000}, {32, 180000}, {64, 90000}, {128, 46000}})
    cases.push_back({"ramp_w" + std::to_string(w), ramp_nest(n, w)});
  const std::map<std::string, i64> suite_sizes = {{"matmul_reduction", 120},
                                                  {"example_4_1", 1200}};
  for (const auto& [name, n] : suite_sizes)
    for (core::NamedNest& c : core::paper_suite(n))
      if (c.name == name) cases.push_back({name, c.nest});

  Compiler compiler;
  double log_sum = 0;
  int kernels = 0, fallbacks = 0, mismatches = 0;
  for (const GateNest& c : cases) {
    Expected<CompiledLoop> loop = compiler.compile(c.nest);
    if (!loop) {
      std::printf(
          "{\"bench\":\"jit_speedup\",\"mode\":\"partition_gate\","
          "\"name\":\"%s\",\"hw_threads\":%zu,\"error\":\"%s\"}\n",
          c.name.c_str(), hw_threads(), loop.error().to_string().c_str());
      ++fallbacks;
      continue;
    }
    jit::JitOptions clamped_opts;
    clamped_opts.partition = false;
    jit::JitOptions part_opts;
    part_opts.native_arch = true;
    bool clamped_part = false, part_part = false;
    Sample clamped = run_jit(*loop, clamped_opts, threads, 0.1, 20,
                             &clamped_part);
    Sample part = run_jit(*loop, part_opts, threads, 0.1, 20, &part_part);
    if (!clamped.ok || !part.ok) {
      std::printf(
          "{\"bench\":\"jit_speedup\",\"mode\":\"partition_gate\","
          "\"name\":\"%s\",\"hw_threads\":%zu,\"error\":\"%s\"}\n",
          c.name.c_str(), hw_threads(),
          (!clamped.ok ? clamped : part).error.c_str());
      ++fallbacks;
      continue;
    }

    bool identical = clamped.checksum == part.checksum;
    bool native = clamped.jit && part.jit && part_part && !clamped_part;
    double speedup = throughput(part) / throughput(clamped);
    std::printf(
        "{\"bench\":\"jit_speedup\",\"mode\":\"partition_gate\","
        "\"name\":\"%s\",\"hw_threads\":%zu,\"threads\":%zu,"
        "\"iterations\":%lld,\"clamped_seconds\":%.6f,"
        "\"partitioned_seconds\":%.6f,\"partitioned_vs_clamped\":%.3f,"
        "\"partitioned\":%s,\"checksum_identical\":%s}\n",
        c.name.c_str(), hw_threads(), threads,
        static_cast<long long>(part.iterations), clamped.seconds, part.seconds,
        speedup, native ? "true" : "false", identical ? "true" : "false");

    ++kernels;
    if (!native) ++fallbacks;
    if (!identical) ++mismatches;
    log_sum += std::log(speedup);
  }

  double geomean = kernels ? std::exp(log_sum / kernels) : 0.0;
  std::printf(
      "{\"bench\":\"jit_speedup\",\"mode\":\"partition_gate\","
      "\"name\":\"ALL\",\"hw_threads\":%zu,\"kernels\":%d,\"threads\":%zu,"
      "\"partitioned_vs_clamped_geomean\":%.2f,\"fallbacks\":%d,"
      "\"checksum_mismatches\":%d,\"gate\":1.3}\n",
      hw_threads(), kernels, threads, geomean, fallbacks, mismatches);

  if (gate && (kernels == 0 || fallbacks > 0 || mismatches > 0 ||
               geomean < 1.3)) {
    std::fprintf(stderr,
                 "partition gate FAILED: kernels=%d fallbacks=%d "
                 "mismatches=%d geomean=%.2f (need >= 1.3)\n",
                 kernels, fallbacks, mismatches, geomean);
    return 1;
  }
  return 0;
}

// --------------------------------------------------------- cold-start gate

/// One "session": fresh Compiler (cold in-memory caches) against `cache_dir`.
/// Returns wall time of compile + JIT materialization, plus the execution
/// checksum, and reports how many cc subprocesses the session ran.
struct SessionResult {
  bool ok = false;
  std::string error;
  double seconds = 0;       ///< compile + jit() wall time
  i64 checksum = 0;
  i64 cc_invocations = 0;
  bool jit = false;
};

SessionResult run_session(const loopir::LoopNest& nest,
                          const std::string& cache_dir, std::size_t threads) {
  SessionResult out;
  i64 builds_before = obs::MetricsRegistry::instance()
                          .counter("vdep_jit_builds_total")
                          .value();
  Compiler compiler(CompileOptions{}.disk_cache(cache_dir));
  jit::JitOptions jo;
  jo.cache_dir = cache_dir;

  auto t0 = std::chrono::steady_clock::now();
  Expected<CompiledLoop> loop = compiler.compile(nest);
  if (!loop) {
    out.error = loop.error().to_string();
    return out;
  }
  auto kernel = loop->jit(jo);
  auto t1 = std::chrono::steady_clock::now();
  if (!kernel) {
    out.error = kernel.error().to_string();
    return out;
  }
  out.seconds = std::chrono::duration<double>(t1 - t0).count();

  exec::ArrayStore store(loop->nest());
  store.fill_pattern();
  ExecPolicy policy;
  policy.threads(threads).backend(ExecBackend::kJit).jit_options(jo);
  Expected<ExecReport> rep = loop->execute(policy, store);
  if (!rep) {
    out.error = rep.error().to_string();
    return out;
  }
  out.checksum = rep->checksum;
  out.jit = rep->jit;
  out.cc_invocations = obs::MetricsRegistry::instance()
                           .counter("vdep_jit_builds_total")
                           .value() -
                       builds_before;
  out.ok = true;
  return out;
}

int cold_start_gate_main(bool gate) {
  if (!jit::discover_toolchain()) {
    std::printf(
        "{\"bench\":\"jit_speedup\",\"mode\":\"cold_start\",\"name\":\"ALL\","
        "\"hw_threads\":%zu,\"skipped\":true,"
        "\"reason\":\"no C toolchain on this host\"}\n",
        hw_threads());
    return 0;
  }
  const std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  obs::MetricsRegistry::instance().enable();

  std::string templ =
      (std::filesystem::temp_directory_path() / "vdep-coldstart-XXXXXX")
          .string();
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (!::mkdtemp(buf.data())) {
    std::fprintf(stderr, "cold-start gate: mkdtemp failed\n");
    return 1;
  }
  std::string cache_dir = buf.data();

  double cold_total = 0, warm_total = 0;
  int kernels = 0, warm_cc = 0, mismatches = 0, fallbacks = 0;
  for (core::NamedNest& c : core::paper_suite(64)) {
    // Session A: empty cache entry for this structure — pays analysis + cc.
    SessionResult cold = run_session(c.nest, cache_dir, threads);
    // Session B: cold in-memory state, warm disk — must pay neither.
    SessionResult warm = run_session(c.nest, cache_dir, threads);
    if (!cold.ok || !warm.ok) {
      std::printf(
          "{\"bench\":\"jit_speedup\",\"mode\":\"cold_start\","
          "\"name\":\"%s\",\"hw_threads\":%zu,\"error\":\"%s\"}\n",
          c.name.c_str(), hw_threads(),
          (!cold.ok ? cold : warm).error.c_str());
      ++fallbacks;
      continue;
    }
    bool identical = cold.checksum == warm.checksum;
    std::printf(
        "{\"bench\":\"jit_speedup\",\"mode\":\"cold_start\",\"name\":\"%s\","
        "\"hw_threads\":%zu,\"cold_ms\":%.2f,\"warm_ms\":%.2f,"
        "\"cold_vs_warm\":%.1f,\"warm_cc_invocations\":%lld,"
        "\"checksum_identical\":%s}\n",
        c.name.c_str(), hw_threads(), cold.seconds * 1e3, warm.seconds * 1e3,
        warm.seconds > 0 ? cold.seconds / warm.seconds : 0.0,
        static_cast<long long>(warm.cc_invocations),
        identical ? "true" : "false");
    ++kernels;
    cold_total += cold.seconds;
    warm_total += warm.seconds;
    warm_cc += static_cast<int>(warm.cc_invocations);
    if (!identical) ++mismatches;
    if (!warm.jit) ++fallbacks;
  }

  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);

  std::printf(
      "{\"bench\":\"jit_speedup\",\"mode\":\"cold_start\",\"name\":\"ALL\","
      "\"hw_threads\":%zu,\"kernels\":%d,\"cold_total_ms\":%.2f,"
      "\"warm_total_ms\":%.2f,\"cold_vs_warm\":%.1f,"
      "\"warm_cc_invocations\":%d,\"fallbacks\":%d,"
      "\"checksum_mismatches\":%d,\"gate\":\"warm_cc==0\"}\n",
      hw_threads(), kernels, cold_total * 1e3, warm_total * 1e3,
      warm_total > 0 ? cold_total / warm_total : 0.0, warm_cc, fallbacks,
      mismatches);

  if (gate &&
      (kernels == 0 || warm_cc > 0 || mismatches > 0 || fallbacks > 0)) {
    std::fprintf(stderr,
                 "cold-start gate FAILED: kernels=%d warm_cc=%d "
                 "mismatches=%d fallbacks=%d (warm session must invoke cc "
                 "zero times, bit-identically)\n",
                 kernels, warm_cc, mismatches, fallbacks);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  bool partition_gate = false;
  bool cold_start_gate = false;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--gate") == 0) gate = true;
    if (std::strcmp(argv[k], "--partition-gate") == 0) partition_gate = true;
    if (std::strcmp(argv[k], "--cold-start-gate") == 0) cold_start_gate = true;
  }
  if (partition_gate) return partition_gate_main(/*gate=*/true);
  if (cold_start_gate) return cold_start_gate_main(/*gate=*/true);

  const std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  // Per-kernel sizes: big enough for a measurable single run, small enough
  // that the tree-walking interpreter finishes the whole suite quickly.
  const std::map<std::string, i64> sizes = {
      {"sequential_chain", 300000}, {"variable_3deep", 50},
      {"matmul_reduction", 64},
      // Pascal-triangle value growth overflows the checked interpreter
      // past n ~ 28 (values |A| <= 99 * C(2n, n)).
      {"uniform_wavefront", 25},
  };
  const i64 default_n = 400;

  Compiler compiler;
  double log_sum_interp = 0, log_sum_compiled = 0;
  int kernels = 0, fallbacks = 0, mismatches = 0;

  for (core::NamedNest& c : core::paper_suite(default_n)) {
    auto it = sizes.find(c.name);
    i64 n = it != sizes.end() ? it->second : default_n;
    loopir::LoopNest nest = n == default_n ? c.nest : [&] {
      for (core::NamedNest& d : core::paper_suite(n))
        if (d.name == c.name) return d.nest;
      return c.nest;
    }();

    Expected<CompiledLoop> loop = compiler.compile(nest);
    if (!loop) {
      std::printf(
          "{\"bench\":\"jit_speedup\",\"name\":\"%s\",\"hw_threads\":%zu,"
          "\"error\":\"%s\"}\n",
          c.name.c_str(), hw_threads(), loop.error().to_string().c_str());
      ++fallbacks;
      continue;
    }

    Sample interp = run_backend(*loop, ExecBackend::kInterpreter, threads,
                                0.05, 50);
    Sample compiled = run_backend(*loop, ExecBackend::kCompiled, threads,
                                  0.05, 50);
    Sample jit = run_backend(*loop, ExecBackend::kJit, threads, 0.05, 50);
    if (!interp.ok || !compiled.ok || !jit.ok) {
      std::printf(
          "{\"bench\":\"jit_speedup\",\"name\":\"%s\",\"hw_threads\":%zu,"
          "\"error\":\"%s\"}\n",
          c.name.c_str(), hw_threads(),
          (!interp.ok ? interp : !compiled.ok ? compiled : jit).error.c_str());
      ++fallbacks;
      continue;
    }
    emit(c.name, "interpreter", threads, n, interp);
    emit(c.name, "compiled", threads, n, compiled);
    emit(c.name, "jit", threads, n, jit);

    bool identical = interp.checksum == jit.checksum &&
                     interp.checksum == compiled.checksum;
    double vs_interp = throughput(jit) / throughput(interp);
    double vs_compiled = throughput(jit) / throughput(compiled);
    std::printf(
        "{\"bench\":\"jit_speedup\",\"name\":\"%s\",\"mode\":\"comparison\","
        "\"hw_threads\":%zu,"
        "\"threads\":%zu,\"n\":%lld,\"jit_vs_interpreter\":%.3f,"
        "\"jit_vs_compiled\":%.3f,\"native\":%s,\"checksum_identical\":%s}\n",
        c.name.c_str(), hw_threads(), threads, static_cast<long long>(n),
        vs_interp,
        vs_compiled, jit.jit ? "true" : "false", identical ? "true" : "false");

    ++kernels;
    if (!jit.jit) ++fallbacks;
    if (!identical) ++mismatches;
    log_sum_interp += std::log(vs_interp);
    log_sum_compiled += std::log(vs_compiled);
  }

  double geo_interp = kernels ? std::exp(log_sum_interp / kernels) : 0.0;
  double geo_compiled = kernels ? std::exp(log_sum_compiled / kernels) : 0.0;
  std::printf(
      "{\"bench\":\"jit_speedup\",\"name\":\"ALL\",\"hw_threads\":%zu,"
      "\"kernels\":%d,"
      "\"threads\":%zu,\"jit_vs_interpreter_geomean\":%.2f,"
      "\"jit_vs_compiled_geomean\":%.2f,\"fallbacks\":%d,"
      "\"checksum_mismatches\":%d,\"gate\":2.0}\n",
      hw_threads(), kernels, threads, geo_interp, geo_compiled, fallbacks,
      mismatches);

  if (gate && (kernels == 0 || fallbacks > 0 || mismatches > 0 ||
               geo_interp < 2.0)) {
    std::fprintf(stderr,
                 "jit gate FAILED: kernels=%d fallbacks=%d mismatches=%d "
                 "geomean=%.2f (need >= 2.0)\n",
                 kernels, fallbacks, mismatches, geo_interp);
    return 1;
  }
  return 0;
}
