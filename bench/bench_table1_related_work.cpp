// E5 / Table 1: the related-work comparison, regenerated with *runnable*
// methods instead of citations.
//
// Every method is executed on every suite loop; its schedule is verified by
// the memory-trace checker, and the measured (steps, width) pair replaces
// the paper's qualitative optimality codes. The qualitative columns
// (dependence abstraction, applicability, code generation style) match the
// paper's Table 1 rows that we implement:
//
//   Banerjee [1]        U  PL  uniform only     U
//   D'Hollander [6]     U  PL  uniform only     P
//   Wolf et al [14]     D  PL  direction vecs   U
//   Shang et al [17]    B  PL  linear schedule  S
//   This work           P  PL  variable OK      U+P
#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/baseline.h"
#include "core/suite.h"

using namespace vdep;

namespace {

void print_report() {
  std::cout << "=== Table 1: related-work comparison (measured) ===\n";
  std::cout << "steps = sequential makespan in iterations (lower = better), "
               "width = exploited parallelism (higher = better)\n\n";
  for (const core::NamedNest& c : core::paper_suite(8)) {
    std::vector<baselines::Outcome> outs = baselines::run_all_methods(c.nest);
    std::cout << baselines::format_table(c.name + "  (" + c.description + ")",
                                         outs)
              << "\n";
  }
}

void BM_Method(benchmark::State& state,
               baselines::Outcome (*method)(const loopir::LoopNest&)) {
  loopir::LoopNest nest = core::example41(6);
  for (auto _ : state) {
    baselines::Outcome o = method(nest);
    benchmark::DoNotOptimize(o.width);
  }
}

void BM_PdmMethodCost(benchmark::State& state) {
  BM_Method(state, baselines::run_pdm_method);
}
void BM_DirectionVectorCost(benchmark::State& state) {
  BM_Method(state, baselines::run_direction_vector_method);
}
void BM_HyperplaneCost(benchmark::State& state) {
  BM_Method(state, baselines::run_hyperplane_schedule);
}
BENCHMARK(BM_PdmMethodCost);
BENCHMARK(BM_DirectionVectorCost);
BENCHMARK(BM_HyperplaneCost);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
