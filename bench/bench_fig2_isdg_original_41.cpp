// E1 / Figure 2: the iteration-space dependence graph of the original
// Example 4.1 loop (N = 10 in the paper).
//
// Regenerates the figure's content as statistics: node/edge counts, solid
// (dependent) nodes, dependence chains and their numbering, the set of
// distance vectors (all even multiples of (1,-1)), and writes the DOT file.
// The timed section measures the brute-force ISDG construction itself.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/isdg.h"

using namespace vdep;

namespace {

void print_report() {
  std::cout << "=== Figure 2: ISDG of the original loop, Example 4.1 ===\n";
  for (intlin::i64 n : {5, 10, 20}) {
    loopir::LoopNest nest = core::example41(n);
    exec::Isdg g = exec::build_isdg(nest);
    std::cout << "N=" << n << ": nodes " << g.node_count() << ", solid "
              << g.dependent_node_count() << ", edges " << g.edge_count()
              << ", chains " << g.chain_count() << ", critical path "
              << g.critical_path_length() << "\n";
    if (n == 10) {
      std::cout << "  distance vectors:";
      for (const intlin::Vec& d : g.distance_vectors())
        std::cout << " " << intlin::to_string(d);
      std::cout << "\n";
      // Paper claim: every distance is an even multiple of (1,-1) — the
      // PDM lattice [2 -2].
      intlin::Lattice lat = dep::compute_pdm(nest).lattice();
      bool all_in = true;
      for (const intlin::Vec& d : g.distance_vectors())
        all_in = all_in && lat.contains(d);
      std::cout << "  all distances inside lattice([2 -2]): "
                << (all_in ? "yes" : "NO") << "\n";
      std::ofstream("fig2_isdg_original_41.dot") << g.to_dot();
      std::cout << "  wrote fig2_isdg_original_41.dot\n";
      loopir::LoopNest small = core::example41(6);
      std::cout << "  Figure 2 rendering (N=6; o = dependent iteration):\n"
                << exec::build_isdg(small).to_ascii();
    }
  }
  std::cout << std::endl;
}

void BM_BuildIsdg41(benchmark::State& state) {
  loopir::LoopNest nest = core::example41(state.range(0));
  for (auto _ : state) {
    exec::Isdg g = exec::build_isdg(nest);
    benchmark::DoNotOptimize(g.edge_count());
  }
  state.counters["nodes"] =
      static_cast<double>((2 * state.range(0) + 1) * (2 * state.range(0) + 1));
}
BENCHMARK(BM_BuildIsdg41)->Arg(5)->Arg(10)->Arg(20);

void BM_PdmAnalysis41(benchmark::State& state) {
  loopir::LoopNest nest = core::example41(state.range(0));
  for (auto _ : state) {
    dep::Pdm pdm = dep::compute_pdm(nest);
    benchmark::DoNotOptimize(pdm.rank());
  }
}
BENCHMARK(BM_PdmAnalysis41)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
