// E9 (ablation): partition-count scaling — the parallelism Theorem 2
// extracts equals det(H) exactly, for lattices with and without skew.
#include <benchmark/benchmark.h>

#include <iostream>

#include "exec/verify.h"
#include "loopir/builder.h"
#include "trans/planner.h"

using namespace vdep;

namespace {

// A loop whose only dependences have distance lattice exactly L(h):
// A[a*i1 + skew*i2, b*i2] = A[a*i1 + skew*i2 + a*shift1, b*i2 + b*shift2]
// gives constant distances; simpler: use synthetic PDMs directly.
trans::TransformPlan plan_for_lattice(const intlin::Mat& h, int depth) {
  dep::Pdm pdm(depth, h, {});
  return trans::plan_transform(pdm);
}

loopir::LoopNest square_nest(intlin::i64 n) {
  loopir::LoopNestBuilder b;
  b.loop("i1", 0, n).loop("i2", 0, n);
  b.array("A", {{0, n}, {0, n}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}), loopir::Expr::constant(1));
  return b.build();
}

void print_report() {
  std::cout << "=== E9: partition classes == det(H) ===\n";
  const intlin::i64 n = 29;
  loopir::LoopNest nest = square_nest(n);
  struct Case {
    intlin::Mat h;
    const char* label;
  };
  std::vector<Case> cases = {
      {intlin::Mat::from_rows({{1, 0}, {0, 1}}), "identity (det 1)"},
      {intlin::Mat::from_rows({{2, 0}, {0, 1}}), "diag(2,1)"},
      {intlin::Mat::from_rows({{2, 1}, {0, 2}}), "paper 4.2 (skewed, det 4)"},
      {intlin::Mat::from_rows({{3, 1}, {0, 2}}), "skewed det 6"},
      {intlin::Mat::from_rows({{3, 0}, {0, 3}}), "diag(3,3)"},
      {intlin::Mat::from_rows({{4, 1}, {0, 3}}), "skewed det 12"},
  };
  for (const Case& c : cases) {
    trans::TransformPlan plan = plan_for_lattice(c.h, 2);
    exec::Schedule sched = exec::build_schedule(nest, plan);
    std::cout << "  H = " << c.h.to_string() << " [" << c.label
              << "]: classes " << plan.partition_classes << ", measured items "
              << sched.parallelism() << ", coverage "
              << sched.total_iterations() << "/" << nest.iteration_count()
              << "\n";
  }
  std::cout << std::endl;
}

void BM_ClassScanByDet(benchmark::State& state) {
  intlin::i64 d = state.range(0);
  // Skew entry must stay inside [0, d) for a canonical HNF.
  intlin::Mat h = intlin::Mat::from_rows({{d, d > 1 ? 1 : 0}, {0, d}});
  loopir::LoopNest nest = square_nest(120);
  trans::TransformPlan plan = plan_for_lattice(h, 2);
  for (auto _ : state) {
    exec::Schedule sched = exec::build_schedule(nest, plan);
    benchmark::DoNotOptimize(sched.parallelism());
  }
  state.counters["classes"] = static_cast<double>(d * d);
}
BENCHMARK(BM_ClassScanByDet)->Arg(1)->Arg(2)->Arg(3)->Arg(5)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
