// Batch serving throughput: execute_batch vs loop-at-a-time execute().
//
// The serving scenario from the ROADMAP: one structure analyzed once, then
// many requests at assorted bounds driving one thread pool. The baseline
// runs the requests serially, each through a full CompiledLoop::execute()
// (one fork/join per request, parallelism limited to what a single small
// request exposes). The batch path hands all requests to execute_batch,
// which seeds every request's descriptors into one shared work-stealing
// scheduler (runtime/batch_executor.h): one fork/join per *batch* and the
// whole batch's parallelism keeping the workers fed.
//
// Output is one JSON object per line (scraped into BENCH_runtime.json):
//   {"bench":"batch_serving","scenario":...,"mode":"baseline|batch",
//    "requests":...,"threads":...,"n":...,"seconds":...,"requests_per_sec":...}
// plus a comparison line per scenario and a final ALL line.
//
// `--gate` exits non-zero unless the 64-request same-structure serving
// scenario (small requests, kJit backend, report digest off — the
// configuration a server would run) shows >= 2.0x requests/sec over the
// baseline, every request actually ran natively, and every per-request
// final store is bit-identical to its loop-at-a-time twin.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/vdep.h"
#include "core/suite.h"

using namespace vdep;
using intlin::i64;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::size_t hw_threads() {
  static const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  return hw;
}

struct Measure {
  double seconds = 0;
  i64 requests = 0;
  std::vector<i64> checksums;  ///< of the last repetition, request order
  bool ok = true;
  std::string error;

  double rps() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

void emit(const char* scenario, const char* mode, std::size_t threads, i64 n,
          const Measure& m) {
  std::printf(
      "{\"bench\":\"batch_serving\",\"scenario\":\"%s\",\"mode\":\"%s\","
      "\"requests\":%lld,\"threads\":%zu,\"hw_threads\":%zu,\"n\":%lld,"
      "\"seconds\":%.6f,"
      "\"requests_per_sec\":%.0f}\n",
      scenario, mode, static_cast<long long>(m.requests), threads,
      hw_threads(), static_cast<long long>(n), m.seconds, m.rps());
}

// Runs `body(checksums)` repeatedly (each repetition = one full pass over
// all `per_rep` requests) until >= min_seconds of measured time or
// max_reps, accumulating request count and time.
template <typename Body>
Measure repeat(i64 per_rep, double min_seconds, int max_reps, Body&& body) {
  Measure m;
  for (int rep = 0; rep < max_reps && m.seconds < min_seconds; ++rep) {
    m.checksums.clear();
    auto t0 = Clock::now();
    if (!body(m.checksums)) {
      m.ok = false;
      m.error = "request failed";
      return m;
    }
    m.seconds += seconds_since(t0);
    m.requests += per_rep;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  for (int k = 1; k < argc; ++k)
    if (std::strcmp(argv[k], "--gate") == 0) gate = true;

  // Serving worker-pool size: the host's real thread count. Forcing 4+
  // contexts on a 1-2 core host oversubscribes every measured mode and
  // quietly distorts the baseline-vs-batch comparison; the row's
  // hw_threads field is what makes small-host numbers interpretable.
  const std::size_t threads = hw_threads();
  const int reqs = 64;
  const i64 n = 32;  // example41: (2n+1)^2 iterations per request
  Compiler compiler(CompileOptions{}.pool_threads(threads));
  ThreadPool& pool = compiler.pool();
  ExecPolicy policy;
  policy.threads(threads);

  bool gate_ok = true;
  double gate_speedup = 0;

  // ---------------------------------- scenario 1: same structure, same
  // bounds, caller-owned stores, default backend + digest (end-to-end
  // serving cost; informative)
  {
    CompiledLoop loop = compiler.compile(core::example41(n)).value();
    exec::ArrayStore base(loop.nest());
    base.fill_pattern();

    // One store per request, reset by copy-assign from `base` at the top
    // of every repetition — inside the timed body for both modes, so the
    // comparison isolates execution strategy, not setup.
    std::vector<exec::ArrayStore> stores(static_cast<std::size_t>(reqs), base);
    auto reset = [&] {
      for (auto& s : stores) s = base;
    };

    Measure baseline = repeat(reqs, 0.2, 50, [&](std::vector<i64>& sums) {
      reset();
      for (auto& s : stores) {
        Expected<ExecReport> r = loop.execute(policy, s, pool);
        if (!r) return false;
        sums.push_back(r->checksum);
      }
      return true;
    });
    Measure batch = repeat(reqs, 0.2, 50, [&](std::vector<i64>& sums) {
      reset();
      std::vector<exec::ArrayStore*> ptrs;
      ptrs.reserve(stores.size());
      for (auto& s : stores) ptrs.push_back(&s);
      Expected<std::vector<ExecReport>> r = loop.execute_batch(ptrs, policy, pool);
      if (!r) return false;
      for (const ExecReport& rep : *r) sums.push_back(rep.checksum);
      return true;
    });

    emit("same_structure_64", "baseline", threads, n, baseline);
    emit("same_structure_64", "batch", threads, n, batch);
    bool identical = baseline.ok && batch.ok &&
                     baseline.checksums == batch.checksums;
    double speedup =
        baseline.rps() > 0 ? batch.rps() / baseline.rps() : 0.0;
    std::printf(
        "{\"bench\":\"batch_serving\",\"scenario\":\"same_structure_64\","
        "\"mode\":\"comparison\",\"requests\":%d,\"threads\":%zu,"
        "\"hw_threads\":%zu,\"n\":%lld,"
        "\"speedup\":%.3f,\"checksum_identical\":%s}\n",
        reqs, threads, hw_threads(), static_cast<long long>(n), speedup,
        identical ? "true" : "false");
    if (!identical) gate_ok = false;
  }

  // ---------------------------------- gate scenario: small same-structure
  // requests through the JIT backend with the report digest off — the
  // serving configuration (one .so shared across the batch, no per-request
  // store scan). Verification happens outside the timed region by a full
  // bitwise store comparison between the two modes.
  {
    const i64 gn = 4;  // 9x9 iterations: request cost is dominated by
                       // per-request setup, which is what batching amortizes
    CompiledLoop loop = compiler.compile(core::example41(gn)).value();
    ExecPolicy gp = policy;
    gp.backend(ExecBackend::kJit).digest(false);
    exec::ArrayStore base(loop.nest());
    base.fill_pattern();
    std::vector<exec::ArrayStore> stores(static_cast<std::size_t>(reqs), base);
    std::vector<exec::ArrayStore*> ptrs;
    ptrs.reserve(stores.size());
    for (auto& s : stores) ptrs.push_back(&s);
    auto reset = [&] {
      for (auto& s : stores) s = base;
    };

    // Warmup resolves (and memoizes) the .so once, off the clock, for
    // both modes — steady-state serving throughput is what the gate
    // compares, exactly like bench_jit_speedup.
    reset();
    bool native = true;
    {
      Expected<std::vector<ExecReport>> r = loop.execute_batch(ptrs, gp, pool);
      if (!r) {
        native = false;
      } else {
        for (const ExecReport& rep : *r) native = native && rep.jit;
      }
    }

    Measure baseline = repeat(reqs, 0.2, 200, [&](std::vector<i64>&) {
      reset();
      for (auto& s : stores)
        if (!loop.execute(gp, s, pool)) return false;
      return true;
    });
    // Keep the baseline's final stores for the bitwise comparison.
    std::vector<exec::ArrayStore> baseline_stores = stores;

    Measure batch = repeat(reqs, 0.2, 200, [&](std::vector<i64>&) {
      reset();
      return loop.execute_batch(ptrs, gp, pool).has_value();
    });

    bool identical = baseline.ok && batch.ok;
    for (std::size_t k = 0; identical && k < stores.size(); ++k)
      identical = stores[k] == baseline_stores[k];

    emit("same_structure_64_jit", "baseline", threads, gn, baseline);
    emit("same_structure_64_jit", "batch", threads, gn, batch);
    double speedup =
        baseline.rps() > 0 ? batch.rps() / baseline.rps() : 0.0;
    std::printf(
        "{\"bench\":\"batch_serving\",\"scenario\":\"same_structure_64_jit\","
        "\"mode\":\"comparison\",\"requests\":%d,\"threads\":%zu,"
        "\"hw_threads\":%zu,\"n\":%lld,"
        "\"speedup\":%.3f,\"native\":%s,\"store_identical\":%s,\"gate\":2.0}"
        "\n",
        reqs, threads, hw_threads(), static_cast<long long>(gn), speedup,
        native ? "true" : "false", identical ? "true" : "false");
    gate_ok = gate_ok && baseline.ok && batch.ok && native && identical &&
              speedup >= 2.0;
    gate_speedup = speedup;
  }

  // ---------------------------------- scenario 2: same structure, mixed
  // bounds (plan-cache serving: one artifact, 64 sizes)
  {
    CompiledLoop loop = compiler.compile(core::example41(16)).value();
    std::vector<loopir::LoopNest> bounds;
    for (int k = 0; k < reqs; ++k)
      bounds.push_back(core::example41(16 + (k % 24)));

    Measure baseline = repeat(reqs, 0.2, 20, [&](std::vector<i64>& sums) {
      for (const loopir::LoopNest& b : bounds) {
        Expected<CompiledLoop> h = loop.at(b);
        if (!h) return false;
        exec::ArrayStore store(h->nest());
        store.fill_pattern();
        Expected<ExecReport> r = h->execute(policy, store, pool);
        if (!r) return false;
        sums.push_back(r->checksum);
      }
      return true;
    });
    Measure batch = repeat(reqs, 0.2, 20, [&](std::vector<i64>& sums) {
      Expected<std::vector<ExecReport>> r =
          loop.execute_batch(bounds, policy, pool);
      if (!r) return false;
      for (const ExecReport& rep : *r) sums.push_back(rep.checksum);
      return true;
    });

    emit("mixed_bounds_64", "baseline", threads, 16, baseline);
    emit("mixed_bounds_64", "batch", threads, 16, batch);
    std::printf(
        "{\"bench\":\"batch_serving\",\"scenario\":\"mixed_bounds_64\","
        "\"mode\":\"comparison\",\"requests\":%d,\"threads\":%zu,"
        "\"hw_threads\":%zu,"
        "\"speedup\":%.3f,\"checksum_identical\":%s}\n",
        reqs, threads, hw_threads(),
        baseline.rps() > 0 ? batch.rps() / baseline.rps() : 0.0,
        (baseline.ok && batch.ok && baseline.checksums == batch.checksums)
            ? "true"
            : "false");
  }

  // ---------------------------------- scenario 3: mixed structures via
  // compile_all + free execute_batch (the whole suite as one batch)
  {
    std::vector<loopir::LoopNest> nests;
    for (core::NamedNest& c : core::paper_suite(24))
      if (c.name != "uniform_wavefront")  // binomial growth: overflow risk
        nests.push_back(c.nest);
    // Duplicate the set so the batch dedups structures 4:1.
    std::vector<loopir::LoopNest> batch_nests;
    for (int rep = 0; rep < 4; ++rep)
      for (const loopir::LoopNest& nn : nests) batch_nests.push_back(nn);

    CacheStats before = compiler.cache_stats();
    Expected<std::vector<CompiledLoop>> loops = compiler.compile_all(batch_nests);
    CacheStats after = compiler.cache_stats();
    if (!loops) {
      std::printf(
          "{\"bench\":\"batch_serving\",\"scenario\":\"mixed_structures\","
          "\"hw_threads\":%zu,\"error\":\"%s\"}\n",
          hw_threads(), loops.error().to_string().c_str());
      return gate && !gate_ok ? 1 : 0;
    }
    std::printf(
        "{\"bench\":\"batch_serving\",\"scenario\":\"mixed_structures\","
        "\"mode\":\"compile_all\",\"requests\":%zu,\"hw_threads\":%zu,"
        "\"analyses\":%lld,"
        "\"cache_hits\":%lld}\n",
        batch_nests.size(), hw_threads(),
        static_cast<long long>(after.misses - before.misses),
        static_cast<long long>(after.hits - before.hits));

    const i64 per_rep = static_cast<i64>(loops->size());
    Measure baseline = repeat(per_rep, 0.2, 20, [&](std::vector<i64>& sums) {
      for (const CompiledLoop& h : *loops) {
        exec::ArrayStore store(h.nest());
        store.fill_pattern();
        Expected<ExecReport> r = h.execute(policy, store, pool);
        if (!r) return false;
        sums.push_back(r->checksum);
      }
      return true;
    });
    Measure batch = repeat(per_rep, 0.2, 20, [&](std::vector<i64>& sums) {
      std::vector<BatchRequest> reqs2;
      reqs2.reserve(loops->size());
      for (const CompiledLoop& h : *loops)
        reqs2.push_back(BatchRequest{h, nullptr});
      Expected<std::vector<ExecReport>> r =
          vdep::execute_batch(reqs2, policy, pool);
      if (!r) return false;
      for (const ExecReport& rep : *r) sums.push_back(rep.checksum);
      return true;
    });

    emit("mixed_structures", "baseline", threads, 24, baseline);
    emit("mixed_structures", "batch", threads, 24, batch);
    std::printf(
        "{\"bench\":\"batch_serving\",\"scenario\":\"mixed_structures\","
        "\"mode\":\"comparison\",\"requests\":%lld,\"threads\":%zu,"
        "\"hw_threads\":%zu,"
        "\"speedup\":%.3f,\"checksum_identical\":%s}\n",
        static_cast<long long>(per_rep), threads, hw_threads(),
        baseline.rps() > 0 ? batch.rps() / baseline.rps() : 0.0,
        (baseline.ok && batch.ok && baseline.checksums == batch.checksums)
            ? "true"
            : "false");
  }

  std::printf(
      "{\"bench\":\"batch_serving\",\"scenario\":\"ALL\",\"threads\":%zu,"
      "\"hw_threads\":%zu,"
      "\"gate_scenario_speedup\":%.2f,\"gate\":2.0,\"gate_ok\":%s}\n",
      threads, hw_threads(), gate_speedup, gate_ok ? "true" : "false");

  if (gate && !gate_ok) {
    std::fprintf(stderr,
                 "batch serving gate FAILED: speedup=%.2f (need >= 2.0 with "
                 "identical checksums)\n",
                 gate_speedup);
    return 1;
  }
  return 0;
}
