// E7 (extension): the paper's efficiency claim — "the transformation
// requires no loop bounds calculations and is therefore quite efficient".
//
// The PDM is computed from the dependence equations alone, so its cost is
// independent of the iteration-space size N; a strawman that enumerates
// concrete distance vectors (what a naive variable-distance analysis would
// do) grows as O(N^2). Both are timed side by side.
#include <benchmark/benchmark.h>

#include <iostream>
#include <set>

#include "core/suite.h"
#include "dep/pdm.h"
#include "trans/planner.h"

using namespace vdep;

namespace {

// Strawman: collect concrete distance vectors by scanning iteration pairs
// touching a common element (bounded, grows with N).
std::set<intlin::Vec> enumerate_distances(const loopir::LoopNest& nest) {
  std::set<intlin::Vec> out;
  auto acc = nest.accesses();
  auto iters = nest.iterations();
  for (std::size_t x = 0; x < acc.size(); ++x)
    for (std::size_t y = 0; y < acc.size(); ++y) {
      if (acc[x].ref.array != acc[y].ref.array) continue;
      if (!acc[x].is_write && !acc[y].is_write) continue;
      for (const intlin::Vec& i : iters)
        for (const intlin::Vec& j : iters)
          if (acc[x].ref.element_at(i) == acc[y].ref.element_at(j))
            out.insert(intlin::sub(j, i));
    }
  return out;
}

void print_report() {
  std::cout << "=== E7: analysis cost — PDM vs distance enumeration ===\n";
  std::cout << "The PDM cost is independent of N; enumeration scales O(N^2)\n"
            << "(see the timed section: BM_PdmAnalysis stays flat while\n"
            << " BM_EnumerateDistances explodes).\n"
            << std::endl;
}

void BM_PdmAnalysis(benchmark::State& state) {
  loopir::LoopNest nest = core::example41(state.range(0));
  for (auto _ : state) {
    dep::Pdm pdm = dep::compute_pdm(nest);
    benchmark::DoNotOptimize(pdm.rank());
  }
}
BENCHMARK(BM_PdmAnalysis)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_EnumerateDistances(benchmark::State& state) {
  loopir::LoopNest nest = core::example41(state.range(0));
  for (auto _ : state) {
    auto d = enumerate_distances(nest);
    benchmark::DoNotOptimize(d.size());
  }
}
BENCHMARK(BM_EnumerateDistances)->Arg(4)->Arg(8)->Arg(16);

void BM_FullPlanning(benchmark::State& state) {
  // PDM + Algorithm 1 + partitioning plan, still bounds-free.
  loopir::LoopNest nest = core::example41(state.range(0));
  for (auto _ : state) {
    trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
    benchmark::DoNotOptimize(plan.partition_classes);
  }
}
BENCHMARK(BM_FullPlanning)->Arg(16)->Arg(1024);

void BM_PlanningDepth3(benchmark::State& state) {
  loopir::LoopNest nest = core::variable_3deep(state.range(0));
  for (auto _ : state) {
    trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
    benchmark::DoNotOptimize(plan.num_doall);
  }
}
BENCHMARK(BM_PlanningDepth3)->Arg(16)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
