// E8 (extension): wall-clock speedup of the generated parallel structure.
//
// The paper reports no absolute machine numbers; the reproducible *shape*
// is: kernels whose plan carries parallelism (DOALL width x classes) scale
// with the thread count, the sequential chain does not. Interpreted
// execution on the host (2 cores here) — expect saturation at ~cores.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/compiled.h"
#include "exec/runner.h"
#include "trans/planner.h"

using namespace vdep;

namespace {

void print_report() {
  std::cout << "=== E8: parallel execution speedup (interpreter) ===\n";
  std::cout << "items/steps per kernel at N=60:\n";
  for (const core::NamedNest& c : core::paper_suite(60)) {
    trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(c.nest));
    exec::Schedule sched = exec::build_schedule(c.nest, plan);
    std::cout << "  " << c.name << ": items " << sched.parallelism()
              << ", longest " << sched.max_item_size() << " of "
              << sched.total_iterations() << "\n";
  }
  std::cout << std::endl;
}

void run_kernel(benchmark::State& state, loopir::LoopNest nest) {
  trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
  // Schedule construction is a one-time compile step: built outside the
  // timed region so the loop body execution itself is what scales.
  exec::Schedule sched = exec::build_schedule(nest, plan);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    exec::ArrayStore store(nest);
    store.fill_pattern();
    state.ResumeTiming();
    exec::execute_schedule_compiled(nest, sched, store, pool);
    benchmark::DoNotOptimize(store.checksum());
  }
  state.SetItemsProcessed(state.iterations() * nest.iteration_count());
}

void BM_Example41(benchmark::State& state) {
  run_kernel(state, core::example41(220));
}
void BM_Example42(benchmark::State& state) {
  run_kernel(state, core::example42(400));
}
void BM_UniformBlocked(benchmark::State& state) {
  run_kernel(state, core::uniform_blocked(600));
}
void BM_SequentialChain(benchmark::State& state) {
  run_kernel(state, core::sequential_chain(200000));
}
BENCHMARK(BM_Example41)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_Example42)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_UniformBlocked)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_SequentialChain)->Arg(1)->Arg(2)->UseRealTime();

void BM_SequentialReference41(benchmark::State& state) {
  loopir::LoopNest nest = core::example41(60);
  for (auto _ : state) {
    exec::ArrayStore store(nest);
    store.fill_pattern();
    exec::run_sequential(nest, store);
    benchmark::DoNotOptimize(store.checksum());
  }
}
BENCHMARK(BM_SequentialReference41);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
