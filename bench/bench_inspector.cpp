// Inspector–executor cost model: what runtime inspection costs and what
// the dynamic partition buys on nests the static pipeline cannot analyze.
//
// Scenario "sparse_scatter" is the inspector's home turf: a scatter-
// accumulate A[B[i]] = A[B[i]] + C[i] with a duplicate-heavy index array
// (mean chain length ~4), the access pattern of sparse assembly. The PDM
// rejects the nest, sequential interpretation is the only static option,
// and the inspector's components are exactly the per-target-cell chains.
// Scenario "permutation" is the degenerate best case — B a permutation, so
// every class is a singleton and the space is fully parallel.
//
// Output is one JSON object per line (scraped into BENCH_runtime.json):
//   {"bench":"inspector","name":"sparse_scatter","mode":"inspect","n":...,
//    "seconds":...,"classes":...,"chains":...,"max_component":...}
//   {"bench":"inspector","name":...,"mode":"executor","threads":8,...}
//   {"bench":"inspector","name":...,"mode":"summary","threads":8,
//    "speedup_8w_vs_seq":...,"inspect_overhead_pct":...,"bit_identical":...}
//
// `--gate` (CI bench-smoke leg) re-runs both scenarios and fails unless
// every parallel store is bit-identical to the sequential reference —
// speedup is reported, never gated (inspection amortizes over re-execution
// and CI machines vary), but correctness is absolute.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>

#include "exec/interpreter.h"
#include "inspect/executor.h"
#include "inspect/inspector.h"
#include "loopir/builder.h"

using namespace vdep;
using intlin::i64;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::size_t hw_threads() {
  static const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  return hw;
}

double best_of(int reps, const std::function<double()>& fn) {
  double best = fn();
  for (int k = 1; k < reps; ++k) best = std::min(best, fn());
  return best;
}

/// A[B[i]] = A[B[i]] + C[i] over i in [0, n-1], A sized [0, a_hi].
loopir::LoopNest scatter_nest(i64 n, i64 a_hi) {
  loopir::LoopNestBuilder b;
  b.loop("i", 0, n - 1);
  b.array("A", {{0, a_hi}});
  b.array("B", {{0, n - 1}});
  b.array("C", {{0, n - 1}});
  loopir::ArrayRef a_ind;
  a_ind.array = "A";
  a_ind.subscripts = {b.cst(0)};
  a_ind.indirect = {loopir::IndirectSubscript{"B", b.idx(0)}};
  b.assign(a_ind, loopir::Expr::add(loopir::Expr::read(a_ind),
                                    loopir::Expr::read(b.ref("C", {b.idx(0)}))));
  return b.build();
}

struct Scenario {
  const char* name;
  i64 a_hi;                       ///< target extent (conflict density knob)
  std::function<i64(i64)> index;  ///< i -> B[i]
};

int run_scenario(const Scenario& sc, i64 n, int reps, bool gate) {
  loopir::LoopNest nest = scatter_nest(n, sc.a_hi);
  exec::ArrayStore init(nest);
  init.fill_pattern();
  for (i64 i = 0; i < n; ++i) init.write("B", intlin::Vec{i}, sc.index(i));

  // Sequential reference (the only static execution for a non-affine nest).
  exec::ArrayStore ref = init;
  double t_seq = [&] {
    auto t0 = std::chrono::steady_clock::now();
    exec::run_sequential(nest, ref);
    return seconds_since(t0);
  }();
  std::printf(
      "{\"bench\":\"inspector\",\"name\":\"%s\",\"mode\":\"sequential\","
      "\"threads\":1,\"hw_threads\":%zu,\"n\":%lld,\"seconds\":%.6f,"
      "\"iters_per_sec\":%.0f}\n",
      sc.name, hw_threads(), static_cast<long long>(n), t_seq,
      t_seq > 0 ? static_cast<double>(n) / t_seq : 0.0);

  // Inspection: timed separately (best-of), stats from the last run.
  inspect::DynamicPartition part = inspect::inspect(nest, init);
  double t_inspect = best_of(reps, [&] {
    auto t0 = std::chrono::steady_clock::now();
    part = inspect::inspect(nest, init);
    return seconds_since(t0);
  });
  const inspect::InspectStats& st = part.stats();
  std::printf(
      "{\"bench\":\"inspector\",\"name\":\"%s\",\"mode\":\"inspect\","
      "\"hw_threads\":%zu,\"n\":%lld,\"seconds\":%.6f,"
      "\"iterations_per_sec\":%.0f,\"classes\":%lld,\"chains\":%lld,"
      "\"max_component\":%lld,\"dependent\":%lld,\"written_cells\":%lld}\n",
      sc.name, hw_threads(), static_cast<long long>(n), t_inspect,
      t_inspect > 0 ? static_cast<double>(n) / t_inspect : 0.0,
      static_cast<long long>(st.classes), static_cast<long long>(st.chains),
      static_cast<long long>(st.max_component),
      static_cast<long long>(st.dependent_iterations),
      static_cast<long long>(st.written_cells));

  int failures = 0;
  double t_8w = 0;
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    inspect::InspectorExecOptions io;
    io.num_threads = threads;
    inspect::InspectorExecutor ex(nest, part, io);
    exec::ArrayStore got(nest);
    runtime::RuntimeStats rs;
    double t_exec = best_of(reps, [&] {
      got = init;
      auto t0 = std::chrono::steady_clock::now();
      rs = ex.run(got);
      return seconds_since(t0);
    });
    if (threads == 8) t_8w = t_exec;
    bool identical = got == ref;
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: %s inspector executor at %zu worker(s) diverged "
                   "from sequential\n",
                   sc.name, threads);
      ++failures;
    }
    std::printf(
        "{\"bench\":\"inspector\",\"name\":\"%s\",\"mode\":\"executor\","
        "\"threads\":%zu,\"hw_threads\":%zu,\"n\":%lld,\"seconds\":%.6f,"
        "\"iters_per_sec\":%.0f,\"tasks\":%lld,\"steals\":%lld,"
        "\"bit_identical\":%s}\n",
        sc.name, threads, hw_threads(), static_cast<long long>(n), t_exec,
        t_exec > 0 ? static_cast<double>(n) / t_exec : 0.0,
        static_cast<long long>(rs.total_tasks()),
        static_cast<long long>(rs.total_steals()),
        identical ? "true" : "false");
  }

  std::printf(
      "{\"bench\":\"inspector\",\"name\":\"%s\",\"mode\":\"summary\","
      "\"threads\":8,\"hw_threads\":%zu,\"n\":%lld,"
      "\"speedup_8w_vs_seq\":%.3f,\"inspect_overhead_pct\":%.2f,"
      "\"amortized_speedup_8w\":%.3f}\n",
      sc.name, hw_threads(), static_cast<long long>(n),
      t_8w > 0 ? t_seq / t_8w : 0.0,
      t_seq > 0 ? t_inspect / t_seq * 100.0 : 0.0,
      t_inspect + t_8w > 0 ? t_seq / (t_inspect + t_8w) : 0.0);

  (void)gate;
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const bool gate = argc > 1 && std::strcmp(argv[1], "--gate") == 0;
  const i64 n = gate ? i64{1} << 18 : i64{1} << 20;
  const int reps = gate ? 2 : 3;

  const Scenario scenarios[] = {
      // ~4 iterations per target cell: sparse-assembly conflict density.
      {"sparse_scatter", n / 4 - 1,
       [n](i64 i) { return (i * 2654435761ll) % (n / 4); }},
      // Bijective: every class a singleton, fully parallel space.
      // 7919 is odd and n a power of two, so i*7919+13 mod n is a bijection.
      {"permutation", n - 1, [n](i64 i) { return (i * 7919 + 13) % n; }},
  };

  int failures = 0;
  for (const Scenario& sc : scenarios) failures += run_scenario(sc, n, reps, gate);
  return failures == 0 ? 0 : 1;
}
