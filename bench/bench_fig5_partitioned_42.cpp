// E4 / Figure 5: Example 4.2 partitioned into det(H) = 4 independent 2-D
// iteration sub-spaces.
//
// Figure 5's content: four partitions (io1, io2 in {0,1}); arrows shorter
// in proportion to the doubled step; "the skewing affects the offsets of
// the iteration indices, while the iteration space has the same square
// shape as the original". Regenerated as: class count and sizes, zero
// cross-class edges, per-class bounding boxes, and the skewed-offset
// membership witness.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/isdg.h"
#include "exec/verify.h"
#include "trans/planner.h"

using namespace vdep;

namespace {

void print_report() {
  const intlin::i64 n = 10;
  loopir::LoopNest nest = core::example42(n);
  dep::Pdm pdm = dep::compute_pdm(nest);
  trans::TransformPlan plan = trans::plan_transform(pdm);
  const trans::Partitioning& part = *plan.partition;

  std::cout << "=== Figure 5: Example 4.2 partitioned into 4 sub-spaces ===\n";
  std::cout << "lattice basis " << part.lattice_basis().to_string()
            << ", det = " << part.num_classes() << "\n";

  exec::Schedule sched = exec::build_schedule(nest, plan);
  exec::Isdg g = exec::build_isdg(nest);
  std::cout << "classes: " << sched.parallelism()
            << ", cross-class dependence edges: " << g.cross_item_edges(sched)
            << "\n";

  for (std::size_t k = 0; k < sched.items.size(); ++k) {
    const auto& item = sched.items[k];
    intlin::i64 lo1 = item[0][0], hi1 = item[0][0];
    intlin::i64 lo2 = item[0][1], hi2 = item[0][1];
    for (const intlin::Vec& i : item) {
      lo1 = std::min(lo1, i[0]);
      hi1 = std::max(hi1, i[0]);
      lo2 = std::min(lo2, i[1]);
      hi2 = std::max(hi2, i[1]);
    }
    std::cout << "  class " << k << ": " << item.size() << " iterations, box ["
              << lo1 << "," << hi1 << "] x [" << lo2 << "," << hi2
              << "]  (same square shape)\n";
  }

  // The skewed offset (t1 * h12 coupling): (0,0) ~ (2,1), but not (2,0).
  std::cout << "skewed offsets: class(0,0) == class(2,1): "
            << (part.class_id({0, 0}) == part.class_id({2, 1}) ? "yes" : "no")
            << "; class(0,0) == class(2,0): "
            << (part.class_id({0, 0}) == part.class_id({2, 0}) ? "yes" : "no")
            << "\n";

  exec::VerifyResult v = exec::verify_schedule(nest, sched);
  std::cout << "legality (trace verifier): " << (v.ok ? "legal" : "ILLEGAL")
            << "\n";

  // In-terminal rendering of the figure: digits are partition classes.
  loopir::LoopNest small = core::example42(6);
  exec::Schedule small_sched = exec::build_schedule(
      small, trans::plan_transform(dep::compute_pdm(small)));
  exec::Isdg small_g = exec::build_isdg(small);
  std::cout << "Figure 5 rendering (N=6; digit = class of each dependent "
               "iteration):\n"
            << small_g.to_ascii(&small_sched) << std::endl;
}

void BM_PartitionScan42(benchmark::State& state) {
  loopir::LoopNest nest = core::example42(state.range(0));
  trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
  const trans::Partitioning& part = *plan.partition;
  for (auto _ : state) {
    intlin::i64 count = 0;
    for (intlin::i64 id = 0; id < part.num_classes(); ++id)
      part.for_each_class_iteration(nest, part.class_label(id),
                                    [&](const intlin::Vec&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PartitionScan42)->Arg(10)->Arg(40)->Arg(80);

void BM_ParallelRun42(benchmark::State& state) {
  loopir::LoopNest nest = core::example42(state.range(0));
  trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    exec::ArrayStore store(nest);
    store.fill_pattern();
    exec::run_parallel(nest, plan, store, pool);
    benchmark::DoNotOptimize(store.checksum());
  }
}
BENCHMARK(BM_ParallelRun42)->Args({60, 1})->Args({60, 2})->Args({60, 4});

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
