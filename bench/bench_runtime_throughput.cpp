// E10: materialized vs streaming execution throughput.
//
// The materialized path pays O(total_iterations x depth) memory and build
// time before the first loop body runs; the streaming runtime starts
// executing immediately and its schedule state is a handful of 32-byte
// descriptors. At sizes where both fit, streaming must match or beat the
// end-to-end materialized throughput; past ~hundreds of MB of schedule the
// materialized path is not runnable at all and is reported as skipped with
// its estimated footprint.
//
// Output is one JSON object per line (scrapeable into BENCH_*.json):
//   {"bench":"runtime_throughput","name":...,"mode":"streaming","threads":2,
//    "n":250,"iterations":251001,"seconds":...,"iters_per_sec":...,
//    "tasks":...,"steals":...,"sched_bytes":...}
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/compiled.h"
#include "exec/runner.h"
#include "runtime/stream_executor.h"
#include "trans/planner.h"

using namespace vdep;
using intlin::i64;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Estimated heap footprint of a materialized Schedule: one std::vector<i64>
// per iteration (header + depth coefficients) plus the per-item vectors.
i64 materialized_bytes(i64 iterations, int depth) {
  return iterations * (static_cast<i64>(sizeof(std::vector<i64>)) + 8 * depth);
}

void emit(const std::string& name, const std::string& mode,
          std::size_t threads, i64 n, i64 iterations, double secs, i64 tasks,
          i64 steals, i64 sched_bytes) {
  std::printf(
      "{\"bench\":\"runtime_throughput\",\"name\":\"%s\",\"mode\":\"%s\","
      "\"threads\":%zu,\"n\":%lld,\"iterations\":%lld,\"seconds\":%.6f,"
      "\"iters_per_sec\":%.0f,\"tasks\":%lld,\"steals\":%lld,"
      "\"sched_bytes\":%lld}\n",
      name.c_str(), mode.c_str(), threads, static_cast<long long>(n),
      static_cast<long long>(iterations), secs,
      secs > 0 ? static_cast<double>(iterations) / secs : 0.0,
      static_cast<long long>(tasks), static_cast<long long>(steals),
      static_cast<long long>(sched_bytes));
}

void emit_skipped(const std::string& name, std::size_t threads, i64 n,
                  i64 est_bytes) {
  std::printf(
      "{\"bench\":\"runtime_throughput\",\"name\":\"%s\","
      "\"mode\":\"materialized\",\"threads\":%zu,\"n\":%lld,"
      "\"skipped\":\"schedule_too_large\",\"est_sched_bytes\":%lld}\n",
      name.c_str(), threads, static_cast<long long>(n),
      static_cast<long long>(est_bytes));
}

double run_materialized(const std::string& name, const loopir::LoopNest& nest,
                        const trans::TransformPlan& plan, std::size_t threads,
                        i64 n) {
  ThreadPool pool(threads);
  exec::ArrayStore store(nest);
  store.fill_pattern();
  auto t0 = std::chrono::steady_clock::now();
  exec::Schedule sched = exec::build_schedule(nest, plan);
  exec::execute_schedule_compiled(nest, sched, store, pool);
  double secs = seconds_since(t0);
  i64 iters = sched.total_iterations();
  emit(name, "materialized", threads, n, iters, secs,
       static_cast<i64>(sched.items.size()), 0,
       materialized_bytes(iters, nest.depth()));
  return secs;
}

double run_streaming(const std::string& name, const loopir::LoopNest& nest,
                     const trans::TransformPlan& plan, std::size_t threads,
                     i64 n) {
  runtime::StreamOptions so;
  so.num_threads = threads;
  runtime::StreamExecutor ex(nest, plan, so);
  exec::ArrayStore store(nest);
  store.fill_pattern();
  auto t0 = std::chrono::steady_clock::now();
  runtime::RuntimeStats rs = ex.run(store);
  double secs = seconds_since(t0);
  // Schedule state: the descriptors that ever existed, 32 bytes each.
  emit(name, "streaming", threads, n, rs.total_iterations(), secs,
       rs.total_tasks(), rs.total_steals(),
       rs.total_tasks() * static_cast<i64>(sizeof(runtime::TaskDescriptor)));
  return secs;
}

struct Case {
  const char* name;
  loopir::LoopNest (*make)(i64);
  i64 both_n;       ///< size where materialized and streaming both run
  i64 streaming_n;  ///< size the materialized path cannot hold
};

}  // namespace

int main(int argc, char** argv) {
  // Optional scale factor (default 1): ./bench_runtime_throughput 2
  i64 scale = argc > 1 ? std::max(1L, std::atol(argv[1])) : 1;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());

  const Case cases[] = {
      {"example_4_2", &core::example42, 250, 2000 * scale},
      {"matmul_reduction", &core::matmul_reduction, 48, 250 * scale},
  };

  for (const Case& c : cases) {
    loopir::LoopNest nest = c.make(c.both_n);
    trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
    for (std::size_t threads : {std::size_t{1}, hw}) {
      double mat = run_materialized(c.name, nest, plan, threads, c.both_n);
      double str = run_streaming(c.name, nest, plan, threads, c.both_n);
      std::printf(
          "{\"bench\":\"runtime_throughput\",\"name\":\"%s\","
          "\"mode\":\"comparison\",\"threads\":%zu,\"n\":%lld,"
          "\"streaming_speedup\":%.3f}\n",
          c.name, threads, static_cast<long long>(c.both_n),
          str > 0 ? mat / str : 0.0);
      if (threads == hw && hw == 1) break;  // avoid duplicate rows
    }

    // The size the materialized path cannot hold: streaming only.
    loopir::LoopNest big = c.make(c.streaming_n);
    trans::TransformPlan big_plan =
        trans::plan_transform(dep::compute_pdm(big));
    emit_skipped(c.name, hw, c.streaming_n,
                 materialized_bytes(big.iteration_count(), big.depth()));
    run_streaming(c.name, big, big_plan, hw, c.streaming_n);
  }
  return 0;
}
