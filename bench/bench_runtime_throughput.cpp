// E10: materialized vs streaming execution throughput, plus the
// skewed-extent scenario of the N-D descriptor splitter.
//
// The materialized path pays O(total_iterations x depth) memory and build
// time before the first loop body runs; the streaming runtime starts
// executing immediately and its schedule state is a handful of small
// descriptors. At sizes where both fit, streaming must match or beat the
// end-to-end materialized throughput; past ~hundreds of MB of schedule the
// materialized path is not runnable at all and is reported as skipped with
// its estimated footprint.
//
// The skewed-extent rows measure nests whose outer DOALL extent is 1-2 but
// whose inner DOALL extent is huge: the legacy outer-only splitter
// (reproduced with split_dims = 1) cannot feed more workers than the outer
// extent, while N-D boxes split the inner axis. `--gate` (CI bench-smoke
// leg) requires the N-D splitter at 8 workers to beat 1 worker AND the
// single-axis splitter at 8 workers by >= 2x, with all stores bit-identical
// to the sequential reference.
//
// Output is one JSON object per line (scrapeable into BENCH_*.json):
//   {"bench":"runtime_throughput","name":...,"mode":"streaming","threads":2,
//    "n":250,"iterations":251001,"seconds":...,"iters_per_sec":...,
//    "tasks":...,"steals":...,"sched_bytes":...}
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>

#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/compiled.h"
#include "exec/interpreter.h"
#include "exec/runner.h"
#include "loopir/builder.h"
#include "obs/trace.h"
#include "runtime/stream_executor.h"
#include "topo/topology.h"
#include "trans/planner.h"

using namespace vdep;
using intlin::i64;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Physical thread count of the host, stamped into every JSON row so
/// speedup figures are interpretable across machines.
std::size_t hw_threads() {
  static const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return hw;
}

// Estimated heap footprint of a materialized Schedule: one std::vector<i64>
// per iteration (header + depth coefficients) plus the per-item vectors.
i64 materialized_bytes(i64 iterations, int depth) {
  return iterations * (static_cast<i64>(sizeof(std::vector<i64>)) + 8 * depth);
}

void emit(const std::string& name, const std::string& mode,
          std::size_t threads, i64 n, i64 iterations, double secs, i64 tasks,
          i64 steals, i64 sched_bytes) {
  std::printf(
      "{\"bench\":\"runtime_throughput\",\"name\":\"%s\",\"mode\":\"%s\","
      "\"threads\":%zu,\"hw_threads\":%zu,\"n\":%lld,\"iterations\":%lld,"
      "\"seconds\":%.6f,"
      "\"iters_per_sec\":%.0f,\"tasks\":%lld,\"steals\":%lld,"
      "\"sched_bytes\":%lld}\n",
      name.c_str(), mode.c_str(), threads, hw_threads(),
      static_cast<long long>(n),
      static_cast<long long>(iterations), secs,
      secs > 0 ? static_cast<double>(iterations) / secs : 0.0,
      static_cast<long long>(tasks), static_cast<long long>(steals),
      static_cast<long long>(sched_bytes));
}

void emit_skipped(const std::string& name, std::size_t threads, i64 n,
                  i64 est_bytes) {
  std::printf(
      "{\"bench\":\"runtime_throughput\",\"name\":\"%s\","
      "\"mode\":\"materialized\",\"threads\":%zu,\"hw_threads\":%zu,"
      "\"n\":%lld,"
      "\"skipped\":\"schedule_too_large\",\"est_sched_bytes\":%lld}\n",
      name.c_str(), threads, hw_threads(), static_cast<long long>(n),
      static_cast<long long>(est_bytes));
}

double run_materialized(const std::string& name, const loopir::LoopNest& nest,
                        const trans::TransformPlan& plan, std::size_t threads,
                        i64 n) {
  ThreadPool pool(threads);
  exec::ArrayStore store(nest);
  store.fill_pattern();
  auto t0 = std::chrono::steady_clock::now();
  exec::Schedule sched = exec::build_schedule(nest, plan);
  exec::execute_schedule_compiled(nest, sched, store, pool);
  double secs = seconds_since(t0);
  i64 iters = sched.total_iterations();
  emit(name, "materialized", threads, n, iters, secs,
       static_cast<i64>(sched.items.size()), 0,
       materialized_bytes(iters, nest.depth()));
  return secs;
}

double run_streaming(const std::string& name, const loopir::LoopNest& nest,
                     const trans::TransformPlan& plan, std::size_t threads,
                     i64 n) {
  runtime::StreamOptions so;
  so.num_threads = threads;
  runtime::StreamExecutor ex(nest, plan, so);
  exec::ArrayStore store(nest);
  store.fill_pattern();
  auto t0 = std::chrono::steady_clock::now();
  runtime::RuntimeStats rs = ex.run(store);
  double secs = seconds_since(t0);
  // Schedule state: the descriptors that ever existed, 32 bytes each.
  emit(name, "streaming", threads, n, rs.total_iterations(), secs,
       rs.total_tasks(), rs.total_steals(),
       rs.total_tasks() * static_cast<i64>(sizeof(runtime::TaskDescriptor)));
  return secs;
}

struct Case {
  const char* name;
  loopir::LoopNest (*make)(i64);
  i64 both_n;       ///< size where materialized and streaming both run
  i64 streaming_n;  ///< size the materialized path cannot hold
};

// ------------------------------------------------- skewed-extent scenario

/// Per-point arithmetic weight: wraps the body value in `rounds` extra
/// multiply-add rounds (e = e*3 - 1, two integer ops each). The base body
/// is one load + one store per point — pure memory traffic — so worker
/// scaling saturates at bandwidth long before it runs out of cores; a few
/// rounds make the point compute-bound and let the scheduler's scaling
/// show. Capped at 24 rounds: |base| < 1.1e6 (value * 3 + index), and
/// 3^24 * 1.1e6 still fits i64, so the compiled kernel never hits signed
/// overflow and stays bit-identical to the interpreter.
constexpr int kMaxFlopsRounds = 24;

loopir::ExprPtr with_flops(loopir::ExprPtr e, int rounds) {
  rounds = std::min(std::max(rounds, 0), kMaxFlopsRounds);
  for (int k = 0; k < rounds; ++k)
    e = loopir::Expr::add(
        loopir::Expr::mul(std::move(e), loopir::Expr::constant(3)),
        loopir::Expr::constant(-1));
  return e;
}

/// skewed_extent with the outer loop collapsed to a single value: the
/// legacy outer-only splitter has exactly one unsplittable descriptor here.
loopir::LoopNest inner_only(i64 n, int flops_per_point = 0) {
  loopir::LoopNestBuilder b;
  b.loop("i1", 0, 0).loop("i2", 0, n);
  b.array("A", {{0, 0}, {0, n}});
  b.array("B", {{0, 0}, {0, n}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
           with_flops(loopir::Expr::add(
                          loopir::Expr::mul(b.read("B", {b.idx(0), b.idx(1)}),
                                            loopir::Expr::constant(3)),
                          loopir::Expr::index(1)),
                      flops_per_point));
  return b.build();
}

/// core::skewed_extent (outer extent 2, huge inner extent) with the same
/// flops knob.
loopir::LoopNest skewed_two_rows(i64 n, int flops_per_point = 0) {
  loopir::LoopNestBuilder b;
  b.loop("i1", 0, 1).loop("i2", 0, n);
  b.array("A", {{0, 1}, {0, n}});
  b.array("B", {{0, 1}, {0, n}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
           with_flops(loopir::Expr::add(
                          loopir::Expr::mul(b.read("B", {b.idx(0), b.idx(1)}),
                                            loopir::Expr::constant(3)),
                          loopir::Expr::index(1)),
                      flops_per_point));
  return b.build();
}

/// One timed streaming run; split_dims = 1 reproduces the pre-N-D
/// outer-only splitter as a measured baseline.
double run_streaming_split(const std::string& name, const loopir::LoopNest& nest,
                           const trans::TransformPlan& plan,
                           std::size_t threads, int split_dims, i64 n,
                           int flops_per_point,
                           exec::ArrayStore* final_store = nullptr) {
  runtime::StreamOptions so;
  so.num_threads = threads;
  so.split_dims = split_dims;
  runtime::StreamExecutor ex(nest, plan, so);
  // First-touch placement so multi-worker runs start with each worker's
  // slice on its own node (values identical; only pages move).
  exec::ArrayStore store(nest,
                         threads > 1 ? exec::ArrayStore::Placement::kFirstTouch
                                     : exec::ArrayStore::Placement::kSerial,
                         threads);
  store.fill_pattern();
  auto t0 = std::chrono::steady_clock::now();
  runtime::RuntimeStats rs = ex.run(store);
  double secs = seconds_since(t0);
  std::printf(
      "{\"bench\":\"runtime_throughput\",\"name\":\"%s\",\"mode\":\"%s\","
      "\"threads\":%zu,\"hw_threads\":%zu,\"n\":%lld,\"flops_per_point\":%d,"
      "\"iterations\":%lld,\"seconds\":%.6f,"
      "\"iters_per_sec\":%.0f,\"tasks\":%lld,\"steals\":%lld,"
      "\"inner_splits\":%lld}\n",
      name.c_str(), split_dims == 1 ? "streaming_single_axis" : "streaming",
      threads, hw_threads(), static_cast<long long>(n), flops_per_point,
      static_cast<long long>(rs.total_iterations()), secs,
      secs > 0 ? static_cast<double>(rs.total_iterations()) / secs : 0.0,
      static_cast<long long>(rs.total_tasks()),
      static_cast<long long>(rs.total_steals()),
      static_cast<long long>(rs.total_inner_splits()));
  if (final_store) *final_store = std::move(store);
  return secs;
}

double best_of(int reps, const std::function<double()>& fn) {
  double best = fn();
  for (int k = 1; k < reps; ++k) best = std::min(best, fn());
  return best;
}

/// The skewed-extent rows (always emitted) and the `--gate` checks: N-D
/// splitting at 8 workers must beat both 1 worker and the single-axis
/// baseline at 8 workers by >= 2x, bit-identically.
int run_skewed(bool gate) {
  const i64 n = 1 << 20;
  // Threshold decisions use the cpus this process may actually run on
  // (taskset/cgroup-aware), not the raw hardware count.
  const std::size_t usable = topo::Topology::system().num_cpus();
  const std::size_t threads = 8;
  int failures = 0;

  struct Shape {
    const char* name;
    loopir::LoopNest nest;
    int flops_per_point;
    bool gate_single_axis;  ///< outer extent 1: the baseline is serial
  };
  // The gate shapes carry 8 extra flops rounds per point: the plain body is
  // one load + one store and saturates memory bandwidth at 2-3 workers,
  // which makes a >= 2x-at-8-workers threshold measure the DRAM controller
  // rather than the scheduler.
  Shape shapes[] = {
      {"skewed_extent", skewed_two_rows(n, 8), 8, false},
      {"skewed_inner_only", inner_only(n, 8), 8, true},
  };

  for (Shape& s : shapes) {
    trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(s.nest));

    exec::ArrayStore ref(s.nest);
    ref.fill_pattern();
    exec::run_sequential(s.nest, ref);

    exec::ArrayStore got_nd(s.nest), got_one(s.nest), got_axis(s.nest);
    const int reps = gate ? 3 : 1;
    double t_one = best_of(reps, [&] {
      return run_streaming_split(s.name, s.nest, plan, 1, 0, n,
                                 s.flops_per_point, &got_one);
    });
    double t_nd = best_of(reps, [&] {
      return run_streaming_split(s.name, s.nest, plan, threads, 0, n,
                                 s.flops_per_point, &got_nd);
    });
    double t_axis = best_of(reps, [&] {
      return run_streaming_split(s.name, s.nest, plan, threads, 1, n,
                                 s.flops_per_point, &got_axis);
    });

    bool identical = ref == got_nd && ref == got_one && ref == got_axis;
    double speedup_workers = t_nd > 0 ? t_one / t_nd : 0.0;
    double speedup_axis = t_nd > 0 ? t_axis / t_nd : 0.0;
    std::printf(
        "{\"bench\":\"runtime_throughput\",\"name\":\"%s\","
        "\"mode\":\"skewed_comparison\",\"threads\":%zu,\"hw_threads\":%zu,"
        "\"n\":%lld,\"flops_per_point\":%d,"
        "\"speedup_8w_vs_1w\":%.3f,\"speedup_vs_single_axis\":%.3f,"
        "\"bit_identical\":%s}\n",
        s.name, threads, hw_threads(), static_cast<long long>(n),
        s.flops_per_point, speedup_workers, speedup_axis,
        identical ? "true" : "false");

    if (!identical) {
      std::fprintf(stderr, "FAIL: %s diverged from the sequential reference\n",
                   s.name);
      ++failures;
    }
    if (!gate) continue;
    // The worker-scaling check needs real cores; the single-axis check only
    // needs the baseline to be (nearly) serial, which outer extent 1
    // guarantees on any machine with >= 2 cores.
    if (usable >= 4 && speedup_workers < 2.0) {
      std::fprintf(stderr,
                   "FAIL: %s 8-worker speedup vs 1 worker %.2fx < 2x\n",
                   s.name, speedup_workers);
      ++failures;
    }
    if (s.gate_single_axis && usable >= 4 && speedup_axis < 2.0) {
      std::fprintf(stderr,
                   "FAIL: %s 8-worker speedup vs single-axis splitter "
                   "%.2fx < 2x\n",
                   s.name, speedup_axis);
      ++failures;
    }
  }
  if (gate && usable < 4) {
    // Structured skip row: scrapers see the gate ran, on what, and why its
    // thresholds did not apply, instead of an absent row.
    std::printf(
        "{\"bench\":\"runtime_throughput\",\"name\":\"speedup_gate\","
        "\"mode\":\"gate_skip\",\"threads\":%zu,\"hw_threads\":%zu,"
        "\"usable_cpus\":%zu,"
        "\"reason\":\"fewer than 4 usable cpus; speedup thresholds skipped, "
        "bit-identity still enforced\"}\n",
        threads, hw_threads(), usable);
    std::fprintf(stderr,
                 "gate: only %zu usable cpu(s); speedup thresholds "
                 "skipped (bit-identity still enforced)\n",
                 usable);
  }
  return failures;
}

// ------------------------------------------------ tracing overhead gate

/// Interleaved best-of comparison of the same streaming run with the
/// global TraceRecorder disabled vs enabled. The instrumentation is
/// per-leaf/per-split (never per-iteration), so even the *enabled* run
/// must stay within the gate; the disabled configuration does strictly
/// less (one cached-flag branch per site), so passing here bounds the
/// "compiled in but off" overhead from above.
int run_trace_overhead(bool gate) {
  const i64 n = 1 << 22;
  const std::size_t threads = std::min<std::size_t>(hw_threads(), 8);
  loopir::LoopNest nest = inner_only(n);
  trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
  runtime::StreamOptions so;
  so.num_threads = threads;
  so.grain = (n + 1) / 2048;  // ~2k leaves: realistic event rate
  runtime::StreamExecutor ex(nest, plan, so);

  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::run_sequential(nest, ref);

  bool identical = true;
  auto time_run = [&] {
    exec::ArrayStore store(nest);
    store.fill_pattern();
    auto t0 = std::chrono::steady_clock::now();
    ex.run(store);
    double secs = seconds_since(t0);
    identical = identical && ref == store;
    return secs;
  };

  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  rec.disable();
  rec.clear();
  time_run();  // warmup (kernel build, page faults)

  double best_off = 1e30, best_on = 1e30;
  std::size_t events = 0;
  const int reps = 9;
  for (int k = 0; k < reps; ++k) {
    rec.disable();
    best_off = std::min(best_off, time_run());
    // Ring sized to the run's ~4k events: each rep's fresh worker thread
    // registers (and zeroes) its buffer inside the timed region, so the
    // 64Ki default would charge a 5 MB allocation to a ~90 ms run.
    rec.enable(8192);
    best_on = std::min(best_on, time_run());
    events = rec.event_count();
    rec.disable();
    rec.clear();
  }

  const double overhead_pct =
      best_off > 0 ? (best_on / best_off - 1.0) * 100.0 : 0.0;
  std::printf(
      "{\"bench\":\"runtime_throughput\",\"name\":\"trace_overhead\","
      "\"mode\":\"trace_overhead\",\"threads\":%zu,\"hw_threads\":%zu,"
      "\"n\":%lld,\"seconds_trace_off\":%.6f,\"seconds_trace_on\":%.6f,"
      "\"enabled_overhead_pct\":%.2f,\"events\":%zu,"
      "\"bit_identical\":%s,\"gate_pct\":2.0}\n",
      threads, hw_threads(), static_cast<long long>(n), best_off, best_on,
      overhead_pct, events, identical ? "true" : "false");

  int failures = 0;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: trace_overhead diverged from the sequential "
                 "reference\n");
    ++failures;
  }
  if (gate && overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "FAIL: tracing-enabled run %.2f%% slower than disabled "
                 "(gate 2%%)\n",
                 overhead_pct);
    ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  // `--gate`: run only the skewed-extent scenario with its >= 2x checks
  // (CI bench-smoke leg). `--trace-overhead-gate`: interleaved tracing
  // on/off comparison with a <= 2% ceiling. Otherwise an optional scale
  // factor (default 1): ./bench_runtime_throughput 2
  if (argc > 1 && std::strcmp(argv[1], "--gate") == 0)
    return run_skewed(/*gate=*/true) == 0 ? 0 : 1;
  if (argc > 1 && std::strcmp(argv[1], "--trace-overhead-gate") == 0)
    return run_trace_overhead(/*gate=*/true) == 0 ? 0 : 1;
  i64 scale = argc > 1 ? std::max(1L, std::atol(argv[1])) : 1;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());

  const Case cases[] = {
      {"example_4_2", &core::example42, 250, 2000 * scale},
      {"matmul_reduction", &core::matmul_reduction, 48, 250 * scale},
  };

  for (const Case& c : cases) {
    loopir::LoopNest nest = c.make(c.both_n);
    trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
    for (std::size_t threads : {std::size_t{1}, hw}) {
      double mat = run_materialized(c.name, nest, plan, threads, c.both_n);
      double str = run_streaming(c.name, nest, plan, threads, c.both_n);
      std::printf(
          "{\"bench\":\"runtime_throughput\",\"name\":\"%s\","
          "\"mode\":\"comparison\",\"threads\":%zu,\"hw_threads\":%zu,"
          "\"n\":%lld,"
          "\"streaming_speedup\":%.3f}\n",
          c.name, threads, hw_threads(), static_cast<long long>(c.both_n),
          str > 0 ? mat / str : 0.0);
      if (threads == hw && hw == 1) break;  // avoid duplicate rows
    }

    // The size the materialized path cannot hold: streaming only.
    loopir::LoopNest big = c.make(c.streaming_n);
    trans::TransformPlan big_plan =
        trans::plan_transform(dep::compute_pdm(big));
    emit_skipped(c.name, hw, c.streaming_n,
                 materialized_bytes(big.iteration_count(), big.depth()));
    run_streaming(c.name, big, big_plan, hw, c.streaming_n);
  }

  run_skewed(/*gate=*/false);
  run_trace_overhead(/*gate=*/false);
  return 0;
}
