// Static verification of a partitioned JIT range kernel.
//
// A partitioned kernel (codegen::emit_c_partitioned_range_kernel) replaces
// the per-level bound∩box clamps of the steady region with direct box-slice
// scans. That is only sound if the partition derivation was right, so the
// verifier re-proves, from the LoopPartition artifact and the emitted C
// text, every obligation the fast path depends on — and the JIT refuses to
// load the partitioned kernel (falling back to the clamped one) unless all
// of them hold:
//
//   1. completeness — the constraint set covers every non-static bound
//      term of the boxed DOALL prefix (an independently re-derived
//      partition must agree exactly), so no clamp was silently dropped;
//   2. exact cover + steadiness — over a battery of sampled descriptor
//      boxes (full hull, corners, half boxes, single-point and
//      steady-emptying slices), the numerically solved steady range makes
//      prologue/steady/epilogue tile [box_lo[p], box_hi[p]] exactly, and
//      an IntervalEnv over the box slices proves every level's bound∩box
//      is the identity inside the steady region (so the steady scan visits
//      genuine polytope points — no phantom corners);
//   3. clamp-free steady text — between the emitted steady-region markers,
//      outside the marked Theorem-2 scan section (whose bound evaluations
//      legitimately use min/max/mod), the loop headers contain no
//      vdep_max/vdep_min/vdep_floordiv/vdep_ceildiv and no vdep_ndims
//      test;
//   4. subscript ranges — a second, interval-arithmetic oracle re-proves
//      exec::prove_subscript_ranges' claim on the original nest (the
//      Fourier–Motzkin proof the JIT already requires). Together with
//      obligation 2 — every region scans a subset of the polytope — this
//      extends the range proof region-by-region.
//
// The same checks back the `tools/vdep-verify` CLI, which prints the
// obligation-by-obligation report for a DSL source file.
#pragma once

#include <string>
#include <vector>

#include "analysis/loop_partition.h"

namespace vdep::analysis {

struct VerifierReport {
  bool ok = false;
  /// One line per obligation: "exact-cover: PASS (7 boxes)" / "...: FAIL".
  std::vector<std::string> obligations;
  /// Failure details (empty when ok).
  std::vector<std::string> failures;

  /// "verified (4 obligations)" or "rejected: <first failure>".
  std::string summary() const;
  /// Multi-line, obligations then failures.
  std::string to_string() const;
};

/// Verifies `part` and the emitted partitioned TU `source` against the
/// transformed nest (`transformed` = codegen::rewrite_nest(original,
/// plan).nest, `num_doall` = plan.num_doall). `original` is the
/// pre-transform nest the subscript-range oracle runs over. Never throws:
/// any analysis overflow fails the affected obligation conservatively.
VerifierReport verify_partitioned_kernel(const loopir::LoopNest& original,
                                         const loopir::LoopNest& transformed,
                                         int num_doall,
                                         const LoopPartition& part,
                                         const std::string& source);

}  // namespace vdep::analysis
