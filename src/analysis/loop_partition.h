// Steady-state loop partitioning of the JIT range kernel's DOALL prefix.
//
// The emitted range kernel intersects every boxed DOALL level's transformed
// bound with the descriptor box (`max(bound_lo, box_lo)`,
// `min(bound_hi, box_hi)`) on every loop entry, which keeps the compiler
// from proving anything about the inner trip counts. This pass derives, in
// the style of Halide's LoopPartition, the maximal sub-range of one
// partition axis on which every clamp is *statically the identity* —
// `bound∩box == box` — so the emitted nest splits into
//
//   prologue  [box_lo[p], S_lo-1]   clamped (boundary) code
//   steady    [S_lo,      S_hi]     clamp-free: every boxed level scans
//                                   exactly [box_lo[k], box_hi[k]]
//   epilogue  [S_hi+1,   box_hi[p]] clamped (boundary) code
//
// with S_lo/S_hi computed once at kernel entry from the (runtime) box.
// The three ranges tile [box_lo[p], box_hi[p]] exactly by construction; a
// negative-extent steady range is normalized to the canonical empty pair
// (S_lo = box_hi[p]+1, S_hi = box_hi[p]) so the prologue absorbs the whole
// axis and the epilogue collapses — Halide's max(0, extent) idiom.
//
// Derivation. A boxed level whose bound intervals over the hull
// (analysis/interval.h) are points is *statically steady*: the runtime box
// is always a sub-box of the hull, so the clamp is the identity everywhere
// and the level simply scans its box slice. For each remaining non-static
// bound term (num, den) at level k, identity at an outer point means
//
//   lower term:  ceil(num/den) <= box_lo[k]   <=>   num <= den*box_lo[k]
//   upper term: floor(num/den) >= box_hi[k]   <=>   num >= den*box_hi[k]
//
// — affine inequalities in the enclosing transformed indices. The
// partition axis p is the smallest index referenced by any of them, which
// makes every level <= p statically steady (a non-static bound at such a
// level would reference an even smaller index). Each inequality is solved
// for j_p by worst-casing the other referenced indices over their box
// ranges (exactly what they scan inside the steady region), yielding a
// lower limit, an upper limit, or — when j_p's coefficient is zero — a
// whole-box runtime guard. codegen/emit_c.cpp turns the ClipConstraints
// into the S_lo/S_hi/guard expressions; analysis/kernel_verifier.h
// independently re-derives and checks them before the partitioned kernel
// is allowed to load.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/interval.h"

namespace vdep::analysis {

/// One solved identity condition of a non-static bound term.
struct ClipConstraint {
  /// Boxed DOALL level whose clamp this discharges.
  int level = 0;
  /// True when it comes from a lower-bound term (num <= den*box_lo[level]);
  /// false for an upper-bound term (num >= den*box_hi[level]).
  bool lower = true;
  /// The original term of the transformed bound.
  loopir::BoundTerm term;
  /// term.num.coeff(axis): > 0 / < 0 pick the solve direction; == 0 makes
  /// this a whole-box runtime guard.
  i64 coeff_axis = 0;

  std::string to_string(const std::vector<std::string>& names) const;
};

/// The partition of a plan's boxed DOALL prefix.
struct LoopPartition {
  /// Number of DOALL levels analyzed (the plan's num_doall).
  int num_levels = 0;
  /// Partition axis p, or -1 when every level is statically steady (the
  /// whole box is one steady region and no split code is emitted).
  int axis = -1;
  /// Per level: 1 when both bounds are statically steady over the hull.
  std::vector<std::uint8_t> level_static;
  /// Identity conditions of every non-static term, solved for `axis`.
  std::vector<ClipConstraint> constraints;
  /// Interval hulls the derivation ran over (verifier input).
  IntervalEnv env;

  bool fully_static() const { return axis < 0; }
  std::string to_string(const std::vector<std::string>& names) const;
};

/// Derives the steady-state partition of `plan`'s DOALL prefix over the
/// transformed nest (codegen::rewrite_nest output). Returns nullopt when
/// the analysis cannot certify a partition — today only when the interval
/// arithmetic overflows int64 — in which case callers keep the clamped
/// kernel. A plan with no DOALL loops yields the trivial fully-static
/// partition (nothing is boxed, nothing to split).
std::optional<LoopPartition> analyze_partition(
    const loopir::LoopNest& transformed, int num_doall);

}  // namespace vdep::analysis
