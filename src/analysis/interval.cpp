#include "analysis/interval.h"

#include <algorithm>

#include "support/error.h"

namespace vdep::analysis {

namespace {

i64 min2(i64 a, i64 b) { return a < b ? a : b; }
i64 max2(i64 a, i64 b) { return a > b ? a : b; }

}  // namespace

Interval Interval::operator+(const Interval& o) const {
  if (is_empty() || o.is_empty()) return empty();
  return {checked::add(lo, o.lo), checked::add(hi, o.hi)};
}

Interval Interval::scaled(i64 c) const {
  if (is_empty()) return empty();
  if (c == 0) return point(0);
  i64 a = checked::mul(lo, c);
  i64 b = checked::mul(hi, c);
  return c > 0 ? Interval{a, b} : Interval{b, a};
}

Interval Interval::plus(i64 c) const {
  if (is_empty()) return empty();
  return {checked::add(lo, c), checked::add(hi, c)};
}

Interval Interval::ceil_div(i64 den) const {
  VDEP_REQUIRE(den > 0, "Interval::ceil_div: divisor must be positive");
  if (is_empty()) return empty();
  return {checked::ceil_div(lo, den), checked::ceil_div(hi, den)};
}

Interval Interval::floor_div(i64 den) const {
  VDEP_REQUIRE(den > 0, "Interval::floor_div: divisor must be positive");
  if (is_empty()) return empty();
  return {checked::floor_div(lo, den), checked::floor_div(hi, den)};
}

Interval Interval::hull(const Interval& o) const {
  if (is_empty()) return o;
  if (o.is_empty()) return *this;
  return {min2(lo, o.lo), max2(hi, o.hi)};
}

Interval Interval::intersect(const Interval& o) const {
  if (is_empty() || o.is_empty()) return empty();
  Interval r{max2(lo, o.lo), min2(hi, o.hi)};
  return r.is_empty() ? empty() : r;
}

std::string Interval::to_string() const {
  if (is_empty()) return "[]";
  return "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
}

IntervalEnv IntervalEnv::from_nest(const loopir::LoopNest& nest, int levels) {
  return from_nest_with_prefix(nest, levels, {});
}

IntervalEnv IntervalEnv::from_nest_with_prefix(const loopir::LoopNest& nest,
                                               int levels,
                                               std::vector<Interval> prefix) {
  VDEP_REQUIRE(levels >= 0 && levels <= nest.depth(),
               "IntervalEnv::from_nest: levels out of range");
  VDEP_REQUIRE(static_cast<int>(prefix.size()) <= levels,
               "IntervalEnv::from_nest_with_prefix: prefix longer than levels");
  IntervalEnv env;
  env.hulls_.reserve(static_cast<std::size_t>(levels));
  for (const Interval& given : prefix) {
    if (given.is_empty()) {
      env.empty_ = true;
      env.hulls_.assign(static_cast<std::size_t>(levels), Interval::empty());
      return env;
    }
    env.hulls_.push_back(given);
  }
  for (int k = static_cast<int>(prefix.size()); k < levels; ++k) {
    const loopir::Level& lv = nest.level(k);
    Interval lo = env.bound_interval(lv.lower, /*lower=*/true, k);
    Interval hi = env.bound_interval(lv.upper, /*lower=*/false, k);
    // The level ranges over [lower, upper] for *some* enclosing point, so
    // its hull is [min possible lower, max possible upper] — unless that
    // comes out inverted, in which case the whole space is provably empty.
    Interval hull{lo.lo, hi.hi};
    if (hull.is_empty()) {
      env.empty_ = true;
      env.hulls_.assign(static_cast<std::size_t>(levels), Interval::empty());
      return env;
    }
    env.hulls_.push_back(hull);
  }
  return env;
}

IntervalEnv IntervalEnv::from_hulls(std::vector<Interval> hulls) {
  IntervalEnv env;
  for (const Interval& h : hulls) {
    if (h.is_empty()) {
      env.empty_ = true;
      env.hulls_.assign(hulls.size(), Interval::empty());
      return env;
    }
  }
  env.hulls_ = std::move(hulls);
  return env;
}

const Interval& IntervalEnv::level_hull(int k) const {
  VDEP_REQUIRE(k >= 0 && k < levels(), "IntervalEnv::level_hull: bad level");
  return hulls_[static_cast<std::size_t>(k)];
}

Interval IntervalEnv::eval(const loopir::AffineExpr& e, int upto) const {
  VDEP_REQUIRE(upto >= 0 && upto <= levels(),
               "IntervalEnv::eval: upto out of range");
  VDEP_REQUIRE(e.last_index_used() < upto,
               "IntervalEnv::eval: expression references a level at or "
               "beyond upto");
  Interval acc = Interval::point(e.constant_term());
  for (int m = 0; m < upto; ++m) {
    i64 c = e.coeff(m);
    if (c == 0) continue;
    acc = acc + hulls_[static_cast<std::size_t>(m)].scaled(c);
  }
  return acc;
}

Interval IntervalEnv::term_interval(const loopir::BoundTerm& t, bool lower,
                                    int upto) const {
  Interval num = eval(t.num, upto);
  if (t.den == 1) return num;
  return lower ? num.ceil_div(t.den) : num.floor_div(t.den);
}

Interval IntervalEnv::bound_interval(const loopir::Bound& b, bool lower,
                                     int upto) const {
  VDEP_REQUIRE(!b.empty(), "IntervalEnv::bound_interval: empty bound");
  // A lower bound evaluates to max over terms, so its min is the max of
  // term mins and its max is the max of term maxes (dually for upper):
  // endpoint-wise max/min of the term intervals.
  Interval acc = term_interval(b.terms().front(), lower, upto);
  for (std::size_t i = 1; i < b.terms().size(); ++i) {
    Interval t = term_interval(b.terms()[i], lower, upto);
    if (lower) {
      acc = {max2(acc.lo, t.lo), max2(acc.hi, t.hi)};
    } else {
      acc = {min2(acc.lo, t.lo), min2(acc.hi, t.hi)};
    }
  }
  return acc;
}

}  // namespace vdep::analysis
