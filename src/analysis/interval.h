// Interval analysis over the affine transformed loop bounds.
//
// An Interval is a closed integer range [lo, hi] (empty when lo > hi); the
// IntervalEnv assigns one to each loop level of a (transformed) nest,
// outermost-in: a level's bounds only reference enclosing levels, so
// interval arithmetic over the already-computed hulls bounds every term,
// and max-of-term-mins (dually min-of-term-maxes) gives a sound
// rectangular hull of the iteration space's projection — a superset of the
// true projection, exact for the common rectangular case, and a *point*
// exactly when the bound provably evaluates to one value over every
// enclosed sub-box. That last property is what the steady-state loop
// partition (analysis/loop_partition.h) keys on, and the hull itself is
// what the streaming runtime boxes descriptors over (it used to carry a
// private copy of this arithmetic; runtime::StreamExecutor now delegates
// here).
//
// All arithmetic is overflow-checked (support/checked.h): a nest whose
// bounds would overflow the analysis throws OverflowError, which callers
// (the partition pass, the verifier) turn into a conservative "don't
// specialize" answer.
#pragma once

#include <string>
#include <vector>

#include "loopir/nest.h"
#include "support/checked.h"

namespace vdep::analysis {

using intlin::i64;

/// A closed integer interval [lo, hi]; lo > hi encodes the empty interval
/// (canonically {0, -1}).
struct Interval {
  i64 lo = 0;
  i64 hi = -1;

  static Interval empty() { return {0, -1}; }
  static Interval point(i64 v) { return {v, v}; }
  static Interval of(i64 lo, i64 hi) { return {lo, hi}; }

  bool is_empty() const { return lo > hi; }
  bool is_point() const { return lo == hi; }
  /// Number of integers covered (0 when empty); overflow-checked.
  i64 extent() const { return is_empty() ? 0 : checked::add(checked::sub(hi, lo), 1); }

  bool contains(i64 v) const { return lo <= v && v <= hi; }
  bool contains(const Interval& o) const {
    return o.is_empty() || (lo <= o.lo && o.hi <= hi);
  }

  /// Minkowski sum; empty absorbs.
  Interval operator+(const Interval& o) const;
  /// {c*v : v in this}; scaling by a negative c swaps the endpoints.
  Interval scaled(i64 c) const;
  Interval plus(i64 c) const;
  /// Endpoint-wise ceil(v/den) (den > 0). Lower-bound term rounding.
  Interval ceil_div(i64 den) const;
  /// Endpoint-wise floor(v/den) (den > 0). Upper-bound term rounding.
  Interval floor_div(i64 den) const;

  /// Smallest interval containing both (the lattice join).
  Interval hull(const Interval& o) const;
  Interval intersect(const Interval& o) const;

  bool operator==(const Interval& o) const = default;
  std::string to_string() const;
};

/// Per-level interval hulls of the leading `levels` dimensions of a nest.
class IntervalEnv {
 public:
  /// Builds the hulls of levels [0, levels) of `nest`, outermost-in. If
  /// any level's hull comes out empty the whole space is empty and every
  /// level is assigned the canonical empty interval. Throws OverflowError
  /// when the interval arithmetic leaves int64.
  static IntervalEnv from_nest(const loopir::LoopNest& nest, int levels);

  /// As from_nest, but the leading prefix.size() levels take the given
  /// hulls verbatim (e.g. a descriptor box slice, or one region of a
  /// steady-state partition) and only the deeper levels are derived from
  /// the nest's bounds. An empty interval anywhere in the prefix marks the
  /// whole space empty. The kernel verifier uses this to bound subscripts
  /// and trailing bounds region-by-region.
  static IntervalEnv from_nest_with_prefix(const loopir::LoopNest& nest,
                                           int levels,
                                           std::vector<Interval> prefix);

  /// An env over explicitly given hulls (no nest; eval/bound_interval
  /// only). Any empty hull marks the whole space empty.
  static IntervalEnv from_hulls(std::vector<Interval> hulls);

  int levels() const { return static_cast<int>(hulls_.size()); }
  bool empty_space() const { return empty_; }
  const Interval& level_hull(int k) const;
  const std::vector<Interval>& hulls() const { return hulls_; }

  /// Interval of an affine expression over the hulls of levels [0, upto).
  /// Coefficients at or beyond `upto` must be zero (the expression must
  /// only reference enclosing levels); throws PreconditionError otherwise.
  Interval eval(const loopir::AffineExpr& e, int upto) const;

  /// Interval of one bound term over levels [0, upto): the numerator's
  /// interval divided by den with lower-bound (ceil) or upper-bound
  /// (floor) rounding.
  Interval term_interval(const loopir::BoundTerm& t, bool lower,
                         int upto) const;

  /// Interval of a whole bound over levels [0, upto): for a lower bound
  /// the max over terms (endpoint-wise max of term intervals), for an
  /// upper bound the min.
  Interval bound_interval(const loopir::Bound& b, bool lower, int upto) const;

  /// True when the bound provably evaluates to a single value over every
  /// sub-box of the hull — its interval over levels [0, k) is a point.
  /// Constant bounds qualify trivially; bounds referencing only
  /// point-hulled levels (e.g. a degenerate extent-1 axis) qualify too,
  /// which is where interval analysis beats a syntactic constancy test.
  bool is_static(const loopir::Bound& b, bool lower, int k) const {
    return empty_ || bound_interval(b, lower, k).is_point();
  }

 private:
  std::vector<Interval> hulls_;
  bool empty_ = false;
};

}  // namespace vdep::analysis
