#include "analysis/kernel_verifier.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace vdep::analysis {

namespace {

// ---- steady-range solving (the C++ twin of the emitted S computation) --

struct SteadyRange {
  i64 s_lo = 0;
  i64 s_hi = -1;  // empty by default
};

/// Solves the steady sub-range of the partition axis for one effective box
/// (already clamped to the hull), with the same normalization the emitted
/// kernel applies: candidates shrink [blo_P, bhi_P]; failed guards or an
/// inverted range collapse to the canonical empty pair {bhi_P+1, bhi_P}.
/// All arithmetic checked; throws OverflowError like the rest of analysis.
SteadyRange solve_steady(const LoopPartition& part,
                         const std::vector<Interval>& box) {
  const int P = part.axis;
  SteadyRange s;
  s.s_lo = box[static_cast<std::size_t>(P)].lo;
  s.s_hi = box[static_cast<std::size_t>(P)].hi;
  bool guard_failed = false;
  for (const ClipConstraint& c : part.constraints) {
    const loopir::AffineExpr& num = c.term.num;
    const Interval& lvl = box[static_cast<std::size_t>(c.level)];
    i64 k = checked::sub(checked::mul(c.term.den, c.lower ? lvl.lo : lvl.hi),
                         num.constant_term());
    for (int m = 0; m < c.level; ++m) {
      if (m == P) continue;
      i64 cm = num.coeff(m);
      if (cm == 0) continue;
      const Interval& b = box[static_cast<std::size_t>(m)];
      bool worst_hi = c.lower ? (cm > 0) : (cm < 0);
      k = checked::sub(k, checked::mul(cm, worst_hi ? b.hi : b.lo));
    }
    if (c.coeff_axis == 0) {
      if (c.lower ? (k < 0) : (k > 0)) guard_failed = true;
    } else if ((c.coeff_axis > 0) == c.lower) {
      s.s_hi = std::min(s.s_hi, checked::floor_div(k, c.coeff_axis));
    } else {
      s.s_lo = std::max(s.s_lo, checked::ceil_div(k, c.coeff_axis));
    }
  }
  if (guard_failed || s.s_lo > s.s_hi) {
    s.s_lo = checked::add(box[static_cast<std::size_t>(P)].hi, 1);
    s.s_hi = box[static_cast<std::size_t>(P)].hi;
  }
  return s;
}

/// Sampled descriptor boxes inside the hull: the shapes that exercise full
/// coverage, corners, degenerate single-iteration axes and steady-emptying
/// slices. Every returned box is non-empty and a sub-box of the hull.
std::vector<std::vector<Interval>> sample_boxes(
    const std::vector<Interval>& hull, int axis) {
  std::vector<std::vector<Interval>> out;
  auto push = [&](std::vector<Interval> box) {
    for (const Interval& b : box)
      if (b.is_empty()) return;
    out.push_back(std::move(box));
  };
  const int n = static_cast<int>(hull.size());
  push(hull);  // full hull
  std::vector<Interval> lo_corner, hi_corner, lo_half, hi_half;
  for (const Interval& h : hull) {
    lo_corner.push_back(Interval::point(h.lo));
    hi_corner.push_back(Interval::point(h.hi));
    i64 mid = checked::add(h.lo, checked::sub(h.hi, h.lo) / 2);
    lo_half.push_back(Interval::of(h.lo, mid));
    hi_half.push_back(Interval::of(mid, h.hi));
  }
  push(lo_corner);
  push(hi_corner);
  push(lo_half);
  push(hi_half);
  if (axis >= 0 && axis < n) {
    // Thin slices of the partition axis at the hull ends: the shapes most
    // likely to produce an empty or negative-extent steady range.
    std::vector<Interval> lo_slice = hull, hi_slice = hull;
    lo_slice[static_cast<std::size_t>(axis)] =
        Interval::point(hull[static_cast<std::size_t>(axis)].lo);
    hi_slice[static_cast<std::size_t>(axis)] =
        Interval::point(hull[static_cast<std::size_t>(axis)].hi);
    push(lo_slice);
    push(hi_slice);
  }
  return out;
}

// ---- textual checks ----------------------------------------------------

std::size_t count_occurrences(const std::string& text, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t at = text.find(pat); at != std::string::npos;
       at = text.find(pat, at + pat.size()))
    ++n;
  return n;
}

/// Text between the single `begin`/`end` marker pair, or nullopt when the
/// pair is missing or duplicated.
std::optional<std::string> extract_between(const std::string& text,
                                           const std::string& begin,
                                           const std::string& end) {
  if (count_occurrences(text, begin) != 1 || count_occurrences(text, end) != 1)
    return std::nullopt;
  std::size_t b = text.find(begin) + begin.size();
  std::size_t e = text.find(end);
  if (e < b) return std::nullopt;
  return text.substr(b, e - b);
}

/// Removes every `/* vdep:scan begin */ ... /* vdep:scan end */` section.
std::string strip_scan_sections(std::string text) {
  const std::string b = "/* vdep:scan begin */";
  const std::string e = "/* vdep:scan end */";
  for (;;) {
    std::size_t at = text.find(b);
    if (at == std::string::npos) return text;
    std::size_t stop = text.find(e, at);
    if (stop == std::string::npos) return text;  // dangling: leave for caller
    text.erase(at, stop + e.size() - at);
  }
}

}  // namespace

std::string VerifierReport::summary() const {
  if (ok)
    return "verified (" + std::to_string(obligations.size()) +
           " obligations)";
  return "rejected: " + (failures.empty() ? std::string("unknown")
                                          : failures.front());
}

std::string VerifierReport::to_string() const {
  std::ostringstream os;
  for (const std::string& o : obligations) os << o << "\n";
  for (const std::string& f : failures) os << "FAIL: " << f << "\n";
  os << (ok ? "VERDICT: verified" : "VERDICT: rejected") << "\n";
  return os.str();
}

VerifierReport verify_partitioned_kernel(const loopir::LoopNest& original,
                                         const loopir::LoopNest& transformed,
                                         int num_doall,
                                         const LoopPartition& part,
                                         const std::string& source) {
  VerifierReport rep;
  auto fail = [&](std::string msg) { rep.failures.push_back(std::move(msg)); };
  std::vector<std::string> names = transformed.index_names();

  // ---- obligation 1: completeness --------------------------------------
  {
    std::size_t before = rep.failures.size();
    std::optional<LoopPartition> redo =
        analyze_partition(transformed, num_doall);
    if (!redo) {
      fail("completeness: independent re-derivation refused to partition");
    } else {
      if (redo->axis != part.axis)
        fail("completeness: axis mismatch (derived " +
             std::to_string(redo->axis) + ", presented " +
             std::to_string(part.axis) + ")");
      if (redo->level_static != part.level_static)
        fail("completeness: per-level static flags differ");
      if (redo->constraints.size() != part.constraints.size())
        fail("completeness: " + std::to_string(redo->constraints.size()) +
             " constraint(s) derived, " +
             std::to_string(part.constraints.size()) + " presented");
    }
    // Every non-static bound term must be discharged by some constraint
    // (catches a tampered plan even if the counts happen to agree).
    for (int k = 0; k < num_doall && k < transformed.depth(); ++k) {
      for (bool lower : {true, false}) {
        const loopir::Bound& b =
            lower ? transformed.level(k).lower : transformed.level(k).upper;
        bool is_static = true;
        try {
          is_static = part.env.is_static(b, lower, k);
        } catch (const Error& e) {
          fail(std::string("completeness: interval evaluation failed: ") +
               e.what());
          continue;
        }
        if (is_static) continue;
        for (const loopir::BoundTerm& t : b.terms()) {
          bool found = false;
          for (const ClipConstraint& c : part.constraints)
            if (c.level == k && c.lower == lower && c.term == t) {
              found = true;
              break;
            }
          if (!found)
            fail("completeness: level " + std::to_string(k) +
                 (lower ? " lower" : " upper") + " term (" +
                 t.num.to_string(names) + ")/" + std::to_string(t.den) +
                 " has no clip constraint");
        }
      }
    }
    rep.obligations.push_back(rep.failures.size() == before
                                  ? "completeness: PASS"
                                  : "completeness: FAIL");
  }

  // ---- obligation 2: exact cover + steadiness over sampled boxes -------
  {
    std::size_t before = rep.failures.size();
    if (part.env.empty_space()) {
      rep.obligations.push_back(
          "exact-cover: PASS (empty iteration space, nothing to cover)");
    } else {
      std::size_t boxes = 0;
      try {
        for (const std::vector<Interval>& box :
             sample_boxes(part.env.hulls(), part.axis)) {
          ++boxes;
          // The steady region is the whole box when fully static; else the
          // solved sub-range of the partition axis, whose complement must
          // tile the axis range exactly.
          std::vector<Interval> slices = box;
          if (!part.fully_static()) {
            const Interval& bp = box[static_cast<std::size_t>(part.axis)];
            SteadyRange s = solve_steady(part, box);
            Interval pro = Interval::of(bp.lo, checked::sub(s.s_lo, 1));
            Interval ste = Interval::of(s.s_lo, s.s_hi);
            Interval epi = Interval::of(checked::add(s.s_hi, 1), bp.hi);
            i64 total = checked::add(checked::add(pro.extent(), ste.extent()),
                                     epi.extent());
            bool cover =
                s.s_lo >= bp.lo && s.s_lo <= checked::add(bp.hi, 1) &&
                s.s_hi <= bp.hi && s.s_hi >= checked::sub(s.s_lo, 1) &&
                total == bp.extent();
            if (!cover)
              fail("exact-cover: regions [" + pro.to_string() + ", " +
                   ste.to_string() + ", " + epi.to_string() +
                   "] do not tile axis range " + bp.to_string());
            if (ste.is_empty()) continue;  // no steady region: nothing to prove
            slices[static_cast<std::size_t>(part.axis)] = ste;
          }
          // Steadiness: inside the steady region every boxed level's
          // bound∩box must be the identity. Interval proof over the box
          // slices (axis restricted to the steady range).
          IntervalEnv env = IntervalEnv::from_hulls(slices);
          for (int k = 0; k < num_doall; ++k) {
            const Interval& bk = box[static_cast<std::size_t>(k)];
            Interval lo_iv =
                env.bound_interval(transformed.level(k).lower, true, k);
            Interval hi_iv =
                env.bound_interval(transformed.level(k).upper, false, k);
            if (lo_iv.hi > bk.lo)
              fail("steadiness: level " + std::to_string(k) +
                   " lower bound can exceed the box (interval " +
                   lo_iv.to_string() + " vs box lo " + std::to_string(bk.lo) +
                   ")");
            if (hi_iv.lo < bk.hi)
              fail("steadiness: level " + std::to_string(k) +
                   " upper bound can undercut the box (interval " +
                   hi_iv.to_string() + " vs box hi " + std::to_string(bk.hi) +
                   ")");
          }
        }
      } catch (const Error& e) {
        fail(std::string("exact-cover: analysis overflow/error: ") + e.what());
      }
      rep.obligations.push_back(
          rep.failures.size() == before
              ? "exact-cover+steadiness: PASS (" + std::to_string(boxes) +
                    " sampled boxes)"
              : "exact-cover+steadiness: FAIL");
    }
  }

  // ---- obligation 3: clamp-free steady text ----------------------------
  {
    std::size_t before = rep.failures.size();
    if (count_occurrences(source, "/* vdep:partitioned begin */") != 1 ||
        count_occurrences(source, "/* vdep:partitioned end */") != 1)
      fail("steady-text: partitioned fast-path markers missing or duplicated");
    std::optional<std::string> steady = extract_between(
        source, "/* vdep:region steady begin */", "/* vdep:region steady end */");
    if (!steady) {
      fail("steady-text: steady region markers missing or duplicated");
    } else {
      if (!part.fully_static()) {
        for (const char* region : {"prologue", "epilogue"}) {
          std::string b = std::string("/* vdep:region ") + region + " begin */";
          std::string e = std::string("/* vdep:region ") + region + " end */";
          if (count_occurrences(source, b) != 1 ||
              count_occurrences(source, e) != 1)
            fail(std::string("steady-text: ") + region +
                 " region markers missing or duplicated");
        }
      }
      std::string headers = strip_scan_sections(*steady);
      if (count_occurrences(headers, "/* vdep:scan begin */") != 0)
        fail("steady-text: dangling scan marker in the steady region");
      for (const char* banned : {"vdep_max(", "vdep_min(", "vdep_floordiv(",
                                 "vdep_ceildiv(", "vdep_ndims"}) {
        if (count_occurrences(headers, banned) != 0)
          fail(std::string("steady-text: clamp artifact '") + banned +
               "' inside the steady region headers");
      }
    }
    rep.obligations.push_back(rep.failures.size() == before
                                  ? "steady-text: PASS"
                                  : "steady-text: FAIL");
  }

  // ---- obligation 4: subscript ranges (interval oracle) ----------------
  {
    std::size_t before = rep.failures.size();
    try {
      IntervalEnv env = IntervalEnv::from_nest(original, original.depth());
      original.for_each_access([&](const loopir::ArrayRef& ref, int, bool) {
        const loopir::ArrayDecl& decl = original.array(ref.array);
        for (int d = 0; d < decl.arity(); ++d) {
          Interval iv = env.eval(ref.subscripts[static_cast<std::size_t>(d)],
                                 original.depth());
          auto [lo, hi] = decl.dims[static_cast<std::size_t>(d)];
          if (!Interval::of(lo, hi).contains(iv))
            fail("subscript-ranges: " + ref.array + " dim " +
                 std::to_string(d) + " interval " + iv.to_string() +
                 " can leave declared [" + std::to_string(lo) + ", " +
                 std::to_string(hi) + "]");
        }
      });
    } catch (const Error& e) {
      fail(std::string("subscript-ranges: interval oracle failed: ") +
           e.what());
    }
    rep.obligations.push_back(rep.failures.size() == before
                                  ? "subscript-ranges: PASS (interval oracle)"
                                  : "subscript-ranges: FAIL");
  }

  rep.ok = rep.failures.empty();
  return rep;
}

}  // namespace vdep::analysis
