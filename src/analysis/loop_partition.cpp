#include "analysis/loop_partition.h"

#include <limits>
#include <sstream>

#include "support/error.h"

namespace vdep::analysis {

std::string ClipConstraint::to_string(
    const std::vector<std::string>& names) const {
  std::ostringstream os;
  os << "level " << level << (lower ? " lower" : " upper") << " term ("
     << term.num.to_string(names) << ")/" << term.den << " coeff_axis "
     << coeff_axis;
  return os.str();
}

std::string LoopPartition::to_string(
    const std::vector<std::string>& names) const {
  std::ostringstream os;
  if (fully_static()) {
    os << "fully static (" << num_levels << " level(s))";
    return os.str();
  }
  os << "axis " << axis << ", " << constraints.size() << " constraint(s):";
  for (const ClipConstraint& c : constraints) os << "\n  " << c.to_string(names);
  return os.str();
}

std::optional<LoopPartition> analyze_partition(
    const loopir::LoopNest& transformed, int num_doall) {
  VDEP_REQUIRE(num_doall >= 0 && num_doall <= transformed.depth(),
               "analyze_partition: num_doall out of range");
  LoopPartition part;
  part.num_levels = num_doall;
  try {
    part.env = IntervalEnv::from_nest(transformed, num_doall);
    // The emitted region code does +/-1 arithmetic on hull-clamped box
    // endpoints (canonical-empty normalization, epilogue start); refuse
    // hulls touching the int64 limits rather than emit wrapping code.
    if (!part.env.empty_space()) {
      for (const Interval& h : part.env.hulls())
        if (h.lo <= std::numeric_limits<i64>::min() + 1 ||
            h.hi >= std::numeric_limits<i64>::max() - 1)
          return std::nullopt;
    }

    // Collect the non-static terms and the smallest index any references.
    struct Pending {
      int level;
      bool lower;
      const loopir::BoundTerm* term;
    };
    std::vector<Pending> pending;
    part.level_static.assign(static_cast<std::size_t>(num_doall), 1);
    int axis = -1;
    for (int k = 0; k < num_doall; ++k) {
      const loopir::Level& lv = transformed.level(k);
      for (bool lower : {true, false}) {
        const loopir::Bound& b = lower ? lv.lower : lv.upper;
        if (part.env.is_static(b, lower, k)) continue;
        part.level_static[static_cast<std::size_t>(k)] = 0;
        for (const loopir::BoundTerm& t : b.terms()) {
          pending.push_back({k, lower, &t});
          int first = -1;
          for (int m = 0; m < k; ++m)
            if (t.num.coeff(m) != 0) { first = m; break; }
          // A term of a non-static bound can itself be constant (one term
          // of a max/min); it still needs a constraint (it participates in
          // the clamp) but never moves the axis.
          if (first >= 0 && (axis < 0 || first < axis)) axis = first;
        }
      }
    }

    if (pending.empty()) return part;  // fully static, axis stays -1

    // Every non-static bound has at least one index-referencing term, so
    // an axis was found; and every level <= axis is statically steady: a
    // non-static bound there would reference an index below the axis.
    VDEP_CHECK(axis >= 0, "non-static bounds but no referenced index");
    for (int k = 0; k <= axis; ++k)
      VDEP_CHECK(part.level_static[static_cast<std::size_t>(k)],
                 "partition axis is not statically steady");
    part.axis = axis;
    part.constraints.reserve(pending.size());
    for (const Pending& p : pending)
      part.constraints.push_back(
          ClipConstraint{p.level, p.lower, *p.term, p.term->num.coeff(axis)});
    return part;
  } catch (const OverflowError&) {
    // Bounds outside what int64 interval arithmetic can certify: keep the
    // clamped kernel.
    return std::nullopt;
  }
}

}  // namespace vdep::analysis
