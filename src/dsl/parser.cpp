#include "dsl/parser.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <map>
#include <optional>

#include "loopir/builder.h"
#include "poly/constraints.h"
#include "poly/fourier_motzkin.h"

namespace vdep::dsl {

namespace {

using intlin::i64;
using intlin::Vec;
using loopir::AffineExpr;

// --------------------------------------------------------------- lexer

enum class Tok {
  kIdent,
  kNumber,
  kLBracket,
  kRBracket,
  kLParen,
  kRParen,
  kComma,
  kColon,
  kAssign,
  kPlus,
  kMinus,
  kStar,
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  i64 value = 0;
  int line = 1;
  int col = 1;  ///< 1-based column of the token's first character
};

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  int line = 1;
  std::size_t k = 0;
  std::size_t line_start = 0;  // index of the first character of `line`
  auto col_of = [&](std::size_t pos) {
    return static_cast<int>(pos - line_start) + 1;
  };
  auto push = [&](Tok t, std::string s) {
    out.push_back({t, std::move(s), 0, line, col_of(k)});
  };
  while (k < src.size()) {
    char c = src[k];
    if (c == '\n') {
      ++line;
      ++k;
      line_start = k;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++k;
      continue;
    }
    if (c == '#') {
      while (k < src.size() && src[k] != '\n') ++k;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t s = k;
      while (k < src.size() && (std::isalnum(static_cast<unsigned char>(src[k])) ||
                                src[k] == '_'))
        ++k;
      out.push_back({Tok::kIdent, src.substr(s, k - s), 0, line, col_of(s)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t s = k;
      while (k < src.size() && std::isdigit(static_cast<unsigned char>(src[k]))) ++k;
      Token t{Tok::kNumber, src.substr(s, k - s), 0, line, col_of(s)};
      t.value = std::stoll(t.text);
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '[': push(Tok::kLBracket, "["); break;
      case ']': push(Tok::kRBracket, "]"); break;
      case '(': push(Tok::kLParen, "("); break;
      case ')': push(Tok::kRParen, ")"); break;
      case ',': push(Tok::kComma, ","); break;
      case ':': push(Tok::kColon, ":"); break;
      case '=': push(Tok::kAssign, "="); break;
      case '+': push(Tok::kPlus, "+"); break;
      case '-': push(Tok::kMinus, "-"); break;
      case '*': push(Tok::kStar, "*"); break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", line,
                         col_of(k));
    }
    ++k;
  }
  out.push_back({Tok::kEnd, "<eof>", 0, line,
                 col_of(std::min(k, src.size()))});
  return out;
}

// ------------------------------------------------------------ parse AST

struct PExpr {
  enum class Kind { kNum, kVar, kAdd, kSub, kMul, kNeg, kRead };
  Kind kind = Kind::kNum;
  i64 num = 0;
  std::string name;                 // kVar / kRead
  std::vector<PExpr> kids;          // binary / unary operands
  std::vector<PExpr> subscripts;    // kRead
  int line = 1;
  int col = 1;
};

struct PLoop {
  std::string index;
  PExpr lo, hi;
  int line = 1;
  int col = 1;
};

struct PAssign {
  std::string array;
  std::vector<PExpr> subscripts;
  PExpr rhs;
  int line = 1;
  int col = 1;
};

struct PProgram {
  std::map<std::string, std::vector<std::pair<i64, i64>>> declared_arrays;
  std::vector<PLoop> loops;      // outermost first
  std::vector<PAssign> body;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  PProgram parse() {
    PProgram prog;
    while (peek().kind == Tok::kIdent && peek().text == "array")
      parse_array_decl(prog);
    if (!(peek().kind == Tok::kIdent && peek().text == "do"))
      throw ParseError("expected 'do'", peek().line, peek().col);
    parse_loop(prog);
    expect_end();
    return prog;
  }

 private:
  const Token& peek(int ahead = 0) const {
    std::size_t k = pos_ + static_cast<std::size_t>(ahead);
    return k < toks_.size() ? toks_[k] : toks_.back();
  }
  Token next() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  Token expect(Tok kind, const std::string& what) {
    if (peek().kind != kind)
      throw ParseError("expected " + what + ", found '" + peek().text + "'",
                       peek().line, peek().col);
    return next();
  }
  bool accept_ident(const std::string& word) {
    if (peek().kind == Tok::kIdent && peek().text == word) {
      next();
      return true;
    }
    return false;
  }
  void expect_end() {
    if (peek().kind != Tok::kEnd)
      throw ParseError("trailing input after the loop nest: '" + peek().text + "'",
                       peek().line, peek().col);
  }

  void parse_array_decl(PProgram& prog) {
    expect(Tok::kIdent, "'array'");  // consumes "array"
    Token name = expect(Tok::kIdent, "array name");
    expect(Tok::kLBracket, "'['");
    std::vector<std::pair<i64, i64>> dims;
    for (;;) {
      i64 lo = parse_signed_int();
      expect(Tok::kColon, "':'");
      i64 hi = parse_signed_int();
      if (lo > hi) throw ParseError("empty array dimension", name.line, name.col);
      dims.emplace_back(lo, hi);
      if (peek().kind == Tok::kComma) {
        next();
        continue;
      }
      break;
    }
    expect(Tok::kRBracket, "']'");
    if (!prog.declared_arrays.emplace(name.text, std::move(dims)).second)
      throw ParseError("array " + name.text + " declared twice", name.line,
                       name.col);
  }

  i64 parse_signed_int() {
    bool negative = false;
    while (peek().kind == Tok::kMinus) {
      next();
      negative = !negative;
    }
    Token t = expect(Tok::kNumber, "integer");
    return negative ? -t.value : t.value;
  }

  void parse_loop(PProgram& prog) {
    Token kw = expect(Tok::kIdent, "'do'");  // consumes "do"
    PLoop loop;
    loop.line = kw.line;
    loop.col = kw.col;
    loop.index = expect(Tok::kIdent, "loop index").text;
    for (const PLoop& l : prog.loops)
      if (l.index == loop.index)
        throw ParseError("duplicate loop index " + loop.index, kw.line, kw.col);
    expect(Tok::kAssign, "'='");
    loop.lo = parse_expr();
    expect(Tok::kComma, "','");
    loop.hi = parse_expr();
    prog.loops.push_back(std::move(loop));

    if (peek().kind == Tok::kIdent && peek().text == "do") {
      parse_loop(prog);
    } else {
      // Innermost: one or more assignments.
      if (!(peek().kind == Tok::kIdent) || peek().text == "enddo")
        throw ParseError("loop body must contain at least one assignment",
                         peek().line, peek().col);
      while (peek().kind == Tok::kIdent && peek().text != "enddo")
        prog.body.push_back(parse_assign());
    }
    if (!accept_ident("enddo"))
      throw ParseError("expected 'enddo'", peek().line, peek().col);
  }

  PAssign parse_assign() {
    PAssign a;
    Token name = expect(Tok::kIdent, "array name");
    a.array = name.text;
    a.line = name.line;
    a.col = name.col;
    expect(Tok::kLBracket, "'[' (assignments must target an array)");
    for (;;) {
      a.subscripts.push_back(parse_expr());
      if (peek().kind == Tok::kComma) {
        next();
        continue;
      }
      break;
    }
    expect(Tok::kRBracket, "']'");
    expect(Tok::kAssign, "'='");
    a.rhs = parse_expr();
    return a;
  }

  PExpr parse_expr() {
    PExpr acc = parse_term();
    while (peek().kind == Tok::kPlus || peek().kind == Tok::kMinus) {
      bool plus = next().kind == Tok::kPlus;
      PExpr rhs = parse_term();
      PExpr node;
      node.kind = plus ? PExpr::Kind::kAdd : PExpr::Kind::kSub;
      node.line = acc.line;
      node.col = acc.col;
      node.kids = {std::move(acc), std::move(rhs)};
      acc = std::move(node);
    }
    return acc;
  }

  PExpr parse_term() {
    PExpr acc = parse_factor();
    while (peek().kind == Tok::kStar) {
      next();
      PExpr rhs = parse_factor();
      PExpr node;
      node.kind = PExpr::Kind::kMul;
      node.line = acc.line;
      node.col = acc.col;
      node.kids = {std::move(acc), std::move(rhs)};
      acc = std::move(node);
    }
    return acc;
  }

  PExpr parse_factor() {
    const Token& t = peek();
    if (t.kind == Tok::kMinus) {
      next();
      PExpr node;
      node.kind = PExpr::Kind::kNeg;
      node.line = t.line;
      node.col = t.col;
      node.kids.push_back(parse_factor());
      return node;
    }
    if (t.kind == Tok::kNumber) {
      next();
      PExpr node;
      node.kind = PExpr::Kind::kNum;
      node.num = t.value;
      node.line = t.line;
      node.col = t.col;
      return node;
    }
    if (t.kind == Tok::kLParen) {
      next();
      PExpr inner = parse_expr();
      expect(Tok::kRParen, "')'");
      return inner;
    }
    if (t.kind == Tok::kIdent) {
      Token name = next();
      if (peek().kind == Tok::kLBracket) {
        next();
        PExpr node;
        node.kind = PExpr::Kind::kRead;
        node.name = name.text;
        node.line = name.line;
        node.col = name.col;
        for (;;) {
          node.subscripts.push_back(parse_expr());
          if (peek().kind == Tok::kComma) {
            next();
            continue;
          }
          break;
        }
        expect(Tok::kRBracket, "']'");
        return node;
      }
      PExpr node;
      node.kind = PExpr::Kind::kVar;
      node.name = name.text;
      node.line = name.line;
      node.col = name.col;
      return node;
    }
    throw ParseError("expected an expression, found '" + t.text + "'", t.line,
                     t.col);
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

// ----------------------------------------------------------- lowering

class Lowerer {
 public:
  explicit Lowerer(const PProgram& prog) : prog_(prog) {
    for (std::size_t k = 0; k < prog.loops.size(); ++k)
      index_of_[prog.loops[k].index] = static_cast<int>(k);
    depth_ = static_cast<int>(prog.loops.size());
  }

  loopir::LoopNest lower() {
    // Levels with affine bounds.
    std::vector<loopir::Level> levels;
    for (std::size_t k = 0; k < prog_.loops.size(); ++k) {
      const PLoop& l = prog_.loops[k];
      AffineExpr lo = to_affine(l.lo);
      AffineExpr hi = to_affine(l.hi);
      if (lo.last_index_used() >= static_cast<int>(k) ||
          hi.last_index_used() >= static_cast<int>(k))
        throw ParseError("bounds of " + l.index + " may only use outer indices",
                         l.line, l.col);
      levels.push_back({l.index, loopir::Bound(lo), loopir::Bound(hi), false});
    }

    // Body with reads/writes.
    std::vector<loopir::Assign> body;
    for (const PAssign& a : prog_.body) {
      loopir::Assign out;
      out.lhs.array = a.array;
      lower_subscripts(a.subscripts, &out.lhs);
      out.rhs = to_expr(a.rhs);
      body.push_back(std::move(out));
      note_array(a.array, static_cast<int>(a.subscripts.size()), a.line, a.col);
    }

    // Array declarations: explicit or inferred from subscript extremes.
    std::vector<loopir::ArrayDecl> arrays = infer_arrays(levels, body);
    return loopir::LoopNest(std::move(levels), std::move(arrays), std::move(body));
  }

 private:
  void note_array(const std::string& name, int arity, int line, int col) {
    auto it = arity_.find(name);
    if (it != arity_.end() && it->second != arity)
      throw ParseError("array " + name + " used with inconsistent arity", line,
                       col);
    arity_[name] = arity;
  }

  /// Lowers a reference's subscript list, accepting one level of
  /// indirection: a subscript that is *exactly* an index-array read
  /// (`A[B[i]]`) becomes an IndirectSubscript; everything else must be
  /// affine. The pos inside the read goes through to_affine, which rejects
  /// further reads — so exactly one level, by construction.
  void lower_subscripts(const std::vector<PExpr>& subs, loopir::ArrayRef* r) {
    bool any_indirect = false;
    for (const PExpr& s : subs)
      if (s.kind == PExpr::Kind::kRead) any_indirect = true;
    for (const PExpr& s : subs) {
      if (s.kind == PExpr::Kind::kRead) {
        if (s.subscripts.size() != 1)
          throw ParseError("index array " + s.name +
                               " must be one-dimensional",
                           s.line, s.col);
        loopir::IndirectSubscript ind{s.name, to_affine(s.subscripts[0])};
        note_array(s.name, 1, s.line, s.col);
        // Placeholder affine entry keeps the slot count aligned; consumers
        // gate on indirect[k] before touching it.
        r->subscripts.push_back(AffineExpr::constant(depth_, 0));
        r->indirect.emplace_back(std::move(ind));
      } else {
        r->subscripts.push_back(to_affine(s));
        r->indirect.emplace_back(std::nullopt);
      }
    }
    if (!any_indirect) r->indirect.clear();
  }

  AffineExpr to_affine(const PExpr& e) {
    switch (e.kind) {
      case PExpr::Kind::kNum:
        return AffineExpr::constant(depth_, e.num);
      case PExpr::Kind::kVar: {
        auto it = index_of_.find(e.name);
        if (it == index_of_.end())
          throw ParseError("unknown index variable " + e.name, e.line, e.col);
        return AffineExpr::index(depth_, it->second);
      }
      case PExpr::Kind::kAdd:
        return to_affine(e.kids[0]) + to_affine(e.kids[1]);
      case PExpr::Kind::kSub:
        return to_affine(e.kids[0]) - to_affine(e.kids[1]);
      case PExpr::Kind::kNeg:
        return to_affine(e.kids[0]).scaled(-1);
      case PExpr::Kind::kMul: {
        AffineExpr a = to_affine(e.kids[0]);
        AffineExpr b = to_affine(e.kids[1]);
        if (a.is_constant()) return b.scaled(a.constant_term());
        if (b.is_constant()) return a.scaled(b.constant_term());
        throw ParseError("non-affine product in subscript or bound", e.line,
                         e.col);
      }
      case PExpr::Kind::kRead:
        throw ParseError(
            "array reference not allowed here: bounds are affine, and a "
            "subscript may be exactly one index-array read (A[B[i]]), not "
            "nested or mixed into arithmetic",
            e.line, e.col);
    }
    throw ParseError("unreachable", e.line, e.col);
  }

  loopir::ExprPtr to_expr(const PExpr& e) {
    using loopir::Expr;
    switch (e.kind) {
      case PExpr::Kind::kNum:
        return Expr::constant(e.num);
      case PExpr::Kind::kVar: {
        auto it = index_of_.find(e.name);
        if (it == index_of_.end())
          throw ParseError("unknown index variable " + e.name, e.line, e.col);
        return Expr::index(it->second);
      }
      case PExpr::Kind::kAdd:
        return Expr::add(to_expr(e.kids[0]), to_expr(e.kids[1]));
      case PExpr::Kind::kSub:
        return Expr::sub(to_expr(e.kids[0]), to_expr(e.kids[1]));
      case PExpr::Kind::kNeg:
        return Expr::sub(Expr::constant(0), to_expr(e.kids[0]));
      case PExpr::Kind::kMul:
        return Expr::mul(to_expr(e.kids[0]), to_expr(e.kids[1]));
      case PExpr::Kind::kRead: {
        loopir::ArrayRef r;
        r.array = e.name;
        lower_subscripts(e.subscripts, &r);
        note_array(e.name, static_cast<int>(e.subscripts.size()), e.line, e.col);
        return Expr::read(std::move(r));
      }
    }
    throw ParseError("unreachable", e.line, e.col);
  }

  std::vector<loopir::ArrayDecl> infer_arrays(
      const std::vector<loopir::Level>& levels,
      const std::vector<loopir::Assign>& body) {
    // Iteration box via FM over the declared bounds.
    loopir::LoopNest probe(levels, {}, {});
    poly::ConstraintSystem cs = poly::ConstraintSystem::from_nest(probe);
    std::vector<std::pair<i64, i64>> box;
    for (int k = 0; k < depth_; ++k) {
      auto r = cs.variable_range(k);
      if (!r) throw ParseError("iteration space unbounded in loop " +
                                   levels[static_cast<std::size_t>(k)].name,
                               1);
      box.push_back(*r);
    }

    // Gather every reference per array.
    std::map<std::string, std::vector<const loopir::ArrayRef*>> refs;
    std::vector<loopir::ArrayRef> reads;
    for (const loopir::Assign& a : body) {
      refs[a.lhs.array].push_back(&a.lhs);
      a.rhs->collect_reads(&reads);
    }
    for (const loopir::ArrayRef& r : reads) refs[r.array].push_back(&r);

    // Index-array positions: B in A[B[i]] is sized from the affine pos
    // range over the box, like any affine subscript. An index array used
    // only as an index has no ArrayRef of its own; give it an (empty)
    // refs entry so the loop below emits its declaration.
    std::map<std::string, std::vector<const AffineExpr*>> index_pos;
    for (const auto& [name, list] : refs)
      for (const loopir::ArrayRef* r : list)
        for (const auto& ind : r->indirect)
          if (ind) index_pos[ind->array].push_back(&ind->pos);
    for (const auto& [name, list] : index_pos) refs.try_emplace(name);

    // Min/max of one affine expression over the iteration box.
    auto extremes = [&](const AffineExpr& s) {
      i64 lo = s.constant_term(), hi = s.constant_term();
      for (int k = 0; k < depth_; ++k) {
        i64 c = s.coeff(k);
        auto [bl, bh] = box[static_cast<std::size_t>(k)];
        lo = checked::add(lo, checked::mul(c, c >= 0 ? bl : bh));
        hi = checked::add(hi, checked::mul(c, c >= 0 ? bh : bl));
      }
      return std::pair<i64, i64>{lo, hi};
    };

    std::vector<loopir::ArrayDecl> out;
    for (const auto& [name, list] : refs) {
      auto declared = prog_.declared_arrays.find(name);
      if (declared != prog_.declared_arrays.end()) {
        if (static_cast<int>(declared->second.size()) != arity_.at(name))
          throw ParseError("array " + name + " declared with wrong arity", 1);
        out.push_back({name, declared->second});
        continue;
      }
      // A dimension fed through an index array has whatever extent the
      // array's runtime values span — nothing to infer from the source.
      for (const loopir::ArrayRef* r : list)
        for (const auto& ind : r->indirect)
          if (ind)
            throw ParseError(
                "array " + name +
                    " is subscripted through an index array; its extent "
                    "cannot be inferred — declare it with 'array " +
                    name + "[lo:hi]'",
                1);
      // Infer per-dimension extremes of the affine subscripts over the box.
      int arity = arity_.at(name);
      std::vector<std::pair<i64, i64>> dims(
          static_cast<std::size_t>(arity),
          {std::numeric_limits<i64>::max(), std::numeric_limits<i64>::min()});
      for (const loopir::ArrayRef* r : list) {
        for (int d = 0; d < arity; ++d) {
          auto [lo, hi] = extremes(r->subscripts[static_cast<std::size_t>(d)]);
          auto& dim = dims[static_cast<std::size_t>(d)];
          dim.first = std::min(dim.first, lo);
          dim.second = std::max(dim.second, hi);
        }
      }
      // Index-array uses widen (or, for a pure index array, establish)
      // the single dimension.
      if (auto it = index_pos.find(name); it != index_pos.end()) {
        for (const AffineExpr* s : it->second) {
          auto [lo, hi] = extremes(*s);
          dims[0].first = std::min(dims[0].first, lo);
          dims[0].second = std::max(dims[0].second, hi);
        }
      }
      out.push_back({name, std::move(dims)});
    }
    return out;
  }

  const PProgram& prog_;
  std::map<std::string, int> index_of_;
  std::map<std::string, int> arity_;
  int depth_ = 0;
};

}  // namespace

loopir::LoopNest parse_loop_nest(const std::string& source) {
  Parser parser(lex(source));
  PProgram prog = parser.parse();
  Lowerer lowerer(prog);
  return lowerer.lower();
}

Expected<loopir::LoopNest> try_parse_loop_nest(const std::string& source) {
  try {
    return parse_loop_nest(source);
  } catch (const ParseError& e) {
    return ApiError{ErrorKind::kParse, e.what(), e.line(), e.column()};
  } catch (const Error& e) {
    return detail::classify(e);
  }
}

}  // namespace vdep::dsl
