// A miniature Fortran-like front end (the role FPT plays for the paper).
//
//   array A[-60:60, -60:60]        # optional: shapes are inferred otherwise
//   do i1 = -10, 10
//     do i2 = -10, 10
//       A[3*i1 - 2*i2 + 2, -2*i1 + 3*i2 - 2] = A[i1, i2] + 1
//     enddo
//   enddo
//
// Rules: perfectly nested loops; bounds and subscripts must be affine in
// the loop indices; `#` starts a comment. Arrays that are not declared get
// shapes inferred from the extreme subscript values over the iteration
// space (with a small safety margin).
#pragma once

#include <string>

#include "loopir/nest.h"

namespace vdep::dsl {

class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error("parse error (line " + std::to_string(line) + "): " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses a program into a validated loop nest.
loopir::LoopNest parse_loop_nest(const std::string& source);

}  // namespace vdep::dsl
