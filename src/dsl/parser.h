// A miniature Fortran-like front end (the role FPT plays for the paper).
//
//   array A[-60:60, -60:60]        # optional: shapes are inferred otherwise
//   do i1 = -10, 10
//     do i2 = -10, 10
//       A[3*i1 - 2*i2 + 2, -2*i1 + 3*i2 - 2] = A[i1, i2] + 1
//     enddo
//   enddo
//
// Rules: perfectly nested loops; bounds and subscripts must be affine in
// the loop indices; `#` starts a comment. Arrays that are not declared get
// shapes inferred from the extreme subscript values over the iteration
// space (with a small safety margin).
#pragma once

#include <string>

#include "loopir/nest.h"
#include "support/expected.h"

namespace vdep::dsl {

class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column = -1)
      : Error("parse error (line " + std::to_string(line) +
              (column > 0 ? ", col " + std::to_string(column) : "") +
              "): " + what),
        line_(line),
        column_(column) {}
  int line() const { return line_; }
  /// 1-based column of the offending token; -1 when unknown.
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Parses a program into a validated loop nest; throws ParseError.
loopir::LoopNest parse_loop_nest(const std::string& source);

/// Exception-free variant for the staged API: parse failures come back as
/// ErrorKind::kParse with line and column filled in.
Expected<loopir::LoopNest> try_parse_loop_nest(const std::string& source);

}  // namespace vdep::dsl
