// C source emission.
//
// Produces self-contained, compilable C99 translation units for
//   * the original nest,
//   * the unimodular-transformed nest (outer DOALLs as `#pragma omp
//     parallel for`), and
//   * the Theorem-2 partitioned nest (the paper's loop (3.2): a parallel
//     loop over residue classes, strided inner loops with skewed offsets).
//
// Emitted files optionally include a main() that fills every array with a
// deterministic pattern, runs the kernel and prints a checksum — the
// integration tests compile original and transformed versions with the
// host compiler and require identical checksums.
#pragma once

#include <string>

#include "analysis/loop_partition.h"
#include "codegen/rewrite.h"

namespace vdep::codegen {

struct EmitOptions {
  bool openmp = true;        ///< annotate DOALL loops with omp pragmas
  bool with_main = true;     ///< emit a checksum-printing main()
  std::string kernel_name = "kernel";
};

/// The original sequential nest.
std::string emit_c_original(const loopir::LoopNest& nest,
                            const EmitOptions& opts = {});

/// The fully transformed program for `plan`: unimodular rewrite + (when the
/// plan partitions) the Theorem-2 class loops.
std::string emit_c_transformed(const loopir::LoopNest& original,
                               const trans::TransformPlan& plan,
                               const EmitOptions& opts = {});

/// Self-contained C99 TU for the JIT backend: one entry point
///
///   int64_t <entry>(int64_t** arrays,
///                   const int64_t* lo, const int64_t* hi, int64_t ndims,
///                   int64_t class_lo, int64_t class_hi);
///
/// executing every iteration of one runtime::TaskDescriptor iteration box
/// of `plan` natively — each of the first `ndims` transformed DOALL-prefix
/// indices restricted to its inclusive [lo[k], hi[k]] range (dimensions
/// beyond ndims, and every dimension when the plan has no DOALL loop, scan
/// their full bounds), then the Theorem-2 strided class scan for classes in
/// [class_lo, class_hi) — returning the iteration count. Arrays arrive as
/// raw row-major int64 buffers in nest.arrays() declaration order. No
/// main(), no OpenMP: the streaming runtime provides the parallelism by
/// splitting descriptor boxes (runtime/task.h).
std::string emit_c_range_kernel(const loopir::LoopNest& original,
                                const trans::TransformPlan& plan,
                                const std::string& entry_name);

/// Steady-state partitioned variant of emit_c_range_kernel: same entry
/// signature, same observable behavior for any box. When the caller boxes
/// exactly the plan's DOALL prefix (`ndims == num_doall`), a fast path
/// clamps the box to the static interval hull once, splits the partition
/// axis into prologue / steady / epilogue per `part`'s clip constraints,
/// and scans the steady region with clamp-free, box-slice loop headers
/// (`/* vdep:region ... */` and `/* vdep:scan ... */` markers delimit the
/// regions for analysis::KernelVerifier). Any other ndims falls through to
/// the generic clamped path. `inject_fault` plants a vdep_min use inside
/// the steady region so tests can exercise verifier rejection end-to-end.
std::string emit_c_partitioned_range_kernel(const loopir::LoopNest& original,
                                            const trans::TransformPlan& plan,
                                            const analysis::LoopPartition& part,
                                            const std::string& entry_name,
                                            bool inject_fault = false);

}  // namespace vdep::codegen
