#include "codegen/rewrite.h"

#include "intlin/det.h"
#include "obs/trace.h"
#include "poly/fourier_motzkin.h"
#include "support/error.h"

namespace vdep::codegen {

Vec TransformedNest::original_iteration(const Vec& j) const {
  return intlin::vec_mat_mul(j, t_inverse);
}

Vec TransformedNest::transformed_iteration(const Vec& i) const {
  return intlin::vec_mat_mul(i, t);
}

TransformedNest rewrite_nest(const loopir::LoopNest& original, const Mat& t,
                             int num_doall) {
  int n = original.depth();
  VDEP_REQUIRE(t.rows() == n && t.cols() == n, "transform shape mismatch");
  VDEP_REQUIRE(num_doall >= 0 && num_doall <= n, "num_doall out of range");
  Mat tinv = intlin::unimodular_inverse(t);

  // Bounds: transform the iteration polytope and re-extract loop bounds.
  // Trace-only span (Phase::kNone): callers time the whole rewrite under
  // their own phase, so accounting FM here would double count.
  poly::NestBounds nb;
  {
    obs::ScopedSpan fm_span(obs::EventKind::kFmBounds, /*layer_enabled=*/true);
    poly::ConstraintSystem cs = poly::ConstraintSystem::from_nest(original);
    poly::ConstraintSystem ct = cs.transformed(t);
    nb = poly::extract_bounds(ct);
  }

  std::vector<loopir::Level> levels;
  for (int k = 0; k < n; ++k) {
    loopir::Level l;
    l.name = "j" + std::to_string(k + 1);
    l.lower = nb.lower[static_cast<std::size_t>(k)];
    l.upper = nb.upper[static_cast<std::size_t>(k)];
    l.parallel = k < num_doall;
    levels.push_back(std::move(l));
  }

  // Body: substitute i = j * Tinv into every reference. ArrayRef::substituted
  // rewrites subscripts s(i) into s'(j) = s(j * M) for a given M; we need
  // s(j * Tinv), hence M = Tinv.
  std::vector<loopir::Assign> body;
  for (const loopir::Assign& a : original.body()) {
    loopir::Assign na;
    na.lhs = a.lhs.substituted(tinv);
    na.rhs = a.rhs->substituted(tinv);
    body.push_back(std::move(na));
  }

  TransformedNest out{
      loopir::LoopNest(std::move(levels), original.arrays(), std::move(body)),
      t, std::move(tinv)};
  return out;
}

TransformedNest rewrite_nest(const loopir::LoopNest& original,
                             const trans::TransformPlan& plan) {
  VDEP_REQUIRE(plan.depth == original.depth(), "plan depth mismatch");
  return rewrite_nest(original, plan.t, plan.num_doall);
}

}  // namespace vdep::codegen
