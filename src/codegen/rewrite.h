// Rewriting a loop nest under a legal unimodular transformation.
//
// Given the original nest over indices i and a unimodular T (j = i*T), this
// produces the scannable transformed nest over j: bounds come from
// Fourier-Motzkin elimination on the transformed iteration polytope, the
// body is rewritten by substituting i = j * T^{-1} into every subscript,
// and the leading `num_doall` levels are flagged parallel.
//
// The transformed nest visits exactly the original iteration set (bijection
// through T) in lexicographic j-order — legality of that order is exactly
// what Theorem 1 certified.
#pragma once

#include "loopir/nest.h"
#include "trans/planner.h"

namespace vdep::codegen {

using intlin::i64;
using intlin::Mat;
using intlin::Vec;

struct TransformedNest {
  loopir::LoopNest nest;  ///< scannable nest over the new indices j
  Mat t;                  ///< j = i * T
  Mat t_inverse;          ///< i = j * T^{-1}

  /// Original iteration for a transformed point.
  Vec original_iteration(const Vec& j) const;
  /// Transformed point for an original iteration.
  Vec transformed_iteration(const Vec& i) const;
};

/// Rewrites `original` under `t`; the first `num_doall` new levels are
/// marked parallel. `t` must be unimodular (legality is the caller's
/// responsibility — use trans::is_legal_transform).
TransformedNest rewrite_nest(const loopir::LoopNest& original, const Mat& t,
                             int num_doall);

/// Convenience: rewrite according to a TransformPlan.
TransformedNest rewrite_nest(const loopir::LoopNest& original,
                             const trans::TransformPlan& plan);

}  // namespace vdep::codegen
