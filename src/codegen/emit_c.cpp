#include "codegen/emit_c.h"

#include <sstream>

#include "support/error.h"

namespace vdep::codegen {

namespace {

using intlin::i64;
using loopir::AffineExpr;
using loopir::ArrayRef;
using loopir::Bound;
using loopir::BoundTerm;
using loopir::Expr;
using loopir::LoopNest;

std::string c_affine(const AffineExpr& e, const std::vector<std::string>& names) {
  std::string s = e.to_string(names);
  return s.empty() ? "0" : s;
}

// Lower-bound term: ceil(num/den); upper: floor(num/den).
std::string c_bound_term(const BoundTerm& t, bool lower,
                         const std::vector<std::string>& names) {
  if (t.den == 1) return c_affine(t.num, names);
  std::ostringstream os;
  os << (lower ? "vdep_ceildiv(" : "vdep_floordiv(") << c_affine(t.num, names)
     << ", " << t.den << ")";
  return os.str();
}

std::string c_bound(const Bound& b, bool lower,
                    const std::vector<std::string>& names) {
  const auto& terms = b.terms();
  VDEP_REQUIRE(!terms.empty(), "empty bound in codegen");
  std::string acc = c_bound_term(terms[0], lower, names);
  for (std::size_t k = 1; k < terms.size(); ++k) {
    acc = std::string(lower ? "vdep_max(" : "vdep_min(") + acc + ", " +
          c_bound_term(terms[k], lower, names) + ")";
  }
  return acc;
}

std::string c_ref(const ArrayRef& r, const std::vector<std::string>& names) {
  std::ostringstream os;
  os << r.array << "(";
  for (std::size_t k = 0; k < r.subscripts.size(); ++k) {
    if (k) os << ", ";
    os << c_affine(r.subscripts[k], names);
  }
  os << ")";
  return os.str();
}

std::string c_expr(const Expr& e, const std::vector<std::string>& names) {
  switch (e.kind()) {
    case Expr::Kind::kConst:
      return std::to_string(e.value());
    case Expr::Kind::kIndex:
      return names[static_cast<std::size_t>(e.index())];
    case Expr::Kind::kRead:
      return c_ref(e.ref(), names);
    case Expr::Kind::kAdd:
      return "(" + c_expr(*e.lhs(), names) + " + " + c_expr(*e.rhs(), names) + ")";
    case Expr::Kind::kSub:
      return "(" + c_expr(*e.lhs(), names) + " - " + c_expr(*e.rhs(), names) + ")";
    case Expr::Kind::kMul:
      return "(" + c_expr(*e.lhs(), names) + " * " + c_expr(*e.rhs(), names) + ")";
  }
  VDEP_CHECK(false, "unreachable expr kind");
}

void emit_prelude(std::ostringstream& os) {
  os << "#include <stdint.h>\n"
     << "#include <stdio.h>\n\n"
     << "static inline int64_t vdep_max(int64_t a, int64_t b) { return a > b ? a : b; }\n"
     << "static inline int64_t vdep_min(int64_t a, int64_t b) { return a < b ? a : b; }\n"
     << "static inline int64_t vdep_floordiv(int64_t a, int64_t b) {\n"
     << "  int64_t q = a / b, r = a % b;\n"
     << "  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;\n"
     << "}\n"
     << "static inline int64_t vdep_ceildiv(int64_t a, int64_t b) {\n"
     << "  int64_t q = a / b, r = a % b;\n"
     << "  return (r != 0 && ((r < 0) == (b < 0))) ? q + 1 : q;\n"
     << "}\n"
     << "static inline int64_t vdep_mod(int64_t a, int64_t b) {\n"
     << "  int64_t m = a % b;\n"
     << "  return m < 0 ? m + (b < 0 ? -b : b) : m;\n"
     << "}\n\n";
}

void emit_arrays(std::ostringstream& os, const LoopNest& nest) {
  for (const loopir::ArrayDecl& a : nest.arrays()) {
    i64 total = a.element_count();
    os << "static int64_t " << a.name << "_data[" << total << "];\n";
    os << "#define " << a.name << "(";
    for (int d = 0; d < a.arity(); ++d) os << (d ? ", " : "") << "x" << d;
    os << ") " << a.name << "_data[";
    // Row-major flattening with declared lower bounds.
    std::string idx;
    for (int d = 0; d < a.arity(); ++d) {
      auto [lo, hi] = a.dims[static_cast<std::size_t>(d)];
      std::string term = "((x" + std::to_string(d) + ") - (" +
                         std::to_string(lo) + "))";
      idx = idx.empty() ? term
                        : "(" + idx + ") * " + std::to_string(hi - lo + 1) +
                              " + " + term;
    }
    os << idx << "]\n";
  }
  os << "\n";
}

void emit_body(std::ostringstream& os, const LoopNest& nest,
               const std::vector<std::string>& names, const std::string& indent) {
  for (const loopir::Assign& a : nest.body())
    os << indent << c_ref(a.lhs, names) << " = " << c_expr(*a.rhs, names)
       << ";\n";
}

void emit_plain_loops(std::ostringstream& os, const LoopNest& nest,
                      const EmitOptions& opts) {
  std::vector<std::string> names = nest.index_names();
  std::string indent = "  ";
  for (int k = 0; k < nest.depth(); ++k) {
    const loopir::Level& l = nest.level(k);
    if (l.parallel && opts.openmp)
      os << indent << "#pragma omp parallel for\n";
    os << indent << "for (int64_t " << l.name << " = "
       << c_bound(l.lower, true, names) << "; " << l.name
       << " <= " << c_bound(l.upper, false, names) << "; ++" << l.name
       << ") {" << (l.parallel ? "  /* doall */" : "") << "\n";
    indent += "  ";
  }
  emit_body(os, nest, names, indent);
  for (int k = nest.depth() - 1; k >= 0; --k) {
    indent.resize(indent.size() - 2);
    os << indent << "}\n";
  }
}

// Inside an already-open `vdep_class` loop: decode the mixed-radix class
// label into q0..q{dim-1}, emit the Theorem-2 strided scan loops with
// skewed offsets (paper loop (3.2)), the body (plus `count_stmt`, when
// non-empty, once per iteration), and close the strided loops again.
void emit_partition_scan(std::ostringstream& os, const LoopNest& nest,
                         const trans::Partitioning& part, int start,
                         const std::vector<std::string>& names,
                         std::string& indent, const std::string& count_stmt) {
  const Mat& h = part.lattice_basis();
  os << indent << "int64_t vdep_rest = vdep_class;\n";
  for (int k = part.dim() - 1; k >= 0; --k) {
    os << indent << "const int64_t q" << k << " = vdep_rest % "
       << h.at(k, k) << "; vdep_rest /= " << h.at(k, k) << ";\n";
  }

  for (int k = 0; k < part.dim(); ++k) {
    const loopir::Level& l = nest.level(start + k);
    i64 hkk = h.at(k, k);
    // Effective offset with skew terms from outer t coefficients.
    os << indent << "const int64_t off" << k << " = q" << k;
    for (int m = 0; m < k; ++m)
      if (h.at(m, k) != 0) os << " + t" << m << " * " << h.at(m, k);
    os << ";\n";
    os << indent << "const int64_t lo" << k << " = "
       << c_bound(l.lower, true, names) << ";\n";
    os << indent << "for (int64_t " << l.name << " = lo" << k
       << " + vdep_mod(off" << k << " - lo" << k << ", " << hkk << "); "
       << l.name << " <= " << c_bound(l.upper, false, names) << "; " << l.name
       << " += " << hkk << ") {\n";
    indent += "  ";
    if (k + 1 < part.dim())
      os << indent << "const int64_t t" << k << " = (" << l.name << " - off"
         << k << ") / " << hkk << ";\n";
  }

  emit_body(os, nest, names, indent);
  if (!count_stmt.empty()) os << indent << count_stmt << "\n";

  for (int k = part.dim() - 1; k >= 0; --k) {
    indent.resize(indent.size() - 2);
    os << indent << "}\n";
  }
}

void emit_main(std::ostringstream& os, const LoopNest& nest,
               const EmitOptions& opts) {
  os << "\nint main(void) {\n";
  for (const loopir::ArrayDecl& a : nest.arrays()) {
    os << "  for (int64_t k = 0; k < " << a.element_count() << "; ++k) "
       << a.name << "_data[k] = (k % 97) - 48;\n";
  }
  os << "  " << opts.kernel_name << "();\n"
     << "  int64_t sum = 0;\n";
  for (const loopir::ArrayDecl& a : nest.arrays()) {
    os << "  for (int64_t k = 0; k < " << a.element_count() << "; ++k) "
       << "sum = (sum * 31 + " << a.name << "_data[k]) % 1000000007;\n";
  }
  os << "  printf(\"%lld\\n\", (long long)sum);\n"
     << "  return 0;\n}\n";
}

}  // namespace

std::string emit_c_original(const LoopNest& nest, const EmitOptions& opts) {
  std::ostringstream os;
  os << "/* Generated by vdep: original sequential nest. */\n";
  emit_prelude(os);
  emit_arrays(os, nest);
  os << "void " << opts.kernel_name << "(void) {\n";
  emit_plain_loops(os, nest, opts);
  os << "}\n";
  if (opts.with_main) emit_main(os, nest, opts);
  return os.str();
}

std::string emit_c_transformed(const LoopNest& original,
                               const trans::TransformPlan& plan,
                               const EmitOptions& opts) {
  TransformedNest tn = rewrite_nest(original, plan);
  const LoopNest& nest = tn.nest;
  std::ostringstream os;
  os << "/* Generated by vdep: transformed nest (T = " << plan.t.to_string()
     << ", " << plan.num_doall << " outer DOALL loop(s), "
     << plan.partition_classes << " partition class(es)). */\n";
  emit_prelude(os);
  emit_arrays(os, nest);
  os << "void " << opts.kernel_name << "(void) {\n";

  if (!plan.partition.has_value()) {
    emit_plain_loops(os, nest, opts);
    os << "}\n";
    if (opts.with_main) emit_main(os, nest, opts);
    return os.str();
  }

  // Theorem 2 structure. Outer: the doall loops of the rewritten nest, then
  // a parallel loop over the det(R) residue classes; inner: strided scans
  // with skewed offsets (paper loop (3.2)).
  const trans::Partitioning& part = *plan.partition;
  int n = nest.depth();
  int start = n - part.dim();
  std::vector<std::string> names = nest.index_names();
  std::string indent = "  ";

  // Outer doall loops (transformed coordinates before the partition block).
  for (int k = 0; k < start; ++k) {
    const loopir::Level& l = nest.level(k);
    if (opts.openmp && k == 0) os << indent << "#pragma omp parallel for\n";
    os << indent << "for (int64_t " << l.name << " = "
       << c_bound(l.lower, true, names) << "; " << l.name
       << " <= " << c_bound(l.upper, false, names) << "; ++" << l.name
       << ") {  /* doall */\n";
    indent += "  ";
  }

  // Class loop.
  os << indent;
  if (opts.openmp && start == 0) os << "#pragma omp parallel for\n" << indent;
  os << "for (int64_t vdep_class = 0; vdep_class < " << part.num_classes()
     << "; ++vdep_class) {  /* doall: independent residue classes */\n";
  indent += "  ";
  emit_partition_scan(os, nest, part, start, names, indent, "");
  indent.resize(indent.size() - 2);
  os << indent << "}\n";
  for (int k = start - 1; k >= 0; --k) {
    indent.resize(indent.size() - 2);
    os << indent << "}\n";
  }
  os << "}\n";
  if (opts.with_main) emit_main(os, nest, opts);
  return os.str();
}

std::string emit_c_range_kernel(const LoopNest& original,
                                const trans::TransformPlan& plan,
                                const std::string& entry_name) {
  TransformedNest tn = rewrite_nest(original, plan);
  const LoopNest& nest = tn.nest;
  const int nd = plan.num_doall;
  const int depth = nest.depth();
  std::vector<std::string> names = nest.index_names();

  std::ostringstream os;
  os << "/* Generated by vdep: JIT range kernel (T = " << plan.t.to_string()
     << ", " << nd << " outer DOALL loop(s), " << plan.partition_classes
     << " partition class(es)). */\n";
  os << "#include <stdint.h>\n\n"
     << "static inline int64_t vdep_max(int64_t a, int64_t b) { return a > b ? a : b; }\n"
     << "static inline int64_t vdep_min(int64_t a, int64_t b) { return a < b ? a : b; }\n"
     << "static inline int64_t vdep_floordiv(int64_t a, int64_t b) {\n"
     << "  int64_t q = a / b, r = a % b;\n"
     << "  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;\n"
     << "}\n"
     << "static inline int64_t vdep_ceildiv(int64_t a, int64_t b) {\n"
     << "  int64_t q = a / b, r = a % b;\n"
     << "  return (r != 0 && ((r < 0) == (b < 0))) ? q + 1 : q;\n"
     << "}\n"
     << "static inline int64_t vdep_mod(int64_t a, int64_t b) {\n"
     << "  int64_t m = a % b;\n"
     << "  return m < 0 ? m + (b < 0 ? -b : b) : m;\n"
     << "}\n\n";

  // Arrays are raw row-major buffers handed in by the runtime in
  // declaration order; the macros reproduce emit_arrays' flattening with
  // declared lower bounds, only over vdep_buf_<k> instead of a static.
  const auto& arrays = nest.arrays();
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    const loopir::ArrayDecl& d = arrays[a];
    os << "#define " << d.name << "(";
    for (int k = 0; k < d.arity(); ++k) os << (k ? ", " : "") << "x" << k;
    os << ") vdep_buf_" << a << "[";
    std::string idx;
    for (int k = 0; k < d.arity(); ++k) {
      auto [lo, hi] = d.dims[static_cast<std::size_t>(k)];
      std::string term =
          "((x" + std::to_string(k) + ") - (" + std::to_string(lo) + "))";
      idx = idx.empty() ? term
                        : "(" + idx + ") * " + std::to_string(hi - lo + 1) +
                              " + " + term;
    }
    os << idx << "]\n";
  }

  os << "\nint64_t " << entry_name
     << "(int64_t** vdep_arrays, const int64_t* vdep_lo, const int64_t* "
        "vdep_hi,\n"
     << "    int64_t vdep_ndims, int64_t vdep_class_lo, int64_t "
        "vdep_class_hi) {\n";
  for (std::size_t a = 0; a < arrays.size(); ++a)
    os << "  int64_t* restrict vdep_buf_" << a << " = vdep_arrays[" << a
       << "];\n";
  os << "  int64_t vdep_count = 0;\n";
  if (nd == 0)
    os << "  (void)vdep_lo; (void)vdep_hi; (void)vdep_ndims;\n";

  std::string indent = "  ";
  // DOALL prefix: every level iterates its transformed bounds intersected
  // with the descriptor's box range when the level is boxed (matches
  // runtime::StreamExecutor::execute_leaf — callers with fewer boxed
  // dimensions than the plan's DOALL count scan the rest in full).
  for (int k = 0; k < nd; ++k) {
    const loopir::Level& l = nest.level(k);
    os << indent << "int64_t vdep_l" << k << " = "
       << c_bound(l.lower, true, names) << ";\n"
       << indent << "int64_t vdep_h" << k << " = "
       << c_bound(l.upper, false, names) << ";\n"
       << indent << "if (" << k << " < vdep_ndims) { vdep_l" << k
       << " = vdep_max(vdep_l" << k << ", vdep_lo[" << k << "]); vdep_h" << k
       << " = vdep_min(vdep_h" << k << ", vdep_hi[" << k << "]); }\n"
       << indent << "for (int64_t " << l.name << " = vdep_l" << k << "; "
       << l.name << " <= vdep_h" << k << "; ++" << l.name << ") {\n";
    indent += "  ";
  }

  os << indent << "for (int64_t vdep_class = vdep_class_lo; vdep_class < "
     << "vdep_class_hi; ++vdep_class) {\n";
  indent += "  ";
  if (plan.partition.has_value()) {
    emit_partition_scan(os, nest, *plan.partition, nd, names, indent,
                        "++vdep_count;");
  } else {
    // Unpartitioned tail (class range is the degenerate [0, 1)).
    os << indent << "(void)vdep_class;\n";
    int opened = 0;
    for (int k = nd; k < depth; ++k) {
      const loopir::Level& l = nest.level(k);
      os << indent << "for (int64_t " << l.name << " = "
         << c_bound(l.lower, true, names) << "; " << l.name
         << " <= " << c_bound(l.upper, false, names) << "; ++" << l.name
         << ") {\n";
      indent += "  ";
      ++opened;
    }
    emit_body(os, nest, names, indent);
    os << indent << "++vdep_count;\n";
    for (int k = 0; k < opened; ++k) {
      indent.resize(indent.size() - 2);
      os << indent << "}\n";
    }
  }
  indent.resize(indent.size() - 2);
  os << indent << "}\n";

  if (nd > 0) {
    for (int k = nd - 1; k >= 0; --k) {
      indent.resize(indent.size() - 2);
      os << indent << "}\n";
    }
  }
  os << "  return vdep_count;\n}\n";
  return os.str();
}

}  // namespace vdep::codegen
