#include "codegen/emit_c.h"

#include <sstream>

#include "analysis/loop_partition.h"
#include "support/error.h"

namespace vdep::codegen {

namespace {

using intlin::i64;
using loopir::AffineExpr;
using loopir::ArrayRef;
using loopir::Bound;
using loopir::BoundTerm;
using loopir::Expr;
using loopir::LoopNest;

std::string c_affine(const AffineExpr& e, const std::vector<std::string>& names) {
  std::string s = e.to_string(names);
  return s.empty() ? "0" : s;
}

// Lower-bound term: ceil(num/den); upper: floor(num/den).
std::string c_bound_term(const BoundTerm& t, bool lower,
                         const std::vector<std::string>& names) {
  if (t.den == 1) return c_affine(t.num, names);
  std::ostringstream os;
  os << (lower ? "vdep_ceildiv(" : "vdep_floordiv(") << c_affine(t.num, names)
     << ", " << t.den << ")";
  return os.str();
}

std::string c_bound(const Bound& b, bool lower,
                    const std::vector<std::string>& names) {
  const auto& terms = b.terms();
  VDEP_REQUIRE(!terms.empty(), "empty bound in codegen");
  std::string acc = c_bound_term(terms[0], lower, names);
  for (std::size_t k = 1; k < terms.size(); ++k) {
    acc = std::string(lower ? "vdep_max(" : "vdep_min(") + acc + ", " +
          c_bound_term(terms[k], lower, names) + ")";
  }
  return acc;
}

std::string c_ref(const ArrayRef& r, const std::vector<std::string>& names) {
  std::ostringstream os;
  os << r.array << "(";
  for (std::size_t k = 0; k < r.subscripts.size(); ++k) {
    if (k) os << ", ";
    os << c_affine(r.subscripts[k], names);
  }
  os << ")";
  return os.str();
}

std::string c_expr(const Expr& e, const std::vector<std::string>& names) {
  switch (e.kind()) {
    case Expr::Kind::kConst:
      return std::to_string(e.value());
    case Expr::Kind::kIndex:
      return names[static_cast<std::size_t>(e.index())];
    case Expr::Kind::kRead:
      return c_ref(e.ref(), names);
    case Expr::Kind::kAdd:
      return "(" + c_expr(*e.lhs(), names) + " + " + c_expr(*e.rhs(), names) + ")";
    case Expr::Kind::kSub:
      return "(" + c_expr(*e.lhs(), names) + " - " + c_expr(*e.rhs(), names) + ")";
    case Expr::Kind::kMul:
      return "(" + c_expr(*e.lhs(), names) + " * " + c_expr(*e.rhs(), names) + ")";
  }
  VDEP_CHECK(false, "unreachable expr kind");
}

void emit_prelude(std::ostringstream& os) {
  os << "#include <stdint.h>\n"
     << "#include <stdio.h>\n\n"
     << "static inline int64_t vdep_max(int64_t a, int64_t b) { return a > b ? a : b; }\n"
     << "static inline int64_t vdep_min(int64_t a, int64_t b) { return a < b ? a : b; }\n"
     << "static inline int64_t vdep_floordiv(int64_t a, int64_t b) {\n"
     << "  int64_t q = a / b, r = a % b;\n"
     << "  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;\n"
     << "}\n"
     << "static inline int64_t vdep_ceildiv(int64_t a, int64_t b) {\n"
     << "  int64_t q = a / b, r = a % b;\n"
     << "  return (r != 0 && ((r < 0) == (b < 0))) ? q + 1 : q;\n"
     << "}\n"
     << "static inline int64_t vdep_mod(int64_t a, int64_t b) {\n"
     << "  int64_t m = a % b;\n"
     << "  return m < 0 ? m + (b < 0 ? -b : b) : m;\n"
     << "}\n\n";
}

void emit_arrays(std::ostringstream& os, const LoopNest& nest) {
  for (const loopir::ArrayDecl& a : nest.arrays()) {
    i64 total = a.element_count();
    os << "static int64_t " << a.name << "_data[" << total << "];\n";
    os << "#define " << a.name << "(";
    for (int d = 0; d < a.arity(); ++d) os << (d ? ", " : "") << "x" << d;
    os << ") " << a.name << "_data[";
    // Row-major flattening with declared lower bounds.
    std::string idx;
    for (int d = 0; d < a.arity(); ++d) {
      auto [lo, hi] = a.dims[static_cast<std::size_t>(d)];
      std::string term = "((x" + std::to_string(d) + ") - (" +
                         std::to_string(lo) + "))";
      idx = idx.empty() ? term
                        : "(" + idx + ") * " + std::to_string(hi - lo + 1) +
                              " + " + term;
    }
    os << idx << "]\n";
  }
  os << "\n";
}

void emit_body(std::ostringstream& os, const LoopNest& nest,
               const std::vector<std::string>& names, const std::string& indent) {
  for (const loopir::Assign& a : nest.body())
    os << indent << c_ref(a.lhs, names) << " = " << c_expr(*a.rhs, names)
       << ";\n";
}

void emit_plain_loops(std::ostringstream& os, const LoopNest& nest,
                      const EmitOptions& opts) {
  std::vector<std::string> names = nest.index_names();
  std::string indent = "  ";
  for (int k = 0; k < nest.depth(); ++k) {
    const loopir::Level& l = nest.level(k);
    if (l.parallel && opts.openmp)
      os << indent << "#pragma omp parallel for\n";
    os << indent << "for (int64_t " << l.name << " = "
       << c_bound(l.lower, true, names) << "; " << l.name
       << " <= " << c_bound(l.upper, false, names) << "; ++" << l.name
       << ") {" << (l.parallel ? "  /* doall */" : "") << "\n";
    indent += "  ";
  }
  emit_body(os, nest, names, indent);
  for (int k = nest.depth() - 1; k >= 0; --k) {
    indent.resize(indent.size() - 2);
    os << indent << "}\n";
  }
}

// Inside an already-open `vdep_class` loop: decode the mixed-radix class
// label into q0..q{dim-1}, emit the Theorem-2 strided scan loops with
// skewed offsets (paper loop (3.2)), the body (plus `count_stmt`, when
// non-empty, once per iteration), and close the strided loops again.
void emit_partition_scan(std::ostringstream& os, const LoopNest& nest,
                         const trans::Partitioning& part, int start,
                         const std::vector<std::string>& names,
                         std::string& indent, const std::string& count_stmt) {
  const Mat& h = part.lattice_basis();
  os << indent << "int64_t vdep_rest = vdep_class;\n";
  for (int k = part.dim() - 1; k >= 0; --k) {
    os << indent << "const int64_t q" << k << " = vdep_rest % "
       << h.at(k, k) << "; vdep_rest /= " << h.at(k, k) << ";\n";
  }

  for (int k = 0; k < part.dim(); ++k) {
    const loopir::Level& l = nest.level(start + k);
    i64 hkk = h.at(k, k);
    // Effective offset with skew terms from outer t coefficients.
    os << indent << "const int64_t off" << k << " = q" << k;
    for (int m = 0; m < k; ++m)
      if (h.at(m, k) != 0) os << " + t" << m << " * " << h.at(m, k);
    os << ";\n";
    os << indent << "const int64_t lo" << k << " = "
       << c_bound(l.lower, true, names) << ";\n";
    os << indent << "for (int64_t " << l.name << " = lo" << k
       << " + vdep_mod(off" << k << " - lo" << k << ", " << hkk << "); "
       << l.name << " <= " << c_bound(l.upper, false, names) << "; " << l.name
       << " += " << hkk << ") {\n";
    indent += "  ";
    if (k + 1 < part.dim())
      os << indent << "const int64_t t" << k << " = (" << l.name << " - off"
         << k << ") / " << hkk << ";\n";
  }

  emit_body(os, nest, names, indent);
  if (!count_stmt.empty()) os << indent << count_stmt << "\n";

  for (int k = part.dim() - 1; k >= 0; --k) {
    indent.resize(indent.size() - 2);
    os << indent << "}\n";
  }
}

void emit_main(std::ostringstream& os, const LoopNest& nest,
               const EmitOptions& opts) {
  os << "\nint main(void) {\n";
  for (const loopir::ArrayDecl& a : nest.arrays()) {
    os << "  for (int64_t k = 0; k < " << a.element_count() << "; ++k) "
       << a.name << "_data[k] = (k % 97) - 48;\n";
  }
  os << "  " << opts.kernel_name << "();\n"
     << "  int64_t sum = 0;\n";
  for (const loopir::ArrayDecl& a : nest.arrays()) {
    os << "  for (int64_t k = 0; k < " << a.element_count() << "; ++k) "
       << "sum = (sum * 31 + " << a.name << "_data[k]) % 1000000007;\n";
  }
  os << "  printf(\"%lld\\n\", (long long)sum);\n"
     << "  return 0;\n}\n";
}

// ---- JIT range-kernel TU pieces (shared by the clamped and partitioned
// ---- variants) -------------------------------------------------------

void emit_jit_prelude(std::ostringstream& os) {
  os << "#include <stdint.h>\n\n"
     << "static inline int64_t vdep_max(int64_t a, int64_t b) { return a > b ? a : b; }\n"
     << "static inline int64_t vdep_min(int64_t a, int64_t b) { return a < b ? a : b; }\n"
     << "static inline int64_t vdep_floordiv(int64_t a, int64_t b) {\n"
     << "  int64_t q = a / b, r = a % b;\n"
     << "  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;\n"
     << "}\n"
     << "static inline int64_t vdep_ceildiv(int64_t a, int64_t b) {\n"
     << "  int64_t q = a / b, r = a % b;\n"
     << "  return (r != 0 && ((r < 0) == (b < 0))) ? q + 1 : q;\n"
     << "}\n"
     << "static inline int64_t vdep_mod(int64_t a, int64_t b) {\n"
     << "  int64_t m = a % b;\n"
     << "  return m < 0 ? m + (b < 0 ? -b : b) : m;\n"
     << "}\n\n";
}

// Arrays are raw row-major buffers handed in by the runtime in declaration
// order; the macros reproduce emit_arrays' flattening with declared lower
// bounds, only over vdep_buf_<k> instead of a static.
void emit_jit_array_macros(std::ostringstream& os, const LoopNest& nest) {
  const auto& arrays = nest.arrays();
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    const loopir::ArrayDecl& d = arrays[a];
    os << "#define " << d.name << "(";
    for (int k = 0; k < d.arity(); ++k) os << (k ? ", " : "") << "x" << k;
    os << ") vdep_buf_" << a << "[";
    std::string idx;
    for (int k = 0; k < d.arity(); ++k) {
      auto [lo, hi] = d.dims[static_cast<std::size_t>(k)];
      std::string term =
          "((x" + std::to_string(k) + ") - (" + std::to_string(lo) + "))";
      idx = idx.empty() ? term
                        : "(" + idx + ") * " + std::to_string(hi - lo + 1) +
                              " + " + term;
    }
    os << idx << "]\n";
  }
}

void emit_entry_open(std::ostringstream& os, const LoopNest& nest,
                     const std::string& entry_name) {
  os << "\nint64_t " << entry_name
     << "(int64_t** vdep_arrays, const int64_t* vdep_lo, const int64_t* "
        "vdep_hi,\n"
     << "    int64_t vdep_ndims, int64_t vdep_class_lo, int64_t "
        "vdep_class_hi) {\n";
  for (std::size_t a = 0; a < nest.arrays().size(); ++a)
    os << "  int64_t* restrict vdep_buf_" << a << " = vdep_arrays[" << a
       << "];\n";
  os << "  int64_t vdep_count = 0;\n";
}

// Everything under one `vdep_class` binding: the Theorem-2 strided scan
// (or the unpartitioned trailing levels), counting every iteration.
void emit_class_body(std::ostringstream& os, const LoopNest& nest,
                     const trans::TransformPlan& plan,
                     const std::vector<std::string>& names,
                     std::string& indent) {
  if (plan.partition.has_value()) {
    emit_partition_scan(os, nest, *plan.partition, plan.num_doall, names,
                        indent, "++vdep_count;");
  } else {
    // Unpartitioned tail (class range is the degenerate [0, 1)).
    os << indent << "(void)vdep_class;\n";
    int opened = 0;
    for (int k = plan.num_doall; k < nest.depth(); ++k) {
      const loopir::Level& l = nest.level(k);
      os << indent << "for (int64_t " << l.name << " = "
         << c_bound(l.lower, true, names) << "; " << l.name
         << " <= " << c_bound(l.upper, false, names) << "; ++" << l.name
         << ") {\n";
      indent += "  ";
      ++opened;
    }
    emit_body(os, nest, names, indent);
    os << indent << "++vdep_count;\n";
    for (int k = 0; k < opened; ++k) {
      indent.resize(indent.size() - 2);
      os << indent << "}\n";
    }
  }
}

// The class loop wrapping emit_class_body — the innermost section of every
// region of the clamped kernel and of multi-class partitioned kernels.
void emit_class_section(std::ostringstream& os, const LoopNest& nest,
                        const trans::TransformPlan& plan,
                        const std::vector<std::string>& names,
                        std::string& indent) {
  os << indent << "for (int64_t vdep_class = vdep_class_lo; vdep_class < "
     << "vdep_class_hi; ++vdep_class) {\n";
  indent += "  ";
  emit_class_body(os, nest, plan, names, indent);
  indent.resize(indent.size() - 2);
  os << indent << "}\n";
}

// Single-residue-class specialization for the partitioned fast path: the
// caller's class range is pinned to [0, 1) by the fast-path guard, so the
// per-point class loop degenerates to one body execution and is dropped —
// the spatial loop becomes the innermost loop, which is what lets the
// toolchain vectorize the steady region.
void emit_point_section(std::ostringstream& os, const LoopNest& nest,
                        const trans::TransformPlan& plan,
                        const std::vector<std::string>& names,
                        std::string& indent) {
  os << indent << "{  /* single class: range hoisted into the fast-path "
     << "guard */\n";
  indent += "  ";
  os << indent << "const int64_t vdep_class = 0;\n";
  emit_class_body(os, nest, plan, names, indent);
  indent.resize(indent.size() - 2);
  os << indent << "}\n";
}

// The original clamped execution: every boxed level intersects its bound
// with the descriptor box at loop entry. Used as the whole body of the
// clamped kernel and as the generic path of the partitioned kernel (for
// callers boxing fewer dimensions than the plan's DOALL count).
void emit_clamped_path(std::ostringstream& os, const LoopNest& nest,
                       const trans::TransformPlan& plan,
                       const std::vector<std::string>& names) {
  const int nd = plan.num_doall;
  if (nd == 0)
    os << "  (void)vdep_lo; (void)vdep_hi; (void)vdep_ndims;\n";
  std::string indent = "  ";
  for (int k = 0; k < nd; ++k) {
    const loopir::Level& l = nest.level(k);
    os << indent << "int64_t vdep_l" << k << " = "
       << c_bound(l.lower, true, names) << ";\n"
       << indent << "int64_t vdep_h" << k << " = "
       << c_bound(l.upper, false, names) << ";\n"
       << indent << "if (" << k << " < vdep_ndims) { vdep_l" << k
       << " = vdep_max(vdep_l" << k << ", vdep_lo[" << k << "]); vdep_h" << k
       << " = vdep_min(vdep_h" << k << ", vdep_hi[" << k << "]); }\n"
       << indent << "for (int64_t " << l.name << " = vdep_l" << k << "; "
       << l.name << " <= vdep_h" << k << "; ++" << l.name << ") {\n";
    indent += "  ";
  }
  emit_class_section(os, nest, plan, names, indent);
  for (int k = nd - 1; k >= 0; --k) {
    indent.resize(indent.size() - 2);
    os << indent << "}\n";
  }
}

}  // namespace

std::string emit_c_original(const LoopNest& nest, const EmitOptions& opts) {
  VDEP_REQUIRE(!nest.has_indirection(),
               "C emission requires affine subscripts; indirect nests run "
               "through the inspector/interpreter path");
  std::ostringstream os;
  os << "/* Generated by vdep: original sequential nest. */\n";
  emit_prelude(os);
  emit_arrays(os, nest);
  os << "void " << opts.kernel_name << "(void) {\n";
  emit_plain_loops(os, nest, opts);
  os << "}\n";
  if (opts.with_main) emit_main(os, nest, opts);
  return os.str();
}

std::string emit_c_transformed(const LoopNest& original,
                               const trans::TransformPlan& plan,
                               const EmitOptions& opts) {
  TransformedNest tn = rewrite_nest(original, plan);
  const LoopNest& nest = tn.nest;
  std::ostringstream os;
  os << "/* Generated by vdep: transformed nest (T = " << plan.t.to_string()
     << ", " << plan.num_doall << " outer DOALL loop(s), "
     << plan.partition_classes << " partition class(es)). */\n";
  emit_prelude(os);
  emit_arrays(os, nest);
  os << "void " << opts.kernel_name << "(void) {\n";

  if (!plan.partition.has_value()) {
    emit_plain_loops(os, nest, opts);
    os << "}\n";
    if (opts.with_main) emit_main(os, nest, opts);
    return os.str();
  }

  // Theorem 2 structure. Outer: the doall loops of the rewritten nest, then
  // a parallel loop over the det(R) residue classes; inner: strided scans
  // with skewed offsets (paper loop (3.2)).
  const trans::Partitioning& part = *plan.partition;
  int n = nest.depth();
  int start = n - part.dim();
  std::vector<std::string> names = nest.index_names();
  std::string indent = "  ";

  // Outer doall loops (transformed coordinates before the partition block).
  for (int k = 0; k < start; ++k) {
    const loopir::Level& l = nest.level(k);
    if (opts.openmp && k == 0) os << indent << "#pragma omp parallel for\n";
    os << indent << "for (int64_t " << l.name << " = "
       << c_bound(l.lower, true, names) << "; " << l.name
       << " <= " << c_bound(l.upper, false, names) << "; ++" << l.name
       << ") {  /* doall */\n";
    indent += "  ";
  }

  // Class loop.
  os << indent;
  if (opts.openmp && start == 0) os << "#pragma omp parallel for\n" << indent;
  os << "for (int64_t vdep_class = 0; vdep_class < " << part.num_classes()
     << "; ++vdep_class) {  /* doall: independent residue classes */\n";
  indent += "  ";
  emit_partition_scan(os, nest, part, start, names, indent, "");
  indent.resize(indent.size() - 2);
  os << indent << "}\n";
  for (int k = start - 1; k >= 0; --k) {
    indent.resize(indent.size() - 2);
    os << indent << "}\n";
  }
  os << "}\n";
  if (opts.with_main) emit_main(os, nest, opts);
  return os.str();
}

std::string emit_c_range_kernel(const LoopNest& original,
                                const trans::TransformPlan& plan,
                                const std::string& entry_name) {
  TransformedNest tn = rewrite_nest(original, plan);
  const LoopNest& nest = tn.nest;
  std::vector<std::string> names = nest.index_names();

  std::ostringstream os;
  os << "/* Generated by vdep: JIT range kernel (T = " << plan.t.to_string()
     << ", " << plan.num_doall << " outer DOALL loop(s), "
     << plan.partition_classes << " partition class(es)). */\n";
  emit_jit_prelude(os);
  emit_jit_array_macros(os, nest);
  emit_entry_open(os, nest, entry_name);
  emit_clamped_path(os, nest, plan, names);
  os << "  return vdep_count;\n}\n";
  return os.str();
}

std::string emit_c_partitioned_range_kernel(const LoopNest& original,
                                            const trans::TransformPlan& plan,
                                            const analysis::LoopPartition& part,
                                            const std::string& entry_name,
                                            bool inject_fault) {
  TransformedNest tn = rewrite_nest(original, plan);
  const LoopNest& nest = tn.nest;
  const int nd = plan.num_doall;
  VDEP_REQUIRE(nd > 0, "partitioned kernel needs a boxed DOALL prefix");
  VDEP_REQUIRE(part.num_levels == nd,
               "partition level count does not match the plan's DOALL count");
  std::vector<std::string> names = nest.index_names();
  const int P = part.axis;

  std::ostringstream os;
  os << "/* Generated by vdep: partitioned JIT range kernel (T = "
     << plan.t.to_string() << ", " << nd << " outer DOALL loop(s), "
     << plan.partition_classes << " partition class(es); steady-state "
     << (part.fully_static()
             ? std::string("over the whole box (all bounds static)")
             : "split on axis " + std::to_string(P) + " by " +
                   std::to_string(part.constraints.size()) +
                   " clip constraint(s)")
     << "). */\n";
  emit_jit_prelude(os);
  emit_jit_array_macros(os, nest);
  emit_entry_open(os, nest, entry_name);

  // Fast path: every plan DOALL level is boxed by the caller. The
  // effective box is the descriptor box clamped once, here, to the static
  // interval hull — which makes the region code below agree with the
  // clamped path for *any* caller box, not only sub-boxes of the hull.
  // Single-class plans additionally pin the class range in the guard so the
  // regions below can drop the per-point class loop (emit_point_section);
  // any other class range — including empty — takes the generic path.
  const bool single_class = plan.partition_classes == 1;
  os << "  if (vdep_ndims == " << nd
     << (single_class ? " && vdep_class_lo == 0 && vdep_class_hi == 1" : "")
     << ") {  /* vdep:partitioned begin */\n";
  std::string indent = "    ";
  for (int k = 0; k < nd; ++k) {
    const analysis::Interval& h = part.env.level_hull(k);
    os << indent << "const int64_t vdep_blo" << k << " = vdep_max(vdep_lo["
       << k << "], " << h.lo << "LL);\n"
       << indent << "const int64_t vdep_bhi" << k << " = vdep_min(vdep_hi["
       << k << "], " << h.hi << "LL);\n";
  }

  // Opens the boxed levels in (from, to) against the effective box, either
  // clamped against their transformed bounds (boundary regions) or scanning
  // the box slice directly (steady: the clamp is provably the identity).
  auto open_inner = [&](int from, int to, bool clamped) {
    for (int k = from; k < to; ++k) {
      const loopir::Level& l = nest.level(k);
      if (clamped) {
        os << indent << "int64_t vdep_l" << k << " = vdep_max("
           << c_bound(l.lower, true, names) << ", vdep_blo" << k << ");\n"
           << indent << "int64_t vdep_h" << k << " = vdep_min("
           << c_bound(l.upper, false, names) << ", vdep_bhi" << k << ");\n"
           << indent << "for (int64_t " << l.name << " = vdep_l" << k << "; "
           << l.name << " <= vdep_h" << k << "; ++" << l.name << ") {\n";
      } else {
        os << indent << "for (int64_t " << l.name << " = vdep_blo" << k
           << "; " << l.name << " <= vdep_bhi" << k << "; ++" << l.name
           << ") {\n";
      }
      indent += "  ";
    }
  };
  auto close_levels = [&](int count) {
    for (int k = 0; k < count; ++k) {
      indent.resize(indent.size() - 2);
      os << indent << "}\n";
    }
  };
  auto emit_fault = [&]() {
    if (!inject_fault) return;
    os << indent << "const int64_t vdep_fault = vdep_min(vdep_count, 0); "
       << "(void)vdep_fault;  /* injected fault (test-only) */\n";
  };

  if (part.fully_static()) {
    // Every clamp is the identity everywhere: the whole box is steady.
    os << indent << "/* vdep:region steady begin */\n";
    emit_fault();
    open_inner(0, nd, /*clamped=*/false);
    os << indent << "/* vdep:scan begin */\n";
    if (single_class)
      emit_point_section(os, nest, plan, names, indent);
    else
      emit_class_section(os, nest, plan, names, indent);
    os << indent << "/* vdep:scan end */\n";
    close_levels(nd);
    os << indent << "/* vdep:region steady end */\n";
  } else {
    // Steady sub-range of the partition axis: the j_P values where every
    // clip constraint holds for every inner point of the box, computed
    // once from the (runtime) effective box. Candidates only shrink
    // [vdep_blo_P, vdep_bhi_P]; a failed guard or inverted range collapses
    // to the canonical empty pair so the prologue absorbs the whole axis.
    os << indent << "int64_t vdep_s_lo = vdep_blo" << P << ";\n"
       << indent << "int64_t vdep_s_hi = vdep_bhi" << P << ";\n";
    int ci = 0;
    for (const analysis::ClipConstraint& c : part.constraints) {
      const AffineExpr& num = c.term.num;
      std::ostringstream kx;
      kx << c.term.den << "LL * vdep_b" << (c.lower ? "lo" : "hi") << c.level
         << " - (" << num.constant_term() << "LL)";
      for (int m = 0; m < c.level; ++m) {
        if (m == P) continue;
        i64 cm = num.coeff(m);
        if (cm == 0) continue;
        bool worst_hi = c.lower ? (cm > 0) : (cm < 0);
        kx << " - " << cm << "LL * vdep_b" << (worst_hi ? "hi" : "lo") << m;
      }
      os << indent << "const int64_t vdep_kq" << ci << " = " << kx.str()
         << ";\n";
      if (c.coeff_axis == 0) {
        os << indent << "if (vdep_kq" << ci << (c.lower ? " < 0" : " > 0")
           << ") vdep_s_lo = vdep_bhi" << P
           << " + 1;  /* guard: never identity on this box */\n";
      } else if ((c.coeff_axis > 0) == c.lower) {
        os << indent << "vdep_s_hi = vdep_min(vdep_s_hi, vdep_floordiv("
           << "vdep_kq" << ci << ", " << c.coeff_axis << "LL));\n";
      } else {
        os << indent << "vdep_s_lo = vdep_max(vdep_s_lo, vdep_ceildiv("
           << "vdep_kq" << ci << ", " << c.coeff_axis << "LL));\n";
      }
      ++ci;
    }
    os << indent << "if (vdep_s_lo > vdep_s_hi) { vdep_s_lo = vdep_bhi" << P
       << " + 1; vdep_s_hi = vdep_bhi" << P << "; }\n";

    // Levels up to the axis are statically steady (a non-static bound
    // there would reference an index below the axis): box scans, shared by
    // all three regions.
    open_inner(0, P, /*clamped=*/false);

    const std::string& pn = nest.level(P).name;
    os << indent << "/* vdep:region prologue begin */\n"
       << indent << "for (int64_t " << pn << " = vdep_blo" << P << "; " << pn
       << " < vdep_s_lo; ++" << pn << ") {\n";
    indent += "  ";
    open_inner(P + 1, nd, /*clamped=*/true);
    if (single_class)
      emit_point_section(os, nest, plan, names, indent);
    else
      emit_class_section(os, nest, plan, names, indent);
    close_levels(nd - P - 1);
    close_levels(1);
    os << indent << "/* vdep:region prologue end */\n";

    os << indent << "/* vdep:region steady begin */\n";
    emit_fault();
    os << indent << "for (int64_t " << pn << " = vdep_s_lo; " << pn
       << " <= vdep_s_hi; ++" << pn << ") {\n";
    indent += "  ";
    open_inner(P + 1, nd, /*clamped=*/false);
    os << indent << "/* vdep:scan begin */\n";
    if (single_class)
      emit_point_section(os, nest, plan, names, indent);
    else
      emit_class_section(os, nest, plan, names, indent);
    os << indent << "/* vdep:scan end */\n";
    close_levels(nd - P - 1);
    close_levels(1);
    os << indent << "/* vdep:region steady end */\n";

    os << indent << "/* vdep:region epilogue begin */\n"
       << indent << "for (int64_t " << pn << " = vdep_s_hi + 1; " << pn
       << " <= vdep_bhi" << P << "; ++" << pn << ") {\n";
    indent += "  ";
    open_inner(P + 1, nd, /*clamped=*/true);
    if (single_class)
      emit_point_section(os, nest, plan, names, indent);
    else
      emit_class_section(os, nest, plan, names, indent);
    close_levels(nd - P - 1);
    close_levels(1);
    os << indent << "/* vdep:region epilogue end */\n";

    close_levels(P);
  }
  os << "    return vdep_count;\n"
     << "  }  /* vdep:partitioned end */\n";

  // Generic path: callers boxing fewer dimensions than the plan's DOALL
  // count (runtime split_dims policies) take the original clamped code.
  emit_clamped_path(os, nest, plan, names);
  os << "  return vdep_count;\n}\n";
  return os.str();
}

}  // namespace vdep::codegen
