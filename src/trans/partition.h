// Iteration-space partitioning for a full-rank PDM (paper Theorem 2,
// following D'Hollander's partitioning method).
//
// A full-rank PDM H (upper-triangular HNF) generates a sub-lattice of Z^n
// of index det(H). Iterations i and j can only depend on each other when
// j - i lies in that lattice, i.e. when they fall in the same residue class
// of Z^n / lattice(H). There are exactly det(H) classes; each class is
// executed sequentially in lexicographic order while the classes themselves
// are independent — det(H)-way parallelism.
//
// The canonical class label of an iteration is computed by forward
// substitution along the triangle (the paper's q-tilde recurrence in loop
// (3.2)): the "skewed offsets" of Figure 5 are the t_l * h_{l,k} coupling
// terms below.
#pragma once

#include <functional>

#include "trans/legality.h"

namespace vdep::trans {

class Partitioning {
 public:
  /// `h` must be a full-rank (square, upper-triangular, positive-diagonal)
  /// Hermite normal form.
  explicit Partitioning(Mat h);

  int dim() const { return h_.rows(); }
  const Mat& lattice_basis() const { return h_; }
  /// Number of independent classes = det(H) = prod of the diagonal.
  i64 num_classes() const { return num_classes_; }

  /// Canonical residue of iteration i: r_k in [0, h_kk), equal for i and j
  /// iff j - i is in lattice(H).
  Vec residue_of(const Vec& iter) const;

  /// Mixed-radix encoding of residue_of into [0, num_classes).
  i64 class_id(const Vec& iter) const;

  /// Inverse of the mixed-radix encoding: the residue labelled `id`.
  Vec class_label(i64 id) const;

  /// Enumerates, in lexicographic order, the iterations of class `label`
  /// that lie inside `nest`'s bounds (strided scan with skewed offsets —
  /// the loop structure of (3.2)). Requires nest.depth() == dim().
  void for_each_class_iteration(const loopir::LoopNest& nest, const Vec& label,
                                const std::function<void(const Vec&)>& fn) const;

  /// General form: partitions the trailing dims [start, start+dim()) of a
  /// (start+dim())-deep nest. `iter`'s prefix [0, start) must already hold
  /// the outer index values; fn receives the full iteration vector.
  void for_each_class_iteration_from(const loopir::LoopNest& nest, int start,
                                     const Vec& label, Vec& iter,
                                     const std::function<void(const Vec&)>& fn) const;

 private:
  void scan(const loopir::LoopNest& nest, int start, const Vec& label, int k,
            Vec& iter, Vec& t_coeffs,
            const std::function<void(const Vec&)>& fn) const;

  Mat h_;
  i64 num_classes_ = 1;
};

}  // namespace vdep::trans
