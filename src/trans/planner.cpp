#include "trans/planner.h"

#include <sstream>

#include "intlin/det.h"
#include "support/error.h"

namespace vdep::trans {

bool TransformPlan::is_identity_transform() const {
  return t == Mat::identity(depth);
}

std::string TransformPlan::to_string() const {
  std::ostringstream os;
  os << "TransformPlan{T=" << t.to_string()
     << ", H*T=" << transformed_pdm.to_string() << ", doall=" << num_doall
     << ", classes=" << partition_classes << "}";
  return os.str();
}

TransformPlan plan_transform(const dep::Pdm& pdm) {
  TransformPlan plan;
  plan.depth = pdm.depth();
  int n = pdm.depth();
  int rho = pdm.rank();

  if (rho == 0) {
    // No dependence distances at all: the nest is fully parallel as-is.
    plan.t = Mat::identity(n);
    plan.transformed_pdm = Mat(0, n);
    plan.num_doall = n;
    return plan;
  }

  if (rho == n) {
    // Full rank: the HNF is already upper triangular — partition directly
    // (T = I keeps the paper's "no restructuring needed" property).
    plan.t = Mat::identity(n);
    plan.transformed_pdm = pdm.matrix();
  } else {
    Algorithm1Result a1 = algorithm1(pdm.matrix());
    plan.t = std::move(a1.t);
    plan.transformed_pdm = std::move(a1.transformed_pdm);
    plan.num_doall = a1.zero_columns;
    plan.algorithm1_ops = std::move(a1.ops);
  }

  // Trailing rho x rho block: rows 0..rho-1, columns n-rho..n-1.
  // Re-canonicalize as an HNF: Algorithm 1 guarantees the echelon shape but
  // not reduced above-diagonal entries; the partition classes only depend
  // on the *lattice*, which the HNF preserves.
  Mat block(rho, rho);
  for (int r = 0; r < rho; ++r)
    for (int c = 0; c < rho; ++c)
      block.at(r, c) = plan.transformed_pdm.at(r, n - rho + c);
  block = intlin::hermite_normal_form(block);
  VDEP_CHECK(block.rows() == rho, "trailing PDM block lost rank");
  i64 det = intlin::determinant(block);
  VDEP_CHECK(det > 0, "trailing PDM block must have positive determinant");
  if (det > 1) {
    plan.partition.emplace(std::move(block));
    plan.partition_classes = det;
  }
  return plan;
}

}  // namespace vdep::trans
