// Algorithm 1 of the paper: given a (non-full-rank) PDM H with rank rho,
// find a *legal* unimodular T such that the first n - rho columns of H*T are
// zero — by Lemma 1 the corresponding (outermost) loops of the transformed
// nest are DOALL.
//
// The construction processes PDM rows bottom-up, gcd-reducing each row's
// entries into its target pivot column with elementary column operations
// (right skews, interchanges and column negations). The final product is
// verified against Theorem 1 — H*T must be echelon with lexicographically
// positive rows — so legality is established exactly, not assumed.
#pragma once

#include <string>
#include <vector>

#include "trans/legality.h"

namespace vdep::trans {

struct Algorithm1Result {
  Mat t;                ///< legal unimodular transform
  Mat transformed_pdm;  ///< H * T == [0 ... 0 | R], R upper triangular
  int zero_columns = 0; ///< n - rank(H): number of leading DOALL loops
  /// Human-readable op log ("skew(0,1,-2)", "interchange(1,2)", ...),
  /// mostly for diagnostics and the worked examples.
  std::vector<std::string> ops;
};

/// Runs Algorithm 1 on a PDM in Hermite normal form. Accepts full-rank
/// matrices too (zero_columns == 0, T normalizes the block to upper
/// triangular form, which an HNF already is — then T == identity).
Algorithm1Result algorithm1(const Mat& pdm);

}  // namespace vdep::trans
