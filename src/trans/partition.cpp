#include "trans/partition.h"

#include "support/error.h"

namespace vdep::trans {

Partitioning::Partitioning(Mat h) : h_(std::move(h)) {
  VDEP_REQUIRE(h_.is_square(), "partitioning needs a square PDM block");
  VDEP_REQUIRE(h_.rows() == 0 || intlin::is_hermite_normal_form(h_),
               "partitioning needs a full-rank HNF");
  for (int k = 0; k < h_.rows(); ++k) {
    VDEP_REQUIRE(h_.at(k, k) > 0, "HNF diagonal must be positive");
    for (int c = 0; c < k; ++c)
      VDEP_REQUIRE(h_.at(k, c) == 0, "HNF must be upper triangular");
    num_classes_ = checked::mul(num_classes_, h_.at(k, k));
  }
}

Vec Partitioning::residue_of(const Vec& iter) const {
  VDEP_REQUIRE(static_cast<int>(iter.size()) == dim(), "iteration dim mismatch");
  // i_k = r_k + sum_{l<=k} t_l * h_{l,k}; peel t_k off with floor division.
  Vec r(iter.size());
  Vec t(iter.size());
  for (int k = 0; k < dim(); ++k) {
    i64 offset = 0;
    for (int l = 0; l < k; ++l)
      offset = checked::fma(offset, t[static_cast<std::size_t>(l)], h_.at(l, k));
    i64 rest = checked::sub(iter[static_cast<std::size_t>(k)], offset);
    i64 hkk = h_.at(k, k);
    t[static_cast<std::size_t>(k)] = checked::floor_div(rest, hkk);
    r[static_cast<std::size_t>(k)] = checked::mod(rest, hkk);
  }
  return r;
}

i64 Partitioning::class_id(const Vec& iter) const {
  Vec r = residue_of(iter);
  i64 id = 0;
  for (int k = 0; k < dim(); ++k)
    id = checked::add(checked::mul(id, h_.at(k, k)), r[static_cast<std::size_t>(k)]);
  return id;
}

Vec Partitioning::class_label(i64 id) const {
  VDEP_REQUIRE(id >= 0 && id < num_classes_, "class id out of range");
  Vec r(static_cast<std::size_t>(dim()));
  for (int k = dim() - 1; k >= 0; --k) {
    i64 hkk = h_.at(k, k);
    r[static_cast<std::size_t>(k)] = id % hkk;
    id /= hkk;
  }
  return r;
}

void Partitioning::scan(const loopir::LoopNest& nest, int start,
                        const Vec& label, int k, Vec& iter, Vec& t_coeffs,
                        const std::function<void(const Vec&)>& fn) const {
  if (k == dim()) {
    fn(iter);
    return;
  }
  const loopir::Level& level = nest.level(start + k);
  i64 lo = level.lower.eval_lower(iter);
  i64 hi = level.upper.eval_upper(iter);
  i64 hkk = h_.at(k, k);
  // Effective offset q~_k = label_k + sum_{l<k} t_l h_{l,k} (skewed offset).
  i64 qk = label[static_cast<std::size_t>(k)];
  for (int l = 0; l < k; ++l)
    qk = checked::fma(qk, t_coeffs[static_cast<std::size_t>(l)], h_.at(l, k));
  // First member of the class at or above lo: lo + mod(qk - lo, hkk).
  i64 first = checked::add(lo, checked::mod(checked::sub(qk, lo), hkk));
  for (i64 v = first; v <= hi; v = checked::add(v, hkk)) {
    iter[static_cast<std::size_t>(start + k)] = v;
    t_coeffs[static_cast<std::size_t>(k)] =
        checked::floor_div(checked::sub(v, qk), hkk);
    scan(nest, start, label, k + 1, iter, t_coeffs, fn);
  }
  iter[static_cast<std::size_t>(start + k)] = 0;
  t_coeffs[static_cast<std::size_t>(k)] = 0;
}

void Partitioning::for_each_class_iteration(
    const loopir::LoopNest& nest, const Vec& label,
    const std::function<void(const Vec&)>& fn) const {
  VDEP_REQUIRE(nest.depth() == dim(), "nest depth / partition dim mismatch");
  Vec iter(static_cast<std::size_t>(dim()), 0);
  for_each_class_iteration_from(nest, 0, label, iter, fn);
}

void Partitioning::for_each_class_iteration_from(
    const loopir::LoopNest& nest, int start, const Vec& label, Vec& iter,
    const std::function<void(const Vec&)>& fn) const {
  VDEP_REQUIRE(nest.depth() == start + dim(),
               "nest depth must equal start + partition dim");
  VDEP_REQUIRE(static_cast<int>(label.size()) == dim(), "label dim mismatch");
  VDEP_REQUIRE(static_cast<int>(iter.size()) == nest.depth(),
               "iteration vector depth mismatch");
  Vec t(static_cast<std::size_t>(dim()), 0);
  scan(nest, start, label, 0, iter, t, fn);
}

}  // namespace vdep::trans
