#include "trans/legality.h"

#include "intlin/det.h"
#include "support/error.h"

namespace vdep::trans {

bool is_legal_transform(const Mat& pdm, const Mat& t) {
  if (!intlin::is_unimodular(t)) return false;
  if (pdm.rows() == 0) return true;  // no dependences constrain the order
  VDEP_REQUIRE(pdm.cols() == t.rows(), "PDM / transform shape mismatch");
  return intlin::is_echelon_lex_positive(pdm * t);
}

bool legal_composition(const Mat& pdm, const Mat& t1, const Mat& t2) {
  if (!is_legal_transform(pdm, t1)) return false;
  return is_legal_transform(pdm * t1, t2);
}

Mat right_skew(int n, int src, int dst, i64 k) {
  VDEP_REQUIRE(src >= 0 && dst >= 0 && src < n && dst < n && src != dst,
               "right_skew index out of range");
  VDEP_REQUIRE(src < dst, "right_skew requires src < dst (Corollary 2)");
  Mat t = Mat::identity(n);
  t.at(src, dst) = k;  // (i*T)_dst = i_dst + k * i_src
  return t;
}

Mat interchange(int n, int a, int b) {
  VDEP_REQUIRE(a >= 0 && b >= 0 && a < n && b < n, "interchange out of range");
  Mat t = Mat::identity(n);
  t.swap_cols(a, b);
  return t;
}

Mat reversal(int n, int k) {
  VDEP_REQUIRE(k >= 0 && k < n, "reversal out of range");
  Mat t = Mat::identity(n);
  t.at(k, k) = -1;
  return t;
}

Mat cycle(int n, int from, int to) {
  VDEP_REQUIRE(from >= 0 && from < n && to >= 0 && to < n, "cycle out of range");
  Mat t(n, n);
  // Column layout of T: new index at position `to` reads old index `from`.
  // Remaining indices keep their relative order.
  std::vector<int> order;  // order[p] = old index placed at new position p
  for (int p = 0, old = 0; p < n; ++p) {
    if (p == to) {
      order.push_back(from);
      continue;
    }
    if (old == from) ++old;
    order.push_back(old++);
  }
  for (int p = 0; p < n; ++p) t.at(order[static_cast<std::size_t>(p)], p) = 1;
  return t;
}

Mat skew(int n, int src, int dst, i64 k) {
  VDEP_REQUIRE(src >= 0 && dst >= 0 && src < n && dst < n && src != dst,
               "skew index out of range");
  Mat t = Mat::identity(n);
  t.at(src, dst) = k;
  return t;
}

bool skew_is_legal(const Mat& pdm, int src, int dst, i64 k) {
  if (src < dst) return true;  // Corollary 2: right skewing is always legal
  return is_legal_transform(pdm, skew(pdm.cols(), src, dst, k));
}

bool shift_is_legal(const Mat& pdm, int from, int to) {
  if (from == to) return true;
  if (!pdm.col_is_zero(from)) {
    // A nonzero column may still move legally; defer to Theorem 1.
    return is_legal_transform(pdm, cycle(pdm.cols(), from, to));
  }
  return is_legal_transform(pdm, cycle(pdm.cols(), from, to));
}

bool interchange_is_legal(const Mat& pdm, int a, int b) {
  return is_legal_transform(pdm, interchange(pdm.cols(), a, b));
}

}  // namespace vdep::trans
