#include "trans/algorithm1.h"

#include <sstream>

#include "support/error.h"

namespace vdep::trans {

namespace {

std::string op_str(const char* name, int a, int b, i64 k) {
  std::ostringstream os;
  os << name << "(" << a << "," << b;
  if (name[0] == 's') os << "," << k;
  os << ")";
  return os.str();
}

}  // namespace

Algorithm1Result algorithm1(const Mat& pdm) {
  VDEP_REQUIRE(pdm.rows() == 0 || intlin::is_hermite_normal_form(pdm),
               "algorithm1 expects a PDM in Hermite normal form");
  int n = pdm.cols();
  int rho = pdm.rows();
  VDEP_REQUIRE(rho <= n, "PDM rank exceeds loop depth");

  Algorithm1Result out;
  out.t = Mat::identity(n);
  out.transformed_pdm = pdm;
  out.zero_columns = n - rho;

  Mat& h = out.transformed_pdm;
  Mat& t = out.t;

  auto add_col = [&](int dst, int src, i64 k) {
    h.add_col_multiple(dst, src, k);
    t.add_col_multiple(dst, src, k);
    out.ops.push_back(op_str("skew", src, dst, k));
  };
  auto swap_col = [&](int a, int b) {
    h.swap_cols(a, b);
    t.swap_cols(a, b);
    out.ops.push_back(op_str("interchange", a, b, 0));
  };
  auto negate_col = [&](int c) {
    h.negate_col(c);
    t.negate_col(c);
    out.ops.push_back(op_str("reversal", c, c, 0));
  };

  // Bottom-up: row r's surviving pivot belongs at column p = n - rho + r.
  // Working upwards keeps already-processed rows zero in the columns the
  // current row manipulates (they are zero there and stay zero under
  // column combinations among zero entries).
  for (int r = rho - 1; r >= 0; --r) {
    int p = n - rho + r;
    // Gcd-fold every nonzero entry of row r left of p into column p.
    for (int c = 0; c < p; ++c) {
      while (h.at(r, c) != 0) {
        if (h.at(r, p) == 0) {
          swap_col(c, p);
          continue;
        }
        i64 q = checked::floor_div(h.at(r, c), h.at(r, p));
        if (q != 0) add_col(c, p, checked::neg(q));
        if (h.at(r, c) != 0) swap_col(c, p);  // Euclid: remainder continues
      }
    }
    if (h.at(r, p) < 0) negate_col(p);
    VDEP_CHECK(h.at(r, p) > 0, "algorithm1 produced a non-positive pivot");
  }

  // Theorem 1: legality is verified on the final product, exactly.
  VDEP_CHECK(pdm * t == h, "algorithm1 transform bookkeeping diverged");
  VDEP_CHECK(is_legal_transform(pdm, t),
             "algorithm1 produced an illegal transformation");
  for (int c = 0; c < out.zero_columns; ++c)
    VDEP_CHECK(h.col_is_zero(c), "algorithm1 left a nonzero leading column");
  return out;
}

}  // namespace vdep::trans
