// Legality of loop transformations under a pseudo distance matrix
// (paper Section 3.1).
//
// Row-vector convention: a unimodular T maps iteration i to j = i*T, and a
// distance d to d*T. Theorem 1: T is legal iff H*T is an echelon matrix
// with lexicographically positive rows — then every lex-positive distance
// d = t*H (t lex-positive, Lemma 2) maps to the lex-positive d*T = t*(H*T).
#pragma once

#include "dep/pdm.h"

namespace vdep::trans {

using dep::Pdm;
using intlin::i64;
using intlin::Mat;
using intlin::Vec;

/// Theorem 1 check: T unimodular and H*T echelon with lex-positive rows.
/// An empty PDM (no dependences) accepts any unimodular T.
bool is_legal_transform(const Mat& pdm, const Mat& t);

/// Composition (Corollary 1): both steps legal => product legal. Checked
/// variant used by the algorithm's op-log replay in tests.
bool legal_composition(const Mat& pdm, const Mat& t1, const Mat& t2);

// ---- elementary transformations (all n x n, row-vector convention) ----

/// General skew: new index dst becomes i_dst + k * i_src.
Mat skew(int n, int src, int dst, i64 k);

/// Right skewing (Corollary 2): requires src < dst; always legal on a PDM
/// in echelon form.
Mat right_skew(int n, int src, int dst, i64 k);

/// Loop interchange of levels a and b (legal under Corollary 4 conditions;
/// check with is_legal_transform).
Mat interchange(int n, int a, int b);

/// Loop reversal of level k (rarely legal on its own; provided for the
/// uniform-distance baseline searches).
Mat reversal(int n, int k);

/// Cyclic shift moving level `from` to position `to`, preserving the
/// relative order of the others (Corollary 3: legal when column `from`
/// of the PDM is zero and it moves to the front).
Mat cycle(int n, int from, int to);

/// Corollary 2 predicate (always true for src < dst; kept for symmetry).
bool skew_is_legal(const Mat& pdm, int src, int dst, i64 k);

/// Corollary 3 predicate: column `from` of the PDM is zero.
bool shift_is_legal(const Mat& pdm, int from, int to);

/// Corollary 4-style predicate, implemented exactly via Theorem 1.
bool interchange_is_legal(const Mat& pdm, int a, int b);

}  // namespace vdep::trans
