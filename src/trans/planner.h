// The paper's complete transformation strategy:
//
//   1. empty PDM                -> every loop is DOALL (T = I);
//   2. rank(H) < n              -> Algorithm 1: legal unimodular T with
//                                  n - rank leading zero columns = outer
//                                  DOALL loops; then
//   3. the trailing rho x rho full-rank block R of H*T (or H itself when
//      full rank, with T = I)   -> Theorem 2 partitioning into det(R)
//                                  independent classes when det(R) > 1.
//
// The plan is a pure analysis artifact: code generation (codegen/) and
// execution (exec/) consume it.
#pragma once

#include <optional>

#include "trans/algorithm1.h"
#include "trans/partition.h"

namespace vdep::trans {

struct TransformPlan {
  int depth = 0;

  /// Legal unimodular transform (j = i * T). Identity when no reordering
  /// is needed (full-rank or empty PDM).
  Mat t;
  /// H * T.
  Mat transformed_pdm;

  /// Number of leading DOALL loops of the transformed nest (zero columns).
  int num_doall = 0;

  /// Partitioning of the trailing full-rank block, when det > 1.
  /// Operates on the *transformed* coordinates j_{num_doall..n-1}.
  std::optional<Partitioning> partition;

  /// det of the partitioned block (1 when not partitioned).
  i64 partition_classes = 1;

  /// True when T == identity (no loop restructuring, only partitioning).
  bool is_identity_transform() const;

  /// The op log of Algorithm 1 (empty if it did not run).
  std::vector<std::string> algorithm1_ops;

  std::string to_string() const;
};

/// Derive the transformation plan from a PDM (Section 3 of the paper).
TransformPlan plan_transform(const dep::Pdm& pdm);

}  // namespace vdep::trans
