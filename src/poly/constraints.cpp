#include "poly/constraints.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace vdep::poly {

bool Constraint::satisfied_by(const Vec& x) const {
  return intlin::dot(coeffs, x) <= rhs;
}

Constraint Constraint::normalized() const {
  i64 g = intlin::content(coeffs);
  if (g <= 1) return *this;
  Constraint c;
  c.coeffs.reserve(coeffs.size());
  for (i64 v : coeffs) c.coeffs.push_back(v / g);
  // Integer points satisfying a.x <= b also satisfy (a/g).x <= floor(b/g).
  c.rhs = checked::floor_div(rhs, g);
  return c;
}

std::string Constraint::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t k = 0; k < coeffs.size(); ++k) {
    if (coeffs[k] == 0) continue;
    if (!first) os << " + ";
    os << coeffs[k] << "*x" << k;
    first = false;
  }
  if (first) os << "0";
  os << " <= " << rhs;
  return os.str();
}

void ConstraintSystem::add(Vec coeffs, i64 rhs) {
  VDEP_REQUIRE(static_cast<int>(coeffs.size()) == dim_, "constraint dim mismatch");
  rows_.push_back(Constraint{std::move(coeffs), rhs}.normalized());
}

void ConstraintSystem::add_box(int k, i64 lo, i64 hi) {
  VDEP_REQUIRE(k >= 0 && k < dim_, "box variable out of range");
  Vec up(static_cast<std::size_t>(dim_), 0);
  up[static_cast<std::size_t>(k)] = 1;
  add(up, hi);  // x_k <= hi
  Vec down(static_cast<std::size_t>(dim_), 0);
  down[static_cast<std::size_t>(k)] = -1;
  add(down, checked::neg(lo));  // -x_k <= -lo
}

bool ConstraintSystem::satisfied_by(const Vec& x) const {
  for (const Constraint& c : rows_)
    if (!c.satisfied_by(x)) return false;
  return true;
}

ConstraintSystem ConstraintSystem::transformed(const Mat& t) const {
  VDEP_REQUIRE(t.rows() == dim_ && t.cols() == dim_, "transform shape mismatch");
  Mat tinv = intlin::unimodular_inverse(t);
  ConstraintSystem out(dim_);
  for (const Constraint& c : rows_) {
    // x = y * Tinv, so a.x = a.(y*Tinv) = (Tinv * a^T).y.
    out.add(intlin::mat_vec_mul(tinv, c.coeffs), c.rhs);
  }
  return out;
}

void ConstraintSystem::simplify() {
  std::vector<Constraint> kept;
  for (const Constraint& c : rows_) {
    bool dominated = false;
    for (Constraint& k : kept) {
      if (k.coeffs == c.coeffs) {
        k.rhs = std::min(k.rhs, c.rhs);
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(c);
  }
  rows_ = std::move(kept);
}

std::string ConstraintSystem::to_string() const {
  std::ostringstream os;
  for (const Constraint& c : rows_) os << c.to_string() << "\n";
  return os.str();
}

ConstraintSystem ConstraintSystem::from_nest(const loopir::LoopNest& nest) {
  ConstraintSystem cs(nest.depth());
  for (int k = 0; k < nest.depth(); ++k) {
    const loopir::Level& l = nest.level(k);
    for (const loopir::BoundTerm& t : l.lower.terms()) {
      VDEP_REQUIRE(t.den == 1, "from_nest requires integral bounds");
      // num <= x_k  ==>  num - x_k <= 0.
      Vec coeffs = t.num.coeffs();
      coeffs[static_cast<std::size_t>(k)] =
          checked::sub(coeffs[static_cast<std::size_t>(k)], 1);
      cs.add(std::move(coeffs), checked::neg(t.num.constant_term()));
    }
    for (const loopir::BoundTerm& t : l.upper.terms()) {
      VDEP_REQUIRE(t.den == 1, "from_nest requires integral bounds");
      // x_k <= num  ==>  x_k - num <= 0.
      Vec coeffs = intlin::negate(t.num.coeffs());
      coeffs[static_cast<std::size_t>(k)] =
          checked::add(coeffs[static_cast<std::size_t>(k)], 1);
      cs.add(std::move(coeffs), t.num.constant_term());
    }
  }
  return cs;
}

}  // namespace vdep::poly
