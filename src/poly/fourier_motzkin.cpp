#include "poly/fourier_motzkin.h"

#include "support/error.h"

namespace vdep::poly {

ConstraintSystem eliminate_variable(const ConstraintSystem& cs, int var) {
  VDEP_REQUIRE(var >= 0 && var < cs.dim(), "eliminated variable out of range");
  ConstraintSystem out(cs.dim());
  std::vector<const Constraint*> pos, neg;
  for (const Constraint& c : cs.constraints()) {
    i64 a = c.coeffs[static_cast<std::size_t>(var)];
    if (a > 0)
      pos.push_back(&c);
    else if (a < 0)
      neg.push_back(&c);
    else
      out.add(c.coeffs, c.rhs);
  }
  for (const Constraint* p : pos) {
    for (const Constraint* n : neg) {
      i64 ap = p->coeffs[static_cast<std::size_t>(var)];
      i64 an = checked::neg(n->coeffs[static_cast<std::size_t>(var)]);
      i64 l = checked::lcm(ap, an);
      i64 mp = l / ap;
      i64 mn = l / an;
      Vec coeffs = intlin::add(intlin::scale(p->coeffs, mp),
                               intlin::scale(n->coeffs, mn));
      VDEP_CHECK(coeffs[static_cast<std::size_t>(var)] == 0,
                 "FM combination kept the variable");
      i64 rhs = checked::add(checked::mul(p->rhs, mp), checked::mul(n->rhs, mn));
      out.add(std::move(coeffs), rhs);
    }
  }
  out.simplify();
  return out;
}

bool relaxation_infeasible(const ConstraintSystem& cs) {
  ConstraintSystem cur = cs;
  for (int v = cs.dim() - 1; v >= 0; --v) {
    for (const Constraint& c : cur.constraints())
      if (intlin::is_zero(c.coeffs) && c.rhs < 0) return true;
    cur = eliminate_variable(cur, v);
  }
  for (const Constraint& c : cur.constraints())
    if (intlin::is_zero(c.coeffs) && c.rhs < 0) return true;
  return false;
}

// Defined here (not in constraints.cpp) because it relies on FM projection.
std::optional<std::pair<i64, i64>> ConstraintSystem::variable_range(int k) const {
  VDEP_REQUIRE(k >= 0 && k < dim_, "variable_range index out of range");
  ConstraintSystem cur = *this;
  for (int v = dim_ - 1; v >= 0; --v) {
    if (v == k) continue;
    cur = eliminate_variable(cur, v);
  }
  bool have_lo = false, have_hi = false;
  i64 lo = 0, hi = 0;
  for (const Constraint& c : cur.constraints()) {
    i64 a = c.coeffs[static_cast<std::size_t>(k)];
    if (a > 0) {
      i64 v = checked::floor_div(c.rhs, a);
      hi = have_hi ? std::min(hi, v) : v;
      have_hi = true;
    } else if (a < 0) {
      i64 v = checked::ceil_div(checked::neg(c.rhs), checked::neg(a));
      lo = have_lo ? std::max(lo, v) : v;
      have_lo = true;
    }
  }
  if (!have_lo || !have_hi) return std::nullopt;
  return std::make_pair(lo, hi);
}

NestBounds extract_bounds(const ConstraintSystem& cs) {
  int n = cs.dim();
  NestBounds out;
  out.lower.resize(static_cast<std::size_t>(n));
  out.upper.resize(static_cast<std::size_t>(n));

  ConstraintSystem cur = cs;
  for (int k = n - 1; k >= 0; --k) {
    loopir::Bound lower, upper;
    for (const Constraint& c : cur.constraints()) {
      i64 a = c.coeffs[static_cast<std::size_t>(k)];
      if (a == 0) continue;
      // rest(x_outer) + a * x_k <= rhs.
      Vec rest = c.coeffs;
      rest[static_cast<std::size_t>(k)] = 0;
      for (int m = k + 1; m < n; ++m)
        VDEP_CHECK(rest[static_cast<std::size_t>(m)] == 0,
                   "bound term references an inner index after FM");
      if (a > 0) {
        // x_k <= (rhs - rest) / a  -> floor term.
        loopir::AffineExpr num(intlin::negate(rest), c.rhs);
        upper.add_term({std::move(num), a});
      } else {
        // x_k >= (rest - rhs) / (-a) -> ceil term.
        loopir::AffineExpr num(rest, checked::neg(c.rhs));
        lower.add_term({std::move(num), checked::neg(a)});
      }
    }
    VDEP_REQUIRE(!lower.empty() && !upper.empty(),
                 "iteration space is unbounded in variable " + std::to_string(k));
    out.lower[static_cast<std::size_t>(k)] = std::move(lower);
    out.upper[static_cast<std::size_t>(k)] = std::move(upper);
    if (k > 0) cur = eliminate_variable(cur, k);
  }
  return out;
}

}  // namespace vdep::poly
