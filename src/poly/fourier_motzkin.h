// Exact integer Fourier-Motzkin elimination and loop-bound extraction.
//
// After a unimodular change of coordinates the iteration polytope is still
// described by linear inequalities; scanning it as a loop nest requires
// per-level bounds in terms of the outer indices only. Fourier-Motzkin
// projection provides exactly that (the technique the paper cites for its
// Section 4 code generation).
//
// The projection is the *rational* shadow: for a level k it can include an
// outer value whose inner range is empty, but it never loses an integer
// point — the generated loops visit exactly the original iteration set.
#pragma once

#include "loopir/affine.h"
#include "poly/constraints.h"

namespace vdep::poly {

/// Projects variable `var` out of the system (rational shadow).
/// Rows not mentioning `var` are kept; each (positive, negative) pair is
/// combined with the lcm of the coefficients and gcd-normalized.
ConstraintSystem eliminate_variable(const ConstraintSystem& cs, int var);

/// True when even the rational relaxation is empty (FM derived 0 <= c with
/// c < 0 at some stage).
bool relaxation_infeasible(const ConstraintSystem& cs);

/// Per-level loop bounds extracted from a full-dimensional system:
/// bounds for level k reference indices 0..k-1 only.
struct NestBounds {
  std::vector<loopir::Bound> lower;
  std::vector<loopir::Bound> upper;
};

/// Runs FM from the innermost variable outwards and converts the rows that
/// mention each variable into ceil/floor bound terms.
NestBounds extract_bounds(const ConstraintSystem& cs);

}  // namespace vdep::poly
