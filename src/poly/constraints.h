// Systems of linear integer inequalities  coeffs . x <= rhs.
//
// Used to carry loop bounds through unimodular coordinate changes and to
// regenerate bounds for the transformed loops via Fourier-Motzkin
// elimination (the paper cites Banerjee / Schrijver for this step).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "intlin/det.h"
#include "loopir/nest.h"

namespace vdep::poly {

using intlin::i64;
using intlin::Mat;
using intlin::Vec;

/// One inequality: dot(coeffs, x) <= rhs.
struct Constraint {
  Vec coeffs;
  i64 rhs = 0;

  int dim() const { return static_cast<int>(coeffs.size()); }
  bool satisfied_by(const Vec& x) const;
  /// Divide through by the gcd of the coefficients, tightening the rhs with
  /// a floor (valid for integer solution sets).
  Constraint normalized() const;
  bool operator==(const Constraint& o) const = default;
  std::string to_string() const;
};

class ConstraintSystem {
 public:
  explicit ConstraintSystem(int dim) : dim_(dim) {}

  int dim() const { return dim_; }
  const std::vector<Constraint>& constraints() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  /// Adds dot(coeffs, x) <= rhs.
  void add(Vec coeffs, i64 rhs);
  /// Adds lo <= x_k  and  x_k <= hi.
  void add_box(int k, i64 lo, i64 hi);

  bool satisfied_by(const Vec& x) const;

  /// Rewrites the system into new coordinates y = x * T (row convention,
  /// T unimodular): each constraint a.x <= b becomes (Tinv*a).y <= b where
  /// Tinv = T^{-1}.
  ConstraintSystem transformed(const Mat& t) const;

  /// Drops duplicate and obviously dominated rows (same coefficients,
  /// weaker rhs).
  void simplify();

  /// Bounds of the box [min,max] of variable k over the *relaxation*,
  /// or nullopt if unbounded. Uses FM projection internally.
  std::optional<std::pair<i64, i64>> variable_range(int k) const;

  std::string to_string() const;

  /// Builds the iteration-space constraint system of a loop nest
  /// (rectangular or triangular affine bounds; bound divisors must be 1,
  /// which holds for all original-program nests).
  static ConstraintSystem from_nest(const loopir::LoopNest& nest);

 private:
  int dim_;
  std::vector<Constraint> rows_;
};

}  // namespace vdep::poly
