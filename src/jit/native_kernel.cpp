#include "jit/native_kernel.h"

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#define VDEP_JIT_POSIX 1
#endif

namespace vdep::jit {

NativeKernel::~NativeKernel() {
#ifdef VDEP_JIT_POSIX
  if (handle_) dlclose(handle_);
#endif
}

i64 NativeKernel::execute_range(exec::ArrayStore& store,
                                const exec::IterBox& box) const {
  std::vector<std::int64_t*> bufs;
  bufs.reserve(arrays_.size());
  for (const std::string& name : arrays_)
    bufs.push_back(store.raw_mutable(name).data());
  return fn_(bufs.data(), box.lo, box.hi, box.ndims, box.class_lo,
             box.class_hi);
}

}  // namespace vdep::jit
