#include "jit/toolchain.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/kernel_verifier.h"
#include "analysis/loop_partition.h"
#include "codegen/emit_c.h"
#include "codegen/rewrite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#include <sys/wait.h>
#include <unistd.h>
#define VDEP_JIT_POSIX 1
#endif

namespace vdep::jit {

namespace fs = std::filesystem;

namespace {

constexpr const char* kEntryName = "vdep_range_kernel";

/// True when `path` names an existing regular file this process may exec.
bool is_executable(const fs::path& path) {
  std::error_code ec;
  if (!fs::is_regular_file(path, ec)) return false;
#ifdef VDEP_JIT_POSIX
  return ::access(path.c_str(), X_OK) == 0;
#else
  return false;
#endif
}

/// Resolves a driver name against $PATH (no shell involved).
std::optional<std::string> find_on_path(const std::string& name) {
  if (name.find('/') != std::string::npos) {
    return is_executable(name) ? std::optional<std::string>(name)
                               : std::nullopt;
  }
  const char* path = std::getenv("PATH");
  if (!path) return std::nullopt;
  std::istringstream dirs(path);
  std::string dir;
  while (std::getline(dirs, dir, ':')) {
    if (dir.empty()) continue;
    fs::path candidate = fs::path(dir) / name;
    if (is_executable(candidate)) return candidate.string();
  }
  return std::nullopt;
}

/// Single-quotes `s` for /bin/sh.
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "'\\''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string read_file(const fs::path& p, std::size_t max_bytes) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  std::string s = os.str();
  if (s.size() > max_bytes) s.resize(max_bytes);
  return s;
}

/// A fresh private directory under `base` (mkdtemp when available).
Expected<std::string> make_work_dir(const std::string& base) {
  std::error_code ec;
  fs::path root = base.empty() ? fs::temp_directory_path(ec) : fs::path(base);
  if (ec) return ApiError{ErrorKind::kUnsupported,
                          "jit: no usable temp directory: " + ec.message()};
  fs::create_directories(root, ec);
#ifdef VDEP_JIT_POSIX
  std::string templ = (root / "vdep-jit-XXXXXX").string();
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (!::mkdtemp(buf.data()))
    return ApiError{ErrorKind::kUnsupported,
                    "jit: mkdtemp failed under " + root.string()};
  return std::string(buf.data());
#else
  return ApiError{ErrorKind::kUnsupported,
                  "jit: native kernels need a POSIX host"};
#endif
}

}  // namespace

std::string JitOptions::memo_key() const {
  std::string key = "cc=";
  key += compiler;
  key += ";flags=";
  key += extra_flags;
  key += ";keep=";
  key += keep_artifacts ? '1' : '0';
  key += ";part=";
  key += partition ? '1' : '0';
  key += ";native=";
  key += native_arch ? '1' : '0';
  key += ";fault=";
  key += inject_partition_fault ? '1' : '0';
  return key;
}

std::optional<std::string> discover_toolchain(const std::string& preferred) {
  if (!preferred.empty()) return find_on_path(preferred);
  if (const char* env = std::getenv("VDEP_CC"); env && *env)
    if (auto cc = find_on_path(env)) return cc;
  for (const char* name : {"cc", "gcc", "clang"})
    if (auto cc = find_on_path(name)) return cc;
  return std::nullopt;
}

ToolchainCompiler::ToolchainCompiler(JitOptions opts)
    : opts_(std::move(opts)), cc_(discover_toolchain(opts_.compiler)) {}

Expected<std::shared_ptr<const NativeKernel>> ToolchainCompiler::compile(
    const loopir::LoopNest& original, const trans::TransformPlan& plan) const {
  // The emitted kernel indexes raw buffers unchecked; refuse nests whose
  // subscripts the box proof cannot certify (they interpret instead).
  std::string source;
  CompileMeta meta;
  {
    obs::ScopedSpan emit_span(obs::EventKind::kCodegen, /*layer_enabled=*/true,
                              obs::Phase::kCodegen);
    try {
      exec::prove_subscript_ranges(original);
    } catch (const Error& e) {
      return ApiError{ErrorKind::kUnsupported,
                      std::string("jit: range proof failed: ") + e.what()};
    }

    // Steady-state partitioning: derive the partition, emit the split TU,
    // and let the kernel verifier decide whether it may load. Any refusal
    // — analysis overflow, a failed obligation, an injected fault — keeps
    // the clamped kernel, never blocks compilation.
    if (opts_.partition && plan.num_doall > 0) {
      try {
        codegen::TransformedNest tn = codegen::rewrite_nest(original, plan);
        std::optional<analysis::LoopPartition> part;
        {
          obs::ScopedSpan span(obs::EventKind::kPartitionAnalyze,
                               /*layer_enabled=*/true, obs::Phase::kCodegen);
          part = analysis::analyze_partition(tn.nest, plan.num_doall);
          if (span.tracing() && part) {
            span.set_arg(0, part->axis);
            span.set_arg(1, static_cast<i64>(part->constraints.size()));
          }
        }
        if (part) {
          std::string psource = codegen::emit_c_partitioned_range_kernel(
              original, plan, *part, kEntryName,
              opts_.inject_partition_fault);
          analysis::VerifierReport rep;
          {
            obs::ScopedSpan span(obs::EventKind::kPartitionVerify,
                                 /*layer_enabled=*/true, obs::Phase::kCodegen);
            rep = analysis::verify_partitioned_kernel(
                original, tn.nest, plan.num_doall, *part, psource);
            if (span.tracing()) {
              span.set_arg(0, rep.ok ? 1 : 0);
              span.set_arg(1, static_cast<i64>(rep.failures.size()));
            }
          }
          if (rep.ok) {
            source = std::move(psource);
            meta.partitioned = true;
            meta.partition_verdict = rep.summary();
            meta.opt_flags = "-O3";
            if (opts_.native_arch) meta.opt_flags += " -march=native";
          } else {
            meta.partition_verdict = rep.summary();
          }
        } else {
          meta.partition_verdict = "rejected: partition analysis refused";
        }
      } catch (const Error& e) {
        meta.partition_verdict =
            std::string("rejected: partition pipeline error: ") + e.what();
      }
      if (!meta.partitioned && obs::MetricsRegistry::enabled())
        obs::MetricsRegistry::instance()
            .counter("vdep_partition_fallbacks_total",
                     "partitioned kernels refused (clamped fallback)")
            .inc();
    }

    if (source.empty()) {
      try {
        source = codegen::emit_c_range_kernel(original, plan, kEntryName);
      } catch (const Error& e) {
        return ApiError{ErrorKind::kUnsupported,
                        std::string("jit: emission failed: ") + e.what()};
      }
    }
  }
  std::vector<std::string> order;
  for (const loopir::ArrayDecl& a : original.arrays()) order.push_back(a.name);
  return compile_source(source, kEntryName, std::move(order), std::move(meta));
}

Expected<std::shared_ptr<const NativeKernel>> ToolchainCompiler::compile_source(
    const std::string& c_source, const std::string& entry_name,
    std::vector<std::string> array_order, CompileMeta meta) const {
#ifndef VDEP_JIT_POSIX
  (void)c_source; (void)entry_name; (void)array_order; (void)meta;
  return ApiError{ErrorKind::kUnsupported,
                  "jit: native kernels need a POSIX host (dlopen)"};
#else
  if (!cc_)
    return ApiError{ErrorKind::kUnsupported,
                    "jit: no C toolchain found (set $VDEP_CC or put cc/gcc/"
                    "clang on PATH)"};

  Expected<std::string> dir = make_work_dir(opts_.work_dir);
  if (!dir) return dir.error();
  fs::path work(*dir);
  fs::path c_path = work / "kernel.c";
  fs::path so_path = work / "kernel.so";
  fs::path log_path = work / "cc.log";
  {
    std::ofstream out(c_path);
    out << c_source;
    if (!out) {
      return ApiError{ErrorKind::kUnsupported,
                      "jit: cannot write " + c_path.string()};
    }
  }

  // -fwrapv: suite kernels (e.g. uniform_wavefront) overflow i64 at large
  // sizes. The postfix CompiledKernel computes with plain (two's-
  // complement-wrapping in practice) C++ arithmetic, so the native kernel
  // must wrap identically rather than let the C optimizer exploit the UB.
  // (The tree-walking interpreter is stricter still — checked:: arithmetic
  // that *throws* on overflow — so kInterpreter errors where kCompiled and
  // kJit agree on wrapped values.)
  std::string cmd = shell_quote(*cc_) + " " + meta.opt_flags +
                    " -fwrapv -fPIC -shared -x c " +
                    shell_quote(c_path.string()) + " -o " +
                    shell_quote(so_path.string());
  if (!opts_.extra_flags.empty()) cmd += " " + opts_.extra_flags;
  cmd += " 2> " + shell_quote(log_path.string());

  int rc;
  {
    obs::ScopedSpan cc_span(obs::EventKind::kCcSubprocess,
                            /*layer_enabled=*/true, obs::Phase::kJitCompile);
    rc = std::system(cmd.c_str());
  }
  if (obs::MetricsRegistry::enabled()) {
    obs::MetricsRegistry::instance()
        .counter("vdep_jit_builds_total", "toolchain cc invocations")
        .inc();
    if (meta.partitioned)
      obs::MetricsRegistry::instance()
          .counter("vdep_partition_kernels_total",
                   "verified steady-state partitioned kernels built")
          .inc();
  }
  bool ok = rc != -1 && WIFEXITED(rc) && WEXITSTATUS(rc) == 0;
  if (!ok) {
    std::string log = read_file(log_path, 2000);
    std::error_code ec;
    if (!opts_.keep_artifacts) fs::remove_all(work, ec);
    return ApiError{ErrorKind::kUnsupported,
                    "jit: toolchain '" + *cc_ + "' failed: " + log};
  }

  obs::ScopedSpan dlopen_span(obs::EventKind::kDlopen, /*layer_enabled=*/true,
                              obs::Phase::kJitCompile);
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) {
    const char* err = dlerror();
    std::error_code ec;
    if (!opts_.keep_artifacts) fs::remove_all(work, ec);
    return ApiError{ErrorKind::kUnsupported,
                    std::string("jit: dlopen failed: ") + (err ? err : "")};
  }
  auto fn = reinterpret_cast<NativeKernel::EntryFn>(
      dlsym(handle, entry_name.c_str()));
  if (!fn) {
    dlclose(handle);
    std::error_code ec;
    if (!opts_.keep_artifacts) fs::remove_all(work, ec);
    return ApiError{ErrorKind::kInternal,
                    "jit: entry symbol '" + entry_name + "' not found"};
  }

  std::string kept_path;
  if (opts_.keep_artifacts) {
    kept_path = so_path.string();
  } else {
    // The mapping survives the unlink (POSIX); nothing is left on disk.
    std::error_code ec;
    fs::remove_all(work, ec);
  }
  return std::shared_ptr<const NativeKernel>(new NativeKernel(
      handle, fn, std::move(array_order), c_source, kept_path,
      meta.partitioned, std::move(meta.partition_verdict)));
#endif
}

}  // namespace vdep::jit
