#include "jit/toolchain.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "analysis/kernel_verifier.h"
#include "analysis/loop_partition.h"
#include "api/fingerprint.h"
#include "cache/disk_cache.h"
#include "codegen/emit_c.h"
#include "codegen/rewrite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/keyenc.h"

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#define VDEP_JIT_POSIX 1
#endif

namespace vdep::jit {

namespace fs = std::filesystem;

namespace {

constexpr const char* kEntryName = "vdep_range_kernel";

/// True when `path` names an existing regular file this process may exec.
bool is_executable(const fs::path& path) {
  std::error_code ec;
  if (!fs::is_regular_file(path, ec)) return false;
#ifdef VDEP_JIT_POSIX
  return ::access(path.c_str(), X_OK) == 0;
#else
  return false;
#endif
}

/// Resolves a driver name against $PATH (no shell involved).
std::optional<std::string> find_on_path(const std::string& name) {
  if (name.find('/') != std::string::npos) {
    return is_executable(name) ? std::optional<std::string>(name)
                               : std::nullopt;
  }
  const char* path = std::getenv("PATH");
  if (!path) return std::nullopt;
  std::istringstream dirs(path);
  std::string dir;
  while (std::getline(dirs, dir, ':')) {
    // POSIX treats an empty PATH entry ("::", a leading/trailing ':') as
    // the current directory, and relative entries resolve against it too.
    // Executing a compiler picked up from the CWD is a classic planting
    // vector and never what a library user means — absolute entries only.
    if (dir.empty() || dir[0] != '/') continue;
    fs::path candidate = fs::path(dir) / name;
    if (is_executable(candidate)) return candidate.string();
  }
  return std::nullopt;
}

/// Single-quotes `s` for /bin/sh.
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "'\\''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string read_file(const fs::path& p, std::size_t max_bytes) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  std::string s = os.str();
  if (s.size() > max_bytes) s.resize(max_bytes);
  return s;
}

/// A fresh private directory under `base` (mkdtemp when available).
Expected<std::string> make_work_dir(const std::string& base) {
  std::error_code ec;
  fs::path root = base.empty() ? fs::temp_directory_path(ec) : fs::path(base);
  if (ec) return ApiError{ErrorKind::kUnsupported,
                          "jit: no usable temp directory: " + ec.message()};
  fs::create_directories(root, ec);
#ifdef VDEP_JIT_POSIX
  std::string templ = (root / "vdep-jit-XXXXXX").string();
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (!::mkdtemp(buf.data()))
    return ApiError{ErrorKind::kUnsupported,
                    "jit: mkdtemp failed under " + root.string()};
  // Stamp the owner so sweep_stale_work_dirs can tell a crashed process's
  // leftover from a live compile in another process.
  std::ofstream pid(fs::path(buf.data()) / "owner.pid");
  pid << ::getpid() << '\n';
  return std::string(buf.data());
#else
  return ApiError{ErrorKind::kUnsupported,
                  "jit: native kernels need a POSIX host"};
#endif
}

}  // namespace

std::string JitOptions::memo_key() const {
  // compiler and extra_flags are free-form caller text: length-prefixed
  // (support/keyenc.h) so {compiler:"x;flags=y"} and {compiler:"x",
  // extra_flags:"y;flags="} cannot collide onto one memo entry.
  std::string key = "cc=";
  keyenc::append_field(&key, compiler);
  key += ";flags=";
  keyenc::append_field(&key, extra_flags);
  key += ";keep=";
  key += keep_artifacts ? '1' : '0';
  key += ";part=";
  key += partition ? '1' : '0';
  key += ";native=";
  key += native_arch ? '1' : '0';
  key += ";fault=";
  key += inject_partition_fault ? '1' : '0';
  return key;
}

std::optional<std::string> discover_toolchain(const std::string& preferred) {
  if (!preferred.empty()) return find_on_path(preferred);
  if (const char* env = std::getenv("VDEP_CC"); env && *env)
    if (auto cc = find_on_path(env)) return cc;
  for (const char* name : {"cc", "gcc", "clang"})
    if (auto cc = find_on_path(name)) return cc;
  return std::nullopt;
}

std::string toolchain_identity(const std::string& cc_path) {
#ifdef VDEP_JIT_POSIX
  // Memoized per (path, mtime, size): the --version subprocess runs once
  // per distinct driver file, and a rewritten driver (upgrade, or a test
  // swapping a wrapper script) re-probes instead of reusing a stale digest.
  struct Identity {
    std::time_t mtime = 0;
    std::int64_t size = -1;
    std::string id;
  };
  static std::mutex mu;
  static std::map<std::string, Identity> memo;

  struct stat st{};
  std::time_t mtime = 0;
  std::int64_t size = -1;
  if (::stat(cc_path.c_str(), &st) == 0) {
    mtime = st.st_mtime;
    size = static_cast<std::int64_t>(st.st_size);
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo.find(cc_path);
    if (it != memo.end() && it->second.mtime == mtime &&
        it->second.size == size)
      return it->second.id;
  }

  std::string version;
  std::string cmd = shell_quote(cc_path) + " --version 2>/dev/null";
  if (FILE* p = ::popen(cmd.c_str(), "r")) {
    char buf[512];
    std::size_t n;
    while ((n = ::fread(buf, 1, sizeof(buf), p)) > 0) version.append(buf, n);
    ::pclose(p);
  }
  std::string id;
  keyenc::append_field(&id, cc_path);
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(cache::fnv1a64(version)));
  id += hex;

  std::lock_guard<std::mutex> lock(mu);
  memo[cc_path] = Identity{mtime, size, id};
  return id;
#else
  return cc_path;
#endif
}

std::size_t sweep_stale_work_dirs(const std::string& base) {
#ifndef VDEP_JIT_POSIX
  (void)base;
  return 0;
#else
  std::error_code ec;
  fs::path root = base.empty() ? fs::temp_directory_path(ec) : fs::path(base);
  if (ec) return 0;

  // Once per (process, root): the sweep is recovery work, not something
  // every ToolchainCompiler construction should re-pay.
  {
    static std::mutex mu;
    static std::set<std::string> swept;
    std::lock_guard<std::mutex> lock(mu);
    if (!swept.insert(root.string()).second) return 0;
  }

  std::size_t removed = 0;
  for (const auto& de : fs::directory_iterator(root, ec)) {
    if (!de.is_directory(ec)) continue;
    std::string name = de.path().filename().string();
    if (name.rfind("vdep-jit-", 0) != 0) continue;

    long pid = 0;
    {
      std::ifstream in(de.path() / "owner.pid");
      in >> pid;
      if (!in) pid = 0;
    }
    bool stale;
    if (pid > 0 && pid != static_cast<long>(::getpid())) {
      // kill(pid, 0) probes liveness without signalling; only ESRCH — no
      // such process — proves the owner is gone. EPERM means alive but
      // not ours: leave it.
      stale = ::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH;
    } else if (pid > 0) {
      stale = false;  // our own live compile in another thread
    } else {
      // No/unreadable stamp (torn creation, an older vdep): fall back to
      // an age heuristic long past any plausible cc runtime.
      auto mtime = fs::last_write_time(de.path(), ec);
      if (ec) continue;
      stale = decltype(mtime)::clock::now() - mtime > std::chrono::hours(24);
    }
    if (stale) {
      std::error_code rm_ec;
      fs::remove_all(de.path(), rm_ec);
      if (!rm_ec) ++removed;
    }
  }
  return removed;
#endif
}

ToolchainCompiler::ToolchainCompiler(JitOptions opts)
    : opts_(std::move(opts)), cc_(discover_toolchain(opts_.compiler)) {
  // Reclaim directories leaked by processes that died mid-compile; doing
  // it at construction keeps the sweep off every compile() call while
  // still running before this compiler adds its own directories.
  sweep_stale_work_dirs(opts_.work_dir);
}

namespace {

/// The option fields that change the emitted TU or its compile line — the
/// disk-cache key's option component. compiler is covered by the toolchain
/// identity; keep_artifacts/work_dir/cache_dir only steer local lifecycle.
std::string cache_options_render(const JitOptions& o) {
  std::string r;
  keyenc::append_field(&r, o.extra_flags);
  r += o.partition ? '1' : '0';
  r += o.native_arch ? '1' : '0';
  r += o.inject_partition_fault ? '1' : '0';
  return r;
}

}  // namespace

Expected<std::shared_ptr<const NativeKernel>> ToolchainCompiler::compile(
    const loopir::LoopNest& original, const trans::TransformPlan& plan) const {
  std::string cache_key;
  std::shared_ptr<cache::DiskCache> disk =
      cache::DiskCache::resolve(opts_.cache_dir, opts_.disk_cache);
  if (disk && cc_) {
    cache_key = cache::kernel_cache_key(
        cache::build_id(), vdep::structural_fingerprint(original).key,
        vdep::bounds_render(original), cache_options_render(opts_),
        toolchain_identity(*cc_));
    std::optional<cache::KernelHit> hit;
    {
      obs::ScopedSpan span(obs::EventKind::kDiskCacheProbe,
                           /*layer_enabled=*/true, obs::Phase::kJitCompile);
      hit = disk->load_kernel(cache_key);
      if (span.tracing()) span.set_arg(0, hit ? 1 : 0);
    }
    if (hit) {
      if (!hit->meta.ok)
        // A cached deterministic failure: same TU + flags + toolchain will
        // fail the same way — degrade now without paying the cc run.
        return ApiError{static_cast<ErrorKind>(hit->meta.error_kind),
                        hit->meta.error_message};
      // dlopen straight off the published .so: the mapping outlives any
      // later eviction's unlink, exactly like the default temp-dir flow.
      obs::ScopedSpan dl(obs::EventKind::kDlopen, /*layer_enabled=*/true,
                         obs::Phase::kJitCompile);
      void* handle = dlopen(hit->so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
      auto fn = handle ? reinterpret_cast<NativeKernel::EntryFn>(
                             dlsym(handle, hit->meta.entry.c_str()))
                       : nullptr;
      if (fn) {
        return std::shared_ptr<const NativeKernel>(new NativeKernel(
            handle, fn, std::move(hit->meta.arrays),
            std::move(hit->meta.source),
            // Cache hits honour the keep_artifacts contract: default
            // lifecycle reports no on-disk path (the cache file is an
            // internal detail), keep points at the cached object.
            opts_.keep_artifacts ? hit->so_path : std::string(),
            hit->meta.partitioned, std::move(hit->meta.verdict)));
      }
      if (handle) dlclose(handle);
      // Undlopenable artifact (e.g. cross-host copy): fall through and
      // rebuild; the store below overwrites the bad entry.
    }
  }

  // The emitted kernel indexes raw buffers unchecked; refuse nests whose
  // subscripts the box proof cannot certify (they interpret instead).
  std::string source;
  CompileMeta meta;
  meta.cache_key = std::move(cache_key);
  {
    obs::ScopedSpan emit_span(obs::EventKind::kCodegen, /*layer_enabled=*/true,
                              obs::Phase::kCodegen);
    try {
      exec::prove_subscript_ranges(original);
    } catch (const Error& e) {
      return ApiError{ErrorKind::kUnsupported,
                      std::string("jit: range proof failed: ") + e.what()};
    }

    // Steady-state partitioning: derive the partition, emit the split TU,
    // and let the kernel verifier decide whether it may load. Any refusal
    // — analysis overflow, a failed obligation, an injected fault — keeps
    // the clamped kernel, never blocks compilation.
    if (opts_.partition && plan.num_doall > 0) {
      try {
        codegen::TransformedNest tn = codegen::rewrite_nest(original, plan);
        std::optional<analysis::LoopPartition> part;
        {
          obs::ScopedSpan span(obs::EventKind::kPartitionAnalyze,
                               /*layer_enabled=*/true, obs::Phase::kCodegen);
          part = analysis::analyze_partition(tn.nest, plan.num_doall);
          if (span.tracing() && part) {
            span.set_arg(0, part->axis);
            span.set_arg(1, static_cast<i64>(part->constraints.size()));
          }
        }
        if (part) {
          std::string psource = codegen::emit_c_partitioned_range_kernel(
              original, plan, *part, kEntryName,
              opts_.inject_partition_fault);
          analysis::VerifierReport rep;
          {
            obs::ScopedSpan span(obs::EventKind::kPartitionVerify,
                                 /*layer_enabled=*/true, obs::Phase::kCodegen);
            rep = analysis::verify_partitioned_kernel(
                original, tn.nest, plan.num_doall, *part, psource);
            if (span.tracing()) {
              span.set_arg(0, rep.ok ? 1 : 0);
              span.set_arg(1, static_cast<i64>(rep.failures.size()));
            }
          }
          if (rep.ok) {
            source = std::move(psource);
            meta.partitioned = true;
            meta.partition_verdict = rep.summary();
            meta.opt_flags = "-O3";
            if (opts_.native_arch) meta.opt_flags += " -march=native";
          } else {
            meta.partition_verdict = rep.summary();
          }
        } else {
          meta.partition_verdict = "rejected: partition analysis refused";
        }
      } catch (const Error& e) {
        meta.partition_verdict =
            std::string("rejected: partition pipeline error: ") + e.what();
      }
      if (!meta.partitioned && obs::MetricsRegistry::enabled())
        obs::MetricsRegistry::instance()
            .counter("vdep_partition_fallbacks_total",
                     "partitioned kernels refused (clamped fallback)")
            .inc();
    }

    if (source.empty()) {
      try {
        source = codegen::emit_c_range_kernel(original, plan, kEntryName);
      } catch (const Error& e) {
        return ApiError{ErrorKind::kUnsupported,
                        std::string("jit: emission failed: ") + e.what()};
      }
    }
  }
  std::vector<std::string> order;
  for (const loopir::ArrayDecl& a : original.arrays()) order.push_back(a.name);
  return compile_source(source, kEntryName, std::move(order), std::move(meta));
}

Expected<std::shared_ptr<const NativeKernel>> ToolchainCompiler::compile_source(
    const std::string& c_source, const std::string& entry_name,
    std::vector<std::string> array_order, CompileMeta meta) const {
#ifndef VDEP_JIT_POSIX
  (void)c_source; (void)entry_name; (void)array_order; (void)meta;
  return ApiError{ErrorKind::kUnsupported,
                  "jit: native kernels need a POSIX host (dlopen)"};
#else
  if (!cc_)
    return ApiError{ErrorKind::kUnsupported,
                    "jit: no C toolchain found (set $VDEP_CC or put cc/gcc/"
                    "clang on PATH)"};

  Expected<std::string> dir = make_work_dir(opts_.work_dir);
  if (!dir) return dir.error();
  fs::path work(*dir);
  fs::path c_path = work / "kernel.c";
  fs::path so_path = work / "kernel.so";
  fs::path log_path = work / "cc.log";
  {
    std::ofstream out(c_path);
    out << c_source;
    if (!out) {
      return ApiError{ErrorKind::kUnsupported,
                      "jit: cannot write " + c_path.string()};
    }
  }

  // -fwrapv: suite kernels (e.g. uniform_wavefront) overflow i64 at large
  // sizes. The postfix CompiledKernel computes with plain (two's-
  // complement-wrapping in practice) C++ arithmetic, so the native kernel
  // must wrap identically rather than let the C optimizer exploit the UB.
  // (The tree-walking interpreter is stricter still — checked:: arithmetic
  // that *throws* on overflow — so kInterpreter errors where kCompiled and
  // kJit agree on wrapped values.)
  std::string cmd = shell_quote(*cc_) + " " + meta.opt_flags +
                    " -fwrapv -fPIC -shared -x c " +
                    shell_quote(c_path.string()) + " -o " +
                    shell_quote(so_path.string());
  if (!opts_.extra_flags.empty()) cmd += " " + opts_.extra_flags;
  cmd += " 2> " + shell_quote(log_path.string());

  int rc;
  {
    obs::ScopedSpan cc_span(obs::EventKind::kCcSubprocess,
                            /*layer_enabled=*/true, obs::Phase::kJitCompile);
    rc = std::system(cmd.c_str());
  }
  if (obs::MetricsRegistry::enabled()) {
    obs::MetricsRegistry::instance()
        .counter("vdep_jit_builds_total", "toolchain cc invocations")
        .inc();
    if (meta.partitioned)
      obs::MetricsRegistry::instance()
          .counter("vdep_partition_kernels_total",
                   "verified steady-state partitioned kernels built")
          .inc();
  }
  bool ok = rc != -1 && WIFEXITED(rc) && WEXITSTATUS(rc) == 0;
  if (!ok) {
    std::string log = read_file(log_path, 2000);
    std::error_code ec;
    if (!opts_.keep_artifacts) fs::remove_all(work, ec);
    ApiError err{ErrorKind::kUnsupported,
                 "jit: toolchain '" + *cc_ + "' failed: " + log};
    // A clean nonzero exit is deterministic for this (TU, flags, driver)
    // key — publish it so cold processes fail fast instead of re-running
    // a doomed cc. A launch failure or a signal (OOM kill, ^C) is not.
    if (!meta.cache_key.empty() && rc != -1 && WIFEXITED(rc)) {
      if (auto disk = cache::DiskCache::resolve(opts_.cache_dir,
                                                opts_.disk_cache))
        disk->store_kernel_failure(meta.cache_key,
                                   static_cast<int>(err.kind), err.message);
    }
    return err;
  }

  obs::ScopedSpan dlopen_span(obs::EventKind::kDlopen, /*layer_enabled=*/true,
                              obs::Phase::kJitCompile);
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) {
    const char* err = dlerror();
    std::error_code ec;
    if (!opts_.keep_artifacts) fs::remove_all(work, ec);
    return ApiError{ErrorKind::kUnsupported,
                    std::string("jit: dlopen failed: ") + (err ? err : "")};
  }
  auto fn = reinterpret_cast<NativeKernel::EntryFn>(
      dlsym(handle, entry_name.c_str()));
  if (!fn) {
    dlclose(handle);
    std::error_code ec;
    if (!opts_.keep_artifacts) fs::remove_all(work, ec);
    return ApiError{ErrorKind::kInternal,
                    "jit: entry symbol '" + entry_name + "' not found"};
  }

  // Publish into the disk cache before the workdir goes away — the next
  // process (or the next session in this one) skips cc entirely.
  if (!meta.cache_key.empty()) {
    if (auto disk =
            cache::DiskCache::resolve(opts_.cache_dir, opts_.disk_cache)) {
      cache::KernelMeta km;
      km.entry = entry_name;
      km.arrays = array_order;
      km.partitioned = meta.partitioned;
      km.verdict = meta.partition_verdict;
      km.source = c_source;
      disk->store_kernel(meta.cache_key, std::move(km), so_path.string());
    }
  }

  std::string kept_path;
  if (opts_.keep_artifacts) {
    kept_path = so_path.string();
  } else {
    // The mapping survives the unlink (POSIX); nothing is left on disk.
    std::error_code ec;
    fs::remove_all(work, ec);
  }
  return std::shared_ptr<const NativeKernel>(new NativeKernel(
      handle, fn, std::move(array_order), c_source, kept_path,
      meta.partitioned, std::move(meta.partition_verdict)));
#endif
}

}  // namespace vdep::jit
