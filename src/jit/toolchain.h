// JIT compilation through the system C toolchain.
//
// The pipeline per kernel: prove subscript ranges (exec/kernel.h), emit the
// range-kernel TU (codegen/emit_c.h), write it to a private mkdtemp
// directory, invoke `cc -O2 -fPIC -shared`, dlopen the product and resolve
// the entry point into a jit::NativeKernel. Everything is Expected-based:
// a missing toolchain, a failed range proof or a compiler error all come
// back as inspectable ApiError values so callers (api/compiled_loop.cpp,
// the streaming runtime's Jit backend) can fall back to the interpreter
// scan path instead of crashing.
//
// Toolchain discovery never shells out: $VDEP_CC is honoured first (path
// or driver name), then cc/gcc/clang are searched on $PATH with an
// executable-bit check. A scrubbed PATH therefore yields a clean
// "unavailable" result, which the no-toolchain tests pin down.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "jit/native_kernel.h"
#include "support/expected.h"
#include "trans/planner.h"

namespace vdep::jit {

struct JitOptions {
  /// Compiler driver; "" = discover ($VDEP_CC, then cc/gcc/clang on PATH).
  std::string compiler;
  /// Extra flags appended verbatim to the compile line (e.g. "-march=native").
  std::string extra_flags;
  /// Directory for the temp TU/.so; "" = the system temp directory.
  std::string work_dir;
  /// Keep the generated .c and .so on disk (debugging; default unlinks
  /// them as soon as the object is mapped).
  bool keep_artifacts = false;
  /// Attempt the steady-state partitioned kernel (analysis::LoopPartition
  /// + KernelVerifier); verified kernels compile at -O3, everything else
  /// keeps the clamped -O2 kernel. Off forces the clamped kernel.
  bool partition = true;
  /// Add -march=native to verified partitioned kernels (opt-in: the .so is
  /// then tied to the build host).
  bool native_arch = false;
  /// Test-only: plant a clamp artifact in the emitted steady region so the
  /// verifier must reject it and the clamped fallback must load.
  bool inject_partition_fault = false;
  /// On-disk artifact cache root; "" = $VDEP_CACHE_DIR (unset = no disk
  /// cache). A hit skips emission, the verifier and the cc subprocess
  /// entirely — the cached .so is dlopen-ed in place.
  std::string cache_dir;
  /// Master switch for the disk cache (the in-memory memos stay on).
  bool disk_cache = true;

  /// Canonical memoization key of this option set (api plan-cache memo).
  /// cache_dir/disk_cache are deliberately excluded: where an artifact is
  /// cached does not change what it is.
  std::string memo_key() const;
};

/// Absolute path of a usable C compiler driver, or nullopt. A non-empty
/// `preferred` (a path or a driver name) is authoritative: it resolves or
/// discovery fails — an explicitly requested compiler is never silently
/// substituted. Only when `preferred` is empty does the default chain run:
/// $VDEP_CC, then cc, gcc, clang looked up on $PATH.
std::optional<std::string> discover_toolchain(const std::string& preferred = "");

/// Identity string of the toolchain at `cc_path`: the resolved path plus a
/// digest of its `--version` output. Part of every kernel disk-cache key,
/// so a compiler upgrade (new version text) or switch (new path) misses
/// instead of serving a stale .so. Memoized per (path, mtime, size): a
/// rewritten driver re-probes, an unchanged one costs one stat(2).
std::string toolchain_identity(const std::string& cc_path);

/// Removes leftover vdep-jit-XXXXXX work directories under `base` whose
/// owning process is gone — a process killed between mkdtemp and cleanup
/// leaks its directory, and /tmp fills up one crash at a time. Directories
/// are stamped with the creator's PID (owner.pid); a dead owner means the
/// directory is stale. Unstamped directories (older vdep builds, torn
/// creation) are removed only after 24h of mtime quiet. Runs once per
/// (process, base); returns the number of directories removed.
std::size_t sweep_stale_work_dirs(const std::string& base);

/// How ToolchainCompiler::compile_source builds and labels one TU.
struct CompileMeta {
  /// Optimization/arch flags ("-O2" clamped, "-O3 [-march=native]" for
  /// verified partitioned kernels); -fwrapv -fPIC -shared are always on.
  std::string opt_flags = "-O2";
  /// Stamped onto the NativeKernel (partitioned() / partition_verdict()).
  bool partitioned = false;
  std::string partition_verdict;
  /// Disk-cache key this build publishes under when it finishes (set by
  /// compile() after a cache miss; empty = don't publish).
  std::string cache_key;
};

class ToolchainCompiler {
 public:
  explicit ToolchainCompiler(JitOptions opts = {});

  /// Whether a compiler driver was found at construction.
  bool available() const { return cc_.has_value(); }
  const std::optional<std::string>& compiler_path() const { return cc_; }

  /// Full pipeline: range proof, emit, compile, load. The entry symbol is
  /// private to the library (RTLD_LOCAL), so kernels never collide.
  Expected<std::shared_ptr<const NativeKernel>> compile(
      const loopir::LoopNest& original,
      const trans::TransformPlan& plan) const;

  /// Lower level: compiles an arbitrary C TU and resolves `entry_name`.
  /// `array_order` is the declaration-order buffer binding of the entry's
  /// int64_t** argument.
  Expected<std::shared_ptr<const NativeKernel>> compile_source(
      const std::string& c_source, const std::string& entry_name,
      std::vector<std::string> array_order, CompileMeta meta = {}) const;

 private:
  JitOptions opts_;
  std::optional<std::string> cc_;
};

}  // namespace vdep::jit
