// A dlopen-ed native range kernel.
//
// NativeKernel wraps one shared object produced by jit::ToolchainCompiler
// from the emit_c_range_kernel TU of a plan: the resolved entry point runs
// a whole runtime::TaskDescriptor iteration box (N-dimensional DOALL-prefix
// ranges x class range) with zero per-iteration dispatch, which is what the
// streaming workers call through exec::RangeKernel. The object stays mapped
// for the kernel's lifetime; the backing file is unlinked right after
// dlopen (POSIX keeps the mapping alive) unless JitOptions::keep_artifacts.
//
// Safety: the kernel indexes raw buffers without bounds checks, so a
// kernel is only ever built after exec::prove_subscript_ranges certified
// every subscript's extremes over the iteration box — the same one-time
// proof exec::CompiledKernel performs. Nests that fail the proof never
// reach the toolchain and fall back to the scan path.
#pragma once

#include <string>
#include <vector>

#include "exec/kernel.h"

namespace vdep::jit {

using intlin::i64;

class NativeKernel final : public exec::RangeKernel {
 public:
  NativeKernel(const NativeKernel&) = delete;
  NativeKernel& operator=(const NativeKernel&) = delete;
  ~NativeKernel() override;

  /// Runs the descriptor box through the native entry point. Binds the
  /// store's buffers by declaration-order name on every call (cheap at
  /// descriptor granularity); safe concurrently for disjoint boxes.
  i64 execute_range(exec::ArrayStore& store,
                    const exec::IterBox& box) const override;

  /// The emitted C of the loaded kernel (diagnostics / tests).
  const std::string& source() const { return source_; }
  /// Path of the .so; empty once unlinked (the default lifecycle).
  const std::string& library_path() const { return so_path_; }
  /// True when this is a verified steady-state partitioned kernel (-O3
  /// fast path); false for the clamped kernel (including verifier
  /// fallbacks).
  bool partitioned() const { return partitioned_; }
  /// The analysis::KernelVerifier summary that admitted this kernel — or,
  /// for a clamped fallback, the rejection that forced it. Empty when
  /// partitioning was not attempted.
  const std::string& partition_verdict() const { return verdict_; }

 private:
  friend class ToolchainCompiler;
  using EntryFn = std::int64_t (*)(std::int64_t**, const std::int64_t*,
                                   const std::int64_t*, std::int64_t,
                                   std::int64_t, std::int64_t);
  NativeKernel(void* handle, EntryFn fn, std::vector<std::string> arrays,
               std::string source, std::string so_path, bool partitioned,
               std::string verdict)
      : handle_(handle),
        fn_(fn),
        arrays_(std::move(arrays)),
        source_(std::move(source)),
        so_path_(std::move(so_path)),
        partitioned_(partitioned),
        verdict_(std::move(verdict)) {}

  void* handle_ = nullptr;
  EntryFn fn_ = nullptr;
  std::vector<std::string> arrays_;  ///< buffer bind order (declaration order)
  std::string source_;
  std::string so_path_;
  bool partitioned_ = false;
  std::string verdict_;
};

}  // namespace vdep::jit
