// Thread-safe sharded LRU cache of PlanArtifacts, keyed by structural
// fingerprint.
//
// One Compiler session owns one PlanCache; every compile() of a structure
// already seen anywhere in the session — at any bounds — is a lookup, not
// an analysis. Sharding: the fingerprint hash picks a shard, each shard is
// an independent mutex + LRU list + key map, so concurrent compiles of
// distinct structures rarely contend on one lock. Lookups compare full
// canonical keys (the hash only routes), so hash collisions cost sharing,
// never correctness.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "api/compiled_loop.h"

namespace vdep {

/// Aggregate counters of a PlanCache (or Compiler::cache_stats()).
struct CacheStats {
  i64 hits = 0;
  i64 misses = 0;
  i64 evictions = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    i64 total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class PlanCache {
 public:
  /// `capacity` artifacts total, split evenly over `shards` independent
  /// LRU lists (each shard holds at least one entry). Use shards = 1 when
  /// deterministic global LRU order matters more than lock spreading.
  explicit PlanCache(std::size_t capacity, std::size_t shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The artifact for `fp`, bumped to most-recently-used; nullptr on miss.
  std::shared_ptr<const PlanArtifact> find(const Fingerprint& fp);

  /// Inserts `artifact`, evicting the shard's LRU tail at capacity.
  /// Returns the resident artifact: when another thread raced the same
  /// structure in first, the earlier artifact wins and is returned so all
  /// handles share one instance.
  std::shared_ptr<const PlanArtifact> insert(
      std::shared_ptr<const PlanArtifact> artifact);

  CacheStats stats() const;
  void clear();

  std::size_t capacity() const { return per_shard_cap_ * shards_.size(); }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  using LruList = std::list<std::shared_ptr<const PlanArtifact>>;

  struct Shard {
    mutable std::mutex mu;
    LruList lru;  ///< front = most recently used
    /// Indexed by the fingerprint's precomputed hash (no re-hashing of the
    /// canonical key on lookup); the bucket vector disambiguates 64-bit
    /// collisions by full-key comparison and is almost always size 1.
    std::unordered_map<std::uint64_t, std::vector<LruList::iterator>> by_hash;
    i64 hits = 0;
    i64 misses = 0;
    i64 evictions = 0;

    LruList::iterator* lookup(const Fingerprint& fp);
    void erase_index(const Fingerprint& fp, LruList::iterator it);
  };

  Shard& shard_for(const Fingerprint& fp) {
    return shards_[fp.hash % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_cap_ = 1;
};

}  // namespace vdep
