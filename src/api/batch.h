// Batch serving entry points: many compiled requests, one worker set.
//
// The serving scenario the plan cache and the JIT were built for: one
// structure analyzed once, executed at thousands of bounds by many
// concurrent requests. compile_all (api/compiler.h) amortizes the analysis
// across a batch; execute_batch amortizes the *execution* — every request's
// descriptors are seeded into one shared set of work-stealing deques
// (runtime/batch_executor.h) so small requests interleave across workers
// instead of running serially, each with a full fork/join of its own.
//
//   vdep::Compiler compiler;
//   auto loops = compiler.compile_all(nests);          // 1 analysis/structure
//   std::vector<vdep::BatchRequest> reqs;
//   for (auto& l : *loops) reqs.push_back({l, &store_for(l)});
//   auto reports = vdep::execute_batch(reqs, policy, compiler.pool());
//
// Per-request ExecReports come back in request order; report.wall_ns is the
// request's completion time (batch start -> its last descriptor retired).
#pragma once

#include <span>
#include <vector>

#include "api/compiled_loop.h"

namespace vdep {

/// One request of a batch run: a staged handle (structure + bounds) plus
/// the request's data. `store` must have been built for `loop.nest()`;
/// when null, execute_batch allocates a pattern-filled store internally
/// (the request's report still carries its checksum).
struct BatchRequest {
  CompiledLoop loop;
  exec::ArrayStore* store = nullptr;
};

/// Executes every request over one shared worker set (policy.threads()
/// contexts, 0 = hardware). Streaming only — policy.mode() must be
/// kStreaming (kPrecondition otherwise); backends follow the policy, and
/// with ExecBackend::kJit each request resolves its native kernel through
/// the shared PlanArtifact memo, so same-structure same-bounds requests
/// reuse one loaded .so across the whole batch. On a request failure the
/// batch aborts and the error carries the request's index
/// (ApiError::index).
Expected<std::vector<ExecReport>> execute_batch(
    std::span<const BatchRequest> requests, const ExecPolicy& policy = {});

/// Same, with the workers drawn from a long-lived pool (e.g. the session
/// pool, Compiler::pool()) instead of spawned per batch.
Expected<std::vector<ExecReport>> execute_batch(
    std::span<const BatchRequest> requests, const ExecPolicy& policy,
    vdep::ThreadPool& pool);

}  // namespace vdep
