// Umbrella header of the staged compilation API.
//
//   #include "api/vdep.h"
//
//   vdep::Compiler compiler;
//   vdep::Expected<vdep::CompiledLoop> loop = compiler.compile(nest);
//
// Pulls in Compiler / CompileOptions (api/compiler.h), CompiledLoop with
// its stage artifacts and ExecPolicy / CodegenOptions (api/compiled_loop.h),
// the batch serving entry points (api/batch.h), the structural Fingerprint
// (api/fingerprint.h), the PlanCache (api/plan_cache.h) and Expected /
// ApiError (support/expected.h).
#pragma once

#include "api/batch.h"
#include "api/compiler.h"
