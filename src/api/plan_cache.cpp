#include "api/plan_cache.h"

#include <algorithm>

namespace vdep {

PlanCache::PlanCache(std::size_t capacity, std::size_t shards)
    : shards_(std::max<std::size_t>(1, shards)) {
  per_shard_cap_ = std::max<std::size_t>(
      1, (std::max<std::size_t>(1, capacity) + shards_.size() - 1) /
             shards_.size());
}

PlanCache::LruList::iterator* PlanCache::Shard::lookup(const Fingerprint& fp) {
  auto bucket = by_hash.find(fp.hash);
  if (bucket == by_hash.end()) return nullptr;
  for (LruList::iterator& it : bucket->second)
    if ((*it)->fingerprint().key == fp.key) return &it;
  return nullptr;
}

void PlanCache::Shard::erase_index(const Fingerprint& fp,
                                   LruList::iterator it) {
  auto bucket = by_hash.find(fp.hash);
  if (bucket == by_hash.end()) return;
  std::vector<LruList::iterator>& v = bucket->second;
  v.erase(std::remove(v.begin(), v.end(), it), v.end());
  if (v.empty()) by_hash.erase(bucket);
}

std::shared_ptr<const PlanArtifact> PlanCache::find(const Fingerprint& fp) {
  Shard& s = shard_for(fp);
  std::lock_guard<std::mutex> lock(s.mu);
  LruList::iterator* it = s.lookup(fp);
  if (!it) {
    ++s.misses;
    return nullptr;
  }
  // Bump to MRU: splice the node to the front; iterators stay valid, so
  // the index entry does not need updating.
  s.lru.splice(s.lru.begin(), s.lru, *it);
  ++s.hits;
  return s.lru.front();
}

std::shared_ptr<const PlanArtifact> PlanCache::insert(
    std::shared_ptr<const PlanArtifact> artifact) {
  const Fingerprint& fp = artifact->fingerprint();
  Shard& s = shard_for(fp);
  std::lock_guard<std::mutex> lock(s.mu);

  if (LruList::iterator* it = s.lookup(fp)) {
    // A racing compile of the same structure landed first; keep it so every
    // handle shares one artifact (and one codegen memo).
    s.lru.splice(s.lru.begin(), s.lru, *it);
    return s.lru.front();
  }

  while (s.lru.size() >= per_shard_cap_) {
    auto victim = std::prev(s.lru.end());
    s.erase_index((*victim)->fingerprint(), victim);
    s.lru.pop_back();
    ++s.evictions;
  }

  s.lru.push_front(std::move(artifact));
  s.by_hash[fp.hash].push_back(s.lru.begin());
  return s.lru.front();
}

CacheStats PlanCache::stats() const {
  CacheStats out;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.entries += s.lru.size();
  }
  return out;
}

void PlanCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.by_hash.clear();
    s.lru.clear();
  }
}

}  // namespace vdep
