// vdep::Compiler — the staged, cacheable entry point of the library.
//
//   vdep::Compiler compiler;                       // one session, any thread
//   auto loop = compiler.compile(nest);            // Expected<CompiledLoop>
//   if (!loop) { /* loop.error().kind / .message */ }
//   loop->analysis();                              // PDM + rank  (cached)
//   loop->plan();                                  // transform + legality
//   loop->codegen(vdep::CodegenOptions{});         // lazy, memoized C
//   loop->check(vdep::ExecPolicy{}.threads(8));    // run + verify, any bounds
//
// compile() fingerprints the nest's structure (bounds excluded) and serves
// the analysis + plan from a thread-safe sharded LRU cache: the paper's
// pipeline is a function of subscript matrices only, so one cold compile
// amortizes over every request size of the same kernel. The second
// overload compiles DSL text, surfacing dsl::ParseError as an inspectable
// Expected error with line and column instead of an exception.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "api/compiled_loop.h"
#include "api/plan_cache.h"

namespace vdep {

/// Builder-style session options (replaces scattered constructor flags).
class CompileOptions {
 public:
  CompileOptions& cache_capacity(std::size_t n) { cache_capacity_ = n; return *this; }
  CompileOptions& cache_shards(std::size_t n) { cache_shards_ = n; return *this; }
  CompileOptions& validate(bool v) { validate_ = v; return *this; }
  CompileOptions& pool_threads(std::size_t n) { pool_threads_ = n; return *this; }
  /// Allow compile-side spans (parse, fingerprint, cache probe, analysis,
  /// planning) into the global obs::TraceRecorder when it is enabled.
  CompileOptions& trace(bool v) { trace_ = v; return *this; }
  /// Same gate for compile-side counters (cache hits/misses, compiles).
  CompileOptions& metrics(bool v) { metrics_ = v; return *this; }
  /// On-disk artifact cache root for plans (and, through ExecPolicy's
  /// JitOptions, kernels); "" = $VDEP_CACHE_DIR. Plans loaded from disk
  /// re-prove their Theorem-1 legality certificate before use.
  CompileOptions& disk_cache(std::string dir) { disk_cache_dir_ = std::move(dir); return *this; }
  /// Master switch for the disk cache (default on; only engages when a
  /// directory is configured here or via $VDEP_CACHE_DIR).
  CompileOptions& disk_cache_enabled(bool v) { disk_cache_enabled_ = v; return *this; }

  std::size_t cache_capacity() const { return cache_capacity_; }
  std::size_t cache_shards() const { return cache_shards_; }
  bool validate() const { return validate_; }
  std::size_t pool_threads() const { return pool_threads_; }  ///< 0 = hardware
  bool trace() const { return trace_; }
  bool metrics() const { return metrics_; }
  const std::string& disk_cache() const { return disk_cache_dir_; }
  bool disk_cache_enabled() const { return disk_cache_enabled_; }

 private:
  std::size_t cache_capacity_ = 256;
  std::size_t cache_shards_ = 8;
  bool validate_ = true;  ///< run LoopNest::validate() before analysis
  std::size_t pool_threads_ = 0;  ///< session pool size; 0 = hardware
  bool trace_ = true;
  bool metrics_ = true;
  std::string disk_cache_dir_;
  bool disk_cache_enabled_ = true;
};

class Compiler {
 public:
  explicit Compiler(CompileOptions opts = {});

  /// Analyzes the nest (or serves the plan from cache) and returns a
  /// shareable staged handle. Thread-safe; const because a session is
  /// meant to be shared across request threads.
  Expected<CompiledLoop> compile(const loopir::LoopNest& nest) const;

  /// Parses mini-DSL source, then compiles. Parse failures come back as
  /// ErrorKind::kParse with 1-based line/column set.
  Expected<CompiledLoop> compile(const std::string& dsl_source) const;

  /// Batch compile: fingerprints every nest first and runs the analysis
  /// pipeline once per *unique structure* — N requests sharing a structure
  /// cost one Algorithm 1 and one cache probe, not N. On failure the error
  /// carries the 0-based index of the first failing nest (ApiError::index);
  /// every other nest is still compiled and cached, so retrying without
  /// the bad entry is all hits.
  Expected<std::vector<CompiledLoop>> compile_all(
      std::span<const loopir::LoopNest> nests) const;

  /// The session's lazily created ThreadPool (CompileOptions::pool_threads
  /// workers), shared by every execute_batch/execute call that passes it:
  /// one long-lived worker set serving all requests of the session instead
  /// of a fork/join per call. Thread-safe.
  ThreadPool& pool() const;

  CacheStats cache_stats() const { return cache_->stats(); }
  void clear_cache() { cache_->clear(); }
  const CompileOptions& options() const { return opts_; }

 private:
  std::shared_ptr<const PlanArtifact> analyze_and_insert(
      const loopir::LoopNest& nest, Fingerprint fp) const;

  CompileOptions opts_;
  std::unique_ptr<PlanCache> cache_;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace vdep
