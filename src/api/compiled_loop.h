// CompiledLoop: an immutable, shareable handle over the staged compilation
// artifacts of one loop structure.
//
// The stages mirror the paper's pipeline and are queryable separately:
//
//   analysis()  PDM + rank (Section 2)            — structure-only, cached
//   plan()      TransformPlan + legality cert     — structure-only, cached
//   codegen()   emitted C, memoized per option    — lazy, bounds enter here
//   execute()   streaming/materialized run        — bounds + data enter here
//   check()     execute + bit-exact verification against sequential
//
// A handle = {shared PlanArtifact, concrete bounded nest}. The artifact is
// keyed by the structural fingerprint (api/fingerprint.h) and shared by
// every handle whose nest has the same structure — compile once at n=10,
// rebind with at() (or re-compile: it is a cache hit) and execute at
// n=1000 without re-running Hermite/Smith/Fourier–Motzkin.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "api/fingerprint.h"
#include "codegen/emit_c.h"
#include "dep/pdm.h"
#include "exec/array_store.h"
#include "exec/runner.h"
#include "jit/toolchain.h"
#include "support/expected.h"
#include "trans/planner.h"

namespace vdep {

using intlin::i64;

// ---------------------------------------------------------------- options

/// Which program codegen() emits.
enum class CodegenTarget {
  kTransformed,  ///< unimodular rewrite + Theorem-2 class loops
  kOriginal,     ///< the sequential source nest
};

/// Builder-style code generation options (replaces the bool soup of
/// codegen::EmitOptions at the API boundary).
class CodegenOptions {
 public:
  CodegenOptions& target(CodegenTarget t) { target_ = t; return *this; }
  CodegenOptions& openmp(bool v) { openmp_ = v; return *this; }
  CodegenOptions& with_main(bool v) { with_main_ = v; return *this; }
  CodegenOptions& kernel_name(std::string v) { kernel_name_ = std::move(v); return *this; }

  CodegenTarget target() const { return target_; }
  bool openmp() const { return openmp_; }
  bool with_main() const { return with_main_; }
  const std::string& kernel_name() const { return kernel_name_; }

  /// Canonical memoization key of this option set.
  std::string memo_key() const;

 private:
  CodegenTarget target_ = CodegenTarget::kTransformed;
  bool openmp_ = true;
  bool with_main_ = true;
  std::string kernel_name_ = "kernel";
};

/// How execute()/check() run the plan.
enum class ExecMode {
  kStreaming,     ///< runtime::StreamExecutor, O(active descriptors) state
  kMaterialized,  ///< exec::build_schedule + ThreadPool replay
};

/// What runs the loop bodies (streaming mode).
enum class ExecBackend {
  kCompiled,     ///< postfix exec::CompiledKernel, interpreter fallback
  kInterpreter,  ///< exact tree-walking interpreter, always
  kJit,          ///< dlopen-ed native kernel; falls back to kCompiled when
                 ///< no toolchain is available or the plan is not JITable
  kInspector,    ///< runtime inspector–executor: dependence components are
                 ///< discovered at the given bounds/data (src/inspect/) and
                 ///< run as dynamic partition classes. The only backend for
                 ///< indirect subscripts (A[B[i]]); non-affine nests route
                 ///< here automatically whatever the policy says
};

/// Builder-style execution policy (replaces core::Options::exec_mode and
/// the ad-hoc StreamOptions plumbing at the API boundary).
class ExecPolicy {
 public:
  ExecPolicy& mode(ExecMode m) { mode_ = m; return *this; }
  ExecPolicy& threads(std::size_t t) { threads_ = t; return *this; }
  ExecPolicy& grain(i64 g) { grain_ = g; return *this; }
  /// How many transformed DOALL-prefix dimensions descriptors may box and
  /// split (runtime/task.h). 0 = all (default); 1 reproduces the legacy
  /// outer-only splitter. Streaming mode only.
  ExecPolicy& split_dims(int n) { split_dims_ = n; return *this; }
  ExecPolicy& backend(ExecBackend b) { backend_ = b; return *this; }
  /// Whether ExecReport.checksum is computed (a full store scan per
  /// request — diagnostics; serving paths turn it off).
  ExecPolicy& digest(bool v) { digest_ = v; return *this; }
  /// Deprecated spelling of backend(kInterpreter).
  ExecPolicy& interpreter_only(bool v = true) {
    backend_ = v ? ExecBackend::kInterpreter : ExecBackend::kCompiled;
    return *this;
  }
  /// Toolchain/flag options used when backend() == kJit.
  ExecPolicy& jit_options(jit::JitOptions o) { jit_ = std::move(o); return *this; }
  /// Allow this execution to emit events into the global obs::TraceRecorder
  /// when it is enabled (off: the run never touches the recorder).
  ExecPolicy& trace(bool v) { trace_ = v; return *this; }
  /// Same gate for the global obs::MetricsRegistry.
  ExecPolicy& metrics(bool v) { metrics_ = v; return *this; }
  /// Pin each worker to its topology-assigned cpu for the run (previous
  /// affinity restored afterwards). VDEP_PIN=0 overrides from outside.
  /// Results are bit-identical either way; only placement changes.
  ExecPolicy& pin_workers(bool v) { pin_workers_ = v; return *this; }
  /// Prefer splitting descriptors along the largest-address-stride axis
  /// (runtime/task.h SplitPrefs); off: always longest-axis.
  ExecPolicy& locality_splits(bool v) { locality_splits_ = v; return *this; }
  /// Page placement of stores this policy's run allocates itself (check()'s
  /// parallel store, owned batch stores). Caller-provided stores keep
  /// whatever placement they were built with.
  ExecPolicy& placement(exec::ArrayStore::Placement p) {
    placement_ = p;
    return *this;
  }

  ExecMode mode() const { return mode_; }
  std::size_t threads() const { return threads_; }  ///< 0 = hardware
  i64 grain() const { return grain_; }              ///< 0 = automatic
  int split_dims() const { return split_dims_; }    ///< 0 = all
  ExecBackend backend() const { return backend_; }
  bool interpreter_only() const { return backend_ == ExecBackend::kInterpreter; }
  const jit::JitOptions& jit_options() const { return jit_; }
  bool digest() const { return digest_; }
  bool trace() const { return trace_; }
  bool metrics() const { return metrics_; }
  bool pin_workers() const { return pin_workers_; }
  bool locality_splits() const { return locality_splits_; }
  exec::ArrayStore::Placement placement() const { return placement_; }

 private:
  ExecMode mode_ = ExecMode::kStreaming;
  std::size_t threads_ = 0;
  i64 grain_ = 0;
  int split_dims_ = 0;
  ExecBackend backend_ = ExecBackend::kCompiled;
  jit::JitOptions jit_;
  bool digest_ = true;
  bool trace_ = true;
  bool metrics_ = true;
  bool pin_workers_ = true;
  bool locality_splits_ = true;
  exec::ArrayStore::Placement placement_ = exec::ArrayStore::Placement::kSerial;
};

// -------------------------------------------------------------- artifacts

/// Stage 1 — dependence analysis (paper Section 2). Structure-only.
struct LoopAnalysis {
  dep::Pdm pdm;
  int rank = 0;
  bool all_uniform = false;  ///< Corollary 5: classical uniform distances
  /// False when the nest has indirect subscripts the PDM cannot model: the
  /// pdm/plan fields degrade to a serial identity plan and execute() goes
  /// through the runtime inspector regardless of ExecPolicy::backend.
  bool affine = true;
};

/// Stage 2 — transformation plan plus its legality certificate
/// (Theorem 1 re-checked on the final T, not just trusted from
/// construction). Structure-only.
struct LoopPlan {
  trans::TransformPlan transform;
  bool legal = false;
  int doall_loops = 0;
  i64 partition_classes = 1;
};

/// Outcome of execute()/check().
struct ExecReport {
  i64 iterations = 0;
  i64 tasks = 0;   ///< work items (materialized) or leaf descriptors (streaming)
  i64 steals = 0;  ///< streaming only
  i64 inner_splits = 0;  ///< descriptor splits along inner DOALL axes (streaming)
  i64 failed_steals = 0; ///< empty full steal sweeps (streaming)
  i64 idle_ns = 0;       ///< summed worker idle time (streaming)
  i64 wall_ns = 0;
  /// Phase breakdown of wall_ns (obs::PhaseScope): executor construction
  /// (rewrite + hull + kernel build), C emission, cc + dlopen, and the
  /// workers' run. Phases absent from a call are 0; the sum can fall short
  /// of wall_ns by unattributed glue (store digest, dispatch).
  i64 analyze_ns = 0;
  i64 codegen_ns = 0;
  i64 jit_compile_ns = 0;
  i64 exec_ns = 0;
  /// Batch runs only: batch start -> this request's first descriptor
  /// starts executing (time spent queued behind the rest of the batch).
  i64 queue_ns = 0;
  /// Inspector-backend runs only (ExecBackend::kInspector or the automatic
  /// non-affine fallback): inspection wall time and the shape of the
  /// discovered dynamic partition.
  i64 inspect_ns = 0;
  i64 inspector_classes = 0;        ///< partition classes (all components)
  i64 inspector_chains = 0;         ///< components with >= 2 iterations
  i64 inspector_max_component = 0;  ///< largest component size
  i64 inspector_dependent = 0;      ///< iterations in >= 2 components
  i64 checksum = 0;      ///< final store digest
  bool verified = false; ///< true when produced by check()
  bool inspector = false; ///< true when the inspector–executor ran the loop
  bool jit = false;      ///< true when a native kernel ran the bodies
  /// True when the native kernel was the verified steady-state partitioned
  /// variant (analysis::KernelVerifier admitted it); false for the clamped
  /// kernel, including verifier-forced fallbacks.
  bool jit_partitioned = false;
};

/// The cached unit: fingerprint + the two structure-only stages, plus a
/// per-(nest,options) memo of lazily emitted C. Immutable after
/// construction except the internal codegen memo (mutex-guarded), so one
/// instance is safely shared across threads and cache handles.
class PlanArtifact {
 public:
  PlanArtifact(Fingerprint fp, LoopAnalysis analysis, LoopPlan plan)
      : fp_(std::move(fp)),
        analysis_(std::move(analysis)),
        plan_(std::move(plan)) {}

  const Fingerprint& fingerprint() const { return fp_; }
  const LoopAnalysis& analysis() const { return analysis_; }
  const LoopPlan& plan() const { return plan_; }

  /// Emitted C for `nest` under `opts`; computed on first request and
  /// memoized. `nest` must carry this artifact's structure (bounds are the
  /// point of the parameter: they only exist at the handle, not here).
  const std::string& codegen(const loopir::LoopNest& nest,
                             const CodegenOptions& opts) const;

  /// Native kernel for `nest` under `opts`: emitted, toolchain-compiled
  /// and dlopen-ed on first request, then memoized per (bounds, options)
  /// beside the codegen memo — a plan-cache hit at the same bounds reuses
  /// the already-loaded .so, and new bounds only re-run emission + cc,
  /// never the analysis. Errors (kUnsupported) when no toolchain exists
  /// or the nest fails the subscript range proof. Deterministic failures
  /// (proof, cc error) are memoized per key like successes; the
  /// no-toolchain answer is not, so an environment that gains a compiler
  /// starts JITting without a new session.
  Expected<std::shared_ptr<const jit::NativeKernel>> jit_kernel(
      const loopir::LoopNest& nest, const jit::JitOptions& opts) const;

 private:
  Fingerprint fp_;
  LoopAnalysis analysis_;
  LoopPlan plan_;

  mutable std::mutex memo_mu_;
  mutable std::map<std::string, std::string> codegen_memo_;
  mutable std::map<std::string, std::shared_ptr<const jit::NativeKernel>>
      jit_memo_;
  mutable std::map<std::string, ApiError> jit_fail_memo_;
};

// ----------------------------------------------------------------- handle

class CompiledLoop {
 public:
  /// Binds a shared artifact to a concrete bounded nest. Normally obtained
  /// from Compiler::compile(), not constructed directly.
  CompiledLoop(std::shared_ptr<const PlanArtifact> artifact,
               loopir::LoopNest nest)
      : art_(std::move(artifact)),
        nest_(std::make_shared<const loopir::LoopNest>(std::move(nest))) {}

  const loopir::LoopNest& nest() const { return *nest_; }
  const Fingerprint& fingerprint() const { return art_->fingerprint(); }

  /// Stage accessors (cached, shared across every handle of the structure).
  const LoopAnalysis& analysis() const { return art_->analysis(); }
  const LoopPlan& plan() const { return art_->plan(); }

  /// Lazily emitted C for this handle's bounds, memoized per option set.
  const std::string& codegen(const CodegenOptions& opts = {}) const {
    return art_->codegen(*nest_, opts);
  }

  /// Stage 5 — the JIT: a native range kernel for this handle's bounds,
  /// lazy and memoized in the shared artifact (same .so for every handle
  /// at these bounds; recompiling the structure is a plan-cache hit, so
  /// the toolchain cost amortizes exactly like codegen). Errors
  /// (kUnsupported) when no C toolchain is on PATH / $VDEP_CC, the host
  /// cannot dlopen, or the nest fails the subscript range proof —
  /// execute() with ExecBackend::kJit degrades to the scan path instead.
  Expected<std::shared_ptr<const jit::NativeKernel>> jit(
      const jit::JitOptions& opts = {}) const {
    return art_->jit_kernel(*nest_, opts);
  }

  /// Parallelism of this handle's bounded space: independent work items,
  /// longest item, total iterations (counting scan, O(1) memory).
  exec::RunStats measure() const;

  /// Rebinds the cached plan to different bounds without re-analysis.
  /// Errors (kPrecondition) when `bounds` has a different structure.
  Expected<CompiledLoop> at(const loopir::LoopNest& bounds) const;

  /// Runs the plan over `store` (which must have been built for nest()).
  Expected<ExecReport> execute(const ExecPolicy& policy,
                               exec::ArrayStore& store) const;
  /// Same, reusing a long-lived pool for the workers.
  Expected<ExecReport> execute(const ExecPolicy& policy,
                               exec::ArrayStore& store,
                               vdep::ThreadPool& pool) const;

  /// Batch execution, same structure at many bounds: rebinds the shared
  /// artifact at every entry of `bounds` (CompiledLoop::at semantics —
  /// errors kPrecondition with the entry's index when a nest has a
  /// different structure), allocates a pattern-filled store per request
  /// and runs all of them over ONE shared worker set: every request's
  /// descriptors interleave in the same work-stealing deques
  /// (runtime/batch_executor.h), so the batch — not any single request —
  /// feeds the workers, and the fork/join cost is paid once. Streaming
  /// only. Reports are per request (iterations, steals, completion time,
  /// checksum of the request's final store).
  Expected<std::vector<ExecReport>> execute_batch(
      std::span<const loopir::LoopNest> bounds,
      const ExecPolicy& policy = {}) const;
  Expected<std::vector<ExecReport>> execute_batch(
      std::span<const loopir::LoopNest> bounds, const ExecPolicy& policy,
      vdep::ThreadPool& pool) const;

  /// Batch execution, one bounds at many data sets (the serving hot case):
  /// every store must have been built for nest(). Caller keeps ownership.
  Expected<std::vector<ExecReport>> execute_batch(
      std::span<exec::ArrayStore* const> stores,
      const ExecPolicy& policy = {}) const;
  Expected<std::vector<ExecReport>> execute_batch(
      std::span<exec::ArrayStore* const> stores, const ExecPolicy& policy,
      vdep::ThreadPool& pool) const;

  /// Executes the plan and the sequential reference from the same
  /// deterministic initial store; errors (kInternal) on any bitwise
  /// divergence. The returned report has verified = true.
  Expected<ExecReport> check(const ExecPolicy& policy = {}) const;
  Expected<ExecReport> check(const ExecPolicy& policy,
                             vdep::ThreadPool& pool) const;

  /// Multi-section human-readable report of all stages.
  std::string summary() const;

 private:
  Expected<ExecReport> execute_impl(const ExecPolicy& policy,
                                    exec::ArrayStore& store,
                                    vdep::ThreadPool* pool) const;
  Expected<ExecReport> check_impl(const ExecPolicy& policy,
                                  vdep::ThreadPool* pool) const;

  std::shared_ptr<const PlanArtifact> art_;
  std::shared_ptr<const loopir::LoopNest> nest_;
};

}  // namespace vdep
