#include "api/fingerprint.h"

#include <charconv>

#include "support/keyenc.h"

namespace vdep {

namespace {

// FNV-1a, 64-bit.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = kFnvOffset;
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

void append_int(std::string* out, intlin::i64 v) {
  char buf[24];
  char* end = std::to_chars(buf, buf + sizeof(buf), v).ptr;
  out->append(buf, end);
  out->push_back(',');
}

}  // namespace

Fingerprint structural_fingerprint(const loopir::LoopNest& nest) {
  // The dependence analysis consumes exactly the access sequence of
  // for_each_access(): every write and read with its statement index and
  // affine subscripts. Serialize that view — per access: statement, W/R,
  // canonical array ordinal, and each subscript's coefficients and
  // constant. Statement order matters (it orders source/sink of
  // same-iteration dependences); read order within a statement is the
  // deterministic pre-order. This is the compile() fast path: no
  // allocation beyond the key itself.
  std::string key;
  key.reserve(256);
  key += 'd';
  append_int(&key, nest.depth());

  // First-appearance array ordinals; linear scan beats a map for the
  // handful of arrays a nest references.
  std::vector<const std::string*> arrays;
  auto ordinal_of = [&](const std::string& name) -> int {
    for (std::size_t k = 0; k < arrays.size(); ++k)
      if (*arrays[k] == name) return static_cast<int>(k);
    arrays.push_back(&name);
    return static_cast<int>(arrays.size()) - 1;
  };

  nest.for_each_access(
      [&](const loopir::ArrayRef& ref, int statement, bool is_write) {
        key += 'S';
        append_int(&key, statement);
        key += is_write ? 'W' : 'R';
        key += 'a';
        append_int(&key, ordinal_of(ref.array));
        for (std::size_t k = 0; k < ref.subscripts.size(); ++k) {
          // Indirect slots serialize as the index array's ordinal plus the
          // affine position into it — a different key space ('I' vs '[')
          // from affine slots, so A[B[i]] never collides with any affine
          // structure.
          if (k < ref.indirect.size() && ref.indirect[k].has_value()) {
            const loopir::IndirectSubscript& ind = *ref.indirect[k];
            key += 'I';
            append_int(&key, ordinal_of(ind.array));
            for (intlin::i64 c : ind.pos.coeffs()) append_int(&key, c);
            key += ':';
            append_int(&key, ind.pos.constant_term());
            key += ']';
            continue;
          }
          const loopir::AffineExpr& s = ref.subscripts[k];
          key += '[';
          for (intlin::i64 c : s.coeffs()) append_int(&key, c);
          key += ':';
          append_int(&key, s.constant_term());
          key += ']';
        }
        key += ';';
      });

  Fingerprint fp;
  fp.key = std::move(key);
  fp.hash = fnv1a(fp.key);
  return fp;
}

namespace {

void render_subscripts(const loopir::ArrayRef& ref, std::string* key) {
  for (std::size_t k = 0; k < ref.subscripts.size(); ++k) {
    if (k < ref.indirect.size() && ref.indirect[k].has_value()) {
      const loopir::IndirectSubscript& ind = *ref.indirect[k];
      *key += 'I';
      keyenc::append_field(key, ind.array);
      for (intlin::i64 c : ind.pos.coeffs()) append_int(key, c);
      *key += ':';
      append_int(key, ind.pos.constant_term());
      continue;
    }
    const loopir::AffineExpr& s = ref.subscripts[k];
    for (intlin::i64 c : s.coeffs()) append_int(key, c);
    *key += ':';
    append_int(key, s.constant_term());
  }
}

void render_expr(const loopir::Expr& e, std::string* key) {
  using K = loopir::Expr::Kind;
  switch (e.kind()) {
    case K::kConst:
      *key += 'c';
      append_int(key, e.value());
      return;
    case K::kIndex:
      *key += 'i';
      append_int(key, e.index());
      return;
    case K::kRead:
      *key += 'r';
      keyenc::append_field(key, e.ref().array);
      render_subscripts(e.ref(), key);
      return;
    case K::kAdd:
    case K::kSub:
    case K::kMul:
      *key += e.kind() == K::kAdd ? '+' : e.kind() == K::kSub ? '-' : '*';
      render_expr(*e.lhs(), key);
      render_expr(*e.rhs(), key);
      return;
  }
}

}  // namespace

std::string bounds_render(const loopir::LoopNest& nest) {
  // Compact numeric rendering, not nest.to_string(): the render runs per
  // request on the batch grouping path, and the source-like rendering
  // (ostringstream-based) costs more than executing a small request.
  //
  // The body IS part of this key. The structural fingerprint canonicalizes
  // only the access sequence (statements, arrays, subscripts) — body
  // constants and operators never enter the analysis, so `A[i]=A[i-1]+1`
  // and `A[i]=A[i-1]+2` deliberately share one PlanArtifact. Emitted C,
  // native kernels and batch kernel-sharing groups bake the body in, so
  // their keys must separate on it.
  std::string key;
  key.reserve(128);
  auto put = [&key](intlin::i64 v) {
    append_int(&key, v);
  };
  auto put_bound = [&](const loopir::Bound& b) {
    for (const loopir::BoundTerm& t : b.terms()) {
      for (intlin::i64 c : t.num.coeffs()) put(c);
      key += ':';
      put(t.num.constant_term());
      put(t.den);
      key += 't';
    }
    key += ';';
  };
  for (const loopir::Level& l : nest.levels()) {
    key += 'L';
    put_bound(l.lower);
    put_bound(l.upper);
  }
  for (const loopir::ArrayDecl& a : nest.arrays()) {
    key += 'A';
    // Length-prefixed (support/keyenc.h): a plain separator is forgeable by
    // a name that contains it — "X;1,2," must not collide with "X" + dims.
    keyenc::append_field(&key, a.name);
    for (auto [lo, hi] : a.dims) {
      put(lo);
      put(hi);
    }
  }
  for (const loopir::Assign& st : nest.body()) {
    key += 'S';
    keyenc::append_field(&key, st.lhs.array);
    render_subscripts(st.lhs, &key);
    key += '=';
    render_expr(*st.rhs, &key);
  }
  return key;
}

}  // namespace vdep
