// Structural fingerprint of a loop nest: the cache key of the staged
// compilation API.
//
// The whole analysis pipeline — dependence equations, PDM (Hermite form of
// the stacked distance lattices), Algorithm 1, Theorem 2 partitioning — is
// a function of the nest's *structure* only: depth plus the linear parts F
// and constant parts f0 of every array access, with statements and arrays
// identified positionally. Loop bounds never enter (the paper's analysis
// is unbounded; bounds reappear only at code generation and execution), so
// two nests that differ only in extent share one fingerprint and therefore
// one cached plan. Array *names* are canonicalized to first-appearance
// ordinals: renaming arrays preserves the dependence structure, so it
// preserves the fingerprint.
#pragma once

#include <cstdint>
#include <string>

#include "loopir/nest.h"

namespace vdep {

struct Fingerprint {
  /// FNV-1a of `key` — picks the cache shard and speeds up comparison.
  std::uint64_t hash = 0;
  /// Canonical structural description; the authoritative identity (cache
  /// lookups compare keys, never hashes alone, so a 64-bit collision can
  /// degrade sharing but never correctness).
  std::string key;

  bool operator==(const Fingerprint& o) const {
    return hash == o.hash && key == o.key;
  }
  bool operator!=(const Fingerprint& o) const { return !(*this == o); }
};

/// Fingerprints the structure of `nest` (bounds and array shapes excluded).
Fingerprint structural_fingerprint(const loopir::LoopNest& nest);

/// Canonical rendering of everything structural_fingerprint deliberately
/// ignores: the loop bounds (nest.to_string() renders loops and body) plus
/// the array shapes. fingerprint + bounds_render identifies a nest up to
/// execution equivalence of emitted and native code — it keys the
/// codegen/jit memos of PlanArtifact and the same-(structure, bounds)
/// grouping of execute_batch.
std::string bounds_render(const loopir::LoopNest& nest);

}  // namespace vdep
