#include "api/batch.h"

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "exec/compiled.h"
#include "runtime/batch_executor.h"
#include "support/error.h"

namespace vdep {

namespace {

/// Shared per-(structure, bounds) state of a batch: requests of one group
/// run the same transformed nest, so they share one StreamExecutor (one
/// rewrite + Fourier–Motzkin) and one scan-path CompiledKernel prototype
/// (one range proof), rebound per request store.
struct Group {
  std::unique_ptr<runtime::StreamExecutor> executor;
  std::unique_ptr<const exec::CompiledKernel> prototype;
  /// kJit: the group's native kernel, resolved once through the artifact
  /// memo (same structure + bounds + options -> same .so) instead of
  /// per request — the memo lookup renders the bounds key, which is
  /// worth skipping 63 times out of 64.
  std::shared_ptr<const jit::NativeKernel> native;
};

Expected<std::vector<ExecReport>> execute_batch_impl(
    std::span<const BatchRequest> requests, const ExecPolicy& policy,
    vdep::ThreadPool* pool) {
  try {
    if (policy.mode() != ExecMode::kStreaming)
      throw PreconditionError(
          "execute_batch: only ExecMode::kStreaming is supported (the batch "
          "scheduler is the streaming runtime)");
    if (policy.backend() == ExecBackend::kInspector)
      throw UnsupportedError(
          "execute_batch: the inspector backend partitions per store "
          "(classes depend on index-array contents), which the shared batch "
          "scheduler cannot express; execute each request individually");

    std::size_t threads =
        policy.threads() ? policy.threads() : (pool ? pool->size() : 0);

    // Per-request preparation: resolve the store (caller's or an internal
    // pattern fill), the group (shared executor + scan prototype) and —
    // for the kJit backend — the native kernel out of the artifact memo,
    // where same-bounds requests share one loaded .so. Jit failures
    // degrade that request to the scan path, exactly like single
    // execute().
    std::map<std::string, Group> groups;
    // Pointer fast path over the rendered key: handles copied from one
    // CompiledLoop (the common serving shape) share the artifact and the
    // nest object, so their group resolves without rendering the bounds.
    std::map<std::pair<const void*, const void*>, Group*> by_identity;
    std::vector<std::unique_ptr<exec::ArrayStore>> owned_stores;
    std::vector<std::shared_ptr<const jit::NativeKernel>> kernels(
        requests.size());
    std::vector<runtime::BatchSource> sources;
    sources.reserve(requests.size());

    for (std::size_t k = 0; k < requests.size(); ++k) {
      const BatchRequest& req = requests[k];

      if (req.loop.nest().has_indirection()) {
        ApiError err{ErrorKind::kUnsupported,
                     "execute_batch: request " + std::to_string(k) +
                         ": indirect subscripts need the runtime inspector "
                         "(single execute with ExecBackend::kInspector)"};
        err.index = static_cast<int>(k);
        return err;
      }

      exec::ArrayStore* store = req.store;
      if (!store) {
        owned_stores.push_back(std::make_unique<exec::ArrayStore>(
            req.loop.nest(), policy.placement(), threads));
        owned_stores.back()->fill_pattern();
        store = owned_stores.back().get();
      }

      std::pair<const void*, const void*> identity{&req.loop.fingerprint(),
                                                   &req.loop.nest()};
      auto [id_it, id_fresh] = by_identity.try_emplace(identity, nullptr);
      if (id_fresh) {
        std::string key = req.loop.fingerprint().key;
        key += '\n';
        key += bounds_render(req.loop.nest());
        id_it->second = &groups.try_emplace(std::move(key)).first->second;
      }
      Group& group = *id_it->second;
      bool fresh = group.executor == nullptr;
      if (fresh) {
        runtime::StreamOptions so;
        so.num_threads = threads;
        so.grain = policy.grain();
        so.split_dims = policy.split_dims();
        so.force_interpreter = policy.interpreter_only();
        so.trace = policy.trace();
        so.metrics = policy.metrics();
        so.pin_workers = policy.pin_workers();
        so.locality_splits = policy.locality_splits();
        group.executor = std::make_unique<runtime::StreamExecutor>(
            req.loop.nest(), req.loop.plan().transform, so);
        if (policy.backend() == ExecBackend::kJit) {
          // Jit failure (no toolchain, range proof, cc error) degrades the
          // group to the scan path, exactly like single execute().
          Expected<std::shared_ptr<const jit::NativeKernel>> nk =
              req.loop.jit(policy.jit_options());
          if (nk) group.native = *nk;
        }
        if (!group.native && !policy.interpreter_only()) {
          try {
            // Scan-path prototype, only when no native kernel runs the
            // group's leaves. Compiled against the group's first store;
            // every member — this one included — rebinds it onto its own
            // buffers. Lifetime: the prototype holds a reference to this
            // request's nest, which `requests` keeps alive past the run.
            group.prototype = std::make_unique<const exec::CompiledKernel>(
                req.loop.nest(), *store);
          } catch (const Error&) {
            // Range proof failed: the whole group scans interpreted.
          }
        }
      }

      kernels[k] = group.native;
      sources.push_back({group.executor.get(), store, group.native.get(),
                         group.prototype.get()});
    }

    runtime::BatchStats bs =
        runtime::run_batch(sources, threads, pool, policy.pin_workers());
    if (bs.error) {
      try {
        std::rethrow_exception(bs.error);
      } catch (const Error& e) {
        ApiError err = detail::classify(e);
        err.index = static_cast<int>(bs.error_source);
        err.message = "execute_batch: request " +
                      std::to_string(bs.error_source) + ": " + err.message;
        return err;
      }
      // Non-library exceptions (bad_alloc, ...) propagate to the caller.
    }

    std::vector<ExecReport> reports(requests.size());
    for (std::size_t k = 0; k < requests.size(); ++k) {
      const runtime::SourceStats& s = bs.sources[k];
      ExecReport& rep = reports[k];
      rep.iterations = s.iterations;
      rep.tasks = s.tasks;
      rep.steals = s.steals;
      rep.inner_splits = s.inner_splits;
      rep.wall_ns = s.done_ns;
      rep.queue_ns = s.queue_ns;
      // This request's in-flight time: completion minus the wait behind
      // the rest of the batch.
      rep.exec_ns = s.done_ns > s.queue_ns ? s.done_ns - s.queue_ns : 0;
      if (policy.digest()) rep.checksum = sources[k].store->checksum();
      rep.jit = kernels[k] != nullptr;
    }
    return reports;
  } catch (const Error& e) {
    return detail::classify(e);
  }
}

}  // namespace

Expected<std::vector<ExecReport>> execute_batch(
    std::span<const BatchRequest> requests, const ExecPolicy& policy) {
  return execute_batch_impl(requests, policy, nullptr);
}

Expected<std::vector<ExecReport>> execute_batch(
    std::span<const BatchRequest> requests, const ExecPolicy& policy,
    vdep::ThreadPool& pool) {
  return execute_batch_impl(requests, policy, &pool);
}

// ------------------------------------------- CompiledLoop batch members

namespace {

/// Rebinds `loop` at every bounds (at() checks the structure); errors
/// carry the failing entry's index.
Expected<std::vector<BatchRequest>> rebind_requests(
    const CompiledLoop& loop, std::span<const loopir::LoopNest> bounds) {
  std::vector<BatchRequest> reqs;
  reqs.reserve(bounds.size());
  for (std::size_t k = 0; k < bounds.size(); ++k) {
    Expected<CompiledLoop> h = loop.at(bounds[k]);
    if (!h) {
      ApiError err = h.error();
      err.index = static_cast<int>(k);
      err.message = "execute_batch: bounds " + std::to_string(k) + ": " +
                    err.message;
      return err;
    }
    reqs.push_back(BatchRequest{std::move(*h), nullptr});
  }
  return reqs;
}

std::vector<BatchRequest> store_requests(
    const CompiledLoop& loop, std::span<exec::ArrayStore* const> stores) {
  std::vector<BatchRequest> reqs;
  reqs.reserve(stores.size());
  for (exec::ArrayStore* store : stores)
    reqs.push_back(BatchRequest{loop, store});
  return reqs;
}

}  // namespace

Expected<std::vector<ExecReport>> CompiledLoop::execute_batch(
    std::span<const loopir::LoopNest> bounds, const ExecPolicy& policy) const {
  return rebind_requests(*this, bounds).and_then([&](const auto& reqs) {
    return execute_batch_impl(reqs, policy, nullptr);
  });
}

Expected<std::vector<ExecReport>> CompiledLoop::execute_batch(
    std::span<const loopir::LoopNest> bounds, const ExecPolicy& policy,
    vdep::ThreadPool& pool) const {
  return rebind_requests(*this, bounds).and_then([&](const auto& reqs) {
    return execute_batch_impl(reqs, policy, &pool);
  });
}

Expected<std::vector<ExecReport>> CompiledLoop::execute_batch(
    std::span<exec::ArrayStore* const> stores, const ExecPolicy& policy) const {
  return execute_batch_impl(store_requests(*this, stores), policy, nullptr);
}

Expected<std::vector<ExecReport>> CompiledLoop::execute_batch(
    std::span<exec::ArrayStore* const> stores, const ExecPolicy& policy,
    vdep::ThreadPool& pool) const {
  return execute_batch_impl(store_requests(*this, stores), policy, &pool);
}

}  // namespace vdep
