#include "api/compiler.h"

#include <map>
#include <thread>

#include "cache/disk_cache.h"
#include "dsl/parser.h"
#include "intlin/mat.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "trans/legality.h"

namespace vdep {

namespace {

void count_compile(const char* name) {
  if (!obs::MetricsRegistry::enabled()) return;
  obs::MetricsRegistry::instance().counter(name).inc();
}

}  // namespace

Compiler::Compiler(CompileOptions opts)
    : opts_(opts),
      cache_(std::make_unique<PlanCache>(opts.cache_capacity(),
                                         opts.cache_shards())) {}

std::shared_ptr<const PlanArtifact> Compiler::analyze_and_insert(
    const loopir::LoopNest& nest, Fingerprint fp) const {
  // Before the full pipeline: another process may have analyzed this
  // structure already. The stored legality bit is never trusted — the
  // Theorem-1 certificate is re-proved on the loaded PDM + T, so a disk
  // hit gives exactly the guarantee a fresh analysis would.
  std::shared_ptr<cache::DiskCache> disk = cache::DiskCache::resolve(
      opts_.disk_cache(), opts_.disk_cache_enabled());
  std::string disk_key;
  if (disk) {
    disk_key = cache::plan_cache_key(cache::build_id(), fp.key);
    std::optional<cache::PlanPayload> hit;
    {
      obs::ScopedSpan span(obs::EventKind::kDiskCacheProbe, opts_.trace());
      hit = disk->load_plan(disk_key);
      span.set_arg(0, hit ? 1 : 0);
    }
    if (hit &&
        (!hit->plan.legal ||
         trans::is_legal_transform(hit->analysis.pdm.matrix(),
                                   hit->plan.transform.t))) {
      count_compile("vdep_plan_disk_hits_total");
      return cache_->insert(std::make_shared<PlanArtifact>(
          std::move(fp), std::move(hit->analysis), std::move(hit->plan)));
    }
  }

  // Cold path: the full pipeline. Everything below depends on the
  // structure only, so the artifact is valid for this fingerprint at any
  // bounds.
  count_compile("vdep_compiles_total");
  if (nest.has_indirection()) {
    // Non-affine nest: the PDM is undefined (subscripts depend on runtime
    // array contents), so there is no static plan to derive. Record an
    // identity "plan" carrying zero DOALL loops and one class; execution
    // routes through the runtime inspector, which partitions per-execute
    // from the actual index-array contents.
    obs::ScopedSpan span(obs::EventKind::kAnalyze, opts_.trace(),
                         obs::Phase::kAnalyze);
    LoopAnalysis analysis;
    analysis.affine = false;
    analysis.rank = 0;
    analysis.all_uniform = false;
    LoopPlan plan;
    plan.transform.depth = nest.depth();
    plan.transform.t = intlin::Mat::identity(nest.depth());
    plan.transform.transformed_pdm = intlin::Mat(0, nest.depth());
    plan.transform.num_doall = 0;
    plan.transform.partition_classes = 1;
    plan.doall_loops = 0;
    plan.partition_classes = 1;
    plan.legal = true;
    if (disk) disk->store_plan(disk_key, analysis, plan);
    return cache_->insert(std::make_shared<PlanArtifact>(
        std::move(fp), std::move(analysis), std::move(plan)));
  }
  LoopAnalysis analysis;
  {
    obs::ScopedSpan span(obs::EventKind::kAnalyze, opts_.trace(),
                         obs::Phase::kAnalyze);
    analysis.pdm = dep::compute_pdm(nest);
    analysis.rank = analysis.pdm.rank();
    analysis.all_uniform = analysis.pdm.all_uniform();
  }

  LoopPlan plan;
  {
    obs::ScopedSpan span(obs::EventKind::kPlan, opts_.trace(),
                         obs::Phase::kPlan);
    plan.transform = trans::plan_transform(analysis.pdm);
    plan.doall_loops = plan.transform.num_doall;
    plan.partition_classes = plan.transform.partition_classes;
    // The certificate is re-derived from Theorem 1, not trusted from plan
    // construction: a cached plan is either certified or never exists.
    plan.legal =
        trans::is_legal_transform(analysis.pdm.matrix(), plan.transform.t);
  }
  if (!plan.legal)
    throw InternalError(
        "plan_transform produced a transformation that fails the "
        "Theorem 1 legality check");

  if (disk) disk->store_plan(disk_key, analysis, plan);
  return cache_->insert(std::make_shared<PlanArtifact>(
      std::move(fp), std::move(analysis), std::move(plan)));
}

Expected<CompiledLoop> Compiler::compile(const loopir::LoopNest& nest) const {
  return try_invoke([&]() -> CompiledLoop {
    if (opts_.validate()) nest.validate();

    Fingerprint fp;
    {
      obs::ScopedSpan span(obs::EventKind::kFingerprint, opts_.trace());
      fp = structural_fingerprint(nest);
    }
    std::shared_ptr<const PlanArtifact> art;
    {
      obs::ScopedSpan span(obs::EventKind::kCacheProbe, opts_.trace());
      art = cache_->find(fp);
      span.set_arg(0, art ? 1 : 0);
    }
    if (art) {
      count_compile("vdep_plan_cache_hits_total");
      return CompiledLoop(std::move(art), nest);
    }
    count_compile("vdep_plan_cache_misses_total");
    return CompiledLoop(analyze_and_insert(nest, std::move(fp)), nest);
  });
}

Expected<std::vector<CompiledLoop>> Compiler::compile_all(
    std::span<const loopir::LoopNest> nests) const {
  // Batch-local dedup by canonical fingerprint key: one cache probe and at
  // most one analysis per unique structure, no matter how many requests
  // share it. The map holds the batch's working set only; the session
  // cache stays the durable store.
  std::map<std::string, std::shared_ptr<const PlanArtifact>> local;
  std::vector<CompiledLoop> out;
  out.reserve(nests.size());
  ApiError first_err;
  bool failed = false;

  for (std::size_t k = 0; k < nests.size(); ++k) {
    const loopir::LoopNest& nest = nests[k];
    Expected<CompiledLoop> one = try_invoke([&]() -> CompiledLoop {
      if (opts_.validate()) nest.validate();
      Fingerprint fp = structural_fingerprint(nest);
      auto it = local.find(fp.key);
      if (it != local.end()) return CompiledLoop(it->second, nest);
      std::shared_ptr<const PlanArtifact> art = cache_->find(fp);
      if (!art) art = analyze_and_insert(nest, fp);
      local.emplace(std::move(fp.key), art);
      return CompiledLoop(std::move(art), nest);
    });
    if (one) {
      out.push_back(std::move(*one));
    } else if (!failed) {
      // Keep compiling the rest: they land in the cache, so a retry
      // without the bad entry is all hits.
      failed = true;
      first_err = one.error();
      first_err.index = static_cast<int>(k);
      first_err.message =
          "compile_all: nest " + std::to_string(k) + ": " + first_err.message;
    }
  }
  if (failed) return first_err;
  return out;
}

ThreadPool& Compiler::pool() const {
  std::call_once(pool_once_, [&] {
    std::size_t n = opts_.pool_threads()
                        ? opts_.pool_threads()
                        : std::max(1u, std::thread::hardware_concurrency());
    pool_ = std::make_unique<ThreadPool>(n);
  });
  return *pool_;
}

Expected<CompiledLoop> Compiler::compile(const std::string& dsl_source) const {
  Expected<loopir::LoopNest> nest = [&] {
    obs::ScopedSpan span(obs::EventKind::kParse, opts_.trace(),
                         obs::Phase::kParse);
    return dsl::try_parse_loop_nest(dsl_source);
  }();
  return nest.and_then(
      [&](const loopir::LoopNest& n) { return compile(n); });
}

}  // namespace vdep
