#include "api/compiler.h"

#include "dsl/parser.h"
#include "support/error.h"
#include "trans/legality.h"

namespace vdep {

Compiler::Compiler(CompileOptions opts)
    : opts_(opts),
      cache_(std::make_unique<PlanCache>(opts.cache_capacity(),
                                         opts.cache_shards())) {}

Expected<CompiledLoop> Compiler::compile(const loopir::LoopNest& nest) const {
  return try_invoke([&]() -> CompiledLoop {
    if (opts_.validate()) nest.validate();

    Fingerprint fp = structural_fingerprint(nest);
    if (std::shared_ptr<const PlanArtifact> art = cache_->find(fp))
      return CompiledLoop(std::move(art), nest);

    // Cold path: the full pipeline. Everything below depends on the
    // structure only, so the artifact is valid for this fingerprint at any
    // bounds.
    LoopAnalysis analysis;
    analysis.pdm = dep::compute_pdm(nest);
    analysis.rank = analysis.pdm.rank();
    analysis.all_uniform = analysis.pdm.all_uniform();

    LoopPlan plan;
    plan.transform = trans::plan_transform(analysis.pdm);
    plan.doall_loops = plan.transform.num_doall;
    plan.partition_classes = plan.transform.partition_classes;
    // The certificate is re-derived from Theorem 1, not trusted from plan
    // construction: a cached plan is either certified or never exists.
    plan.legal =
        trans::is_legal_transform(analysis.pdm.matrix(), plan.transform.t);
    if (!plan.legal)
      throw InternalError(
          "plan_transform produced a transformation that fails the "
          "Theorem 1 legality check");

    std::shared_ptr<const PlanArtifact> art =
        cache_->insert(std::make_shared<PlanArtifact>(
            std::move(fp), std::move(analysis), std::move(plan)));
    return CompiledLoop(std::move(art), nest);
  });
}

Expected<CompiledLoop> Compiler::compile(const std::string& dsl_source) const {
  return dsl::try_parse_loop_nest(dsl_source)
      .and_then([&](const loopir::LoopNest& nest) { return compile(nest); });
}

}  // namespace vdep
