#include "api/compiled_loop.h"

#include <chrono>
#include <optional>
#include <sstream>
#include <thread>

#include "codegen/rewrite.h"
#include "exec/array_store.h"
#include "exec/interpreter.h"
#include "inspect/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/stream_executor.h"
#include "support/error.h"
#include "support/keyenc.h"

namespace vdep {

namespace {

i64 elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Memo key part carrying everything bounds-level the fingerprint ignores
// (the structural fingerprint deliberately drops loop bounds and dims: the
// analysis is bounds-independent — but emitted C and native kernels bake
// both into flattening strides and static sizes, so their memos must
// separate on them). Shared with the batch grouping (api/fingerprint.h).
std::string bounds_key(const loopir::LoopNest& nest) {
  return bounds_render(nest);
}

}  // namespace

// ------------------------------------------------------------- options

std::string CodegenOptions::memo_key() const {
  std::string key = target_ == CodegenTarget::kTransformed ? "trans" : "orig";
  key += ";omp=";
  key += openmp_ ? '1' : '0';
  key += ";main=";
  key += with_main_ ? '1' : '0';
  key += ";name=";
  // kernel_name_ is free-form caller text: length-prefix it so a crafted
  // name cannot forge the framing of any key built on top of this one.
  keyenc::append_field(&key, kernel_name_);
  return key;
}

// ------------------------------------------------------------ artifact

const std::string& PlanArtifact::codegen(const loopir::LoopNest& nest,
                                         const CodegenOptions& opts) const {
  // The artifact is bounds-free but emitted C is not (loop bounds, the
  // body and the array dims appear verbatim), so the memo key is the
  // option key plus the full bounds rendering. Handles at the same bounds
  // share the emitted string.
  std::string key = opts.memo_key();
  key += '\n';
  key += bounds_key(nest);

  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    auto it = codegen_memo_.find(key);
    if (it != codegen_memo_.end()) return it->second;
  }

  // Emit outside the lock: transformed bounds run Fourier–Motzkin. A racing
  // thread may emit the same string; emplace keeps the first.
  codegen::EmitOptions eo;
  eo.openmp = opts.openmp();
  eo.with_main = opts.with_main();
  eo.kernel_name = opts.kernel_name();
  std::string c;
  {
    obs::ScopedSpan span(obs::EventKind::kCodegen, /*layer_enabled=*/true,
                         obs::Phase::kCodegen);
    c = opts.target() == CodegenTarget::kOriginal
            ? codegen::emit_c_original(nest, eo)
            : codegen::emit_c_transformed(nest, plan_.transform, eo);
  }

  std::lock_guard<std::mutex> lock(memo_mu_);
  return codegen_memo_.emplace(std::move(key), std::move(c)).first->second;
}

Expected<std::shared_ptr<const jit::NativeKernel>> PlanArtifact::jit_kernel(
    const loopir::LoopNest& nest, const jit::JitOptions& opts) const {
  // Keyed like the codegen memo: options + the bounds rendering (loop
  // bounds AND array dims). Handles at the same bounds share the loaded
  // .so.
  std::string key = opts.memo_key();
  key += '\n';
  key += bounds_key(nest);

  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    if (auto it = jit_memo_.find(key); it != jit_memo_.end())
      return it->second;
    if (auto it = jit_fail_memo_.find(key); it != jit_fail_memo_.end())
      return it->second;
  }

  // No toolchain is a cheap, environment-level answer: never memoized, so
  // a host that gains a compiler starts JITting without a new session.
  jit::ToolchainCompiler tc(opts);
  if (!tc.available())
    return ApiError{ErrorKind::kUnsupported,
                    "jit: no C toolchain found (set $VDEP_CC or put cc/gcc/"
                    "clang on PATH)"};

  // Emit + cc + dlopen outside the lock (the toolchain run dominates); a
  // racing thread may build the same kernel, emplace keeps the first and
  // the loser's .so unloads with its last shared_ptr.
  Expected<std::shared_ptr<const jit::NativeKernel>> kernel =
      tc.compile(nest, plan_.transform);

  std::lock_guard<std::mutex> lock(memo_mu_);
  if (!kernel) {
    // Deterministic failures (range proof, cc error on these flags) would
    // re-run a full toolchain subprocess on every execute(): memoize them
    // per key so backend kJit degrades once, not per call.
    return jit_fail_memo_.emplace(std::move(key), kernel.error())
        .first->second;
  }
  return jit_memo_.emplace(std::move(key), std::move(*kernel)).first->second;
}

// -------------------------------------------------------------- handle

exec::RunStats CompiledLoop::measure() const {
  return exec::measure_schedule(*nest_, art_->plan().transform);
}

Expected<CompiledLoop> CompiledLoop::at(const loopir::LoopNest& bounds) const {
  return try_invoke([&]() -> CompiledLoop {
    Fingerprint fp = structural_fingerprint(bounds);
    if (fp != art_->fingerprint())
      throw PreconditionError(
          "CompiledLoop::at: nest structure differs from the compiled "
          "structure (recompile instead of rebinding)");
    return CompiledLoop(art_, bounds);
  });
}

Expected<ExecReport> CompiledLoop::execute(const ExecPolicy& policy,
                                           exec::ArrayStore& store) const {
  return execute_impl(policy, store, nullptr);
}

Expected<ExecReport> CompiledLoop::execute(const ExecPolicy& policy,
                                           exec::ArrayStore& store,
                                           vdep::ThreadPool& pool) const {
  return execute_impl(policy, store, &pool);
}

Expected<ExecReport> CompiledLoop::check(const ExecPolicy& policy) const {
  return check_impl(policy, nullptr);
}

Expected<ExecReport> CompiledLoop::check(const ExecPolicy& policy,
                                         vdep::ThreadPool& pool) const {
  return check_impl(policy, &pool);
}

Expected<ExecReport> CompiledLoop::execute_impl(const ExecPolicy& policy,
                                                exec::ArrayStore& store,
                                                vdep::ThreadPool* pool) const {
  return try_invoke([&]() -> ExecReport {
    ExecReport rep;
    // Collects the phase breakdown from every instrumented site this call
    // reaches (executor build, codegen, cc, the run itself) — including
    // sites inside memoized artifacts, which correctly report ~0 on hits.
    obs::PhaseScope phases;
    auto t0 = std::chrono::steady_clock::now();
    // Non-affine nests have no provable static plan: the inspector is the
    // only backend that can run them, whatever the policy says. Affine
    // nests take the inspector path only on explicit request.
    const bool non_affine = !art_->analysis().affine;
    const bool use_inspector =
        non_affine || policy.backend() == ExecBackend::kInspector;
    if (use_inspector) {
      if (policy.mode() != ExecMode::kStreaming)
        throw UnsupportedError(
            non_affine
                ? "materialized mode cannot run indirect subscripts; use "
                  "streaming (the inspector backend)"
                : "ExecBackend::kInspector is a streaming backend");
      std::optional<inspect::DynamicPartition> part;
      {
        obs::ScopedSpan span(obs::EventKind::kInspect, policy.trace(),
                             obs::Phase::kInspect);
        part.emplace(inspect::inspect(*nest_, store));
        if (span.tracing()) {
          const inspect::InspectStats& st = part->stats();
          span.set_arg(0, st.iterations);
          span.set_arg(1, st.classes);
          span.set_arg(2, st.chains);
          span.set_arg(3, st.max_component);
          span.set_arg(4, st.dependent_iterations);
          span.set_arg(5, st.written_cells);
        }
      }
      const inspect::InspectStats& st = part->stats();
      if (policy.metrics() && obs::MetricsRegistry::enabled()) {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
        reg.counter("vdep_inspector_runs_total").inc();
        reg.histogram("vdep_inspector_classes", obs::exp_buckets(1, 4.0, 16),
                      "dynamic partition classes per inspection")
            .observe(st.classes);
        reg.histogram("vdep_inspector_component_size",
                      obs::exp_buckets(1, 4.0, 16),
                      "largest dependence component per inspection")
            .observe(st.max_component);
      }
      inspect::InspectorExecOptions io;
      io.num_threads =
          policy.threads() ? policy.threads() : (pool ? pool->size() : 0);
      io.grain = policy.grain();
      io.force_interpreter = policy.interpreter_only();
      io.trace = policy.trace();
      io.metrics = policy.metrics();
      io.pin_workers = policy.pin_workers();
      inspect::InspectorExecutor ex(*nest_, *part, io);
      runtime::RuntimeStats rs;
      {
        obs::PhaseTimer run_timer(obs::Phase::kExec);
        rs = pool ? ex.run(store, *pool) : ex.run(store);
      }
      rep.iterations = rs.total_iterations();
      rep.tasks = rs.total_tasks();
      rep.steals = rs.total_steals();
      rep.inner_splits = rs.total_inner_splits();
      rep.failed_steals = rs.total_failed_steals();
      rep.idle_ns = rs.total_idle_ns();
      rep.inspector = true;
      rep.inspector_classes = st.classes;
      rep.inspector_chains = st.chains;
      rep.inspector_max_component = st.max_component;
      rep.inspector_dependent = st.dependent_iterations;
    } else if (policy.mode() == ExecMode::kStreaming) {
      runtime::StreamOptions so;
      so.num_threads =
          policy.threads() ? policy.threads() : (pool ? pool->size() : 0);
      so.grain = policy.grain();
      so.split_dims = policy.split_dims();
      so.force_interpreter = policy.interpreter_only();
      so.trace = policy.trace();
      so.metrics = policy.metrics();
      so.pin_workers = policy.pin_workers();
      so.locality_splits = policy.locality_splits();
      std::optional<runtime::StreamExecutor> ex;
      {
        obs::ScopedSpan span(obs::EventKind::kExecutorBuild, policy.trace(),
                             obs::Phase::kAnalyze);
        ex.emplace(*nest_, art_->plan().transform, so);
      }

      // Jit backend: run descriptor leaves through the memoized native
      // kernel; any jit failure (no toolchain, range proof, cc error)
      // degrades to the compiled-scan path below.
      std::shared_ptr<const jit::NativeKernel> native;
      if (policy.backend() == ExecBackend::kJit) {
        Expected<std::shared_ptr<const jit::NativeKernel>> k =
            art_->jit_kernel(*nest_, policy.jit_options());
        if (k) native = *k;
      }
      runtime::RuntimeStats rs;
      {
        obs::PhaseTimer run_timer(obs::Phase::kExec);
        if (native) {
          rs = pool ? ex->run(store, *native, *pool) : ex->run(store, *native);
          rep.jit = true;
          rep.jit_partitioned = native->partitioned();
        } else {
          rs = pool ? ex->run(store, *pool) : ex->run(store);
        }
      }
      rep.iterations = rs.total_iterations();
      rep.tasks = rs.total_tasks();
      rep.steals = rs.total_steals();
      rep.inner_splits = rs.total_inner_splits();
      rep.failed_steals = rs.total_failed_steals();
      rep.idle_ns = rs.total_idle_ns();
    } else {
      exec::RunStats rs;
      obs::PhaseTimer run_timer(obs::Phase::kExec);
      if (pool) {
        rs = exec::run_parallel(*nest_, art_->plan().transform, store, *pool);
      } else {
        std::size_t threads = policy.threads()
                                  ? policy.threads()
                                  : std::max(1u, std::thread::hardware_concurrency());
        vdep::ThreadPool local(threads);
        rs = exec::run_parallel(*nest_, art_->plan().transform, store, local);
      }
      rep.iterations = rs.iterations;
      rep.tasks = rs.work_items;
    }
    rep.analyze_ns = phases.ns(obs::Phase::kAnalyze);
    rep.codegen_ns = phases.ns(obs::Phase::kCodegen);
    rep.jit_compile_ns = phases.ns(obs::Phase::kJitCompile);
    rep.inspect_ns = phases.ns(obs::Phase::kInspect);
    rep.exec_ns = phases.ns(obs::Phase::kExec);
    rep.wall_ns = elapsed_ns(t0);
    if (policy.digest()) rep.checksum = store.checksum();
    return rep;
  });
}

Expected<ExecReport> CompiledLoop::check_impl(const ExecPolicy& policy,
                                              vdep::ThreadPool* pool) const {
  return try_invoke([&]() -> ExecReport {
    exec::ArrayStore ref(*nest_);
    ref.fill_pattern();
    // The parallel store is built fresh under the policy's placement (not
    // copied from ref — a copy would inherit the copying thread's pages)
    // and refilled with the same deterministic pattern.
    exec::ArrayStore par(*nest_, policy.placement(), policy.threads());
    par.fill_pattern();
    exec::run_sequential(*nest_, ref);
    // value() re-raises the typed error so the outer try_invoke recaptures
    // it — execution failures and divergence surface the same way.
    ExecReport rep = execute_impl(policy, par, pool).value();
    if (!(ref == par))
      throw InternalError(
          "parallel execution diverged from the sequential reference");
    rep.verified = true;
    rep.checksum = par.checksum();
    return rep;
  });
}

std::string CompiledLoop::summary() const {
  const LoopAnalysis& a = art_->analysis();
  const LoopPlan& p = art_->plan();
  std::ostringstream os;
  os << "=== vdep compiled loop ===\n";
  os << "-- structure --\n";
  os << "fingerprint " << std::hex << fingerprint().hash << std::dec
     << ", depth " << nest_->depth() << ", PDM rank " << a.rank
     << (a.affine ? (a.all_uniform ? " [uniform]" : " [variable]")
                  : " [non-affine]")
     << "\n";
  os << "-- original nest --\n" << nest_->to_string();
  if (!a.affine) {
    os << "-- dependence analysis --\n";
    os << "indirect subscripts: dependences depend on index-array contents;\n"
       << "no static PDM exists. Execution partitions at runtime via the\n"
       << "inspector backend (ExecBackend::kInspector).\n";
    return os.str();
  }
  os << "-- dependence analysis --\n";
  if (a.pdm.pairs().empty()) {
    os << "no dependent reference pairs\n";
  } else {
    for (const dep::DepPair& pr : a.pdm.pairs()) {
      os << dep::to_string(pr.kind) << ": S" << pr.stmt_a + 1 << " "
         << pr.a.to_string(nest_->index_names()) << "  <->  S" << pr.stmt_b + 1
         << " " << pr.b.to_string(nest_->index_names())
         << (pr.solution.is_uniform() ? "  [uniform]" : "  [variable]") << "\n";
    }
  }
  os << a.pdm.to_string() << "\n";
  os << "-- plan (Theorem 1 " << (p.legal ? "certified" : "NOT CERTIFIED")
     << ") --\n";
  os << "T = " << p.transform.t.to_string()
     << ",  H*T = " << p.transform.transformed_pdm.to_string() << "\n";
  if (!p.transform.algorithm1_ops.empty()) {
    os << "Algorithm 1 ops:";
    for (const std::string& op : p.transform.algorithm1_ops) os << " " << op;
    os << "\n";
  }
  os << "-- parallel structure --\n";
  os << p.doall_loops << " outer DOALL loop(s), " << p.partition_classes
     << " independent partition class(es)\n";
  os << "-- transformed nest --\n"
     << codegen::rewrite_nest(*nest_, p.transform).nest.to_string();
  return os.str();
}

}  // namespace vdep
