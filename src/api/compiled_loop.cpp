#include "api/compiled_loop.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "codegen/rewrite.h"
#include "exec/array_store.h"
#include "exec/interpreter.h"
#include "runtime/stream_executor.h"
#include "support/error.h"

namespace vdep {

namespace {

i64 elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// ------------------------------------------------------------- options

std::string CodegenOptions::memo_key() const {
  std::string key = target_ == CodegenTarget::kTransformed ? "trans" : "orig";
  key += ";omp=";
  key += openmp_ ? '1' : '0';
  key += ";main=";
  key += with_main_ ? '1' : '0';
  key += ";name=";
  key += kernel_name_;
  return key;
}

// ------------------------------------------------------------ artifact

const std::string& PlanArtifact::codegen(const loopir::LoopNest& nest,
                                         const CodegenOptions& opts) const {
  // The artifact is bounds-free but emitted C is not (loop bounds and the
  // body appear verbatim), so the memo key is the option key plus the full
  // nest rendering. Handles at the same bounds share the emitted string.
  std::string key = opts.memo_key();
  key += '\n';
  key += nest.to_string();

  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    auto it = codegen_memo_.find(key);
    if (it != codegen_memo_.end()) return it->second;
  }

  // Emit outside the lock: transformed bounds run Fourier–Motzkin. A racing
  // thread may emit the same string; emplace keeps the first.
  codegen::EmitOptions eo;
  eo.openmp = opts.openmp();
  eo.with_main = opts.with_main();
  eo.kernel_name = opts.kernel_name();
  std::string c = opts.target() == CodegenTarget::kOriginal
                      ? codegen::emit_c_original(nest, eo)
                      : codegen::emit_c_transformed(nest, plan_.transform, eo);

  std::lock_guard<std::mutex> lock(memo_mu_);
  return codegen_memo_.emplace(std::move(key), std::move(c)).first->second;
}

// -------------------------------------------------------------- handle

exec::RunStats CompiledLoop::measure() const {
  return exec::measure_schedule(*nest_, art_->plan().transform);
}

Expected<CompiledLoop> CompiledLoop::at(const loopir::LoopNest& bounds) const {
  return try_invoke([&]() -> CompiledLoop {
    Fingerprint fp = structural_fingerprint(bounds);
    if (fp != art_->fingerprint())
      throw PreconditionError(
          "CompiledLoop::at: nest structure differs from the compiled "
          "structure (recompile instead of rebinding)");
    return CompiledLoop(art_, bounds);
  });
}

Expected<ExecReport> CompiledLoop::execute(const ExecPolicy& policy,
                                           exec::ArrayStore& store) const {
  return execute_impl(policy, store, nullptr);
}

Expected<ExecReport> CompiledLoop::execute(const ExecPolicy& policy,
                                           exec::ArrayStore& store,
                                           vdep::ThreadPool& pool) const {
  return execute_impl(policy, store, &pool);
}

Expected<ExecReport> CompiledLoop::check(const ExecPolicy& policy) const {
  return check_impl(policy, nullptr);
}

Expected<ExecReport> CompiledLoop::check(const ExecPolicy& policy,
                                         vdep::ThreadPool& pool) const {
  return check_impl(policy, &pool);
}

Expected<ExecReport> CompiledLoop::execute_impl(const ExecPolicy& policy,
                                                exec::ArrayStore& store,
                                                vdep::ThreadPool* pool) const {
  return try_invoke([&]() -> ExecReport {
    ExecReport rep;
    auto t0 = std::chrono::steady_clock::now();
    if (policy.mode() == ExecMode::kStreaming) {
      runtime::StreamOptions so;
      so.num_threads =
          policy.threads() ? policy.threads() : (pool ? pool->size() : 0);
      so.grain = policy.grain();
      so.force_interpreter = policy.interpreter_only();
      runtime::StreamExecutor ex(*nest_, art_->plan().transform, so);
      runtime::RuntimeStats rs = pool ? ex.run(store, *pool) : ex.run(store);
      rep.iterations = rs.total_iterations();
      rep.tasks = rs.total_tasks();
      rep.steals = rs.total_steals();
    } else {
      exec::RunStats rs;
      if (pool) {
        rs = exec::run_parallel(*nest_, art_->plan().transform, store, *pool);
      } else {
        std::size_t threads = policy.threads()
                                  ? policy.threads()
                                  : std::max(1u, std::thread::hardware_concurrency());
        vdep::ThreadPool local(threads);
        rs = exec::run_parallel(*nest_, art_->plan().transform, store, local);
      }
      rep.iterations = rs.iterations;
      rep.tasks = rs.work_items;
    }
    rep.wall_ns = elapsed_ns(t0);
    rep.checksum = store.checksum();
    return rep;
  });
}

Expected<ExecReport> CompiledLoop::check_impl(const ExecPolicy& policy,
                                              vdep::ThreadPool* pool) const {
  return try_invoke([&]() -> ExecReport {
    exec::ArrayStore ref(*nest_);
    ref.fill_pattern();
    exec::ArrayStore par = ref;
    exec::run_sequential(*nest_, ref);
    // value() re-raises the typed error so the outer try_invoke recaptures
    // it — execution failures and divergence surface the same way.
    ExecReport rep = execute_impl(policy, par, pool).value();
    if (!(ref == par))
      throw InternalError(
          "parallel execution diverged from the sequential reference");
    rep.verified = true;
    rep.checksum = par.checksum();
    return rep;
  });
}

std::string CompiledLoop::summary() const {
  const LoopAnalysis& a = art_->analysis();
  const LoopPlan& p = art_->plan();
  std::ostringstream os;
  os << "=== vdep compiled loop ===\n";
  os << "-- structure --\n";
  os << "fingerprint " << std::hex << fingerprint().hash << std::dec
     << ", depth " << nest_->depth() << ", PDM rank " << a.rank
     << (a.all_uniform ? " [uniform]" : " [variable]") << "\n";
  os << "-- original nest --\n" << nest_->to_string();
  os << "-- dependence analysis --\n";
  if (a.pdm.pairs().empty()) {
    os << "no dependent reference pairs\n";
  } else {
    for (const dep::DepPair& pr : a.pdm.pairs()) {
      os << dep::to_string(pr.kind) << ": S" << pr.stmt_a + 1 << " "
         << pr.a.to_string(nest_->index_names()) << "  <->  S" << pr.stmt_b + 1
         << " " << pr.b.to_string(nest_->index_names())
         << (pr.solution.is_uniform() ? "  [uniform]" : "  [variable]") << "\n";
    }
  }
  os << a.pdm.to_string() << "\n";
  os << "-- plan (Theorem 1 " << (p.legal ? "certified" : "NOT CERTIFIED")
     << ") --\n";
  os << "T = " << p.transform.t.to_string()
     << ",  H*T = " << p.transform.transformed_pdm.to_string() << "\n";
  if (!p.transform.algorithm1_ops.empty()) {
    os << "Algorithm 1 ops:";
    for (const std::string& op : p.transform.algorithm1_ops) os << " " << op;
    os << "\n";
  }
  os << "-- parallel structure --\n";
  os << p.doall_loops << " outer DOALL loop(s), " << p.partition_classes
     << " independent partition class(es)\n";
  os << "-- transformed nest --\n"
     << codegen::rewrite_nest(*nest_, p.transform).nest.to_string();
  return os.str();
}

}  // namespace vdep
