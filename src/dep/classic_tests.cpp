#include "dep/classic_tests.h"

#include "poly/constraints.h"
#include "poly/fourier_motzkin.h"
#include "support/error.h"

namespace vdep::dep {

bool gcd_test(const loopir::ArrayRef& a, const loopir::ArrayRef& b) {
  VDEP_REQUIRE(a.array == b.array && a.arity() == b.arity(),
               "gcd_test on incompatible references");
  Mat f = a.linear_part();
  Mat g = b.linear_part();
  Vec f0 = a.constant_part();
  Vec g0 = b.constant_part();
  for (int dim = 0; dim < f.rows(); ++dim) {
    i64 gcd = 0;
    for (int k = 0; k < f.cols(); ++k) {
      gcd = checked::gcd(gcd, f.at(dim, k));
      gcd = checked::gcd(gcd, g.at(dim, k));
    }
    i64 c = checked::sub(g0[static_cast<std::size_t>(dim)],
                         f0[static_cast<std::size_t>(dim)]);
    if (gcd == 0) {
      if (c != 0) return false;  // 0 = c unsolvable
      continue;
    }
    if (c % gcd != 0) return false;
  }
  return true;
}

bool exact_equation_test(const loopir::ArrayRef& a, const loopir::ArrayRef& b) {
  return solve_pair(a, b).exists;
}

namespace {

// Rectangular hull [lo_k, hi_k] of each loop from its bound extremes.
// For affine (triangular) bounds this uses FM to get the global range.
std::vector<std::pair<i64, i64>> iteration_box(const loopir::LoopNest& nest) {
  poly::ConstraintSystem cs = poly::ConstraintSystem::from_nest(nest);
  std::vector<std::pair<i64, i64>> box;
  for (int k = 0; k < nest.depth(); ++k) {
    auto r = cs.variable_range(k);
    VDEP_REQUIRE(r.has_value(), "iteration space unbounded in loop " +
                                    nest.level(k).name);
    box.push_back(*r);
  }
  return box;
}

}  // namespace

bool banerjee_test(const loopir::LoopNest& nest, const loopir::ArrayRef& a,
                   const loopir::ArrayRef& b) {
  VDEP_REQUIRE(a.array == b.array && a.arity() == b.arity(),
               "banerjee_test on incompatible references");
  auto box = iteration_box(nest);
  Mat f = a.linear_part();
  Mat g = b.linear_part();
  Vec f0 = a.constant_part();
  Vec g0 = b.constant_part();
  // Dependence form per array dimension: sum_k f_k * i_k - sum_k g_k * j_k
  // must equal c = g0 - f0 for some i, j in the box. Independence proof:
  // c outside [min, max] of the form.
  for (int dim = 0; dim < f.rows(); ++dim) {
    i64 lo = 0, hi = 0;
    for (int k = 0; k < f.cols(); ++k) {
      auto [bl, bh] = box[static_cast<std::size_t>(k)];
      i64 fc = f.at(dim, k);
      lo = checked::add(lo, checked::mul(fc, fc >= 0 ? bl : bh));
      hi = checked::add(hi, checked::mul(fc, fc >= 0 ? bh : bl));
      i64 gc = checked::neg(g.at(dim, k));
      lo = checked::add(lo, checked::mul(gc, gc >= 0 ? bl : bh));
      hi = checked::add(hi, checked::mul(gc, gc >= 0 ? bh : bl));
    }
    i64 c = checked::sub(g0[static_cast<std::size_t>(dim)],
                         f0[static_cast<std::size_t>(dim)]);
    if (c < lo || c > hi) return false;
  }
  return true;
}

TestVerdicts run_all_tests(const loopir::LoopNest& nest,
                           const loopir::ArrayRef& a,
                           const loopir::ArrayRef& b) {
  TestVerdicts v;
  v.gcd = gcd_test(a, b);
  v.banerjee = banerjee_test(nest, a, b);
  v.exact = exact_equation_test(a, b);
  return v;
}

}  // namespace vdep::dep
