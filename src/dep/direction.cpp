#include "dep/direction.h"

#include <algorithm>
#include <set>

#include "poly/constraints.h"
#include "poly/fourier_motzkin.h"
#include "support/error.h"

namespace vdep::dep {

std::string to_string(const DirectionVector& dv) {
  std::string s = "(";
  for (std::size_t k = 0; k < dv.size(); ++k) {
    if (k) s += ",";
    s += dv[k] == Dir::kLt ? "<" : dv[k] == Dir::kEq ? "=" : ">";
  }
  return s + ")";
}

bool lex_positive(const DirectionVector& dv) {
  for (Dir d : dv) {
    if (d == Dir::kLt) return true;
    if (d == Dir::kGt) return false;
  }
  return false;  // all "=" is zero, not positive
}

namespace {

// Builds the (i, j) system: i and j inside the nest bounds plus the
// dependence equalities a(i) == b(j).
poly::ConstraintSystem pair_system(const loopir::LoopNest& nest,
                                   const loopir::ArrayRef& a,
                                   const loopir::ArrayRef& b) {
  int n = nest.depth();
  poly::ConstraintSystem base = poly::ConstraintSystem::from_nest(nest);
  poly::ConstraintSystem cs(2 * n);
  for (const poly::Constraint& c : base.constraints()) {
    // Bounds on i (variables 0..n-1).
    Vec ci(static_cast<std::size_t>(2 * n), 0);
    for (int k = 0; k < n; ++k) ci[static_cast<std::size_t>(k)] = c.coeffs[static_cast<std::size_t>(k)];
    cs.add(std::move(ci), c.rhs);
    // Bounds on j (variables n..2n-1).
    Vec cj(static_cast<std::size_t>(2 * n), 0);
    for (int k = 0; k < n; ++k) cj[static_cast<std::size_t>(n + k)] = c.coeffs[static_cast<std::size_t>(k)];
    cs.add(std::move(cj), c.rhs);
  }
  Mat f = a.linear_part();
  Mat g = b.linear_part();
  Vec f0 = a.constant_part();
  Vec g0 = b.constant_part();
  for (int dim = 0; dim < f.rows(); ++dim) {
    // f_dim . i - g_dim . j == g0 - f0, as <= and >=.
    Vec row(static_cast<std::size_t>(2 * n), 0);
    for (int k = 0; k < n; ++k) {
      row[static_cast<std::size_t>(k)] = f.at(dim, k);
      row[static_cast<std::size_t>(n + k)] = checked::neg(g.at(dim, k));
    }
    i64 c = checked::sub(g0[static_cast<std::size_t>(dim)],
                         f0[static_cast<std::size_t>(dim)]);
    cs.add(row, c);
    cs.add(intlin::negate(row), checked::neg(c));
  }
  return cs;
}

void refine(const loopir::LoopNest& nest, const poly::ConstraintSystem& cs,
            const PairDependence& sol, DirectionVector& prefix, int level,
            std::vector<DirectionVector>* out) {
  int n = nest.depth();
  if (level == n) {
    out->push_back(prefix);
    return;
  }
  for (Dir d : {Dir::kLt, Dir::kEq, Dir::kGt}) {
    poly::ConstraintSystem refined = cs;
    Vec row(static_cast<std::size_t>(2 * n), 0);
    row[static_cast<std::size_t>(level)] = 1;                 // i_k
    row[static_cast<std::size_t>(n + level)] = -1;            // -j_k
    switch (d) {
      case Dir::kLt:  // j_k - i_k >= 1  <=>  i_k - j_k <= -1
        refined.add(row, -1);
        break;
      case Dir::kEq:
        refined.add(row, 0);
        refined.add(intlin::negate(row), 0);
        break;
      case Dir::kGt:  // i_k - j_k >= 1  <=>  j_k - i_k <= -1
        refined.add(intlin::negate(row), -1);
        break;
    }
    if (poly::relaxation_infeasible(refined)) continue;
    prefix.push_back(d);
    refine(nest, refined, sol, prefix, level + 1, out);
    prefix.pop_back();
  }
}

}  // namespace

std::vector<DirectionVector> direction_vectors(const loopir::LoopNest& nest,
                                               const loopir::ArrayRef& a,
                                               const loopir::ArrayRef& b) {
  PairDependence sol = solve_pair(a, b);
  if (!sol.exists) return {};
  poly::ConstraintSystem cs = pair_system(nest, a, b);
  std::vector<DirectionVector> out;
  DirectionVector prefix;
  refine(nest, cs, sol, prefix, 0, &out);
  return out;
}

std::vector<DirectionVector> nest_direction_vectors(const loopir::LoopNest& nest) {
  std::set<DirectionVector> dedup;
  for (const DepPair& p : dependent_pairs(nest)) {
    for (DirectionVector dv : direction_vectors(nest, p.a, p.b)) {
      // Orient ">"-leading vectors by flipping source and sink.
      DirectionVector oriented = dv;
      for (std::size_t k = 0; k < dv.size(); ++k) {
        if (dv[k] == Dir::kEq) continue;
        if (dv[k] == Dir::kGt) {
          for (auto& e : oriented)
            e = e == Dir::kLt ? Dir::kGt : e == Dir::kGt ? Dir::kLt : Dir::kEq;
        }
        break;
      }
      bool all_eq = std::all_of(oriented.begin(), oriented.end(),
                                [](Dir d) { return d == Dir::kEq; });
      if (!all_eq) dedup.insert(std::move(oriented));
    }
  }
  return {dedup.begin(), dedup.end()};
}

}  // namespace vdep::dep
