#include "dep/pdm.h"

#include <sstream>

#include "intlin/det.h"
#include "support/error.h"

namespace vdep::dep {

Pdm::Pdm(int depth, Mat h, std::vector<DepPair> pairs)
    : depth_(depth), h_(std::move(h)), pairs_(std::move(pairs)) {
  VDEP_REQUIRE(h_.cols() == depth, "PDM width must equal loop depth");
  VDEP_REQUIRE(intlin::is_hermite_normal_form(h_) || h_.rows() == 0,
               "PDM must be in Hermite normal form");
}

std::vector<int> Pdm::zero_columns() const {
  std::vector<int> out;
  for (int c = 0; c < depth_; ++c)
    if (column_is_zero(c)) out.push_back(c);
  return out;
}

i64 Pdm::determinant() const {
  VDEP_REQUIRE(full_rank(), "PDM determinant requires full rank");
  return intlin::determinant(h_);
}

bool Pdm::all_uniform() const {
  for (const DepPair& p : pairs_)
    if (!p.solution.is_uniform()) return false;
  return true;
}

std::string Pdm::to_string() const {
  std::ostringstream os;
  os << "PDM (depth " << depth_ << ", rank " << rank() << "): "
     << h_.to_string();
  return os.str();
}

Pdm compute_pdm(const loopir::LoopNest& nest) {
  if (nest.has_indirection())
    throw UnsupportedError(
        "PDM analysis requires affine subscripts; indirect references "
        "(A[B[i]]) need the runtime inspector (ExecBackend::kInspector)");
  std::vector<DepPair> pairs = dependent_pairs(nest);
  Mat stacked(0, nest.depth());
  for (const DepPair& p : pairs) {
    Mat basis = p.solution.pdm_lattice().basis();
    for (int r = 0; r < basis.rows(); ++r) stacked.push_row(basis.row(r));
  }
  Mat h = intlin::hermite_normal_form(stacked);
  return Pdm(nest.depth(), std::move(h), std::move(pairs));
}

}  // namespace vdep::dep
