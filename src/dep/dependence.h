// Dependence equations between two affine array references and their exact
// integer solution (paper Section 2.2).
//
// For references a(i) = F*i + f0 (accessed at iteration i) and
// b(j) = G*j + g0 (accessed at iteration j), the two touch the same element
// iff (i,j) * [F^T; -G^T] = g0 - f0 — a linear Diophantine row system.
// Solving it with the echelon machinery yields the full solution set; its
// projection onto d = j - i is an *affine distance lattice*
//     d in delta0 + row-lattice(G_d)
// which is the paper's equation (2.13): the distance between dependent
// iterations is variable, but structured.
#pragma once

#include "intlin/diophantine.h"
#include "intlin/lattice.h"
#include "loopir/nest.h"

namespace vdep::dep {

using intlin::i64;
using intlin::Lattice;
using intlin::Mat;
using intlin::Vec;

/// Classification of a dependence between two references.
enum class DepKind {
  kFlow,    ///< write at source, read at sink
  kAnti,    ///< read at source, write at sink
  kOutput,  ///< write at both
};

const char* to_string(DepKind k);

/// Exact solution of the dependence equations for one ordered reference
/// pair, ignoring loop bounds (the paper's unbounded analysis: bounds enter
/// only at code generation).
struct PairDependence {
  bool exists = false;  ///< integer solutions exist at all (exact test)
  int depth = 0;        ///< loop depth n

  /// A particular distance delta0 = j0 - i0 (any solution).
  Vec offset;
  /// Rows generate the homogeneous distance lattice (the U_phi * S rows of
  /// equation (2.13)); the full distance set is offset + lattice(generators),
  /// taken in both signs.
  Mat generators;

  /// The pair's contribution to the PDM: lattice(generators ∪ {offset}) —
  /// equation (2.15)/(2.17). Contains every direct and transitive distance.
  Lattice pdm_lattice() const;

  /// Whether distance d (or -d) can separate two dependent iterations in an
  /// unbounded nest: d ∈ ±(offset + lattice(generators)).
  bool admits_distance(const Vec& d) const;

  /// True iff the distance is a single constant vector (Corollary 5):
  /// generators empty — both linear parts nonsingular and equal rank.
  bool is_uniform() const;
};

/// Solve the dependence equations for references a (at iteration i) and
/// b (at iteration j). Both must have the same array and arity.
PairDependence solve_pair(const loopir::ArrayRef& a, const loopir::ArrayRef& b);

/// A dependent reference pair discovered in a loop nest.
struct DepPair {
  loopir::ArrayRef a;
  loopir::ArrayRef b;
  int stmt_a = 0;
  int stmt_b = 0;
  DepKind kind = DepKind::kFlow;
  PairDependence solution;
};

/// All dependent pairs of the nest: every (write, write) and (write, read)
/// combination on the same array, including a reference paired with itself,
/// keeping only pairs whose equations are solvable.
std::vector<DepPair> dependent_pairs(const loopir::LoopNest& nest);

}  // namespace vdep::dep
