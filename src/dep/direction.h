// Hierarchical direction-vector computation (Wolf & Lam style).
//
// A direction vector assigns each loop level one of {<, =, >, *}; the
// dependence "i -> j with sign(j_k - i_k) matching the symbol at every k".
// This is the dependence abstraction of the Wolf/Lam baseline in Table 1 —
// strictly less precise than the PDM for linear subscripts, which is the
// comparison the paper draws.
//
// Feasibility of a candidate vector combines (a) the exact integer equation
// test and (b) rational feasibility of the sign-constrained system over the
// iteration bounds (Fourier-Motzkin), the standard practical compromise.
#pragma once

#include <string>
#include <vector>

#include "dep/dependence.h"

namespace vdep::dep {

enum class Dir : unsigned char { kLt, kEq, kGt };

using DirectionVector = std::vector<Dir>;

std::string to_string(const DirectionVector& dv);

/// All feasible direction vectors of the (a, b) pair within the bounds of
/// `nest`, in lexicographic (<, =, >) order. The all-"=" vector (loop
/// independent) is included when feasible.
std::vector<DirectionVector> direction_vectors(const loopir::LoopNest& nest,
                                               const loopir::ArrayRef& a,
                                               const loopir::ArrayRef& b);

/// Direction vectors of every dependent pair in the nest, deduplicated and
/// restricted to lexicographically non-negative vectors (a ">" first
/// component is re-oriented by swapping source and sink).
std::vector<DirectionVector> nest_direction_vectors(const loopir::LoopNest& nest);

/// Lexicographically positive: some "<" before any ">".
bool lex_positive(const DirectionVector& dv);

}  // namespace vdep::dep
