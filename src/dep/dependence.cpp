#include "dep/dependence.h"

#include "support/error.h"

namespace vdep::dep {

const char* to_string(DepKind k) {
  switch (k) {
    case DepKind::kFlow:
      return "flow";
    case DepKind::kAnti:
      return "anti";
    case DepKind::kOutput:
      return "output";
  }
  return "?";
}

Lattice PairDependence::pdm_lattice() const {
  VDEP_REQUIRE(exists, "pdm_lattice of a non-existent dependence");
  Mat gens = generators;
  gens.push_row(offset);
  return Lattice::from_generators(gens);
}

bool PairDependence::admits_distance(const Vec& d) const {
  if (!exists) return false;
  Lattice hom = Lattice::from_generators(generators);
  if (hom.contains(intlin::sub(d, offset))) return true;
  Vec nd = intlin::negate(d);
  return hom.contains(intlin::sub(nd, offset));
}

bool PairDependence::is_uniform() const {
  if (!exists) return false;
  return intlin::echelon_reduce(generators).rank == 0;
}

PairDependence solve_pair(const loopir::ArrayRef& a, const loopir::ArrayRef& b) {
  VDEP_REQUIRE(a.array == b.array, "dependence pair on different arrays");
  VDEP_REQUIRE(a.arity() == b.arity(), "dependence pair arity mismatch");

  Mat f = a.linear_part();  // m x n (column convention)
  Mat g = b.linear_part();
  int n = f.cols();
  int m = f.rows();

  PairDependence out;
  out.depth = n;

  // (i, j) * [F^T; -G^T] = g0 - f0.
  Mat stacked(2 * n, m);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < m; ++c) {
      stacked.at(r, c) = f.at(c, r);
      stacked.at(n + r, c) = checked::neg(g.at(c, r));
    }
  Vec rhs = intlin::sub(b.constant_part(), a.constant_part());

  intlin::RowSolution sol = intlin::solve_row_system(stacked, rhs);
  if (!sol.solvable) return out;

  out.exists = true;
  // Project x = (i, j) onto d = j - i: d = x * S with S = [-I; I].
  auto project = [n](const Vec& x) {
    Vec d(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k)
      d[static_cast<std::size_t>(k)] =
          checked::sub(x[static_cast<std::size_t>(n + k)],
                       x[static_cast<std::size_t>(k)]);
    return d;
  };
  out.offset = project(sol.particular);
  out.generators = Mat(0, n);
  for (int r = 0; r < sol.homogeneous.rows(); ++r)
    out.generators.push_row(project(sol.homogeneous.row(r)));
  return out;
}

std::vector<DepPair> dependent_pairs(const loopir::LoopNest& nest) {
  std::vector<DepPair> out;
  auto accesses = nest.accesses();
  for (std::size_t x = 0; x < accesses.size(); ++x) {
    for (std::size_t y = 0; y < accesses.size(); ++y) {
      const auto& src = accesses[x];
      const auto& dst = accesses[y];
      if (src.ref.array != dst.ref.array) continue;
      if (!src.is_write && !dst.is_write) continue;  // input deps don't order
      // Unordered pair handled once: the distance lattice covers both
      // directions (±). Keep x <= y over the access list.
      if (x > y) continue;
      DepKind kind = src.is_write && dst.is_write ? DepKind::kOutput
                     : src.is_write              ? DepKind::kFlow
                                                 : DepKind::kAnti;
      PairDependence sol = solve_pair(src.ref, dst.ref);
      if (!sol.exists) continue;
      out.push_back(DepPair{src.ref, dst.ref, src.statement, dst.statement,
                            kind, std::move(sol)});
    }
  }
  return out;
}

}  // namespace vdep::dep
