// Classical dependence tests, kept as baselines for the related-work
// comparison (paper Table 1) and as cheap pre-filters:
//
//  * per-dimension GCD test (Banerjee/Wolfe): a necessary integer condition
//    checked one array dimension at a time;
//  * exact multi-dimensional equation test: the echelon solver of
//    dep/dependence.h (subsumes the GCD test);
//  * Banerjee bounds test: real-valued min/max of the dependence form over
//    the iteration box — a necessary *real* condition using loop bounds.
#pragma once

#include "dep/dependence.h"
#include "support/rational.h"

namespace vdep::dep {

/// Per-dimension GCD test. Returns false only when some array dimension has
/// gcd(coefficients) not dividing the constant difference — a proof of
/// independence. True means "dependence not disproved".
bool gcd_test(const loopir::ArrayRef& a, const loopir::ArrayRef& b);

/// Exact equation test: integer solutions to the full (coupled) system
/// exist. Strictly stronger than gcd_test.
bool exact_equation_test(const loopir::ArrayRef& a, const loopir::ArrayRef& b);

/// Banerjee bounds test over the rectangular hull of the iteration space of
/// `nest` (bounds of each loop evaluated to their extreme constants): for
/// each array dimension, the constant must lie between the real min and max
/// of the dependence form. Returns false only on a proof of independence.
bool banerjee_test(const loopir::LoopNest& nest, const loopir::ArrayRef& a,
                   const loopir::ArrayRef& b);

/// Convenience: combined verdict for a pair in a nest, ordered weakest to
/// strongest (gcd -> banerjee -> exact).
struct TestVerdicts {
  bool gcd = true;
  bool banerjee = true;
  bool exact = true;
};
TestVerdicts run_all_tests(const loopir::LoopNest& nest,
                           const loopir::ArrayRef& a,
                           const loopir::ArrayRef& b);

}  // namespace vdep::dep
