// The Pseudo Distance Matrix (paper Section 2.3).
//
// Every dependence distance in the loop — direct or transitive, for every
// reference pair — is an integer combination of the rows of the PDM. The
// PDM is the Hermite Normal Form of the stacked per-pair lattice generators
// (equation (2.21)), so its rows are lexicographically positive and it is
// canonical for the loop's distance lattice.
#pragma once

#include "dep/dependence.h"

namespace vdep::dep {

class Pdm {
 public:
  /// Empty placeholder (depth 0) so report structs can default-construct.
  Pdm() = default;
  /// The trivial PDM of a dependence-free nest: zero rows.
  explicit Pdm(int depth) : depth_(depth), h_(0, depth) {}
  Pdm(int depth, Mat h, std::vector<DepPair> pairs);

  int depth() const { return depth_; }
  /// The PDM itself: an HNF with rank() lexicographically positive rows.
  const Mat& matrix() const { return h_; }
  int rank() const { return h_.rows(); }
  bool full_rank() const { return rank() == depth_; }
  bool empty() const { return rank() == 0; }

  /// Lemma 1: a zero column means the corresponding loop is DOALL as-is.
  bool column_is_zero(int k) const { return h_.col_is_zero(k); }
  std::vector<int> zero_columns() const;

  /// The loop's distance lattice (row lattice of the PDM).
  Lattice lattice() const { return Lattice::from_generators(h_); }

  /// det of the PDM when full rank: the partition count of Theorem 2.
  i64 determinant() const;

  /// Per-pair analysis details (reporting / diagnostics).
  const std::vector<DepPair>& pairs() const { return pairs_; }

  /// True iff every pair has a single constant distance vector — the
  /// classical uniform-dependence case (Corollary 5).
  bool all_uniform() const;

  std::string to_string() const;

 private:
  int depth_ = 0;
  Mat h_;
  std::vector<DepPair> pairs_;
};

/// Analyze the nest: solve every pair and merge the per-pair lattices into
/// the loop PDM (equation (2.21)).
Pdm compute_pdm(const loopir::LoopNest& nest);

}  // namespace vdep::dep
