// Fluent construction of loop nests.
//
//   LoopNestBuilder b;
//   b.loop("i1", -10, 10).loop("i2", -10, 10);
//   b.array("A", {{-40, 40}, {-40, 40}});
//   b.assign(b.ref("A", {b.idx(0) + b.idx(1)}), ...);
//   LoopNest nest = b.build();
#pragma once

#include "loopir/nest.h"

namespace vdep::loopir {

class LoopNestBuilder {
 public:
  /// Adds a loop with constant bounds [lo, hi].
  LoopNestBuilder& loop(const std::string& name, i64 lo, i64 hi);
  /// Adds a loop with affine bounds over the outer indices.
  LoopNestBuilder& loop(const std::string& name, Bound lower, Bound upper);
  /// Declares an array with inclusive per-dimension ranges.
  LoopNestBuilder& array(const std::string& name,
                         std::vector<std::pair<i64, i64>> dims);
  /// Appends `lhs = rhs` to the body.
  LoopNestBuilder& assign(ArrayRef lhs, ExprPtr rhs);

  /// Affine helpers bound to the *final* depth of the nest; call after all
  /// loops are declared.
  AffineExpr idx(int k) const;
  AffineExpr cst(i64 c) const;
  /// Affine expression c0 + sum coeffs[k]*i_k.
  AffineExpr affine(const Vec& coeffs, i64 c0) const;
  /// Array reference with affine subscripts.
  ArrayRef ref(const std::string& array, std::vector<AffineExpr> subscripts) const;
  /// Read expression.
  ExprPtr read(const std::string& array, std::vector<AffineExpr> subscripts) const;

  /// Validates and returns the nest.
  LoopNest build() const;

  int depth() const { return static_cast<int>(levels_.size()); }

 private:
  std::vector<Level> levels_;
  std::vector<ArrayDecl> arrays_;
  std::vector<Assign> body_;
  // Bounds/exprs are created against this depth; fixed at build() time.
};

}  // namespace vdep::loopir
