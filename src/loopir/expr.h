// Right-hand-side expression trees for loop-body statements.
//
// The dependence analysis only needs the *array references* (collected from
// the tree); the interpreter evaluates the full tree so transformed loops
// can be checked for semantic equivalence against the original execution.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "loopir/affine.h"

namespace vdep::loopir {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One level of subscript indirection: the subscript value is
/// `index_array[pos]` where `pos` is affine over the loop indices and the
/// index array is 1-D and read-only for the lifetime of the nest. This is
/// the minimal representation needed for `A[B[i]]` gather/scatter nests,
/// which the static PDM analysis rejects and the inspector path handles.
struct IndirectSubscript {
  std::string array;
  AffineExpr pos;

  bool operator==(const IndirectSubscript& o) const = default;
};

/// A reference A[s_1, ..., s_m]. Each subscript s_k is either affine over
/// the loop indices (the common case the whole static pipeline handles) or
/// indirect (`indirect[k]` engaged; the affine entry is a placeholder and
/// must not be consulted).
struct ArrayRef {
  std::string array;
  std::vector<AffineExpr> subscripts;
  /// Per-slot indirection. Empty for fully-affine references; otherwise the
  /// same length as `subscripts` with engaged optionals at indirect slots.
  std::vector<std::optional<IndirectSubscript>> indirect;

  int arity() const { return static_cast<int>(subscripts.size()); }
  /// True if any subscript slot goes through an index array.
  bool has_indirection() const;
  /// Element coordinates touched at iteration `iter`. Affine references
  /// only — indirect slots need store contents (see exec::element_coords).
  Vec element_at(const Vec& iter) const;
  /// Linear part as an arity x depth matrix F (subscripts = F*i + f0).
  /// Affine references only.
  intlin::Mat linear_part() const;
  /// Constant part f0. Affine references only.
  Vec constant_part() const;
  /// Reference with every subscript rewritten over new indices j = i*T^{-1}
  /// ... i.e. subscripts'(j) = subscripts(j*T). Indirect positions are
  /// rewritten the same way.
  ArrayRef substituted(const intlin::Mat& t) const;

  bool operator==(const ArrayRef& o) const = default;
  std::string to_string(const std::vector<std::string>& names) const;
};

class Expr {
 public:
  enum class Kind { kConst, kRead, kAdd, kSub, kMul, kIndex };

  Kind kind() const { return kind_; }
  i64 value() const { return value_; }                // kConst
  const ArrayRef& ref() const { return ref_; }        // kRead
  int index() const { return index_; }                // kIndex
  const ExprPtr& lhs() const { return lhs_; }         // binary nodes
  const ExprPtr& rhs() const { return rhs_; }

  static ExprPtr constant(i64 v);
  static ExprPtr read(ArrayRef ref);
  static ExprPtr index(int k);
  static ExprPtr add(ExprPtr a, ExprPtr b);
  static ExprPtr sub(ExprPtr a, ExprPtr b);
  static ExprPtr mul(ExprPtr a, ExprPtr b);

  /// Collect every array read in the tree (pre-order).
  void collect_reads(std::vector<ArrayRef>* out) const;

  /// Visit every array read in the tree (same pre-order) without
  /// materializing copies — the hot-path variant for fingerprinting and
  /// validation.
  template <typename Fn>
  void for_each_read(Fn&& fn) const {
    if (kind_ == Kind::kRead) fn(ref_);
    if (lhs_) lhs_->for_each_read(fn);
    if (rhs_) rhs_->for_each_read(fn);
  }

  /// The same tree with all array references substituted (j -> j*T).
  ExprPtr substituted(const intlin::Mat& t) const;

  std::string to_string(const std::vector<std::string>& names) const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kConst;
  i64 value_ = 0;
  int index_ = -1;
  ArrayRef ref_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// An assignment statement: lhs_array[subscripts] = rhs.
struct Assign {
  ArrayRef lhs;
  ExprPtr rhs;

  std::string to_string(const std::vector<std::string>& names) const;
};

}  // namespace vdep::loopir
