#include "loopir/affine.h"

#include <sstream>

#include "support/error.h"

namespace vdep::loopir {

AffineExpr AffineExpr::constant(int depth, i64 c) {
  AffineExpr e(depth);
  e.constant_ = c;
  return e;
}

AffineExpr AffineExpr::index(int depth, int k) {
  VDEP_REQUIRE(k >= 0 && k < depth, "index out of range in AffineExpr::index");
  AffineExpr e(depth);
  e.coeffs_[static_cast<std::size_t>(k)] = 1;
  return e;
}

i64 AffineExpr::coeff(int k) const {
  VDEP_REQUIRE(k >= 0 && k < depth(), "coeff index out of range");
  return coeffs_[static_cast<std::size_t>(k)];
}

int AffineExpr::last_index_used() const {
  for (int k = depth() - 1; k >= 0; --k)
    if (coeffs_[static_cast<std::size_t>(k)] != 0) return k;
  return -1;
}

i64 AffineExpr::eval(const Vec& iter) const {
  VDEP_REQUIRE(iter.size() == coeffs_.size(), "iteration vector depth mismatch");
  i64 acc = constant_;
  for (std::size_t k = 0; k < coeffs_.size(); ++k)
    acc = checked::fma(acc, coeffs_[k], iter[k]);
  return acc;
}

AffineExpr AffineExpr::operator+(const AffineExpr& o) const {
  return AffineExpr(intlin::add(coeffs_, o.coeffs_),
                    checked::add(constant_, o.constant_));
}

AffineExpr AffineExpr::operator-(const AffineExpr& o) const {
  return AffineExpr(intlin::sub(coeffs_, o.coeffs_),
                    checked::sub(constant_, o.constant_));
}

AffineExpr AffineExpr::scaled(i64 k) const {
  return AffineExpr(intlin::scale(coeffs_, k), checked::mul(constant_, k));
}

AffineExpr AffineExpr::plus_constant(i64 c) const {
  return AffineExpr(coeffs_, checked::add(constant_, c));
}

AffineExpr AffineExpr::substitute(const intlin::Mat& t) const {
  VDEP_REQUIRE(t.rows() == depth(), "substitution matrix depth mismatch");
  // value(j) = coeffs . (j*T) + c = (T * coeffs^T) . j + c.
  return AffineExpr(intlin::mat_vec_mul(t, coeffs_), constant_);
}

std::string AffineExpr::to_string(const std::vector<std::string>& names) const {
  VDEP_REQUIRE(names.size() == coeffs_.size(), "name list depth mismatch");
  std::ostringstream os;
  bool first = true;
  for (std::size_t k = 0; k < coeffs_.size(); ++k) {
    i64 c = coeffs_[k];
    if (c == 0) continue;
    if (first) {
      if (c == -1)
        os << "-";
      else if (c != 1)
        os << c << "*";
    } else {
      os << (c > 0 ? " + " : " - ");
      i64 a = checked::abs(c);
      if (a != 1) os << a << "*";
    }
    os << names[k];
    first = false;
  }
  if (first) {
    os << constant_;
  } else if (constant_ != 0) {
    os << (constant_ > 0 ? " + " : " - ") << checked::abs(constant_);
  }
  return os.str();
}

i64 Bound::eval_lower(const Vec& iter) const {
  VDEP_REQUIRE(!terms_.empty(), "evaluating an empty bound");
  i64 best = 0;
  bool have = false;
  for (const BoundTerm& t : terms_) {
    i64 v = checked::ceil_div(t.num.eval(iter), t.den);
    if (!have || v > best) best = v;
    have = true;
  }
  return best;
}

i64 Bound::eval_upper(const Vec& iter) const {
  VDEP_REQUIRE(!terms_.empty(), "evaluating an empty bound");
  i64 best = 0;
  bool have = false;
  for (const BoundTerm& t : terms_) {
    i64 v = checked::floor_div(t.num.eval(iter), t.den);
    if (!have || v < best) best = v;
    have = true;
  }
  return best;
}

int Bound::last_index_used() const {
  int last = -1;
  for (const BoundTerm& t : terms_) last = std::max(last, t.num.last_index_used());
  return last;
}

std::string Bound::to_string(const std::vector<std::string>& names,
                             bool lower) const {
  std::ostringstream os;
  if (terms_.size() > 1) os << (lower ? "max(" : "min(");
  bool first = true;
  for (const BoundTerm& t : terms_) {
    if (!first) os << ", ";
    first = false;
    if (t.den != 1) {
      os << (lower ? "ceil(" : "floor(") << t.num.to_string(names) << ", "
         << t.den << ")";
    } else {
      os << t.num.to_string(names);
    }
  }
  if (terms_.size() > 1) os << ")";
  return os.str();
}

}  // namespace vdep::loopir
