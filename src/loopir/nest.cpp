#include "loopir/nest.h"

#include <sstream>

#include "support/error.h"

namespace vdep::loopir {

i64 ArrayDecl::element_count() const {
  i64 n = 1;
  for (const auto& [lo, hi] : dims) {
    VDEP_REQUIRE(lo <= hi, "array " + name + " has an empty dimension");
    n = checked::mul(n, checked::add(checked::sub(hi, lo), 1));
  }
  return n;
}

i64 ArrayDecl::linear_index(const Vec& coords) const {
  VDEP_REQUIRE(static_cast<int>(coords.size()) == arity(),
               "subscript arity mismatch for array " + name);
  i64 idx = 0;
  for (std::size_t k = 0; k < dims.size(); ++k) {
    auto [lo, hi] = dims[k];
    VDEP_REQUIRE(coords[k] >= lo && coords[k] <= hi,
                 "array " + name + " subscript out of declared range");
    i64 extent = hi - lo + 1;
    idx = checked::add(checked::mul(idx, extent), checked::sub(coords[k], lo));
  }
  return idx;
}

bool ArrayDecl::in_range(const Vec& coords) const {
  if (static_cast<int>(coords.size()) != arity()) return false;
  for (std::size_t k = 0; k < dims.size(); ++k)
    if (coords[k] < dims[k].first || coords[k] > dims[k].second) return false;
  return true;
}

LoopNest::LoopNest(std::vector<Level> levels, std::vector<ArrayDecl> arrays,
                   std::vector<Assign> body)
    : levels_(std::move(levels)),
      arrays_(std::move(arrays)),
      body_(std::move(body)) {
  validate();
}

const Level& LoopNest::level(int k) const {
  VDEP_REQUIRE(k >= 0 && k < depth(), "loop level out of range");
  return levels_[static_cast<std::size_t>(k)];
}

std::vector<std::string> LoopNest::index_names() const {
  std::vector<std::string> names;
  names.reserve(levels_.size());
  for (const Level& l : levels_) names.push_back(l.name);
  return names;
}

const ArrayDecl& LoopNest::array(const std::string& name) const {
  for (const ArrayDecl& a : arrays_)
    if (a.name == name) return a;
  throw PreconditionError("unknown array: " + name);
}

bool LoopNest::has_array(const std::string& name) const {
  for (const ArrayDecl& a : arrays_)
    if (a.name == name) return true;
  return false;
}

std::vector<LoopNest::Access> LoopNest::accesses() const {
  std::vector<Access> out;
  for (std::size_t s = 0; s < body_.size(); ++s) {
    out.push_back({body_[s].lhs, static_cast<int>(s), true});
    std::vector<ArrayRef> reads;
    body_[s].rhs->collect_reads(&reads);
    for (ArrayRef& r : reads)
      out.push_back({std::move(r), static_cast<int>(s), false});
  }
  return out;
}

bool LoopNest::has_indirection() const {
  bool found = false;
  for_each_access([&](const ArrayRef& ref, int, bool) {
    if (ref.has_indirection()) found = true;
  });
  return found;
}

bool LoopNest::is_index_array(const std::string& name) const {
  bool found = false;
  for_each_access([&](const ArrayRef& ref, int, bool) {
    for (const auto& ind : ref.indirect)
      if (ind.has_value() && ind->array == name) found = true;
  });
  return found;
}

void LoopNest::validate() const {
  VDEP_REQUIRE(!levels_.empty(), "loop nest must have at least one level");
  for (int k = 0; k < depth(); ++k) {
    const Level& l = levels_[static_cast<std::size_t>(k)];
    VDEP_REQUIRE(!l.lower.empty() && !l.upper.empty(),
                 "loop " + l.name + " is missing a bound");
    VDEP_REQUIRE(l.lower.last_index_used() < k,
                 "lower bound of " + l.name + " references an inner index");
    VDEP_REQUIRE(l.upper.last_index_used() < k,
                 "upper bound of " + l.name + " references an inner index");
    for (const BoundTerm& t : l.lower.terms()) {
      VDEP_REQUIRE(t.den > 0, "bound divisor must be positive");
      VDEP_REQUIRE(t.num.depth() == depth(), "bound depth mismatch");
    }
    for (const BoundTerm& t : l.upper.terms()) {
      VDEP_REQUIRE(t.den > 0, "bound divisor must be positive");
      VDEP_REQUIRE(t.num.depth() == depth(), "bound depth mismatch");
    }
  }
  for_each_access([&](const ArrayRef& ref, int, bool) {
    VDEP_REQUIRE(has_array(ref.array), "undeclared array " + ref.array);
    const ArrayDecl& decl = array(ref.array);
    VDEP_REQUIRE(ref.arity() == decl.arity(),
                 "reference arity mismatch for array " + ref.array);
    for (const AffineExpr& s : ref.subscripts)
      VDEP_REQUIRE(s.depth() == depth(),
                   "subscript depth mismatch in array " + ref.array);
    if (!ref.indirect.empty()) {
      VDEP_REQUIRE(ref.indirect.size() == ref.subscripts.size(),
                   "indirect-slot count mismatch in array " + ref.array);
      for (const auto& ind : ref.indirect) {
        if (!ind.has_value()) continue;
        VDEP_REQUIRE(has_array(ind->array),
                     "undeclared index array " + ind->array);
        VDEP_REQUIRE(array(ind->array).arity() == 1,
                     "index array " + ind->array + " must be 1-D");
        VDEP_REQUIRE(ind->pos.depth() == depth(),
                     "indirect position depth mismatch in array " + ref.array);
      }
    }
  });
  // Index arrays must stay read-only: the inspector evaluates indirect
  // subscripts against the *initial* store and the resulting partition is
  // only valid for the whole run if no statement mutates an index array.
  for (const Assign& a : body_) {
    for_each_access([&](const ArrayRef& ref, int, bool) {
      for (const auto& ind : ref.indirect)
        if (ind.has_value())
          VDEP_REQUIRE(ind->array != a.lhs.array,
                       "index array " + ind->array +
                           " must be read-only but is written by the nest");
    });
  }
}

void LoopNest::enumerate(int k, Vec& iter,
                         const std::function<void(const Vec&)>& fn) const {
  if (k == depth()) {
    fn(iter);
    return;
  }
  const Level& l = levels_[static_cast<std::size_t>(k)];
  i64 lo = l.lower.eval_lower(iter);
  i64 hi = l.upper.eval_upper(iter);
  for (i64 v = lo; v <= hi; ++v) {
    iter[static_cast<std::size_t>(k)] = v;
    enumerate(k + 1, iter, fn);
  }
  iter[static_cast<std::size_t>(k)] = 0;
}

void LoopNest::for_each_iteration(const std::function<void(const Vec&)>& fn) const {
  Vec iter(static_cast<std::size_t>(depth()), 0);
  enumerate(0, iter, fn);
}

std::vector<Vec> LoopNest::iterations() const {
  std::vector<Vec> out;
  for_each_iteration([&](const Vec& i) { out.push_back(i); });
  return out;
}

i64 LoopNest::iteration_count() const {
  i64 n = 0;
  for_each_iteration([&](const Vec&) { ++n; });
  return n;
}

bool LoopNest::contains(const Vec& iter) const {
  if (static_cast<int>(iter.size()) != depth()) return false;
  for (int k = 0; k < depth(); ++k) {
    const Level& l = levels_[static_cast<std::size_t>(k)];
    if (iter[static_cast<std::size_t>(k)] < l.lower.eval_lower(iter)) return false;
    if (iter[static_cast<std::size_t>(k)] > l.upper.eval_upper(iter)) return false;
  }
  return true;
}

std::string LoopNest::to_string() const {
  std::ostringstream os;
  std::vector<std::string> names = index_names();
  std::string indent;
  for (int k = 0; k < depth(); ++k) {
    const Level& l = levels_[static_cast<std::size_t>(k)];
    os << indent << (l.parallel ? "doall " : "do ") << l.name << " = "
       << l.lower.to_string(names, /*lower=*/true) << ", "
       << l.upper.to_string(names, /*lower=*/false) << "\n";
    indent += "  ";
  }
  for (const Assign& a : body_) os << indent << a.to_string(names) << "\n";
  for (int k = depth() - 1; k >= 0; --k) {
    indent.resize(indent.size() - 2);
    os << indent << "enddo\n";
  }
  return os.str();
}

}  // namespace vdep::loopir
