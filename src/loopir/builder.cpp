#include "loopir/builder.h"

#include "support/error.h"

namespace vdep::loopir {

LoopNestBuilder& LoopNestBuilder::loop(const std::string& name, i64 lo, i64 hi) {
  Level l;
  l.name = name;
  // Depth is patched at build() time; store a placeholder depth equal to the
  // current level count + 1 and extend later. To keep things simple the
  // builder requires all loops to be declared before affine helpers are
  // used, so bounds here are depth-agnostic constants stored directly.
  l.lower = Bound(AffineExpr::constant(0, lo));
  l.upper = Bound(AffineExpr::constant(0, hi));
  levels_.push_back(std::move(l));
  return *this;
}

LoopNestBuilder& LoopNestBuilder::loop(const std::string& name, Bound lower,
                                       Bound upper) {
  Level l;
  l.name = name;
  l.lower = std::move(lower);
  l.upper = std::move(upper);
  levels_.push_back(std::move(l));
  return *this;
}

LoopNestBuilder& LoopNestBuilder::array(const std::string& name,
                                        std::vector<std::pair<i64, i64>> dims) {
  arrays_.push_back(ArrayDecl{name, std::move(dims)});
  return *this;
}

LoopNestBuilder& LoopNestBuilder::assign(ArrayRef lhs, ExprPtr rhs) {
  body_.push_back(Assign{std::move(lhs), std::move(rhs)});
  return *this;
}

AffineExpr LoopNestBuilder::idx(int k) const {
  VDEP_REQUIRE(k >= 0 && k < depth(), "idx(k) out of declared loop range");
  return AffineExpr::index(depth(), k);
}

AffineExpr LoopNestBuilder::cst(i64 c) const {
  return AffineExpr::constant(depth(), c);
}

AffineExpr LoopNestBuilder::affine(const Vec& coeffs, i64 c0) const {
  VDEP_REQUIRE(static_cast<int>(coeffs.size()) == depth(),
               "affine() coefficient count mismatch");
  return AffineExpr(coeffs, c0);
}

ArrayRef LoopNestBuilder::ref(const std::string& array,
                              std::vector<AffineExpr> subscripts) const {
  return ArrayRef{array, std::move(subscripts)};
}

ExprPtr LoopNestBuilder::read(const std::string& array,
                              std::vector<AffineExpr> subscripts) const {
  return Expr::read(ref(array, std::move(subscripts)));
}

LoopNest LoopNestBuilder::build() const {
  // Normalize bound expressions to the final depth (constant bounds were
  // stored with depth 0 placeholders).
  std::vector<Level> levels = levels_;
  int n = depth();
  for (Level& l : levels) {
    auto fix = [&](Bound& b) {
      std::vector<BoundTerm> terms;
      for (const BoundTerm& t : b.terms()) {
        if (t.num.depth() == n) {
          terms.push_back(t);
        } else {
          VDEP_REQUIRE(t.num.is_constant(),
                       "non-constant bound with wrong depth in builder");
          terms.push_back({AffineExpr::constant(n, t.num.constant_term()), t.den});
        }
      }
      b = Bound(std::move(terms));
    };
    fix(l.lower);
    fix(l.upper);
  }
  return LoopNest(std::move(levels), arrays_, body_);
}

}  // namespace vdep::loopir
