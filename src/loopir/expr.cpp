#include "loopir/expr.h"

#include <sstream>

#include "support/error.h"

namespace vdep::loopir {

bool ArrayRef::has_indirection() const {
  for (const auto& ind : indirect)
    if (ind.has_value()) return true;
  return false;
}

Vec ArrayRef::element_at(const Vec& iter) const {
  VDEP_REQUIRE(!has_indirection(),
               "element_at on an indirect reference; indirect subscripts "
               "need store contents (exec::element_coords)");
  Vec e;
  e.reserve(subscripts.size());
  for (const AffineExpr& s : subscripts) e.push_back(s.eval(iter));
  return e;
}

intlin::Mat ArrayRef::linear_part() const {
  VDEP_REQUIRE(!subscripts.empty(), "array reference with no subscripts");
  VDEP_REQUIRE(!has_indirection(),
               "linear_part on an indirect reference; the static pipeline "
               "only handles affine subscripts");
  intlin::Mat f(arity(), subscripts.front().depth());
  for (int r = 0; r < arity(); ++r)
    for (int c = 0; c < f.cols(); ++c)
      f.at(r, c) = subscripts[static_cast<std::size_t>(r)].coeff(c);
  return f;
}

Vec ArrayRef::constant_part() const {
  VDEP_REQUIRE(!has_indirection(),
               "constant_part on an indirect reference; the static pipeline "
               "only handles affine subscripts");
  Vec f0;
  f0.reserve(subscripts.size());
  for (const AffineExpr& s : subscripts) f0.push_back(s.constant_term());
  return f0;
}

ArrayRef ArrayRef::substituted(const intlin::Mat& t) const {
  ArrayRef out;
  out.array = array;
  out.subscripts.reserve(subscripts.size());
  for (const AffineExpr& s : subscripts) out.subscripts.push_back(s.substitute(t));
  out.indirect.reserve(indirect.size());
  for (const auto& ind : indirect) {
    if (ind.has_value())
      out.indirect.push_back(IndirectSubscript{ind->array, ind->pos.substitute(t)});
    else
      out.indirect.push_back(std::nullopt);
  }
  return out;
}

std::string ArrayRef::to_string(const std::vector<std::string>& names) const {
  std::ostringstream os;
  os << array << "[";
  for (std::size_t k = 0; k < subscripts.size(); ++k) {
    if (k) os << ", ";
    if (k < indirect.size() && indirect[k].has_value())
      os << indirect[k]->array << "[" << indirect[k]->pos.to_string(names) << "]";
    else
      os << subscripts[k].to_string(names);
  }
  os << "]";
  return os.str();
}

ExprPtr Expr::constant(i64 v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConst;
  e->value_ = v;
  return e;
}

ExprPtr Expr::read(ArrayRef ref) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kRead;
  e->ref_ = std::move(ref);
  return e;
}

ExprPtr Expr::index(int k) {
  VDEP_REQUIRE(k >= 0, "negative index variable");
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kIndex;
  e->index_ = k;
  return e;
}

ExprPtr Expr::add(ExprPtr a, ExprPtr b) {
  VDEP_REQUIRE(a && b, "null operand in add");
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kAdd;
  e->lhs_ = std::move(a);
  e->rhs_ = std::move(b);
  return e;
}

ExprPtr Expr::sub(ExprPtr a, ExprPtr b) {
  VDEP_REQUIRE(a && b, "null operand in sub");
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kSub;
  e->lhs_ = std::move(a);
  e->rhs_ = std::move(b);
  return e;
}

ExprPtr Expr::mul(ExprPtr a, ExprPtr b) {
  VDEP_REQUIRE(a && b, "null operand in mul");
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kMul;
  e->lhs_ = std::move(a);
  e->rhs_ = std::move(b);
  return e;
}

void Expr::collect_reads(std::vector<ArrayRef>* out) const {
  switch (kind_) {
    case Kind::kConst:
    case Kind::kIndex:
      return;
    case Kind::kRead:
      out->push_back(ref_);
      return;
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
      lhs_->collect_reads(out);
      rhs_->collect_reads(out);
      return;
  }
}

ExprPtr Expr::substituted(const intlin::Mat& t) const {
  switch (kind_) {
    case Kind::kConst:
      return constant(value_);
    case Kind::kIndex:
      return index(index_);
    case Kind::kRead:
      return read(ref_.substituted(t));
    case Kind::kAdd:
      return add(lhs_->substituted(t), rhs_->substituted(t));
    case Kind::kSub:
      return sub(lhs_->substituted(t), rhs_->substituted(t));
    case Kind::kMul:
      return mul(lhs_->substituted(t), rhs_->substituted(t));
  }
  VDEP_CHECK(false, "unreachable expression kind");
}

std::string Expr::to_string(const std::vector<std::string>& names) const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kConst:
      os << value_;
      break;
    case Kind::kIndex:
      os << names[static_cast<std::size_t>(index_)];
      break;
    case Kind::kRead:
      os << ref_.to_string(names);
      break;
    case Kind::kAdd:
      os << "(" << lhs_->to_string(names) << " + " << rhs_->to_string(names) << ")";
      break;
    case Kind::kSub:
      os << "(" << lhs_->to_string(names) << " - " << rhs_->to_string(names) << ")";
      break;
    case Kind::kMul:
      os << "(" << lhs_->to_string(names) << " * " << rhs_->to_string(names) << ")";
      break;
  }
  return os.str();
}

std::string Assign::to_string(const std::vector<std::string>& names) const {
  return lhs.to_string(names) + " = " + rhs->to_string(names);
}

}  // namespace vdep::loopir
