// Affine expressions over the loop indices: c0 + sum_k coeffs[k] * i_k.
//
// Array subscripts, loop bounds and transformed index mappings are all
// affine; this is the paper's model (Section 2.2: "array subscripts are
// linear functions of the loop indices").
#pragma once

#include <string>
#include <vector>

#include "intlin/mat.h"

namespace vdep::loopir {

using intlin::i64;
using intlin::Vec;

class AffineExpr {
 public:
  /// Zero expression over `depth` loop indices.
  explicit AffineExpr(int depth) : coeffs_(static_cast<std::size_t>(depth), 0) {}
  AffineExpr(Vec coeffs, i64 constant)
      : coeffs_(std::move(coeffs)), constant_(constant) {}

  /// The constant expression `c`.
  static AffineExpr constant(int depth, i64 c);
  /// The single index i_k.
  static AffineExpr index(int depth, int k);

  int depth() const { return static_cast<int>(coeffs_.size()); }
  const Vec& coeffs() const { return coeffs_; }
  i64 coeff(int k) const;
  i64 constant_term() const { return constant_; }

  bool is_constant() const { return intlin::is_zero(coeffs_); }
  /// Highest index with a nonzero coefficient, or -1 for constants.
  int last_index_used() const;

  /// Value at the iteration point `iter` (size == depth()).
  i64 eval(const Vec& iter) const;

  AffineExpr operator+(const AffineExpr& o) const;
  AffineExpr operator-(const AffineExpr& o) const;
  AffineExpr scaled(i64 k) const;
  AffineExpr plus_constant(i64 c) const;

  /// Substitute i = j * T (row convention): returns the expression over the
  /// new indices j whose value at j equals this->eval(j * T).
  AffineExpr substitute(const intlin::Mat& t) const;

  bool operator==(const AffineExpr& o) const = default;

  /// "2*i1 - i3 + 4" using the given index names.
  std::string to_string(const std::vector<std::string>& names) const;

 private:
  Vec coeffs_;
  i64 constant_ = 0;
};

/// One max/min term of a loop bound: num/den with den > 0. A lower bound
/// contributes ceil(num/den); an upper bound contributes floor(num/den).
/// den > 1 appears only in transformed loops (Fourier-Motzkin output).
struct BoundTerm {
  AffineExpr num;
  i64 den = 1;

  bool operator==(const BoundTerm& o) const = default;
};

/// A loop bound: max over terms (lower) or min over terms (upper).
class Bound {
 public:
  Bound() = default;
  explicit Bound(AffineExpr e) { terms_.push_back({std::move(e), 1}); }
  Bound(std::vector<BoundTerm> terms) : terms_(std::move(terms)) {}

  /// Constant bound `c` over `depth` indices.
  static Bound constant(int depth, i64 c) {
    return Bound(AffineExpr::constant(depth, c));
  }

  const std::vector<BoundTerm>& terms() const { return terms_; }
  bool empty() const { return terms_.empty(); }
  void add_term(BoundTerm t) { terms_.push_back(std::move(t)); }

  /// Evaluate as a lower bound: max over ceil(num/den).
  i64 eval_lower(const Vec& iter) const;
  /// Evaluate as an upper bound: min over floor(num/den).
  i64 eval_upper(const Vec& iter) const;

  /// Highest index referenced by any term (-1 if none).
  int last_index_used() const;

  bool operator==(const Bound& o) const = default;

  std::string to_string(const std::vector<std::string>& names, bool lower) const;

 private:
  std::vector<BoundTerm> terms_;
};

}  // namespace vdep::loopir
