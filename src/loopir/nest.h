// The perfectly nested loop model of the paper (equation 2.1):
//
//   do i1 = p1, q1
//     ...
//     do in = pn, qn
//       H(i1, ..., in)        -- a sequence of assignments
//
// Bounds p_k, q_k are integer (max/min of quasi-)affine functions of the
// *outer* indices i1..i_{k-1}; the body is a sequence of assignment
// statements over arrays with affine subscripts.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "loopir/expr.h"

namespace vdep::loopir {

/// Declared shape of an array: inclusive [lo, hi] per dimension.
struct ArrayDecl {
  std::string name;
  std::vector<std::pair<i64, i64>> dims;

  int arity() const { return static_cast<int>(dims.size()); }
  i64 element_count() const;
  /// Row-major linear offset of `coords`, throwing when out of range.
  i64 linear_index(const Vec& coords) const;
  bool in_range(const Vec& coords) const;
};

/// One loop level: name, lower/upper bound, and whether the level was
/// proven parallel (DOALL). Step is always +1 in the base IR; strided
/// execution appears only in partitioned nests (trans::PartitionedNest).
struct Level {
  std::string name;
  Bound lower;
  Bound upper;
  bool parallel = false;
};

class LoopNest {
 public:
  LoopNest() = default;
  LoopNest(std::vector<Level> levels, std::vector<ArrayDecl> arrays,
           std::vector<Assign> body);

  int depth() const { return static_cast<int>(levels_.size()); }
  const std::vector<Level>& levels() const { return levels_; }
  const Level& level(int k) const;
  const std::vector<ArrayDecl>& arrays() const { return arrays_; }
  const std::vector<Assign>& body() const { return body_; }
  std::vector<std::string> index_names() const;

  const ArrayDecl& array(const std::string& name) const;
  bool has_array(const std::string& name) const;

  /// All array references in the body: every statement's write (lhs) and
  /// every read in its rhs, with statement index and access kind.
  struct Access {
    ArrayRef ref;
    int statement = 0;
    bool is_write = false;
  };
  std::vector<Access> accesses() const;

  /// True if any access in the body uses an indirect subscript (A[B[i]]).
  /// Such nests bypass the static PDM pipeline and run via the inspector.
  bool has_indirection() const;
  /// True if `name` serves as an index array for some indirect subscript.
  bool is_index_array(const std::string& name) const;

  /// Visits every access in the same order as accesses() — per statement
  /// the write, then its reads in pre-order — without materializing
  /// ArrayRef copies. fn(ref, statement, is_write).
  template <typename Fn>
  void for_each_access(Fn&& fn) const {
    for (std::size_t s = 0; s < body_.size(); ++s) {
      int stmt = static_cast<int>(s);
      fn(body_[s].lhs, stmt, true);
      body_[s].rhs->for_each_read(
          [&](const ArrayRef& r) { fn(r, stmt, false); });
    }
  }

  /// Structural validation; throws PreconditionError on violations
  /// (bounds referencing inner indices, unknown arrays, arity mismatches,
  /// non-positive bound divisors).
  void validate() const;

  /// Sequential lexicographic enumeration of the iteration space.
  void for_each_iteration(const std::function<void(const Vec&)>& fn) const;
  /// Materialized iteration list (tests / ISDG on small spaces).
  std::vector<Vec> iterations() const;
  /// Number of points (enumerated; intended for bounded test spaces).
  i64 iteration_count() const;
  /// Whether `iter` lies inside all bounds.
  bool contains(const Vec& iter) const;

  /// Source-like rendering ("do i1 = ...").
  std::string to_string() const;

 private:
  void enumerate(int k, Vec& iter, const std::function<void(const Vec&)>& fn) const;

  std::vector<Level> levels_;
  std::vector<ArrayDecl> arrays_;
  std::vector<Assign> body_;
};

}  // namespace vdep::loopir
