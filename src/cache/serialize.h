// Serialization of cached compilation artifacts (src/cache/).
//
// Two artifact kinds cross process boundaries through the disk cache:
//
//   - plans: the structure-only stages of a PlanArtifact — the PDM's Hermite
//     matrix, rank/uniformity, the unimodular transform T, H*T, the DOALL
//     count, the Theorem-2 partition lattice and the Theorem-1 legality
//     certificate. Deliberately NOT serialized: the per-pair dependence
//     diagnostics (DepPair) — they are reporting-only, and a disk-loaded
//     plan re-proves the legality certificate from the serialized PDM matrix
//     instead of trusting any stored bit (see deserialize_plan callers).
//
//   - kernel metadata: everything jit::NativeKernel needs beside the .so
//     bytes — entry symbol, buffer bind order, the KernelVerifier verdict
//     (so partitioned kernels stay gated across processes), the emitted C,
//     and a digest of the .so for corruption detection. Deterministic
//     toolchain failures serialize as negative entries so a cold process
//     does not re-pay a doomed cc run.
//
// The format is a fixed envelope (`VDEPART1 <fnv64 hex> <body length>`)
// around a body of length-prefixed fields: truncation fails the length
// check, bit rot fails the digest, and version bumps change the magic —
// every failure mode reads as a cache miss, never as a crash or a wrong
// artifact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "api/compiled_loop.h"

namespace vdep::cache {

/// FNV-1a 64-bit — the digest used by envelopes, entry filenames and .so
/// integrity checks. Not cryptographic: the cache defends against
/// corruption and collisions (full keys are stored and compared), not
/// against an adversary who can already write to the cache directory.
std::uint64_t fnv1a64(std::string_view s, std::uint64_t seed = 0);

/// Wraps `body` in the integrity envelope.
std::string envelope(std::string_view body);
/// Unwraps: nullopt when the magic, length or digest does not match.
std::optional<std::string> open_envelope(std::string_view bytes);

// ------------------------------------------------------------------ plans

struct PlanPayload {
  std::string key;  ///< full canonical cache key (collision guard)
  LoopAnalysis analysis;
  LoopPlan plan;
};

std::string serialize_plan(const std::string& key, const LoopAnalysis& analysis,
                           const LoopPlan& plan);
/// Parses an envelope-verified plan file. nullopt on any structural
/// mismatch. The caller still owns semantic validation (key comparison and
/// the Theorem-1 legality re-check).
std::optional<PlanPayload> deserialize_plan(std::string_view bytes);

// ---------------------------------------------------------------- kernels

struct KernelMeta {
  std::string key;  ///< full canonical cache key (collision guard)
  /// False for a negative entry: a deterministic toolchain failure cached
  /// so cold processes fail fast instead of re-running cc.
  bool ok = true;

  // ok == true:
  std::string entry;                ///< entry symbol in the .so
  std::vector<std::string> arrays;  ///< buffer bind order
  bool partitioned = false;         ///< verified steady-state fast path
  std::string verdict;              ///< KernelVerifier summary (gates reuse)
  std::string source;               ///< emitted C (diagnostics)
  std::uint64_t so_digest = 0;      ///< fnv1a64 of the .so bytes
  std::uint64_t so_bytes = 0;

  // ok == false:
  int error_kind = 0;  ///< static_cast<int>(ErrorKind)
  std::string error_message;
};

std::string serialize_kernel_meta(const KernelMeta& meta);
std::optional<KernelMeta> deserialize_kernel_meta(std::string_view bytes);

// ------------------------------------------------------------------- keys

/// Canonical key of a cached plan: build id (vdep git sha — plan layout and
/// planner behaviour may change between versions) + the structural
/// fingerprint key. Bounds never enter: plans are bounds-parametric.
std::string plan_cache_key(std::string_view build_id, std::string_view fp_key);

/// Canonical key of a cached native kernel: build id + structural
/// fingerprint + bounds/dims rendering + the option render (flags that
/// change the TU or its compilation) + toolchain identity (resolved
/// compiler path and a digest of its --version output, so a toolchain
/// upgrade misses instead of serving stale code).
std::string kernel_cache_key(std::string_view build_id, std::string_view fp_key,
                             std::string_view bounds_render,
                             std::string_view options_render,
                             std::string_view toolchain_id);

/// The vdep build identity baked in at configure time (git sha, or "dev"
/// when built outside a git checkout).
const char* build_id();

}  // namespace vdep::cache
