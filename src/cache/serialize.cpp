#include "cache/serialize.h"

#include <charconv>

#include "support/keyenc.h"

namespace vdep::cache {

namespace {

// ------------------------------------------------------------ primitives
//
// Body encoding: integers render as decimal + ';', strings as keyenc
// length-prefixed fields, matrices as rows/cols + entries. The reader is a
// cursor that latches failure: any malformed token poisons the rest of the
// parse, and callers check ok() once at the end.

void put_i64(std::string* out, std::int64_t v) {
  char buf[24];
  char* end = std::to_chars(buf, buf + sizeof(buf), v).ptr;
  out->append(buf, end);
  out->push_back(';');
}

void put_u64(std::string* out, std::uint64_t v) {
  char buf[24];
  char* end = std::to_chars(buf, buf + sizeof(buf), v).ptr;
  out->append(buf, end);
  out->push_back(';');
}

void put_str(std::string* out, std::string_view s) {
  keyenc::append_field(out, s);
}

void put_mat(std::string* out, const intlin::Mat& m) {
  put_i64(out, m.rows());
  put_i64(out, m.cols());
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c) put_i64(out, m.at(r, c));
}

class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == s_.size(); }

  std::int64_t i64v() {
    std::int64_t v = 0;
    if (!number(&v, ';')) return 0;
    return v;
  }

  std::uint64_t u64v() {
    // Parsed as unsigned in its own right: digests routinely exceed
    // INT64_MAX, so routing through i64v() would overflow and poison the
    // cursor.
    if (!ok_) return 0;
    std::uint64_t v = 0;
    auto [ptr, ec] =
        std::from_chars(s_.data() + pos_, s_.data() + s_.size(), v);
    if (ec != std::errc() || ptr == s_.data() + s_.size() || *ptr != ';') {
      fail();
      return 0;
    }
    pos_ = static_cast<std::size_t>(ptr - s_.data()) + 1;
    return v;
  }

  std::string str() {
    std::int64_t len = 0;
    if (!number(&len, ':')) return {};
    if (len < 0 || static_cast<std::size_t>(len) > s_.size() - pos_) {
      fail();
      return {};
    }
    std::string out(s_.substr(pos_, static_cast<std::size_t>(len)));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }

  intlin::Mat mat() {
    std::int64_t rows = i64v();
    std::int64_t cols = i64v();
    // Dimension sanity bound: a corrupted count must not drive a
    // multi-gigabyte allocation before the digest... the envelope digest
    // already passed, but a hostile cache file passes digests too.
    if (!ok_ || rows < 0 || cols < 0 || rows > 4096 || cols > 4096) {
      fail();
      return intlin::Mat();
    }
    intlin::Mat m(static_cast<int>(rows), static_cast<int>(cols));
    for (int r = 0; r < m.rows(); ++r)
      for (int c = 0; c < m.cols(); ++c) m.at(r, c) = i64v();
    return m;
  }

 private:
  void fail() { ok_ = false; }

  bool number(std::int64_t* v, char terminator) {
    if (!ok_) return false;
    auto [ptr, ec] = std::from_chars(s_.data() + pos_, s_.data() + s_.size(),
                                     *v);
    if (ec != std::errc() || ptr == s_.data() + s_.size() ||
        *ptr != terminator) {
      fail();
      return false;
    }
    pos_ = static_cast<std::size_t>(ptr - s_.data()) + 1;
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

constexpr std::string_view kMagic = "VDEPART1 ";

}  // namespace

std::uint64_t fnv1a64(std::string_view s, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ull ^ seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string envelope(std::string_view body) {
  std::string out(kMagic);
  char buf[24];
  char* end = std::to_chars(buf, buf + sizeof(buf), fnv1a64(body), 16).ptr;
  out.append(buf, end);
  out.push_back(' ');
  end = std::to_chars(buf, buf + sizeof(buf), body.size()).ptr;
  out.append(buf, end);
  out.push_back('\n');
  out.append(body);
  return out;
}

std::optional<std::string> open_envelope(std::string_view bytes) {
  if (bytes.substr(0, kMagic.size()) != kMagic) return std::nullopt;
  std::size_t pos = kMagic.size();
  std::uint64_t digest = 0;
  auto [p1, e1] =
      std::from_chars(bytes.data() + pos, bytes.data() + bytes.size(), digest,
                      16);
  if (e1 != std::errc() || p1 == bytes.data() + bytes.size() || *p1 != ' ')
    return std::nullopt;
  pos = static_cast<std::size_t>(p1 - bytes.data()) + 1;
  std::uint64_t len = 0;
  auto [p2, e2] =
      std::from_chars(bytes.data() + pos, bytes.data() + bytes.size(), len);
  if (e2 != std::errc() || p2 == bytes.data() + bytes.size() || *p2 != '\n')
    return std::nullopt;
  pos = static_cast<std::size_t>(p2 - bytes.data()) + 1;
  // An exact length match rejects both truncation and appended garbage.
  if (bytes.size() - pos != len) return std::nullopt;
  std::string_view body = bytes.substr(pos);
  if (fnv1a64(body) != digest) return std::nullopt;
  return std::string(body);
}

// ------------------------------------------------------------------ plans

std::string serialize_plan(const std::string& key, const LoopAnalysis& analysis,
                           const LoopPlan& plan) {
  std::string body;
  body.reserve(512);
  put_str(&body, key);
  put_i64(&body, analysis.pdm.depth());
  put_mat(&body, analysis.pdm.matrix());
  put_i64(&body, analysis.rank);
  put_i64(&body, analysis.all_uniform ? 1 : 0);
  put_i64(&body, analysis.affine ? 1 : 0);
  put_i64(&body, plan.transform.depth);
  put_mat(&body, plan.transform.t);
  put_mat(&body, plan.transform.transformed_pdm);
  put_i64(&body, plan.transform.num_doall);
  put_i64(&body, plan.transform.partition.has_value() ? 1 : 0);
  if (plan.transform.partition)
    put_mat(&body, plan.transform.partition->lattice_basis());
  put_i64(&body, plan.transform.partition_classes);
  put_i64(&body, static_cast<std::int64_t>(plan.transform.algorithm1_ops.size()));
  for (const std::string& op : plan.transform.algorithm1_ops)
    put_str(&body, op);
  put_i64(&body, plan.legal ? 1 : 0);
  put_i64(&body, plan.doall_loops);
  put_i64(&body, plan.partition_classes);
  return envelope(body);
}

std::optional<PlanPayload> deserialize_plan(std::string_view bytes) {
  std::optional<std::string> body = open_envelope(bytes);
  if (!body) return std::nullopt;
  Cursor c(*body);
  PlanPayload p;
  p.key = c.str();
  int depth = static_cast<int>(c.i64v());
  intlin::Mat pdm_h = c.mat();
  p.analysis.rank = static_cast<int>(c.i64v());
  p.analysis.all_uniform = c.i64v() != 0;
  p.analysis.affine = c.i64v() != 0;
  p.plan.transform.depth = static_cast<int>(c.i64v());
  p.plan.transform.t = c.mat();
  p.plan.transform.transformed_pdm = c.mat();
  p.plan.transform.num_doall = static_cast<int>(c.i64v());
  bool has_partition = c.i64v() != 0;
  intlin::Mat partition_h;
  if (has_partition) partition_h = c.mat();
  p.plan.transform.partition_classes = c.i64v();
  std::int64_t n_ops = c.i64v();
  if (!c.ok() || n_ops < 0 || n_ops > 4096) return std::nullopt;
  for (std::int64_t k = 0; k < n_ops; ++k)
    p.plan.transform.algorithm1_ops.push_back(c.str());
  p.plan.legal = c.i64v() != 0;
  p.plan.doall_loops = static_cast<int>(c.i64v());
  p.plan.partition_classes = c.i64v();
  if (!c.ok() || !c.at_end()) return std::nullopt;
  // T is square in the transform's depth; the PDM depth can differ (a
  // non-affine nest carries the depth-0 placeholder Pdm beside an
  // identity transform at nest depth).
  if (pdm_h.cols() != depth ||
      p.plan.transform.t.rows() != p.plan.transform.depth ||
      p.plan.transform.t.cols() != p.plan.transform.depth)
    return std::nullopt;
  // The depths must agree (non-affine placeholders carry depth 0), or the
  // caller's legality re-check would trip a shape precondition instead of
  // treating the artifact as a miss.
  if (depth != 0 && depth != p.plan.transform.depth) return std::nullopt;
  // Partitioning and Pdm constructors enforce their HNF invariants (they
  // throw on a malformed basis), and Partitioning re-derives the class
  // count — a tampered matrix cannot smuggle in a wrong invariant.
  try {
    if (has_partition) {
      p.plan.transform.partition.emplace(partition_h);
      if (p.plan.transform.partition->num_classes() !=
          p.plan.transform.partition_classes)
        return std::nullopt;
    }
    p.analysis.pdm = dep::Pdm(depth, std::move(pdm_h), {});
  } catch (const Error&) {
    return std::nullopt;
  }
  if (p.analysis.pdm.rank() != p.analysis.rank) return std::nullopt;
  return p;
}

// ---------------------------------------------------------------- kernels

std::string serialize_kernel_meta(const KernelMeta& meta) {
  std::string body;
  body.reserve(512 + meta.source.size());
  put_str(&body, meta.key);
  put_i64(&body, meta.ok ? 1 : 0);
  if (meta.ok) {
    put_str(&body, meta.entry);
    put_i64(&body, static_cast<std::int64_t>(meta.arrays.size()));
    for (const std::string& a : meta.arrays) put_str(&body, a);
    put_i64(&body, meta.partitioned ? 1 : 0);
    put_str(&body, meta.verdict);
    put_str(&body, meta.source);
    put_u64(&body, meta.so_digest);
    put_u64(&body, meta.so_bytes);
  } else {
    put_i64(&body, meta.error_kind);
    put_str(&body, meta.error_message);
  }
  return envelope(body);
}

std::optional<KernelMeta> deserialize_kernel_meta(std::string_view bytes) {
  std::optional<std::string> body = open_envelope(bytes);
  if (!body) return std::nullopt;
  Cursor c(*body);
  KernelMeta m;
  m.key = c.str();
  m.ok = c.i64v() != 0;
  if (m.ok) {
    m.entry = c.str();
    std::int64_t n = c.i64v();
    if (!c.ok() || n < 0 || n > 4096) return std::nullopt;
    for (std::int64_t k = 0; k < n; ++k) m.arrays.push_back(c.str());
    m.partitioned = c.i64v() != 0;
    m.verdict = c.str();
    m.source = c.str();
    m.so_digest = c.u64v();
    m.so_bytes = c.u64v();
  } else {
    m.error_kind = static_cast<int>(c.i64v());
    m.error_message = c.str();
  }
  if (!c.ok() || !c.at_end()) return std::nullopt;
  return m;
}

// ------------------------------------------------------------------- keys

std::string plan_cache_key(std::string_view build_id, std::string_view fp_key) {
  std::string key = "plan1|";
  keyenc::append_field(&key, build_id);
  keyenc::append_field(&key, fp_key);
  return key;
}

std::string kernel_cache_key(std::string_view build_id, std::string_view fp_key,
                             std::string_view bounds_render,
                             std::string_view options_render,
                             std::string_view toolchain_id) {
  std::string key = "kern1|";
  keyenc::append_field(&key, build_id);
  keyenc::append_field(&key, fp_key);
  keyenc::append_field(&key, bounds_render);
  keyenc::append_field(&key, options_render);
  keyenc::append_field(&key, toolchain_id);
  return key;
}

const char* build_id() {
#ifdef VDEP_BUILD_ID
  return VDEP_BUILD_ID;
#else
  return "dev";
#endif
}

}  // namespace vdep::cache
