// Persistent cross-process artifact cache for plans and JIT kernels.
//
// Every fresh process re-runs PDM analysis and pays cc subprocess latency
// per new (structure, bounds) pair; the in-memory plan cache (api/) and the
// per-artifact .so memo amortize neither across processes. DiskCache is the
// durable layer underneath both: serialized plans and compiled .so files
// keyed by (structural fingerprint, bounds render, option render, toolchain
// identity, vdep build id), shared by every process pointed at the same
// directory.
//
// Concurrency protocol (crash-safe, no reader locks):
//   - Writers publish with temp-file + rename(2) into place: a reader sees
//     either nothing or a complete file, never a torn write. Kernel entries
//     are a (.so, .meta) pair published .so-first; the .meta is the commit
//     point and carries the .so digest, so a reader that finds a .meta
//     always validates the exact bytes it will dlopen.
//   - Readers validate an integrity envelope (magic + length + fnv64) and
//     the full canonical key text; any mismatch — truncation, corruption,
//     a filename hash collision, a concurrent eviction — degrades to a
//     miss and a recompile, never a crash.
//   - The size-capped LRU eviction pass runs under a flock(2)'d lock file,
//     non-blocking: when another process is already evicting, this one
//     skips. Hits touch entry mtimes, so eviction order approximates LRU.
//
// Layout under the root: plans/<hash>.plan, kernels/<hash>.{so,meta}, .lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/serialize.h"

namespace vdep::cache {

struct DiskCacheStats {
  std::int64_t hits = 0;    ///< plan + kernel loads served (this process)
  std::int64_t misses = 0;  ///< probes that found nothing usable
  std::int64_t stores = 0;  ///< artifacts published
  std::int64_t evictions = 0;     ///< entries this process evicted
  std::int64_t stored_bytes = 0;  ///< bytes this process published
};

/// What a kernel probe returns: the validated metadata plus the path of the
/// published .so (empty for negative entries). The path stays valid for
/// dlopen even if eviction unlinks it afterwards — the mapping survives.
struct KernelHit {
  KernelMeta meta;
  std::string so_path;
};

/// On-disk usage, from a directory scan (cross-process truth, unlike the
/// process-local DiskCacheStats counters).
struct DiskUsage {
  std::size_t plan_entries = 0;
  std::size_t kernel_entries = 0;
  std::size_t negative_entries = 0;
  std::uint64_t bytes = 0;
};

/// Outcome of verify(): re-validation of every stored artifact.
struct VerifyReport {
  std::size_t plans_ok = 0;
  std::size_t kernels_ok = 0;
  std::vector<std::string> bad;  ///< paths that failed validation
  bool ok() const { return bad.empty(); }
};

class DiskCache {
 public:
  /// Opens (creating directories as needed) a cache rooted at `dir`.
  /// nullptr when the directory cannot be created or the host has no POSIX
  /// file locking (the cache is then simply absent, never an error).
  static std::shared_ptr<DiskCache> open(const std::string& dir,
                                         std::uint64_t max_bytes = 0);

  /// Resolution used by the compile pipeline: an explicit directory wins,
  /// else $VDEP_CACHE_DIR, else no cache. `enabled` = false short-circuits
  /// to nullptr. Instances are shared per canonical directory, so every
  /// session and ToolchainCompiler pointed at one cache shares counters
  /// and eviction bookkeeping. Cap: $VDEP_CACHE_MAX_BYTES or 1 GiB.
  static std::shared_ptr<DiskCache> resolve(const std::string& explicit_dir,
                                            bool enabled);

  const std::string& dir() const { return dir_; }
  std::uint64_t max_bytes() const { return max_bytes_; }

  // ----------------------------------------------------------------- plans

  /// Probes for a plan under `key`: envelope + key validated, mtime
  /// touched. nullopt = miss.
  std::optional<PlanPayload> load_plan(const std::string& key);
  /// Publishes a plan (atomic rename); runs the eviction pass after.
  bool store_plan(const std::string& key, const LoopAnalysis& analysis,
                  const LoopPlan& plan);

  // --------------------------------------------------------------- kernels

  /// Probes for a kernel under `key`: meta envelope, key and .so digest all
  /// validated. nullopt = miss; a hit may be a negative entry (meta.ok ==
  /// false, empty so_path).
  std::optional<KernelHit> load_kernel(const std::string& key);
  /// Publishes `so_file` (copied into the cache) + metadata. `meta.key`,
  /// `so_digest` and `so_bytes` are filled in here.
  bool store_kernel(const std::string& key, KernelMeta meta,
                    const std::string& so_file);
  /// Publishes a negative entry for a deterministic toolchain failure.
  bool store_kernel_failure(const std::string& key, int error_kind,
                            const std::string& message);

  // ------------------------------------------------------------ management

  DiskCacheStats stats() const;
  DiskUsage usage() const;
  /// Removes entries (oldest mtime first) until usage is within max_bytes.
  /// Runs under the lock file, non-blocking; returns entries evicted (0
  /// when under cap or another process holds the lock).
  std::size_t evict_to_cap();
  /// Removes every entry; returns the count removed.
  std::size_t clear();
  /// Re-validates every stored artifact: envelopes, digests, and for plans
  /// the Theorem-1 legality certificate re-proved from the stored PDM.
  VerifyReport verify() const;

 private:
  DiskCache(std::string dir, std::uint64_t max_bytes);

  std::string plan_path(const std::string& key) const;
  std::string kernel_path_base(const std::string& key) const;
  bool atomic_write(const std::string& target, const std::string& bytes);
  bool put_kernel_meta(const std::string& key, const KernelMeta& meta);
  void count_hit(bool hit);
  void count_store(std::uint64_t bytes);

  std::string dir_;
  std::uint64_t max_bytes_;
  std::atomic<std::uint64_t> write_seq_{0};

  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> stores_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::int64_t> stored_bytes_{0};
};

}  // namespace vdep::cache
