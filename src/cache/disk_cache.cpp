#include "cache/disk_cache.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <mutex>
#include <system_error>

#include "obs/metrics.h"
#include "trans/legality.h"

#if defined(__unix__) || defined(__APPLE__)
#define VDEP_CACHE_POSIX 1
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <filesystem>

namespace fs = std::filesystem;
#endif

namespace vdep::cache {

#ifdef VDEP_CACHE_POSIX

namespace {

constexpr std::uint64_t kDefaultMaxBytes = 1ull << 30;  // 1 GiB

void bump(const char* name, const char* help, std::int64_t n = 1) {
  if (!obs::MetricsRegistry::enabled()) return;
  obs::MetricsRegistry::instance().counter(name, help).inc(n);
}

/// 128-bit filename from the canonical key: two independently seeded fnv64
/// halves. Filenames are only an index — the stored full key is the
/// authority — but 128 bits keep accidental collisions out of the way.
std::string key_file_stem(const std::string& key) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(fnv1a64(key)),
                static_cast<unsigned long long>(
                    fnv1a64(key, 0x9e3779b97f4a7c15ull)));
  return buf;
}

std::optional<std::string> read_file(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

/// Bumps the entry's mtime so the eviction pass sees it as recently used.
void touch(const std::string& path) {
  ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
}

bool env_enabled_dir(std::string* out) {
  const char* e = std::getenv("VDEP_CACHE_DIR");
  if (!e || !*e) return false;
  *out = e;
  return true;
}

struct Entry {
  // Paths removed together: the .meta and .so of a kernel entry, or the
  // single .plan file.
  std::vector<std::string> files;
  std::uint64_t bytes = 0;
  std::int64_t mtime_ns = 0;  ///< LRU order; ns so burst stores still rank
};

std::int64_t mtime_ns_of(const char* path) {
  struct stat st{};
  if (::stat(path, &st) != 0) return 0;
#ifdef __APPLE__
  return st.st_mtimespec.tv_sec * 1000000000ll + st.st_mtimespec.tv_nsec;
#else
  return st.st_mtim.tv_sec * 1000000000ll + st.st_mtim.tv_nsec;
#endif
}

/// Scans the cache into eviction units. Kernel (.so, .meta) pairs are one
/// unit keyed by the .meta (the publish point); a .so with no .meta is an
/// orphan from a crashed writer and joins the list as its own unit.
std::vector<Entry> scan_entries(const std::string& dir) {
  std::vector<Entry> entries;
  std::error_code ec;
  for (const char* sub : {"plans", "kernels"}) {
    std::map<std::string, Entry> kernel_units;  // stem -> unit
    for (const auto& de : fs::directory_iterator(dir + "/" + sub, ec)) {
      if (!de.is_regular_file(ec)) continue;
      fs::path p = de.path();
      std::string ext = p.extension().string();
      std::uint64_t sz = static_cast<std::uint64_t>(de.file_size(ec));
      std::int64_t mt = mtime_ns_of(p.c_str());
      if (ext == ".plan") {
        entries.push_back({{p.string()}, sz, mt});
      } else if (ext == ".meta" || ext == ".so") {
        Entry& u = kernel_units[p.stem().string()];
        u.files.push_back(p.string());
        u.bytes += sz;
        // The .meta mtime is the one touch() refreshes on hits.
        if (ext == ".meta" || u.mtime_ns == 0) u.mtime_ns = mt;
      }
      // Anything else (tmp files from live writers) is left alone here;
      // clear() removes them wholesale.
    }
    for (auto& [stem, u] : kernel_units) entries.push_back(std::move(u));
  }
  return entries;
}

}  // namespace

DiskCache::DiskCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)),
      max_bytes_(max_bytes ? max_bytes : kDefaultMaxBytes) {}

std::shared_ptr<DiskCache> DiskCache::open(const std::string& dir,
                                           std::uint64_t max_bytes) {
  if (dir.empty()) return nullptr;
  std::error_code ec;
  fs::create_directories(dir + "/plans", ec);
  fs::create_directories(dir + "/kernels", ec);
  if (ec) return nullptr;
  // Pre-create the lock file so eviction never races its creation.
  int fd = ::open((dir + "/.lock").c_str(),
                  O_CREAT | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return nullptr;
  ::close(fd);
  return std::shared_ptr<DiskCache>(new DiskCache(dir, max_bytes));
}

std::shared_ptr<DiskCache> DiskCache::resolve(const std::string& explicit_dir,
                                              bool enabled) {
  if (!enabled) return nullptr;
  std::string dir = explicit_dir;
  if (dir.empty() && !env_enabled_dir(&dir)) return nullptr;

  std::uint64_t cap = 0;
  if (const char* e = std::getenv("VDEP_CACHE_MAX_BYTES"))
    cap = std::strtoull(e, nullptr, 10);

  std::error_code ec;
  fs::path canon = fs::weakly_canonical(dir, ec);
  std::string id = ec ? dir : canon.string();

  static std::mutex mu;
  static std::map<std::string, std::shared_ptr<DiskCache>> registry;
  std::lock_guard<std::mutex> lock(mu);
  auto it = registry.find(id);
  if (it != registry.end() && it->second->max_bytes() == (cap ? cap : kDefaultMaxBytes))
    return it->second;
  std::shared_ptr<DiskCache> c = open(dir, cap);
  if (c) registry[id] = c;
  return c;
}

std::string DiskCache::plan_path(const std::string& key) const {
  return dir_ + "/plans/" + key_file_stem(key) + ".plan";
}

std::string DiskCache::kernel_path_base(const std::string& key) const {
  return dir_ + "/kernels/" + key_file_stem(key);
}

bool DiskCache::atomic_write(const std::string& target,
                             const std::string& bytes) {
  // Unique per (process, in-process sequence): two threads of one process
  // and two processes never collide on a temp name. Published via rename
  // into place — readers observe nothing or everything.
  std::string tmp = target + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(write_seq_.fetch_add(1));
  int fd = ::open(tmp.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::close(fd) != 0 || ::rename(tmp.c_str(), target.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

void DiskCache::count_hit(bool hit) {
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    bump("vdep_disk_cache_hits_total", "disk cache probes served");
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    bump("vdep_disk_cache_misses_total", "disk cache probes missed");
  }
}

void DiskCache::count_store(std::uint64_t bytes) {
  stores_.fetch_add(1, std::memory_order_relaxed);
  stored_bytes_.fetch_add(static_cast<std::int64_t>(bytes),
                          std::memory_order_relaxed);
  bump("vdep_disk_cache_stores_total", "disk cache artifacts published");
  bump("vdep_disk_cache_stored_bytes_total", "disk cache bytes published",
       static_cast<std::int64_t>(bytes));
}

// ------------------------------------------------------------------- plans

std::optional<PlanPayload> DiskCache::load_plan(const std::string& key) {
  std::string path = plan_path(key);
  std::optional<std::string> bytes = read_file(path);
  if (!bytes) {
    count_hit(false);
    return std::nullopt;
  }
  std::optional<PlanPayload> p = deserialize_plan(*bytes);
  // Key comparison defends the (astronomically unlikely, but free to
  // check) filename-hash collision and any cross-version stem reuse.
  if (!p || p->key != key) {
    count_hit(false);
    return std::nullopt;
  }
  touch(path);
  count_hit(true);
  return p;
}

bool DiskCache::store_plan(const std::string& key, const LoopAnalysis& analysis,
                           const LoopPlan& plan) {
  std::string bytes = serialize_plan(key, analysis, plan);
  if (!atomic_write(plan_path(key), bytes)) return false;
  count_store(bytes.size());
  evict_to_cap();
  return true;
}

// ----------------------------------------------------------------- kernels

std::optional<KernelHit> DiskCache::load_kernel(const std::string& key) {
  std::string base = kernel_path_base(key);
  std::optional<std::string> meta_bytes = read_file(base + ".meta");
  if (!meta_bytes) {
    count_hit(false);
    return std::nullopt;
  }
  std::optional<KernelMeta> meta = deserialize_kernel_meta(*meta_bytes);
  if (!meta || meta->key != key) {
    count_hit(false);
    return std::nullopt;
  }
  KernelHit hit;
  if (meta->ok) {
    std::optional<std::string> so = read_file(base + ".so");
    // The digest binds the .meta to the exact .so a concurrent writer
    // published; a half-replaced pair degrades to a miss and a recompile.
    if (!so || so->size() != meta->so_bytes || fnv1a64(*so) != meta->so_digest) {
      count_hit(false);
      return std::nullopt;
    }
    hit.so_path = base + ".so";
    touch(base + ".so");
  }
  touch(base + ".meta");
  hit.meta = std::move(*meta);
  count_hit(true);
  return hit;
}

bool DiskCache::put_kernel_meta(const std::string& key, const KernelMeta& meta) {
  std::string bytes = serialize_kernel_meta(meta);
  if (!atomic_write(kernel_path_base(key) + ".meta", bytes)) return false;
  count_store(bytes.size());
  evict_to_cap();
  return true;
}

bool DiskCache::store_kernel(const std::string& key, KernelMeta meta,
                             const std::string& so_file) {
  std::optional<std::string> so = read_file(so_file);
  if (!so) return false;
  meta.key = key;
  meta.ok = true;
  meta.so_digest = fnv1a64(*so);
  meta.so_bytes = so->size();
  // .so first, .meta second: the .meta is the commit point, so no reader
  // can validate a .meta whose .so is not yet fully in place.
  if (!atomic_write(kernel_path_base(key) + ".so", *so)) return false;
  count_store(so->size());
  return put_kernel_meta(key, meta);
}

bool DiskCache::store_kernel_failure(const std::string& key, int error_kind,
                                     const std::string& message) {
  KernelMeta meta;
  meta.key = key;
  meta.ok = false;
  meta.error_kind = error_kind;
  meta.error_message = message;
  return put_kernel_meta(key, meta);
}

// -------------------------------------------------------------- management

DiskCacheStats DiskCache::stats() const {
  DiskCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.stored_bytes = stored_bytes_.load(std::memory_order_relaxed);
  return s;
}

DiskUsage DiskCache::usage() const {
  DiskUsage u;
  for (const Entry& e : scan_entries(dir_)) {
    u.bytes += e.bytes;
    bool is_plan = false, has_meta = false, has_so = false;
    for (const std::string& f : e.files) {
      if (f.size() >= 5 && f.compare(f.size() - 5, 5, ".plan") == 0)
        is_plan = true;
      else if (f.size() >= 5 && f.compare(f.size() - 5, 5, ".meta") == 0)
        has_meta = true;
      else
        has_so = true;
    }
    if (is_plan)
      ++u.plan_entries;
    else if (has_meta && !has_so)
      ++u.negative_entries;
    else if (has_meta)
      ++u.kernel_entries;
  }
  return u;
}

std::size_t DiskCache::evict_to_cap() {
  // Cheap pre-check outside the lock: most stores are far under cap.
  std::vector<Entry> entries = scan_entries(dir_);
  std::uint64_t total = 0;
  for (const Entry& e : entries) total += e.bytes;
  if (total <= max_bytes_) return 0;

  int lock_fd = ::open((dir_ + "/.lock").c_str(), O_WRONLY | O_CLOEXEC);
  if (lock_fd < 0) return 0;
  if (::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
    // Another process is already evicting this cache; let it.
    ::close(lock_fd);
    return 0;
  }

  // Re-scan under the lock — the pre-check raced concurrent evictors.
  entries = scan_entries(dir_);
  total = 0;
  for (const Entry& e : entries) total += e.bytes;
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.mtime_ns < b.mtime_ns;
  });
  std::size_t evicted = 0;
  for (const Entry& e : entries) {
    if (total <= max_bytes_) break;
    for (const std::string& f : e.files) ::unlink(f.c_str());
    total -= std::min(total, e.bytes);
    ++evicted;
  }
  ::flock(lock_fd, LOCK_UN);
  ::close(lock_fd);
  if (evicted) {
    evictions_.fetch_add(static_cast<std::int64_t>(evicted),
                         std::memory_order_relaxed);
    bump("vdep_disk_cache_evictions_total", "disk cache entries evicted",
         static_cast<std::int64_t>(evicted));
  }
  return evicted;
}

std::size_t DiskCache::clear() {
  std::size_t removed = 0;
  std::error_code ec;
  for (const char* sub : {"plans", "kernels"}) {
    for (const auto& de : fs::directory_iterator(dir_ + "/" + sub, ec)) {
      if (!de.is_regular_file(ec)) continue;
      if (::unlink(de.path().c_str()) == 0) ++removed;
    }
  }
  return removed;
}

VerifyReport DiskCache::verify() const {
  VerifyReport report;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_ + "/plans", ec)) {
    if (!de.is_regular_file(ec) || de.path().extension() != ".plan") continue;
    std::optional<std::string> bytes = read_file(de.path().string());
    std::optional<PlanPayload> p =
        bytes ? deserialize_plan(*bytes) : std::nullopt;
    // A cached legality certificate is only as good as a fresh proof:
    // re-run the Theorem-1 check against the stored PDM.
    if (p && (!p->plan.legal ||
              trans::is_legal_transform(p->analysis.pdm.matrix(),
                                        p->plan.transform.t)))
      ++report.plans_ok;
    else
      report.bad.push_back(de.path().string());
  }
  for (const auto& de : fs::directory_iterator(dir_ + "/kernels", ec)) {
    if (!de.is_regular_file(ec) || de.path().extension() != ".meta") continue;
    std::optional<std::string> bytes = read_file(de.path().string());
    std::optional<KernelMeta> m =
        bytes ? deserialize_kernel_meta(*bytes) : std::nullopt;
    bool good = m.has_value();
    if (good && m->ok) {
      fs::path so = de.path();
      so.replace_extension(".so");
      std::optional<std::string> so_bytes = read_file(so.string());
      good = so_bytes && so_bytes->size() == m->so_bytes &&
             fnv1a64(*so_bytes) == m->so_digest;
    }
    if (good)
      ++report.kernels_ok;
    else
      report.bad.push_back(de.path().string());
  }
  return report;
}

#else  // !VDEP_CACHE_POSIX — the cache is simply absent on other hosts.

DiskCache::DiskCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {}
std::shared_ptr<DiskCache> DiskCache::open(const std::string&, std::uint64_t) {
  return nullptr;
}
std::shared_ptr<DiskCache> DiskCache::resolve(const std::string&, bool) {
  return nullptr;
}
std::optional<PlanPayload> DiskCache::load_plan(const std::string&) {
  return std::nullopt;
}
bool DiskCache::store_plan(const std::string&, const LoopAnalysis&,
                           const LoopPlan&) {
  return false;
}
std::optional<KernelHit> DiskCache::load_kernel(const std::string&) {
  return std::nullopt;
}
bool DiskCache::store_kernel(const std::string&, KernelMeta,
                             const std::string&) {
  return false;
}
bool DiskCache::store_kernel_failure(const std::string&, int,
                                     const std::string&) {
  return false;
}
DiskCacheStats DiskCache::stats() const { return {}; }
DiskUsage DiskCache::usage() const { return {}; }
std::size_t DiskCache::evict_to_cap() { return 0; }
std::size_t DiskCache::clear() { return 0; }
VerifyReport DiskCache::verify() const { return {}; }
std::string DiskCache::plan_path(const std::string&) const { return {}; }
std::string DiskCache::kernel_path_base(const std::string&) const {
  return {};
}
bool DiskCache::atomic_write(const std::string&, const std::string&) {
  return false;
}
bool DiskCache::put_kernel_meta(const std::string&, const KernelMeta&) {
  return false;
}
void DiskCache::count_hit(bool) {}
void DiskCache::count_store(std::uint64_t) {}

#endif  // VDEP_CACHE_POSIX

}  // namespace vdep::cache
