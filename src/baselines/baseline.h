// Runnable implementations of the related-work methods compared in the
// paper's Table 1, plus the PDM method itself, all reduced to a common
// outcome shape so the table bench can regenerate the comparison with
// *measured* parallelism instead of citations.
//
// Two execution models appear:
//   * coarse grain — mutually independent work items (partitioning-style
//     methods): steps = longest item, width = number of items;
//   * phased — barrier-synchronized wavefronts (hyperplane-style methods):
//     steps = number of phases, width = widest phase.
// Every produced schedule is checked with the exec verifier, so a method
// can never report parallelism it is not entitled to.
#pragma once

#include <optional>
#include <string>

#include "exec/isdg.h"
#include "exec/verify.h"

namespace vdep::baselines {

using intlin::i64;
using intlin::Mat;
using intlin::Vec;

struct Outcome {
  std::string method;       ///< display name (Table 1 row)
  std::string abstraction;  ///< dependence information used (column 2)
  std::string codegen;      ///< code generation style (column 5)
  bool applicable = false;  ///< method handles this loop at all
  bool coarse_grain = false;  ///< independent items (no barriers)

  /// Sequential time in iteration steps (lower is better).
  i64 steps = 0;
  /// Exploited parallelism (higher is better).
  i64 width = 1;
  /// Verified legal by the trace checker (always true unless a method is
  /// intentionally reported as inapplicable).
  bool verified = false;

  std::string note;
};

/// Sequential execution (the degenerate baseline every method must beat).
Outcome run_serial(const loopir::LoopNest& nest);

/// Banerjee-style unimodular wavefront on *uniform* distance vectors
/// (interchange/skew/reversal framework): applicable only when every
/// dependence pair has a constant distance.
Outcome run_uniform_unimodular(const loopir::LoopNest& nest);

/// D'Hollander-style lattice partitioning on uniform distance vectors.
Outcome run_uniform_partitioning(const loopir::LoopNest& nest);

/// Wolf/Lam direction-vector framework: level-based DOALL detection from
/// direction vectors (no exact distance information).
Outcome run_direction_vector_method(const loopir::LoopNest& nest);

/// Shang-style BDV + one-dimensional linear (hyperplane) schedule: searches
/// a schedule vector pi with pi.d >= 1 for every observed distance.
Outcome run_hyperplane_schedule(const loopir::LoopNest& nest);

/// This paper: PDM + Algorithm 1 + Theorem 2 partitioning.
Outcome run_pdm_method(const loopir::LoopNest& nest);

/// All of the above, in Table 1 order.
std::vector<Outcome> run_all_methods(const loopir::LoopNest& nest);

/// Formats outcomes as an aligned text table (the Table 1 regeneration).
std::string format_table(const std::string& loop_name,
                         const std::vector<Outcome>& outcomes);

}  // namespace vdep::baselines
