#include "core/suite.h"

namespace vdep::core {

using loopir::AffineExpr;
using loopir::Bound;
using loopir::Expr;
using loopir::LoopNest;
using loopir::LoopNestBuilder;
using intlin::Vec;

LoopNest example41(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", -n, n).loop("i2", -n, n);
  i64 ext = 5 * n + 10;
  b.array("A", {{-ext, ext}, {-ext, ext}});
  b.assign(b.ref("A", {b.affine({3, -2}, 2), b.affine({-2, 3}, -2)}),
           Expr::add(Expr::add(b.read("A", {b.idx(0), b.idx(1)}),
                               b.read("A", {b.affine({1, 0}, 2),
                                            b.affine({0, 1}, -2)})),
                     Expr::constant(1)));
  return b.build();
}

LoopNest example42(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", -n, n).loop("i2", -n, n);
  i64 ext = 3 * n + 10;
  b.array("A", {{-ext, ext}});
  b.array("B", {{-n, n}, {-n, n}});
  b.assign(b.ref("A", {b.affine({1, -2}, 4)}),
           Expr::add(b.read("A", {b.affine({1, -2}, 0)}), Expr::constant(1)));
  b.assign(b.ref("B", {b.idx(0), b.idx(1)}),
           b.read("A", {b.affine({1, -2}, 8)}));
  return b.build();
}

LoopNest uniform_wavefront(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", 0, n).loop("i2", 0, n);
  b.array("A", {{-1, n}, {-1, n}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
           Expr::add(b.read("A", {b.affine({1, 0}, -1), b.idx(1)}),
                     b.read("A", {b.idx(0), b.affine({0, 1}, -1)})));
  return b.build();
}

LoopNest uniform_blocked(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", 0, n).loop("i2", 0, n);
  b.array("A", {{-4, n + 4}, {-4, n + 4}});
  b.assign(b.ref("A", {b.affine({1, 0}, 2), b.idx(1)}),
           Expr::add(b.read("A", {b.idx(0), b.affine({0, 1}, -2)}),
                     b.read("A", {b.affine({1, 0}, 2), b.affine({0, 1}, 2)})));
  return b.build();
}

LoopNest zero_column(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", 0, n).loop("i2", 0, n);
  b.array("A", {{0, n + 1}, {0, n}});
  b.assign(b.ref("A", {b.affine({1, 0}, 1), b.idx(1)}),
           b.read("A", {b.idx(0), b.idx(1)}));
  return b.build();
}

LoopNest parity_independent(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", 0, n).loop("i2", 0, n);
  b.array("A", {{-1, 2 * n + 2}, {0, n}});
  b.assign(b.ref("A", {b.affine({2, 0}, 0), b.idx(1)}),
           Expr::add(b.read("A", {b.affine({2, 0}, 1), b.idx(1)}),
                     Expr::constant(3)));
  return b.build();
}

LoopNest sequential_chain(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", 0, n);
  b.array("A", {{0, n + 1}});
  b.assign(b.ref("A", {b.affine({1}, 1)}),
           Expr::add(b.read("A", {b.idx(0)}), Expr::constant(1)));
  return b.build();
}

LoopNest variable_3deep(i64 n) {
  // Example 4.1 lifted to three dimensions: the write's linear part is
  // nonsingular, distances are (2s+2)(1,-1,0) with s = i1-i2 — a rank-1
  // PDM [2 -2 0], so Algorithm 1 exposes two DOALL loops and the trailing
  // block still partitions by 2.
  LoopNestBuilder b;
  b.loop("i1", -n, n).loop("i2", -n, n).loop("i3", 0, n);
  i64 ext = 5 * n + 10;
  b.array("A", {{-ext, ext}, {-ext, ext}, {0, n}});
  b.assign(b.ref("A", {b.affine({3, -2, 0}, 2), b.affine({-2, 3, 0}, -2),
                       b.idx(2)}),
           Expr::add(b.read("A", {b.idx(0), b.idx(1), b.idx(2)}),
                     Expr::constant(1)));
  return b.build();
}

LoopNest triangular_uniform(i64 n) {
  // do i1 = 0, n; do i2 = i1, n: A[i1][i2] = A[i1-1][i2] + 1.
  LoopNestBuilder b;
  b.loop("i1", 0, n);
  b.loop("i2", Bound(AffineExpr(Vec{1, 0}, 0)), Bound(AffineExpr::constant(2, n)));
  b.array("A", {{-1, n}, {0, n}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
           Expr::add(b.read("A", {b.affine({1, 0}, -1), b.idx(1)}),
                     Expr::constant(1)));
  return b.build();
}

LoopNest matmul_reduction(i64 n) {
  LoopNestBuilder b;
  b.loop("i", 0, n).loop("j", 0, n).loop("k", 0, n);
  b.array("C", {{0, n}, {0, n}});
  b.array("A", {{0, n}, {0, n}});
  b.array("B", {{0, n}, {0, n}});
  b.assign(b.ref("C", {b.idx(0), b.idx(1)}),
           Expr::add(b.read("C", {b.idx(0), b.idx(1)}),
                     Expr::mul(b.read("A", {b.idx(0), b.idx(2)}),
                               b.read("B", {b.idx(2), b.idx(1)}))));
  return b.build();
}

LoopNest skewed_extent(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", 0, 1).loop("i2", 0, n);
  b.array("A", {{0, 1}, {0, n}});
  b.array("B", {{0, 1}, {0, n}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
           Expr::add(Expr::mul(b.read("B", {b.idx(0), b.idx(1)}),
                               Expr::constant(3)),
                     Expr::add(Expr::mul(Expr::index(0), Expr::constant(7)),
                               Expr::index(1))));
  return b.build();
}

std::vector<NamedNest> paper_suite(i64 n) {
  return {
      {"example_4_1", "paper §4.1: variable distance, rank-1 PDM [2 -2]",
       example41(n)},
      {"example_4_2", "paper §4.2: variable distance, full-rank PDM det 4",
       example42(n)},
      {"uniform_wavefront", "A[i][j] = A[i-1][j] + A[i][j-1]",
       uniform_wavefront(n)},
      {"uniform_blocked", "uniform distances (2,0), (0,2): det-4 partitioning",
       uniform_blocked(n)},
      {"zero_column", "A[i1+1, i2] = A[i1, i2]: inner loop DOALL as written",
       zero_column(n)},
      {"parity_independent", "writes even, reads odd: dependence-free",
       parity_independent(n)},
      {"sequential_chain", "A[i+1] = A[i]: fully sequential",
       sequential_chain(n)},
      {"variable_3deep", "3-deep, rank-1 PDM: two DOALL loops",
       variable_3deep(n)},
      {"triangular_uniform", "triangular bounds, uniform carried dependence",
       triangular_uniform(n)},
      {"matmul_reduction", "C[i,j] += A[i,k]*B[k,j]: i,j DOALL, k serial",
       matmul_reduction(n)},
      {"skewed_extent", "outer extent 2, inner extent n: inner-DOALL shape",
       skewed_extent(n)},
  };
}

}  // namespace vdep::core
