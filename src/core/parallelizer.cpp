#include "core/parallelizer.h"

#include <sstream>

#include "support/error.h"

namespace vdep::core {

std::string Report::summary() const {
  std::ostringstream os;
  os << "=== vdep parallelization report ===\n";
  os << "-- original nest --\n" << nest.to_string();
  os << "-- dependence analysis --\n";
  if (pdm.pairs().empty()) {
    os << "no dependent reference pairs\n";
  } else {
    for (const dep::DepPair& p : pdm.pairs()) {
      os << dep::to_string(p.kind) << ": S" << p.stmt_a + 1 << " "
         << p.a.to_string(nest.index_names()) << "  <->  S" << p.stmt_b + 1
         << " " << p.b.to_string(nest.index_names())
         << (p.solution.is_uniform() ? "  [uniform]" : "  [variable]") << "\n";
      os << "    delta0 = " << intlin::to_string(p.solution.offset)
         << ", generators = " << p.solution.generators.to_string() << "\n";
    }
  }
  os << pdm.to_string() << "\n";
  os << "-- transformation (Theorem 1 legal) --\n";
  os << "T = " << plan.t.to_string() << ",  H*T = "
     << plan.transformed_pdm.to_string() << "\n";
  if (!plan.algorithm1_ops.empty()) {
    os << "Algorithm 1 ops:";
    for (const std::string& op : plan.algorithm1_ops) os << " " << op;
    os << "\n";
  }
  os << "-- parallel structure --\n";
  os << doall_loops << " outer DOALL loop(s), " << partition_classes
     << " independent partition class(es)\n";
  if (work_items > 0) {
    os << "measured: " << work_items << " independent work items, longest "
       << max_item << " of " << total_iterations << " iterations\n";
  }
  if (runtime_tasks > 0) {
    os << "streaming run: " << runtime_tasks << " descriptor(s), "
       << runtime_steals << " steal(s)\n";
  }
  os << "-- transformed nest --\n" << transformed.nest.to_string();
  return os.str();
}

Report PdmParallelizer::analyze(const loopir::LoopNest& nest) const {
  Report r;
  r.nest = nest;
  r.pdm = dep::compute_pdm(nest);
  r.transformed =
      codegen::TransformedNest{nest, intlin::Mat::identity(nest.depth()),
                               intlin::Mat::identity(nest.depth())};
  r.plan = trans::plan_transform(r.pdm);
  r.transformed = codegen::rewrite_nest(nest, r.plan);
  r.doall_loops = r.plan.num_doall;
  r.partition_classes = r.plan.partition_classes;

  if (opts_.measure) {
    // Counting scan, not a materialized schedule: O(1) memory, so the
    // measurement never undercuts the streaming executor's footprint.
    exec::RunStats ms = exec::measure_schedule(nest, r.plan);
    r.work_items = ms.work_items;
    r.max_item = ms.max_item;
    r.total_iterations = ms.iterations;
  }
  if (opts_.emit_c) {
    codegen::EmitOptions eo;
    eo.openmp = opts_.openmp;
    r.c_original = codegen::emit_c_original(nest, eo);
    r.c_transformed = codegen::emit_c_transformed(nest, r.plan, eo);
  }
  return r;
}

Report PdmParallelizer::parallelize_and_check(const loopir::LoopNest& nest,
                                              ThreadPool& pool) const {
  Report r = analyze(nest);
  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore par = ref;
  exec::run_sequential(nest, ref);
  if (opts_.exec_mode == ExecMode::Streaming) {
    runtime::StreamOptions ro;
    ro.num_threads = pool.size();
    runtime::StreamExecutor ex(nest, r.plan, ro);
    runtime::RuntimeStats rs = ex.run(par, pool);  // reuse the caller's pool
    r.runtime_tasks = rs.total_tasks();
    r.runtime_steals = rs.total_steals();
  } else {
    exec::run_parallel(nest, r.plan, par, pool);
  }
  VDEP_CHECK(ref == par,
             "parallel execution diverged from the sequential reference");
  return r;
}

}  // namespace vdep::core
