#include "core/parallelizer.h"

#include <sstream>

#include "support/error.h"

namespace vdep::core {

std::string Report::summary() const {
  std::ostringstream os;
  os << "=== vdep parallelization report ===\n";
  os << "-- original nest --\n" << nest.to_string();
  os << "-- dependence analysis --\n";
  if (pdm.pairs().empty()) {
    os << "no dependent reference pairs\n";
  } else {
    for (const dep::DepPair& p : pdm.pairs()) {
      os << dep::to_string(p.kind) << ": S" << p.stmt_a + 1 << " "
         << p.a.to_string(nest.index_names()) << "  <->  S" << p.stmt_b + 1
         << " " << p.b.to_string(nest.index_names())
         << (p.solution.is_uniform() ? "  [uniform]" : "  [variable]") << "\n";
      os << "    delta0 = " << intlin::to_string(p.solution.offset)
         << ", generators = " << p.solution.generators.to_string() << "\n";
    }
  }
  os << pdm.to_string() << "\n";
  os << "-- transformation (Theorem 1 legal) --\n";
  os << "T = " << plan.t.to_string() << ",  H*T = "
     << plan.transformed_pdm.to_string() << "\n";
  if (!plan.algorithm1_ops.empty()) {
    os << "Algorithm 1 ops:";
    for (const std::string& op : plan.algorithm1_ops) os << " " << op;
    os << "\n";
  }
  os << "-- parallel structure --\n";
  os << doall_loops << " outer DOALL loop(s), " << partition_classes
     << " independent partition class(es)\n";
  if (work_items > 0) {
    os << "measured: " << work_items << " independent work items, longest "
       << max_item << " of " << total_iterations << " iterations\n";
  }
  if (runtime_tasks > 0) {
    os << "streaming run: " << runtime_tasks << " descriptor(s), "
       << runtime_steals << " steal(s)\n";
  }
  os << "-- transformed nest --\n" << transformed.nest.to_string();
  return os.str();
}

Report PdmParallelizer::analyze(const loopir::LoopNest& nest) const {
  // value() re-raises the typed exception (UnsupportedError, ...) so the
  // wrapper keeps the historical throwing contract.
  CompiledLoop loop = compiler_.compile(nest).value();

  Report r;
  r.nest = nest;
  r.pdm = loop.analysis().pdm;
  r.plan = loop.plan().transform;
  r.transformed = codegen::rewrite_nest(nest, r.plan);
  r.doall_loops = loop.plan().doall_loops;
  r.partition_classes = loop.plan().partition_classes;

  if (opts_.measure) {
    exec::RunStats ms = loop.measure();
    r.work_items = ms.work_items;
    r.max_item = ms.max_item;
    r.total_iterations = ms.iterations;
  }
  if (opts_.emit_c) {
    r.c_original = loop.codegen(CodegenOptions{}
                                    .target(CodegenTarget::kOriginal)
                                    .openmp(opts_.openmp));
    r.c_transformed = loop.codegen(CodegenOptions{}.openmp(opts_.openmp));
  }
  return r;
}

Report PdmParallelizer::parallelize_and_check(const loopir::LoopNest& nest,
                                              ThreadPool& pool) const {
  Report r = analyze(nest);
  // Cache hit: the structure was just analyzed.
  CompiledLoop loop = compiler_.compile(nest).value();
  bool streaming = opts_.exec_mode == ExecMode::Streaming;
  ExecPolicy policy;
  policy.mode(streaming ? vdep::ExecMode::kStreaming
                        : vdep::ExecMode::kMaterialized);
  ExecReport er = loop.check(policy, pool).value();
  if (streaming) {
    r.runtime_tasks = er.tasks;
    r.runtime_steals = er.steals;
  }
  return r;
}

}  // namespace vdep::core
