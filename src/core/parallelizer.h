// PdmParallelizer — the paper's contribution as a single public entry
// point: analyze a perfectly nested affine loop, derive the pseudo distance
// matrix, choose a legal transformation (Algorithm 1 + Theorem 2), generate
// the transformed code and report the exploited parallelism.
//
//   vdep::core::PdmParallelizer p;
//   vdep::core::Report r = p.analyze(nest);
//   std::cout << r.summary();          // PDM, transform, doall, classes
//   std::cout << r.c_transformed;      // compilable C with omp pragmas
#pragma once

#include <string>

#include "baselines/baseline.h"
#include "codegen/emit_c.h"
#include "exec/runner.h"
#include "runtime/stream_executor.h"

namespace vdep::core {

using intlin::i64;

struct Report {
  /// The analyzed nest (copy, for printing).
  loopir::LoopNest nest;
  /// Pseudo distance matrix (Section 2).
  dep::Pdm pdm;
  /// Legal transformation plan (Section 3).
  trans::TransformPlan plan;
  /// Rewritten nest over the transformed indices.
  codegen::TransformedNest transformed;

  /// Static parallel structure: number of leading DOALL loops and
  /// partition classes (DOALL width is bounds-dependent).
  int doall_loops = 0;
  i64 partition_classes = 1;

  /// Measured on the bounded nest: independent work items and the longest
  /// sequential item (the parallel makespan in iteration counts).
  i64 work_items = 0;
  i64 max_item = 0;
  i64 total_iterations = 0;

  /// Streaming-run counters (populated by parallelize_and_check when
  /// Options::exec_mode == ExecMode::Streaming).
  i64 runtime_tasks = 0;
  i64 runtime_steals = 0;

  /// Generated sources (empty when Options::emit_c is false).
  std::string c_original;
  std::string c_transformed;

  /// Multi-section human-readable report (what the FPT compiler would log).
  std::string summary() const;
};

/// How parallelize_and_check executes the plan.
///
///   Materialized — exec::build_schedule stores every iteration vector of
///                  every work item, then replays on a ThreadPool;
///                  O(total iterations x depth) schedule memory.
///   Streaming    — runtime::StreamExecutor walks descriptors through the
///                  Partitioning scan recurrence with work stealing;
///                  O(active descriptors) schedule memory. The default.
enum class ExecMode { Materialized, Streaming };

class PdmParallelizer {
 public:
  struct Options {
    bool emit_c = true;       ///< generate C sources in the report
    bool openmp = true;       ///< annotate generated C with omp pragmas
    bool measure = true;  ///< measure parallelism (counting scan, O(1) mem)
    ExecMode exec_mode = ExecMode::Streaming;  ///< execution path
  };

  PdmParallelizer() = default;
  explicit PdmParallelizer(Options opts) : opts_(opts) {}

  /// Full analysis pipeline; pure (does not execute the loop).
  Report analyze(const loopir::LoopNest& nest) const;

  /// Analysis + execution proof: runs the original sequentially and the
  /// plan in parallel on `pool`, throwing InternalError if the final
  /// stores diverge. Returns the report.
  Report parallelize_and_check(const loopir::LoopNest& nest,
                               ThreadPool& pool) const;

 private:
  Options opts_;
};

}  // namespace vdep::core
