// PdmParallelizer — DEPRECATED compatibility facade over the staged
// compilation API (api/vdep.h).
//
// This was the original single entry point: analyze() re-ran the full
// intlin/poly pipeline on every call and returned a god-object Report
// bundling analysis, codegen and execution counters. It is now a thin
// wrapper over vdep::Compiler — each PdmParallelizer owns a Compiler
// session, so repeated calls on the same loop *structure* (any bounds)
// hit the plan cache — and is kept only so existing callers compile
// unchanged. New code should use the staged API directly:
//
//   vdep::Compiler compiler;
//   auto loop = compiler.compile(nest);            // Expected<CompiledLoop>
//   loop->analysis(); loop->plan();                // cached stages
//   loop->codegen(); loop->check(policy);          // lazy / at any bounds
//
// Migration table: docs/API.md.
#pragma once

#include <string>

#include "api/vdep.h"
#include "baselines/baseline.h"
#include "codegen/emit_c.h"
#include "exec/runner.h"
#include "runtime/stream_executor.h"

namespace vdep::core {

using intlin::i64;

struct Report {
  /// The analyzed nest (copy, for printing).
  loopir::LoopNest nest;
  /// Pseudo distance matrix (Section 2).
  dep::Pdm pdm;
  /// Legal transformation plan (Section 3).
  trans::TransformPlan plan;
  /// Rewritten nest over the transformed indices.
  codegen::TransformedNest transformed;

  /// Static parallel structure: number of leading DOALL loops and
  /// partition classes (DOALL width is bounds-dependent).
  int doall_loops = 0;
  i64 partition_classes = 1;

  /// Measured on the bounded nest: independent work items and the longest
  /// sequential item (the parallel makespan in iteration counts).
  i64 work_items = 0;
  i64 max_item = 0;
  i64 total_iterations = 0;

  /// Streaming-run counters (populated by parallelize_and_check when
  /// Options::exec_mode == ExecMode::Streaming).
  i64 runtime_tasks = 0;
  i64 runtime_steals = 0;

  /// Generated sources (empty when Options::emit_c is false).
  std::string c_original;
  std::string c_transformed;

  /// Multi-section human-readable report (what the FPT compiler would log).
  std::string summary() const;
};

/// How parallelize_and_check executes the plan (see vdep::ExecMode for the
/// staged-API equivalent).
enum class ExecMode { Materialized, Streaming };

/// DEPRECATED: prefer vdep::Compiler (see the file comment). Kept as a
/// thin wrapper so pre-staged-API code keeps compiling.
class PdmParallelizer {
 public:
  struct Options {
    bool emit_c = true;       ///< generate C sources in the report
    bool openmp = true;       ///< annotate generated C with omp pragmas
    bool measure = true;  ///< measure parallelism (counting scan, O(1) mem)
    ExecMode exec_mode = ExecMode::Streaming;  ///< execution path
  };

  PdmParallelizer() = default;
  explicit PdmParallelizer(Options opts) : opts_(opts) {}

  /// Full analysis pipeline; pure (does not execute the loop). Served from
  /// the session plan cache when the structure was seen before.
  Report analyze(const loopir::LoopNest& nest) const;

  /// Analysis + execution proof: runs the original sequentially and the
  /// plan in parallel on `pool`, throwing InternalError if the final
  /// stores diverge. Returns the report.
  Report parallelize_and_check(const loopir::LoopNest& nest,
                               ThreadPool& pool) const;

 private:
  Options opts_;
  Compiler compiler_;  ///< session: structure-keyed plan cache
};

}  // namespace vdep::core
