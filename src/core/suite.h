// Canonical loop suite: the two reconstructed worked examples of the paper
// (Section 4) plus classical kernels covering the dependence-structure
// spectrum. Used by the examples, the Table-1 bench and integration tests.
#pragma once

#include <string>
#include <vector>

#include "loopir/builder.h"

namespace vdep::core {

using intlin::i64;

struct NamedNest {
  std::string name;
  std::string description;
  loopir::LoopNest nest;
};

/// Paper Example 4.1 (reconstructed; DESIGN.md §3): variable distances, all
/// even multiples of (1,-1); PDM = [2 -2] (rank 1). Expected: 1 outer DOALL
/// + 2 partition classes after Algorithm 1.
loopir::LoopNest example41(i64 n);

/// Paper Example 4.2 (reconstructed; DESIGN.md §3): variable distances with
/// d1 - 2 d2 = 4; PDM = [[2,1],[0,2]] (full rank, det 4). Expected: 4
/// independent classes with skewed offsets.
loopir::LoopNest example42(i64 n);

/// Classic wavefront: A[i][j] = A[i-1][j] + A[i][j-1]; uniform distances
/// (1,0) and (0,1). No DOALL exists without skewing.
loopir::LoopNest uniform_wavefront(i64 n);

/// Uniform distances (2,0) and (0,2): the uniform partitioning showcase
/// (det 4), handled by D'Hollander 1992 and by the PDM alike.
loopir::LoopNest uniform_blocked(i64 n);

/// Zero PDM column: A[i1+1, i2] = A[i1, i2] — loop i2 is DOALL as written.
loopir::LoopNest zero_column(i64 n);

/// Writes even, reads odd elements: dependence-free by the exact test.
loopir::LoopNest parity_independent(i64 n);

/// Fully sequential chain A[i+1] = A[i] (the pathological case: any method
/// must report parallelism 1).
loopir::LoopNest sequential_chain(i64 n);

/// 3-deep nest with a rank-1 PDM: two DOALL loops after Algorithm 1.
loopir::LoopNest variable_3deep(i64 n);

/// Triangular iteration space with a uniform carried dependence.
loopir::LoopNest triangular_uniform(i64 n);

/// Matrix-multiply reduction C[i,j] += A[i,k]*B[k,j] (3-deep): the PDM is
/// [0 0 1], so i and j are DOALL and only the reduction loop k is serial.
loopir::LoopNest matmul_reduction(i64 n);

/// Skewed DOALL extents: i1 in [0, 1] (outer extent 2), i2 in [0, n], both
/// DOALL (dependence-free, T = I). All the parallelism lives in the inner
/// dimension — the shape an outer-only descriptor splitter serializes.
loopir::LoopNest skewed_extent(i64 n);

/// The full suite at size n (names are stable identifiers for benches).
std::vector<NamedNest> paper_suite(i64 n);

}  // namespace vdep::core
