#include "exec/kernel.h"

#include "poly/constraints.h"
#include "support/checked.h"
#include "support/error.h"

namespace vdep::exec {

void prove_subscript_ranges(const loopir::LoopNest& nest) {
  if (nest.has_indirection())
    throw UnsupportedError(
        "subscript ranges of indirect references (A[B[i]]) cannot be proven "
        "statically; the inspector validates them at runtime");
  poly::ConstraintSystem cs = poly::ConstraintSystem::from_nest(nest);
  std::vector<std::pair<i64, i64>> box;
  for (int k = 0; k < nest.depth(); ++k) {
    auto r = cs.variable_range(k);
    if (!r.has_value())
      throw UnsupportedError("unbounded loop cannot be range-proven");
    box.push_back(*r);
  }
  nest.for_each_access([&](const loopir::ArrayRef& ref, int, bool) {
    const loopir::ArrayDecl& decl = nest.array(ref.array);
    for (int d = 0; d < decl.arity(); ++d) {
      const loopir::AffineExpr& s = ref.subscripts[static_cast<std::size_t>(d)];
      auto [lo, hi] = decl.dims[static_cast<std::size_t>(d)];
      i64 smin = s.constant_term(), smax = s.constant_term();
      for (int k = 0; k < nest.depth(); ++k) {
        i64 c = s.coeff(k);
        auto [bl, bh] = box[static_cast<std::size_t>(k)];
        smin = checked::add(smin, checked::mul(c, c >= 0 ? bl : bh));
        smax = checked::add(smax, checked::mul(c, c >= 0 ? bh : bl));
      }
      if (smin < lo || smax > hi)
        throw UnsupportedError("subscript of " + ref.array +
                               " can leave the declared range");
    }
  });
}

}  // namespace vdep::exec
