#include "exec/array_store.h"

#include "support/error.h"

namespace vdep::exec {

ArrayStore::ArrayStore(const loopir::LoopNest& nest) {
  for (const loopir::ArrayDecl& a : nest.arrays()) {
    Slot s;
    s.decl = a;
    s.data.assign(static_cast<std::size_t>(a.element_count()), 0);
    data_.emplace(a.name, std::move(s));
  }
}

void ArrayStore::fill_pattern() {
  for (auto& [name, s] : data_) {
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : name) h = (h ^ static_cast<std::uint64_t>(c)) * 1099511628211ULL;
    for (std::size_t k = 0; k < s.data.size(); ++k) {
      std::uint64_t v = (k * 2654435761ULL + h);
      s.data[k] = static_cast<i64>(v % 199) - 99;
    }
  }
}

const ArrayStore::Slot& ArrayStore::slot(const std::string& array) const {
  auto it = data_.find(array);
  VDEP_REQUIRE(it != data_.end(), "unknown array in store: " + array);
  return it->second;
}

ArrayStore::Slot& ArrayStore::slot(const std::string& array) {
  auto it = data_.find(array);
  VDEP_REQUIRE(it != data_.end(), "unknown array in store: " + array);
  return it->second;
}

i64 ArrayStore::read(const std::string& array, const Vec& coords) const {
  const Slot& s = slot(array);
  return s.data[static_cast<std::size_t>(s.decl.linear_index(coords))];
}

void ArrayStore::write(const std::string& array, const Vec& coords, i64 value) {
  Slot& s = slot(array);
  s.data[static_cast<std::size_t>(s.decl.linear_index(coords))] = value;
}

i64 ArrayStore::checksum() const {
  // Position-keyed SplitMix64 accumulation. The old polynomial digest
  // ((sum * 31 + v) % p) serialized a hardware divide per element, which
  // cost more than actually executing a small request — serving benches
  // were measuring the digest. Summing independent mixes keeps the loop
  // divide-free and lets iterations overlap, while a value moving between
  // positions still changes the digest.
  std::uint64_t sum = 0;
  std::uint64_t pos = 0;
  for (const auto& [name, s] : data_) {
    for (i64 v : s.data) {
      std::uint64_t z = static_cast<std::uint64_t>(v) +
                        0x9e3779b97f4a7c15ULL * ++pos;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      sum += z ^ (z >> 31);
    }
  }
  return static_cast<i64>(sum);
}

const std::vector<i64>& ArrayStore::raw(const std::string& array) const {
  return slot(array).data;
}

std::vector<i64>& ArrayStore::raw_mutable(const std::string& array) {
  return slot(array).data;
}

}  // namespace vdep::exec
