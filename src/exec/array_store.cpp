#include "exec/array_store.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "support/error.h"
#include "topo/affinity.h"
#include "topo/topology.h"

namespace vdep::exec {

namespace {

/// First-touch granularity: whole pages, so two touch threads never split
/// ownership of one page.
constexpr std::size_t kPageElems = 4096 / sizeof(i64);
/// Below this (64 KiB) the spawn/join costs more than the touch saves.
constexpr std::size_t kParallelMinElems = (64u << 10) / sizeof(i64);

}  // namespace

ArrayStore::ArrayStore(const loopir::LoopNest& nest, Placement placement,
                       std::size_t touch_threads) {
  for (const loopir::ArrayDecl& a : nest.arrays()) {
    Slot s;
    s.decl = a;
    // resize() with UninitAlloc maps the pages without writing them; the
    // zeroing pass below performs the first (placement-deciding) touch.
    s.data.resize(static_cast<std::size_t>(a.element_count()));
    data_.emplace(a.name, std::move(s));
  }
  zero_all(placement, touch_threads);
}

void ArrayStore::zero_all(Placement placement, std::size_t touch_threads) {
  const bool pinnable = topo::pin_supported() && topo::pin_env_enabled();
  const topo::Topology& topology = topo::Topology::system();
  std::size_t threads = touch_threads != 0 ? touch_threads
                                           : topology.num_cpus();
  threads = std::min<std::size_t>(threads, topology.num_cpus());
  for (auto& [name, s] : data_) {
    i64* p = s.data.data();
    const std::size_t count = s.data.size();
    if (placement != Placement::kFirstTouch || threads <= 1 || !pinnable ||
        count < kParallelMinElems) {
      if (count > 0) std::memset(p, 0, count * sizeof(i64));
      continue;
    }
    // Page-aligned contiguous slices in worker order: worker k's slice is
    // the one the driver's position-ordered pre-seed will hand it.
    const std::vector<int> assignment = topology.assign_workers(threads);
    const std::size_t pages = (count + kPageElems - 1) / kPageElems;
    auto touch = [&](std::size_t k) {
      topo::AffinityGuard pin(
          topology.cpus()[static_cast<std::size_t>(assignment[k])].cpu);
      const std::size_t lo = pages * k / threads * kPageElems;
      const std::size_t hi =
          std::min(count, pages * (k + 1) / threads * kPageElems);
      if (hi > lo) std::memset(p + lo, 0, (hi - lo) * sizeof(i64));
    };
    std::vector<std::thread> workers;
    workers.reserve(threads - 1);
    for (std::size_t k = 1; k < threads; ++k) workers.emplace_back(touch, k);
    touch(0);
    for (std::thread& t : workers) t.join();
  }
}

void ArrayStore::fill_pattern() {
  for (auto& [name, s] : data_) {
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : name) h = (h ^ static_cast<std::uint64_t>(c)) * 1099511628211ULL;
    for (std::size_t k = 0; k < s.data.size(); ++k) {
      std::uint64_t v = (k * 2654435761ULL + h);
      s.data[k] = static_cast<i64>(v % 199) - 99;
    }
  }
}

const ArrayStore::Slot& ArrayStore::slot(const std::string& array) const {
  auto it = data_.find(array);
  VDEP_REQUIRE(it != data_.end(), "unknown array in store: " + array);
  return it->second;
}

ArrayStore::Slot& ArrayStore::slot(const std::string& array) {
  auto it = data_.find(array);
  VDEP_REQUIRE(it != data_.end(), "unknown array in store: " + array);
  return it->second;
}

i64 ArrayStore::read(const std::string& array, const Vec& coords) const {
  const Slot& s = slot(array);
  return s.data[static_cast<std::size_t>(s.decl.linear_index(coords))];
}

void ArrayStore::write(const std::string& array, const Vec& coords, i64 value) {
  Slot& s = slot(array);
  s.data[static_cast<std::size_t>(s.decl.linear_index(coords))] = value;
}

i64 ArrayStore::checksum() const {
  // Position-keyed SplitMix64 accumulation. The old polynomial digest
  // ((sum * 31 + v) % p) serialized a hardware divide per element, which
  // cost more than actually executing a small request — serving benches
  // were measuring the digest. Summing independent mixes keeps the loop
  // divide-free and lets iterations overlap, while a value moving between
  // positions still changes the digest.
  std::uint64_t sum = 0;
  std::uint64_t pos = 0;
  for (const auto& [name, s] : data_) {
    for (i64 v : s.data) {
      std::uint64_t z = static_cast<std::uint64_t>(v) +
                        0x9e3779b97f4a7c15ULL * ++pos;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      sum += z ^ (z >> 31);
    }
  }
  return static_cast<i64>(sum);
}

const ArrayStore::Buffer& ArrayStore::raw(const std::string& array) const {
  return slot(array).data;
}

ArrayStore::Buffer& ArrayStore::raw_mutable(const std::string& array) {
  return slot(array).data;
}

}  // namespace vdep::exec
