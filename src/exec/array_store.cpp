#include "exec/array_store.h"

#include "support/error.h"

namespace vdep::exec {

ArrayStore::ArrayStore(const loopir::LoopNest& nest) {
  for (const loopir::ArrayDecl& a : nest.arrays()) {
    Slot s;
    s.decl = a;
    s.data.assign(static_cast<std::size_t>(a.element_count()), 0);
    data_.emplace(a.name, std::move(s));
  }
}

void ArrayStore::fill_pattern() {
  for (auto& [name, s] : data_) {
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : name) h = (h ^ static_cast<std::uint64_t>(c)) * 1099511628211ULL;
    for (std::size_t k = 0; k < s.data.size(); ++k) {
      std::uint64_t v = (k * 2654435761ULL + h);
      s.data[k] = static_cast<i64>(v % 199) - 99;
    }
  }
}

const ArrayStore::Slot& ArrayStore::slot(const std::string& array) const {
  auto it = data_.find(array);
  VDEP_REQUIRE(it != data_.end(), "unknown array in store: " + array);
  return it->second;
}

ArrayStore::Slot& ArrayStore::slot(const std::string& array) {
  auto it = data_.find(array);
  VDEP_REQUIRE(it != data_.end(), "unknown array in store: " + array);
  return it->second;
}

i64 ArrayStore::read(const std::string& array, const Vec& coords) const {
  const Slot& s = slot(array);
  return s.data[static_cast<std::size_t>(s.decl.linear_index(coords))];
}

void ArrayStore::write(const std::string& array, const Vec& coords, i64 value) {
  Slot& s = slot(array);
  s.data[static_cast<std::size_t>(s.decl.linear_index(coords))] = value;
}

i64 ArrayStore::checksum() const {
  i64 sum = 0;
  for (const auto& [name, s] : data_)
    for (i64 v : s.data) sum = (sum * 31 + v) % 1000000007;
  return sum;
}

const std::vector<i64>& ArrayStore::raw(const std::string& array) const {
  return slot(array).data;
}

std::vector<i64>& ArrayStore::raw_mutable(const std::string& array) {
  return slot(array).data;
}

}  // namespace vdep::exec
