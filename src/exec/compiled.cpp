#include "exec/compiled.h"

#include "poly/constraints.h"
#include "poly/fourier_motzkin.h"
#include "support/error.h"

namespace vdep::exec {

CompiledKernel::CompiledKernel(const loopir::LoopNest& nest, ArrayStore& store)
    : nest_(nest), store_(&store) {
  if (nest.has_indirection())
    throw UnsupportedError(
        "CompiledKernel requires affine subscripts; indirect references run "
        "through the interpreter");
  // Iteration box for the one-time subscript range proof.
  poly::ConstraintSystem cs = poly::ConstraintSystem::from_nest(nest);
  box_.clear();
  for (int k = 0; k < nest.depth(); ++k) {
    auto r = cs.variable_range(k);
    VDEP_REQUIRE(r.has_value(), "unbounded loop cannot be compiled");
    box_.push_back(*r);
  }
  for (const loopir::Assign& a : nest.body()) {
    Stmt s;
    s.lhs = compile_access(a.lhs);
    compile_expr(*a.rhs, s, 0);
    stmts_.push_back(std::move(s));
  }
  for (const Stmt& s : stmts_)
    stack_size_ = std::max(stack_size_, static_cast<std::size_t>(s.max_stack));
  scratch_ = make_scratch();
}

CompiledKernel::Access CompiledKernel::compile_access(
    const loopir::ArrayRef& ref) {
  const loopir::ArrayDecl& decl = nest_.array(ref.array);
  Access acc;
  acc.base = store_->raw_mutable(ref.array).data();
  for (std::size_t a = 0; a < nest_.arrays().size(); ++a)
    if (nest_.arrays()[a].name == ref.array)
      acc.array_ord = static_cast<int>(a);
  acc.coeffs.assign(static_cast<std::size_t>(nest_.depth()), 0);
  acc.c0 = 0;
  i64 stride = 1;
  // Row-major: process dimensions right-to-left accumulating strides.
  for (int d = decl.arity() - 1; d >= 0; --d) {
    const loopir::AffineExpr& s = ref.subscripts[static_cast<std::size_t>(d)];
    auto [lo, hi] = decl.dims[static_cast<std::size_t>(d)];
    // One-time range proof over the (rectangular hull of the) space.
    i64 smin = s.constant_term(), smax = s.constant_term();
    for (int k = 0; k < nest_.depth(); ++k) {
      i64 c = s.coeff(k);
      auto [bl, bh] = box_[static_cast<std::size_t>(k)];
      smin = checked::add(smin, checked::mul(c, c >= 0 ? bl : bh));
      smax = checked::add(smax, checked::mul(c, c >= 0 ? bh : bl));
    }
    VDEP_REQUIRE(smin >= lo && smax <= hi,
                 "subscript of " + ref.array +
                     " can leave the declared range; cannot compile");
    for (int k = 0; k < nest_.depth(); ++k)
      acc.coeffs[static_cast<std::size_t>(k)] = checked::add(
          acc.coeffs[static_cast<std::size_t>(k)], checked::mul(stride, s.coeff(k)));
    acc.c0 = checked::add(acc.c0,
                          checked::mul(stride, checked::sub(s.constant_term(), lo)));
    stride = checked::mul(stride, hi - lo + 1);
  }
  return acc;
}

void CompiledKernel::compile_expr(const loopir::Expr& e, Stmt& stmt, int depth) {
  using K = loopir::Expr::Kind;
  switch (e.kind()) {
    case K::kConst:
      stmt.program.push_back({Op::kPushConst, e.value(), 0});
      stmt.max_stack = std::max(stmt.max_stack, depth + 1);
      return;
    case K::kIndex:
      stmt.program.push_back({Op::kPushIndex, 0, e.index()});
      stmt.max_stack = std::max(stmt.max_stack, depth + 1);
      return;
    case K::kRead: {
      int slot = static_cast<int>(reads_.size());
      reads_.push_back(compile_access(e.ref()));
      stmt.program.push_back({Op::kRead, 0, slot});
      stmt.max_stack = std::max(stmt.max_stack, depth + 1);
      return;
    }
    case K::kAdd:
    case K::kSub:
    case K::kMul:
      compile_expr(*e.lhs(), stmt, depth);
      compile_expr(*e.rhs(), stmt, depth + 1);
      stmt.program.push_back(
          {e.kind() == K::kAdd   ? Op::kAdd
           : e.kind() == K::kSub ? Op::kSub
                                 : Op::kMul,
           0, 0});
      return;
  }
  VDEP_CHECK(false, "unreachable expr kind");
}

void CompiledKernel::execute_iteration(const Vec& iter) {
  execute_iteration(iter, scratch_);
}

void CompiledKernel::execute_iteration(const Vec& iter, Scratch& scratch) const {
  const i64* it = iter.data();
  for (const Stmt& s : stmts_) {
    i64* sp = scratch.stack.data();
    for (const Instr& ins : s.program) {
      switch (ins.op) {
        case Op::kPushConst:
          *sp++ = ins.value;
          break;
        case Op::kPushIndex:
          *sp++ = it[ins.index];
          break;
        case Op::kRead: {
          const Access& a = reads_[static_cast<std::size_t>(ins.index)];
          i64 off = a.c0;
          for (std::size_t k = 0; k < a.coeffs.size(); ++k)
            off += a.coeffs[k] * it[k];
          *sp++ = a.base[off];
          break;
        }
        case Op::kAdd:
          sp[-2] = sp[-2] + sp[-1];
          --sp;
          break;
        case Op::kSub:
          sp[-2] = sp[-2] - sp[-1];
          --sp;
          break;
        case Op::kMul:
          sp[-2] = sp[-2] * sp[-1];
          --sp;
          break;
      }
    }
    i64 off = s.lhs.c0;
    for (std::size_t k = 0; k < s.lhs.coeffs.size(); ++k)
      off += s.lhs.coeffs[k] * it[k];
    s.lhs.base[off] = sp[-1];
  }
}

void CompiledKernel::run_sequential() {
  nest_.for_each_iteration([&](const Vec& iter) { execute_iteration(iter); });
}

CompiledKernel CompiledKernel::rebind(ArrayStore& other) const {
  CompiledKernel copy(*this);
  auto rebase = [&](Access& a) {
    const loopir::ArrayDecl& decl =
        nest_.arrays()[static_cast<std::size_t>(a.array_ord)];
    ArrayStore::Buffer& buf = other.raw_mutable(decl.name);
    // The range proof ran against the construction store's sizes; it
    // transfers only to identically sized buffers.
    VDEP_REQUIRE(buf.size() == store_->raw(decl.name).size(),
                 "CompiledKernel::rebind: store shape differs for array " +
                     decl.name);
    a.base = buf.data();
  };
  for (Stmt& s : copy.stmts_) rebase(s.lhs);
  for (Access& a : copy.reads_) rebase(a);
  copy.store_ = &other;
  return copy;
}

void execute_schedule_compiled(const loopir::LoopNest& nest,
                               const Schedule& sched, ArrayStore& store,
                               ThreadPool& pool) {
  // Compile once; the kernel is const and shared, each work item carries
  // only a private value stack. Array memory is shared and disjoint across
  // items by legality.
  const CompiledKernel kernel(nest, store);
  pool.parallel_for(static_cast<i64>(sched.items.size()), [&](i64 k) {
    CompiledKernel::Scratch scratch = kernel.make_scratch();
    for (const Vec& i : sched.items[static_cast<std::size_t>(k)])
      kernel.execute_iteration(i, scratch);
  });
}

}  // namespace vdep::exec
