// Compiled loop bodies: the interpreter resolves array names through a map
// on every access; for benchmarking the *parallel structure* that overhead
// drowns the signal. A CompiledKernel flattens each statement once:
//
//   * every array reference's flat buffer offset is itself an affine
//     function of the iteration vector (row-major flattening of affine
//     subscripts is affine), so a read/write becomes a dot product plus a
//     raw-pointer access;
//   * the rhs expression tree becomes a postfix program over a small value
//     stack.
//
// Subscript-in-bounds is established once per (kernel, nest) pair by
// checking the affine offset's extremes over the iteration box, so the hot
// path needs no per-access checks.
#pragma once

#include "exec/runner.h"

namespace vdep::exec {

class CompiledKernel {
 public:
  /// Compiles the body of `nest` against `store` (which must own every
  /// array). The store must stay alive and must not be resized while the
  /// kernel is used; values may change freely.
  CompiledKernel(const loopir::LoopNest& nest, ArrayStore& store);

  /// Private mutable state of one executing task (the value stack); the
  /// kernel itself stays const and shareable across threads.
  struct Scratch {
    std::vector<i64> stack;
  };
  Scratch make_scratch() const { return Scratch{std::vector<i64>(stack_size_, 0)}; }

  /// Executes all statements at `iter` (no bounds checks on the hot path;
  /// ranges were proven at compile time).
  void execute_iteration(const Vec& iter, Scratch& scratch) const;

  /// Convenience single-threaded form with an internal scratch.
  void execute_iteration(const Vec& iter);

  /// Sequential lexicographic execution of the whole nest.
  void run_sequential();

  /// A copy of this kernel with every access re-based onto `other`'s
  /// buffers — the batch serving path: N same-(structure, bounds) requests
  /// compile one kernel and rebind it per request's store, skipping the
  /// per-construction range proof. `other` must own the same arrays at the
  /// same sizes as the construction store (shapes are re-checked, throwing
  /// PreconditionError on mismatch); it must outlive the copy.
  CompiledKernel rebind(ArrayStore& other) const;

  int statement_count() const { return static_cast<int>(stmts_.size()); }

 private:
  struct Access {
    i64* base = nullptr;   // array buffer
    Vec coeffs;            // flat offset = dot(coeffs, iter) + c0
    i64 c0 = 0;
    int array_ord = 0;     // index into nest_.arrays(), for rebind()
  };
  enum class Op : unsigned char { kPushConst, kPushIndex, kRead, kAdd, kSub, kMul };
  struct Instr {
    Op op;
    i64 value = 0;   // kPushConst
    int index = 0;   // kPushIndex / kRead (access table slot)
  };
  struct Stmt {
    Access lhs;
    std::vector<Instr> program;  // postfix
    int max_stack = 0;
  };

  Access compile_access(const loopir::ArrayRef& ref);
  void compile_expr(const loopir::Expr& e, Stmt& stmt, int depth);

  const loopir::LoopNest& nest_;
  ArrayStore* store_ = nullptr;
  std::vector<std::pair<i64, i64>> box_;
  std::vector<Stmt> stmts_;
  std::vector<Access> reads_;
  std::size_t stack_size_ = 16;
  Scratch scratch_;  // for the single-threaded convenience path
};

/// Parallel execution of a prebuilt schedule through compiled kernels (one
/// kernel per worker is unnecessary: execution only mutates array memory,
/// which legality keeps disjoint across items; the value stack is the only
/// mutable kernel state, so each task gets its own kernel copy).
void execute_schedule_compiled(const loopir::LoopNest& nest,
                               const Schedule& sched, ArrayStore& store,
                               ThreadPool& pool);

}  // namespace vdep::exec
