// Parallel execution of a transformation plan.
//
// A plan's parallel structure is flattened into *work items*: one item per
// (outer DOALL index combination) x (partition class). Items are mutually
// independent — Lemma 1 for the DOALL dimensions, Theorem 2 for the classes
// — and each item runs its iterations sequentially in transformed
// lexicographic order, which Theorem 1 certified to preserve the dependent
// order of the original loop.
//
// Items are executed on a ThreadPool; the final store must equal the
// sequential reference execution bit for bit.
//
// This is the *materialized* path: build_schedule stores every iteration
// vector of every item — O(total_iterations x depth) memory — which is
// what exec::verify_schedule needs to inspect a schedule structurally.
// For actually running large spaces prefer runtime::StreamExecutor
// (runtime/stream_executor.h), which covers the same work-item rectangle
// with O(active descriptors) state and work stealing.
#pragma once

#include "codegen/rewrite.h"
#include "exec/interpreter.h"
#include "support/thread_pool.h"

namespace vdep::exec {

/// A parallel schedule over *original* iteration vectors.
struct Schedule {
  /// items[k] = ordered iterations of work item k (sequential within).
  std::vector<std::vector<Vec>> items;

  i64 total_iterations() const;
  i64 max_item_size() const;
  /// Number of nonempty independent units — the exploited parallelism.
  i64 parallelism() const;
};

/// Materializes the schedule induced by `plan` on `original`'s space.
/// Empty (class x prefix) combinations are dropped.
Schedule build_schedule(const loopir::LoopNest& original,
                        const trans::TransformPlan& plan);

struct RunStats {
  i64 work_items = 0;
  i64 iterations = 0;
  i64 max_item = 0;
};

/// Same counts build_schedule + Schedule accessors would report (nonempty
/// work items, total iterations, longest item) but computed by scanning,
/// O(1) memory — safe at sizes where materializing the schedule is not.
RunStats measure_schedule(const loopir::LoopNest& original,
                          const trans::TransformPlan& plan);

/// Executes `plan` over the original nest semantics using `pool`.
RunStats run_parallel(const loopir::LoopNest& original,
                      const trans::TransformPlan& plan, ArrayStore& store,
                      ThreadPool& pool);

/// Executes a pre-built schedule (lets benchmarks time execution separately
/// from schedule construction).
void execute_schedule(const loopir::LoopNest& original, const Schedule& sched,
                      ArrayStore& store, ThreadPool& pool);

/// Same traversal order but serial (scheduling-order check without threads).
RunStats run_scheduled_serial(const loopir::LoopNest& original,
                              const trans::TransformPlan& plan,
                              ArrayStore& store);

}  // namespace vdep::exec
