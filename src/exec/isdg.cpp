#include "exec/isdg.h"

#include <algorithm>
#include <sstream>

#include "exec/interpreter.h"
#include "support/error.h"

namespace vdep::exec {

Isdg Isdg::build(const loopir::LoopNest& nest, const ArrayStore* store) {
  Isdg g;
  g.nodes_ = nest.iterations();
  for (std::size_t k = 0; k < g.nodes_.size(); ++k)
    g.index_[g.nodes_[k]] = static_cast<int>(k);

  // Group accesses by touched memory cell.
  struct Touch {
    int node;
    bool write;
  };
  std::map<std::pair<std::string, Vec>, std::vector<Touch>> cells;
  auto accesses = nest.accesses();
  for (std::size_t k = 0; k < g.nodes_.size(); ++k)
    for (const auto& a : accesses) {
      Vec cell = store ? element_coords(a.ref, g.nodes_[k], *store)
                       : a.ref.element_at(g.nodes_[k]);
      cells[{a.ref.array, std::move(cell)}].push_back(
          {static_cast<int>(k), a.is_write});
    }

  std::set<std::tuple<int, int, dep::DepKind>> dedup;
  for (const auto& [cell, touches] : cells) {
    for (std::size_t x = 0; x < touches.size(); ++x) {
      for (std::size_t y = 0; y < touches.size(); ++y) {
        const Touch& tx = touches[x];
        const Touch& ty = touches[y];
        if (!tx.write && !ty.write) continue;
        if (tx.node == ty.node) continue;
        const Vec& ix = g.nodes_[static_cast<std::size_t>(tx.node)];
        const Vec& iy = g.nodes_[static_cast<std::size_t>(ty.node)];
        if (!intlin::lex_less(ix, iy)) continue;  // orient src -> dst
        dep::DepKind kind = tx.write && ty.write ? dep::DepKind::kOutput
                            : tx.write           ? dep::DepKind::kFlow
                                                 : dep::DepKind::kAnti;
        if (dedup.insert({tx.node, ty.node, kind}).second)
          g.edges_.push_back({ix, iy, kind});
      }
    }
  }
  return g;
}

Isdg build_isdg(const loopir::LoopNest& nest) {
  VDEP_REQUIRE(!nest.has_indirection(),
               "build_isdg without a store on an indirect nest; pass the "
               "ArrayStore holding the index arrays");
  return Isdg::build(nest, nullptr);
}

Isdg build_isdg(const loopir::LoopNest& nest, const ArrayStore& store) {
  return Isdg::build(nest, &store);
}

i64 Isdg::dependent_node_count() const {
  std::set<Vec> dep_nodes;
  for (const IsdgEdge& e : edges_) {
    dep_nodes.insert(e.src);
    dep_nodes.insert(e.dst);
  }
  return static_cast<i64>(dep_nodes.size());
}

std::set<Vec> Isdg::distance_vectors() const {
  std::set<Vec> out;
  for (const IsdgEdge& e : edges_) out.insert(intlin::sub(e.dst, e.src));
  return out;
}

i64 Isdg::critical_path_length() const {
  // Nodes are in lexicographic order and edges point lex-forward, so the
  // node list is already a topological order.
  std::vector<i64> dp(nodes_.size(), 0);
  std::vector<std::vector<int>> in_edges(nodes_.size());
  for (const IsdgEdge& e : edges_)
    in_edges[static_cast<std::size_t>(index_.at(e.dst))].push_back(
        index_.at(e.src));
  i64 best = 0;
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    for (int src : in_edges[k])
      dp[k] = std::max(dp[k], dp[static_cast<std::size_t>(src)] + 1);
    best = std::max(best, dp[k]);
  }
  return best;
}

i64 Isdg::chain_count() const {
  // Union-find over dependent nodes.
  std::vector<int> parent(nodes_.size());
  for (std::size_t k = 0; k < parent.size(); ++k) parent[k] = static_cast<int>(k);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  std::set<int> involved;
  for (const IsdgEdge& e : edges_) {
    int a = find(index_.at(e.src));
    int b = find(index_.at(e.dst));
    if (a != b) parent[static_cast<std::size_t>(a)] = b;
    involved.insert(index_.at(e.src));
    involved.insert(index_.at(e.dst));
  }
  std::set<int> roots;
  for (int n : involved) roots.insert(find(n));
  return static_cast<i64>(roots.size());
}

Vec Isdg::min_abs_stride() const {
  if (nodes_.empty()) return {};
  Vec best(nodes_.front().size(), 0);
  std::vector<bool> seen(nodes_.front().size(), false);
  for (const IsdgEdge& e : edges_) {
    Vec d = intlin::sub(e.dst, e.src);
    for (std::size_t k = 0; k < d.size(); ++k) {
      i64 a = checked::abs(d[k]);
      if (a == 0) continue;
      if (!seen[k] || a < best[k]) {
        best[k] = a;
        seen[k] = true;
      }
    }
  }
  return best;
}

i64 Isdg::cross_item_edges(const Schedule& sched) const {
  std::map<Vec, int> item_of;
  for (std::size_t it = 0; it < sched.items.size(); ++it)
    for (const Vec& i : sched.items[it]) item_of[i] = static_cast<int>(it);
  i64 crossing = 0;
  for (const IsdgEdge& e : edges_) {
    auto a = item_of.find(e.src);
    auto b = item_of.find(e.dst);
    VDEP_REQUIRE(a != item_of.end() && b != item_of.end(),
                 "schedule does not cover the ISDG nodes");
    if (a->second != b->second) ++crossing;
  }
  return crossing;
}

std::string Isdg::to_ascii(const Schedule* sched) const {
  VDEP_REQUIRE(!nodes_.empty() && nodes_.front().size() == 2,
               "to_ascii renders 2-D spaces only");
  std::set<Vec> dependent;
  for (const IsdgEdge& e : edges_) {
    dependent.insert(e.src);
    dependent.insert(e.dst);
  }
  std::map<Vec, int> item_of;
  if (sched) {
    for (std::size_t it = 0; it < sched->items.size(); ++it)
      for (const Vec& i : sched->items[it]) item_of[i] = static_cast<int>(it);
  }
  i64 lo1 = nodes_.front()[0], hi1 = lo1, lo2 = nodes_.front()[1], hi2 = lo2;
  for (const Vec& v : nodes_) {
    lo1 = std::min(lo1, v[0]);
    hi1 = std::max(hi1, v[0]);
    lo2 = std::min(lo2, v[1]);
    hi2 = std::max(hi2, v[1]);
  }
  std::map<Vec, char> glyph;
  for (const Vec& v : nodes_) {
    char c = '.';
    if (dependent.count(v)) {
      c = 'o';
      if (sched) {
        auto it = item_of.find(v);
        if (it != item_of.end())
          c = static_cast<char>('0' + it->second % 10);
      }
    }
    glyph[v] = c;
  }
  std::ostringstream os;
  for (i64 y = hi2; y >= lo2; --y) {
    for (i64 x = lo1; x <= hi1; ++x) {
      auto it = glyph.find(Vec{x, y});
      os << (it == glyph.end() ? ' ' : it->second) << ' ';
    }
    os << "\n";
  }
  return os.str();
}

std::string Isdg::to_dot(std::size_t max_nodes) const {
  std::ostringstream os;
  os << "digraph isdg {\n  node [shape=point];\n";
  std::size_t shown = std::min(nodes_.size(), max_nodes);
  auto name = [](const Vec& v) {
    std::string s = "n";
    for (i64 x : v) s += "_" + std::string(x < 0 ? "m" : "") +
                         std::to_string(x < 0 ? -x : x);
    return s;
  };
  // The figures distinguish solid (dependent) from hollow (independent)
  // iterations; earlier revisions rendered every node identically, so the
  // DOT output disagreed with to_ascii / dependent_node_count().
  std::set<Vec> dependent;
  for (const IsdgEdge& e : edges_) {
    dependent.insert(e.src);
    dependent.insert(e.dst);
  }
  for (std::size_t k = 0; k < shown; ++k) {
    const Vec& v = nodes_[k];
    os << "  " << name(v) << " [pos=\"" << v[0] << ","
       << (v.size() > 1 ? v[1] : 0) << "!\" "
       << (dependent.count(v) ? "style=filled color=black"
                              : "style=solid color=gray70")
       << "];\n";
  }
  for (const IsdgEdge& e : edges_) {
    if (static_cast<std::size_t>(index_.at(e.src)) >= shown ||
        static_cast<std::size_t>(index_.at(e.dst)) >= shown)
      continue;
    const char* style = e.kind == dep::DepKind::kFlow    ? "solid"
                        : e.kind == dep::DepKind::kAnti  ? "dashed"
                                                         : "dotted";
    os << "  " << name(e.src) << " -> " << name(e.dst) << " [style=" << style
       << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace vdep::exec
