#include "exec/verify.h"

#include <algorithm>
#include <map>

#include "support/error.h"

namespace vdep::exec {

namespace {

// (memory cell) -> list of (iteration order key) conflicts are derived from.
struct CellKey {
  std::string array;
  Vec coords;
  bool operator<(const CellKey& o) const {
    if (array != o.array) return array < o.array;
    return coords < o.coords;
  }
};

}  // namespace

VerifyResult verify_schedule(const loopir::LoopNest& nest,
                             const Schedule& sched) {
  VerifyResult out;
  auto fail = [&](std::string reason, Vec a, Vec b) {
    out.ok = false;
    out.violations.push_back({std::move(reason), std::move(a), std::move(b)});
  };

  // (a) coverage: schedule == iteration set, each exactly once.
  std::map<Vec, std::pair<int, int>> position;  // iter -> (item, index)
  for (std::size_t it = 0; it < sched.items.size(); ++it) {
    for (std::size_t k = 0; k < sched.items[it].size(); ++k) {
      const Vec& i = sched.items[it][k];
      if (!position.emplace(i, std::make_pair(static_cast<int>(it),
                                              static_cast<int>(k)))
               .second)
        fail("iteration scheduled twice", i, i);
      if (!nest.contains(i)) fail("iteration outside the nest", i, i);
    }
  }
  std::vector<Vec> iters = nest.iterations();
  for (const Vec& i : iters)
    if (!position.count(i)) fail("iteration missing from schedule", i, i);
  if (!out.ok) return out;

  // (b)/(c) conflicting pairs must share an item, ordered as the original.
  auto accesses = nest.accesses();
  std::map<CellKey, std::vector<std::pair<Vec, bool>>> cells;
  for (const Vec& i : iters)
    for (const auto& a : accesses)
      cells[{a.ref.array, a.ref.element_at(i)}].push_back({i, a.is_write});

  for (const auto& [cell, touches] : cells) {
    for (std::size_t x = 0; x < touches.size(); ++x) {
      for (std::size_t y = x + 1; y < touches.size(); ++y) {
        const auto& [ix, wx] = touches[x];
        const auto& [iy, wy] = touches[y];
        if (!wx && !wy) continue;     // read-read never conflicts
        if (ix == iy) continue;       // intra-iteration order is fixed
        auto px = position.at(ix);
        auto py = position.at(iy);
        if (px.first != py.first) {
          fail("conflicting iterations in different work items (" +
                   cell.array + intlin::to_string(cell.coords) + ")",
               ix, iy);
          continue;
        }
        bool orig_before = intlin::lex_less(ix, iy);
        bool sched_before = px.second < py.second;
        if (orig_before != sched_before)
          fail("conflicting iterations reordered within an item (" +
                   cell.array + intlin::to_string(cell.coords) + ")",
               ix, iy);
      }
    }
  }
  return out;
}

i64 PhasedSchedule::total_iterations() const {
  i64 n = 0;
  for (const auto& p : phases) n += static_cast<i64>(p.size());
  return n;
}

i64 PhasedSchedule::max_phase_size() const {
  i64 m = 0;
  for (const auto& p : phases) m = std::max<i64>(m, static_cast<i64>(p.size()));
  return m;
}

VerifyResult verify_phased(const loopir::LoopNest& nest,
                           const PhasedSchedule& sched) {
  VerifyResult out;
  auto fail = [&](std::string reason, Vec a, Vec b) {
    out.ok = false;
    out.violations.push_back({std::move(reason), std::move(a), std::move(b)});
  };

  std::map<Vec, int> phase_of;
  for (std::size_t p = 0; p < sched.phases.size(); ++p) {
    for (const Vec& i : sched.phases[p]) {
      if (!phase_of.emplace(i, static_cast<int>(p)).second)
        fail("iteration scheduled twice", i, i);
      if (!nest.contains(i)) fail("iteration outside the nest", i, i);
    }
  }
  std::vector<Vec> iters = nest.iterations();
  for (const Vec& i : iters)
    if (!phase_of.count(i)) fail("iteration missing from schedule", i, i);
  if (!out.ok) return out;

  auto accesses = nest.accesses();
  std::map<CellKey, std::vector<std::pair<Vec, bool>>> cells;
  for (const Vec& i : iters)
    for (const auto& a : accesses)
      cells[{a.ref.array, a.ref.element_at(i)}].push_back({i, a.is_write});

  for (const auto& [cell, touches] : cells) {
    for (std::size_t x = 0; x < touches.size(); ++x) {
      for (std::size_t y = x + 1; y < touches.size(); ++y) {
        const auto& [ix, wx] = touches[x];
        const auto& [iy, wy] = touches[y];
        if (!wx && !wy) continue;
        if (ix == iy) continue;
        int px = phase_of.at(ix);
        int py = phase_of.at(iy);
        if (px == py) {
          fail("conflicting iterations in the same phase (" + cell.array +
                   intlin::to_string(cell.coords) + ")",
               ix, iy);
          continue;
        }
        bool orig_before = intlin::lex_less(ix, iy);
        if (orig_before != (px < py))
          fail("conflicting iterations in misordered phases (" + cell.array +
                   intlin::to_string(cell.coords) + ")",
               ix, iy);
      }
    }
  }
  return out;
}

}  // namespace vdep::exec
