#include "exec/interpreter.h"

#include "support/error.h"

namespace vdep::exec {

i64 eval_expr(const loopir::Expr& e, const Vec& iter, const ArrayStore& store) {
  using K = loopir::Expr::Kind;
  switch (e.kind()) {
    case K::kConst:
      return e.value();
    case K::kIndex:
      return iter[static_cast<std::size_t>(e.index())];
    case K::kRead:
      return store.read(e.ref().array, e.ref().element_at(iter));
    case K::kAdd:
      return checked::add(eval_expr(*e.lhs(), iter, store),
                          eval_expr(*e.rhs(), iter, store));
    case K::kSub:
      return checked::sub(eval_expr(*e.lhs(), iter, store),
                          eval_expr(*e.rhs(), iter, store));
    case K::kMul:
      return checked::mul(eval_expr(*e.lhs(), iter, store),
                          eval_expr(*e.rhs(), iter, store));
  }
  VDEP_CHECK(false, "unreachable expr kind");
}

void execute_iteration(const loopir::LoopNest& nest, const Vec& iter,
                       ArrayStore& store) {
  for (const loopir::Assign& a : nest.body()) {
    i64 value = eval_expr(*a.rhs, iter, store);
    store.write(a.lhs.array, a.lhs.element_at(iter), value);
  }
}

void run_sequential(const loopir::LoopNest& nest, ArrayStore& store) {
  nest.for_each_iteration(
      [&](const Vec& iter) { execute_iteration(nest, iter, store); });
}

void run_sequential_order(const loopir::LoopNest& nest,
                          const std::vector<Vec>& order, ArrayStore& store) {
  for (const Vec& iter : order) execute_iteration(nest, iter, store);
}

}  // namespace vdep::exec
