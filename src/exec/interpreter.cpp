#include "exec/interpreter.h"

#include "support/error.h"

namespace vdep::exec {

Vec element_coords(const loopir::ArrayRef& ref, const Vec& iter,
                   const ArrayStore& store) {
  if (!ref.has_indirection()) return ref.element_at(iter);
  Vec e;
  e.reserve(ref.subscripts.size());
  for (std::size_t k = 0; k < ref.subscripts.size(); ++k) {
    if (k < ref.indirect.size() && ref.indirect[k].has_value()) {
      const loopir::IndirectSubscript& ind = *ref.indirect[k];
      e.push_back(store.read(ind.array, Vec{ind.pos.eval(iter)}));
    } else {
      e.push_back(ref.subscripts[k].eval(iter));
    }
  }
  return e;
}

i64 eval_expr(const loopir::Expr& e, const Vec& iter, const ArrayStore& store) {
  using K = loopir::Expr::Kind;
  switch (e.kind()) {
    case K::kConst:
      return e.value();
    case K::kIndex:
      return iter[static_cast<std::size_t>(e.index())];
    case K::kRead:
      return store.read(e.ref().array, element_coords(e.ref(), iter, store));
    case K::kAdd:
      return checked::add(eval_expr(*e.lhs(), iter, store),
                          eval_expr(*e.rhs(), iter, store));
    case K::kSub:
      return checked::sub(eval_expr(*e.lhs(), iter, store),
                          eval_expr(*e.rhs(), iter, store));
    case K::kMul:
      return checked::mul(eval_expr(*e.lhs(), iter, store),
                          eval_expr(*e.rhs(), iter, store));
  }
  VDEP_CHECK(false, "unreachable expr kind");
}

void execute_iteration(const loopir::LoopNest& nest, const Vec& iter,
                       ArrayStore& store) {
  for (const loopir::Assign& a : nest.body()) {
    i64 value = eval_expr(*a.rhs, iter, store);
    store.write(a.lhs.array, element_coords(a.lhs, iter, store), value);
  }
}

void run_sequential(const loopir::LoopNest& nest, ArrayStore& store) {
  nest.for_each_iteration(
      [&](const Vec& iter) { execute_iteration(nest, iter, store); });
}

void run_sequential_order(const loopir::LoopNest& nest,
                          const std::vector<Vec>& order, ArrayStore& store) {
  for (const Vec& iter : order) execute_iteration(nest, iter, store);
}

}  // namespace vdep::exec
