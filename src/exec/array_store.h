// Dense storage for the arrays of a loop nest.
//
// Values are int64 (the interpreter is exact); every access is bounds
// checked against the declared shape. Stores are value types — copy one to
// replay a nest from the same initial state.
//
// Buffers use an allocator whose default-construct is a no-op, so resize()
// maps pages without writing them. The store's own zeroing pass performs
// the first touch — and on Linux the first touch decides which NUMA node a
// page lands on. With Placement::kFirstTouch the zeroing is parallel and
// pinned: worker k touches the k-th contiguous slice, the same slice the
// descriptor driver's position-ordered pre-seed hands pinned worker k, so
// each worker's pages start on its own node. Values are identical either
// way; only page placement changes.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "loopir/nest.h"

namespace vdep::exec {

using intlin::i64;
using intlin::Vec;

/// std::allocator whose value-initialization is skipped: resize() leaves
/// the new elements' pages untouched (the kernel maps them lazily), so the
/// thread that later zeroes a page is its true first toucher.
template <class T>
struct UninitAlloc : std::allocator<T> {
  template <class U>
  struct rebind {
    using other = UninitAlloc<U>;
  };
  UninitAlloc() = default;
  template <class U>
  UninitAlloc(const UninitAlloc<U>&) noexcept {}
  template <class U>
  void construct(U* p) noexcept {
    ::new (static_cast<void*>(p)) U;
  }
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
  friend bool operator==(const UninitAlloc&, const UninitAlloc&) {
    return true;
  }
};

class ArrayStore {
 public:
  /// Who zero-initializes the arrays' pages, i.e. where they land.
  enum class Placement {
    kSerial,      ///< the constructing thread touches everything
    kFirstTouch,  ///< parallel pinned touch, one slice per topology worker
  };

  /// One array's backing buffer. Kernel/inspector code holds pointers to
  /// these, so the type is part of the store's interface.
  using Buffer = std::vector<i64, UninitAlloc<i64>>;

  /// Allocates every array declared by the nest, zero-initialized.
  /// `touch_threads` sizes the kFirstTouch pass (0 = one per online cpu);
  /// pass the worker count the arrays will later be run with so the touch
  /// slices line up with the driver's pre-seeded slices. Small buffers
  /// (< 64 KiB) and hosts without affinity support fall back to serial.
  explicit ArrayStore(const loopir::LoopNest& nest,
                      Placement placement = Placement::kSerial,
                      std::size_t touch_threads = 0);

  /// Deterministic non-trivial fill: element k of array a gets
  /// (k * 2654435761 + hash(name)) % 199 - 99. Pages were already placed
  /// by the construction-time touch; this pass does not move them.
  void fill_pattern();

  i64 read(const std::string& array, const Vec& coords) const;
  void write(const std::string& array, const Vec& coords, i64 value);

  bool operator==(const ArrayStore& o) const { return data_ == o.data_; }

  /// Order-independent content digest (diagnostics).
  i64 checksum() const;

  const Buffer& raw(const std::string& array) const;
  /// Mutable buffer access for compiled kernels (exec/compiled.h).
  Buffer& raw_mutable(const std::string& array);

 private:
  struct Slot {
    loopir::ArrayDecl decl;
    Buffer data;
    bool operator==(const Slot& o) const {
      return decl.name == o.decl.name && data == o.data;
    }
  };
  const Slot& slot(const std::string& array) const;
  Slot& slot(const std::string& array);
  void zero_all(Placement placement, std::size_t touch_threads);

  std::map<std::string, Slot> data_;
};

}  // namespace vdep::exec
