// Dense storage for the arrays of a loop nest.
//
// Values are int64 (the interpreter is exact); every access is bounds
// checked against the declared shape. Stores are value types — copy one to
// replay a nest from the same initial state.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "loopir/nest.h"

namespace vdep::exec {

using intlin::i64;
using intlin::Vec;

class ArrayStore {
 public:
  /// Allocates every array declared by the nest, zero-initialized.
  explicit ArrayStore(const loopir::LoopNest& nest);

  /// Deterministic non-trivial fill: element k of array a gets
  /// (k * 2654435761 + hash(name)) % 199 - 99.
  void fill_pattern();

  i64 read(const std::string& array, const Vec& coords) const;
  void write(const std::string& array, const Vec& coords, i64 value);

  bool operator==(const ArrayStore& o) const { return data_ == o.data_; }

  /// Order-independent content digest (diagnostics).
  i64 checksum() const;

  const std::vector<i64>& raw(const std::string& array) const;
  /// Mutable buffer access for compiled kernels (exec/compiled.h).
  std::vector<i64>& raw_mutable(const std::string& array);

 private:
  struct Slot {
    loopir::ArrayDecl decl;
    std::vector<i64> data;
    bool operator==(const Slot& o) const {
      return decl.name == o.decl.name && data == o.data;
    }
  };
  const Slot& slot(const std::string& array) const;
  Slot& slot(const std::string& array);

  std::map<std::string, Slot> data_;
};

}  // namespace vdep::exec
