#include "exec/runner.h"

#include <algorithm>

#include "support/error.h"

namespace vdep::exec {

i64 Schedule::total_iterations() const {
  i64 n = 0;
  for (const auto& it : items) n += static_cast<i64>(it.size());
  return n;
}

i64 Schedule::max_item_size() const {
  i64 m = 0;
  for (const auto& it : items) m = std::max(m, static_cast<i64>(it.size()));
  return m;
}

i64 Schedule::parallelism() const {
  i64 p = 0;
  for (const auto& it : items)
    if (!it.empty()) ++p;
  return p;
}

namespace {

// Enumerate values of the leading `levels` loops of `nest` (bounds of level
// k may reference levels < k). Invokes fn with iter's prefix filled.
void enumerate_prefix(const loopir::LoopNest& nest, int levels, int k, Vec& iter,
                      const std::function<void(Vec&)>& fn) {
  if (k == levels) {
    fn(iter);
    return;
  }
  const loopir::Level& l = nest.level(k);
  i64 lo = l.lower.eval_lower(iter);
  i64 hi = l.upper.eval_upper(iter);
  for (i64 v = lo; v <= hi; ++v) {
    iter[static_cast<std::size_t>(k)] = v;
    enumerate_prefix(nest, levels, k + 1, iter, fn);
  }
  iter[static_cast<std::size_t>(k)] = 0;
}

// Enumerate the trailing dims [start, n) of `nest` in lex order (plain,
// unpartitioned).
void enumerate_tail(const loopir::LoopNest& nest, int start, int k, Vec& iter,
                    const std::function<void(const Vec&)>& fn) {
  if (k == nest.depth()) {
    fn(iter);
    return;
  }
  const loopir::Level& l = nest.level(k);
  i64 lo = l.lower.eval_lower(iter);
  i64 hi = l.upper.eval_upper(iter);
  for (i64 v = lo; v <= hi; ++v) {
    iter[static_cast<std::size_t>(k)] = v;
    enumerate_tail(nest, start, k + 1, iter, fn);
  }
  iter[static_cast<std::size_t>(k)] = 0;
}

using IterFn = std::function<void(const Vec&)>;
/// Streams one (prefix x class) unit's transformed points, in order,
/// through the function it is given.
using UnitRunner = std::function<void(const IterFn&)>;

// Single source of truth for the schedule's unit structure: invokes `unit`
// once per (outer DOALL prefix) x (partition class) combination of `nest`
// (the *transformed* nest); the consumer decides whether to materialize,
// count, or drop each unit. build_schedule and measure_schedule must agree
// on this enumeration, so they both go through here.
void for_each_unit(const loopir::LoopNest& nest,
                   const trans::TransformPlan& plan,
                   const std::function<void(const UnitRunner&)>& unit) {
  int n = nest.depth();
  int nd = plan.num_doall;
  Vec iter(static_cast<std::size_t>(n), 0);
  enumerate_prefix(nest, nd, 0, iter, [&](Vec& prefix_iter) {
    if (plan.partition.has_value()) {
      const trans::Partitioning& part = *plan.partition;
      VDEP_CHECK(nd + part.dim() == n, "plan shape inconsistent");
      for (i64 id = 0; id < part.num_classes(); ++id) {
        unit([&](const IterFn& fn) {
          part.for_each_class_iteration_from(nest, nd, part.class_label(id),
                                             prefix_iter, fn);
        });
      }
    } else {
      unit([&](const IterFn& fn) {
        enumerate_tail(nest, nd, nd, prefix_iter, fn);
      });
    }
  });
}

}  // namespace

Schedule build_schedule(const loopir::LoopNest& original,
                        const trans::TransformPlan& plan) {
  codegen::TransformedNest tn = codegen::rewrite_nest(original, plan);
  Schedule sched;
  for_each_unit(tn.nest, plan, [&](const UnitRunner& run) {
    std::vector<Vec> item;
    run([&](const Vec& j) { item.push_back(tn.original_iteration(j)); });
    if (!item.empty()) sched.items.push_back(std::move(item));
  });
  return sched;
}

RunStats measure_schedule(const loopir::LoopNest& original,
                          const trans::TransformPlan& plan) {
  codegen::TransformedNest tn = codegen::rewrite_nest(original, plan);
  RunStats stats;
  for_each_unit(tn.nest, plan, [&](const UnitRunner& run) {
    i64 unit = 0;
    run([&](const Vec&) { ++unit; });
    if (unit == 0) return;  // empty combos are dropped, as in build_schedule
    ++stats.work_items;
    stats.iterations += unit;
    stats.max_item = std::max(stats.max_item, unit);
  });
  return stats;
}

RunStats run_parallel(const loopir::LoopNest& original,
                      const trans::TransformPlan& plan, ArrayStore& store,
                      ThreadPool& pool) {
  Schedule sched = build_schedule(original, plan);
  RunStats stats{static_cast<i64>(sched.items.size()),
                 sched.total_iterations(), sched.max_item_size()};
  execute_schedule(original, sched, store, pool);
  return stats;
}

void execute_schedule(const loopir::LoopNest& original, const Schedule& sched,
                      ArrayStore& store, ThreadPool& pool) {
  pool.parallel_for(static_cast<i64>(sched.items.size()), [&](i64 k) {
    for (const Vec& i : sched.items[static_cast<std::size_t>(k)])
      execute_iteration(original, i, store);
  });
}

RunStats run_scheduled_serial(const loopir::LoopNest& original,
                              const trans::TransformPlan& plan,
                              ArrayStore& store) {
  Schedule sched = build_schedule(original, plan);
  RunStats stats{static_cast<i64>(sched.items.size()),
                 sched.total_iterations(), sched.max_item_size()};
  for (const auto& item : sched.items)
    for (const Vec& i : item) execute_iteration(original, i, store);
  return stats;
}

}  // namespace vdep::exec
