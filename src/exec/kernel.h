// Descriptor-granularity kernel interface of the streaming runtime.
//
// The scan path (runtime::StreamExecutor + exec::CompiledKernel) regenerates
// iterations in C++ and dispatches each one through a per-iteration body
// callback. A RangeKernel instead owns the *whole* leaf rectangle
//
//     [outer_lo, outer_hi]  x  [class_lo, class_hi)
//
// of a runtime::TaskDescriptor: bounds evaluation, the Theorem-2 strided
// class scan and the statement bodies all execute inside one call, which is
// what lets a dlopen-ed native kernel (jit::NativeKernel) run descriptor
// leaves with zero per-iteration dispatch. Legality (Lemma 1 x Theorem 2)
// makes disjoint rectangles write disjoint cells, so concurrent calls on
// one shared store are safe.
#pragma once

#include "exec/array_store.h"

namespace vdep::exec {

class RangeKernel {
 public:
  virtual ~RangeKernel() = default;

  /// Executes every iteration of the descriptor rectangle over `store` and
  /// returns the number of iterations run. When the plan has no outer DOALL
  /// dimension the outer range is the degenerate [0, 0] and is ignored.
  /// Must be safe to call concurrently for disjoint rectangles.
  virtual i64 execute_range(ArrayStore& store, i64 outer_lo, i64 outer_hi,
                            i64 class_lo, i64 class_hi) const = 0;
};

/// One-time subscript range proof over the rectangular hull of `nest`'s
/// iteration space: every affine subscript's extremes must stay inside the
/// declared array dims, so a kernel needs no per-access bounds checks.
/// Throws UnsupportedError when the proof fails or a loop is unbounded
/// (same rule exec::CompiledKernel applies at construction).
void prove_subscript_ranges(const loopir::LoopNest& nest);

}  // namespace vdep::exec
