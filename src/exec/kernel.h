// Descriptor-granularity kernel interface of the streaming runtime.
//
// The scan path (runtime::StreamExecutor + exec::CompiledKernel) regenerates
// iterations in C++ and dispatches each one through a per-iteration body
// callback. A RangeKernel instead owns a *whole* leaf iteration box
//
//     [lo_0, hi_0] x ... x [lo_{ndims-1}, hi_{ndims-1}]
//                                       x  [class_lo, class_hi)
//
// of a runtime::TaskDescriptor: bounds evaluation over every DOALL-prefix
// dimension (each intersected with its box range), the Theorem-2 strided
// class scan and the statement bodies all execute inside one call, which is
// what lets a dlopen-ed native kernel (jit::NativeKernel) run descriptor
// leaves with zero per-iteration dispatch. Legality (Lemma 1 x Theorem 2)
// makes disjoint boxes write disjoint cells, so concurrent calls on one
// shared store are safe.
#pragma once

#include "exec/array_store.h"

namespace vdep::exec {

/// Borrowed view of one descriptor's geometry: `ndims` inclusive ranges
/// over the transformed DOALL-prefix dimensions (outermost first) plus the
/// half-open class range. DOALL dimensions beyond `ndims` — when a plan has
/// more than the descriptor cap — scan their full bounds. `lo`/`hi` must
/// stay alive for the duration of the call and may be null when ndims == 0.
struct IterBox {
  const i64* lo = nullptr;
  const i64* hi = nullptr;
  i64 ndims = 0;
  i64 class_lo = 0;
  i64 class_hi = 1;
};

class RangeKernel {
 public:
  virtual ~RangeKernel() = default;

  /// Executes every iteration of the descriptor box over `store` and
  /// returns the number of iterations run. Must be safe to call
  /// concurrently for disjoint boxes.
  virtual i64 execute_range(ArrayStore& store, const IterBox& box) const = 0;
};

/// One-time subscript range proof over the rectangular hull of `nest`'s
/// iteration space: every affine subscript's extremes must stay inside the
/// declared array dims, so a kernel needs no per-access bounds checks.
/// Throws UnsupportedError when the proof fails or a loop is unbounded
/// (same rule exec::CompiledKernel applies at construction).
void prove_subscript_ranges(const loopir::LoopNest& nest);

}  // namespace vdep::exec
