// Exact interpreter for loop-nest bodies.
//
// Executing the original nest sequentially gives the reference semantics;
// every transformed/partitioned/parallel schedule must reproduce the same
// final store. The interpreter is the oracle behind all end-to-end tests.
#pragma once

#include "exec/array_store.h"

namespace vdep::exec {

/// Element coordinates touched by `ref` at iteration `iter`. Unlike
/// ArrayRef::element_at this resolves indirect subscripts (A[B[i]]) by
/// reading the index array from `store`.
Vec element_coords(const loopir::ArrayRef& ref, const Vec& iter,
                   const ArrayStore& store);

/// Evaluates the rhs expression tree at iteration `iter`.
i64 eval_expr(const loopir::Expr& e, const Vec& iter, const ArrayStore& store);

/// Executes all body statements of `nest` at iteration `iter`.
void execute_iteration(const loopir::LoopNest& nest, const Vec& iter,
                       ArrayStore& store);

/// Reference execution: full sequential lexicographic traversal.
void run_sequential(const loopir::LoopNest& nest, ArrayStore& store);

/// Executes the body of `body_nest` at original iteration obtained by
/// mapping: used when the scanned space differs from the body's index
/// space. (The rewritten nests of codegen already carry substituted bodies,
/// so they run with plain execute_iteration.)
void run_sequential_order(const loopir::LoopNest& nest,
                          const std::vector<Vec>& order, ArrayStore& store);

}  // namespace vdep::exec
