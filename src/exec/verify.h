// Structural legality verification of a schedule (memory-trace based).
//
// Independent of value equivalence: even if final values coincided by
// accident, this verifier fails any schedule that (a) misses or duplicates
// an iteration, (b) splits two conflicting iterations across parallel work
// items, or (c) reorders conflicting iterations within an item against the
// original lexicographic order.
#pragma once

#include <string>

#include "exec/runner.h"

namespace vdep::exec {

struct ScheduleViolation {
  std::string reason;
  Vec a;
  Vec b;
};

struct VerifyResult {
  bool ok = true;
  std::vector<ScheduleViolation> violations;
};

/// Full conflict-pair check of `sched` against the sequential semantics of
/// `nest`. O(P^2 * A^2) over P iterations and A accesses — intended for the
/// bounded spaces of tests and figure benches.
VerifyResult verify_schedule(const loopir::LoopNest& nest, const Schedule& sched);

/// A barrier-synchronized schedule: phases run in order, iterations inside
/// one phase run in parallel (the wavefront/hyperplane execution model of
/// the baselines).
struct PhasedSchedule {
  std::vector<std::vector<Vec>> phases;

  i64 total_iterations() const;
  i64 phase_count() const { return static_cast<i64>(phases.size()); }
  i64 max_phase_size() const;
};

/// Conflicting iterations must fall into *different* phases whose order
/// matches the original lexicographic order.
VerifyResult verify_phased(const loopir::LoopNest& nest,
                           const PhasedSchedule& sched);

}  // namespace vdep::exec
