// Iteration Space Dependence Graph (ISDG) — the artifact plotted in the
// paper's Figures 2-5.
//
// Nodes are iterations; a directed edge i -> j (i lexicographically before
// j) exists when the two iterations touch a common array element with at
// least one write. The builder is brute force and exact, which makes it the
// ground truth against which the analytical PDM and the transformed
// schedules are validated, and the generator of the figure statistics.
#pragma once

#include <map>
#include <set>
#include <string>

#include "dep/dependence.h"
#include "exec/runner.h"

namespace vdep::exec {

struct IsdgEdge {
  Vec src;
  Vec dst;
  dep::DepKind kind;
};

class Isdg {
 public:
  const std::vector<Vec>& nodes() const { return nodes_; }
  const std::vector<IsdgEdge>& edges() const { return edges_; }

  i64 node_count() const { return static_cast<i64>(nodes_.size()); }
  i64 edge_count() const { return static_cast<i64>(edges_.size()); }
  /// Iterations incident to at least one edge (the figures' solid nodes).
  i64 dependent_node_count() const;

  /// Distinct distance vectors dst - src over all edges.
  std::set<Vec> distance_vectors() const;

  /// Length (edge count) of the longest dependence chain — the minimum
  /// parallel time in "iteration steps" minus 1.
  i64 critical_path_length() const;

  /// Weakly connected components among dependent nodes — the figures'
  /// numbered chains.
  i64 chain_count() const;

  /// Smallest absolute nonzero stride per dimension over all edges
  /// (Figure 4's "always jumps a stride greater than 1" observation).
  Vec min_abs_stride() const;

  /// Edges whose endpoints fall into different schedule items (must be 0
  /// for a legal partitioning — Figure 5's separated sub-spaces).
  i64 cross_item_edges(const Schedule& sched) const;

  /// Graphviz rendering (small spaces). Dependent nodes (incident to at
  /// least one edge — the figures' solid nodes) render `style=filled`;
  /// independent iterations render hollow gray, so the DOT output carries
  /// the same dependent/independent distinction as to_ascii and
  /// dependent_node_count().
  std::string to_dot(std::size_t max_nodes = 4000) const;

  /// Terminal rendering of a 2-D iteration space in the style of the
  /// paper's figures: '.' independent iteration, 'o' dependent iteration;
  /// when `sched` is given, dependent iterations print their work-item
  /// class digit instead (Figure 3/5 style). Rows are i2 descending.
  std::string to_ascii(const Schedule* sched = nullptr) const;

  friend Isdg build_isdg(const loopir::LoopNest& nest);
  friend Isdg build_isdg(const loopir::LoopNest& nest, const ArrayStore& store);

 private:
  static Isdg build(const loopir::LoopNest& nest, const ArrayStore* store);

  std::vector<Vec> nodes_;
  std::vector<IsdgEdge> edges_;
  std::map<Vec, int> index_;
};

/// Brute-force exact ISDG of a (bounded) affine nest.
Isdg build_isdg(const loopir::LoopNest& nest);

/// Brute-force exact ISDG resolving indirect subscripts (A[B[i]]) against
/// the index-array contents in `store` — the ground truth the hash
/// inspector (src/inspect/) is validated against.
Isdg build_isdg(const loopir::LoopNest& nest, const ArrayStore& store);

}  // namespace vdep::exec
