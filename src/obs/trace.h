// TraceRecorder: per-thread ring buffers of fixed-size events, exported as
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Hot-path contract:
//   - When disabled (the default), record() is one relaxed load of a cached
//     global flag and a branch; no clock read, no allocation, no store.
//   - When enabled, each record() is a single-writer append into the calling
//     thread's own ring buffer: no locks, no CAS, no sharing. The only
//     cross-thread traffic is a release store of the per-buffer count so the
//     exporter (which runs after the workers quiesce) acquires a consistent
//     prefix.
//   - Buffers are fixed capacity; overflow drops the newest events and bumps
//     a per-buffer drop counter rather than resizing (no allocation after
//     registration, bounded memory under runaway loops).
//
// Thread buffers are registered lazily the first time a thread records while
// tracing is enabled. enable()/clear() bump a generation counter so stale
// thread_local buffer pointers from an earlier trace are abandoned, never
// dereferenced.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/phase.h"

namespace vdep::obs {

/// What an event describes. Spans (duration events) and instants share one
/// record type; kSplit/kSteal/kIdleEnd instants carry dur_ns = 0 or the
/// episode length in args.
enum class EventKind : std::uint8_t {
  // Compile-side spans.
  kParse = 0,
  kFingerprint,
  kCacheProbe,      ///< args[0] = 1 on hit, 0 on miss
  kDiskCacheProbe,  ///< on-disk artifact cache probe; args[0] = 1 on hit
  kAnalyze,     ///< PDM computation
  kPlan,        ///< Algorithm-1 planning + legality
  kFmBounds,    ///< Fourier–Motzkin bound extraction (inside rewrite)
  kCodegen,     ///< C text emission (range kernel / codegen())
  kCcSubprocess,
  kDlopen,
  kPartitionAnalyze,  ///< steady-state partition derivation; args[0] = axis
                      ///< (-1 fully static), args[1] = constraint count
  kPartitionVerify,   ///< kernel verifier run; args[0] = 1 verified / 0
                      ///< rejected, args[1] = failed obligation count
  kExecutorBuild,  ///< StreamExecutor construction (rewrite + hull)
  kInspect,        ///< runtime inspection span; args = {iterations, classes,
                   ///< chains, max_component, dependent, written_cells}
  // Runtime events.
  kLeafExec,  ///< span; args = {cells, source, lo0, hi0, class_lo, class_hi}
  kSplit,     ///< instant; args = {axis, cells_kept, deque_size, source}
  kSteal,     ///< span over the idle episode that ended in the steal;
              ///< args = {victim, source, distance} with distance one of
              ///< topo::Topology's classes (0 same cpu .. 3 remote node)
  kIdle,      ///< span; one terminal idle episode (ended by shutdown)
  kNumKinds,
};

const char* event_kind_name(EventKind k);

/// One fixed-size trace record. 80 bytes; a 64Ki-event buffer is 5 MiB.
struct TraceEvent {
  i64 start_ns = 0;
  i64 dur_ns = 0;      ///< 0 for instants
  i64 args[6] = {};    ///< kind-specific payload (see EventKind)
  std::int32_t worker = -1;  ///< worker id, or -1 for compile-side threads
  EventKind kind = EventKind::kParse;
};

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Fast global check, usable from any layer without touching the
  /// singleton: one relaxed atomic load.
  static bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

  /// Starts a new trace. Existing buffers are discarded (their registered
  /// threads re-register on next record). `events_per_thread` is the ring
  /// capacity of each thread's buffer.
  void enable(std::size_t events_per_thread = 1u << 16);
  void disable();
  /// Drops all recorded events (and buffers); keeps the enabled state.
  void clear();

  /// Appends one event to the calling thread's buffer. No-op (one branch)
  /// when tracing is disabled.
  static void record(const TraceEvent& ev) {
    if (!enabled()) return;
    instance().record_slow(ev);
  }

  std::size_t event_count() const;
  std::size_t dropped_count() const;
  std::size_t thread_buffer_count() const;

  /// Visits every recorded event (stable order within a thread buffer,
  /// buffers in registration order). `tid` is a dense per-buffer index.
  void for_each_event(
      const std::function<void(std::size_t tid, const TraceEvent&)>& fn) const;

  /// Chrome trace-event JSON: {"traceEvents":[...]} with "X" complete
  /// events for spans, "i" instants, and "M" thread_name metadata rows.
  std::string chrome_json() const;
  /// Writes chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(std::size_t cap) : events(cap) {}
    std::vector<TraceEvent> events;
    /// Published count: the writer stores with release after each append;
    /// readers acquire. Only the owning thread writes events/count.
    std::atomic<std::size_t> count{0};
    std::atomic<std::size_t> dropped{0};
    std::int32_t worker_hint = -1;  ///< last worker id seen (for naming)
  };

  TraceRecorder() = default;
  void record_slow(const TraceEvent& ev);
  ThreadBuffer* register_thread();

  static std::atomic<bool> g_enabled;

  mutable std::mutex mu_;  ///< guards buffers_ / capacity_ / generation_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::size_t capacity_ = 1u << 16;
  /// Bumped by enable()/clear(); thread_locals cache (generation, buffer)
  /// and re-register when the generation moved on.
  std::atomic<std::uint64_t> generation_{0};
};

/// RAII span: stamps start at construction, records at destruction. The
/// clock is read only when tracing is enabled *and* the call site's layer
/// toggle allows it; `phase` (when not kNone) additionally feeds the open
/// PhaseScope of the thread even with tracing off, so ExecReport timing
/// works without a recorder.
class ScopedSpan {
 public:
  ScopedSpan(EventKind kind, bool layer_enabled, Phase phase = Phase::kNone)
      : kind_(kind), phase_(phase) {
    tracing_ = layer_enabled && TraceRecorder::enabled();
    timing_ = phase != Phase::kNone && PhaseScope::active();
    if (tracing_ || timing_) t0_ = now_ns();
  }
  ~ScopedSpan() {
    if (!tracing_ && !timing_) return;
    const i64 dur = now_ns() - t0_;
    if (timing_) PhaseScope::add(phase_, dur);
    if (tracing_) {
      TraceEvent ev;
      ev.start_ns = t0_;
      ev.dur_ns = dur;
      ev.kind = kind_;
      ev.worker = worker_;
      for (int k = 0; k < 6; ++k) ev.args[k] = args_[k];
      TraceRecorder::record(ev);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Whether this span will emit a trace event (for arg fills the caller
  /// would otherwise compute for nothing).
  bool tracing() const { return tracing_; }
  void set_arg(int k, i64 v) { args_[k] = v; }
  void set_worker(std::int32_t w) { worker_ = w; }

 private:
  i64 t0_ = 0;
  i64 args_[6] = {};
  EventKind kind_;
  Phase phase_;
  std::int32_t worker_ = -1;
  bool tracing_ = false;
  bool timing_ = false;
};

/// Installs the VDEP_TRACE / VDEP_METRICS env hooks (idempotent; called
/// from a static initializer in trace.cpp). With VDEP_TRACE=<path> set,
/// tracing is enabled at load and the Chrome JSON is written to <path> at
/// normal process exit. VDEP_METRICS=<path> likewise enables the metrics
/// registry and dumps it at exit (*.prom → Prometheus text, else JSON
/// lines).
void install_env_hooks();

}  // namespace vdep::obs
