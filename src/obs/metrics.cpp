#include "obs/metrics.h"

#include <cmath>
#include <sstream>

namespace vdep::obs {

std::atomic<bool> MetricsRegistry::g_enabled{false};

Histogram::Histogram(std::vector<i64> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<i64>[bounds_.size() + 1]) {
  for (std::size_t k = 0; k <= bounds_.size(); ++k)
    buckets_[k].store(0, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::size_t k = 0; k <= bounds_.size(); ++k)
    buckets_[k].store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

std::vector<i64> exp_buckets(i64 first, double factor, int n) {
  std::vector<i64> out;
  out.reserve(static_cast<std::size_t>(n));
  double v = static_cast<double>(first);
  i64 prev = 0;
  for (int k = 0; k < n; ++k) {
    i64 b = static_cast<i64>(std::llround(v));
    if (b <= prev) b = prev + 1;  // keep strictly ascending on tiny factors
    out.push_back(b);
    prev = b;
    v *= factor;
  }
  return out;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed
  return *r;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : counters_) e->c.reset();
  for (auto& e : hists_) e->h->reset();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : counters_)
    if (e->name == name) return e->c;
  counters_.push_back(std::make_unique<CounterEntry>());
  counters_.back()->name = name;
  counters_.back()->help = help;
  return counters_.back()->c;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<i64> bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : hists_)
    if (e->name == name) return *e->h;
  hists_.push_back(std::make_unique<HistEntry>());
  hists_.back()->name = name;
  hists_.back()->help = help;
  hists_.back()->h = std::make_unique<Histogram>(std::move(bounds));
  return *hists_.back()->h;
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& e : counters_) {
    if (!e->help.empty()) os << "# HELP " << e->name << " " << e->help << "\n";
    os << "# TYPE " << e->name << " counter\n";
    os << e->name << " " << e->c.value() << "\n";
  }
  for (const auto& e : hists_) {
    if (!e->help.empty()) os << "# HELP " << e->name << " " << e->help << "\n";
    os << "# TYPE " << e->name << " histogram\n";
    const Histogram& h = *e->h;
    i64 cum = 0;
    for (std::size_t k = 0; k < h.bounds().size(); ++k) {
      cum += h.bucket(k);
      os << e->name << "_bucket{le=\"" << h.bounds()[k] << "\"} " << cum
         << "\n";
    }
    cum += h.bucket(h.bounds().size());
    os << e->name << "_bucket{le=\"+Inf\"} " << cum << "\n";
    os << e->name << "_sum " << h.sum() << "\n";
    os << e->name << "_count " << h.count() << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::json_lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& e : counters_) {
    os << "{\"metric\":\"" << e->name << "\",\"type\":\"counter\",\"value\":"
       << e->c.value() << "}\n";
  }
  for (const auto& e : hists_) {
    const Histogram& h = *e->h;
    os << "{\"metric\":\"" << e->name << "\",\"type\":\"histogram\",\"le\":[";
    for (std::size_t k = 0; k < h.bounds().size(); ++k)
      os << (k ? "," : "") << h.bounds()[k];
    os << "],\"buckets\":[";
    for (std::size_t k = 0; k <= h.bounds().size(); ++k)
      os << (k ? "," : "") << h.bucket(k);
    os << "],\"sum\":" << h.sum() << ",\"count\":" << h.count() << "}\n";
  }
  return os.str();
}

}  // namespace vdep::obs
