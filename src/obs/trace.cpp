#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"

namespace vdep::obs {

std::atomic<bool> TraceRecorder::g_enabled{false};

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kParse: return "parse";
    case EventKind::kFingerprint: return "fingerprint";
    case EventKind::kCacheProbe: return "cache_probe";
    case EventKind::kDiskCacheProbe: return "disk_cache_probe";
    case EventKind::kAnalyze: return "pdm_analysis";
    case EventKind::kPlan: return "plan";
    case EventKind::kFmBounds: return "fm_bounds";
    case EventKind::kCodegen: return "codegen";
    case EventKind::kCcSubprocess: return "cc_subprocess";
    case EventKind::kDlopen: return "dlopen";
    case EventKind::kPartitionAnalyze: return "partition_analyze";
    case EventKind::kPartitionVerify: return "partition_verify";
    case EventKind::kExecutorBuild: return "executor_build";
    case EventKind::kInspect: return "inspect";
    case EventKind::kLeafExec: return "leaf_exec";
    case EventKind::kSplit: return "split";
    case EventKind::kSteal: return "steal";
    case EventKind::kIdle: return "idle";
    case EventKind::kNumKinds: break;
  }
  return "unknown";
}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* r = new TraceRecorder();  // never destroyed
  return *r;
}

void TraceRecorder::enable(std::size_t events_per_thread) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  capacity_ = events_per_thread == 0 ? 1 : events_per_thread;
  generation_.fetch_add(1, std::memory_order_release);
  g_enabled.store(true, std::memory_order_release);
}

void TraceRecorder::disable() {
  g_enabled.store(false, std::memory_order_release);
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

namespace {
/// Per-thread cache of (generation, buffer). A stale generation means the
/// recorder dropped our buffer (enable/clear); re-register, never touch
/// the old pointer.
struct TlsSlot {
  std::uint64_t gen = 0;
  void* buffer = nullptr;  // TraceRecorder::ThreadBuffer*, kept opaque
};
thread_local TlsSlot tl_slot;
}  // namespace

TraceRecorder::ThreadBuffer* TraceRecorder::register_thread() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(capacity_));
  return buffers_.back().get();
}

void TraceRecorder::record_slow(const TraceEvent& ev) {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (tl_slot.buffer == nullptr || tl_slot.gen != gen) {
    tl_slot.buffer = register_thread();
    tl_slot.gen = gen;
  }
  ThreadBuffer& buf = *static_cast<ThreadBuffer*>(tl_slot.buffer);
  const std::size_t n = buf.count.load(std::memory_order_relaxed);
  if (n >= buf.events.size()) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events[n] = ev;
  if (ev.worker >= 0) buf.worker_hint = ev.worker;
  buf.count.store(n + 1, std::memory_order_release);
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b->count.load(std::memory_order_acquire);
  return n;
}

std::size_t TraceRecorder::dropped_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& b : buffers_)
    n += b->dropped.load(std::memory_order_relaxed);
  return n;
}

std::size_t TraceRecorder::thread_buffer_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

void TraceRecorder::for_each_event(
    const std::function<void(std::size_t, const TraceEvent&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t t = 0; t < buffers_.size(); ++t) {
    const ThreadBuffer& b = *buffers_[t];
    const std::size_t n = b.count.load(std::memory_order_acquire);
    for (std::size_t k = 0; k < n; ++k) fn(t, b.events[k]);
  }
}

namespace {

/// Chrome trace-event timestamps are microseconds (doubles); emit with
/// sub-microsecond precision so short spans stay distinguishable.
void append_us(std::ostringstream& os, i64 ns) {
  os << ns / 1000 << "." << static_cast<int>(ns % 1000 / 100);
}

void append_args(std::ostringstream& os, const TraceEvent& ev) {
  os << "\"args\":{";
  switch (ev.kind) {
    case EventKind::kCacheProbe:
    case EventKind::kDiskCacheProbe:
      os << "\"hit\":" << ev.args[0];
      break;
    case EventKind::kLeafExec:
      os << "\"cells\":" << ev.args[0] << ",\"source\":" << ev.args[1]
         << ",\"lo0\":" << ev.args[2] << ",\"hi0\":" << ev.args[3]
         << ",\"class_lo\":" << ev.args[4] << ",\"class_hi\":" << ev.args[5];
      break;
    case EventKind::kSplit:
      os << "\"axis\":" << ev.args[0] << ",\"cells_kept\":" << ev.args[1]
         << ",\"deque_size\":" << ev.args[2] << ",\"source\":" << ev.args[3];
      break;
    case EventKind::kSteal:
      os << "\"victim\":" << ev.args[0] << ",\"source\":" << ev.args[1];
      break;
    case EventKind::kInspect:
      os << "\"iterations\":" << ev.args[0] << ",\"classes\":" << ev.args[1]
         << ",\"chains\":" << ev.args[2] << ",\"max_component\":" << ev.args[3]
         << ",\"dependent\":" << ev.args[4]
         << ",\"written_cells\":" << ev.args[5];
      break;
    default:
      os << "\"a0\":" << ev.args[0];
      break;
  }
  os << "}";
}

}  // namespace

std::string TraceRecorder::chrome_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata rows: one per buffer, named after the worker id
  // when the buffer only ever recorded runtime events, else "compile".
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t t = 0; t < buffers_.size(); ++t) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t
         << ",\"args\":{\"name\":\"";
      if (buffers_[t]->worker_hint >= 0)
        os << "worker " << buffers_[t]->worker_hint;
      else
        os << "compile";
      os << "\"}}";
    }
  }
  for_each_event([&](std::size_t tid, const TraceEvent& ev) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << event_kind_name(ev.kind)
       << "\",\"cat\":\"vdep\",\"ph\":\"" << (ev.dur_ns > 0 ? "X" : "i")
       << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
    append_us(os, ev.start_ns);
    if (ev.dur_ns > 0) {
      os << ",\"dur\":";
      append_us(os, ev.dur_ns);
    } else {
      os << ",\"s\":\"t\"";
    }
    os << ",";
    append_args(os, ev);
    os << "}";
  });
  os << "]}";
  return os.str();
}

bool TraceRecorder::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_json();
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = n == json.size() && std::fclose(f) == 0;
  if (n != json.size()) std::fclose(f);
  return ok;
}

namespace {

struct EnvHooks {
  std::string trace_path;
  std::string metrics_path;

  EnvHooks() {
    if (const char* p = std::getenv("VDEP_TRACE"); p != nullptr && *p) {
      trace_path = p;
      TraceRecorder::instance().enable();
    }
    if (const char* p = std::getenv("VDEP_METRICS"); p != nullptr && *p) {
      metrics_path = p;
      MetricsRegistry::instance().enable();
    }
  }

  // The dump runs from this destructor, NOT an atexit handler registered in
  // the constructor: such a handler is registered before the static's own
  // __cxa_atexit destructor and therefore runs after it — reading the path
  // strings post-destruction. (Short paths survived via SSO, heap-allocated
  // ones came back corrupted: dumps silently failed for any path over the
  // SSO threshold.) Here the members are alive by construction, and the
  // recorder/registry singletons were constructed inside the constructor
  // above, so they outlive this destructor too.
  ~EnvHooks() { dump(); }

  static void dump();
};

EnvHooks* g_hooks = nullptr;

void EnvHooks::dump() {
  if (g_hooks == nullptr) return;
  if (!g_hooks->trace_path.empty()) {
    if (!TraceRecorder::instance().write_chrome_json(g_hooks->trace_path))
      std::fprintf(stderr, "vdep: failed to write trace to %s\n",
                   g_hooks->trace_path.c_str());
  }
  if (!g_hooks->metrics_path.empty()) {
    const std::string& path = g_hooks->metrics_path;
    const bool prom =
        path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "vdep: failed to write metrics to %s\n",
                   path.c_str());
      return;
    }
    const std::string text = prom
                                 ? MetricsRegistry::instance().prometheus_text()
                                 : MetricsRegistry::instance().json_lines();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
}

}  // namespace

void install_env_hooks() {
  static EnvHooks hooks;
  g_hooks = &hooks;
}

namespace {
/// Pulled in by any TU linking the obs layer (runtime/api reference trace
/// symbols, so every binary gets the env hooks without opting in).
const bool g_env_hooks_installed = (install_env_hooks(), true);
}  // namespace

}  // namespace vdep::obs
