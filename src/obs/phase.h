// Per-thread phase timing: the `ExecReport` breakdown collector.
//
// An execute()/check() call opens a PhaseScope on its thread; instrumented
// sites anywhere down the synchronous call chain (executor construction,
// JIT emission, the cc subprocess, the run itself) add their elapsed time
// to the innermost open scope of the *same* thread via PhaseScope::add.
// When no scope is open — benches driving StreamExecutor directly, batch
// group setup — add() is a no-op, so the instrumentation sites never need
// to know who (if anyone) is collecting.
//
// Cost: a thread_local pointer read per add(); PhaseTimer reads the clock
// only while a scope is open. No allocation, no synchronization (scopes
// are strictly thread-private).
#pragma once

#include <cstdint>

namespace vdep::obs {

using i64 = std::int64_t;

/// Pipeline phases of one request, compile side to run side. kNone means
/// "trace only, never accounted" (used by spans nested inside an already
/// accounted phase, so nothing is double counted).
enum class Phase : std::uint8_t {
  kNone = 0,
  kParse,
  kAnalyze,     ///< PDM / plan work + per-execute rewrite/FM/hull
  kPlan,
  kCodegen,     ///< C emission (range-kernel TU or codegen() text)
  kJitCompile,  ///< cc subprocess + dlopen
  kInspect,     ///< runtime inspection (dependence components + classes)
  kExec,        ///< workers executing descriptors
};
inline constexpr int kNumPhases = 8;

/// Steady-clock nanoseconds (shared by tracing and phase timing).
i64 now_ns();

class PhaseScope {
 public:
  PhaseScope();
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// Nanoseconds accumulated for `p` since this scope opened.
  i64 ns(Phase p) const { return acc_[static_cast<int>(p)]; }

  /// Whether the calling thread has an open scope.
  static bool active();
  /// Adds `ns` to phase `p` of the calling thread's innermost open scope;
  /// no-op when none is open (or p == kNone).
  static void add(Phase p, i64 ns);

 private:
  i64 acc_[kNumPhases] = {};
  PhaseScope* prev_ = nullptr;
};

/// RAII: adds the scoped duration to one phase of the open PhaseScope.
/// Reads the clock only when a scope is actually open at construction.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase p) : p_(p), t0_(PhaseScope::active() ? now_ns() : 0) {}
  ~PhaseTimer() {
    if (t0_ != 0) PhaseScope::add(p_, now_ns() - t0_);
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Phase p_;
  i64 t0_;
};

}  // namespace vdep::obs
