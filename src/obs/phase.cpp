#include "obs/phase.h"

#include <chrono>

namespace vdep::obs {

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {
thread_local PhaseScope* tl_scope = nullptr;
}  // namespace

PhaseScope::PhaseScope() : prev_(tl_scope) { tl_scope = this; }

PhaseScope::~PhaseScope() { tl_scope = prev_; }

bool PhaseScope::active() { return tl_scope != nullptr; }

void PhaseScope::add(Phase p, i64 ns) {
  PhaseScope* s = tl_scope;
  if (s == nullptr || p == Phase::kNone) return;
  s->acc_[static_cast<int>(p)] += ns;
}

}  // namespace vdep::obs
