// Metrics registry: named counters and fixed-bucket histograms with
// Prometheus text-exposition and JSON-lines exporters — the telemetry
// surface a serving daemon scrapes.
//
// Hot-path contract mirrors the trace recorder: when the registry is
// disabled, call sites guard on one relaxed flag load; when enabled,
// Counter::inc is one relaxed fetch_add and Histogram::observe is a short
// branchless-ish scan over <= ~16 bucket bounds plus two fetch_adds.
// Metric objects are allocated once at registration and never move, so
// call sites cache raw pointers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vdep::obs {

using i64 = std::int64_t;

class Counter {
 public:
  void inc(i64 n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  i64 value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<i64> v_{0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges in ascending
/// order; a final implicit +Inf bucket catches the rest. Buckets are
/// cumulative only at export time (internally each bucket counts its own
/// range), matching Prometheus `le` semantics in the exporter.
class Histogram {
 public:
  explicit Histogram(std::vector<i64> bounds);

  void observe(i64 v) {
    std::size_t k = 0;
    const std::size_t nb = bounds_.size();
    while (k < nb && v > bounds_[k]) ++k;
    buckets_[k].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  const std::vector<i64>& bounds() const { return bounds_; }
  /// Count in bucket k (own range, not cumulative); k == bounds().size()
  /// is the +Inf bucket.
  i64 bucket(std::size_t k) const {
    return buckets_[k].load(std::memory_order_relaxed);
  }
  i64 sum() const { return sum_.load(std::memory_order_relaxed); }
  i64 count() const { return count_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<i64> bounds_;
  std::unique_ptr<std::atomic<i64>[]> buckets_;  ///< bounds_.size() + 1
  std::atomic<i64> sum_{0};
  std::atomic<i64> count_{0};
};

/// `n` exponentially spaced upper bounds: first, first*factor, ... —
/// convenience for latency/size histograms.
std::vector<i64> exp_buckets(i64 first, double factor, int n);

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();
  static bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
  void enable() { g_enabled.store(true, std::memory_order_relaxed); }
  void disable() { g_enabled.store(false, std::memory_order_relaxed); }
  /// Zeroes every registered metric (names/help stay registered).
  void reset();

  /// Finds or registers a counter. The returned reference is stable for
  /// the process lifetime. Name must match [a-zA-Z_:][a-zA-Z0-9_:]*.
  Counter& counter(const std::string& name, const std::string& help = "");
  /// Finds or registers a histogram; `bounds` is used only on first
  /// registration.
  Histogram& histogram(const std::string& name, std::vector<i64> bounds,
                       const std::string& help = "");

  /// Prometheus text exposition format (# HELP / # TYPE, cumulative
  /// _bucket{le=...}, _sum, _count).
  std::string prometheus_text() const;
  /// One JSON object per line: {"metric":...,"type":...,"value":...} for
  /// counters, buckets/sum/count arrays for histograms.
  std::string json_lines() const;

 private:
  MetricsRegistry() = default;

  struct CounterEntry {
    std::string name, help;
    Counter c;
  };
  struct HistEntry {
    std::string name, help;
    std::unique_ptr<Histogram> h;
  };

  static std::atomic<bool> g_enabled;
  mutable std::mutex mu_;
  /// Node-based storage: entries never move once registered.
  std::vector<std::unique_ptr<CounterEntry>> counters_;
  std::vector<std::unique_ptr<HistEntry>> hists_;
};

}  // namespace vdep::obs
