#include "intlin/det.h"

#include "intlin/hermite.h"
#include "support/error.h"

namespace vdep::intlin {

i64 determinant(const Mat& m) {
  VDEP_REQUIRE(m.is_square(), "determinant of non-square matrix");
  int n = m.rows();
  if (n == 0) return 1;  // empty product
  Mat a = m;
  i64 sign = 1;
  i64 prev = 1;
  // Bareiss: a[i][j] := (a[i][j]*a[k][k] - a[i][k]*a[k][j]) / prev, exact.
  for (int k = 0; k < n - 1; ++k) {
    if (a.at(k, k) == 0) {
      int swap = -1;
      for (int i = k + 1; i < n; ++i)
        if (a.at(i, k) != 0) {
          swap = i;
          break;
        }
      if (swap == -1) return 0;
      a.swap_rows(k, swap);
      sign = checked::neg(sign);
    }
    for (int i = k + 1; i < n; ++i) {
      for (int j = k + 1; j < n; ++j) {
        i64 num = checked::sub(checked::mul(a.at(i, j), a.at(k, k)),
                               checked::mul(a.at(i, k), a.at(k, j)));
        VDEP_CHECK(num % prev == 0, "Bareiss division must be exact");
        a.at(i, j) = num / prev;
      }
      a.at(i, k) = 0;
    }
    prev = a.at(k, k);
  }
  return checked::mul(sign, a.at(n - 1, n - 1));
}

bool is_unimodular(const Mat& m) {
  if (!m.is_square()) return false;
  i64 d = determinant(m);
  return d == 1 || d == -1;
}

Mat unimodular_inverse(const Mat& m) {
  VDEP_REQUIRE(m.is_square(), "inverse of non-square matrix");
  // Row-reduce m to HNF: U*m = H. For a unimodular m the unique HNF of the
  // full-rank row lattice Z^n is the identity, hence U = m^{-1}.
  HermiteResult h = hermite_with_transform(m);
  VDEP_REQUIRE(h.rank == m.rows() && h.H == Mat::identity(m.rows()),
               "matrix is not unimodular: " + m.to_string());
  return h.U;
}

}  // namespace vdep::intlin
