#include "intlin/diophantine.h"

#include "support/error.h"

namespace vdep::intlin {

RowSolution solve_row_system(const Mat& m, const Vec& c) {
  VDEP_REQUIRE(static_cast<int>(c.size()) == m.cols(), "rhs width mismatch");
  Echelon ech = echelon_reduce(m);

  RowSolution out;
  // Solve t * E = c. Row r of E contributes its pivot at column levels[r];
  // rows after r are zero there, rows before r were already consumed.
  Vec residue = c;
  Vec t(static_cast<std::size_t>(m.rows()), 0);
  for (int r = 0; r < ech.rank; ++r) {
    Vec row = ech.E.row(r);
    int lc = ech.levels[static_cast<std::size_t>(r)];
    i64 pivot = row[static_cast<std::size_t>(lc)];
    i64 num = residue[static_cast<std::size_t>(lc)];
    if (num % pivot != 0) return out;  // no integer solution
    i64 coef = num / pivot;
    t[static_cast<std::size_t>(r)] = coef;
    if (coef != 0) residue = sub(residue, scale(row, coef));
  }
  if (!is_zero(residue)) return out;  // inconsistent system

  out.solvable = true;
  // x = t * U; free components (t_phi) chosen 0 for the particular solution.
  out.particular = vec_mat_mul(t, ech.U);
  out.homogeneous = ech.U.row_slice(ech.rank, m.rows());
  return out;
}

}  // namespace vdep::intlin
