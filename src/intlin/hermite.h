// Row-style Hermite Normal Form.
//
// The paper uses HNF(D) as the canonical basis of the row lattice generated
// by D — the pseudo distance matrix. Here HNF means: full row rank, echelon
// with strictly increasing levels, positive leading elements (so all rows
// are lexicographically positive), and every entry *above* a leading element
// reduced into [0, pivot). This form is unique for a given row lattice.
#pragma once

#include "intlin/echelon.h"

namespace vdep::intlin {

struct HermiteResult {
  Mat H;        ///< the HNF: rank(m) rows, m.cols() columns
  Mat U;        ///< unimodular, U * m == [H; 0]
  int rank = 0;
};

/// Hermite normal form with the recorded row transform.
HermiteResult hermite_with_transform(const Mat& m);

/// Just the HNF basis (rank rows).
Mat hermite_normal_form(const Mat& m);

/// True iff m satisfies the HNF shape conditions above.
bool is_hermite_normal_form(const Mat& m);

}  // namespace vdep::intlin
