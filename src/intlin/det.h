// Exact determinants of integer matrices (Bareiss fraction-free elimination).
#pragma once

#include "intlin/mat.h"

namespace vdep::intlin {

/// Determinant of a square integer matrix, exact. Throws OverflowError if an
/// intermediate exceeds int64 (Bareiss keeps intermediates minimal).
i64 determinant(const Mat& m);

/// |det| == 1. False for non-square matrices.
bool is_unimodular(const Mat& m);

/// Integer inverse of a unimodular matrix (throws if m is not unimodular).
Mat unimodular_inverse(const Mat& m);

}  // namespace vdep::intlin
