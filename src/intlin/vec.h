// Integer row vectors and the lexicographic order used throughout the paper.
//
// Index vectors, distance vectors and PDM rows are all *row* vectors
// (the paper's convention); a vector is plain std::vector<int64_t> plus the
// free functions below, all overflow-checked.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/checked.h"

namespace vdep::intlin {

using i64 = checked::i64;
using Vec = std::vector<i64>;

/// v + w (same length).
Vec add(const Vec& v, const Vec& w);
/// v - w (same length).
Vec sub(const Vec& v, const Vec& w);
/// k * v.
Vec scale(const Vec& v, i64 k);
/// -v.
Vec negate(const Vec& v);
/// Inner product <v, w>.
i64 dot(const Vec& v, const Vec& w);
/// All components zero (including the empty vector).
bool is_zero(const Vec& v);

/// Index of the first nonzero component (the paper's "level", 0-based),
/// or -1 when the vector is zero. The paper's leading element is
/// v[level(v)].
int level(const Vec& v);

/// Lexicographically positive: nonzero and leading element > 0.
bool lex_positive(const Vec& v);
/// Lexicographically negative: nonzero and leading element < 0.
bool lex_negative(const Vec& v);
/// Strict lexicographic order v < w.
bool lex_less(const Vec& v, const Vec& w);

/// gcd of all components (0 for the zero vector).
i64 content(const Vec& v);

/// "(a, b, c)" rendering.
std::string to_string(const Vec& v);

}  // namespace vdep::intlin
