#include "intlin/lattice.h"

#include "support/error.h"

namespace vdep::intlin {

Lattice::Lattice(int dim) : dim_(dim), basis_(0, dim) {
  VDEP_REQUIRE(dim >= 0, "negative lattice dimension");
}

Lattice Lattice::from_generators(const Mat& gens) {
  Lattice l(gens.cols());
  l.basis_ = hermite_normal_form(gens);
  return l;
}

bool Lattice::contains(const Vec& v) const {
  return coordinates(v).has_value();
}

std::optional<Vec> Lattice::coordinates(const Vec& v) const {
  VDEP_REQUIRE(static_cast<int>(v.size()) == dim_, "lattice dim mismatch");
  // Forward substitution along the echelon levels: at each level column the
  // only remaining contribution is the current row's pivot.
  Vec residue = v;
  Vec t(static_cast<std::size_t>(basis_.rows()), 0);
  for (int r = 0; r < basis_.rows(); ++r) {
    Vec row = basis_.row(r);
    int lc = level(row);
    VDEP_CHECK(lc >= 0, "lattice basis has a zero row");
    i64 num = residue[static_cast<std::size_t>(lc)];
    i64 pivot = row[static_cast<std::size_t>(lc)];
    if (num % pivot != 0) return std::nullopt;
    i64 coef = num / pivot;
    t[static_cast<std::size_t>(r)] = coef;
    if (coef != 0) residue = sub(residue, scale(row, coef));
  }
  if (!intlin::is_zero(residue)) return std::nullopt;
  return t;
}

i64 Lattice::index() const {
  VDEP_REQUIRE(is_full_rank(), "lattice index requires full rank");
  i64 prod = 1;
  for (int r = 0; r < basis_.rows(); ++r) {
    int lc = level(basis_.row(r));
    prod = checked::mul(prod, basis_.at(r, lc));
  }
  return prod;
}

Lattice Lattice::merged(const Lattice& other) const {
  VDEP_REQUIRE(dim_ == other.dim_, "merging lattices of different dimension");
  return from_generators(Mat::vstack(basis_, other.basis_));
}

bool Lattice::subset_of(const Lattice& other) const {
  VDEP_REQUIRE(dim_ == other.dim_, "lattice dim mismatch");
  for (int r = 0; r < basis_.rows(); ++r)
    if (!other.contains(basis_.row(r))) return false;
  return true;
}

}  // namespace vdep::intlin
