#include "intlin/vec.h"

#include <sstream>

#include "support/error.h"

namespace vdep::intlin {

Vec add(const Vec& v, const Vec& w) {
  VDEP_REQUIRE(v.size() == w.size(), "vector length mismatch in add");
  Vec r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = checked::add(v[i], w[i]);
  return r;
}

Vec sub(const Vec& v, const Vec& w) {
  VDEP_REQUIRE(v.size() == w.size(), "vector length mismatch in sub");
  Vec r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = checked::sub(v[i], w[i]);
  return r;
}

Vec scale(const Vec& v, i64 k) {
  Vec r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = checked::mul(v[i], k);
  return r;
}

Vec negate(const Vec& v) { return scale(v, -1); }

i64 dot(const Vec& v, const Vec& w) {
  VDEP_REQUIRE(v.size() == w.size(), "vector length mismatch in dot");
  i64 acc = 0;
  for (std::size_t i = 0; i < v.size(); ++i) acc = checked::fma(acc, v[i], w[i]);
  return acc;
}

bool is_zero(const Vec& v) {
  for (i64 x : v)
    if (x != 0) return false;
  return true;
}

int level(const Vec& v) {
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] != 0) return static_cast<int>(i);
  return -1;
}

bool lex_positive(const Vec& v) {
  int l = level(v);
  return l >= 0 && v[static_cast<std::size_t>(l)] > 0;
}

bool lex_negative(const Vec& v) {
  int l = level(v);
  return l >= 0 && v[static_cast<std::size_t>(l)] < 0;
}

bool lex_less(const Vec& v, const Vec& w) {
  VDEP_REQUIRE(v.size() == w.size(), "vector length mismatch in lex_less");
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] != w[i]) return v[i] < w[i];
  }
  return false;
}

i64 content(const Vec& v) {
  i64 g = 0;
  for (i64 x : v) g = checked::gcd(g, x);
  return g;
}

std::string to_string(const Vec& v) {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  os << ")";
  return os.str();
}

}  // namespace vdep::intlin
