// Linear Diophantine row systems: all integer x with x * M == c.
//
// This is exactly the paper's equations (2.6)-(2.10): reduce M to echelon
// form with unimodular U (U*M = E), solve t*E = c by forward substitution on
// the pivot columns (t_sigma constant, t_phi free), and map back x = t*U.
// The solution set is an affine lattice: particular + row-span(homogeneous).
#pragma once

#include <optional>

#include "intlin/echelon.h"

namespace vdep::intlin {

struct RowSolution {
  bool solvable = false;
  /// One integer solution x0 (x0 * M == c). Size M.rows().
  Vec particular;
  /// Rows span all solutions of x * M == 0; (M.rows() - rank(M)) rows.
  /// These are the last rows of U — the paper's U_phi.
  Mat homogeneous;
};

/// Solve x * M == c exactly over the integers.
RowSolution solve_row_system(const Mat& m, const Vec& c);

}  // namespace vdep::intlin
