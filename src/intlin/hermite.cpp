#include "intlin/hermite.h"

#include "support/error.h"

namespace vdep::intlin {

HermiteResult hermite_with_transform(const Mat& m) {
  Echelon ech = echelon_reduce(m);
  Mat& e = ech.E;
  Mat& u = ech.U;
  // Leading elements are already positive (echelon_reduce normalizes).
  // Reduce entries above each pivot into [0, pivot).
  for (int r = 0; r < ech.rank; ++r) {
    int lc = ech.levels[static_cast<std::size_t>(r)];
    i64 pivot = e.at(r, lc);
    VDEP_CHECK(pivot > 0, "HNF pivot must be positive");
    for (int k = 0; k < r; ++k) {
      i64 q = checked::floor_div(e.at(k, lc), pivot);
      if (q == 0) continue;
      e.add_row_multiple(k, r, checked::neg(q));
      u.add_row_multiple(k, r, checked::neg(q));
    }
  }
  HermiteResult out;
  out.rank = ech.rank;
  out.H = e.row_slice(0, ech.rank);
  out.U = u;
  return out;
}

Mat hermite_normal_form(const Mat& m) { return hermite_with_transform(m).H; }

bool is_hermite_normal_form(const Mat& m) {
  if (!is_echelon_lex_positive(m)) return false;
  for (int r = 0; r < m.rows(); ++r) {
    Vec row = m.row(r);
    int lc = level(row);
    if (lc < 0) return false;  // HNF keeps only nonzero rows
    i64 pivot = m.at(r, lc);
    for (int k = 0; k < r; ++k) {
      i64 above = m.at(k, lc);
      if (above < 0 || above >= pivot) return false;
    }
  }
  return true;
}

}  // namespace vdep::intlin
