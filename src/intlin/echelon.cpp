#include "intlin/echelon.h"

#include "support/error.h"

namespace vdep::intlin {

Echelon echelon_reduce(const Mat& m) {
  Echelon out;
  out.E = m;
  out.U = Mat::identity(m.rows());
  Mat& e = out.E;
  Mat& u = out.U;

  int r = 0;  // next pivot row
  for (int c = 0; c < m.cols() && r < m.rows(); ++c) {
    // Gcd-combine rows r..end so that column c has a single nonzero at row r.
    // Using extended-Euclid 2x2 unimodular row mixes keeps all entries exact.
    int pivot = -1;
    for (int k = r; k < m.rows(); ++k) {
      if (e.at(k, c) == 0) continue;
      if (pivot == -1) {
        pivot = k;
        continue;
      }
      // Mix rows (pivot, k) to put gcd at pivot and 0 at k.
      checked::ExtGcd g = checked::ext_gcd(e.at(pivot, c), e.at(k, c));
      i64 a = e.at(pivot, c) / g.g;  // exact
      i64 b = e.at(k, c) / g.g;      // exact
      // [x y; -b a] is unimodular: det = x*a + y*b = (x*ep + y*ek)/g = 1.
      Vec ep = e.row(pivot), ek = e.row(k);
      Vec up = u.row(pivot), uk = u.row(k);
      e.set_row(pivot, add(scale(ep, g.x), scale(ek, g.y)));
      e.set_row(k, add(scale(ep, checked::neg(b)), scale(ek, a)));
      u.set_row(pivot, add(scale(up, g.x), scale(uk, g.y)));
      u.set_row(k, add(scale(up, checked::neg(b)), scale(uk, a)));
      VDEP_CHECK(e.at(k, c) == 0, "echelon elimination left a residue");
    }
    if (pivot == -1) continue;  // column c already zero below row r
    e.swap_rows(r, pivot);
    u.swap_rows(r, pivot);
    if (e.at(r, c) < 0) {
      e.negate_row(r);
      u.negate_row(r);
    }
    out.levels.push_back(c);
    ++r;
  }
  out.rank = r;
  return out;
}

bool is_echelon(const Mat& m) {
  int prev_level = -1;
  bool seen_zero_row = false;
  for (int r = 0; r < m.rows(); ++r) {
    int l = level(m.row(r));
    if (l < 0) {
      seen_zero_row = true;
      continue;
    }
    if (seen_zero_row) return false;       // nonzero row after a zero row
    if (l <= prev_level) return false;     // levels must strictly increase
    prev_level = l;
  }
  return true;
}

bool is_echelon_lex_positive(const Mat& m) {
  if (!is_echelon(m)) return false;
  for (int r = 0; r < m.rows(); ++r) {
    Vec row = m.row(r);
    if (!is_zero(row) && !lex_positive(row)) return false;
  }
  return true;
}

}  // namespace vdep::intlin
