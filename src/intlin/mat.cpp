#include "intlin/mat.h"

#include <sstream>

#include "support/error.h"

namespace vdep::intlin {

Mat::Mat(int rows, int cols) : rows_(rows), cols_(cols) {
  VDEP_REQUIRE(rows >= 0 && cols >= 0, "negative matrix dimension");
  a_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0);
}

Mat Mat::identity(int n) {
  Mat m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Mat Mat::from_rows(std::initializer_list<std::initializer_list<i64>> rows) {
  int r = static_cast<int>(rows.size());
  int c = r == 0 ? 0 : static_cast<int>(rows.begin()->size());
  Mat m(r, c);
  int i = 0;
  for (const auto& row : rows) {
    VDEP_REQUIRE(static_cast<int>(row.size()) == c, "ragged row literal");
    int j = 0;
    for (i64 v : row) m.at(i, j++) = v;
    ++i;
  }
  return m;
}

Mat Mat::from_rows(const std::vector<Vec>& rows, int cols) {
  Mat m(static_cast<int>(rows.size()), cols);
  for (int i = 0; i < m.rows(); ++i) m.set_row(i, rows[static_cast<std::size_t>(i)]);
  return m;
}

i64& Mat::at(int r, int c) {
  VDEP_REQUIRE(r >= 0 && r < rows_ && c >= 0 && c < cols_, "Mat::at out of range");
  return a_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
            static_cast<std::size_t>(c)];
}

i64 Mat::at(int r, int c) const {
  VDEP_REQUIRE(r >= 0 && r < rows_ && c >= 0 && c < cols_, "Mat::at out of range");
  return a_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
            static_cast<std::size_t>(c)];
}

Vec Mat::row(int r) const {
  VDEP_REQUIRE(r >= 0 && r < rows_, "Mat::row out of range");
  Vec v(static_cast<std::size_t>(cols_));
  for (int c = 0; c < cols_; ++c) v[static_cast<std::size_t>(c)] = at(r, c);
  return v;
}

Vec Mat::col(int c) const {
  VDEP_REQUIRE(c >= 0 && c < cols_, "Mat::col out of range");
  Vec v(static_cast<std::size_t>(rows_));
  for (int r = 0; r < rows_; ++r) v[static_cast<std::size_t>(r)] = at(r, c);
  return v;
}

void Mat::set_row(int r, const Vec& v) {
  VDEP_REQUIRE(static_cast<int>(v.size()) == cols_, "set_row width mismatch");
  for (int c = 0; c < cols_; ++c) at(r, c) = v[static_cast<std::size_t>(c)];
}

void Mat::push_row(const Vec& v) {
  if (rows_ == 0 && cols_ == 0) cols_ = static_cast<int>(v.size());
  VDEP_REQUIRE(static_cast<int>(v.size()) == cols_, "push_row width mismatch");
  a_.insert(a_.end(), v.begin(), v.end());
  ++rows_;
}

Mat Mat::transposed() const {
  Mat t(cols_, rows_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

Mat Mat::row_slice(int r0, int r1) const {
  VDEP_REQUIRE(0 <= r0 && r0 <= r1 && r1 <= rows_, "row_slice out of range");
  Mat m(r1 - r0, cols_);
  for (int r = r0; r < r1; ++r)
    for (int c = 0; c < cols_; ++c) m.at(r - r0, c) = at(r, c);
  return m;
}

Mat Mat::col_slice(int c0, int c1) const {
  VDEP_REQUIRE(0 <= c0 && c0 <= c1 && c1 <= cols_, "col_slice out of range");
  Mat m(rows_, c1 - c0);
  for (int r = 0; r < rows_; ++r)
    for (int c = c0; c < c1; ++c) m.at(r, c - c0) = at(r, c);
  return m;
}

Mat Mat::vstack(const Mat& a, const Mat& b) {
  if (a.rows_ == 0) return b;
  if (b.rows_ == 0) return a;
  VDEP_REQUIRE(a.cols_ == b.cols_, "vstack width mismatch");
  Mat m(a.rows_ + b.rows_, a.cols_);
  for (int r = 0; r < a.rows_; ++r)
    for (int c = 0; c < a.cols_; ++c) m.at(r, c) = a.at(r, c);
  for (int r = 0; r < b.rows_; ++r)
    for (int c = 0; c < b.cols_; ++c) m.at(a.rows_ + r, c) = b.at(r, c);
  return m;
}

void Mat::swap_rows(int r1, int r2) {
  VDEP_REQUIRE(r1 >= 0 && r1 < rows_ && r2 >= 0 && r2 < rows_, "swap_rows range");
  if (r1 == r2) return;
  for (int c = 0; c < cols_; ++c) std::swap(at(r1, c), at(r2, c));
}

void Mat::swap_cols(int c1, int c2) {
  VDEP_REQUIRE(c1 >= 0 && c1 < cols_ && c2 >= 0 && c2 < cols_, "swap_cols range");
  if (c1 == c2) return;
  for (int r = 0; r < rows_; ++r) std::swap(at(r, c1), at(r, c2));
}

void Mat::negate_row(int r) {
  for (int c = 0; c < cols_; ++c) at(r, c) = checked::neg(at(r, c));
}

void Mat::negate_col(int c) {
  for (int r = 0; r < rows_; ++r) at(r, c) = checked::neg(at(r, c));
}

void Mat::add_row_multiple(int dst, int src, i64 k) {
  VDEP_REQUIRE(dst != src, "add_row_multiple dst == src");
  if (k == 0) return;
  for (int c = 0; c < cols_; ++c)
    at(dst, c) = checked::fma(at(dst, c), k, at(src, c));
}

void Mat::add_col_multiple(int dst, int src, i64 k) {
  VDEP_REQUIRE(dst != src, "add_col_multiple dst == src");
  if (k == 0) return;
  for (int r = 0; r < rows_; ++r)
    at(r, dst) = checked::fma(at(r, dst), k, at(r, src));
}

Mat operator*(const Mat& a, const Mat& b) {
  VDEP_REQUIRE(a.cols_ == b.rows_, "matrix product shape mismatch");
  Mat m(a.rows_, b.cols_);
  for (int r = 0; r < a.rows_; ++r)
    for (int k = 0; k < a.cols_; ++k) {
      i64 av = a.at(r, k);
      if (av == 0) continue;
      for (int c = 0; c < b.cols_; ++c)
        m.at(r, c) = checked::fma(m.at(r, c), av, b.at(k, c));
    }
  return m;
}

Mat operator+(const Mat& a, const Mat& b) {
  VDEP_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_, "matrix sum shape");
  Mat m(a.rows_, a.cols_);
  for (int r = 0; r < a.rows_; ++r)
    for (int c = 0; c < a.cols_; ++c) m.at(r, c) = checked::add(a.at(r, c), b.at(r, c));
  return m;
}

Mat operator-(const Mat& a, const Mat& b) {
  VDEP_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_, "matrix diff shape");
  Mat m(a.rows_, a.cols_);
  for (int r = 0; r < a.rows_; ++r)
    for (int c = 0; c < a.cols_; ++c) m.at(r, c) = checked::sub(a.at(r, c), b.at(r, c));
  return m;
}

bool Mat::is_zero() const {
  for (i64 v : a_)
    if (v != 0) return false;
  return true;
}

bool Mat::col_is_zero(int c) const {
  for (int r = 0; r < rows_; ++r)
    if (at(r, c) != 0) return false;
  return true;
}

std::string Mat::to_string() const {
  std::ostringstream os;
  os << "[";
  for (int r = 0; r < rows_; ++r) {
    if (r) os << "; ";
    for (int c = 0; c < cols_; ++c) {
      if (c) os << " ";
      os << at(r, c);
    }
  }
  os << "]";
  return os.str();
}

Vec vec_mat_mul(const Vec& x, const Mat& m) {
  VDEP_REQUIRE(static_cast<int>(x.size()) == m.rows(), "vec_mat_mul shape");
  Vec r(static_cast<std::size_t>(m.cols()), 0);
  for (int i = 0; i < m.rows(); ++i) {
    i64 xv = x[static_cast<std::size_t>(i)];
    if (xv == 0) continue;
    for (int c = 0; c < m.cols(); ++c)
      r[static_cast<std::size_t>(c)] =
          checked::fma(r[static_cast<std::size_t>(c)], xv, m.at(i, c));
  }
  return r;
}

Vec mat_vec_mul(const Mat& m, const Vec& x) {
  VDEP_REQUIRE(static_cast<int>(x.size()) == m.cols(), "mat_vec_mul shape");
  Vec r(static_cast<std::size_t>(m.rows()), 0);
  for (int i = 0; i < m.rows(); ++i) {
    i64 acc = 0;
    for (int c = 0; c < m.cols(); ++c)
      acc = checked::fma(acc, m.at(i, c), x[static_cast<std::size_t>(c)]);
    r[static_cast<std::size_t>(i)] = acc;
  }
  return r;
}

}  // namespace vdep::intlin
