// Smith Normal Form: U * M * V = S with U, V unimodular and S diagonal,
// d_1 | d_2 | ... | d_r, d_i > 0.
//
// Used as an independent oracle in tests (lattice index == product of
// elementary divisors == |det HNF|) and by the analysis-cost ablation.
#pragma once

#include <vector>

#include "intlin/mat.h"

namespace vdep::intlin {

struct Smith {
  Mat U;  ///< unimodular row transform (rows x rows)
  Mat V;  ///< unimodular column transform (cols x cols)
  Mat S;  ///< diagonal, same shape as input
  int rank = 0;
  /// The positive diagonal entries d_1 | d_2 | ... | d_rank.
  std::vector<i64> divisors;
};

Smith smith_normal_form(const Mat& m);

}  // namespace vdep::intlin
