// Integer (row) lattices: the set of all integer combinations of generator
// rows. The paper's distance sets are affine sub-lattices of Z^n; their
// canonical basis (the HNF) is the pseudo distance matrix.
#pragma once

#include <optional>

#include "intlin/hermite.h"

namespace vdep::intlin {

class Lattice {
 public:
  /// The zero lattice {0} in Z^dim.
  explicit Lattice(int dim);

  /// Lattice spanned by the rows of `gens` (gens.cols() == ambient dim).
  static Lattice from_generators(const Mat& gens);

  int dim() const { return dim_; }
  int rank() const { return basis_.rows(); }
  bool is_zero() const { return basis_.rows() == 0; }
  bool is_full_rank() const { return rank() == dim_; }

  /// Canonical HNF basis (rank rows, lexicographically positive).
  const Mat& basis() const { return basis_; }

  /// Membership test: v in lattice?
  bool contains(const Vec& v) const;

  /// Coordinates t with t * basis() == v, when v is a member.
  std::optional<Vec> coordinates(const Vec& v) const;

  /// Index [Z^dim : L] == det(basis) for a full-rank lattice — the number of
  /// residue classes, i.e. the parallelism Theorem 2 extracts.
  i64 index() const;

  /// Smallest lattice containing both (basis rows stacked, re-HNF'd).
  Lattice merged(const Lattice& other) const;

  /// Sub-lattice test: every generator of *this inside `other`.
  bool subset_of(const Lattice& other) const;

  bool operator==(const Lattice& o) const {
    return dim_ == o.dim_ && basis_ == o.basis_;
  }

 private:
  int dim_;
  Mat basis_;  // HNF, rank rows
};

}  // namespace vdep::intlin
