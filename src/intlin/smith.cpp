#include "intlin/smith.h"

#include "support/error.h"

namespace vdep::intlin {

namespace {

// Returns the position (r, c) with r,c >= k of a minimal-|value| nonzero
// entry, or {-1, -1} when the trailing block is zero.
std::pair<int, int> find_pivot(const Mat& s, int k) {
  std::pair<int, int> best{-1, -1};
  i64 best_abs = 0;
  for (int r = k; r < s.rows(); ++r)
    for (int c = k; c < s.cols(); ++c) {
      i64 v = s.at(r, c);
      if (v == 0) continue;
      i64 a = checked::abs(v);
      if (best.first == -1 || a < best_abs) {
        best = {r, c};
        best_abs = a;
      }
    }
  return best;
}

}  // namespace

Smith smith_normal_form(const Mat& m) {
  Smith out;
  out.S = m;
  out.U = Mat::identity(m.rows());
  out.V = Mat::identity(m.cols());
  Mat& s = out.S;

  int k = 0;
  int bound = std::min(m.rows(), m.cols());
  while (k < bound) {
    auto [pr, pc] = find_pivot(s, k);
    if (pr == -1) break;  // rest is zero
    s.swap_rows(k, pr);
    out.U.swap_rows(k, pr);
    s.swap_cols(k, pc);
    out.V.swap_cols(k, pc);

    // Reduce row and column k until the pivot divides everything it faces.
    bool dirty = true;
    while (dirty) {
      dirty = false;
      for (int r = k + 1; r < s.rows(); ++r) {
        if (s.at(r, k) == 0) continue;
        i64 q = checked::floor_div(s.at(r, k), s.at(k, k));
        s.add_row_multiple(r, k, checked::neg(q));
        out.U.add_row_multiple(r, k, checked::neg(q));
        if (s.at(r, k) != 0) {  // remainder: swap to shrink the pivot
          s.swap_rows(k, r);
          out.U.swap_rows(k, r);
          dirty = true;
        }
      }
      for (int c = k + 1; c < s.cols(); ++c) {
        if (s.at(k, c) == 0) continue;
        i64 q = checked::floor_div(s.at(k, c), s.at(k, k));
        s.add_col_multiple(c, k, checked::neg(q));
        out.V.add_col_multiple(c, k, checked::neg(q));
        if (s.at(k, c) != 0) {
          s.swap_cols(k, c);
          out.V.swap_cols(k, c);
          dirty = true;
        }
      }
    }

    // Divisibility fix-up: pivot must divide every entry of the trailing
    // block; if not, fold the offending row in and restart this k.
    bool restart = false;
    for (int r = k + 1; r < s.rows() && !restart; ++r)
      for (int c = k + 1; c < s.cols() && !restart; ++c)
        if (s.at(r, c) % s.at(k, k) != 0) {
          s.add_row_multiple(k, r, 1);
          out.U.add_row_multiple(k, r, 1);
          restart = true;
        }
    if (restart) continue;

    if (s.at(k, k) < 0) {
      s.negate_row(k);
      out.U.negate_row(k);
    }
    ++k;
  }
  out.rank = k;
  for (int i = 0; i < k; ++i) out.divisors.push_back(s.at(i, i));
  return out;
}

}  // namespace vdep::intlin
