// Echelon reduction of an integer matrix by unimodular *row* operations.
//
// This is the paper's equation (2.8)/(2.9) machinery: given M, find
// unimodular U with U*M = E where E is an echelon matrix (only the first
// `rank` rows are nonzero, and their levels — indices of leading elements —
// strictly increase). U records the change of variables t = x * U^{-1} used
// to solve the row system x*M = c.
#pragma once

#include <vector>

#include "intlin/mat.h"

namespace vdep::intlin {

struct Echelon {
  Mat U;                    ///< unimodular row transform: U * M == E
  Mat E;                    ///< echelon form of M
  int rank = 0;             ///< number of nonzero rows of E
  std::vector<int> levels;  ///< levels[r] = column of the leading element of row r, r < rank
};

/// Reduce M to echelon form with recorded unimodular transform.
/// Leading elements are made positive (a unimodular row scaling), so the
/// nonzero rows of E are lexicographically positive.
Echelon echelon_reduce(const Mat& m);

/// True iff the nonzero rows of m come first with strictly increasing levels
/// (the paper's definition of an echelon matrix).
bool is_echelon(const Mat& m);

/// True iff m is echelon and every nonzero row is lexicographically positive
/// (the shape Theorem 1 demands of a transformed PDM).
bool is_echelon_lex_positive(const Mat& m);

}  // namespace vdep::intlin
