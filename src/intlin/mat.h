// Dense integer matrices with overflow-checked arithmetic and the
// elementary row/column operations used by echelon/Hermite/Smith reduction.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "intlin/vec.h"

namespace vdep::intlin {

class Mat {
 public:
  /// rows x cols zero matrix. Zero-row / zero-column matrices are allowed
  /// (empty generator sets arise naturally when a loop has no dependences).
  Mat(int rows, int cols);
  Mat() : Mat(0, 0) {}

  static Mat identity(int n);
  static Mat zero(int rows, int cols) { return Mat(rows, cols); }
  /// Build from row literals: Mat::from_rows({{1,2},{3,4}}).
  static Mat from_rows(std::initializer_list<std::initializer_list<i64>> rows);
  /// Build from a list of row vectors (all the same length).
  static Mat from_rows(const std::vector<Vec>& rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool is_square() const { return rows_ == cols_; }

  i64& at(int r, int c);
  i64 at(int r, int c) const;

  Vec row(int r) const;
  Vec col(int c) const;
  void set_row(int r, const Vec& v);

  /// Appends a row (must match cols(); a fully empty matrix adopts the width).
  void push_row(const Vec& v);

  Mat transposed() const;
  /// Rows [r0, r1) as a new matrix.
  Mat row_slice(int r0, int r1) const;
  /// Columns [c0, c1) as a new matrix.
  Mat col_slice(int c0, int c1) const;
  /// Vertical stack: rows of `a` on top of rows of `b`.
  static Mat vstack(const Mat& a, const Mat& b);

  // -- elementary operations (all unimodular on the corresponding side) --
  void swap_rows(int r1, int r2);
  void swap_cols(int c1, int c2);
  void negate_row(int r);
  void negate_col(int c);
  /// row[dst] += k * row[src]; dst != src.
  void add_row_multiple(int dst, int src, i64 k);
  /// col[dst] += k * col[src]; dst != src.
  void add_col_multiple(int dst, int src, i64 k);

  bool operator==(const Mat& o) const = default;

  /// Matrix product (checked).
  friend Mat operator*(const Mat& a, const Mat& b);
  friend Mat operator+(const Mat& a, const Mat& b);
  friend Mat operator-(const Mat& a, const Mat& b);

  /// True iff every entry is zero.
  bool is_zero() const;
  /// True iff column c is entirely zero.
  bool col_is_zero(int c) const;

  /// Multi-line "[ 1 2 ; 3 4 ]"-style rendering for diagnostics.
  std::string to_string() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<i64> a_;  // row-major
};

/// Row vector times matrix: x' = x * M (the paper's transformation form).
Vec vec_mat_mul(const Vec& x, const Mat& m);

/// Matrix times column vector: M * x^T (used for subscript evaluation).
Vec mat_vec_mul(const Mat& m, const Vec& x);

}  // namespace vdep::intlin
