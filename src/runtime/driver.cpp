#include "runtime/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/work_queue.h"
#include "topo/affinity.h"
#include "topo/topology.h"

namespace vdep::runtime {

namespace {

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

namespace detail {

bool effective_pin(bool opt_in, std::size_t threads) {
  return opt_in && threads > 1 && topo::pin_supported() &&
         topo::pin_env_enabled();
}

std::vector<TaskDescriptor> preseed_pieces(const TaskDescriptor& root,
                                           std::size_t threads, i64 grain,
                                           const SplitPrefs& prefs,
                                           WorkerStats& seeder) {
  // Split the root into up to `threads` pieces before any worker starts,
  // largest-first so the pieces stay balanced, then order them by position
  // so deque k holds the k-th slice of the space — the slice a first-touch
  // store placed near pinned worker k. The seeding splits are charged to
  // worker 0's counters (each one still turns one descriptor into two, so
  // tasks == splits + 1 holds run-wide).
  std::vector<TaskDescriptor> pieces{root};
  while (pieces.size() < threads) {
    std::size_t fattest = pieces.size();
    i64 most = 0;
    for (std::size_t k = 0; k < pieces.size(); ++k) {
      if (pieces[k].cells() > most && can_split(pieces[k], grain)) {
        fattest = k;
        most = pieces[k].cells();
      }
    }
    if (fattest == pieces.size()) break;
    int axis = 0;
    pieces.push_back(split(pieces[fattest], grain, &axis, &prefs));
    ++seeder.splits;
    ++seeder.axis_splits[axis];
  }
  std::sort(pieces.begin(), pieces.end(),
            [](const TaskDescriptor& a, const TaskDescriptor& b) {
              for (int d = 0; d < a.ndims; ++d)
                if (a.lo[d] != b.lo[d]) return a.lo[d] < b.lo[d];
              return a.class_lo < b.class_lo;
            });
  return pieces;
}

}  // namespace detail

RuntimeStats drive_descriptors(const TaskDescriptor& root,
                               const DriveOptions& opts,
                               const LeafFactory& leaf_factory,
                               ThreadPool* pool) {
  const std::size_t threads = std::max<std::size_t>(opts.threads, 1);
  const i64 grain = std::max<i64>(opts.grain, 1);
  RuntimeStats out;
  out.workers.resize(threads);
  if (root.empty()) return out;

  std::vector<std::unique_ptr<WorkStealingDeque>> deques;
  deques.reserve(threads);
  for (std::size_t k = 0; k < threads; ++k)
    deques.push_back(std::make_unique<WorkStealingDeque>());

  // Topology: where each worker pins and whom it robs first. Computed even
  // when pinning is off — the distance-ordered sweep is deterministic
  // either way, and the per-distance counters stay meaningful relative to
  // the assignment the workers *would* have.
  const topo::Topology& topology = topo::Topology::system();
  const std::vector<int> assignment = topology.assign_workers(threads);
  const bool pin = detail::effective_pin(opts.pin_workers, threads);

  // Tasks alive (queued or executing). Seeded before any worker starts
  // (thread creation publishes the pushes to every worker): the root is
  // pre-split into ~threads position-ordered pieces, one per deque, so
  // pinned worker k begins on the slice of the space whose pages a
  // first-touch store placed nearest to it instead of everyone queueing on
  // worker 0's leftovers.
  const std::vector<TaskDescriptor> pieces =
      detail::preseed_pieces(root, threads, grain, opts.prefs, out.workers[0]);
  std::atomic<i64> pending{static_cast<i64>(pieces.size())};
  for (std::size_t k = 0; k < pieces.size(); ++k)
    deques[k % threads]->push(pieces[k]);

  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  // Observability gates, sampled once per run: with the recorder/registry
  // globally off (or the run opting out) the workers pay one hoisted bool
  // test per site, no clock reads beyond the two busy_ns already makes.
  const bool tracing = opts.trace && obs::TraceRecorder::enabled();
  const bool metrics = opts.metrics && obs::MetricsRegistry::enabled();
  obs::Histogram* steal_lat = nullptr;
  obs::Histogram* leaf_cells = nullptr;
  obs::Histogram* qdepth = nullptr;
  if (metrics) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    steal_lat = &reg.histogram(
        "vdep_steal_latency_ns", obs::exp_buckets(1000, 4.0, 12),
        "idle-episode length ending in a successful steal");
    leaf_cells = &reg.histogram("vdep_leaf_cells",
                                obs::exp_buckets(1, 4.0, 16),
                                "cells per executed leaf descriptor");
    qdepth = &reg.histogram("vdep_queue_depth", obs::exp_buckets(1, 2.0, 10),
                            "owner deque size sampled at split");
  }

  const int n = static_cast<int>(threads);
  auto worker_main = [&](int id) {
    // Pin for the run's duration; the guard restores the thread's previous
    // mask (worker 0 is the caller, pool threads are long-lived).
    std::optional<topo::AffinityGuard> pin_guard;
    if (pin)
      pin_guard.emplace(
          topology.cpus()[static_cast<std::size_t>(
                              assignment[static_cast<std::size_t>(id)])]
              .cpu);
    // Victim probe order, nearest ring first; the sweep randomizes its
    // start within each ring (cheap xorshift, seeded per worker) so
    // same-distance victims share the load.
    const std::vector<std::vector<int>> rings =
        topology.steal_rings(assignment, id);
    std::uint64_t rng = 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(id) + 1);
    auto next_rand = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };

    WorkerStats& stats = out.workers[static_cast<std::size_t>(id)];
    LeafFn leaf = leaf_factory(id, stats);

    auto process = [&](TaskDescriptor task) {
      i64 t0 = now_ns();
      try {
        // Split depth-first: push the large high halves (stolen first),
        // keep refining the low half until it is a leaf, run it.
        while (can_split(task, grain)) {
          int axis = 0;
          TaskDescriptor high = split(task, grain, &axis, &opts.prefs);
          pending.fetch_add(1, std::memory_order_relaxed);
          deques[static_cast<std::size_t>(id)]->push(high);
          ++stats.splits;
          ++stats.axis_splits[axis];
          if (tracing || metrics) {
            const i64 depth =
                deques[static_cast<std::size_t>(id)]->size_estimate();
            if (metrics) qdepth->observe(depth);
            if (tracing) {
              obs::TraceEvent ev;
              ev.start_ns = obs::now_ns();
              ev.kind = obs::EventKind::kSplit;
              ev.worker = id;
              ev.args[0] = axis;
              ev.args[1] = task.cells();
              ev.args[2] = depth;
              ev.args[3] = task.source;
              obs::TraceRecorder::record(ev);
            }
          }
        }
        leaf(task);
        ++stats.tasks;
        if (metrics) leaf_cells->observe(task.cells());
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_release);
      }
      pending.fetch_sub(1, std::memory_order_acq_rel);
      const i64 t1 = now_ns();
      if (tracing) {
        obs::TraceEvent ev;
        ev.start_ns = t0;
        ev.dur_ns = t1 - t0;
        ev.kind = obs::EventKind::kLeafExec;
        ev.worker = id;
        ev.args[0] = task.cells();
        ev.args[1] = task.source;
        ev.args[2] = task.ndims > 0 ? task.lo[0] : 0;
        ev.args[3] = task.ndims > 0 ? task.hi[0] : 0;
        ev.args[4] = task.class_lo;
        ev.args[5] = task.class_hi;
        obs::TraceRecorder::record(ev);
      }
      stats.busy_ns += t1 - t0;
    };

    // One idle episode spans from the first failed pop to the steal (or
    // exit) that ends it; a worker's own deque cannot refill while it is
    // idle (only its own process() pushes), so episodes close exactly there.
    int idle_sweeps = 0;
    i64 idle_t0 = 0;
    auto close_idle = [&](obs::EventKind kind, i64 a0, i64 a1, i64 a2 = 0) {
      if (idle_t0 == 0) return;
      const i64 t1 = now_ns();
      stats.idle_ns += t1 - idle_t0;
      if (kind == obs::EventKind::kSteal && metrics)
        steal_lat->observe(t1 - idle_t0);
      if (tracing) {
        obs::TraceEvent ev;
        ev.start_ns = idle_t0;
        ev.dur_ns = t1 - idle_t0;
        ev.kind = kind;
        ev.worker = id;
        ev.args[0] = a0;
        ev.args[1] = a1;
        ev.args[2] = a2;
        obs::TraceRecorder::record(ev);
      }
      idle_t0 = 0;
    };
    for (;;) {
      if (abort.load(std::memory_order_acquire)) return;
      TaskDescriptor task;
      if (deques[static_cast<std::size_t>(id)]->pop(task)) {
        process(task);
        idle_sweeps = 0;
        continue;
      }
      if (idle_t0 == 0) idle_t0 = now_ns();
      if (pending.load(std::memory_order_acquire) == 0) {
        close_idle(obs::EventKind::kIdle, 0, 0);
        return;
      }
      // Distance-ordered sweep: co-resident workers first (their deque is
      // in this cpu's cache), then SMT siblings, same-node cores, and only
      // then remote nodes; within a ring the start rotates randomly.
      bool stolen = false;
      int victim_id = -1;
      int victim_distance = 0;
      for (int d = 0; d < topo::Topology::kNumDistances && !stolen; ++d) {
        const std::vector<int>& ring = rings[static_cast<std::size_t>(d)];
        if (ring.empty()) continue;
        const std::size_t start = next_rand() % ring.size();
        for (std::size_t k = 0; k < ring.size() && !stolen; ++k) {
          const int victim = ring[(start + k) % ring.size()];
          if (deques[static_cast<std::size_t>(victim)]->steal(task)) {
            ++stats.steals;
            ++stats.steals_by_distance[d];
            victim_id = victim;
            victim_distance = d;
            stolen = true;
          }
        }
      }
      if (stolen) {
        close_idle(obs::EventKind::kSteal, victim_id, task.source,
                   victim_distance);
        process(task);
        idle_sweeps = 0;
      } else {
        if (n > 1) ++stats.failed_steals;
        if (++idle_sweeps < 16) {
          std::this_thread::yield();
        } else {
          // Nothing stealable for a while (e.g. one unsplittable descriptor
          // left): back off instead of burning a core per idle worker —
          // but re-check termination first, or a worker backing off just as
          // the last descriptor retires eats a full backoff before exiting
          // (visible as tail idle_ns on small runs).
          if (pending.load(std::memory_order_acquire) == 0) continue;
          std::this_thread::sleep_for(std::chrono::microseconds(
              std::min(50 * (idle_sweeps - 15), 1000)));
        }
      }
    }
  };

  i64 t0 = now_ns();
  if (pool) {
    // One chunk per worker context; pool threads plus the caller claim
    // them. A pool smaller than threads just runs some contexts after
    // others finished (they see pending == 0 and return immediately).
    pool->parallel_for(static_cast<i64>(threads),
                       [&](i64 id) { worker_main(static_cast<int>(id)); });
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads - 1);
    for (int k = 1; k < n; ++k) workers.emplace_back(worker_main, k);
    worker_main(0);  // the calling thread is worker 0
    for (std::thread& t : workers) t.join();
  }
  out.wall_ns = now_ns() - t0;

  if (first_error) std::rethrow_exception(first_error);
  if (metrics) publish_run_metrics(out.workers);
  return out;
}

}  // namespace vdep::runtime
