#include "runtime/driver.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/work_queue.h"

namespace vdep::runtime {

namespace {

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RuntimeStats drive_descriptors(const TaskDescriptor& root,
                               const DriveOptions& opts,
                               const LeafFactory& leaf_factory,
                               ThreadPool* pool) {
  const std::size_t threads = std::max<std::size_t>(opts.threads, 1);
  const i64 grain = std::max<i64>(opts.grain, 1);
  RuntimeStats out;
  out.workers.resize(threads);
  if (root.empty()) return out;

  std::vector<std::unique_ptr<WorkStealingDeque>> deques;
  deques.reserve(threads);
  for (std::size_t k = 0; k < threads; ++k)
    deques.push_back(std::make_unique<WorkStealingDeque>());

  // Tasks alive (queued or executing). Seeded before any worker starts;
  // thread creation publishes the push below to every worker.
  std::atomic<i64> pending{1};
  deques[0]->push(root);

  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  // Observability gates, sampled once per run: with the recorder/registry
  // globally off (or the run opting out) the workers pay one hoisted bool
  // test per site, no clock reads beyond the two busy_ns already makes.
  const bool tracing = opts.trace && obs::TraceRecorder::enabled();
  const bool metrics = opts.metrics && obs::MetricsRegistry::enabled();
  obs::Histogram* steal_lat = nullptr;
  obs::Histogram* leaf_cells = nullptr;
  obs::Histogram* qdepth = nullptr;
  if (metrics) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    steal_lat = &reg.histogram(
        "vdep_steal_latency_ns", obs::exp_buckets(1000, 4.0, 12),
        "idle-episode length ending in a successful steal");
    leaf_cells = &reg.histogram("vdep_leaf_cells",
                                obs::exp_buckets(1, 4.0, 16),
                                "cells per executed leaf descriptor");
    qdepth = &reg.histogram("vdep_queue_depth", obs::exp_buckets(1, 2.0, 10),
                            "owner deque size sampled at split");
  }

  const int n = static_cast<int>(threads);
  auto worker_main = [&](int id) {
    WorkerStats& stats = out.workers[static_cast<std::size_t>(id)];
    LeafFn leaf = leaf_factory(id, stats);

    auto process = [&](TaskDescriptor task) {
      i64 t0 = now_ns();
      try {
        // Split depth-first: push the large high halves (stolen first),
        // keep refining the low half until it is a leaf, run it.
        while (can_split(task, grain)) {
          int axis = 0;
          TaskDescriptor high = split(task, grain, &axis);
          pending.fetch_add(1, std::memory_order_relaxed);
          deques[static_cast<std::size_t>(id)]->push(high);
          ++stats.splits;
          ++stats.axis_splits[axis];
          if (tracing || metrics) {
            const i64 depth =
                deques[static_cast<std::size_t>(id)]->size_estimate();
            if (metrics) qdepth->observe(depth);
            if (tracing) {
              obs::TraceEvent ev;
              ev.start_ns = obs::now_ns();
              ev.kind = obs::EventKind::kSplit;
              ev.worker = id;
              ev.args[0] = axis;
              ev.args[1] = task.cells();
              ev.args[2] = depth;
              ev.args[3] = task.source;
              obs::TraceRecorder::record(ev);
            }
          }
        }
        leaf(task);
        ++stats.tasks;
        if (metrics) leaf_cells->observe(task.cells());
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_release);
      }
      pending.fetch_sub(1, std::memory_order_acq_rel);
      const i64 t1 = now_ns();
      if (tracing) {
        obs::TraceEvent ev;
        ev.start_ns = t0;
        ev.dur_ns = t1 - t0;
        ev.kind = obs::EventKind::kLeafExec;
        ev.worker = id;
        ev.args[0] = task.cells();
        ev.args[1] = task.source;
        ev.args[2] = task.ndims > 0 ? task.lo[0] : 0;
        ev.args[3] = task.ndims > 0 ? task.hi[0] : 0;
        ev.args[4] = task.class_lo;
        ev.args[5] = task.class_hi;
        obs::TraceRecorder::record(ev);
      }
      stats.busy_ns += t1 - t0;
    };

    // One idle episode spans from the first failed pop to the steal (or
    // exit) that ends it; a worker's own deque cannot refill while it is
    // idle (only its own process() pushes), so episodes close exactly there.
    int idle_sweeps = 0;
    i64 idle_t0 = 0;
    auto close_idle = [&](obs::EventKind kind, i64 a0, i64 a1) {
      if (idle_t0 == 0) return;
      const i64 t1 = now_ns();
      stats.idle_ns += t1 - idle_t0;
      if (kind == obs::EventKind::kSteal && metrics)
        steal_lat->observe(t1 - idle_t0);
      if (tracing) {
        obs::TraceEvent ev;
        ev.start_ns = idle_t0;
        ev.dur_ns = t1 - idle_t0;
        ev.kind = kind;
        ev.worker = id;
        ev.args[0] = a0;
        ev.args[1] = a1;
        obs::TraceRecorder::record(ev);
      }
      idle_t0 = 0;
    };
    for (;;) {
      if (abort.load(std::memory_order_acquire)) return;
      TaskDescriptor task;
      if (deques[static_cast<std::size_t>(id)]->pop(task)) {
        process(task);
        idle_sweeps = 0;
        continue;
      }
      if (idle_t0 == 0) idle_t0 = now_ns();
      if (pending.load(std::memory_order_acquire) == 0) {
        close_idle(obs::EventKind::kIdle, 0, 0);
        return;
      }
      bool stolen = false;
      int victim_id = -1;
      for (int k = 1; k < n && !stolen; ++k) {
        std::size_t victim = static_cast<std::size_t>((id + k) % n);
        if (deques[victim]->steal(task)) {
          ++stats.steals;
          victim_id = static_cast<int>(victim);
          stolen = true;
        }
      }
      if (stolen) {
        close_idle(obs::EventKind::kSteal, victim_id, task.source);
        process(task);
        idle_sweeps = 0;
      } else {
        if (n > 1) ++stats.failed_steals;
        if (++idle_sweeps < 16) {
          std::this_thread::yield();
        } else {
          // Nothing stealable for a while (e.g. one unsplittable descriptor
          // left): back off instead of burning a core per idle worker.
          std::this_thread::sleep_for(std::chrono::microseconds(
              std::min(50 * (idle_sweeps - 15), 1000)));
        }
      }
    }
  };

  i64 t0 = now_ns();
  if (pool) {
    // One chunk per worker context; pool threads plus the caller claim
    // them. A pool smaller than threads just runs some contexts after
    // others finished (they see pending == 0 and return immediately).
    pool->parallel_for(static_cast<i64>(threads),
                       [&](i64 id) { worker_main(static_cast<int>(id)); });
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads - 1);
    for (int k = 1; k < n; ++k) workers.emplace_back(worker_main, k);
    worker_main(0);  // the calling thread is worker 0
    for (std::thread& t : workers) t.join();
  }
  out.wall_ns = now_ns() - t0;

  if (first_error) std::rethrow_exception(first_error);
  if (metrics) publish_run_metrics(out.workers);
  return out;
}

}  // namespace vdep::runtime
