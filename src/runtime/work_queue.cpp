#include "runtime/work_queue.h"

#include "support/error.h"

namespace vdep::runtime {

WorkStealingDeque::Buffer::Buffer(i64 cap)
    : capacity(cap),
      mask(cap - 1),
      slots(new std::atomic<TaskDescriptor*>[static_cast<std::size_t>(cap)]) {
  VDEP_REQUIRE(cap > 0 && (cap & (cap - 1)) == 0,
               "deque capacity must be a power of two");
  for (i64 i = 0; i < cap; ++i)
    slots[static_cast<std::size_t>(i)].store(nullptr,
                                             std::memory_order_relaxed);
}

WorkStealingDeque::WorkStealingDeque(i64 initial_capacity) {
  buffers_.push_back(std::make_unique<Buffer>(initial_capacity));
  buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
}

WorkStealingDeque::~WorkStealingDeque() {
  // Free any descriptors never consumed (the executor normally drains the
  // deque; this covers exception unwinding).
  i64 t = top_.load(std::memory_order_relaxed);
  i64 b = bottom_.load(std::memory_order_relaxed);
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  for (i64 i = t; i < b; ++i) delete buf->get(i);
}

void WorkStealingDeque::push(const TaskDescriptor& task) {
  TaskDescriptor* node = new TaskDescriptor(task);
  i64 b = bottom_.load(std::memory_order_relaxed);
  i64 t = top_.load(std::memory_order_acquire);
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  if (b - t > buf->capacity - 1) buf = grow(buf, b, t);
  buf->put(b, node);
  // Release store (not a fence + relaxed store): this is the edge that
  // publishes the node's contents to thieves, and ThreadSanitizer does not
  // model fences — the operation itself must carry the ordering.
  bottom_.store(b + 1, std::memory_order_release);
}

bool WorkStealingDeque::pop(TaskDescriptor& out) {
  i64 b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  i64 t = top_.load(std::memory_order_relaxed);
  if (t > b) {  // empty: restore
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }
  TaskDescriptor* node = buf->get(b);
  if (t == b) {
    // Last element: race thieves for it through `top`.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;  // a thief won
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  out = *node;
  delete node;
  return true;
}

bool WorkStealingDeque::steal(TaskDescriptor& out) {
  i64 t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  i64 b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return false;  // empty
  Buffer* buf = buffer_.load(std::memory_order_acquire);
  TaskDescriptor* node = buf->get(t);
  // Claim index t before touching *node: the winner of the CAS is the
  // unique consumer of the slot, so only then is the dereference safe (a
  // pre-CAS read could hit a node the owner already popped and freed).
  // Visibility of the contents comes from the acquire load of `bottom`
  // above pairing with the release store in push().
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed))
    return false;  // lost the race; retry is the caller's policy
  out = *node;
  delete node;
  return true;
}

i64 WorkStealingDeque::size_estimate() const {
  i64 b = bottom_.load(std::memory_order_relaxed);
  i64 t = top_.load(std::memory_order_relaxed);
  return b > t ? b - t : 0;
}

WorkStealingDeque::Buffer* WorkStealingDeque::grow(Buffer* old, i64 bottom,
                                                   i64 top) {
  auto bigger = std::make_unique<Buffer>(old->capacity * 2);
  for (i64 i = top; i < bottom; ++i) bigger->put(i, old->get(i));
  Buffer* raw = bigger.get();
  buffers_.push_back(std::move(bigger));
  buffer_.store(raw, std::memory_order_release);
  return raw;
}

}  // namespace vdep::runtime
