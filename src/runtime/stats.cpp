#include "runtime/stats.h"

#include <sstream>

namespace vdep::runtime {

i64 RuntimeStats::total_tasks() const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.tasks;
  return n;
}

i64 RuntimeStats::total_splits() const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.splits;
  return n;
}

i64 RuntimeStats::total_steals() const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.steals;
  return n;
}

i64 RuntimeStats::total_iterations() const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.iterations;
  return n;
}

i64 RuntimeStats::total_axis_splits(int axis) const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.axis_splits[axis];
  return n;
}

i64 RuntimeStats::total_inner_splits() const {
  i64 n = 0;
  for (int axis = 1; axis < TaskDescriptor::kMaxDims; ++axis)
    n += total_axis_splits(axis);
  return n;
}

i64 RuntimeStats::max_busy_ns() const {
  i64 m = 0;
  for (const WorkerStats& w : workers) m = std::max(m, w.busy_ns);
  return m;
}

std::string RuntimeStats::to_string() const {
  std::ostringstream os;
  os << "worker  tasks  splits  steals  iterations  busy_ms\n";
  for (std::size_t k = 0; k < workers.size(); ++k) {
    const WorkerStats& w = workers[k];
    os << k << "  " << w.tasks << "  " << w.splits << "  " << w.steals << "  "
       << w.iterations << "  " << w.busy_ns / 1000000.0 << "\n";
  }
  os << "total  " << total_tasks() << "  " << total_splits() << "  "
     << total_steals() << "  " << total_iterations() << "  wall_ms "
     << wall_ns / 1000000.0 << "\n";
  os << "splits by axis: outer " << total_axis_splits(0) << ", inner "
     << total_inner_splits() << ", classes "
     << total_axis_splits(TaskDescriptor::kClassAxis) << "\n";
  return os.str();
}

}  // namespace vdep::runtime
