#include "runtime/stats.h"

#include <sstream>

#include "obs/metrics.h"

namespace vdep::runtime {

i64 RuntimeStats::total_tasks() const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.tasks;
  return n;
}

i64 RuntimeStats::total_splits() const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.splits;
  return n;
}

i64 RuntimeStats::total_steals() const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.steals;
  return n;
}

i64 RuntimeStats::total_steals_by_distance(int d) const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.steals_by_distance[d];
  return n;
}

i64 RuntimeStats::total_iterations() const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.iterations;
  return n;
}

i64 RuntimeStats::total_axis_splits(int axis) const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.axis_splits[axis];
  return n;
}

i64 RuntimeStats::total_inner_splits() const {
  i64 n = 0;
  for (int axis = 1; axis < TaskDescriptor::kMaxDims; ++axis)
    n += total_axis_splits(axis);
  return n;
}

i64 RuntimeStats::max_busy_ns() const {
  i64 m = 0;
  for (const WorkerStats& w : workers) m = std::max(m, w.busy_ns);
  return m;
}

i64 RuntimeStats::total_idle_ns() const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.idle_ns;
  return n;
}

i64 RuntimeStats::total_failed_steals() const {
  i64 n = 0;
  for (const WorkerStats& w : workers) n += w.failed_steals;
  return n;
}

std::string RuntimeStats::to_string() const {
  std::ostringstream os;
  os << "worker  tasks  splits  steals  failed_steals  iterations  busy_ms  "
        "idle_ms\n";
  for (std::size_t k = 0; k < workers.size(); ++k) {
    const WorkerStats& w = workers[k];
    os << k << "  " << w.tasks << "  " << w.splits << "  " << w.steals << "  "
       << w.failed_steals << "  " << w.iterations << "  "
       << w.busy_ns / 1000000.0 << "  " << w.idle_ns / 1000000.0 << "\n";
  }
  os << "total  " << total_tasks() << "  " << total_splits() << "  "
     << total_steals() << "  " << total_failed_steals() << "  "
     << total_iterations() << "  wall_ms " << wall_ns / 1000000.0 << "\n";
  os << "splits by axis: outer " << total_axis_splits(0) << ", inner "
     << total_inner_splits() << ", classes "
     << total_axis_splits(TaskDescriptor::kClassAxis) << "\n";
  os << "steals by distance: same_cpu " << total_steals_by_distance(0)
     << ", smt_sibling " << total_steals_by_distance(1) << ", same_node "
     << total_steals_by_distance(2) << ", remote_node "
     << total_steals_by_distance(3) << "\n";
  const i64 attempts = total_steals() + total_failed_steals();
  os << "steal success rate: ";
  if (attempts == 0)
    os << "n/a (no contested sweeps)";
  else
    os << 100.0 * static_cast<double>(total_steals()) /
              static_cast<double>(attempts)
       << "% (" << total_steals() << "/" << attempts << " sweeps)";
  os << "\n";
  return os.str();
}

void publish_run_metrics(const std::vector<WorkerStats>& workers) {
  if (!obs::MetricsRegistry::enabled()) return;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  static obs::Counter& busy =
      reg.counter("vdep_worker_busy_ns", "wall ns inside descriptor execution");
  static obs::Counter& idle =
      reg.counter("vdep_worker_idle_ns", "wall ns with no runnable descriptor");
  static obs::Counter& tasks =
      reg.counter("vdep_tasks_total", "leaf descriptors executed");
  static obs::Counter& splits =
      reg.counter("vdep_splits_total", "descriptor splits");
  static obs::Counter& steals =
      reg.counter("vdep_steals_total", "successful steals");
  static obs::Counter& failed =
      reg.counter("vdep_failed_steals_total", "empty full steal sweeps");
  static obs::Counter& iters =
      reg.counter("vdep_iterations_total", "loop-body iterations executed");
  static obs::Counter& d_same_cpu = reg.counter(
      "vdep_steals_same_cpu_total", "steals from a worker on the same cpu");
  static obs::Counter& d_smt = reg.counter(
      "vdep_steals_smt_sibling_total", "steals from an SMT sibling");
  static obs::Counter& d_node = reg.counter(
      "vdep_steals_same_node_total", "steals within the same NUMA node");
  static obs::Counter& d_remote = reg.counter(
      "vdep_steals_remote_node_total", "steals across NUMA nodes");
  for (const WorkerStats& w : workers) {
    busy.inc(w.busy_ns);
    idle.inc(w.idle_ns);
    tasks.inc(w.tasks);
    splits.inc(w.splits);
    steals.inc(w.steals);
    failed.inc(w.failed_steals);
    iters.inc(w.iterations);
    d_same_cpu.inc(w.steals_by_distance[0]);
    d_smt.inc(w.steals_by_distance[1]);
    d_node.inc(w.steals_by_distance[2]);
    d_remote.inc(w.steals_by_distance[3]);
  }
}

}  // namespace vdep::runtime
