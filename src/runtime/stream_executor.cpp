#include "runtime/stream_executor.h"

#include <optional>
#include <thread>

#include "analysis/interval.h"
#include "exec/compiled.h"
#include "exec/interpreter.h"
#include "runtime/driver.h"
#include "support/error.h"

namespace vdep::runtime {

/// Per-thread execution context: the scan cursor, the map-back buffer and
/// the iteration body, bundled so the recursive scans touch one object.
struct StreamExecutor::Worker {
  int id = 0;
  WorkerStats* stats = nullptr;
  Vec j;     ///< transformed iteration being scanned
  Vec orig;  ///< original iteration (map-back target when T != I)
  std::function<void(const Vec&)> body;    ///< runs one original iteration
  std::function<void(const Vec&)> emit_j;  ///< scan callback over j
};

StreamExecutor::StreamExecutor(const loopir::LoopNest& original,
                               const trans::TransformPlan& plan,
                               StreamOptions opts)
    : original_(original),
      tn_(codegen::rewrite_nest(original, plan)),
      part_(plan.partition),
      opts_(opts),
      depth_(original.depth()),
      num_doall_(plan.num_doall),
      identity_(plan.is_identity_transform()) {
  VDEP_REQUIRE(plan.depth == depth_, "plan depth / nest depth mismatch");
  if (part_) {
    VDEP_CHECK(num_doall_ + part_->dim() == depth_,
               "plan shape inconsistent: DOALL prefix + partition block must "
               "cover the nest");
    classes_ = part_->num_classes();
  }
  compute_hull();
  int limit = opts_.split_dims > 0 ? opts_.split_dims : TaskDescriptor::kMaxDims;
  ndims_ = std::min(num_doall_, std::min(limit, TaskDescriptor::kMaxDims));
  if (opts_.locality_splits) compute_split_prefs();
  threads_ = opts_.num_threads != 0
                 ? opts_.num_threads
                 : std::max(1u, std::thread::hardware_concurrency());
  if (opts_.grain > 0) {
    grain_ = opts_.grain;
  } else {
    grain_ = pick_grain(std::max<i64>(root().cells(), 1), threads_,
                        std::max<i64>(opts_.tasks_per_worker, 1));
  }
}

void StreamExecutor::compute_hull() {
  // Rectangular hull of every DOALL-prefix dimension, delegated to the
  // analysis pass (the same lattice the partitioner and kernel verifier
  // reason over). The hull is a superset of the projection — leaves
  // re-intersect with the dynamic bounds, so excess cells are just empty —
  // and exact for the common rectangular case. An inverted level yields
  // all-empty hulls so root() covers nothing.
  const analysis::IntervalEnv env =
      analysis::IntervalEnv::from_nest(tn_.nest, num_doall_);
  hull_.clear();
  hull_.reserve(static_cast<std::size_t>(num_doall_));
  for (const analysis::Interval& h : env.hulls()) hull_.emplace_back(h.lo, h.hi);
}

void StreamExecutor::compute_split_prefs() {
  // Locality weight of boxed axis d: total absolute address movement (in
  // elements, summed over the affine accesses) per unit step along
  // transformed coordinate j_d. One step moves the original iteration by
  // row d of T^{-1} (i = j T^{-1}), each subscript vector by F * that row
  // (subscripts = F i + f0), and the flat address by the row-major strides
  // of the array. Splitting the axis that moves addresses the most keeps
  // each half's footprint contiguous; an axis no access depends on scores
  // zero and ranks last among the DOALL axes.
  try {
  for (const loopir::LoopNest::Access& acc : original_.accesses()) {
    const loopir::ArrayRef& ref = acc.ref;
    if (ref.has_indirection()) continue;
    const loopir::ArrayDecl* decl = nullptr;
    for (const loopir::ArrayDecl& a : original_.arrays())
      if (a.name == ref.array) decl = &a;
    if (!decl) continue;
    // Row-major element strides of the declared shape.
    std::vector<i64> stride(static_cast<std::size_t>(decl->arity()), 1);
    for (int s = decl->arity() - 2; s >= 0; --s)
      stride[static_cast<std::size_t>(s)] = checked::mul(
          stride[static_cast<std::size_t>(s + 1)],
          decl->dims[static_cast<std::size_t>(s + 1)].second -
              decl->dims[static_cast<std::size_t>(s + 1)].first + 1);
    const intlin::Mat f = ref.linear_part();
    for (int d = 0; d < ndims_; ++d) {
      i64 delta = 0;
      for (int s = 0; s < decl->arity(); ++s) {
        i64 dsub = 0;
        for (int c = 0; c < depth_; ++c) {
          const i64 tinv = identity_ ? (c == d ? 1 : 0) : tn_.t_inverse.at(d, c);
          dsub = checked::add(dsub, checked::mul(f.at(s, c), tinv));
        }
        delta = checked::add(delta,
                             checked::mul(stride[static_cast<std::size_t>(s)],
                                          dsub));
      }
      split_prefs_.stride[d] =
          checked::add(split_prefs_.stride[d], checked::abs(delta));
    }
  }
  } catch (const Error&) {
    // Pathological shapes can overflow the stride products; locality is a
    // heuristic, so fall back to the longest-axis policy rather than fail.
    split_prefs_ = SplitPrefs{};
  }
}

TaskDescriptor StreamExecutor::root() const {
  TaskDescriptor rt;
  rt.ndims = ndims_;
  for (int d = 0; d < ndims_; ++d) {
    rt.lo[d] = hull_[static_cast<std::size_t>(d)].first;
    rt.hi[d] = hull_[static_cast<std::size_t>(d)].second;
  }
  rt.class_lo = 0;
  rt.class_hi = classes_;
  return rt;
}

void StreamExecutor::emit(Worker& w) const {
  ++w.stats->iterations;
  if (identity_) {
    w.body(w.j);
    return;
  }
  // orig = j * T^{-1}, into the preallocated buffer (vec_mat_mul would
  // allocate per iteration). Plain arithmetic: the transformed polytope is
  // a bijective image of the original box, whose coordinates fit i64 by
  // construction.
  const intlin::Mat& m = tn_.t_inverse;
  for (int c = 0; c < depth_; ++c) {
    i64 acc = 0;
    for (int r = 0; r < depth_; ++r)
      acc += w.j[static_cast<std::size_t>(r)] * m.at(r, c);
    w.orig[static_cast<std::size_t>(c)] = acc;
  }
  w.body(w.orig);
}

void StreamExecutor::scan_tail(int level, Worker& w) const {
  if (level == depth_) {
    emit(w);
    return;
  }
  const loopir::Level& l = tn_.nest.level(level);
  i64 lo = l.lower.eval_lower(w.j);
  i64 hi = l.upper.eval_upper(w.j);
  for (i64 v = lo; v <= hi; ++v) {
    w.j[static_cast<std::size_t>(level)] = v;
    scan_tail(level + 1, w);
  }
  w.j[static_cast<std::size_t>(level)] = 0;
}

void StreamExecutor::scan_prefix(int level, const TaskDescriptor& task,
                                 const std::vector<Vec>& labels,
                                 Worker& w) const {
  if (level == num_doall_) {
    if (part_) {
      for (const Vec& label : labels)
        part_->for_each_class_iteration_from(tn_.nest, num_doall_, label, w.j,
                                             w.emit_j);
    } else {
      for (i64 c = task.class_lo; c < task.class_hi; ++c)
        scan_tail(num_doall_, w);
    }
    return;
  }
  const loopir::Level& l = tn_.nest.level(level);
  i64 lo = l.lower.eval_lower(w.j);
  i64 hi = l.upper.eval_upper(w.j);
  if (level < task.ndims) {
    // Boxed dimension: the leaf owns only its slice of the hull.
    lo = std::max(lo, task.lo[level]);
    hi = std::min(hi, task.hi[level]);
  }
  for (i64 v = lo; v <= hi; ++v) {
    w.j[static_cast<std::size_t>(level)] = v;
    scan_prefix(level + 1, task, labels, w);
  }
  w.j[static_cast<std::size_t>(level)] = 0;
}

void StreamExecutor::execute_leaf(const TaskDescriptor& task, Worker& w) const {
  // Class labels depend only on the class id, which the descriptor fixes:
  // derive them once per leaf, not once per DOALL-prefix point (the prefix
  // scan below visits O(extent^num_doall) points).
  std::vector<Vec> labels;
  if (part_) {
    labels.reserve(static_cast<std::size_t>(task.class_hi - task.class_lo));
    for (i64 c = task.class_lo; c < task.class_hi; ++c)
      labels.push_back(part_->class_label(c));
  }
  scan_prefix(0, task, labels, w);
}

RuntimeStats StreamExecutor::drive(const LeafFactory& leaf_factory,
                                   ThreadPool* pool) const {
  // The scheduling loop lives in runtime/driver.cpp (shared with the
  // inspector executor); this executor only supplies the root box, the
  // grain, and the plan-scanning leaves.
  DriveOptions d;
  d.threads = threads_;
  d.grain = grain_;
  d.trace = opts_.trace;
  d.metrics = opts_.metrics;
  d.pin_workers = opts_.pin_workers;
  d.prefs = split_prefs_;
  return drive_descriptors(root(), d, leaf_factory, pool);
}

StreamExecutor::LeafFn StreamExecutor::make_scan_leaf(
    int id, WorkerStats& stats, std::function<void(const Vec&)> body) const {
  // The Worker outlives the factory call (it is captured by the leaf
  // closure), so it lives on the heap, one per worker context.
  auto w = std::make_shared<Worker>();
  w->id = id;
  w->stats = &stats;
  w->j.assign(static_cast<std::size_t>(depth_), 0);
  w->orig.assign(static_cast<std::size_t>(depth_), 0);
  w->body = std::move(body);
  Worker* wp = w.get();
  w->emit_j = [this, wp](const Vec&) { emit(*wp); };
  return [this, w](const TaskDescriptor& task) { execute_leaf(task, *w); };
}

RuntimeStats StreamExecutor::drive_scan(
    const std::function<std::function<void(const Vec&)>(int)>& body_factory,
    ThreadPool* pool) const {
  return drive(
      [&](int id, WorkerStats& stats) -> LeafFn {
        return make_scan_leaf(id, stats, body_factory(id));
      },
      pool);
}

StreamExecutor::LeafFactory StreamExecutor::make_leaf_factory(
    exec::ArrayStore& store, const exec::RangeKernel* kernel,
    const exec::CompiledKernel* scan_prototype) const {
  if (kernel) {
    return [kernel, &store](int, WorkerStats& stats) -> LeafFn {
      return [kernel, &store, &stats](const TaskDescriptor& t) {
        exec::IterBox box;
        box.lo = t.lo;
        box.hi = t.hi;
        box.ndims = t.ndims;
        box.class_lo = t.class_lo;
        box.class_hi = t.class_hi;
        stats.iterations += kernel->execute_range(store, box);
      };
    };
  }
  // Scan path: one shared CompiledKernel against `store` (per-worker
  // Scratch keeps it const), interpreter when the range proof rejects.
  // A prototype skips construction entirely: same program, re-based
  // buffers.
  std::shared_ptr<const exec::CompiledKernel> ck;
  if (!opts_.force_interpreter) {
    try {
      ck = scan_prototype
               ? std::make_shared<exec::CompiledKernel>(
                     scan_prototype->rebind(store))
               : std::make_shared<exec::CompiledKernel>(original_, store);
    } catch (const Error&) {
      // Range proof or box extraction failed: interpret instead.
    }
  }
  if (ck) {
    return [this, ck](int id, WorkerStats& stats) -> LeafFn {
      auto scratch = std::make_shared<exec::CompiledKernel::Scratch>(
          ck->make_scratch());
      return make_scan_leaf(id, stats, [ck, scratch](const Vec& it) {
        ck->execute_iteration(it, *scratch);
      });
    };
  }
  return [this, &store](int id, WorkerStats& stats) -> LeafFn {
    return make_scan_leaf(id, stats, [this, &store](const Vec& it) {
      exec::execute_iteration(original_, it, store);
    });
  };
}

RuntimeStats StreamExecutor::run_kernel_impl(exec::ArrayStore& store,
                                             const exec::RangeKernel& kernel,
                                             ThreadPool* pool) const {
  return drive(make_leaf_factory(store, &kernel), pool);
}

RuntimeStats StreamExecutor::run(exec::ArrayStore& store,
                                 const exec::RangeKernel& kernel) const {
  return run_kernel_impl(store, kernel, nullptr);
}

RuntimeStats StreamExecutor::run(exec::ArrayStore& store,
                                 const exec::RangeKernel& kernel,
                                 ThreadPool& pool) const {
  return run_kernel_impl(store, kernel, &pool);
}

RuntimeStats StreamExecutor::run_impl(exec::ArrayStore& store,
                                      ThreadPool* pool) const {
  return drive(make_leaf_factory(store), pool);
}

RuntimeStats StreamExecutor::run(exec::ArrayStore& store) const {
  return run_impl(store, nullptr);
}

RuntimeStats StreamExecutor::run(exec::ArrayStore& store,
                                 ThreadPool& pool) const {
  return run_impl(store, &pool);
}

RuntimeStats StreamExecutor::run_trace(
    const std::function<void(int, const Vec&)>& sink) const {
  return drive_scan(
      [&sink](int id) -> std::function<void(const Vec&)> {
        return [&sink, id](const Vec& it) { sink(id, it); };
      },
      nullptr);
}

}  // namespace vdep::runtime
