#include "runtime/stream_executor.h"

#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "analysis/interval.h"
#include "exec/compiled.h"
#include "exec/interpreter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/work_queue.h"
#include "support/error.h"

namespace vdep::runtime {

namespace {

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Per-thread execution context: the scan cursor, the map-back buffer and
/// the iteration body, bundled so the recursive scans touch one object.
struct StreamExecutor::Worker {
  int id = 0;
  WorkerStats* stats = nullptr;
  Vec j;     ///< transformed iteration being scanned
  Vec orig;  ///< original iteration (map-back target when T != I)
  std::function<void(const Vec&)> body;    ///< runs one original iteration
  std::function<void(const Vec&)> emit_j;  ///< scan callback over j
};

StreamExecutor::StreamExecutor(const loopir::LoopNest& original,
                               const trans::TransformPlan& plan,
                               StreamOptions opts)
    : original_(original),
      tn_(codegen::rewrite_nest(original, plan)),
      part_(plan.partition),
      opts_(opts),
      depth_(original.depth()),
      num_doall_(plan.num_doall),
      identity_(plan.is_identity_transform()) {
  VDEP_REQUIRE(plan.depth == depth_, "plan depth / nest depth mismatch");
  if (part_) {
    VDEP_CHECK(num_doall_ + part_->dim() == depth_,
               "plan shape inconsistent: DOALL prefix + partition block must "
               "cover the nest");
    classes_ = part_->num_classes();
  }
  compute_hull();
  int limit = opts_.split_dims > 0 ? opts_.split_dims : TaskDescriptor::kMaxDims;
  ndims_ = std::min(num_doall_, std::min(limit, TaskDescriptor::kMaxDims));
  threads_ = opts_.num_threads != 0
                 ? opts_.num_threads
                 : std::max(1u, std::thread::hardware_concurrency());
  if (opts_.grain > 0) {
    grain_ = opts_.grain;
  } else {
    grain_ = pick_grain(std::max<i64>(root().cells(), 1), threads_,
                        std::max<i64>(opts_.tasks_per_worker, 1));
  }
}

void StreamExecutor::compute_hull() {
  // Rectangular hull of every DOALL-prefix dimension, delegated to the
  // analysis pass (the same lattice the partitioner and kernel verifier
  // reason over). The hull is a superset of the projection — leaves
  // re-intersect with the dynamic bounds, so excess cells are just empty —
  // and exact for the common rectangular case. An inverted level yields
  // all-empty hulls so root() covers nothing.
  const analysis::IntervalEnv env =
      analysis::IntervalEnv::from_nest(tn_.nest, num_doall_);
  hull_.clear();
  hull_.reserve(static_cast<std::size_t>(num_doall_));
  for (const analysis::Interval& h : env.hulls()) hull_.emplace_back(h.lo, h.hi);
}

TaskDescriptor StreamExecutor::root() const {
  TaskDescriptor rt;
  rt.ndims = ndims_;
  for (int d = 0; d < ndims_; ++d) {
    rt.lo[d] = hull_[static_cast<std::size_t>(d)].first;
    rt.hi[d] = hull_[static_cast<std::size_t>(d)].second;
  }
  rt.class_lo = 0;
  rt.class_hi = classes_;
  return rt;
}

void StreamExecutor::emit(Worker& w) const {
  ++w.stats->iterations;
  if (identity_) {
    w.body(w.j);
    return;
  }
  // orig = j * T^{-1}, into the preallocated buffer (vec_mat_mul would
  // allocate per iteration). Plain arithmetic: the transformed polytope is
  // a bijective image of the original box, whose coordinates fit i64 by
  // construction.
  const intlin::Mat& m = tn_.t_inverse;
  for (int c = 0; c < depth_; ++c) {
    i64 acc = 0;
    for (int r = 0; r < depth_; ++r)
      acc += w.j[static_cast<std::size_t>(r)] * m.at(r, c);
    w.orig[static_cast<std::size_t>(c)] = acc;
  }
  w.body(w.orig);
}

void StreamExecutor::scan_tail(int level, Worker& w) const {
  if (level == depth_) {
    emit(w);
    return;
  }
  const loopir::Level& l = tn_.nest.level(level);
  i64 lo = l.lower.eval_lower(w.j);
  i64 hi = l.upper.eval_upper(w.j);
  for (i64 v = lo; v <= hi; ++v) {
    w.j[static_cast<std::size_t>(level)] = v;
    scan_tail(level + 1, w);
  }
  w.j[static_cast<std::size_t>(level)] = 0;
}

void StreamExecutor::scan_prefix(int level, const TaskDescriptor& task,
                                 const std::vector<Vec>& labels,
                                 Worker& w) const {
  if (level == num_doall_) {
    if (part_) {
      for (const Vec& label : labels)
        part_->for_each_class_iteration_from(tn_.nest, num_doall_, label, w.j,
                                             w.emit_j);
    } else {
      for (i64 c = task.class_lo; c < task.class_hi; ++c)
        scan_tail(num_doall_, w);
    }
    return;
  }
  const loopir::Level& l = tn_.nest.level(level);
  i64 lo = l.lower.eval_lower(w.j);
  i64 hi = l.upper.eval_upper(w.j);
  if (level < task.ndims) {
    // Boxed dimension: the leaf owns only its slice of the hull.
    lo = std::max(lo, task.lo[level]);
    hi = std::min(hi, task.hi[level]);
  }
  for (i64 v = lo; v <= hi; ++v) {
    w.j[static_cast<std::size_t>(level)] = v;
    scan_prefix(level + 1, task, labels, w);
  }
  w.j[static_cast<std::size_t>(level)] = 0;
}

void StreamExecutor::execute_leaf(const TaskDescriptor& task, Worker& w) const {
  // Class labels depend only on the class id, which the descriptor fixes:
  // derive them once per leaf, not once per DOALL-prefix point (the prefix
  // scan below visits O(extent^num_doall) points).
  std::vector<Vec> labels;
  if (part_) {
    labels.reserve(static_cast<std::size_t>(task.class_hi - task.class_lo));
    for (i64 c = task.class_lo; c < task.class_hi; ++c)
      labels.push_back(part_->class_label(c));
  }
  scan_prefix(0, task, labels, w);
}

RuntimeStats StreamExecutor::drive(const LeafFactory& leaf_factory,
                                   ThreadPool* pool) const {
  RuntimeStats out;
  out.workers.resize(threads_);
  TaskDescriptor rt = root();
  if (rt.empty()) return out;

  std::vector<std::unique_ptr<WorkStealingDeque>> deques;
  deques.reserve(threads_);
  for (std::size_t k = 0; k < threads_; ++k)
    deques.push_back(std::make_unique<WorkStealingDeque>());

  // Tasks alive (queued or executing). Seeded before any worker starts;
  // thread creation publishes the push below to every worker.
  std::atomic<i64> pending{1};
  deques[0]->push(rt);

  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  // Observability gates, sampled once per run: with the recorder/registry
  // globally off (or the run opting out) the workers pay one hoisted bool
  // test per site, no clock reads beyond the two busy_ns already makes.
  const bool tracing = opts_.trace && obs::TraceRecorder::enabled();
  const bool metrics = opts_.metrics && obs::MetricsRegistry::enabled();
  obs::Histogram* steal_lat = nullptr;
  obs::Histogram* leaf_cells = nullptr;
  obs::Histogram* qdepth = nullptr;
  if (metrics) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    steal_lat = &reg.histogram(
        "vdep_steal_latency_ns", obs::exp_buckets(1000, 4.0, 12),
        "idle-episode length ending in a successful steal");
    leaf_cells = &reg.histogram("vdep_leaf_cells",
                                obs::exp_buckets(1, 4.0, 16),
                                "cells per executed leaf descriptor");
    qdepth = &reg.histogram("vdep_queue_depth", obs::exp_buckets(1, 2.0, 10),
                            "owner deque size sampled at split");
  }

  const int n = static_cast<int>(threads_);
  auto worker_main = [&](int id) {
    WorkerStats& stats = out.workers[static_cast<std::size_t>(id)];
    LeafFn leaf = leaf_factory(id, stats);

    auto process = [&](TaskDescriptor task) {
      i64 t0 = now_ns();
      try {
        // Split depth-first: push the large high halves (stolen first),
        // keep refining the low half until it is a leaf, run it.
        while (can_split(task, grain_)) {
          int axis = 0;
          TaskDescriptor high = split(task, grain_, &axis);
          pending.fetch_add(1, std::memory_order_relaxed);
          deques[static_cast<std::size_t>(id)]->push(high);
          ++stats.splits;
          ++stats.axis_splits[axis];
          if (tracing || metrics) {
            const i64 depth =
                deques[static_cast<std::size_t>(id)]->size_estimate();
            if (metrics) qdepth->observe(depth);
            if (tracing) {
              obs::TraceEvent ev;
              ev.start_ns = obs::now_ns();
              ev.kind = obs::EventKind::kSplit;
              ev.worker = id;
              ev.args[0] = axis;
              ev.args[1] = task.cells();
              ev.args[2] = depth;
              ev.args[3] = task.source;
              obs::TraceRecorder::record(ev);
            }
          }
        }
        leaf(task);
        ++stats.tasks;
        if (metrics) leaf_cells->observe(task.cells());
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_release);
      }
      pending.fetch_sub(1, std::memory_order_acq_rel);
      const i64 t1 = now_ns();
      if (tracing) {
        obs::TraceEvent ev;
        ev.start_ns = t0;
        ev.dur_ns = t1 - t0;
        ev.kind = obs::EventKind::kLeafExec;
        ev.worker = id;
        ev.args[0] = task.cells();
        ev.args[1] = task.source;
        ev.args[2] = task.ndims > 0 ? task.lo[0] : 0;
        ev.args[3] = task.ndims > 0 ? task.hi[0] : 0;
        ev.args[4] = task.class_lo;
        ev.args[5] = task.class_hi;
        obs::TraceRecorder::record(ev);
      }
      stats.busy_ns += t1 - t0;
    };

    // One idle episode spans from the first failed pop to the steal (or
    // exit) that ends it; a worker's own deque cannot refill while it is
    // idle (only its own process() pushes), so episodes close exactly there.
    int idle_sweeps = 0;
    i64 idle_t0 = 0;
    auto close_idle = [&](obs::EventKind kind, i64 a0, i64 a1) {
      if (idle_t0 == 0) return;
      const i64 t1 = now_ns();
      stats.idle_ns += t1 - idle_t0;
      if (kind == obs::EventKind::kSteal && metrics)
        steal_lat->observe(t1 - idle_t0);
      if (tracing) {
        obs::TraceEvent ev;
        ev.start_ns = idle_t0;
        ev.dur_ns = t1 - idle_t0;
        ev.kind = kind;
        ev.worker = id;
        ev.args[0] = a0;
        ev.args[1] = a1;
        obs::TraceRecorder::record(ev);
      }
      idle_t0 = 0;
    };
    for (;;) {
      if (abort.load(std::memory_order_acquire)) return;
      TaskDescriptor task;
      if (deques[static_cast<std::size_t>(id)]->pop(task)) {
        process(task);
        idle_sweeps = 0;
        continue;
      }
      if (idle_t0 == 0) idle_t0 = now_ns();
      if (pending.load(std::memory_order_acquire) == 0) {
        close_idle(obs::EventKind::kIdle, 0, 0);
        return;
      }
      bool stolen = false;
      int victim_id = -1;
      for (int k = 1; k < n && !stolen; ++k) {
        std::size_t victim = static_cast<std::size_t>((id + k) % n);
        if (deques[victim]->steal(task)) {
          ++stats.steals;
          victim_id = static_cast<int>(victim);
          stolen = true;
        }
      }
      if (stolen) {
        close_idle(obs::EventKind::kSteal, victim_id, task.source);
        process(task);
        idle_sweeps = 0;
      } else {
        if (n > 1) ++stats.failed_steals;
        if (++idle_sweeps < 16) {
          std::this_thread::yield();
        } else {
          // Nothing stealable for a while (e.g. one unsplittable descriptor
          // left): back off instead of burning a core per idle worker.
          std::this_thread::sleep_for(std::chrono::microseconds(
              std::min(50 * (idle_sweeps - 15), 1000)));
        }
      }
    }
  };

  i64 t0 = now_ns();
  if (pool) {
    // One chunk per worker context; pool threads plus the caller claim
    // them. A pool smaller than threads_ just runs some contexts after
    // others finished (they see pending == 0 and return immediately).
    pool->parallel_for(static_cast<i64>(threads_),
                       [&](i64 id) { worker_main(static_cast<int>(id)); });
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads_ - 1);
    for (int k = 1; k < n; ++k) workers.emplace_back(worker_main, k);
    worker_main(0);  // the calling thread is worker 0
    for (std::thread& t : workers) t.join();
  }
  out.wall_ns = now_ns() - t0;

  if (first_error) std::rethrow_exception(first_error);
  if (metrics) publish_run_metrics(out.workers);
  return out;
}

StreamExecutor::LeafFn StreamExecutor::make_scan_leaf(
    int id, WorkerStats& stats, std::function<void(const Vec&)> body) const {
  // The Worker outlives the factory call (it is captured by the leaf
  // closure), so it lives on the heap, one per worker context.
  auto w = std::make_shared<Worker>();
  w->id = id;
  w->stats = &stats;
  w->j.assign(static_cast<std::size_t>(depth_), 0);
  w->orig.assign(static_cast<std::size_t>(depth_), 0);
  w->body = std::move(body);
  Worker* wp = w.get();
  w->emit_j = [this, wp](const Vec&) { emit(*wp); };
  return [this, w](const TaskDescriptor& task) { execute_leaf(task, *w); };
}

RuntimeStats StreamExecutor::drive_scan(
    const std::function<std::function<void(const Vec&)>(int)>& body_factory,
    ThreadPool* pool) const {
  return drive(
      [&](int id, WorkerStats& stats) -> LeafFn {
        return make_scan_leaf(id, stats, body_factory(id));
      },
      pool);
}

StreamExecutor::LeafFactory StreamExecutor::make_leaf_factory(
    exec::ArrayStore& store, const exec::RangeKernel* kernel,
    const exec::CompiledKernel* scan_prototype) const {
  if (kernel) {
    return [kernel, &store](int, WorkerStats& stats) -> LeafFn {
      return [kernel, &store, &stats](const TaskDescriptor& t) {
        exec::IterBox box;
        box.lo = t.lo;
        box.hi = t.hi;
        box.ndims = t.ndims;
        box.class_lo = t.class_lo;
        box.class_hi = t.class_hi;
        stats.iterations += kernel->execute_range(store, box);
      };
    };
  }
  // Scan path: one shared CompiledKernel against `store` (per-worker
  // Scratch keeps it const), interpreter when the range proof rejects.
  // A prototype skips construction entirely: same program, re-based
  // buffers.
  std::shared_ptr<const exec::CompiledKernel> ck;
  if (!opts_.force_interpreter) {
    try {
      ck = scan_prototype
               ? std::make_shared<exec::CompiledKernel>(
                     scan_prototype->rebind(store))
               : std::make_shared<exec::CompiledKernel>(original_, store);
    } catch (const Error&) {
      // Range proof or box extraction failed: interpret instead.
    }
  }
  if (ck) {
    return [this, ck](int id, WorkerStats& stats) -> LeafFn {
      auto scratch = std::make_shared<exec::CompiledKernel::Scratch>(
          ck->make_scratch());
      return make_scan_leaf(id, stats, [ck, scratch](const Vec& it) {
        ck->execute_iteration(it, *scratch);
      });
    };
  }
  return [this, &store](int id, WorkerStats& stats) -> LeafFn {
    return make_scan_leaf(id, stats, [this, &store](const Vec& it) {
      exec::execute_iteration(original_, it, store);
    });
  };
}

RuntimeStats StreamExecutor::run_kernel_impl(exec::ArrayStore& store,
                                             const exec::RangeKernel& kernel,
                                             ThreadPool* pool) const {
  return drive(make_leaf_factory(store, &kernel), pool);
}

RuntimeStats StreamExecutor::run(exec::ArrayStore& store,
                                 const exec::RangeKernel& kernel) const {
  return run_kernel_impl(store, kernel, nullptr);
}

RuntimeStats StreamExecutor::run(exec::ArrayStore& store,
                                 const exec::RangeKernel& kernel,
                                 ThreadPool& pool) const {
  return run_kernel_impl(store, kernel, &pool);
}

RuntimeStats StreamExecutor::run_impl(exec::ArrayStore& store,
                                      ThreadPool* pool) const {
  return drive(make_leaf_factory(store), pool);
}

RuntimeStats StreamExecutor::run(exec::ArrayStore& store) const {
  return run_impl(store, nullptr);
}

RuntimeStats StreamExecutor::run(exec::ArrayStore& store,
                                 ThreadPool& pool) const {
  return run_impl(store, &pool);
}

RuntimeStats StreamExecutor::run_trace(
    const std::function<void(int, const Vec&)>& sink) const {
  return drive_scan(
      [&sink](int id) -> std::function<void(const Vec&)> {
        return [&sink, id](const Vec& it) { sink(id, it); };
      },
      nullptr);
}

}  // namespace vdep::runtime
