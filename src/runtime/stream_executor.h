// Streaming execution of a TransformPlan: work-stealing over descriptors,
// iterations regenerated on the fly.
//
// The materialized path (exec::build_schedule + ThreadPool) first stores
// every iteration vector of every work item — O(total iterations x depth)
// memory and build time — then replays them through a single mutex queue.
// The StreamExecutor never builds that list. The root TaskDescriptor covers
// the whole (DOALL-prefix hull) x (partition class) iteration box; workers
// split it recursively along its longest axis (task.h) into leaves held in
// Chase-Lev deques (work_queue.h), and each leaf *scans* its iterations
// directly from the Partitioning class recurrence (trans::Partitioning, the
// paper's loop (3.2)) or the plain transformed bounds, each boxed DOALL
// dimension intersected with the leaf's range. Peak schedule state is
// O(active descriptors): a few dozen small boxes, independent of the
// iteration count.
//
// Loop bodies run through a shared exec::CompiledKernel with one Scratch
// per worker; nests the kernel's one-time range proof rejects fall back to
// the exact interpreter. Both modes produce final stores bit-identical to
// the sequential reference — legality is the same Lemma 1 x Theorem 2
// argument as the materialized schedule, only the cover of the box changed.
#pragma once

#include <functional>

#include "codegen/rewrite.h"
#include "exec/kernel.h"
#include "runtime/driver.h"
#include "runtime/stats.h"
#include "runtime/task.h"
#include "support/thread_pool.h"

namespace vdep::exec {
class CompiledKernel;
}

namespace vdep::runtime {

using intlin::Vec;

struct StreamOptions {
  /// Worker count; 0 means hardware concurrency.
  std::size_t num_threads = 0;
  /// Descriptor grain in cells; 0 picks ~tasks_per_worker leaves per
  /// worker (task.h pick_grain).
  i64 grain = 0;
  /// Target leaf descriptors per worker for the automatic grain.
  i64 tasks_per_worker = 8;
  /// How many DOALL-prefix dimensions descriptors box and split; 0 = all
  /// (capped at TaskDescriptor::kMaxDims). 1 reproduces the legacy
  /// outer-only splitter.
  int split_dims = 0;
  /// Skip the compiled kernel and always interpret (tests / debugging).
  bool force_interpreter = false;
  /// Pin each worker to its topology-assigned cpu for the run (previous
  /// affinity restored afterwards); VDEP_PIN=0 overrides from outside.
  /// Results are bit-identical either way — only placement changes.
  bool pin_workers = true;
  /// Prefer splitting descriptors along the axis with the largest address
  /// stride (keeps each leaf's touched rows contiguous; task.h SplitPrefs),
  /// falling back to the longest axis when the plan gives no signal. Off:
  /// always longest-axis.
  bool locality_splits = true;
  /// Allow this run to emit trace events when the global obs::TraceRecorder
  /// is enabled (leaf spans, split/steal/idle events). Off, the run never
  /// touches the recorder regardless of its state.
  bool trace = true;
  /// Same gate for the global obs::MetricsRegistry (histograms during the
  /// run + per-worker counters at the end).
  bool metrics = true;
};

class StreamExecutor {
 public:
  /// Leaf runner / factory types shared with the descriptor driver
  /// (runtime/driver.h), which owns the scheduling loop.
  using LeafFn = runtime::LeafFn;
  using LeafFactory = runtime::LeafFactory;

  /// `plan` must come from trans::plan_transform on `original`'s PDM (or
  /// be otherwise legal for it); legality is not re-checked here.
  StreamExecutor(const loopir::LoopNest& original,
                 const trans::TransformPlan& plan, StreamOptions opts = {});

  /// Runs the whole plan over `store` and returns the worker counters.
  /// Spawns num_threads() - 1 helper threads; the caller is worker 0.
  RuntimeStats run(exec::ArrayStore& store) const;

  /// Same, but the workers are `pool`'s threads (plus the caller) instead
  /// of freshly spawned ones — use when a long-lived pool already exists.
  /// num_threads() worker contexts are distributed over the pool.
  RuntimeStats run(exec::ArrayStore& store, ThreadPool& pool) const;

  /// Native-kernel mode: descriptor leaves are handed whole to
  /// `kernel.execute_range` (typically a dlopen-ed jit::NativeKernel built
  /// from this executor's plan) instead of being scanned per iteration.
  /// Work stealing, splitting and stats are identical to run(); only leaf
  /// execution changes.
  RuntimeStats run(exec::ArrayStore& store,
                   const exec::RangeKernel& kernel) const;
  RuntimeStats run(exec::ArrayStore& store, const exec::RangeKernel& kernel,
                   ThreadPool& pool) const;

  /// Test/diagnostic mode: streams every *original* iteration in execution
  /// order to `sink(worker, iter)` instead of mutating a store. The sink
  /// must be safe to call concurrently for distinct workers.
  RuntimeStats run_trace(
      const std::function<void(int, const Vec&)>& sink) const;

  /// Batch support (runtime/batch_executor.h): the per-worker leaf runner
  /// run()/run(kernel) use, detached from the driving loop so a multi-
  /// source scheduler can execute this plan's descriptors next to other
  /// plans'. With `kernel` null this is the scan path — a CompiledKernel
  /// is built against `store` once (shared by every worker context this
  /// factory produces), falling back to the exact interpreter when the
  /// range proof rejects the nest; non-null, leaves are handed whole to
  /// `kernel`. `scan_prototype`, when set, skips the scan kernel's
  /// construction (and its range proof): the prototype — compiled once per
  /// (structure, bounds) group by the batch layer — is rebound onto
  /// `store` instead. `store`, `kernel` and `scan_prototype` must outlive
  /// the returned factory and every LeafFn it produced; so must this
  /// executor.
  LeafFactory make_leaf_factory(
      exec::ArrayStore& store, const exec::RangeKernel* kernel = nullptr,
      const exec::CompiledKernel* scan_prototype = nullptr) const;

  /// The root descriptor: the rectangular hull of every boxed DOALL-prefix
  /// dimension times the full class range.
  TaskDescriptor root() const;
  /// Whether the plan has any DOALL dimension to chunk along.
  bool has_outer() const { return num_doall_ > 0; }
  /// DOALL-prefix dimensions descriptors box and split (<= num_doall).
  int boxed_dims() const { return ndims_; }
  i64 grain() const { return grain_; }
  i64 num_classes() const { return classes_; }
  std::size_t num_threads() const { return threads_; }
  const StreamOptions& options() const { return opts_; }
  /// Locality weights of the boxed axes (all-zero unless locality_splits
  /// found per-axis address strides to steer by). Shared with the batch
  /// scheduler, which splits this executor's descriptors itself.
  const SplitPrefs& split_prefs() const { return split_prefs_; }

 private:
  struct Worker;
  RuntimeStats run_impl(exec::ArrayStore& store, ThreadPool* pool) const;
  RuntimeStats run_kernel_impl(exec::ArrayStore& store,
                               const exec::RangeKernel& kernel,
                               ThreadPool* pool) const;
  RuntimeStats drive(const LeafFactory& leaf_factory, ThreadPool* pool) const;
  RuntimeStats drive_scan(
      const std::function<std::function<void(const Vec&)>(int)>& body_factory,
      ThreadPool* pool) const;
  /// One scan-path worker context: Worker + recursive descriptor scan.
  LeafFn make_scan_leaf(int id, WorkerStats& stats,
                        std::function<void(const Vec&)> body) const;
  void compute_hull();
  void compute_split_prefs();
  void execute_leaf(const TaskDescriptor& task, Worker& w) const;
  void scan_prefix(int level, const TaskDescriptor& task,
                   const std::vector<Vec>& labels, Worker& w) const;
  void scan_tail(int level, Worker& w) const;
  void emit(Worker& w) const;

  loopir::LoopNest original_;
  codegen::TransformedNest tn_;
  std::optional<trans::Partitioning> part_;
  StreamOptions opts_;
  std::size_t threads_ = 1;
  int depth_ = 0;
  int num_doall_ = 0;
  int ndims_ = 0;  ///< boxed DOALL-prefix dimensions (<= kMaxDims)
  i64 classes_ = 1;
  bool identity_ = true;  ///< T == I: transformed coords are original coords
  i64 grain_ = 1;
  SplitPrefs split_prefs_;
  /// Rectangular hull [min, max] of each DOALL-prefix dimension over the
  /// transformed space (interval arithmetic over the bounds, outermost-in).
  std::vector<std::pair<i64, i64>> hull_;
};

}  // namespace vdep::runtime
