#include "runtime/batch_executor.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/driver.h"
#include "runtime/work_queue.h"
#include "support/error.h"
#include "topo/affinity.h"
#include "topo/topology.h"

namespace vdep::runtime {

namespace {

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-source live-descriptor counter, padded so adjacent sources'
/// hot counters never share a cache line.
struct alignas(64) Pending {
  std::atomic<i64> count{0};
};

}  // namespace

i64 BatchStats::total_steals() const {
  i64 n = 0;
  for (const SourceStats& s : sources) n += s.steals;
  return n;
}

i64 BatchStats::total_iterations() const {
  i64 n = 0;
  for (const SourceStats& s : sources) n += s.iterations;
  return n;
}

BatchStats run_batch(std::span<const BatchSource> sources, std::size_t threads,
                     ThreadPool* pool, bool pin_workers) {
  const std::size_t ns = sources.size();
  BatchStats out;
  out.sources.resize(ns);
  if (ns == 0) return out;
  if (threads == 0)
    threads = pool ? pool->size()
                   : std::max(1u, std::thread::hardware_concurrency());

  // One leaf factory per source, built up front: the scan path compiles
  // its CompiledKernel against the source's store here, once, shared by
  // every worker context that later touches the source.
  std::vector<StreamExecutor::LeafFactory> factories;
  factories.reserve(ns);
  for (const BatchSource& src : sources) {
    VDEP_REQUIRE(src.executor != nullptr && src.store != nullptr,
                 "run_batch: source executor/store must be set");
    factories.push_back(src.executor->make_leaf_factory(
        *src.store, src.kernel, src.scan_prototype));
  }

  // Per (worker, source) counters: single writer each, aggregated after
  // the join, so no synchronization beyond the join itself.
  std::vector<WorkerStats> ws(threads * ns);
  auto stats_of = [&](int id, i64 s) -> WorkerStats& {
    return ws[static_cast<std::size_t>(id) * ns + static_cast<std::size_t>(s)];
  };

  std::vector<std::unique_ptr<WorkStealingDeque>> deques;
  deques.reserve(threads);
  for (std::size_t k = 0; k < threads; ++k)
    deques.push_back(std::make_unique<WorkStealingDeque>());

  // Topology: where each worker pins and whom it robs first (see
  // runtime/driver.cpp — the batch loop mirrors its policy).
  const topo::Topology& topology = topo::Topology::system();
  const std::vector<int> assignment = topology.assign_workers(threads);
  const bool pin = detail::effective_pin(pin_workers, threads);

  // Live descriptors per source plus the count of unfinished sources; a
  // worker may retire only descriptors it holds, so `pending` hitting zero
  // is exactly "every descriptor of the source ran".
  std::vector<Pending> pending(ns);
  std::atomic<i64> live_sources{0};
  std::vector<i64> done_ns(ns, 0);

  // Seed every nonempty root round-robin before any worker starts (deque
  // pushes are owner-only, but pre-start seeding is single-threaded and
  // published by thread creation / the pool's queue mutex).
  std::size_t seeded = 0;
  for (std::size_t s = 0; s < ns; ++s) {
    TaskDescriptor rt = sources[s].executor->root();
    rt.source = static_cast<i64>(s);
    if (rt.empty()) continue;
    pending[s].count.store(1, std::memory_order_relaxed);
    live_sources.fetch_add(1, std::memory_order_relaxed);
    deques[seeded++ % threads]->push(rt);
  }
  if (seeded == 0) return out;

  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  i64 first_error_source = -1;
  std::mutex error_mutex;

  // Queue latency: batch start -> a source's first descriptor starts
  // executing. Stamped once by whichever worker gets there first.
  std::vector<std::atomic<i64>> first_start(ns);

  // Observability gates (see stream_executor.cpp drive()); per-worker idle
  // accounting lives in its own block because idle time belongs to no
  // source.
  const bool tracing = obs::TraceRecorder::enabled();
  const bool metrics = obs::MetricsRegistry::enabled();
  obs::Histogram* steal_lat = nullptr;
  if (metrics) {
    steal_lat = &obs::MetricsRegistry::instance().histogram(
        "vdep_steal_latency_ns", obs::exp_buckets(1000, 4.0, 12),
        "idle-episode length ending in a successful steal");
  }
  std::vector<WorkerStats> idle_acc(threads);

  const i64 t0 = now_ns();
  const int n = static_cast<int>(threads);
  auto worker_main = [&](int id) {
    // Pin for the batch's duration; the guard restores the thread's
    // previous mask (worker 0 is the caller, pool threads are long-lived).
    std::optional<topo::AffinityGuard> pin_guard;
    if (pin)
      pin_guard.emplace(
          topology.cpus()[static_cast<std::size_t>(
                              assignment[static_cast<std::size_t>(id)])]
              .cpu);
    // Victim probe order, nearest ring first, randomized start within each
    // ring (same policy as drive_descriptors).
    const std::vector<std::vector<int>> rings =
        topology.steal_rings(assignment, id);
    std::uint64_t rng =
        0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(id) + 1);
    auto next_rand = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };

    // Leaf runners of this worker context, one per source, built on the
    // first descriptor of that source this worker runs.
    std::vector<StreamExecutor::LeafFn> leaves(ns);

    auto process = [&](TaskDescriptor task) {
      const i64 s = task.source;
      const StreamExecutor& ex = *sources[static_cast<std::size_t>(s)].executor;
      WorkerStats& stats = stats_of(id, s);
      i64 t_start = now_ns();
      if (first_start[static_cast<std::size_t>(s)].load(
              std::memory_order_relaxed) == 0) {
        i64 expect = 0;
        first_start[static_cast<std::size_t>(s)].compare_exchange_strong(
            expect, std::max<i64>(1, t_start - t0), std::memory_order_relaxed);
      }
      try {
        while (can_split(task, ex.grain())) {
          int axis = 0;
          TaskDescriptor high = split(task, ex.grain(), &axis, &ex.split_prefs());
          pending[static_cast<std::size_t>(s)].count.fetch_add(
              1, std::memory_order_relaxed);
          deques[static_cast<std::size_t>(id)]->push(high);
          ++stats.splits;
          ++stats.axis_splits[axis];
          if (tracing) {
            obs::TraceEvent ev;
            ev.start_ns = obs::now_ns();
            ev.kind = obs::EventKind::kSplit;
            ev.worker = id;
            ev.args[0] = axis;
            ev.args[1] = task.cells();
            ev.args[2] = deques[static_cast<std::size_t>(id)]->size_estimate();
            ev.args[3] = s;
            obs::TraceRecorder::record(ev);
          }
        }
        StreamExecutor::LeafFn& leaf = leaves[static_cast<std::size_t>(s)];
        if (!leaf) leaf = factories[static_cast<std::size_t>(s)](id, stats);
        leaf(task);
        ++stats.tasks;
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
          first_error_source = s;
        }
        abort.store(true, std::memory_order_release);
      }
      if (pending[static_cast<std::size_t>(s)].count.fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        // Unique last-retirer of the source: stamp its completion.
        done_ns[static_cast<std::size_t>(s)] = now_ns() - t0;
        live_sources.fetch_sub(1, std::memory_order_acq_rel);
      }
      const i64 t_end = now_ns();
      if (tracing) {
        obs::TraceEvent ev;
        ev.start_ns = t_start;
        ev.dur_ns = t_end - t_start;
        ev.kind = obs::EventKind::kLeafExec;
        ev.worker = id;
        ev.args[0] = task.cells();
        ev.args[1] = s;
        ev.args[2] = task.ndims > 0 ? task.lo[0] : 0;
        ev.args[3] = task.ndims > 0 ? task.hi[0] : 0;
        ev.args[4] = task.class_lo;
        ev.args[5] = task.class_hi;
        obs::TraceRecorder::record(ev);
      }
      stats.busy_ns += t_end - t_start;
    };

    WorkerStats& idle_stats = idle_acc[static_cast<std::size_t>(id)];
    int idle_sweeps = 0;
    i64 idle_t0 = 0;
    auto close_idle = [&](obs::EventKind kind, i64 a0, i64 a1, i64 a2 = 0) {
      if (idle_t0 == 0) return;
      const i64 t1 = now_ns();
      idle_stats.idle_ns += t1 - idle_t0;
      if (kind == obs::EventKind::kSteal && metrics)
        steal_lat->observe(t1 - idle_t0);
      if (tracing) {
        obs::TraceEvent ev;
        ev.start_ns = idle_t0;
        ev.dur_ns = t1 - idle_t0;
        ev.kind = kind;
        ev.worker = id;
        ev.args[0] = a0;
        ev.args[1] = a1;
        ev.args[2] = a2;
        obs::TraceRecorder::record(ev);
      }
      idle_t0 = 0;
    };
    for (;;) {
      if (abort.load(std::memory_order_acquire)) return;
      TaskDescriptor task;
      if (deques[static_cast<std::size_t>(id)]->pop(task)) {
        process(task);
        idle_sweeps = 0;
        continue;
      }
      if (idle_t0 == 0) idle_t0 = now_ns();
      if (live_sources.load(std::memory_order_acquire) == 0) {
        close_idle(obs::EventKind::kIdle, 0, 0);
        return;
      }
      // Distance-ordered sweep, nearest ring first (driver.cpp). The
      // per-distance counter lands on the stolen task's source block so
      // the per-request traffic mix stays visible.
      bool stolen = false;
      int victim_id = -1;
      int victim_distance = 0;
      for (int d = 0; d < topo::Topology::kNumDistances && !stolen; ++d) {
        const std::vector<int>& ring = rings[static_cast<std::size_t>(d)];
        if (ring.empty()) continue;
        const std::size_t start = next_rand() % ring.size();
        for (std::size_t k = 0; k < ring.size() && !stolen; ++k) {
          const int victim = ring[(start + k) % ring.size()];
          if (deques[static_cast<std::size_t>(victim)]->steal(task)) {
            WorkerStats& st = stats_of(id, task.source);
            ++st.steals;
            ++st.steals_by_distance[d];
            victim_id = victim;
            victim_distance = d;
            stolen = true;
          }
        }
      }
      if (stolen) {
        close_idle(obs::EventKind::kSteal, victim_id, task.source,
                   victim_distance);
        process(task);
        idle_sweeps = 0;
      } else {
        if (n > 1) ++idle_stats.failed_steals;
        if (++idle_sweeps < 16) {
          std::this_thread::yield();
        } else {
          // Re-check termination before backing off (see driver.cpp).
          if (live_sources.load(std::memory_order_acquire) == 0) continue;
          std::this_thread::sleep_for(std::chrono::microseconds(
              std::min(50 * (idle_sweeps - 15), 1000)));
        }
      }
    }
  };

  if (pool) {
    pool->parallel_for(static_cast<i64>(threads),
                       [&](i64 id) { worker_main(static_cast<int>(id)); });
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads - 1);
    for (int k = 1; k < n; ++k) workers.emplace_back(worker_main, k);
    worker_main(0);  // the calling thread is worker 0
    for (std::thread& t : workers) t.join();
  }
  out.wall_ns = now_ns() - t0;

  for (std::size_t s = 0; s < ns; ++s) {
    SourceStats& agg = out.sources[s];
    for (std::size_t id = 0; id < threads; ++id) {
      const WorkerStats& w = ws[id * ns + s];
      agg.iterations += w.iterations;
      agg.tasks += w.tasks;
      agg.splits += w.splits;
      for (int axis = 1; axis < TaskDescriptor::kMaxDims; ++axis)
        agg.inner_splits += w.axis_splits[axis];
      agg.steals += w.steals;
    }
    agg.done_ns = done_ns[s];
    agg.queue_ns = first_start[s].load(std::memory_order_relaxed);
  }
  out.error = first_error;
  out.error_source = first_error_source;
  if (metrics) {
    publish_run_metrics(ws);
    publish_run_metrics(idle_acc);
  }
  return out;
}

}  // namespace vdep::runtime
