#include "runtime/batch_executor.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/work_queue.h"
#include "support/error.h"

namespace vdep::runtime {

namespace {

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-source live-descriptor counter, padded so adjacent sources'
/// hot counters never share a cache line.
struct alignas(64) Pending {
  std::atomic<i64> count{0};
};

}  // namespace

i64 BatchStats::total_steals() const {
  i64 n = 0;
  for (const SourceStats& s : sources) n += s.steals;
  return n;
}

i64 BatchStats::total_iterations() const {
  i64 n = 0;
  for (const SourceStats& s : sources) n += s.iterations;
  return n;
}

BatchStats run_batch(std::span<const BatchSource> sources, std::size_t threads,
                     ThreadPool* pool) {
  const std::size_t ns = sources.size();
  BatchStats out;
  out.sources.resize(ns);
  if (ns == 0) return out;
  if (threads == 0)
    threads = pool ? pool->size()
                   : std::max(1u, std::thread::hardware_concurrency());

  // One leaf factory per source, built up front: the scan path compiles
  // its CompiledKernel against the source's store here, once, shared by
  // every worker context that later touches the source.
  std::vector<StreamExecutor::LeafFactory> factories;
  factories.reserve(ns);
  for (const BatchSource& src : sources) {
    VDEP_REQUIRE(src.executor != nullptr && src.store != nullptr,
                 "run_batch: source executor/store must be set");
    factories.push_back(src.executor->make_leaf_factory(
        *src.store, src.kernel, src.scan_prototype));
  }

  // Per (worker, source) counters: single writer each, aggregated after
  // the join, so no synchronization beyond the join itself.
  std::vector<WorkerStats> ws(threads * ns);
  auto stats_of = [&](int id, i64 s) -> WorkerStats& {
    return ws[static_cast<std::size_t>(id) * ns + static_cast<std::size_t>(s)];
  };

  std::vector<std::unique_ptr<WorkStealingDeque>> deques;
  deques.reserve(threads);
  for (std::size_t k = 0; k < threads; ++k)
    deques.push_back(std::make_unique<WorkStealingDeque>());

  // Live descriptors per source plus the count of unfinished sources; a
  // worker may retire only descriptors it holds, so `pending` hitting zero
  // is exactly "every descriptor of the source ran".
  std::vector<Pending> pending(ns);
  std::atomic<i64> live_sources{0};
  std::vector<i64> done_ns(ns, 0);

  // Seed every nonempty root round-robin before any worker starts (deque
  // pushes are owner-only, but pre-start seeding is single-threaded and
  // published by thread creation / the pool's queue mutex).
  std::size_t seeded = 0;
  for (std::size_t s = 0; s < ns; ++s) {
    TaskDescriptor rt = sources[s].executor->root();
    rt.source = static_cast<i64>(s);
    if (rt.empty()) continue;
    pending[s].count.store(1, std::memory_order_relaxed);
    live_sources.fetch_add(1, std::memory_order_relaxed);
    deques[seeded++ % threads]->push(rt);
  }
  if (seeded == 0) return out;

  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  i64 first_error_source = -1;
  std::mutex error_mutex;

  const i64 t0 = now_ns();
  const int n = static_cast<int>(threads);
  auto worker_main = [&](int id) {
    // Leaf runners of this worker context, one per source, built on the
    // first descriptor of that source this worker runs.
    std::vector<StreamExecutor::LeafFn> leaves(ns);

    auto process = [&](TaskDescriptor task) {
      const i64 s = task.source;
      const StreamExecutor& ex = *sources[static_cast<std::size_t>(s)].executor;
      WorkerStats& stats = stats_of(id, s);
      i64 t_start = now_ns();
      try {
        while (can_split(task, ex.grain())) {
          int axis = 0;
          TaskDescriptor high = split(task, ex.grain(), &axis);
          pending[static_cast<std::size_t>(s)].count.fetch_add(
              1, std::memory_order_relaxed);
          deques[static_cast<std::size_t>(id)]->push(high);
          ++stats.splits;
          ++stats.axis_splits[axis];
        }
        StreamExecutor::LeafFn& leaf = leaves[static_cast<std::size_t>(s)];
        if (!leaf) leaf = factories[static_cast<std::size_t>(s)](id, stats);
        leaf(task);
        ++stats.tasks;
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
          first_error_source = s;
        }
        abort.store(true, std::memory_order_release);
      }
      if (pending[static_cast<std::size_t>(s)].count.fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        // Unique last-retirer of the source: stamp its completion.
        done_ns[static_cast<std::size_t>(s)] = now_ns() - t0;
        live_sources.fetch_sub(1, std::memory_order_acq_rel);
      }
      stats.busy_ns += now_ns() - t_start;
    };

    int idle_sweeps = 0;
    for (;;) {
      if (abort.load(std::memory_order_acquire)) return;
      TaskDescriptor task;
      if (deques[static_cast<std::size_t>(id)]->pop(task)) {
        process(task);
        idle_sweeps = 0;
        continue;
      }
      if (live_sources.load(std::memory_order_acquire) == 0) return;
      bool stolen = false;
      for (int k = 1; k < n && !stolen; ++k) {
        std::size_t victim = static_cast<std::size_t>((id + k) % n);
        if (deques[victim]->steal(task)) {
          ++stats_of(id, task.source).steals;
          stolen = true;
        }
      }
      if (stolen) {
        process(task);
        idle_sweeps = 0;
      } else if (++idle_sweeps < 16) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::min(50 * (idle_sweeps - 15), 1000)));
      }
    }
  };

  if (pool) {
    pool->parallel_for(static_cast<i64>(threads),
                       [&](i64 id) { worker_main(static_cast<int>(id)); });
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads - 1);
    for (int k = 1; k < n; ++k) workers.emplace_back(worker_main, k);
    worker_main(0);  // the calling thread is worker 0
    for (std::thread& t : workers) t.join();
  }
  out.wall_ns = now_ns() - t0;

  for (std::size_t s = 0; s < ns; ++s) {
    SourceStats& agg = out.sources[s];
    for (std::size_t id = 0; id < threads; ++id) {
      const WorkerStats& w = ws[id * ns + s];
      agg.iterations += w.iterations;
      agg.tasks += w.tasks;
      agg.splits += w.splits;
      for (int axis = 1; axis < TaskDescriptor::kMaxDims; ++axis)
        agg.inner_splits += w.axis_splits[axis];
      agg.steals += w.steals;
    }
    agg.done_ns = done_ns[s];
  }
  out.error = first_error;
  out.error_source = first_error_source;
  return out;
}

}  // namespace vdep::runtime
