// Work descriptors of the streaming runtime.
//
// The materialized path (exec::build_schedule) stores every iteration vector
// of every work item. Here a work item is a *descriptor* of what to run, not
// the iterations themselves: a rectangle
//
//     [outer_lo, outer_hi]  x  [class_lo, class_hi)
//
// over the outermost DOALL index of the transformed nest and the partition
// class ids of Theorem 2. Each (outer value, inner DOALL prefix, class)
// triple is an independent sequential unit (Lemma 1 x Theorem 2), so any
// disjoint cover of the rectangle is a legal task decomposition. The
// iterations of a unit are never stored: the executor regenerates them from
// the Partitioning scan recurrence (loop (3.2)) on the fly, which makes the
// schedule memory O(active descriptors) instead of O(total iterations).
//
// Splitting prefers the outermost free (DOALL) dimension — halving
// [outer_lo, outer_hi] — and falls back to halving the class range when a
// single outer value still spans several classes. Descriptors below the
// grain execute as leaves.
#pragma once

#include <string>

#include "support/checked.h"

namespace vdep::runtime {

using i64 = checked::i64;

struct TaskDescriptor {
  /// Inclusive range of the outermost transformed DOALL index. When the
  /// plan has no DOALL loop the range is the degenerate [0, 0] and is
  /// never split.
  i64 outer_lo = 0;
  i64 outer_hi = 0;
  /// Half-open range of partition class ids ([0, 1) when unpartitioned).
  i64 class_lo = 0;
  i64 class_hi = 1;
  /// Which batch request the rectangle belongs to (batch_executor.h).
  /// Single-source runs leave it 0; split() halves carry it unchanged, so
  /// a stolen descriptor always knows its plan, store and kernel.
  i64 source = 0;

  i64 outer_extent() const { return outer_hi - outer_lo + 1; }
  i64 class_extent() const { return class_hi - class_lo; }
  /// Number of (outer value x class) cells covered.
  i64 cells() const { return checked::mul(outer_extent(), class_extent()); }

  std::string to_string() const;
};

/// Splitting policy: a descriptor may split when its outer range is longer
/// than `grain` values, or — once per-value — when it still covers more
/// than one class. `has_outer` is false for plans without DOALL loops
/// (the degenerate outer range must not be halved).
bool can_split(const TaskDescriptor& t, i64 grain, bool has_outer);

/// Divides `t` in two along the preferred dimension (outer first, classes
/// second). `t` keeps the low half; the returned descriptor is the high
/// half. Requires can_split(t, grain, has_outer).
TaskDescriptor split(TaskDescriptor& t, i64 grain, bool has_outer);

/// Grain heuristic: aim for ~`tasks_per_worker` leaf descriptors per worker
/// along the outer dimension, never below 1.
i64 pick_grain(i64 outer_extent, std::size_t workers, i64 tasks_per_worker);

}  // namespace vdep::runtime
