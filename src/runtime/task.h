// Work descriptors of the streaming runtime.
//
// The materialized path (exec::build_schedule) stores every iteration vector
// of every work item. Here a work item is a *descriptor* of what to run, not
// the iterations themselves: an N-dimensional iteration box
//
//     [lo_0, hi_0] x ... x [lo_{d-1}, hi_{d-1}]  x  [class_lo, class_hi)
//
// over the transformed DOALL-prefix indices of the nest and the partition
// class ids of Theorem 2. Each (DOALL prefix value, class) cell is an
// independent sequential unit (Lemma 1 x Theorem 2), so any disjoint cover
// of the box is a legal task decomposition. The iterations of a unit are
// never stored: the executor regenerates them from the Partitioning scan
// recurrence (loop (3.2)) on the fly, which makes the schedule memory
// O(active descriptors) instead of O(total iterations).
//
// Splitting halves the *longest* splittable axis (outermost-first on ties,
// the class range treated as the last axis) until a descriptor covers at
// most `grain` cells. Boxing every DOALL dimension — not only the outermost
// — is what parallelizes skewed-extent nests whose outer extent is tiny but
// whose inner DOALL extents are large.
#pragma once

#include <optional>
#include <string>

#include "support/checked.h"

namespace vdep::runtime {

using i64 = checked::i64;

struct TaskDescriptor {
  /// Cap on boxed DOALL-prefix dimensions. Plans with more DOALL loops box
  /// the outermost kMaxDims and scan the rest in full inside each leaf —
  /// correctness never depends on the cap, only split granularity does.
  static constexpr int kMaxDims = 8;
  /// Axis id reported for class-range splits (DOALL axes are 0..ndims-1).
  static constexpr int kClassAxis = kMaxDims;

  /// Number of boxed DOALL-prefix dimensions (0 when the plan has none).
  int ndims = 0;
  /// Inclusive per-dimension ranges; slots >= ndims stay zero.
  i64 lo[kMaxDims] = {};
  i64 hi[kMaxDims] = {};
  /// Half-open range of partition class ids ([0, 1) when unpartitioned).
  i64 class_lo = 0;
  i64 class_hi = 1;
  /// Which batch request the box belongs to (batch_executor.h). Single-
  /// source runs leave it 0; split() halves carry it unchanged, so a
  /// stolen descriptor always knows its plan, store and kernel.
  i64 source = 0;

  i64 extent(int d) const { return hi[d] - lo[d] + 1; }
  i64 class_extent() const { return class_hi - class_lo; }
  /// True when some axis covers no values at all.
  bool empty() const;
  /// Number of (DOALL prefix value x class) cells covered, saturating at
  /// INT64_MAX (a box that large is split long before the count matters).
  i64 cells() const;

  bool operator==(const TaskDescriptor& o) const = default;

  std::string to_string() const;
  /// Parses the to_string rendering back; nullopt on malformed input.
  static std::optional<TaskDescriptor> from_string(const std::string& s);
};

/// Locality weights steering which axis splits first. stride[d] is the
/// total absolute address movement (in elements, summed over the plan's
/// affine accesses) caused by one step along boxed axis d — large-stride
/// axes separate leaves' memory footprints, small-stride axes cut through
/// contiguous runs. Computed once per plan by StreamExecutor from the
/// arrays' row-major strides and the transform inverse.
struct SplitPrefs {
  i64 stride[TaskDescriptor::kMaxDims] = {};

  /// False when every weight is zero — the default longest-axis policy
  /// applies unchanged.
  bool any() const {
    for (i64 s : stride)
      if (s != 0) return true;
    return false;
  }
};

/// The axis split() would divide. Default policy (null/empty `prefs`): the
/// longest axis with extent > 1, ties going to the outermost dimension and
/// the class range (id kClassAxis) treated as the innermost axis. With
/// locality prefs, the splittable DOALL axis with the largest address
/// stride wins instead (ties by extent, then outermost) — splitting the
/// max-stride axis keeps each leaf's touched rows contiguous — and the
/// class range becomes the last resort. -1 when the descriptor is a leaf:
/// at most max(grain, 1) cells, or every axis degenerate. The *splittable*
/// set never depends on prefs, only the choice among splittable axes does.
int pick_split_axis(const TaskDescriptor& t, i64 grain,
                    const SplitPrefs* prefs = nullptr);

/// Whether split() may divide `t`: more than max(grain, 1) cells and some
/// axis longer than 1. Degenerate axes are never split. Independent of any
/// SplitPrefs by construction.
bool can_split(const TaskDescriptor& t, i64 grain);

/// Divides `t` in two along pick_split_axis. `t` keeps the low half; the
/// returned descriptor is the high half. Requires can_split(t, grain).
/// `axis_out`, when non-null, receives the chosen axis id (per-axis split
/// counters in stats.h).
TaskDescriptor split(TaskDescriptor& t, i64 grain, int* axis_out = nullptr,
                     const SplitPrefs* prefs = nullptr);

/// Grain heuristic: aim for ~`tasks_per_worker` leaf descriptors per worker
/// by total cells, never below 1.
i64 pick_grain(i64 total_cells, std::size_t workers, i64 tasks_per_worker);

}  // namespace vdep::runtime
