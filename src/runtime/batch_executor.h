// Multi-source streaming execution: many requests, one worker set.
//
// A serving workload compiles one structure and executes it at thousands of
// bounds. Running those requests loop-at-a-time through StreamExecutor::run
// pays a full fork/join per request — worker wakeup, deque setup, the join
// barrier — and a small request cannot feed every worker on its own (a
// 2-class plan with a short outer range splits into a handful of leaves).
// run_batch instead seeds the root descriptor of *every* request into one
// shared set of Chase-Lev deques, tagged with its source index
// (TaskDescriptor::source): descriptors from different requests interleave
// in the deques and migrate between workers by the normal stealing rules,
// so the batch's total parallelism — not any single request's — is what
// keeps the workers busy, and the fork/join cost is paid once per batch.
//
// Legality is per source: two descriptors of one source are disjoint
// iteration boxes of that source's space (Lemma 1 x Theorem 2), and
// descriptors of different sources touch different stores entirely, so any
// interleaving is safe.
//
// Completion is tracked per source (a request is done when its last
// descriptor retires), which is what the API layer turns into per-request
// ExecReports.
#pragma once

#include <exception>
#include <span>

#include "runtime/stream_executor.h"

namespace vdep::runtime {

/// One request of a batch run: a prepared executor (plan + bounds) bound to
/// the request's store, optionally with a native kernel for its leaves.
/// Sources of a same-(structure, bounds) group may share one executor and
/// one scan prototype (the API layer dedups them). All pointers must
/// outlive the run_batch call.
struct BatchSource {
  const StreamExecutor* executor = nullptr;
  exec::ArrayStore* store = nullptr;
  /// Non-null: leaves run through this kernel (jit::NativeKernel); null:
  /// the executor's scan path (CompiledKernel / interpreter).
  const exec::RangeKernel* kernel = nullptr;
  /// Non-null: the scan path rebinds this prebuilt kernel onto `store`
  /// instead of compiling one (StreamExecutor::make_leaf_factory).
  const exec::CompiledKernel* scan_prototype = nullptr;
};

/// Per-request completion counters of a batch run.
struct SourceStats {
  i64 iterations = 0;
  i64 tasks = 0;   ///< leaf descriptors executed
  i64 splits = 0;
  i64 inner_splits = 0;  ///< splits along inner DOALL axes (task.h)
  i64 steals = 0;  ///< stolen descriptors of this source
  i64 done_ns = 0; ///< batch start -> this source's last descriptor retired
  /// Queue latency: batch start -> first descriptor of this source starts
  /// executing (how long the request waited behind the rest of the batch).
  i64 queue_ns = 0;
};

/// Aggregate outcome of a batch run.
struct BatchStats {
  std::vector<SourceStats> sources;
  i64 wall_ns = 0;  ///< makespan of the whole batch
  /// First failure (a leaf threw): every worker stops, remaining
  /// descriptors are dropped, and the error plus its source index surface
  /// here instead of by rethrow so the caller can attach the request index.
  std::exception_ptr error;
  i64 error_source = -1;

  i64 total_steals() const;
  i64 total_iterations() const;
};

/// Runs every source's full descriptor rectangle over one shared worker
/// set of `threads` contexts (0 = hardware concurrency). Root descriptors
/// are seeded round-robin across the deques before any worker starts; each
/// source splits by its own executor's grain and locality prefs. Workers
/// pin to topology-assigned cpus (disable with `pin_workers` false or
/// VDEP_PIN=0) and steal distance-ordered, nearest ring first. With `pool`
/// the workers are the pool's threads plus the caller, otherwise threads
/// are spawned for this batch.
BatchStats run_batch(std::span<const BatchSource> sources, std::size_t threads,
                     ThreadPool* pool, bool pin_workers = true);

}  // namespace vdep::runtime
