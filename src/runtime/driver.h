// The work-stealing descriptor driver, extracted from StreamExecutor so
// every executor that speaks TaskDescriptor — the streaming plan executor,
// the batch scheduler's cousins, and the inspector executor — shares one
// battle-tested loop: Chase-Lev deques, workers pinned to topology-assigned
// cpus, depth-first splitting along the longest (or locality-preferred)
// axis, distance-ordered steal sweeps with idle backoff, first-error abort,
// and the tracing/metrics gates.
//
// The driver owns *scheduling* only. What a leaf descriptor means (a boxed
// DOALL prefix x class range to scan, a native-kernel range call, a run of
// inspector classes) is the caller's business, encoded in the LeafFactory.
#pragma once

#include <functional>

#include "runtime/stats.h"
#include "runtime/task.h"
#include "support/thread_pool.h"

namespace vdep::runtime {

/// Runs one leaf descriptor. Created per worker context by a factory so
/// scan state (or kernel bindings) stay thread-private.
using LeafFn = std::function<void(const TaskDescriptor&)>;
/// Builds the LeafFn of one worker context; `stats` is that context's
/// private counter block (iterations are counted by the leaf itself).
using LeafFactory = std::function<LeafFn(int, WorkerStats&)>;

struct DriveOptions {
  /// Worker contexts (the caller is context 0 when no pool is given).
  std::size_t threads = 1;
  /// Descriptor grain in cells: descriptors with more cells keep splitting.
  i64 grain = 1;
  /// Allow this run to emit trace events when the global obs::TraceRecorder
  /// is enabled (leaf spans, split/steal/idle events).
  bool trace = true;
  /// Same gate for the global obs::MetricsRegistry.
  bool metrics = true;
  /// Pin each worker to the cpu topo::Topology::system().assign_workers
  /// hands it for the duration of the run (previous affinity restored at
  /// exit). Also honors the VDEP_PIN=0 environment opt-out; no-op on hosts
  /// without sched_setaffinity.
  bool pin_workers = true;
  /// Locality weights for the split-axis choice (task.h). All-zero (the
  /// default) keeps the longest-axis policy.
  SplitPrefs prefs;
};

/// Splits `root` recursively down to `opts.grain` cells across
/// `opts.threads` work-stealing workers and runs every leaf through the
/// factory's LeafFns. The root is pre-split into ~threads position-ordered
/// pieces seeded one per deque, so pinned worker k starts on the k-th
/// slice of the iteration space (the same slice a first-touch store placed
/// on k's node); idle workers then steal nearest-first. With `pool` null,
/// spawns threads - 1 helpers and uses the calling thread as worker 0;
/// otherwise the pool's threads (plus the caller) claim the worker
/// contexts. The first leaf exception aborts the run and is rethrown after
/// all workers stop.
RuntimeStats drive_descriptors(const TaskDescriptor& root,
                               const DriveOptions& opts,
                               const LeafFactory& leaf_factory,
                               ThreadPool* pool = nullptr);

namespace detail {
/// Whether a run should really pin: opted in, more than one worker, the
/// host supports sched_setaffinity, and VDEP_PIN=0 is not set. Shared with
/// the batch scheduler so both runs make the same call.
bool effective_pin(bool opt_in, std::size_t threads);
}  // namespace detail

}  // namespace vdep::runtime
