// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05), memory orderings
// after Lê, Pop, Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing
// for Weak Memory Models" (PPoPP'13).
//
// One deque per worker. The owner pushes and pops descriptors at the bottom
// with plain loads on the fast path; idle workers steal from the top, so the
// oldest — and after recursive splitting, largest — descriptor migrates
// first. The only contended operation is a single compare-exchange on `top`
// when owner and thief race for the last element.
//
// Slots hold pointers (one lock-free atomic word each); descriptor contents
// are published by the release fence in push() and consumed after the
// acquire reads in steal(), so the structure is clean under
// -fsanitize=thread. Ring buffers grow geometrically and are retired, not
// freed, until the deque dies: a thief may still be reading an old buffer.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "runtime/task.h"

namespace vdep::runtime {

class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(i64 initial_capacity = 64);
  ~WorkStealingDeque();

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only: enqueue at the bottom.
  void push(const TaskDescriptor& task);
  /// Owner only: dequeue at the bottom (LIFO — depth-first splitting).
  bool pop(TaskDescriptor& out);
  /// Any other thread: dequeue at the top (FIFO — biggest task first).
  bool steal(TaskDescriptor& out);

  /// Approximate size (racy; diagnostics only).
  i64 size_estimate() const;

 private:
  struct Buffer {
    explicit Buffer(i64 cap);
    i64 capacity;
    i64 mask;
    std::unique_ptr<std::atomic<TaskDescriptor*>[]> slots;

    TaskDescriptor* get(i64 i) const {
      return slots[i & mask].load(std::memory_order_relaxed);
    }
    void put(i64 i, TaskDescriptor* p) {
      slots[i & mask].store(p, std::memory_order_relaxed);
    }
  };

  /// Owner only: doubles the ring, copying live entries [top, bottom).
  Buffer* grow(Buffer* old, i64 bottom, i64 top);

  std::atomic<i64> top_{0};
  std::atomic<i64> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  /// Every buffer ever allocated (owner-only mutation); keeps retired rings
  /// alive for late-reading thieves and frees everything on destruction.
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace vdep::runtime
