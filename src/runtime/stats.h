// Execution counters of the streaming runtime.
//
// Every worker owns one WorkerStats and mutates it without synchronization;
// the executor aggregates after joining, so readers only ever see quiescent
// values. The aggregate view (RuntimeStats) is what benches and the
// parallelizer report.
#pragma once

#include <string>
#include <vector>

#include "support/checked.h"

namespace vdep::runtime {

using i64 = checked::i64;

/// Private counters of one worker thread (no atomics: single writer, read
/// only after the worker joined). Padded to a cache line so adjacent
/// workers' counters never share one.
struct alignas(64) WorkerStats {
  i64 tasks = 0;       ///< leaf descriptors executed to completion
  i64 splits = 0;      ///< descriptors divided and re-enqueued
  i64 steals = 0;      ///< successful steals from another worker's deque
  i64 iterations = 0;  ///< loop-body iterations executed
  i64 busy_ns = 0;     ///< wall time spent inside descriptor execution
};

/// Aggregated run outcome.
struct RuntimeStats {
  std::vector<WorkerStats> workers;
  i64 wall_ns = 0;  ///< makespan of the whole run (seed to last join)

  i64 total_tasks() const;
  i64 total_splits() const;
  i64 total_steals() const;
  i64 total_iterations() const;
  /// Max over workers of busy_ns — the critical-path estimate.
  i64 max_busy_ns() const;

  /// Multi-line human-readable table (one row per worker + totals).
  std::string to_string() const;
};

}  // namespace vdep::runtime
