// Execution counters of the streaming runtime.
//
// Every worker owns one WorkerStats and mutates it without synchronization;
// the executor aggregates after joining, so readers only ever see quiescent
// values. The aggregate view (RuntimeStats) is what benches and the
// parallelizer report.
#pragma once

#include <string>
#include <vector>

#include "runtime/task.h"
#include "support/checked.h"

namespace vdep::runtime {

using i64 = checked::i64;

/// Steal-distance classes mirrored from topo::Topology (kSameCpu,
/// kSmtSibling, kSameNode, kRemoteNode) — duplicated here so the counter
/// block stays free of topology headers.
inline constexpr int kStealDistances = 4;

/// Private counters of one worker thread (no atomics: single writer, read
/// only after the worker joined). Padded to a cache line so adjacent
/// workers' counters never share one.
struct alignas(64) WorkerStats {
  i64 tasks = 0;       ///< leaf descriptors executed to completion
  i64 splits = 0;      ///< descriptors divided and re-enqueued
  i64 steals = 0;      ///< successful steals from another worker's deque
  i64 iterations = 0;  ///< loop-body iterations executed
  i64 busy_ns = 0;     ///< wall time spent inside descriptor execution
  i64 idle_ns = 0;     ///< wall time spent with no runnable descriptor
  /// Full steal sweeps (every other deque probed) that came back empty.
  i64 failed_steals = 0;
  /// Splits by chosen axis: slots 0..kMaxDims-1 are the boxed DOALL-prefix
  /// dimensions (outermost first), slot kClassAxis the class range. Their
  /// sum equals `splits`.
  i64 axis_splits[TaskDescriptor::kMaxDims + 1] = {};
  /// Successful steals by victim distance under the run's worker->cpu
  /// assignment: same cpu (oversubscribed co-residents), SMT sibling, same
  /// NUMA node, remote node. Their sum equals `steals`.
  i64 steals_by_distance[kStealDistances] = {};
};

/// Aggregated run outcome.
struct RuntimeStats {
  std::vector<WorkerStats> workers;
  i64 wall_ns = 0;  ///< makespan of the whole run (seed to last join)

  i64 total_tasks() const;
  i64 total_splits() const;
  i64 total_steals() const;
  /// Steals at one victim distance (0 = same cpu .. 3 = remote node).
  i64 total_steals_by_distance(int d) const;
  i64 total_iterations() const;
  /// Splits along one axis (0..kMaxDims-1 or TaskDescriptor::kClassAxis).
  i64 total_axis_splits(int axis) const;
  /// Splits along inner DOALL axes (axis >= 1, class axis excluded) — the
  /// splits the legacy outer-only policy could never perform.
  i64 total_inner_splits() const;
  /// Max over workers of busy_ns — the critical-path estimate.
  i64 max_busy_ns() const;
  i64 total_idle_ns() const;
  i64 total_failed_steals() const;

  /// Multi-line human-readable table (one row per worker + totals).
  std::string to_string() const;
};

/// Publishes one run's aggregated per-worker counters into the global
/// obs::MetricsRegistry (vdep_worker_busy_ns, vdep_worker_idle_ns,
/// vdep_tasks_total, ...). No-op when the registry is disabled.
void publish_run_metrics(const std::vector<WorkerStats>& workers);

}  // namespace vdep::runtime
