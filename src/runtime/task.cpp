#include "runtime/task.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>

#include "support/error.h"

namespace vdep::runtime {

bool TaskDescriptor::empty() const {
  if (class_extent() <= 0) return true;
  for (int d = 0; d < ndims; ++d)
    if (extent(d) <= 0) return true;
  return false;
}

i64 TaskDescriptor::cells() const {
  if (empty()) return 0;
  i64 c = class_extent();
  for (int d = 0; d < ndims; ++d)
    if (__builtin_mul_overflow(c, extent(d), &c))
      return std::numeric_limits<i64>::max();
  return c;
}

std::string TaskDescriptor::to_string() const {
  std::ostringstream os;
  os << "task{box";
  for (int d = 0; d < ndims; ++d)
    os << (d ? " x [" : " [") << lo[d] << ", " << hi[d] << "]";
  if (ndims == 0) os << " -";
  os << ", classes [" << class_lo << ", " << class_hi << ")";
  if (source != 0) os << ", source " << source;
  os << "}";
  return os.str();
}

std::optional<TaskDescriptor> TaskDescriptor::from_string(
    const std::string& s) {
  // Mirror of to_string: "task{box [l, h] x [l, h], classes [l, h)}" with
  // "box -" for dimension-free descriptors and an optional ", source n".
  TaskDescriptor t;
  std::istringstream is(s);
  auto expect = [&](const std::string& word) {
    std::string got;
    is >> got;
    return got == word;
  };
  auto read_i64 = [&](i64& out, char terminator) {
    if (!(is >> out)) return false;
    char c = 0;
    return is.get(c) && c == terminator;
  };
  if (!expect("task{box")) return std::nullopt;
  for (;;) {
    is >> std::ws;
    if (is.peek() == '-') {
      is.get();
      break;
    }
    if (is.peek() != '[') break;
    if (t.ndims == kMaxDims) return std::nullopt;
    is.get();
    if (!read_i64(t.lo[t.ndims], ',')) return std::nullopt;
    if (!read_i64(t.hi[t.ndims], ']')) return std::nullopt;
    ++t.ndims;
    is >> std::ws;
    if (is.peek() == 'x') is.get();
  }
  is >> std::ws;
  if (is.get() != ',' || !expect("classes")) return std::nullopt;
  is >> std::ws;
  if (is.get() != '[') return std::nullopt;
  if (!read_i64(t.class_lo, ',')) return std::nullopt;
  if (!read_i64(t.class_hi, ')')) return std::nullopt;
  is >> std::ws;
  if (is.peek() == ',') {
    is.get();
    if (!expect("source") || !(is >> t.source)) return std::nullopt;
    is >> std::ws;
  }
  return is.get() == '}' ? std::optional<TaskDescriptor>(t) : std::nullopt;
}

int pick_split_axis(const TaskDescriptor& t, i64 grain,
                    const SplitPrefs* prefs) {
  if (t.cells() <= std::max<i64>(grain, 1)) return -1;
  if (prefs != nullptr && prefs->any()) {
    // Locality policy: among non-degenerate DOALL axes, the largest
    // address stride wins (cutting there separates the halves' memory
    // footprints instead of fragmenting contiguous runs); extent breaks
    // stride ties, outermost breaks extent ties. The class range — whose
    // memory footprint the stride model does not cover — only splits when
    // no DOALL axis can.
    int best = -1;
    i64 best_stride = -1;
    i64 best_extent = 1;
    for (int d = 0; d < t.ndims; ++d) {
      if (t.extent(d) <= 1) continue;
      if (prefs->stride[d] > best_stride ||
          (prefs->stride[d] == best_stride && t.extent(d) > best_extent)) {
        best = d;
        best_stride = prefs->stride[d];
        best_extent = t.extent(d);
      }
    }
    if (best >= 0) return best;
    return t.class_extent() > 1 ? TaskDescriptor::kClassAxis : -1;
  }
  // Longest axis wins; strict comparisons keep ties on the outermost
  // dimension and make the class range the last resort.
  int best = -1;
  i64 best_extent = 1;
  for (int d = 0; d < t.ndims; ++d) {
    if (t.extent(d) > best_extent) {
      best = d;
      best_extent = t.extent(d);
    }
  }
  if (t.class_extent() > best_extent) best = TaskDescriptor::kClassAxis;
  return best;
}

bool can_split(const TaskDescriptor& t, i64 grain) {
  return pick_split_axis(t, grain) >= 0;
}

TaskDescriptor split(TaskDescriptor& t, i64 grain, int* axis_out,
                     const SplitPrefs* prefs) {
  int axis = pick_split_axis(t, grain, prefs);
  VDEP_CHECK(axis >= 0, "descriptor is not splittable");
  if (axis_out) *axis_out = axis;
  TaskDescriptor high = t;
  if (axis == TaskDescriptor::kClassAxis) {
    i64 mid = t.class_lo + t.class_extent() / 2;
    t.class_hi = mid;
    high.class_lo = mid;
  } else {
    i64 mid = t.lo[axis] + t.extent(axis) / 2;  // low half gets [lo, mid)
    t.hi[axis] = mid - 1;
    high.lo[axis] = mid;
  }
  return high;
}

i64 pick_grain(i64 total_cells, std::size_t workers, i64 tasks_per_worker) {
  i64 target = std::max<i64>(1, static_cast<i64>(workers) * tasks_per_worker);
  return std::max<i64>(1, total_cells / target);
}

}  // namespace vdep::runtime
