#include "runtime/task.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace vdep::runtime {

std::string TaskDescriptor::to_string() const {
  std::ostringstream os;
  os << "task{outer [" << outer_lo << ", " << outer_hi << "], classes ["
     << class_lo << ", " << class_hi << ")}";
  return os.str();
}

bool can_split(const TaskDescriptor& t, i64 grain, bool has_outer) {
  if (has_outer && t.outer_extent() > std::max<i64>(grain, 1)) return true;
  return t.class_extent() > 1;
}

TaskDescriptor split(TaskDescriptor& t, i64 grain, bool has_outer) {
  VDEP_CHECK(can_split(t, grain, has_outer), "descriptor is not splittable");
  TaskDescriptor high = t;
  if (has_outer && t.outer_extent() > std::max<i64>(grain, 1)) {
    i64 mid = t.outer_lo + (t.outer_extent() / 2);  // low half gets [lo, mid)
    t.outer_hi = mid - 1;
    high.outer_lo = mid;
  } else {
    i64 mid = t.class_lo + (t.class_extent() / 2);
    t.class_hi = mid;
    high.class_lo = mid;
  }
  return high;
}

i64 pick_grain(i64 outer_extent, std::size_t workers, i64 tasks_per_worker) {
  i64 target = std::max<i64>(1, static_cast<i64>(workers) * tasks_per_worker);
  return std::max<i64>(1, outer_extent / target);
}

}  // namespace vdep::runtime
