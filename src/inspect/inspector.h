// Runtime inspector: dependence components of a bounded iteration space,
// computed from the *actual* cells each iteration touches — including
// indirect subscripts (A[B[i]]) resolved against the index arrays in an
// ArrayStore.
//
// This is the inspector half of the classic inspector–executor pattern
// (Kale et al., arXiv:1311.2927): where the paper's static pipeline proves
// a residue-class partition from the PDM (Theorem 2), the inspector derives
// one at runtime from the weakly-connected components of the iteration-
// space dependence graph. Two iterations land in the same component exactly
// when a chain of touched-a-written-cell relations links them, so distinct
// components share no written cell and can run concurrently; within a
// component, original lexicographic order preserves every dependence.
//
// The builder is element-indexed and near-linear: one pass collects the set
// of written cells, a second unions every toucher of a written cell with
// that cell's first toucher (a hash map from cell id to representative).
// Cost is O(accesses x alpha) with one hash probe per access — not the
// O(n^2) all-pairs walk of the brute-force exec::build_isdg, which remains
// the ground truth the inspector is tested against.
#pragma once

#include "exec/array_store.h"

namespace vdep::inspect {

using intlin::i64;
using intlin::Vec;

/// Statistics of one inspection, surfaced through api::ExecReport and the
/// obs metrics/trace layers.
struct InspectStats {
  i64 iterations = 0;            ///< nodes of the inspected space
  i64 classes = 0;               ///< partition classes (= all components)
  i64 chains = 0;                ///< components with >= 2 iterations
  i64 max_component = 0;         ///< size of the largest component
  i64 dependent_iterations = 0;  ///< iterations in some >= 2 component
  i64 written_cells = 0;         ///< distinct cells written by the space
  i64 inspect_ns = 0;            ///< wall time spent inspecting
};

/// The inspector's product: every iteration of the bounded space, grouped
/// into dependence components ("classes"). Classes are numbered by the
/// lexicographic rank of their first iteration; members of a class are
/// stored in lexicographic order, so executing a class front-to-back
/// replays the sequential order restricted to that class.
class DynamicPartition {
 public:
  int depth() const { return depth_; }
  i64 size() const { return static_cast<i64>(class_of_.size()); }
  i64 num_classes() const { return static_cast<i64>(offsets_.size()) - 1; }
  const InspectStats& stats() const { return stats_; }

  i64 class_size(i64 c) const { return offset(c + 1) - offset(c); }
  /// Class id of iteration rank `it` (lexicographic enumeration order).
  i64 class_of(i64 it) const { return class_of_[static_cast<std::size_t>(it)]; }
  /// Coordinates of iteration rank `it`, written into `out`.
  void coords_of(i64 it, Vec& out) const;

  /// Visits every iteration of class `c` in lexicographic order; `iter` is
  /// a scratch vector reused across calls (resized to depth()).
  template <typename Fn>
  void for_each_class_iteration(i64 c, Vec& iter, Fn&& fn) const {
    for (i64 m = offset(c); m < offset(c + 1); ++m) {
      coords_of(members_[static_cast<std::size_t>(m)], iter);
      fn(static_cast<const Vec&>(iter));
    }
  }

 private:
  friend DynamicPartition inspect(const loopir::LoopNest& nest,
                                  const exec::ArrayStore& store);

  i64 offset(i64 c) const { return offsets_[static_cast<std::size_t>(c)]; }

  int depth_ = 0;
  std::vector<i64> coords_;    ///< flattened iteration coords, size N*depth
  std::vector<i64> class_of_;  ///< iteration rank -> class id
  std::vector<i64> members_;   ///< iteration ranks grouped by class
  std::vector<i64> offsets_;   ///< CSR offsets into members_, size K+1
  InspectStats stats_;
};

/// Inspects `nest` at its current bounds against `store` (which must hold
/// the index arrays for any indirect subscript; index arrays are read-only
/// by LoopNest::validate, so the partition stays valid while the executor
/// mutates data arrays). Throws PreconditionError when a subscript leaves
/// its declared range — the same condition sequential execution would trip
/// on, detected before any write happens.
DynamicPartition inspect(const loopir::LoopNest& nest,
                         const exec::ArrayStore& store);

}  // namespace vdep::inspect
