// The executor half of the inspector–executor pair: runs the classes of a
// DynamicPartition through the shared work-stealing descriptor driver
// (runtime/driver.h).
//
// The root descriptor is a pure class range [0, num_classes) — no boxed
// DOALL dimensions, because the inspector already flattened the space into
// components. Workers split the class range down to the grain and each
// leaf replays its classes' iterations in lexicographic order, which is
// legal because distinct components share no written cell (any ordering of
// classes gives a bit-identical store) and within a component every
// dependence points lexicographically forward.
#pragma once

#include "inspect/inspector.h"
#include "runtime/driver.h"

namespace vdep::inspect {

struct InspectorExecOptions {
  /// Worker count; 0 means hardware concurrency.
  std::size_t num_threads = 0;
  /// Classes per leaf descriptor; 0 picks ~tasks_per_worker leaves per
  /// worker (runtime/task.h pick_grain).
  i64 grain = 0;
  i64 tasks_per_worker = 8;
  /// Skip the compiled-kernel body even for affine nests (tests).
  bool force_interpreter = false;
  /// Observability gates, same semantics as runtime::StreamOptions.
  bool trace = true;
  bool metrics = true;
  /// Pin workers to topology-assigned cpus (runtime::StreamOptions).
  bool pin_workers = true;
};

class InspectorExecutor {
 public:
  /// `partition` must come from inspect() on `nest` at the same bounds and
  /// the same index-array contents, and must outlive the executor.
  InspectorExecutor(const loopir::LoopNest& nest,
                    const DynamicPartition& partition,
                    InspectorExecOptions opts = {});

  /// Runs every class over `store`. Affine nests execute through a shared
  /// exec::CompiledKernel (per-worker scratch); indirect nests — or any
  /// nest the kernel's range proof rejects — through the exact interpreter.
  runtime::RuntimeStats run(exec::ArrayStore& store) const;
  runtime::RuntimeStats run(exec::ArrayStore& store, ThreadPool& pool) const;

  /// The root descriptor: the full class range, no boxed dims.
  runtime::TaskDescriptor root() const;
  i64 grain() const { return grain_; }
  std::size_t num_threads() const { return threads_; }

 private:
  runtime::RuntimeStats run_impl(exec::ArrayStore& store,
                                 ThreadPool* pool) const;

  loopir::LoopNest nest_;
  const DynamicPartition* part_;
  InspectorExecOptions opts_;
  std::size_t threads_ = 1;
  i64 grain_ = 1;
};

}  // namespace vdep::inspect
