#include "inspect/inspector.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "support/error.h"

namespace vdep::inspect {

namespace {

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One body access, flattened for the per-iteration hot loop: global cell
/// ids are base + row-major offset, with indirect slots resolved through a
/// pointer at the index array's raw buffer (no string lookups, no Vec
/// allocation per access).
struct FlatAccess {
  bool write = false;
  const loopir::ArrayDecl* decl = nullptr;
  std::uint64_t base = 0;

  struct Sub {
    const loopir::AffineExpr* aff = nullptr;  ///< affine slot
    const loopir::AffineExpr* pos = nullptr;  ///< indirect: index position
    const exec::ArrayStore::Buffer* idx = nullptr;  ///< indirect: index buffer
    i64 idx_lo = 0;                           ///< indirect: declared lo
  };
  std::vector<Sub> subs;
};

std::uint64_t cell_id(const FlatAccess& a, const Vec& iter) {
  i64 off = 0;
  for (std::size_t d = 0; d < a.subs.size(); ++d) {
    const FlatAccess::Sub& s = a.subs[d];
    i64 v;
    if (s.idx) {
      i64 p = s.pos->eval(iter);
      i64 slot = p - s.idx_lo;
      VDEP_REQUIRE(slot >= 0 && slot < static_cast<i64>(s.idx->size()),
                   "index-array position out of declared range");
      v = (*s.idx)[static_cast<std::size_t>(slot)];
    } else {
      v = s.aff->eval(iter);
    }
    auto [lo, hi] = a.decl->dims[d];
    VDEP_REQUIRE(v >= lo && v <= hi,
                 "array " + a.decl->name + " subscript out of declared range");
    off = checked::add(checked::mul(off, hi - lo + 1), v - lo);
  }
  return a.base + static_cast<std::uint64_t>(off);
}

i64 uf_find(std::vector<i64>& parent, i64 x) {
  while (parent[static_cast<std::size_t>(x)] != x) {
    // Path halving keeps amortized cost near-constant without recursion.
    parent[static_cast<std::size_t>(x)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    x = parent[static_cast<std::size_t>(x)];
  }
  return x;
}

}  // namespace

void DynamicPartition::coords_of(i64 it, Vec& out) const {
  out.resize(static_cast<std::size_t>(depth_));
  const i64* src = coords_.data() + it * depth_;
  for (int d = 0; d < depth_; ++d) out[static_cast<std::size_t>(d)] = src[d];
}

DynamicPartition inspect(const loopir::LoopNest& nest,
                         const exec::ArrayStore& store) {
  const i64 t0 = now_ns();
  const int depth = nest.depth();

  // Flatten the body's accesses once; `accesses` keeps the ArrayRefs the
  // FlatAccess pointers borrow from alive for the whole inspection.
  const std::vector<loopir::LoopNest::Access> accesses = nest.accesses();
  std::vector<FlatAccess> flat;
  flat.reserve(accesses.size());
  std::uint64_t base = 0;
  std::unordered_map<std::string, std::uint64_t> base_of;
  for (const loopir::ArrayDecl& d : nest.arrays()) {
    base_of[d.name] = base;
    base += static_cast<std::uint64_t>(d.element_count());
  }
  for (const auto& a : accesses) {
    FlatAccess fa;
    fa.write = a.is_write;
    fa.decl = &nest.array(a.ref.array);
    fa.base = base_of.at(a.ref.array);
    fa.subs.resize(a.ref.subscripts.size());
    for (std::size_t k = 0; k < a.ref.subscripts.size(); ++k) {
      if (k < a.ref.indirect.size() && a.ref.indirect[k].has_value()) {
        const loopir::IndirectSubscript& ind = *a.ref.indirect[k];
        fa.subs[k].pos = &ind.pos;
        fa.subs[k].idx = &store.raw(ind.array);
        fa.subs[k].idx_lo = nest.array(ind.array).dims.front().first;
      } else {
        fa.subs[k].aff = &a.ref.subscripts[k];
      }
    }
    flat.push_back(std::move(fa));
  }

  // Pass 1: materialize the iteration coordinates (the executor replays
  // them later) and collect the set of written cells.
  DynamicPartition part;
  part.depth_ = depth;
  std::unordered_set<std::uint64_t> written;
  nest.for_each_iteration([&](const Vec& iter) {
    part.coords_.insert(part.coords_.end(), iter.begin(), iter.end());
    for (const FlatAccess& fa : flat)
      if (fa.write) written.insert(cell_id(fa, iter));
  });
  const i64 n = depth > 0 ? static_cast<i64>(part.coords_.size()) / depth : 0;

  // Pass 2: union every toucher of a written cell with that cell's first
  // toucher. Read-only cells induce no dependence and are skipped, so the
  // map stays proportional to the written footprint.
  std::vector<i64> parent(static_cast<std::size_t>(n));
  for (i64 k = 0; k < n; ++k) parent[static_cast<std::size_t>(k)] = k;
  std::unordered_map<std::uint64_t, i64> first_toucher;
  first_toucher.reserve(written.size());
  Vec iter(static_cast<std::size_t>(depth), 0);
  for (i64 it = 0; it < n; ++it) {
    part.coords_of(it, iter);
    for (const FlatAccess& fa : flat) {
      std::uint64_t cell = cell_id(fa, iter);
      if (!written.count(cell)) continue;
      auto [pos, fresh] = first_toucher.emplace(cell, it);
      if (fresh) continue;
      i64 a = uf_find(parent, pos->second);
      i64 b = uf_find(parent, it);
      if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] =
          std::min(a, b);
    }
  }

  // Classes: one per component (singletons included), numbered by the
  // lexicographic rank of the first member so class order is deterministic.
  part.class_of_.assign(static_cast<std::size_t>(n), -1);
  std::vector<i64> root_class(static_cast<std::size_t>(n), -1);
  i64 num_classes = 0;
  for (i64 it = 0; it < n; ++it) {
    i64 r = uf_find(parent, it);
    if (root_class[static_cast<std::size_t>(r)] < 0)
      root_class[static_cast<std::size_t>(r)] = num_classes++;
    part.class_of_[static_cast<std::size_t>(it)] =
        root_class[static_cast<std::size_t>(r)];
  }

  // CSR (counting sort by class; members stay in ascending rank order).
  part.offsets_.assign(static_cast<std::size_t>(num_classes) + 1, 0);
  for (i64 c : part.class_of_) ++part.offsets_[static_cast<std::size_t>(c) + 1];
  for (std::size_t k = 1; k < part.offsets_.size(); ++k)
    part.offsets_[k] += part.offsets_[k - 1];
  part.members_.resize(static_cast<std::size_t>(n));
  std::vector<i64> cursor(part.offsets_.begin(), part.offsets_.end() - 1);
  for (i64 it = 0; it < n; ++it) {
    i64 c = part.class_of_[static_cast<std::size_t>(it)];
    part.members_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(c)]++)] = it;
  }

  InspectStats& st = part.stats_;
  st.iterations = n;
  st.classes = num_classes;
  st.written_cells = static_cast<i64>(written.size());
  for (i64 c = 0; c < num_classes; ++c) {
    i64 sz = part.class_size(c);
    st.max_component = std::max(st.max_component, sz);
    if (sz >= 2) {
      ++st.chains;
      st.dependent_iterations += sz;
    }
  }
  st.inspect_ns = now_ns() - t0;
  return part;
}

}  // namespace vdep::inspect
