#include "inspect/executor.h"

#include <memory>
#include <thread>

#include "exec/compiled.h"
#include "exec/interpreter.h"
#include "support/error.h"

namespace vdep::inspect {

InspectorExecutor::InspectorExecutor(const loopir::LoopNest& nest,
                                     const DynamicPartition& partition,
                                     InspectorExecOptions opts)
    : nest_(nest), part_(&partition), opts_(opts) {
  VDEP_REQUIRE(nest_.depth() == part_->depth(),
               "partition depth / nest depth mismatch");
  threads_ = opts_.num_threads != 0
                 ? opts_.num_threads
                 : std::max(1u, std::thread::hardware_concurrency());
  if (opts_.grain > 0) {
    grain_ = opts_.grain;
  } else {
    grain_ = runtime::pick_grain(std::max<i64>(part_->num_classes(), 1),
                                 threads_,
                                 std::max<i64>(opts_.tasks_per_worker, 1));
  }
}

runtime::TaskDescriptor InspectorExecutor::root() const {
  runtime::TaskDescriptor rt;
  rt.ndims = 0;
  rt.class_lo = 0;
  rt.class_hi = part_->num_classes();
  return rt;
}

runtime::RuntimeStats InspectorExecutor::run_impl(exec::ArrayStore& store,
                                                  ThreadPool* pool) const {
  // One body shared by every worker: a CompiledKernel when the nest is
  // affine and provable (per-worker Scratch keeps it const), otherwise the
  // exact interpreter — which is also the only path that can resolve
  // indirect subscripts.
  std::shared_ptr<const exec::CompiledKernel> ck;
  if (!opts_.force_interpreter && !nest_.has_indirection()) {
    try {
      ck = std::make_shared<exec::CompiledKernel>(nest_, store);
    } catch (const Error&) {
      // Range proof or box extraction failed: interpret instead.
    }
  }

  runtime::LeafFactory factory = [&](int, runtime::WorkerStats& stats)
      -> runtime::LeafFn {
    std::function<void(const Vec&)> body;
    if (ck) {
      auto scratch = std::make_shared<exec::CompiledKernel::Scratch>(
          ck->make_scratch());
      body = [ck, scratch](const Vec& it) {
        ck->execute_iteration(it, *scratch);
      };
    } else {
      const loopir::LoopNest* nest = &nest_;
      exec::ArrayStore* st = &store;
      body = [nest, st](const Vec& it) {
        exec::execute_iteration(*nest, it, *st);
      };
    }
    auto iter = std::make_shared<Vec>();
    const DynamicPartition* part = part_;
    runtime::WorkerStats* ws = &stats;
    return [part, ws, iter, body = std::move(body)](
               const runtime::TaskDescriptor& task) {
      for (i64 c = task.class_lo; c < task.class_hi; ++c) {
        ws->iterations += part->class_size(c);
        part->for_each_class_iteration(c, *iter,
                                       [&](const Vec& it) { body(it); });
      }
    };
  };

  runtime::DriveOptions d;
  d.threads = threads_;
  d.grain = grain_;
  d.trace = opts_.trace;
  d.metrics = opts_.metrics;
  d.pin_workers = opts_.pin_workers;
  return runtime::drive_descriptors(root(), d, factory, pool);
}

runtime::RuntimeStats InspectorExecutor::run(exec::ArrayStore& store) const {
  return run_impl(store, nullptr);
}

runtime::RuntimeStats InspectorExecutor::run(exec::ArrayStore& store,
                                             ThreadPool& pool) const {
  return run_impl(store, &pool);
}

}  // namespace vdep::inspect
