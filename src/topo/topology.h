// Hardware topology discovery for the work-stealing runtime.
//
// The scheduler's costs are not uniform: a steal from an SMT sibling moves
// a descriptor between hyperthreads sharing one L1/L2; a steal within a
// NUMA node crosses a shared L3; a steal from a remote node drags every
// cache line the leaf touches across the interconnect. Topology models the
// machine as sockets -> NUMA nodes -> physical cores -> SMT siblings,
// discovered from /sys/devices/system/{cpu,node}, and answers the two
// questions the runtime asks:
//
//   assign_workers(n)  which cpu should worker k pin to (spread over
//                      distinct physical cores round-robin across nodes
//                      before doubling up on SMT siblings; oversubscribed
//                      workers wrap)
//   steal_rings(...)   in what order should an idle worker probe victims
//                      (same cpu, then SMT sibling, then same node, then
//                      remote — randomized within each ring by the caller)
//
// Discovery degrades, never fails: an unreadable sysfs (non-Linux, sandbox,
// fixture tests on odd hosts) yields a flat single-node topology over the
// process's allowed cpus, which reproduces the uniform sweep the runtime
// always had. A fixture directory with the same layout substitutes for
// /sys/devices/system in tests, so multi-node parsing is covered on any
// build host.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vdep::topo {

/// One logical cpu (hardware thread) the process may run on.
struct CpuInfo {
  int cpu = 0;      ///< kernel cpu id (the sched_setaffinity bit)
  int core = 0;     ///< core id, unique only within a package (sysfs semantics)
  int package = 0;  ///< physical_package_id (socket)
  int node = 0;     ///< NUMA node
};

class Topology {
 public:
  /// Steal-distance classes between two logical cpus, nearest first.
  static constexpr int kSameCpu = 0;     ///< same hardware thread (oversubscribed)
  static constexpr int kSmtSibling = 1;  ///< same physical core, other thread
  static constexpr int kSameNode = 2;    ///< same NUMA node, other core
  static constexpr int kRemoteNode = 3;  ///< different NUMA node
  static constexpr int kNumDistances = 4;

  static const char* distance_name(int d);

  /// Parses a sysfs-layout directory: `root`/cpu/online (list format,
  /// holes allowed), `root`/cpu/cpu<N>/topology/{physical_package_id,
  /// core_id}, `root`/node/node<K>/cpulist. Missing node directories put
  /// every cpu on node 0; per-cpu topology files degrade to one core per
  /// cpu; an unreadable online file degrades to flat(1). Never throws.
  static Topology from_sysfs(const std::string& root);

  /// Synthetic flat machine: `n` cpus 0..n-1, one thread per core, one
  /// package, one node.
  static Topology flat(int n);

  /// The host, discovered once: /sys/devices/system intersected with the
  /// process's affinity mask (taskset / cgroups), so pinning never targets
  /// a cpu the kernel would reject. Empty intersection (or non-Linux)
  /// falls back to a flat topology over the allowed cpus.
  static const Topology& system();

  explicit Topology(std::vector<CpuInfo> cpus);

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  const std::vector<CpuInfo>& cpus() const { return cpus_; }

  int sockets() const;
  int numa_nodes() const;
  /// Distinct physical cores.
  int cores() const;
  /// True when any core carries more than one hardware thread.
  bool smt() const;
  /// True when discovery failed and this is a synthesized flat topology.
  bool flat_fallback() const { return flat_fallback_; }

  /// Distance class between two slots of cpus() (not kernel cpu ids).
  int distance(int a, int b) const;

  /// Pinning targets for `n` workers, as slots of cpus(): one worker per
  /// physical core first (cores taken round-robin across NUMA nodes, so
  /// 2 workers on a 2-node machine land on different nodes), then the
  /// remaining SMT siblings (same node order), then wrap modulo for
  /// oversubscription. Empty topologies yield all-zero assignments over a
  /// single synthetic cpu.
  std::vector<int> assign_workers(std::size_t n) const;

  /// Victim probe order for worker `self` under `assignment` (a vector of
  /// cpus() slots as produced by assign_workers): rings[d] holds the other
  /// workers at distance d, ascending worker id. The runtime sweeps ring 0
  /// (co-scheduled on the same cpu) outward to ring 3, randomizing its
  /// start position within each ring.
  std::vector<std::vector<int>> steal_rings(const std::vector<int>& assignment,
                                            int self) const;

 private:
  Topology() = default;

  std::vector<CpuInfo> cpus_;
  bool flat_fallback_ = false;
};

}  // namespace vdep::topo
