#include "topo/topology.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "topo/affinity.h"

namespace vdep::topo {

namespace {

/// Reads a one-line sysfs file; empty optional on any failure.
bool read_line(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::getline(in, out);
  return in.good() || in.eof();
}

bool read_int(const std::string& path, int& out) {
  std::string line;
  if (!read_line(path, line)) return false;
  try {
    out = std::stoi(line);
  } catch (...) {
    return false;
  }
  return true;
}

/// Parses the sysfs cpu-list format: "0-3,5,8-9". Returns false on any
/// token it cannot parse (trailing whitespace/newlines are tolerated).
bool parse_cpu_list(const std::string& text, std::vector<int>& out) {
  std::istringstream is(text);
  std::string token;
  while (std::getline(is, token, ',')) {
    while (!token.empty() && (token.back() == '\n' || token.back() == ' '))
      token.pop_back();
    if (token.empty()) continue;
    std::size_t dash = token.find('-');
    try {
      if (dash == std::string::npos) {
        out.push_back(std::stoi(token));
      } else {
        int lo = std::stoi(token.substr(0, dash));
        int hi = std::stoi(token.substr(dash + 1));
        if (hi < lo) return false;
        for (int c = lo; c <= hi; ++c) out.push_back(c);
      }
    } catch (...) {
      return false;
    }
  }
  return !out.empty();
}

}  // namespace

const char* Topology::distance_name(int d) {
  switch (d) {
    case kSameCpu: return "same_cpu";
    case kSmtSibling: return "smt_sibling";
    case kSameNode: return "same_node";
    default: return "remote_node";
  }
}

Topology::Topology(std::vector<CpuInfo> cpus) : cpus_(std::move(cpus)) {}

Topology Topology::flat(int n) {
  std::vector<CpuInfo> cpus;
  cpus.reserve(static_cast<std::size_t>(std::max(n, 1)));
  for (int k = 0; k < std::max(n, 1); ++k) cpus.push_back({k, k, 0, 0});
  Topology t(std::move(cpus));
  t.flat_fallback_ = true;
  return t;
}

Topology Topology::from_sysfs(const std::string& root) {
  std::string online;
  std::vector<int> ids;
  if (!read_line(root + "/cpu/online", online) ||
      !parse_cpu_list(online, ids)) {
    return flat(1);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  // NUMA map first: node directories are dense in practice, but probing by
  // index tolerates a hole or two before giving up (node numbering gaps
  // exist on partitioned hardware).
  std::map<int, int> node_of;
  int misses = 0;
  for (int k = 0; misses < 4; ++k) {
    std::string list;
    if (!read_line(root + "/node/node" + std::to_string(k) + "/cpulist",
                   list)) {
      ++misses;
      continue;
    }
    misses = 0;
    std::vector<int> members;
    if (parse_cpu_list(list, members))
      for (int c : members) node_of[c] = k;
  }

  std::vector<CpuInfo> cpus;
  cpus.reserve(ids.size());
  for (int id : ids) {
    CpuInfo info;
    info.cpu = id;
    const std::string base = root + "/cpu/cpu" + std::to_string(id) +
                             "/topology/";
    if (!read_int(base + "core_id", info.core)) info.core = id;
    if (!read_int(base + "physical_package_id", info.package)) info.package = 0;
    auto it = node_of.find(id);
    info.node = it != node_of.end() ? it->second : 0;
    cpus.push_back(info);
  }
  return Topology(std::move(cpus));
}

const Topology& Topology::system() {
  static const Topology topo = [] {
    std::vector<int> allowed = allowed_cpus();
    Topology raw = Topology::from_sysfs("/sys/devices/system");
    if (raw.flat_fallback_) {
      // No sysfs: a flat topology over the allowed cpus (or hardware
      // concurrency when even the affinity mask is unreadable).
      if (allowed.empty())
        return flat(static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency())));
      std::vector<CpuInfo> cpus;
      for (int c : allowed) cpus.push_back({c, c, 0, 0});
      Topology t(std::move(cpus));
      t.flat_fallback_ = true;
      return t;
    }
    if (allowed.empty()) return raw;
    // Keep only the cpus the scheduler will actually let us run on
    // (taskset masks, cgroup cpusets): pinning outside the mask is EINVAL.
    std::vector<CpuInfo> kept;
    for (const CpuInfo& c : raw.cpus_)
      if (std::find(allowed.begin(), allowed.end(), c.cpu) != allowed.end())
        kept.push_back(c);
    if (kept.empty()) return raw;
    return Topology(std::move(kept));
  }();
  return topo;
}

int Topology::sockets() const {
  std::vector<int> seen;
  for (const CpuInfo& c : cpus_) seen.push_back(c.package);
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return std::max<int>(1, static_cast<int>(seen.size()));
}

int Topology::numa_nodes() const {
  std::vector<int> seen;
  for (const CpuInfo& c : cpus_) seen.push_back(c.node);
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return std::max<int>(1, static_cast<int>(seen.size()));
}

int Topology::cores() const {
  std::vector<std::pair<int, int>> seen;
  for (const CpuInfo& c : cpus_) seen.emplace_back(c.package, c.core);
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return std::max<int>(1, static_cast<int>(seen.size()));
}

bool Topology::smt() const { return num_cpus() > cores(); }

int Topology::distance(int a, int b) const {
  if (a == b) return kSameCpu;
  const CpuInfo& x = cpus_[static_cast<std::size_t>(a)];
  const CpuInfo& y = cpus_[static_cast<std::size_t>(b)];
  if (x.package == y.package && x.core == y.core) return kSmtSibling;
  if (x.node == y.node) return kSameNode;
  return kRemoteNode;
}

std::vector<int> Topology::assign_workers(std::size_t n) const {
  std::vector<int> out(n, 0);
  if (cpus_.empty() || n == 0) return out;

  // Group slots by physical core, cores ordered by (node, package, core) so
  // same-node cores are adjacent; within a core, threads in cpu-id order.
  std::map<std::tuple<int, int, int>, std::vector<int>> by_core;
  for (int s = 0; s < num_cpus(); ++s) {
    const CpuInfo& c = cpus_[static_cast<std::size_t>(s)];
    by_core[{c.node, c.package, c.core}].push_back(s);
  }
  for (auto& [key, slots] : by_core)
    std::sort(slots.begin(), slots.end(), [&](int a, int b) {
      return cpus_[static_cast<std::size_t>(a)].cpu <
             cpus_[static_cast<std::size_t>(b)].cpu;
    });

  // Wave w takes the (w+1)-th thread of every core — all distinct cores
  // before any SMT doubling. Within a wave, cores rotate across NUMA nodes
  // so low worker counts spread over nodes instead of filling node 0.
  std::vector<int> order;
  order.reserve(cpus_.size());
  for (std::size_t wave = 0; order.size() < cpus_.size(); ++wave) {
    // Per-node core lists for this wave, in node order.
    std::map<int, std::vector<int>> per_node;
    for (const auto& [key, slots] : by_core)
      if (wave < slots.size()) per_node[std::get<0>(key)].push_back(slots[wave]);
    if (per_node.empty()) break;
    for (std::size_t k = 0;; ++k) {
      bool any = false;
      for (auto& [node, slots] : per_node) {
        if (k < slots.size()) {
          order.push_back(slots[k]);
          any = true;
        }
      }
      if (!any) break;
    }
  }

  for (std::size_t w = 0; w < n; ++w) out[w] = order[w % order.size()];
  return out;
}

std::vector<std::vector<int>> Topology::steal_rings(
    const std::vector<int>& assignment, int self) const {
  std::vector<std::vector<int>> rings(kNumDistances);
  const int mine = assignment[static_cast<std::size_t>(self)];
  for (int w = 0; w < static_cast<int>(assignment.size()); ++w) {
    if (w == self) continue;
    rings[static_cast<std::size_t>(
              distance(mine, assignment[static_cast<std::size_t>(w)]))]
        .push_back(w);
  }
  return rings;
}

}  // namespace vdep::topo
