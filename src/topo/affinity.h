// Thread-affinity helpers over sched_{get,set}affinity.
//
// Pinning in this runtime is always *restorative*: worker 0 is the calling
// thread and pool threads are long-lived, so a run must never leave its
// affinity footprint behind. AffinityGuard pins on construction and puts
// the previous mask back on destruction.
//
// Non-Linux builds compile to no-ops (pin_supported() == false); the
// scheduler keeps its topology-ordered stealing either way, it just cannot
// promise the workers stay where it assumed.
#pragma once

#include <vector>

namespace vdep::topo {

/// A set of kernel cpu ids (a thin, copyable wrapper over cpu_set_t).
class CpuSet {
 public:
  /// The calling thread's current affinity mask; empty set on failure.
  static CpuSet current();

  void set(int cpu);
  bool test(int cpu) const;
  int count() const { return static_cast<int>(cpus_.size()); }
  bool empty() const { return cpus_.empty(); }
  /// Member cpu ids, ascending.
  const std::vector<int>& cpus() const { return cpus_; }

  /// sched_setaffinity(0, *this). False when unsupported or rejected
  /// (empty set, cpu outside the cgroup mask).
  bool apply() const;

 private:
  std::vector<int> cpus_;
};

/// Whether this build/host can pin at all.
bool pin_supported();

/// Runtime opt-out: false when the environment sets VDEP_PIN=0.
bool pin_env_enabled();

/// The process's allowed cpu ids (sched_getaffinity); empty when the mask
/// cannot be read. Topology::system() intersects discovery with this.
std::vector<int> allowed_cpus();

/// RAII pin of the calling thread to one cpu; restores the thread's
/// previous mask on destruction. Construction with an unsupported host or
/// a rejected cpu leaves the thread untouched (pinned() == false).
class AffinityGuard {
 public:
  explicit AffinityGuard(int cpu);
  ~AffinityGuard();
  AffinityGuard(const AffinityGuard&) = delete;
  AffinityGuard& operator=(const AffinityGuard&) = delete;

  bool pinned() const { return pinned_; }

 private:
  CpuSet saved_;
  bool pinned_ = false;
};

}  // namespace vdep::topo
