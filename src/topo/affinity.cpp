#include "topo/affinity.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <sched.h>
#endif

namespace vdep::topo {

#ifdef __linux__

CpuSet CpuSet::current() {
  CpuSet out;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) != 0) return out;
  for (int c = 0; c < CPU_SETSIZE; ++c)
    if (CPU_ISSET(c, &mask)) out.cpus_.push_back(c);
  return out;
}

bool CpuSet::apply() const {
  if (cpus_.empty()) return false;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  for (int c : cpus_)
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &mask);
  return sched_setaffinity(0, sizeof(mask), &mask) == 0;
}

bool pin_supported() { return true; }

#else  // !__linux__

CpuSet CpuSet::current() { return {}; }
bool CpuSet::apply() const { return false; }
bool pin_supported() { return false; }

#endif

void CpuSet::set(int cpu) {
  if (std::find(cpus_.begin(), cpus_.end(), cpu) == cpus_.end())
    cpus_.push_back(cpu);
  std::sort(cpus_.begin(), cpus_.end());
}

bool CpuSet::test(int cpu) const {
  return std::find(cpus_.begin(), cpus_.end(), cpu) != cpus_.end();
}

bool pin_env_enabled() {
  const char* v = std::getenv("VDEP_PIN");
  return v == nullptr || std::strcmp(v, "0") != 0;
}

std::vector<int> allowed_cpus() { return CpuSet::current().cpus(); }

AffinityGuard::AffinityGuard(int cpu) {
  if (!pin_supported()) return;
  saved_ = CpuSet::current();
  if (saved_.empty()) return;
  CpuSet target;
  target.set(cpu);
  pinned_ = target.apply();
}

AffinityGuard::~AffinityGuard() {
  if (pinned_) saved_.apply();
}

}  // namespace vdep::topo
