#include "support/rational.h"

#include <ostream>

namespace vdep {

using checked::i64;

Rational::Rational(i64 num, i64 den) : num_(num), den_(den) {
  VDEP_REQUIRE(den != 0, "Rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = checked::neg(num_);
    den_ = checked::neg(den_);
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  i64 g = checked::gcd(num_, den_);
  num_ /= g;
  den_ /= g;
}

i64 Rational::as_integer() const {
  VDEP_REQUIRE(den_ == 1, "Rational " + to_string() + " is not integral");
  return num_;
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checked::neg(num_);
  r.den_ = den_;
  return r;
}

Rational& Rational::operator+=(const Rational& o) {
  // Cross-cancel before multiplying to keep intermediates small.
  i64 g = checked::gcd(den_, o.den_);
  i64 lhs_scale = o.den_ / g;
  i64 rhs_scale = den_ / g;
  num_ = checked::add(checked::mul(num_, lhs_scale), checked::mul(o.num_, rhs_scale));
  den_ = checked::mul(den_, lhs_scale);
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& o) { return *this += -o; }

Rational& Rational::operator*=(const Rational& o) {
  i64 g1 = checked::gcd(num_, o.den_);
  i64 g2 = checked::gcd(o.num_, den_);
  num_ = checked::mul(num_ / g1, o.num_ / g2);
  den_ = checked::mul(den_ / g2, o.den_ / g1);
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& o) {
  VDEP_REQUIRE(!o.is_zero(), "Rational division by zero");
  return *this *= Rational(o.den_, o.num_);
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // a.num/a.den <=> b.num/b.den  with positive denominators.
  i64 lhs = checked::mul(a.num_, b.den_);
  i64 rhs = checked::mul(b.num_, a.den_);
  return lhs <=> rhs;
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace vdep
