// Deterministic pseudo-random generator for property tests and workload
// generators. SplitMix64: tiny, fast, reproducible across platforms
// (std::mt19937 distributions are not portable across standard libraries).
#pragma once

#include <cstdint>

#include "support/error.h"

namespace vdep {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64).
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    VDEP_REQUIRE(lo <= hi, "Rng::uniform empty range");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    VDEP_REQUIRE(den > 0 && num <= den, "Rng::chance bad probability");
    return next_u64() % den < num;
  }

 private:
  std::uint64_t state_;
};

}  // namespace vdep
