// Expected<T>: the value-or-error vocabulary type of the public API.
//
// The analysis library throws (support/error.h) — analysis code is deep
// recursion where exceptions keep the happy path clean. The staged API
// (api/compiler.h) must not leak those exceptions to callers serving
// traffic, so every boundary function returns Expected<T>: either the
// value or an inspectable ApiError carrying a machine-checkable kind and,
// for parse errors, the exact source position.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "support/error.h"

namespace vdep {

/// Machine-checkable classification of an ApiError.
enum class ErrorKind {
  kParse,         ///< DSL source rejected (line/column are set)
  kUnsupported,   ///< program outside the affine model
  kPrecondition,  ///< caller violated a documented precondition
  kOverflow,      ///< exact arithmetic exceeded int64
  kInternal,      ///< library invariant failed (bug)
};

inline const char* to_string(ErrorKind k) {
  switch (k) {
    case ErrorKind::kParse: return "parse";
    case ErrorKind::kUnsupported: return "unsupported";
    case ErrorKind::kPrecondition: return "precondition";
    case ErrorKind::kOverflow: return "overflow";
    case ErrorKind::kInternal: return "internal";
  }
  return "unknown";
}

/// The error arm of Expected: what went wrong, classified, with source
/// position when the input was DSL text.
struct ApiError {
  ErrorKind kind = ErrorKind::kInternal;
  std::string message;
  int line = -1;    ///< 1-based source line (kParse only, else -1)
  int column = -1;  ///< 1-based source column (kParse only, else -1)
  /// 0-based position of the failing entry when the error came from a
  /// batch entry point (Compiler::compile_all, vdep::execute_batch); -1
  /// otherwise. The other entries of a compile_all batch are still
  /// compiled and cached before the error returns.
  int index = -1;

  std::string to_string() const {
    std::string s = std::string("[") + vdep::to_string(kind) + "] " + message;
    return s;
  }

  /// Re-throws as the matching exception type from support/error.h (used
  /// by the deprecated throwing wrappers layered over the Expected API).
  [[noreturn]] void raise() const {
    switch (kind) {
      case ErrorKind::kUnsupported: throw UnsupportedError(message);
      case ErrorKind::kPrecondition: throw PreconditionError(message);
      case ErrorKind::kOverflow: throw OverflowError(message);
      case ErrorKind::kParse:
      case ErrorKind::kInternal: break;
    }
    throw InternalError(message);
  }
};

/// Either a T or an ApiError. Deliberately tiny — not a std::expected
/// polyfill, just the slice the API boundary needs: has_value/operator
/// bool, value/error access, value_or, and monadic map/and_then.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}          // NOLINT(implicit)
  Expected(ApiError error) : state_(std::move(error)) {}   // NOLINT(implicit)

  bool has_value() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return has_value(); }

  /// Value access; raises the stored error (typed) when absent.
  const T& value() const& {
    if (!has_value()) std::get<ApiError>(state_).raise();
    return std::get<T>(state_);
  }
  T& value() & {
    if (!has_value()) std::get<ApiError>(state_).raise();
    return std::get<T>(state_);
  }
  T&& value() && {
    if (!has_value()) std::get<ApiError>(state_).raise();
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Error access; precondition: !has_value().
  const ApiError& error() const {
    VDEP_CHECK(!has_value(), "Expected::error() called on a value");
    return std::get<ApiError>(state_);
  }

  T value_or(T fallback) const& {
    return has_value() ? std::get<T>(state_) : std::move(fallback);
  }

  /// Applies f to the value (f returns a plain U); propagates the error.
  template <typename F>
  auto map(F&& f) const -> Expected<decltype(f(std::declval<const T&>()))> {
    if (!has_value()) return std::get<ApiError>(state_);
    return f(std::get<T>(state_));
  }

  /// Applies f to the value (f returns an Expected<U>); propagates.
  template <typename F>
  auto and_then(F&& f) const -> decltype(f(std::declval<const T&>())) {
    if (!has_value()) return std::get<ApiError>(state_);
    return f(std::get<T>(state_));
  }

 private:
  std::variant<T, ApiError> state_;
};

namespace detail {
/// Maps a caught library exception to its ApiError classification.
inline ApiError classify(const Error& e) {
  if (dynamic_cast<const UnsupportedError*>(&e))
    return {ErrorKind::kUnsupported, e.what()};
  if (dynamic_cast<const PreconditionError*>(&e))
    return {ErrorKind::kPrecondition, e.what()};
  if (dynamic_cast<const OverflowError*>(&e))
    return {ErrorKind::kOverflow, e.what()};
  return {ErrorKind::kInternal, e.what()};
}
}  // namespace detail

/// Runs f() and captures any library exception as the error arm. The
/// standard bridge from the throwing analysis core to the Expected API.
template <typename F>
auto try_invoke(F&& f) -> Expected<decltype(f())> {
  try {
    return f();
  } catch (const Error& e) {
    return detail::classify(e);
  }
}

}  // namespace vdep
