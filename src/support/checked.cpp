#include "support/checked.h"

namespace vdep::checked {

ExtGcd ext_gcd(i64 a, i64 b) {
  // Iterative extended Euclid on |a|, |b|; signs are restored at the end.
  i64 old_r = abs(a), r = abs(b);
  i64 old_s = 1, s = 0;
  i64 old_t = 0, t = 1;
  while (r != 0) {
    i64 q = old_r / r;
    i64 tmp = sub(old_r, mul(q, r));
    old_r = r;
    r = tmp;
    tmp = sub(old_s, mul(q, s));
    old_s = s;
    s = tmp;
    tmp = sub(old_t, mul(q, t));
    old_t = t;
    t = tmp;
  }
  ExtGcd out{old_r, old_s, old_t};
  if (a < 0) out.x = neg(out.x);
  if (b < 0) out.y = neg(out.y);
  // Invariant: x*a + y*b == g >= 0.
  VDEP_CHECK(add(mul(out.x, a), mul(out.y, b)) == out.g, "ext_gcd Bezout identity");
  return out;
}

}  // namespace vdep::checked
