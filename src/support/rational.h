// Exact rational numbers over checked int64, always kept in lowest terms
// with a positive denominator. Used by Fourier-Motzkin elimination and the
// Banerjee bounds test; lattice code stays purely integral.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "support/checked.h"

namespace vdep {

class Rational {
 public:
  using i64 = checked::i64;

  constexpr Rational() = default;
  Rational(i64 value) : num_(value) {}  // NOLINT: implicit by design
  Rational(i64 num, i64 den);

  i64 num() const { return num_; }
  i64 den() const { return den_; }

  bool is_zero() const { return num_ == 0; }
  bool is_integer() const { return den_ == 1; }

  /// Largest integer <= *this.
  i64 floor() const { return checked::floor_div(num_, den_); }
  /// Smallest integer >= *this.
  i64 ceil() const { return checked::ceil_div(num_, den_); }

  /// Exact integer value; throws unless is_integer().
  i64 as_integer() const;

  Rational operator-() const;
  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

  std::string to_string() const;

 private:
  void normalize();

  i64 num_ = 0;
  i64 den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// min/max helpers (std::min needs identical value categories).
inline Rational rat_min(const Rational& a, const Rational& b) { return a < b ? a : b; }
inline Rational rat_max(const Rational& a, const Rational& b) { return a < b ? b : a; }

}  // namespace vdep
