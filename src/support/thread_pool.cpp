#include "support/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

#include "support/error.h"

namespace vdep {

ThreadPool::ThreadPool(std::size_t num_threads) {
  VDEP_REQUIRE(num_threads >= 1, "ThreadPool needs at least one thread");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

// Shared between the caller and the helper tasks it enqueues. Helpers may
// start after the caller already returned (all chunks drained), so the state
// is shared_ptr-owned, never stack-referenced.
struct Batch {
  std::int64_t num_chunks = 0;
  std::function<void(std::int64_t)> body;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> remaining{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  void run_chunks() {
    for (;;) {
      std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      try {
        body(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::int64_t num_chunks,
                              const std::function<void(std::int64_t)>& body) {
  if (num_chunks <= 0) return;
  if (num_chunks == 1 || workers_.size() == 1) {
    for (std::int64_t c = 0; c < num_chunks; ++c) body(c);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->num_chunks = num_chunks;
  batch->body = body;  // copy: outlives the caller if helpers start late
  batch->remaining.store(num_chunks, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < workers_.size(); ++i)
      tasks_.emplace([batch] { batch->run_chunks(); });
  }
  wake_.notify_all();

  // The caller participates too, then waits for stragglers.
  batch->run_chunks();
  {
    std::unique_lock<std::mutex> lock(batch->done_mutex);
    batch->done_cv.wait(lock, [&] {
      return batch->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace vdep
