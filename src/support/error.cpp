#include "support/error.h"

#include <sstream>

namespace vdep::detail {

namespace {
std::string format(const char* kind, const char* cond, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << msg << " [" << cond << " at " << file << ":" << line
     << "]";
  return os.str();
}
}  // namespace

void throw_precondition(const char* cond, const char* file, int line,
                        const std::string& msg) {
  throw PreconditionError(format("precondition violated", cond, file, line, msg));
}

void throw_internal(const char* cond, const char* file, int line,
                    const std::string& msg) {
  throw InternalError(format("internal invariant violated", cond, file, line, msg));
}

}  // namespace vdep::detail
