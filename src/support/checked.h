// Overflow-checked 64-bit integer arithmetic.
//
// All exact lattice computations in vdep use int64_t; any operation that
// would exceed its range throws OverflowError. GCC/Clang __builtin_*_overflow
// intrinsics compile to a flag test, so the checks are essentially free
// compared to the surrounding linear algebra.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "support/error.h"

namespace vdep::checked {

using i64 = std::int64_t;

/// a + b, throwing OverflowError on wrap.
inline i64 add(i64 a, i64 b) {
  i64 r = 0;
  if (__builtin_add_overflow(a, b, &r))
    throw OverflowError("int64 overflow in add(" + std::to_string(a) + ", " +
                        std::to_string(b) + ")");
  return r;
}

/// a - b, throwing OverflowError on wrap.
inline i64 sub(i64 a, i64 b) {
  i64 r = 0;
  if (__builtin_sub_overflow(a, b, &r))
    throw OverflowError("int64 overflow in sub(" + std::to_string(a) + ", " +
                        std::to_string(b) + ")");
  return r;
}

/// a * b, throwing OverflowError on wrap.
inline i64 mul(i64 a, i64 b) {
  i64 r = 0;
  if (__builtin_mul_overflow(a, b, &r))
    throw OverflowError("int64 overflow in mul(" + std::to_string(a) + ", " +
                        std::to_string(b) + ")");
  return r;
}

/// -a, throwing OverflowError for INT64_MIN.
inline i64 neg(i64 a) { return sub(0, a); }

/// |a|, throwing OverflowError for INT64_MIN.
inline i64 abs(i64 a) { return a < 0 ? neg(a) : a; }

/// a + b*c with a single overflow check chain (common inner-product step).
inline i64 fma(i64 a, i64 b, i64 c) { return add(a, mul(b, c)); }

/// Floor division: largest q with q*b <= a. b must be nonzero.
/// (C++ `/` truncates toward zero; lattice math needs floor semantics.)
inline i64 floor_div(i64 a, i64 b) {
  VDEP_REQUIRE(b != 0, "floor_div by zero");
  // INT64_MIN / -1 overflows.
  if (b == -1) return neg(a);
  i64 q = a / b;
  i64 r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

/// Ceiling division: smallest q with q*b >= a. b must be nonzero.
inline i64 ceil_div(i64 a, i64 b) {
  VDEP_REQUIRE(b != 0, "ceil_div by zero");
  if (b == -1) return neg(a);
  i64 q = a / b;
  i64 r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) ++q;
  return q;
}

/// Mathematical modulus: always in [0, |b|), so a == |b|*k + mod(a,b).
inline i64 mod(i64 a, i64 b) {
  VDEP_REQUIRE(b != 0, "mod by zero");
  i64 m = a % b;  // has the sign of a (truncated division)
  if (m < 0) m += (b < 0 ? -b : b);
  return m;
}

/// Nonnegative gcd; gcd(0,0) == 0.
inline i64 gcd(i64 a, i64 b) {
  a = abs(a);
  b = abs(b);
  while (b != 0) {
    i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Least common multiple (checked); lcm(0, x) == 0.
inline i64 lcm(i64 a, i64 b) {
  if (a == 0 || b == 0) return 0;
  i64 g = gcd(a, b);
  return mul(abs(a) / g, abs(b));
}

/// Extended gcd result: g = gcd(a,b) >= 0 and x*a + y*b == g.
struct ExtGcd {
  i64 g;
  i64 x;
  i64 y;
};

/// Extended Euclidean algorithm with Bezout coefficients.
ExtGcd ext_gcd(i64 a, i64 b);

}  // namespace vdep::checked
