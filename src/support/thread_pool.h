// A minimal fixed-size thread pool for DOALL execution.
//
// Design follows the C++ Core Guidelines concurrency rules: threads are
// created once and reused (CP.41), tasks are value closures (CP.31), waiting
// is always condition-based (CP.42), and the pool joins its workers on
// destruction (CP.23/CP.26 - no detached threads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/checked.h"

namespace vdep {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs body(chunk) for every chunk index in [0, num_chunks) across the
  /// pool and blocks until all chunks finished. Exceptions thrown by the
  /// body are captured and the first one is rethrown on the caller thread.
  void parallel_for(std::int64_t num_chunks,
                    const std::function<void(std::int64_t)>& body);

  /// Process-wide pool sized to the hardware concurrency; created on first
  /// use and reused for every DOALL afterwards (CP.41).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace vdep
