// Error hierarchy and precondition checking for the vdep library.
//
// Every precondition violation throws; exact integer arithmetic that would
// overflow throws OverflowError instead of silently wrapping (signed overflow
// is UB in C++, and a wrapped lattice coefficient would corrupt legality
// proofs downstream).
#pragma once

#include <stdexcept>
#include <string>

namespace vdep {

/// Base class of every error raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A checked arithmetic operation exceeded the range of int64_t.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// A caller violated a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An internal invariant failed (library bug, not user error).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Input program is outside the supported model (e.g. non-affine subscript).
class UnsupportedError : public Error {
 public:
  explicit UnsupportedError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* cond, const char* file, int line,
                                     const std::string& msg);
[[noreturn]] void throw_internal(const char* cond, const char* file, int line,
                                 const std::string& msg);
}  // namespace detail

}  // namespace vdep

/// Precondition check: user-facing, always on.
#define VDEP_REQUIRE(cond, msg)                                                \
  do {                                                                         \
    if (!(cond)) ::vdep::detail::throw_precondition(#cond, __FILE__, __LINE__, \
                                                    (msg));                    \
  } while (0)

/// Internal invariant check: always on (analysis is not the hot path;
/// execution kernels avoid this macro).
#define VDEP_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) ::vdep::detail::throw_internal(#cond, __FILE__, __LINE__, \
                                                (msg));                    \
  } while (0)
