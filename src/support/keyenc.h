// Length-prefixed field encoding for composite cache/memo keys.
//
// Every cache key in the library (structural fingerprints, codegen/jit memo
// keys, the on-disk artifact cache) is a concatenation of fields, several of
// which are free-form text the user controls: array names, kernel names,
// compiler driver strings, extra flags. Joining those with separator
// characters is unsound — a name containing the separator forges field
// boundaries, and two different inputs collide on one key (worst case: one
// request is served another request's native kernel). Encoding every
// free-form field as `<decimal length>:<bytes>` makes the concatenation
// injective: no byte of a field can be confused with framing, whatever the
// field contains.
//
// Fixed-alphabet fields (rendered integers, single-character tags emitted by
// the library itself) cannot contain framing bytes and do not need the
// prefix; only strings that originate outside the key builder do.
#pragma once

#include <charconv>
#include <string>
#include <string_view>

namespace vdep::keyenc {

/// Appends `field` as `<decimal length>:<bytes>`. The encoding is a prefix
/// code, so appending fields in sequence is injective over the sequence.
inline void append_field(std::string* out, std::string_view field) {
  char buf[24];
  char* end = std::to_chars(buf, buf + sizeof(buf), field.size()).ptr;
  out->append(buf, end);
  out->push_back(':');
  out->append(field.data(), field.size());
}

/// Convenience: encode a sequence of fields into one canonical key.
template <typename... Fields>
std::string encode(const Fields&... fields) {
  std::string out;
  (append_field(&out, std::string_view(fields)), ...);
  return out;
}

}  // namespace vdep::keyenc
