// vdep-cache: management CLI over the on-disk artifact cache (src/cache/).
//
// The cache directory comes from --dir or $VDEP_CACHE_DIR — the same
// resolution the compile pipeline uses, so what this tool inspects is
// exactly what a Compiler/ToolchainCompiler pointed at the directory sees.
//
//   $ vdep-cache stats            # entry counts, byte usage, cap
//   $ vdep-cache verify           # re-validate every stored artifact
//   $ vdep-cache clear            # remove every entry
//
// `verify` re-opens each envelope, re-checks each kernel .so against the
// digest in its .meta, and re-proves the Theorem-1 legality certificate of
// each stored plan from its stored PDM — the same checks a cache reader
// performs on a probe, applied to the whole directory at once.
//
// Exit status: 0 success (for verify: everything validated), 1 verify found
// bad artifacts, 2 usage error or the directory could not be opened.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cache/disk_cache.h"

namespace {

constexpr const char* kUsage =
    "usage: vdep-cache [--dir <path>] <stats|verify|clear>\n"
    "  --dir <path>   cache root (default: $VDEP_CACHE_DIR)\n";

double mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string command;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--dir") {
      if (a + 1 >= argc) {
        std::fputs(kUsage, stderr);
        return 2;
      }
      dir = argv[++a];
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (command.empty()) {
      command = arg;
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (command != "stats" && command != "verify" && command != "clear") {
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (dir.empty()) {
    const char* env = std::getenv("VDEP_CACHE_DIR");
    if (env && *env) dir = env;
  }
  if (dir.empty()) {
    std::fputs("vdep-cache: no cache directory (--dir or $VDEP_CACHE_DIR)\n",
               stderr);
    return 2;
  }

  std::shared_ptr<vdep::cache::DiskCache> cache =
      vdep::cache::DiskCache::open(dir);
  if (!cache) {
    std::fprintf(stderr, "vdep-cache: cannot open cache at %s\n", dir.c_str());
    return 2;
  }

  if (command == "stats") {
    vdep::cache::DiskUsage u = cache->usage();
    std::printf("cache root:       %s\n", cache->dir().c_str());
    std::printf("plan entries:     %zu\n", u.plan_entries);
    std::printf("kernel entries:   %zu\n", u.kernel_entries);
    std::printf("negative entries: %zu\n", u.negative_entries);
    std::printf("bytes used:       %llu (%.2f MiB)\n",
                static_cast<unsigned long long>(u.bytes), mib(u.bytes));
    std::printf("byte cap:         %llu (%.2f MiB)\n",
                static_cast<unsigned long long>(cache->max_bytes()),
                mib(cache->max_bytes()));
    return 0;
  }

  if (command == "clear") {
    std::size_t removed = cache->clear();
    std::printf("removed %zu file%s\n", removed, removed == 1 ? "" : "s");
    return 0;
  }

  // verify
  vdep::cache::VerifyReport report = cache->verify();
  std::printf("plans ok:   %zu\n", report.plans_ok);
  std::printf("kernels ok: %zu\n", report.kernels_ok);
  if (report.ok()) {
    std::printf("all artifacts validated\n");
    return 0;
  }
  std::printf("bad artifacts: %zu\n", report.bad.size());
  for (const std::string& p : report.bad)
    std::printf("  %s\n", p.c_str());
  return 1;
}
