#!/usr/bin/env bash
# Runs the always-built JSON benches and scrapes their line-protocol output
# into one BENCH_runtime.json (one JSON object per line) — the per-PR perf
# trajectory artifact committed to the repo and uploaded by CI.
#
#   tools/bench_scrape.sh [build-dir] [output-file]
set -euo pipefail

build_dir=${1:-build}
out=${2:-BENCH_runtime.json}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

"$build_dir"/bench_runtime_throughput | tee /dev/stderr >> "$tmp"
"$build_dir"/bench_plan_cache | tee /dev/stderr >> "$tmp"
"$build_dir"/bench_jit_speedup | tee /dev/stderr >> "$tmp"
"$build_dir"/bench_batch_serving | tee /dev/stderr >> "$tmp"

grep '^{' "$tmp" > "$out"
echo "wrote $(wc -l < "$out") json lines to $out" >&2
