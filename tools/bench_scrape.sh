#!/usr/bin/env bash
# Runs the always-built JSON benches and scrapes their line-protocol output
# into one BENCH_runtime.json (one JSON object per line) — the per-PR perf
# trajectory artifact committed to the repo and uploaded by CI.
#
#   tools/bench_scrape.sh [build-dir] [output-file]
set -euo pipefail

build_dir=${1:-build}
out=${2:-BENCH_runtime.json}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# First row: host metadata, so every committed BENCH_runtime.json records
# where its numbers came from. Best-effort fields degrade to "unknown"
# (e.g. no git in a tarball checkout) rather than failing the scrape.
cxx=$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' \
      "$build_dir"/CMakeCache.txt 2>/dev/null | head -n1)
cxx_id=$("${cxx:-c++}" --version 2>/dev/null | head -n1 || echo unknown)
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
             "$build_dir"/CMakeCache.txt 2>/dev/null | head -n1)
git_sha=$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null \
          || echo unknown)
hw=$(nproc 2>/dev/null || echo 0)
# Topology fields (sysfs; degrade to 0 where the host exposes nothing —
# e.g. containers without /sys/devices/system/node).
cpu_sysfs=/sys/devices/system/cpu
sockets=$(cat "$cpu_sysfs"/cpu*/topology/physical_package_id 2>/dev/null \
          | sort -u | wc -l)
numa_nodes=$(ls -d /sys/devices/system/node/node* 2>/dev/null | wc -l)
# Physical cores = unique (package, core) pairs; core ids alone repeat
# across sockets.
cores=$(for c in "$cpu_sysfs"/cpu[0-9]*; do
  [ -r "$c/topology/core_id" ] || continue
  echo "$(cat "$c/topology/physical_package_id" 2>/dev/null || echo 0):$(cat "$c/topology/core_id")"
done | sort -u | wc -l)
smt=0
if [ "${cores:-0}" -gt 0 ] && [ "$hw" -gt 0 ]; then
  smt=$(( (hw + cores - 1) / cores ))
fi
printf '{"bench":"host","compiler":"%s","build_type":"%s","git_sha":"%s","hw_threads":%s,"sockets":%s,"numa_nodes":%s,"cores":%s,"smt":%s}\n' \
  "${cxx_id//\"/\\\"}" "${build_type:-unknown}" "$git_sha" "$hw" \
  "${sockets:-0}" "${numa_nodes:-0}" "${cores:-0}" "$smt" >> "$tmp"

"$build_dir"/bench_runtime_throughput | tee /dev/stderr >> "$tmp"
# Gate rows (best-of-3 skewed speedups, or the structured gate_skip row on
# small hosts) join the trajectory; pass/fail is the bench-smoke CI step's
# job, not the scrape's.
("$build_dir"/bench_runtime_throughput --gate || true) | tee /dev/stderr >> "$tmp"
"$build_dir"/bench_plan_cache | tee /dev/stderr >> "$tmp"
"$build_dir"/bench_jit_speedup | tee /dev/stderr >> "$tmp"
# Partition-gate lines are scraped for the trajectory; the pass/fail bar
# itself is enforced by the dedicated jit-smoke CI step, so a miss here
# only shows up in the data, it doesn't abort the scrape.
("$build_dir"/bench_jit_speedup --partition-gate || true) | tee /dev/stderr >> "$tmp"
# Cold-start rows likewise: the zero-cc warm-start bar is the cache-smoke CI
# step's job; the scrape just records the cold/warm latency trajectory.
("$build_dir"/bench_jit_speedup --cold-start-gate || true) | tee /dev/stderr >> "$tmp"
"$build_dir"/bench_batch_serving | tee /dev/stderr >> "$tmp"
"$build_dir"/bench_inspector | tee /dev/stderr >> "$tmp"

grep '^{' "$tmp" > "$out"
echo "wrote $(wc -l < "$out") json lines to $out" >&2
