// vdep-verify: static kernel-verifier driver for the steady-state
// partitioning pass.
//
// Reads a loop program in the mini-DSL, runs the full compile pipeline up
// to codegen (parse -> PDM -> Algorithm 1 plan -> FM rewrite), then the
// analysis stack on its own: interval hulls, partition derivation, the
// partitioned-TU emission and every KernelVerifier obligation — and prints
// the verdict the JIT would act on. No toolchain is invoked and nothing
// executes; this is the auditing view of jit::ToolchainCompiler's decision.
//
//   $ ./vdep-verify loop.vdep            # report the verdict
//   $ ./vdep-verify --emit loop.vdep     # also print the partitioned C
//   $ ./vdep-verify --inject-fault x.vdep  # plant a steady-region clamp;
//                                          # the verifier must reject it
//
// Exit status: 0 the partitioned kernel verified, 1 it was rejected (the
// JIT would fall back to the clamped kernel), 2 usage/parse/pipeline error,
// 3 partitioning was not attempted (no DOALL prefix) or analysis refused.
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/interval.h"
#include "analysis/kernel_verifier.h"
#include "analysis/loop_partition.h"
#include "api/vdep.h"
#include "codegen/emit_c.h"
#include "codegen/rewrite.h"

namespace {

constexpr const char* kUsage =
    "usage: vdep-verify [--emit] [--inject-fault] <file|->\n";

std::string read_input(const std::string& path) {
  if (path == "-") {
    std::ostringstream os;
    os << std::cin.rdbuf();
    return os.str();
  }
  std::ifstream f(path);
  if (!f) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(2);
  }
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool emit = false;
  bool inject_fault = false;
  std::string path;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--emit") {
      emit = true;
    } else if (arg == "--inject-fault") {
      inject_fault = true;
    } else if (arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  std::string source = read_input(path);
  vdep::Compiler compiler;
  vdep::Expected<vdep::CompiledLoop> loop = compiler.compile(source);
  if (!loop) {
    std::cerr << path << ": " << loop.error().message << "\n";
    return 2;
  }

  try {
    const vdep::trans::TransformPlan& plan = loop->plan().transform;
    std::cout << "nest: depth " << loop->nest().depth() << ", DOALL prefix "
              << plan.num_doall << ", partition classes "
              << loop->plan().partition_classes << "\n";
    if (plan.num_doall == 0) {
      std::cout << "partitioning not attempted: no DOALL prefix (the clamped "
                   "kernel has no box loops to split)\n";
      return 3;
    }

    vdep::codegen::TransformedNest tn =
        vdep::codegen::rewrite_nest(loop->nest(), plan);
    std::optional<vdep::analysis::LoopPartition> part =
        vdep::analysis::analyze_partition(tn.nest, plan.num_doall);
    if (!part) {
      std::cout << "partition analysis refused (interval overflow or hull at "
                   "the int64 limits); the JIT keeps the clamped kernel\n";
      return 3;
    }

    const std::vector<std::string> names = tn.nest.index_names();
    std::cout << "\n-- interval hulls (transformed DOALL prefix) --\n";
    for (int k = 0; k < part->num_levels; ++k)
      std::cout << "  " << names[static_cast<std::size_t>(k)] << ": "
                << part->env.level_hull(k).to_string()
                << (part->level_static[static_cast<std::size_t>(k)]
                        ? "  (statically steady)"
                        : "")
                << "\n";
    std::cout << "\n-- partition --\n" << part->to_string(names) << "\n";

    std::string tu = vdep::codegen::emit_c_partitioned_range_kernel(
        loop->nest(), plan, *part, "vdep_range_kernel", inject_fault);
    vdep::analysis::VerifierReport rep =
        vdep::analysis::verify_partitioned_kernel(loop->nest(), tn.nest,
                                                  plan.num_doall, *part, tu);

    std::cout << "\n-- kernel verifier --\n" << rep.to_string() << "\n";
    if (emit) std::cout << "\n=== partitioned C ===\n" << tu;
    return rep.ok ? 0 : 1;
  } catch (const vdep::Error& e) {
    std::cerr << "pipeline error: " << e.what() << "\n";
    return 2;
  }
}
