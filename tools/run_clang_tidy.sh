#!/usr/bin/env bash
# Static-lint leg: clang-tidy (bugprone-*, performance-*, concurrency-* —
# see .clang-tidy) over every TU under src/, driven by the
# compile_commands.json CMake exports (CMAKE_EXPORT_COMPILE_COMMANDS is on
# in CMakeLists.txt). Warnings are errors; the exit code is the gate.
#
#   tools/run_clang_tidy.sh [build-dir]
#
# Hosts without clang-tidy (e.g. gcc-only containers) exit 0 with a note so
# local builds aren't blocked; CI installs clang-tidy and enforces.
set -euo pipefail

build_dir=${1:-build}
tidy=${CLANG_TIDY:-clang-tidy}

if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_clang_tidy: $tidy not found; skipping static lint" >&2
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing" \
       "(configure with cmake -B $build_dir first)" >&2
  exit 1
fi

root=$(cd "$(dirname "$0")/.." && pwd)
mapfile -t files < <(find "$root/src" -name '*.cpp' | sort)
echo "run_clang_tidy: ${#files[@]} TUs under src/," \
     "$("$tidy" --version | sed -n 's/.*version/clang-tidy/p' | head -n1)" >&2

# xargs fans the TUs over the cores; any failing invocation (WarningsAsErrors
# fires) makes xargs exit non-zero, which -e propagates.
printf '%s\n' "${files[@]}" |
  xargs -P "$(nproc 2>/dev/null || echo 2)" -n 4 \
        "$tidy" -p "$build_dir" --quiet
echo "run_clang_tidy: clean" >&2
