// Tests for the related-work baselines (Table 1 regeneration machinery):
// every method must produce verified-legal schedules, respect its stated
// applicability limits, and lose to the PDM method exactly where the paper
// says it does.
#include <gtest/gtest.h>

#include "baselines/baseline.h"
#include "core/suite.h"

namespace vdep::baselines {
namespace {

using core::example41;
using core::example42;

TEST(Serial, AlwaysApplicableWidthOne) {
  Outcome o = run_serial(example41(4));
  EXPECT_TRUE(o.applicable);
  EXPECT_EQ(o.width, 1);
  EXPECT_EQ(o.steps, 9 * 9);
  EXPECT_TRUE(o.verified);
}

TEST(UniformUnimodular, NotApplicableOnVariableDistances) {
  EXPECT_FALSE(run_uniform_unimodular(example41(4)).applicable);
  EXPECT_FALSE(run_uniform_unimodular(example42(4)).applicable);
}

TEST(UniformUnimodular, WavefrontOnClassicStencil) {
  Outcome o = run_uniform_unimodular(core::uniform_wavefront(6));
  ASSERT_TRUE(o.applicable);
  EXPECT_TRUE(o.verified);
  // Anti-diagonal wavefront: 2n+1 phases over the (n+1)^2 square.
  EXPECT_EQ(o.steps, 13);
  EXPECT_EQ(o.width, 7);  // widest anti-diagonal
}

TEST(UniformUnimodular, DependenceFreeLoopIsOnePhase) {
  Outcome o = run_uniform_unimodular(core::parity_independent(5));
  ASSERT_TRUE(o.applicable);
  EXPECT_EQ(o.steps, 1);
  EXPECT_EQ(o.width, 36);
}

TEST(UniformPartitioning, BlockedLoopGetsFourClasses) {
  Outcome o = run_uniform_partitioning(core::uniform_blocked(7));
  ASSERT_TRUE(o.applicable);
  EXPECT_TRUE(o.verified);
  EXPECT_TRUE(o.coarse_grain);
  EXPECT_EQ(o.width, 4);  // lattice {(2,0),(0,2)}: det 4
}

TEST(UniformPartitioning, NotApplicableOnVariableDistances) {
  EXPECT_FALSE(run_uniform_partitioning(example41(4)).applicable);
  EXPECT_FALSE(run_uniform_partitioning(example42(4)).applicable);
}

TEST(DirectionVectors, SequentialChainStaysSerial) {
  Outcome o = run_direction_vector_method(core::sequential_chain(9));
  ASSERT_TRUE(o.applicable);
  EXPECT_TRUE(o.verified);
  EXPECT_EQ(o.width, 1);
  EXPECT_EQ(o.steps, 10);
}

TEST(DirectionVectors, ZeroColumnLoopKeepsInnerDoall) {
  Outcome o = run_direction_vector_method(core::zero_column(6));
  ASSERT_TRUE(o.applicable);
  EXPECT_TRUE(o.verified);
  EXPECT_EQ(o.steps, 7);   // i1 sequential
  EXPECT_EQ(o.width, 7);   // i2 parallel
}

TEST(DirectionVectors, VariableDistancesLoseToPdm) {
  // On example 4.1 direction vectors see (<,>) and (=,?)-like patterns;
  // level analysis keeps both loops sequential while the PDM finds
  // (4N+1) x 2 independent items.
  Outcome dv = run_direction_vector_method(example41(4));
  Outcome pdm = run_pdm_method(example41(4));
  ASSERT_TRUE(dv.applicable);
  ASSERT_TRUE(pdm.applicable);
  EXPECT_TRUE(dv.verified);
  EXPECT_TRUE(pdm.verified);
  EXPECT_GT(pdm.width, dv.width);
  EXPECT_LT(pdm.steps, dv.steps);
}

TEST(Hyperplane, SchedulesRankOneVariableLoop) {
  // Example 4.1 distances are multiples of (2,-2): pi = (1,0)-ish schedules
  // exist (observed distances have positive first component).
  Outcome o = run_hyperplane_schedule(example41(4));
  EXPECT_TRUE(o.applicable);
  EXPECT_TRUE(o.verified);
  EXPECT_GT(o.width, 1);
}

TEST(Hyperplane, DependenceFree) {
  Outcome o = run_hyperplane_schedule(core::parity_independent(4));
  ASSERT_TRUE(o.applicable);
  EXPECT_EQ(o.steps, 1);
}

TEST(PdmMethod, Example41Shape) {
  Outcome o = run_pdm_method(example41(5));
  ASSERT_TRUE(o.applicable);
  EXPECT_TRUE(o.verified);
  EXPECT_TRUE(o.coarse_grain);
  EXPECT_GE(o.width, 2 * (4 * 5 + 1) - 2);  // ~2 classes per doall value
  EXPECT_LE(o.steps, 2 * 5 + 1);
}

TEST(PdmMethod, Example42DetFour) {
  Outcome o = run_pdm_method(example42(5));
  ASSERT_TRUE(o.applicable);
  EXPECT_EQ(o.width, 4);
  EXPECT_TRUE(o.verified);
}

TEST(PdmMethod, NeverWorseThanSerialAcrossSuite) {
  for (const core::NamedNest& c : core::paper_suite(4)) {
    Outcome serial = run_serial(c.nest);
    Outcome pdm = run_pdm_method(c.nest);
    EXPECT_TRUE(pdm.verified) << c.name;
    EXPECT_LE(pdm.steps, serial.steps) << c.name;
    EXPECT_GE(pdm.width, serial.width) << c.name;
  }
}

TEST(AllMethods, RunAcrossSuiteAndStayLegal) {
  for (const core::NamedNest& c : core::paper_suite(3)) {
    std::vector<Outcome> outs = run_all_methods(c.nest);
    ASSERT_EQ(outs.size(), 6u) << c.name;
    for (const Outcome& o : outs) {
      if (o.applicable) {
        EXPECT_TRUE(o.verified) << c.name << " " << o.method;
      }
    }
    // The PDM row is last and always applicable.
    EXPECT_EQ(outs.back().method, "PDM (this work)");
    EXPECT_TRUE(outs.back().applicable);
  }
}

TEST(AllMethods, TableFormatting) {
  std::string table = format_table("example_4_1", run_all_methods(example41(3)));
  EXPECT_NE(table.find("PDM (this work)"), std::string::npos);
  EXPECT_NE(table.find("Banerjee90"), std::string::npos);
  EXPECT_NE(table.find("not applicable"), std::string::npos);
}

}  // namespace
}  // namespace vdep::baselines
