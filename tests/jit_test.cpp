// Tests for the JIT backend: toolchain discovery, emitted-C round trips
// (bit-identical stores vs the interpreter across the paper suite at
// 1/2/8 threads), graceful no-toolchain fallback, and the per-bounds .so
// memoization in the PlanArtifact.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "api/vdep.h"
#include "core/suite.h"
#include "dep/pdm.h"
#include "exec/interpreter.h"
#include "exec/kernel.h"
#include "jit/toolchain.h"
#include "runtime/stream_executor.h"
#include "trans/planner.h"

namespace vdep {
namespace {

using intlin::i64;

trans::TransformPlan plan_for(const loopir::LoopNest& nest) {
  return trans::plan_transform(dep::compute_pdm(nest));
}

exec::IterBox box_of(const runtime::TaskDescriptor& t) {
  exec::IterBox box;
  box.lo = t.lo;
  box.hi = t.hi;
  box.ndims = t.ndims;
  box.class_lo = t.class_lo;
  box.class_hi = t.class_hi;
  return box;
}

bool have_toolchain() { return jit::discover_toolchain().has_value(); }

/// Restores an environment variable on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_ = false;
};

// ------------------------------------------------------------- discovery

TEST(Toolchain, DiscoversACompilerOnThisHost) {
  // The development / CI environments always carry cc or gcc; this test is
  // the canary that keeps the rest of the file honest.
  ASSERT_TRUE(have_toolchain());
}

TEST(Toolchain, ExplicitPreferredCompilerWins) {
  auto def = jit::discover_toolchain();
  ASSERT_TRUE(def.has_value());
  auto again = jit::discover_toolchain(*def);  // absolute path resolves
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*def, *again);
  EXPECT_FALSE(jit::discover_toolchain("definitely-not-a-compiler-xyz"));
}

TEST(Toolchain, VdepCcEnvOverrideIsHonoured) {
  auto def = jit::discover_toolchain();
  ASSERT_TRUE(def.has_value());
  ScopedEnv cc("VDEP_CC", def->c_str());
  auto found = jit::discover_toolchain();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, *def);
}

// ------------------------------------------------- direct kernel execution

TEST(NativeKernel, RootRectangleMatchesSequentialReference) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  loopir::LoopNest nest = core::example42(24);
  trans::TransformPlan plan = plan_for(nest);
  jit::ToolchainCompiler tc;
  auto kernel = tc.compile(nest, plan);
  ASSERT_TRUE(kernel.has_value()) << kernel.error().to_string();
  EXPECT_NE((*kernel)->source().find("vdep_range_kernel"), std::string::npos);

  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore got = ref;
  exec::run_sequential(nest, ref);

  runtime::StreamExecutor ex(nest, plan, {});
  runtime::TaskDescriptor root = ex.root();
  i64 iters = (*kernel)->execute_range(got, box_of(root));
  EXPECT_EQ(iters, nest.iteration_count());
  EXPECT_TRUE(ref == got);
}

TEST(NativeKernel, DisjointBoxesCoverTheSpaceExactlyOnce) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  loopir::LoopNest nest = core::example41(20);
  trans::TransformPlan plan = plan_for(nest);
  jit::ToolchainCompiler tc;
  auto kernel = tc.compile(nest, plan);
  ASSERT_TRUE(kernel.has_value()) << kernel.error().to_string();

  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore got = ref;
  exec::run_sequential(nest, ref);

  runtime::StreamExecutor ex(nest, plan, {});
  runtime::TaskDescriptor root = ex.root();
  // Split the outer range in two and the class range per cell: four
  // disjoint boxes; executing all of them must equal one root call.
  i64 mid = (root.lo[0] + root.hi[0]) / 2;
  i64 iters = 0;
  for (i64 c = root.class_lo; c < root.class_hi; ++c) {
    runtime::TaskDescriptor low = root, high = root;
    low.hi[0] = mid;
    high.lo[0] = mid + 1;
    low.class_lo = high.class_lo = c;
    low.class_hi = high.class_hi = c + 1;
    iters += (*kernel)->execute_range(got, box_of(low));
    iters += (*kernel)->execute_range(got, box_of(high));
  }
  EXPECT_EQ(iters, nest.iteration_count());
  EXPECT_TRUE(ref == got);
}

TEST(NativeKernel, InnerAxisBoxesRestrictTheScan) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  // Two DOALL dimensions (skewed extents): halving the *inner* axis of the
  // box across two calls must cover the space exactly once — the new ABI's
  // whole point.
  loopir::LoopNest nest = core::skewed_extent(257);
  trans::TransformPlan plan = plan_for(nest);
  jit::ToolchainCompiler tc;
  auto kernel = tc.compile(nest, plan);
  ASSERT_TRUE(kernel.has_value()) << kernel.error().to_string();

  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore got = ref;
  exec::run_sequential(nest, ref);

  runtime::StreamExecutor ex(nest, plan, {});
  runtime::TaskDescriptor root = ex.root();
  ASSERT_EQ(root.ndims, 2);
  runtime::TaskDescriptor low = root, high = root;
  i64 mid = (root.lo[1] + root.hi[1]) / 2;
  low.hi[1] = mid;
  high.lo[1] = mid + 1;
  i64 iters = (*kernel)->execute_range(got, box_of(low)) +
              (*kernel)->execute_range(got, box_of(high));
  EXPECT_EQ(iters, nest.iteration_count());
  EXPECT_TRUE(ref == got);
}

// ---------------------------------------------------- suite round trips

// For every suite nest: JIT-execute through the staged API and require the
// final store bit-identical to the sequential interpreter reference, at 1,
// 2 and 8 worker threads. Sizes stay below the wavefront value-overflow
// threshold; medium sizes get a second pass on the variable-distance
// kernels where class scans are non-trivial.
void roundtrip_suite(i64 n) {
  Compiler compiler;
  for (core::NamedNest& c : core::paper_suite(n)) {
    Expected<CompiledLoop> loop = compiler.compile(c.nest);
    ASSERT_TRUE(loop.has_value()) << c.name << ": " << loop.error().to_string();
    exec::ArrayStore ref(c.nest);
    ref.fill_pattern();
    exec::ArrayStore init = ref;
    exec::run_sequential(c.nest, ref);
    for (std::size_t threads : {1u, 2u, 8u}) {
      exec::ArrayStore got = init;
      ExecPolicy policy;
      policy.threads(threads).backend(ExecBackend::kJit);
      Expected<ExecReport> rep = loop->execute(policy, got);
      ASSERT_TRUE(rep.has_value()) << c.name << ": " << rep.error().to_string();
      EXPECT_TRUE(rep->jit) << c.name << " fell back at " << threads
                            << " threads";
      EXPECT_EQ(rep->iterations, c.nest.iteration_count()) << c.name;
      EXPECT_TRUE(ref == got)
          << c.name << " diverged from sequential at " << threads
          << " threads (n=" << n << ")";
    }
  }
}

TEST(JitRoundTrip, WholeSuiteSmall) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  roundtrip_suite(6);
}

TEST(JitRoundTrip, WholeSuiteMedium) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  roundtrip_suite(20);
}

TEST(JitRoundTrip, CheckVerifiesJitExecution) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  Compiler compiler;
  auto loop = compiler.compile(core::example42(30));
  ASSERT_TRUE(loop.has_value());
  ExecPolicy policy;
  policy.threads(4).backend(ExecBackend::kJit);
  auto rep = loop->check(policy);
  ASSERT_TRUE(rep.has_value()) << rep.error().to_string();
  EXPECT_TRUE(rep->verified);
  EXPECT_TRUE(rep->jit);
}

// --------------------------------------------------- no-toolchain fallback

TEST(JitFallback, ScrubbedPathDegradesGracefully) {
  // With PATH scrubbed and no $VDEP_CC, discovery must fail cleanly...
  ScopedEnv path("PATH", "");
  ScopedEnv cc("VDEP_CC", nullptr);
  EXPECT_FALSE(jit::discover_toolchain());

  Compiler compiler;
  auto loop = compiler.compile(core::example42(12));
  ASSERT_TRUE(loop.has_value());

  // ...jit() must surface an inspectable kUnsupported error...
  auto kernel = loop->jit();
  ASSERT_FALSE(kernel.has_value());
  EXPECT_EQ(kernel.error().kind, ErrorKind::kUnsupported);

  // ...and execute(kJit) must fall back to the scan path, still correct.
  exec::ArrayStore ref(loop->nest());
  ref.fill_pattern();
  exec::ArrayStore got = ref;
  exec::run_sequential(loop->nest(), ref);
  ExecPolicy policy;
  policy.threads(2).backend(ExecBackend::kJit);
  auto rep = loop->execute(policy, got);
  ASSERT_TRUE(rep.has_value()) << rep.error().to_string();
  EXPECT_FALSE(rep->jit);
  EXPECT_TRUE(ref == got);
}

TEST(JitFallback, RangeProofRejectionFallsBackNotCrashes) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  // Triangular space, A sized for the real access set [0, n]: the
  // rectangular-hull proof sees i - j in [-n, n] and must refuse, so the
  // nest never reaches the toolchain — but every actual access is legal,
  // and the interpreter scan path executes it fine.
  const i64 n = 12;
  loopir::LoopNestBuilder b;
  b.loop("i", 0, n);
  b.loop("j", loopir::Bound(loopir::AffineExpr::constant(2, 0)),
         loopir::Bound(loopir::AffineExpr(intlin::Vec{1, 0}, 0)));
  b.array("A", {{0, n}});
  b.assign(b.ref("A", {b.affine({1, -1}, 0)}),
           loopir::Expr::add(b.read("A", {b.affine({1, -1}, 0)}),
                             loopir::Expr::constant(1)));
  loopir::LoopNest tri = b.build();
  EXPECT_THROW(exec::prove_subscript_ranges(tri), UnsupportedError);

  Compiler compiler;
  auto loop = compiler.compile(tri);
  ASSERT_TRUE(loop.has_value()) << loop.error().to_string();
  auto kernel = loop->jit();
  ASSERT_FALSE(kernel.has_value());
  EXPECT_EQ(kernel.error().kind, ErrorKind::kUnsupported);

  exec::ArrayStore ref(tri);
  ref.fill_pattern();
  exec::ArrayStore got = ref;
  exec::run_sequential(tri, ref);
  ExecPolicy policy;
  policy.threads(2).backend(ExecBackend::kJit);
  auto rep = loop->execute(policy, got);
  ASSERT_TRUE(rep.has_value()) << rep.error().to_string();
  EXPECT_FALSE(rep->jit);
  EXPECT_TRUE(ref == got);
}

// ------------------------------------------------------- memoized  .so

TEST(JitMemo, SameBoundsReuseTheLoadedKernel) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  Compiler compiler;
  auto a = compiler.compile(core::example42(16));
  ASSERT_TRUE(a.has_value());
  auto k1 = a->jit();
  ASSERT_TRUE(k1.has_value()) << k1.error().to_string();
  auto k2 = a->jit();
  ASSERT_TRUE(k2.has_value());
  // Same handle, same bounds: the identical loaded object.
  EXPECT_EQ(k1->get(), k2->get());

  // Recompiling the same structure is a plan-cache hit sharing the same
  // artifact, so the kernel memo is shared too.
  CacheStats before = compiler.cache_stats();
  auto b = compiler.compile(core::example42(16));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(compiler.cache_stats().hits, before.hits + 1);
  auto k3 = b->jit();
  ASSERT_TRUE(k3.has_value());
  EXPECT_EQ(k1->get(), k3->get());
}

TEST(JitMemo, NewBoundsCompileANewKernelWithoutReanalysis) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  Compiler compiler;
  auto small = compiler.compile(core::example42(10));
  ASSERT_TRUE(small.has_value());
  auto k_small = small->jit();
  ASSERT_TRUE(k_small.has_value());

  CacheStats before = compiler.cache_stats();
  auto big = small->at(core::example42(40));
  ASSERT_TRUE(big.has_value());
  // at() rebinds with zero compiles — misses unchanged.
  EXPECT_EQ(compiler.cache_stats().misses, before.misses);

  auto k_big = big->jit();
  ASSERT_TRUE(k_big.has_value()) << k_big.error().to_string();
  EXPECT_NE(k_small->get(), k_big->get());  // bounds differ, .so differs

  // And the new-bounds kernel is immediately correct.
  exec::ArrayStore ref(big->nest());
  ref.fill_pattern();
  exec::ArrayStore got = ref;
  exec::run_sequential(big->nest(), ref);
  ExecPolicy policy;
  policy.threads(4).backend(ExecBackend::kJit);
  auto rep = big->execute(policy, got);
  ASSERT_TRUE(rep.has_value());
  EXPECT_TRUE(rep->jit);
  EXPECT_TRUE(ref == got);

  // Second jit() at the new bounds: served from the memo.
  auto k_big2 = big->jit();
  ASSERT_TRUE(k_big2.has_value());
  EXPECT_EQ(k_big->get(), k_big2->get());
}

TEST(JitMemo, ArrayDimsSeparateKernelsOfOneFingerprint) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  // Same accesses, same loop bounds, different array dims: the structural
  // fingerprint deliberately collides (analysis is dim-independent), so
  // both compiles share one PlanArtifact — but flattening strides differ,
  // so the codegen/jit memos must not. Regression for a silent
  // wrong-strides reuse (worst case: out-of-bounds native writes).
  auto make = [](i64 cols) {
    loopir::LoopNestBuilder b;
    b.loop("i", 0, 9).loop("j", 0, 9);
    b.array("A", {{0, 9}, {0, cols}});
    b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
             loopir::Expr::add(b.read("A", {b.idx(0), b.idx(1)}),
                               loopir::Expr::constant(1)));
    return b.build();
  };
  loopir::LoopNest narrow = make(9), wide = make(19);

  Compiler compiler;
  auto a = compiler.compile(narrow);
  auto b = compiler.compile(wide);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a->fingerprint(), b->fingerprint());  // shared artifact

  EXPECT_NE(a->codegen(), b->codegen());  // dims are in the emitted C

  auto ka = a->jit();
  auto kb = b->jit();
  ASSERT_TRUE(ka.has_value()) << ka.error().to_string();
  ASSERT_TRUE(kb.has_value()) << kb.error().to_string();
  EXPECT_NE(ka->get(), kb->get());  // dims separate the .so memo

  for (const loopir::LoopNest* nest : {&narrow, &wide}) {
    const CompiledLoop& loop = nest == &narrow ? *a : *b;
    exec::ArrayStore ref(*nest);
    ref.fill_pattern();
    exec::ArrayStore got = ref;
    exec::run_sequential(*nest, ref);
    ExecPolicy policy;
    policy.threads(2).backend(ExecBackend::kJit);
    auto rep = loop.execute(policy, got);
    ASSERT_TRUE(rep.has_value());
    EXPECT_TRUE(rep->jit);
    EXPECT_TRUE(ref == got);
  }
}

TEST(JitMemo, DeterministicCompileFailureIsMemoizedCheaply) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  Compiler compiler;
  auto loop = compiler.compile(core::example41(8));
  ASSERT_TRUE(loop.has_value());
  jit::JitOptions bad;
  bad.extra_flags = "--definitely-not-a-flag-xyz";
  auto k1 = loop->jit(bad);
  ASSERT_FALSE(k1.has_value());
  EXPECT_EQ(k1.error().kind, ErrorKind::kUnsupported);
  // Second request must come from the failure memo (same error, no new
  // toolchain subprocess — observable here only as the same stable error).
  auto k2 = loop->jit(bad);
  ASSERT_FALSE(k2.has_value());
  EXPECT_EQ(k2.error().message, k1.error().message);
  // And the default options still compile fine on the same artifact.
  auto good = loop->jit();
  EXPECT_TRUE(good.has_value()) << good.error().to_string();
}

TEST(JitMemo, KeepArtifactsExposesTheSharedObjectPath) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  Compiler compiler;
  auto loop = compiler.compile(core::example41(8));
  ASSERT_TRUE(loop.has_value());
  jit::JitOptions keep;
  keep.keep_artifacts = true;
  auto k = loop->jit(keep);
  ASSERT_TRUE(k.has_value()) << k.error().to_string();
  EXPECT_FALSE((*k)->library_path().empty());
  // Default lifecycle unlinks eagerly; the option key separates the memos.
  auto k_default = loop->jit();
  ASSERT_TRUE(k_default.has_value());
  EXPECT_TRUE((*k_default)->library_path().empty());
  EXPECT_NE(k->get(), k_default->get());
}

}  // namespace
}  // namespace vdep
