// Tests for dependence analysis: equation solving, distance lattices, PDM
// construction (paper Section 2), classical tests and direction vectors.
// The two reconstructed paper examples act as ground truth; a brute-force
// conflict scan over small iteration spaces cross-validates the lattices.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dep/classic_tests.h"
#include "dep/dependence.h"
#include "dep/direction.h"
#include "dep/pdm.h"
#include "loopir/builder.h"
#include "support/rng.h"

namespace vdep::dep {
namespace {

using loopir::AffineExpr;
using loopir::ArrayRef;
using loopir::Expr;
using loopir::LoopNest;
using loopir::LoopNestBuilder;

// Paper Example 4.1 (reconstructed, DESIGN.md §3):
//   do i1 = -N,N ; do i2 = -N,N
//     A[3i1-2i2+2, -2i1+3i2-2] = A[i1,i2] + A[i1+2,i2-2] + 1
LoopNest example41(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", -n, n).loop("i2", -n, n);
  i64 ext = 5 * n + 10;
  b.array("A", {{-ext, ext}, {-ext, ext}});
  b.assign(b.ref("A", {b.affine({3, -2}, 2), b.affine({-2, 3}, -2)}),
           Expr::add(Expr::add(b.read("A", {b.idx(0), b.idx(1)}),
                               b.read("A", {b.affine({1, 0}, 2),
                                            b.affine({0, 1}, -2)})),
                     Expr::constant(1)));
  return b.build();
}

// Paper Example 4.2 (reconstructed, DESIGN.md §3):
//   do i1 = -N,N ; do i2 = -N,N
//     A[i1-2i2+4] = A[i1-2i2] + 1
//     B[i1,i2]    = A[i1-2i2+8]
LoopNest example42(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", -n, n).loop("i2", -n, n);
  i64 ext = 3 * n + 10;
  b.array("A", {{-ext, ext}});
  b.array("B", {{-n, n}, {-n, n}});
  b.assign(b.ref("A", {b.affine({1, -2}, 4)}),
           Expr::add(b.read("A", {b.affine({1, -2}, 0)}), Expr::constant(1)));
  b.assign(b.ref("B", {b.idx(0), b.idx(1)}),
           b.read("A", {b.affine({1, -2}, 8)}));
  return b.build();
}

// Uniform-distance loop: A[i1+1, i2+2] = A[i1, i2] (constant d = (1,2)).
LoopNest uniform_nest(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", 0, n).loop("i2", 0, n);
  b.array("A", {{-2, n + 2}, {-2, n + 2}});
  b.assign(b.ref("A", {b.affine({1, 0}, 1), b.affine({0, 1}, 2)}),
           b.read("A", {b.idx(0), b.idx(1)}));
  return b.build();
}

// ----------------------------------------------------------- solve_pair

TEST(SolvePair, UniformDistanceIsConstant) {
  LoopNest nest = uniform_nest(10);
  auto acc = nest.accesses();
  PairDependence s = solve_pair(acc[0].ref, acc[1].ref);
  ASSERT_TRUE(s.exists);
  EXPECT_TRUE(s.is_uniform());
  // Constant distance (1,2): write at i touches what j = i + (1,2) reads.
  EXPECT_TRUE(s.admits_distance(Vec{1, 2}));
  EXPECT_FALSE(s.admits_distance(Vec{1, 1}));
  EXPECT_FALSE(s.admits_distance(Vec{2, 4}));
}

TEST(SolvePair, Example41FlowHasEvenMultiplesOf1m1) {
  LoopNest nest = example41(10);
  auto acc = nest.accesses();
  ASSERT_EQ(acc.size(), 3u);
  PairDependence s = solve_pair(acc[0].ref, acc[1].ref);  // write vs A[i1,i2]
  ASSERT_TRUE(s.exists);
  EXPECT_FALSE(s.is_uniform());
  for (i64 k = -4; k <= 4; ++k)
    EXPECT_TRUE(s.admits_distance(Vec{2 * k, -2 * k})) << k;
  EXPECT_FALSE(s.admits_distance(Vec{1, -1}));
  EXPECT_FALSE(s.admits_distance(Vec{3, -3}));
  EXPECT_FALSE(s.admits_distance(Vec{2, 2}));
  EXPECT_EQ(s.pdm_lattice().basis(), Mat::from_rows({{2, -2}}));
}

TEST(SolvePair, Example41SelfOutputOnlyZero) {
  LoopNest nest = example41(10);
  auto acc = nest.accesses();
  PairDependence s = solve_pair(acc[0].ref, acc[0].ref);
  ASSERT_TRUE(s.exists);        // d = 0 (same iteration) always solves
  EXPECT_TRUE(s.is_uniform());  // nonsingular linear part: d = 0 only
  EXPECT_TRUE(intlin::is_zero(s.offset));
  EXPECT_EQ(s.pdm_lattice().rank(), 0);
}

TEST(SolvePair, Example42FlowLattice) {
  LoopNest nest = example42(10);
  auto acc = nest.accesses();
  // acc[0] = write A[i1-2i2+4], acc[1] = read A[i1-2i2].
  PairDependence s = solve_pair(acc[0].ref, acc[1].ref);
  ASSERT_TRUE(s.exists);
  EXPECT_FALSE(s.is_uniform());
  // d1 - 2 d2 = 4: (4,0), (6,1), (2,-1), (0,-2) are all real distances.
  EXPECT_TRUE(s.admits_distance(Vec{4, 0}));
  EXPECT_TRUE(s.admits_distance(Vec{6, 1}));
  EXPECT_TRUE(s.admits_distance(Vec{2, -1}));
  EXPECT_TRUE(s.admits_distance(Vec{0, -2}));
  EXPECT_FALSE(s.admits_distance(Vec{1, 0}));
  EXPECT_FALSE(s.admits_distance(Vec{3, 0}));
  EXPECT_EQ(s.pdm_lattice().basis(), Mat::from_rows({{2, 1}, {0, 2}}));
}

TEST(SolvePair, IndependentByParity) {
  // A[2i] vs A[2j+1]: no integer solution.
  ArrayRef w{"A", {AffineExpr(Vec{2}, 0)}};
  ArrayRef r{"A", {AffineExpr(Vec{2}, 1)}};
  PairDependence s = solve_pair(w, r);
  EXPECT_FALSE(s.exists);
}

TEST(SolvePair, RejectsMismatchedArrays) {
  ArrayRef a{"A", {AffineExpr(Vec{1}, 0)}};
  ArrayRef b{"B", {AffineExpr(Vec{1}, 0)}};
  EXPECT_THROW(solve_pair(a, b), PreconditionError);
}

// ----------------------------------------------------- brute-force check

// Every pair of iterations touching a common element must have a distance
// admitted by the solver; and sampled admitted small distances must appear
// for *some* iteration pair inside bounds (exactness both ways).
void cross_validate(const LoopNest& nest) {
  auto acc = nest.accesses();
  auto iters = nest.iterations();
  for (std::size_t x = 0; x < acc.size(); ++x) {
    for (std::size_t y = x; y < acc.size(); ++y) {
      if (acc[x].ref.array != acc[y].ref.array) continue;
      if (!acc[x].is_write && !acc[y].is_write) continue;
      PairDependence s = solve_pair(acc[x].ref, acc[y].ref);
      std::set<Vec> seen;
      for (const Vec& i : iters) {
        Vec ei = acc[x].ref.element_at(i);
        for (const Vec& j : iters) {
          if (acc[y].ref.element_at(j) == ei) {
            ASSERT_TRUE(s.exists);
            Vec d = intlin::sub(j, i);
            EXPECT_TRUE(s.admits_distance(d))
                << "missed distance " << intlin::to_string(d);
            seen.insert(d);
          }
        }
      }
      if (!s.exists) {
        EXPECT_TRUE(seen.empty());
      }
    }
  }
}

TEST(SolvePairProperty, Example41BruteForce) { cross_validate(example41(4)); }
TEST(SolvePairProperty, Example42BruteForce) { cross_validate(example42(4)); }
TEST(SolvePairProperty, UniformBruteForce) { cross_validate(uniform_nest(5)); }

TEST(SolvePairProperty, RandomReferencesBruteForce) {
  Rng rng(20250611);
  for (int iter = 0; iter < 40; ++iter) {
    LoopNestBuilder b;
    b.loop("i1", -3, 3).loop("i2", -3, 3);
    b.array("A", {{-200, 200}});
    AffineExpr w = b.affine({rng.uniform(-2, 2), rng.uniform(-2, 2)},
                            rng.uniform(-3, 3));
    AffineExpr r = b.affine({rng.uniform(-2, 2), rng.uniform(-2, 2)},
                            rng.uniform(-3, 3));
    b.assign(b.ref("A", {w}), Expr::add(b.read("A", {r}), Expr::constant(1)));
    cross_validate(b.build());
  }
}

// ------------------------------------------------------------------ PDM

TEST(Pdm, Example41IsRankOneEven) {
  Pdm pdm = compute_pdm(example41(10));
  EXPECT_EQ(pdm.matrix(), Mat::from_rows({{2, -2}}));
  EXPECT_EQ(pdm.rank(), 1);
  EXPECT_FALSE(pdm.full_rank());
  EXPECT_TRUE(pdm.zero_columns().empty());
  EXPECT_FALSE(pdm.all_uniform());
}

TEST(Pdm, Example42IsFullRankDetFour) {
  Pdm pdm = compute_pdm(example42(10));
  EXPECT_EQ(pdm.matrix(), Mat::from_rows({{2, 1}, {0, 2}}));
  EXPECT_TRUE(pdm.full_rank());
  EXPECT_EQ(pdm.determinant(), 4);
  EXPECT_FALSE(pdm.all_uniform());
}

TEST(Pdm, UniformLoopKeepsConstantRow) {
  Pdm pdm = compute_pdm(uniform_nest(10));
  EXPECT_EQ(pdm.matrix(), Mat::from_rows({{1, 2}}));
  EXPECT_TRUE(pdm.all_uniform());
}

TEST(Pdm, IndependentLoopHasEmptyPdm) {
  LoopNestBuilder b;
  b.loop("i1", 0, 9).loop("i2", 0, 9);
  b.array("A", {{0, 9}, {0, 9}});
  b.array("B", {{0, 9}, {0, 9}});
  b.assign(b.ref("A", {b.idx(0), b.idx(1)}),
           b.read("B", {b.idx(0), b.idx(1)}));
  Pdm pdm = compute_pdm(b.build());
  EXPECT_TRUE(pdm.empty());
  EXPECT_EQ(pdm.zero_columns(), (std::vector<int>{0, 1}));
  // The write's self-output pair exists (d = 0) but contributes nothing.
  for (const DepPair& p : pdm.pairs())
    EXPECT_EQ(p.solution.pdm_lattice().rank(), 0);
}

TEST(Pdm, ZeroColumnDetection) {
  // A[i1+1, i2] = A[i1, i2]: distance (1, 0); column 1 (i2) is zero => DOALL.
  LoopNestBuilder b;
  b.loop("i1", 0, 9).loop("i2", 0, 9);
  b.array("A", {{0, 10}, {0, 10}});
  b.assign(b.ref("A", {b.affine({1, 0}, 1), b.idx(1)}),
           b.read("A", {b.idx(0), b.idx(1)}));
  Pdm pdm = compute_pdm(b.build());
  EXPECT_EQ(pdm.matrix(), Mat::from_rows({{1, 0}}));
  EXPECT_EQ(pdm.zero_columns(), (std::vector<int>{1}));
}

TEST(Pdm, LatticeCoversEveryEmpiricalDistance) {
  LoopNest nest = example42(4);
  Pdm pdm = compute_pdm(nest);
  Lattice lat = pdm.lattice();
  auto iters = nest.iterations();
  auto acc = nest.accesses();
  for (std::size_t x = 0; x < acc.size(); ++x)
    for (std::size_t y = 0; y < acc.size(); ++y) {
      if (acc[x].ref.array != acc[y].ref.array) continue;
      if (!acc[x].is_write && !acc[y].is_write) continue;
      for (const Vec& i : iters)
        for (const Vec& j : iters)
          if (acc[x].ref.element_at(i) == acc[y].ref.element_at(j)) {
            EXPECT_TRUE(lat.contains(intlin::sub(j, i)));
          }
    }
}

TEST(Pdm, MultiplePairsMergeLattices) {
  // Two uniform dependences (2,0) and (0,2): merged PDM diag(2,2), det 4.
  LoopNestBuilder b;
  b.loop("i1", 0, 9).loop("i2", 0, 9);
  b.array("A", {{-4, 14}, {-4, 14}});
  b.assign(b.ref("A", {b.affine({1, 0}, 2), b.idx(1)}),
           Expr::add(b.read("A", {b.idx(0), b.affine({0, 1}, -2)}),
                     b.read("A", {b.affine({1, 0}, 2), b.affine({0, 1}, 2)})));
  Pdm pdm = compute_pdm(b.build());
  EXPECT_EQ(pdm.matrix(), Mat::from_rows({{2, 0}, {0, 2}}));
  EXPECT_EQ(pdm.determinant(), 4);
}

// --------------------------------------------------------- classic tests

TEST(ClassicTests, GcdDisprovesParityDependence) {
  ArrayRef w{"A", {AffineExpr(Vec{2, 0}, 0)}};
  ArrayRef r{"A", {AffineExpr(Vec{2, 0}, 1)}};
  EXPECT_FALSE(gcd_test(w, r));
  EXPECT_FALSE(exact_equation_test(w, r));
}

TEST(ClassicTests, ExactBeatsGcdOnCoupledSubscripts) {
  // Dimension-wise gcd passes but the coupled system is unsolvable:
  // A[i1+i2, i1+i2] written vs A[j1+j2, j1+j2+1] read — both dims have
  // gcd 1, yet s = s and s = s+1 cannot hold together.
  ArrayRef w{"A", {AffineExpr(Vec{1, 1}, 0), AffineExpr(Vec{1, 1}, 0)}};
  ArrayRef r{"A", {AffineExpr(Vec{1, 1}, 0), AffineExpr(Vec{1, 1}, 1)}};
  EXPECT_TRUE(gcd_test(w, r));
  EXPECT_FALSE(exact_equation_test(w, r));
}

TEST(ClassicTests, BanerjeeUsesBounds) {
  // A[i+100] vs A[i] inside i in [0,10]: equations solvable (d = 100) but
  // the bounds disprove it.
  LoopNestBuilder b;
  b.loop("i1", 0, 10);
  b.array("A", {{0, 200}});
  b.assign(b.ref("A", {b.affine({1}, 100)}), b.read("A", {b.idx(0)}));
  LoopNest nest = b.build();
  auto acc = nest.accesses();
  EXPECT_TRUE(gcd_test(acc[0].ref, acc[1].ref));
  EXPECT_TRUE(exact_equation_test(acc[0].ref, acc[1].ref));
  EXPECT_FALSE(banerjee_test(nest, acc[0].ref, acc[1].ref));
}

TEST(ClassicTests, AllAgreeOnRealDependence) {
  LoopNest nest = example41(10);
  auto acc = nest.accesses();
  TestVerdicts v = run_all_tests(nest, acc[0].ref, acc[1].ref);
  EXPECT_TRUE(v.gcd);
  EXPECT_TRUE(v.banerjee);
  EXPECT_TRUE(v.exact);
}

TEST(ClassicTestsProperty, GcdNeverMorePreciseThanExact) {
  Rng rng(5150);
  for (int iter = 0; iter < 200; ++iter) {
    ArrayRef w{"A",
               {AffineExpr(Vec{rng.uniform(-3, 3), rng.uniform(-3, 3)},
                           rng.uniform(-5, 5))}};
    ArrayRef r{"A",
               {AffineExpr(Vec{rng.uniform(-3, 3), rng.uniform(-3, 3)},
                           rng.uniform(-5, 5))}};
    // exact => gcd (gcd is a necessary condition).
    if (exact_equation_test(w, r)) {
      EXPECT_TRUE(gcd_test(w, r));
    }
  }
}

TEST(ClassicTestsProperty, TestsAreSoundOnBruteForcedPairs) {
  // If any test reports independence, no conflicting pair may exist.
  Rng rng(6021023);
  for (int iter = 0; iter < 60; ++iter) {
    LoopNestBuilder b;
    b.loop("i1", -2, 2).loop("i2", -2, 2);
    b.array("A", {{-100, 100}});
    AffineExpr w = b.affine({rng.uniform(-2, 2), rng.uniform(-2, 2)},
                            rng.uniform(-4, 4));
    AffineExpr r = b.affine({rng.uniform(-2, 2), rng.uniform(-2, 2)},
                            rng.uniform(-4, 4));
    b.assign(b.ref("A", {w}), b.read("A", {r}));
    LoopNest nest = b.build();
    auto acc = nest.accesses();
    TestVerdicts v = run_all_tests(nest, acc[0].ref, acc[1].ref);
    bool conflict = false;
    for (const Vec& i : nest.iterations())
      for (const Vec& j : nest.iterations())
        if (acc[0].ref.element_at(i) == acc[1].ref.element_at(j)) conflict = true;
    if (conflict) {
      EXPECT_TRUE(v.gcd);
      EXPECT_TRUE(v.banerjee);
      EXPECT_TRUE(v.exact);
    }
  }
}

// ----------------------------------------------------- direction vectors

TEST(Direction, UniformPairHasSingleVector) {
  LoopNest nest = uniform_nest(10);
  auto acc = nest.accesses();
  auto dvs = direction_vectors(nest, acc[0].ref, acc[1].ref);
  ASSERT_EQ(dvs.size(), 1u);
  EXPECT_EQ(to_string(dvs[0]), "(<,<)");
}

TEST(Direction, Example42HasMultipleDirections) {
  LoopNest nest = example42(10);
  auto acc = nest.accesses();
  auto dvs = direction_vectors(nest, acc[0].ref, acc[1].ref);
  // d1 - 2 d2 = 4 admits (4,0):(<,=), (6,1):(<,<), (2,-1):(<,>),
  // (0,-2):(=,>), (-2,-3):(>,>), (-4,-4)... => at least 5 patterns.
  std::set<std::string> found;
  for (const auto& dv : dvs) found.insert(to_string(dv));
  EXPECT_TRUE(found.count("(<,=)"));
  EXPECT_TRUE(found.count("(<,<)"));
  EXPECT_TRUE(found.count("(<,>)"));
  EXPECT_TRUE(found.count("(=,>)"));
  EXPECT_TRUE(found.count("(>,>)"));
}

TEST(Direction, NestVectorsAreOrientedPositive) {
  LoopNest nest = example42(10);
  auto dvs = nest_direction_vectors(nest);
  EXPECT_FALSE(dvs.empty());
  for (const auto& dv : dvs) {
    // After orientation the first non-"=" must be "<".
    for (Dir d : dv) {
      if (d == Dir::kEq) continue;
      EXPECT_EQ(d, Dir::kLt) << to_string(dv);
      break;
    }
  }
}

TEST(Direction, BoundsPruneDirections) {
  // A[i1+8] vs A[i1] in [0,10]: only "<" remains; in [0,5] none remain.
  LoopNestBuilder b1;
  b1.loop("i1", 0, 10);
  b1.array("A", {{0, 30}});
  b1.assign(b1.ref("A", {b1.affine({1}, 8)}), b1.read("A", {b1.idx(0)}));
  LoopNest n1 = b1.build();
  auto acc1 = n1.accesses();
  auto dvs1 = direction_vectors(n1, acc1[0].ref, acc1[1].ref);
  ASSERT_EQ(dvs1.size(), 1u);
  EXPECT_EQ(to_string(dvs1[0]), "(<)");

  LoopNestBuilder b2;
  b2.loop("i1", 0, 5);
  b2.array("A", {{0, 30}});
  b2.assign(b2.ref("A", {b2.affine({1}, 8)}), b2.read("A", {b2.idx(0)}));
  LoopNest n2 = b2.build();
  auto acc2 = n2.accesses();
  EXPECT_TRUE(direction_vectors(n2, acc2[0].ref, acc2[1].ref).empty());
}

TEST(DirectionProperty, VectorsCoverBruteForcedSigns) {
  Rng rng(424242);
  for (int iter = 0; iter < 30; ++iter) {
    LoopNestBuilder b;
    b.loop("i1", -2, 2).loop("i2", -2, 2);
    b.array("A", {{-60, 60}});
    AffineExpr w = b.affine({rng.uniform(-2, 2), rng.uniform(-2, 2)},
                            rng.uniform(-3, 3));
    AffineExpr r = b.affine({rng.uniform(-2, 2), rng.uniform(-2, 2)},
                            rng.uniform(-3, 3));
    b.assign(b.ref("A", {w}), b.read("A", {r}));
    LoopNest nest = b.build();
    auto acc = nest.accesses();
    auto dvs = direction_vectors(nest, acc[0].ref, acc[1].ref);
    std::set<std::string> have;
    for (const auto& dv : dvs) have.insert(to_string(dv));
    for (const Vec& i : nest.iterations())
      for (const Vec& j : nest.iterations()) {
        if (acc[0].ref.element_at(i) != acc[1].ref.element_at(j)) continue;
        DirectionVector dv;
        for (int k = 0; k < 2; ++k) {
          i64 d = j[static_cast<std::size_t>(k)] - i[static_cast<std::size_t>(k)];
          dv.push_back(d > 0 ? Dir::kLt : d < 0 ? Dir::kGt : Dir::kEq);
        }
        EXPECT_TRUE(have.count(to_string(dv)))
            << "missing direction " << to_string(dv);
      }
  }
}

}  // namespace
}  // namespace vdep::dep
