// End-to-end tests of the PdmParallelizer pipeline and the canonical suite.
#include <gtest/gtest.h>

#include "core/parallelizer.h"
#include "core/suite.h"

namespace vdep::core {
namespace {

TEST(Suite, AllNestsValidateAndEnumerate) {
  for (const NamedNest& c : paper_suite(4)) {
    EXPECT_GT(c.nest.iteration_count(), 0) << c.name;
    EXPECT_FALSE(c.nest.to_string().empty()) << c.name;
  }
}

TEST(Suite, ExpectedPdmShapes) {
  EXPECT_EQ(dep::compute_pdm(example41(6)).matrix(),
            intlin::Mat::from_rows({{2, -2}}));
  EXPECT_EQ(dep::compute_pdm(example42(6)).matrix(),
            intlin::Mat::from_rows({{2, 1}, {0, 2}}));
  EXPECT_EQ(dep::compute_pdm(uniform_wavefront(6)).matrix(),
            intlin::Mat::identity(2));
  EXPECT_EQ(dep::compute_pdm(variable_3deep(4)).matrix(),
            intlin::Mat::from_rows({{2, -2, 0}}));
  EXPECT_TRUE(dep::compute_pdm(parity_independent(4)).empty());
}

TEST(Parallelizer, Example41FullReport) {
  PdmParallelizer p;
  Report r = p.analyze(example41(6));
  EXPECT_EQ(r.doall_loops, 1);
  EXPECT_EQ(r.partition_classes, 2);
  EXPECT_GT(r.work_items, 2);
  EXPECT_EQ(r.total_iterations, 13 * 13);
  std::string s = r.summary();
  EXPECT_NE(s.find("PDM"), std::string::npos);
  EXPECT_NE(s.find("doall"), std::string::npos);
  EXPECT_NE(s.find("[variable]"), std::string::npos);
  EXPECT_FALSE(r.c_original.empty());
  EXPECT_FALSE(r.c_transformed.empty());
}

TEST(Parallelizer, Example42FourClasses) {
  PdmParallelizer p;
  Report r = p.analyze(example42(6));
  EXPECT_EQ(r.doall_loops, 0);
  EXPECT_EQ(r.partition_classes, 4);
  EXPECT_EQ(r.work_items, 4);
}

TEST(Parallelizer, CheckedParallelizationAcrossSuite) {
  PdmParallelizer::Options opts;
  opts.emit_c = false;
  PdmParallelizer p(opts);
  ThreadPool pool(4);
  for (const NamedNest& c : paper_suite(4)) {
    // parallelize_and_check throws on any divergence from sequential.
    Report r = p.parallelize_and_check(c.nest, pool);
    EXPECT_GT(r.total_iterations, 0) << c.name;
  }
}

TEST(Parallelizer, Variable3DeepGetsTwoDoall) {
  PdmParallelizer::Options opts;
  opts.emit_c = false;
  PdmParallelizer p(opts);
  Report r = p.analyze(variable_3deep(3));
  EXPECT_EQ(r.doall_loops, 2);
  EXPECT_EQ(r.partition_classes, 2);
}

TEST(Parallelizer, MeasureCanBeDisabled) {
  PdmParallelizer::Options opts;
  opts.measure = false;
  opts.emit_c = false;
  PdmParallelizer p(opts);
  Report r = p.analyze(example41(4));
  EXPECT_EQ(r.work_items, 0);
  EXPECT_EQ(r.doall_loops, 1);
}

TEST(Parallelizer, SequentialChainReportsNoParallelism) {
  PdmParallelizer::Options opts;
  opts.emit_c = false;
  PdmParallelizer p(opts);
  Report r = p.analyze(sequential_chain(9));
  EXPECT_EQ(r.doall_loops, 0);
  EXPECT_EQ(r.partition_classes, 1);
  EXPECT_EQ(r.work_items, 1);
  EXPECT_EQ(r.max_item, 10);
}

}  // namespace
}  // namespace vdep::core
