// End-to-end tests of the staged compilation pipeline (vdep::Compiler /
// CompiledLoop) over the canonical suite, plus compatibility coverage of
// the deprecated PdmParallelizer wrapper.
#include <gtest/gtest.h>

#include "api/vdep.h"
#include "core/parallelizer.h"
#include "core/suite.h"

namespace vdep::core {
namespace {

TEST(Suite, AllNestsValidateAndEnumerate) {
  for (const NamedNest& c : paper_suite(4)) {
    EXPECT_GT(c.nest.iteration_count(), 0) << c.name;
    EXPECT_FALSE(c.nest.to_string().empty()) << c.name;
  }
}

TEST(Suite, ExpectedPdmShapes) {
  EXPECT_EQ(dep::compute_pdm(example41(6)).matrix(),
            intlin::Mat::from_rows({{2, -2}}));
  EXPECT_EQ(dep::compute_pdm(example42(6)).matrix(),
            intlin::Mat::from_rows({{2, 1}, {0, 2}}));
  EXPECT_EQ(dep::compute_pdm(uniform_wavefront(6)).matrix(),
            intlin::Mat::identity(2));
  EXPECT_EQ(dep::compute_pdm(variable_3deep(4)).matrix(),
            intlin::Mat::from_rows({{2, -2, 0}}));
  EXPECT_TRUE(dep::compute_pdm(parity_independent(4)).empty());
}

TEST(Compiler, Example41StagedArtifacts) {
  Compiler compiler;
  CompiledLoop loop = compiler.compile(example41(6)).value();

  // Stage 1: analysis.
  EXPECT_EQ(loop.analysis().pdm.matrix(), intlin::Mat::from_rows({{2, -2}}));
  EXPECT_EQ(loop.analysis().rank, 1);
  EXPECT_FALSE(loop.analysis().all_uniform);

  // Stage 2: plan + legality certificate.
  EXPECT_TRUE(loop.plan().legal);
  EXPECT_EQ(loop.plan().doall_loops, 1);
  EXPECT_EQ(loop.plan().partition_classes, 2);

  // Stage 3: codegen, lazy and memoized — same options, same object.
  const std::string& c1 = loop.codegen();
  const std::string& c2 = loop.codegen();
  EXPECT_EQ(&c1, &c2);
  EXPECT_NE(c1.find("omp"), std::string::npos);
  const std::string& orig =
      loop.codegen(CodegenOptions{}.target(CodegenTarget::kOriginal));
  EXPECT_NE(&c1, &orig);

  // Measurement at this handle's bounds.
  exec::RunStats ms = loop.measure();
  EXPECT_GT(ms.work_items, 2);
  EXPECT_EQ(ms.iterations, 13 * 13);

  std::string s = loop.summary();
  EXPECT_NE(s.find("PDM"), std::string::npos);
  EXPECT_NE(s.find("DOALL"), std::string::npos);
  EXPECT_NE(s.find("[variable]"), std::string::npos);
}

TEST(Compiler, Example42FourClasses) {
  Compiler compiler;
  CompiledLoop loop = compiler.compile(example42(6)).value();
  EXPECT_EQ(loop.plan().doall_loops, 0);
  EXPECT_EQ(loop.plan().partition_classes, 4);
  EXPECT_EQ(loop.measure().work_items, 4);
}

TEST(Compiler, CheckedExecutionAcrossSuite) {
  Compiler compiler;
  ThreadPool pool(4);
  for (const NamedNest& c : paper_suite(4)) {
    CompiledLoop loop = compiler.compile(c.nest).value();
    // check() errors on any divergence from sequential execution.
    ExecReport r = loop.check(ExecPolicy{}, pool).value();
    EXPECT_TRUE(r.verified) << c.name;
    EXPECT_GT(r.iterations, 0) << c.name;
  }
}

TEST(Compiler, Variable3DeepGetsTwoDoall) {
  Compiler compiler;
  CompiledLoop loop = compiler.compile(variable_3deep(3)).value();
  EXPECT_EQ(loop.plan().doall_loops, 2);
  EXPECT_EQ(loop.plan().partition_classes, 2);
}

TEST(Compiler, SequentialChainReportsNoParallelism) {
  Compiler compiler;
  CompiledLoop loop = compiler.compile(sequential_chain(9)).value();
  EXPECT_EQ(loop.plan().doall_loops, 0);
  EXPECT_EQ(loop.plan().partition_classes, 1);
  exec::RunStats ms = loop.measure();
  EXPECT_EQ(ms.work_items, 1);
  EXPECT_EQ(ms.max_item, 10);
}

TEST(Compiler, DslAndBuilderFrontEndsShareOnePlan) {
  // The quickstart DSL program is example 4.1; structure is front-end
  // independent, so the builder nest is a cache hit.
  Compiler compiler;
  CompiledLoop from_dsl = compiler
                              .compile(std::string(R"(
array A[-70:70, -70:70]
do i1 = -10, 10
  do i2 = -10, 10
    A[3*i1 - 2*i2 + 2, -2*i1 + 3*i2 - 2] = A[i1, i2] + A[i1 + 2, i2 - 2] + 1
  enddo
enddo
)"))
                              .value();
  CompiledLoop from_builder = compiler.compile(example41(60)).value();
  EXPECT_EQ(from_dsl.fingerprint(), from_builder.fingerprint());
  EXPECT_EQ(&from_dsl.analysis(), &from_builder.analysis());  // shared artifact
  EXPECT_EQ(compiler.cache_stats().hits, 1);
  EXPECT_EQ(compiler.cache_stats().misses, 1);
}

// ---------------------------------------------- deprecated wrapper compat

TEST(Parallelizer, WrapperReportMatchesStagedArtifacts) {
  PdmParallelizer p;
  Report r = p.analyze(example41(6));
  EXPECT_EQ(r.doall_loops, 1);
  EXPECT_EQ(r.partition_classes, 2);
  EXPECT_GT(r.work_items, 2);
  EXPECT_EQ(r.total_iterations, 13 * 13);
  std::string s = r.summary();
  EXPECT_NE(s.find("PDM"), std::string::npos);
  EXPECT_NE(s.find("doall"), std::string::npos);
  EXPECT_NE(s.find("[variable]"), std::string::npos);
  EXPECT_FALSE(r.c_original.empty());
  EXPECT_FALSE(r.c_transformed.empty());

  Compiler compiler;
  CompiledLoop loop = compiler.compile(example41(6)).value();
  EXPECT_EQ(r.pdm.matrix(), loop.analysis().pdm.matrix());
  EXPECT_EQ(r.plan.t, loop.plan().transform.t);
}

TEST(Parallelizer, WrapperMeasureCanBeDisabled) {
  PdmParallelizer::Options opts;
  opts.measure = false;
  opts.emit_c = false;
  PdmParallelizer p(opts);
  Report r = p.analyze(example41(4));
  EXPECT_EQ(r.work_items, 0);
  EXPECT_EQ(r.doall_loops, 1);
}

TEST(Parallelizer, WrapperCheckedParallelizationStillWorks) {
  PdmParallelizer::Options opts;
  opts.emit_c = false;
  PdmParallelizer p(opts);
  ThreadPool pool(4);
  for (const NamedNest& c : paper_suite(4)) {
    // parallelize_and_check throws on any divergence from sequential.
    Report r = p.parallelize_and_check(c.nest, pool);
    EXPECT_GT(r.total_iterations, 0) << c.name;
  }
}

}  // namespace
}  // namespace vdep::core
