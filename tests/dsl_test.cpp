// Tests for the mini-Fortran front end: lexing, parsing, lowering, shape
// inference and error reporting — plus a full front-to-back run through the
// parallelizer.
#include <gtest/gtest.h>

#include "api/vdep.h"
#include "dep/pdm.h"
#include "dsl/parser.h"
#include "exec/interpreter.h"

namespace vdep::dsl {
namespace {

constexpr const char* kExample41 = R"(
# paper example 4.1 (reconstructed)
array A[-70:70, -70:70]
do i1 = -10, 10
  do i2 = -10, 10
    A[3*i1 - 2*i2 + 2, -2*i1 + 3*i2 - 2] = A[i1, i2] + A[i1 + 2, i2 - 2] + 1
  enddo
enddo
)";

TEST(Parser, ParsesExample41) {
  loopir::LoopNest nest = parse_loop_nest(kExample41);
  EXPECT_EQ(nest.depth(), 2);
  EXPECT_EQ(nest.index_names(), (std::vector<std::string>{"i1", "i2"}));
  EXPECT_EQ(nest.body().size(), 1u);
  EXPECT_EQ(nest.iteration_count(), 21 * 21);
  // Same PDM as the builder-constructed version.
  EXPECT_EQ(dep::compute_pdm(nest).matrix(),
            intlin::Mat::from_rows({{2, -2}}));
}

TEST(Parser, InfersArrayShapes) {
  loopir::LoopNest nest = parse_loop_nest(R"(
do i = 0, 9
  B[2*i + 1] = B[2*i] + i
enddo
)");
  const loopir::ArrayDecl& b = nest.array("B");
  ASSERT_EQ(b.arity(), 1);
  EXPECT_LE(b.dims[0].first, 0);
  EXPECT_GE(b.dims[0].second, 19);
  // Runs without out-of-range accesses.
  exec::ArrayStore store(nest);
  exec::run_sequential(nest, store);
}

TEST(Parser, AffineBoundsOnInnerLoop) {
  loopir::LoopNest nest = parse_loop_nest(R"(
do i = 0, 6
  do j = i, 6
    A[i, j] = A[i - 1, j] + 1
  enddo
enddo
)");
  EXPECT_EQ(nest.iteration_count(), 28);
}

TEST(Parser, MultipleStatements) {
  loopir::LoopNest nest = parse_loop_nest(R"(
do i = -5, 5
  do j = -5, 5
    A[i - 2*j + 4] = A[i - 2*j] + 1
    B[i, j] = A[i - 2*j + 8]
  enddo
enddo
)");
  EXPECT_EQ(nest.body().size(), 2u);
  EXPECT_EQ(dep::compute_pdm(nest).matrix(),
            intlin::Mat::from_rows({{2, 1}, {0, 2}}));
}

TEST(Parser, NegativeNumbersAndParens) {
  loopir::LoopNest nest = parse_loop_nest(R"(
do i = -(3), 3
  A[-i + 3] = A[i + 3] * (2 - 1)
enddo
)");
  EXPECT_EQ(nest.iteration_count(), 7);
}

TEST(Parser, IndexVariableInRhs) {
  loopir::LoopNest nest = parse_loop_nest(R"(
do i = 1, 4
  A[i] = i * i + 1
enddo
)");
  exec::ArrayStore s(nest);
  exec::run_sequential(nest, s);
  EXPECT_EQ(s.read("A", {3}), 10);
}

TEST(ParserErrors, ReportLineAndColumn) {
  try {
    parse_loop_nest("do i = 0, 4\n  A[i] = @\nenddo\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 10);  // the '@' is the 10th character of line 2
    EXPECT_NE(std::string(e.what()).find("line 2, col 10"), std::string::npos);
  }
}

TEST(ParserErrors, ColumnPointsAtOffendingToken) {
  try {
    parse_loop_nest("do i = 0, 4\n  A[k + 1] = 1\nenddo\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 5);  // the unknown index variable 'k'
  }
}

TEST(ParserErrors, TryParseReturnsInspectableError) {
  Expected<loopir::LoopNest> r =
      try_parse_loop_nest("do i = 0, 4\n  A[i] = @\nenddo\n");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().kind, ErrorKind::kParse);
  EXPECT_EQ(r.error().line, 2);
  EXPECT_EQ(r.error().column, 10);
}

TEST(ParserErrors, TryParseReturnsValueOnSuccess) {
  Expected<loopir::LoopNest> r = try_parse_loop_nest(kExample41);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->depth(), 2);
  EXPECT_EQ(r.map([](const loopir::LoopNest& n) { return n.depth(); }).value(),
            2);
}

TEST(ParserErrors, RejectsNonAffineSubscript) {
  EXPECT_THROW(parse_loop_nest("do i = 0, 4\n  A[i*i] = 1\nenddo\n"), ParseError);
}

TEST(ParserErrors, RejectsUnknownIndex) {
  EXPECT_THROW(parse_loop_nest("do i = 0, 4\n  A[k] = 1\nenddo\n"), ParseError);
}

TEST(ParserErrors, RejectsMissingEnddo) {
  EXPECT_THROW(parse_loop_nest("do i = 0, 4\n  A[i] = 1\n"), ParseError);
}

TEST(ParserErrors, RejectsTrailingInput) {
  EXPECT_THROW(parse_loop_nest("do i = 0, 4\n  A[i] = 1\nenddo\ngarbage"),
               ParseError);
}

TEST(ParserErrors, RejectsDuplicateIndex) {
  EXPECT_THROW(parse_loop_nest("do i = 0, 4\n do i = 0, 4\n  A[i] = 1\n enddo\nenddo"),
               ParseError);
}

TEST(ParserErrors, RejectsEmptyBody) {
  EXPECT_THROW(parse_loop_nest("do i = 0, 4\nenddo\n"), ParseError);
}

TEST(ParserErrors, RejectsInconsistentArity) {
  EXPECT_THROW(parse_loop_nest("do i = 0, 4\n  A[i] = A[i, i]\nenddo\n"),
               ParseError);
}

TEST(ParserErrors, RejectsInnerIndexInBound) {
  EXPECT_THROW(parse_loop_nest(R"(
do i = 0, j
  do j = 0, 4
    A[i, j] = 1
  enddo
enddo
)"),
               ParseError);
}

TEST(Integration, DslSourceToVerifiedExecution) {
  Compiler compiler;
  CompiledLoop loop = compiler.compile(std::string(kExample41)).value();
  EXPECT_EQ(loop.plan().doall_loops, 1);
  EXPECT_EQ(loop.plan().partition_classes, 2);
  ThreadPool pool(2);
  ExecReport r = loop.check(ExecPolicy{}, pool).value();
  EXPECT_TRUE(r.verified);
}

TEST(Integration, CompileRejectsBadSourceAsValue) {
  Compiler compiler;
  Expected<CompiledLoop> r = compiler.compile(std::string("do i = 0, 4\n"));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().kind, ErrorKind::kParse);
  EXPECT_GT(r.error().line, 0);
}

}  // namespace
}  // namespace vdep::dsl
