// Inspector–executor tests: the element-indexed hash inspector
// (src/inspect/) against the brute-force ISDG ground truth, the static
// partitioner as a correctness oracle on the affine paper suite, and the
// end-to-end API path for indirect subscripts (A[B[i]]).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "api/vdep.h"
#include "core/suite.h"
#include "dep/pdm.h"
#include "dsl/parser.h"
#include "exec/interpreter.h"
#include "exec/isdg.h"
#include "exec/runner.h"
#include "inspect/executor.h"
#include "inspect/inspector.h"
#include "loopir/builder.h"
#include "obs/trace.h"
#include "trans/planner.h"

namespace vdep {
namespace {

using intlin::Vec;
using loopir::AffineExpr;
using loopir::ArrayRef;
using loopir::Expr;
using loopir::IndirectSubscript;
using loopir::LoopNest;
using loopir::LoopNestBuilder;

// ------------------------------------------------------------- helpers

/// Weakly connected components of an ISDG, as a canonical partition:
/// sorted members per component, components sorted by first member.
/// Singletons (independent iterations) included — the same universe the
/// inspector partitions.
std::set<std::vector<Vec>> isdg_components(const exec::Isdg& g) {
  std::map<Vec, int> rank;
  for (std::size_t k = 0; k < g.nodes().size(); ++k)
    rank[g.nodes()[k]] = static_cast<int>(k);
  std::vector<int> parent(g.nodes().size());
  for (std::size_t k = 0; k < parent.size(); ++k)
    parent[k] = static_cast<int>(k);
  auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (const exec::IsdgEdge& e : g.edges()) {
    int a = find(rank.at(e.src)), b = find(rank.at(e.dst));
    if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  }
  std::map<int, std::vector<Vec>> comps;
  for (std::size_t k = 0; k < g.nodes().size(); ++k)
    comps[find(static_cast<int>(k))].push_back(g.nodes()[k]);
  std::set<std::vector<Vec>> out;
  for (auto& [root, members] : comps) out.insert(std::move(members));
  return out;
}

/// The inspector's partition in the same canonical form. Members of a class
/// come out in lexicographic order already (the documented contract).
std::set<std::vector<Vec>> inspector_components(
    const inspect::DynamicPartition& part) {
  std::set<std::vector<Vec>> out;
  Vec iter;
  for (i64 c = 0; c < part.num_classes(); ++c) {
    std::vector<Vec> members;
    part.for_each_class_iteration(c, iter, [&](const Vec& v) {
      members.push_back(v);
    });
    out.insert(std::move(members));
  }
  return out;
}

/// A 1-D indirect nest `A[B[i]] = A[B[i]] + C[i]` over i in [0, n-1],
/// with A sized [0, a_hi].
LoopNest indirect_nest(i64 n, i64 a_hi) {
  LoopNestBuilder b;
  b.loop("i", 0, n - 1);
  b.array("A", {{0, a_hi}});
  b.array("B", {{0, n - 1}});
  b.array("C", {{0, n - 1}});
  ArrayRef lhs;
  lhs.array = "A";
  lhs.subscripts = {b.cst(0)};
  lhs.indirect = {IndirectSubscript{"B", b.idx(0)}};
  ArrayRef rhs_a = lhs;
  b.assign(lhs, Expr::add(Expr::read(rhs_a),
                          Expr::read(b.ref("C", {b.idx(0)}))));
  return b.build();
}

// --------------------------------------- inspector vs brute-force ISDG

TEST(Inspector, ComponentsMatchBruteForceIsdgAffine) {
  // Figure 2/3 structure (example 4.1), Figure 4/5 structure (example 4.2),
  // plus a uniform and a fully serial nest. The hash inspector must produce
  // exactly the weak components of the brute-force all-pairs ISDG.
  std::vector<LoopNest> nests = {
      core::example41(6), core::example42(6), core::uniform_blocked(6),
      core::sequential_chain(12), core::parity_independent(6)};
  for (const LoopNest& nest : nests) {
    exec::ArrayStore store(nest);
    inspect::DynamicPartition part = inspect::inspect(nest, store);
    exec::Isdg g = exec::build_isdg(nest);
    EXPECT_EQ(part.size(), g.node_count());
    EXPECT_EQ(inspector_components(part), isdg_components(g))
        << nest.to_string();
    EXPECT_EQ(part.stats().chains, g.chain_count());
    EXPECT_EQ(part.stats().dependent_iterations, g.dependent_node_count());
  }
}

TEST(Inspector, ComponentsMatchBruteForceIsdgIndirect) {
  // Indirect nest with a duplicate-heavy index array: the store-resolving
  // ISDG overload is the ground truth.
  LoopNest nest = indirect_nest(24, 40);
  exec::ArrayStore store(nest);
  store.fill_pattern();
  for (i64 i = 0; i < 24; ++i)
    store.write("B", Vec{i}, (i * 5 + 2) % 9);  // many collisions
  inspect::DynamicPartition part = inspect::inspect(nest, store);
  exec::Isdg g = exec::build_isdg(nest, store);
  EXPECT_EQ(inspector_components(part), isdg_components(g));
  EXPECT_EQ(part.stats().chains, g.chain_count());
  EXPECT_EQ(part.stats().dependent_iterations, g.dependent_node_count());
}

TEST(Inspector, EmptyAndDegenerateSpaces) {
  {
    // Empty space: upper < lower. No iterations, no classes, and the
    // executor runs to completion without touching the store.
    LoopNestBuilder b;
    b.loop("i", 0, -1);
    b.array("A", {{0, 4}});
    b.assign(b.ref("A", {b.idx(0)}), Expr::constant(1));
    LoopNest nest = b.build();
    exec::ArrayStore store(nest);
    store.fill_pattern();
    inspect::DynamicPartition part = inspect::inspect(nest, store);
    EXPECT_EQ(part.size(), 0);
    EXPECT_EQ(part.num_classes(), 0);
    EXPECT_EQ(part.stats().written_cells, 0);
    exec::ArrayStore before = store;
    inspect::InspectorExecutor ex(nest, part);
    runtime::RuntimeStats rs = ex.run(store);
    EXPECT_EQ(rs.total_iterations(), 0);
    EXPECT_TRUE(store == before);
  }
  {
    // Single iteration: one singleton class, no chains.
    LoopNestBuilder b;
    b.loop("i", 3, 3);
    b.array("A", {{3, 3}});
    b.assign(b.ref("A", {b.idx(0)}), Expr::constant(7));
    LoopNest nest = b.build();
    exec::ArrayStore store(nest);
    inspect::DynamicPartition part = inspect::inspect(nest, store);
    EXPECT_EQ(part.size(), 1);
    EXPECT_EQ(part.num_classes(), 1);
    EXPECT_EQ(part.stats().chains, 0);
    EXPECT_EQ(part.stats().dependent_iterations, 0);
    EXPECT_EQ(part.stats().max_component, 1);
  }
}

TEST(Inspector, DuplicateIndexWritesSerializeIntoOneClass) {
  // Every iteration writes A[5]: one write conflict chains the whole space
  // into a single class, which must replay sequentially in one leaf.
  LoopNest nest = indirect_nest(16, 10);
  exec::ArrayStore store(nest);
  store.fill_pattern();
  for (i64 i = 0; i < 16; ++i) store.write("B", Vec{i}, 5);
  inspect::DynamicPartition part = inspect::inspect(nest, store);
  EXPECT_EQ(part.num_classes(), 1);
  EXPECT_EQ(part.stats().chains, 1);
  EXPECT_EQ(part.stats().max_component, 16);
  EXPECT_EQ(part.stats().dependent_iterations, 16);
  EXPECT_EQ(part.stats().written_cells, 1);

  exec::ArrayStore ref = store;
  exec::run_sequential(nest, ref);
  inspect::InspectorExecOptions io;
  io.num_threads = 8;
  inspect::InspectorExecutor ex(nest, part, io);
  ex.run(store);
  EXPECT_TRUE(store == ref);
}

// ------------------------------------------- Figure 2 statistics pinned

TEST(Inspector, Figure2StatisticsAgreeAcrossRenderings) {
  // example 4.1 at n=10 — the Figure 2 space (21x21 box, variable
  // distances, even multiples of (1,-1)). These five numbers are the
  // figure's statistics; to_dot, to_ascii, dependent_node_count and the
  // hash inspector must all report the same dependent-node population.
  LoopNest nest = core::example41(10);
  exec::Isdg g = exec::build_isdg(nest);
  EXPECT_EQ(g.node_count(), 441);
  EXPECT_EQ(g.edge_count(), 136);
  EXPECT_EQ(g.dependent_node_count(), 232);
  EXPECT_EQ(g.chain_count(), 96);

  // DOT: exactly one style=filled node row per dependent iteration.
  std::string dot = g.to_dot();
  std::size_t filled = 0;
  for (std::size_t pos = dot.find("style=filled"); pos != std::string::npos;
       pos = dot.find("style=filled", pos + 1))
    ++filled;
  EXPECT_EQ(filled, 232u);

  // ASCII: dependent iterations render 'o', independent '.'.
  std::string ascii = g.to_ascii();
  std::size_t solid = 0, hollow = 0;
  for (char c : ascii) {
    if (c == 'o') ++solid;
    if (c == '.') ++hollow;
  }
  EXPECT_EQ(solid, 232u);
  EXPECT_EQ(hollow, 441u - 232u);

  // The hash inspector sees the same structure without building the graph.
  exec::ArrayStore store(nest);
  inspect::DynamicPartition part = inspect::inspect(nest, store);
  EXPECT_EQ(part.stats().iterations, 441);
  EXPECT_EQ(part.stats().dependent_iterations, 232);
  EXPECT_EQ(part.stats().chains, 96);
  EXPECT_EQ(part.stats().classes, 305);  // 96 chains + 209 singletons
  EXPECT_EQ(part.stats().max_component, 3);
}

// ------------------------------------ static partitioner as the oracle

TEST(Inspector, OracleAgainstStaticPartitioner) {
  // For every affine suite nest at several bounds: the inspector's
  // components must REFINE the static plan's work items on dependent
  // iterations (a dependence chain never crosses items of a legal plan, so
  // each component fits inside one item). For exact- and uniform-distance
  // nests the relations coincide; for the variable-distance nests the
  // static residue classes (Theorem 2) over-approximate at larger bounds —
  // one class holds several disjoint runtime chains — so the inspector is
  // strictly finer there, never coarser.
  const std::set<std::string> strictly_finer = {"example_4_1",
                                                "variable_3deep"};
  for (i64 n : {i64{4}, i64{7}, i64{10}}) {
    for (const core::NamedNest& c : core::paper_suite(n)) {
      const LoopNest& nest = c.nest;
      trans::TransformPlan plan = trans::plan_transform(dep::compute_pdm(nest));
      exec::Schedule sched = exec::build_schedule(nest, plan);
      exec::ArrayStore store(nest);
      inspect::DynamicPartition part = inspect::inspect(nest, store);

      std::map<Vec, i64> item_of;
      for (std::size_t k = 0; k < sched.items.size(); ++k)
        for (const Vec& v : sched.items[k])
          item_of[v] = static_cast<i64>(k);
      std::map<Vec, i64> cls_of;
      Vec v;
      for (i64 it = 0; it < part.size(); ++it) {
        part.coords_of(it, v);
        cls_of[v] = part.class_of(it);
      }
      ASSERT_EQ(item_of.size(), cls_of.size()) << c.name << " n=" << n;

      std::set<Vec> dependent;
      exec::Isdg g = exec::build_isdg(nest);
      for (const exec::IsdgEdge& e : g.edges()) {
        dependent.insert(e.src);
        dependent.insert(e.dst);
      }

      std::map<i64, std::set<i64>> items_per_class, classes_per_item;
      for (const Vec& d : dependent) {
        items_per_class[cls_of.at(d)].insert(item_of.at(d));
        classes_per_item[item_of.at(d)].insert(cls_of.at(d));
      }
      for (const auto& [cls, items] : items_per_class)
        EXPECT_EQ(items.size(), 1u)
            << c.name << " n=" << n << ": inspector class " << cls
            << " spans " << items.size() << " static items (refinement broken)";
      if (!strictly_finer.count(c.name)) {
        for (const auto& [item, classes] : classes_per_item)
          EXPECT_EQ(classes.size(), 1u)
              << c.name << " n=" << n << ": static item " << item
              << " splits into " << classes.size() << " inspector classes";
      }
    }
  }
}

TEST(Inspector, OracleBitIdenticalExecutionAcrossBackends) {
  // Every suite nest, sequential reference vs kInterpreter / kJit /
  // kInspector at 1, 2 and 8 workers — the inspector backend must be a
  // drop-in on affine nests, not just on indirect ones.
  Compiler compiler;
  for (i64 n : {i64{5}, i64{9}}) {
    for (const core::NamedNest& c : core::paper_suite(n)) {
      Expected<CompiledLoop> loop = compiler.compile(c.nest);
      ASSERT_TRUE(loop) << c.name;
      exec::ArrayStore init(c.nest);
      init.fill_pattern();
      exec::ArrayStore ref = init;
      exec::run_sequential(c.nest, ref);
      for (ExecBackend bk : {ExecBackend::kInterpreter, ExecBackend::kJit,
                             ExecBackend::kInspector}) {
        for (std::size_t threads : {1u, 2u, 8u}) {
          exec::ArrayStore got = init;
          ExecPolicy policy;
          policy.backend(bk).threads(threads);
          Expected<ExecReport> rep = loop->execute(policy, got);
          ASSERT_TRUE(rep) << c.name << " n=" << n << " backend "
                           << static_cast<int>(bk) << " threads " << threads
                           << ": " << rep.error().to_string();
          EXPECT_TRUE(got == ref)
              << c.name << " n=" << n << " backend " << static_cast<int>(bk)
              << " at " << threads << " threads diverged";
          EXPECT_EQ(rep->inspector, bk == ExecBackend::kInspector);
        }
      }
    }
  }
}

// ------------------------------------------------- end-to-end API path

TEST(Inspector, IndirectNestRejectedByPdmRunsViaInspector) {
  // The acceptance path: a nest the PDM rejects compiles through the
  // non-affine artifact and executes bit-identically to sequential at 8
  // workers.
  const std::string src =
      "array A[0:63]\n"
      "array B[0:63]\n"
      "do i = 0, 63\n"
      "  A[B[i]] = A[B[i]] + 7\n"
      "enddo\n";
  Compiler compiler;
  Expected<CompiledLoop> loop = compiler.compile(src);
  ASSERT_TRUE(loop) << loop.error().to_string();
  EXPECT_FALSE(loop->analysis().affine);
  EXPECT_THROW(dep::compute_pdm(loop->nest()), UnsupportedError);

  exec::ArrayStore init(loop->nest());
  init.fill_pattern();
  for (i64 i = 0; i <= 63; ++i)
    init.write("B", Vec{i}, (i * 7 + 3) % 16);
  exec::ArrayStore ref = init;
  exec::run_sequential(loop->nest(), ref);

  exec::ArrayStore got = init;
  ExecPolicy policy;
  policy.threads(8);
  Expected<ExecReport> rep = loop->execute(policy, got);
  ASSERT_TRUE(rep) << rep.error().to_string();
  EXPECT_TRUE(got == ref);
  EXPECT_TRUE(rep->inspector);
  // 16 distinct write targets -> 16 chains, every iteration dependent.
  EXPECT_EQ(rep->inspector_classes, 16);
  EXPECT_EQ(rep->inspector_chains, 16);
  EXPECT_EQ(rep->inspector_dependent, 64);
  EXPECT_EQ(rep->iterations, 64);
  EXPECT_GT(rep->inspect_ns, 0);
  EXPECT_LE(rep->inspect_ns, rep->wall_ns);

  // The materialized mode and the batch scheduler cannot run this nest.
  ExecPolicy mat;
  mat.mode(ExecMode::kMaterialized);
  exec::ArrayStore m = init;
  Expected<ExecReport> bad = loop->execute(mat, m);
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.error().kind, ErrorKind::kUnsupported);

  std::vector<exec::ArrayStore*> stores = {&got};
  Expected<std::vector<ExecReport>> batch =
      loop->execute_batch(std::span<exec::ArrayStore* const>(stores),
                          ExecPolicy{});
  ASSERT_FALSE(batch);
  EXPECT_EQ(batch.error().kind, ErrorKind::kUnsupported);
}

TEST(Inspector, InspectSpanAndReportTiming) {
  // The kInspect trace span is emitted with the partition statistics as
  // args, and ExecReport::inspect_ns is populated from the same phase.
  LoopNest nest = indirect_nest(32, 48);
  Compiler compiler;
  Expected<CompiledLoop> loop = compiler.compile(nest);
  ASSERT_TRUE(loop);
  exec::ArrayStore store(nest);
  store.fill_pattern();
  for (i64 i = 0; i < 32; ++i) store.write("B", Vec{i}, (i * 3) % 48);

  obs::TraceRecorder::instance().enable();
  Expected<ExecReport> rep = loop->execute(ExecPolicy{}, store);
  obs::TraceRecorder::instance().disable();
  ASSERT_TRUE(rep) << rep.error().to_string();

  bool saw_inspect = false;
  obs::TraceRecorder::instance().for_each_event(
      [&](std::size_t, const obs::TraceEvent& ev) {
        if (ev.kind != obs::EventKind::kInspect) return;
        saw_inspect = true;
        EXPECT_EQ(ev.args[0], 32);                        // iterations
        EXPECT_EQ(ev.args[1], rep->inspector_classes);    // classes
        EXPECT_EQ(ev.args[2], rep->inspector_chains);     // chains
        EXPECT_EQ(ev.args[3], rep->inspector_max_component);
        EXPECT_EQ(ev.args[4], rep->inspector_dependent);
        EXPECT_GT(ev.dur_ns, 0);
      });
  EXPECT_TRUE(saw_inspect);
  EXPECT_GT(rep->inspect_ns, 0);
  obs::TraceRecorder::instance().clear();
}

TEST(Inspector, ParserEnforcesOneLevelAndDeclaredTargets) {
  // Nested indirection is one level only.
  Expected<LoopNest> nested = dsl::try_parse_loop_nest(
      "array A[0:9]\narray B[0:9]\narray C[0:9]\n"
      "do i = 0, 9\n  A[B[C[i]]] = 1\nenddo\n");
  ASSERT_FALSE(nested);
  EXPECT_EQ(nested.error().kind, ErrorKind::kParse);

  // An indirect target's extent cannot be inferred.
  Expected<LoopNest> undeclared = dsl::try_parse_loop_nest(
      "array B[0:9]\ndo i = 0, 9\n  A[B[i]] = 1\nenddo\n");
  ASSERT_FALSE(undeclared);
  EXPECT_EQ(undeclared.error().kind, ErrorKind::kParse);

  // Index arrays are read-only: writing one is a validation error.
  Expected<LoopNest> writes_index = dsl::try_parse_loop_nest(
      "array A[0:9]\narray B[0:9]\n"
      "do i = 0, 9\n  B[i] = 0\n  A[B[i]] = 1\nenddo\n");
  ASSERT_FALSE(writes_index);

  // The index array's own shape IS inferred from the pos range.
  Expected<LoopNest> inferred = dsl::try_parse_loop_nest(
      "array A[0:100]\ndo i = 2, 11\n  A[B[i - 1]] = A[B[i - 1]] + 1\nenddo\n");
  ASSERT_TRUE(inferred) << inferred.error().to_string();
  bool found = false;
  for (const loopir::ArrayDecl& a : inferred->arrays())
    if (a.name == "B") {
      found = true;
      ASSERT_EQ(a.dims.size(), 1u);
      EXPECT_EQ(a.dims[0].first, 1);
      EXPECT_EQ(a.dims[0].second, 10);
    }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace vdep
