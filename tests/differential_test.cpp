// Cross-backend differential fuzzing: seeded random affine nests (depth
// 1-3, coupled subscripts, variable distances, a quarter of the multi-dim
// cases with skewed extents — outer extent 1-2, innermost >= 64 — to fuzz
// the inner-axis descriptor splitter, and a third of them with affine
// non-constant bounds — triangular/wedge spaces where an inner bound is a
// max/min with an outer index, the shapes the steady-state loop partition
// splits) must produce bit-identical final stores through every execution
// strategy —
//
//   sequential reference  (exec::run_sequential, the paper's semantics)
//   streaming interpreter (ExecBackend::kInterpreter)
//   streaming compiled    (ExecBackend::kCompiled, postfix kernels)
//   streaming jit         (ExecBackend::kJit, dlopen-ed native kernels)
//
// each parallel backend at 1, 2 and 8 worker contexts. The analysis is
// exact (dependence equations -> PDM -> Algorithm 1 -> Theorem 2 classes),
// so ANY divergence — off-by-one class strides, a misproved DOALL, a bad
// native kernel — is a bug, not noise; correctness across execution
// strategies is the property a reproduction must continuously re-prove
// (Kale et al.; Blom et al.'s verification angle).
//
// The generator emits only nests whose values provably fit int64: each
// statement reads the written array at most once (plus one read-only array
// and a small constant), so value growth along any dependence chain is
// additive, bounded by iterations * O(10^2) from a +-99 initial fill.
//
// Registered with ctest under fixed seeds (4 suites x 60 cases >= 200
// compiled cases); `differential_test --fuzz N [seed]` runs N extra cases
// standalone for CI soak jobs.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/vdep.h"
#include "core/suite.h"
#include "exec/interpreter.h"
#include "loopir/builder.h"
#include "support/rng.h"

namespace vdep {
namespace {

using loopir::AffineExpr;
using loopir::Expr;
using loopir::ExprPtr;
using loopir::LoopNest;
using loopir::LoopNestBuilder;

// ------------------------------------------------------------- generator

struct GenCase {
  LoopNest nest;
  std::string trace;  ///< reproduction hint printed on failure
};

/// A random affine subscript over `depth` indices: coefficients in
/// [-2, 2], constant in [-3, 3]. `couple` forces at least two nonzero
/// coefficients when the depth allows it (coupled subscripts are where
/// variable distances come from).
AffineExpr random_subscript(Rng& rng, int depth, bool couple) {
  intlin::Vec coeffs(static_cast<std::size_t>(depth), 0);
  for (auto& c : coeffs) c = rng.uniform(-2, 2);
  if (couple && depth >= 2) {
    std::size_t a = static_cast<std::size_t>(rng.uniform(0, depth - 1));
    std::size_t b = (a + 1) % static_cast<std::size_t>(depth);
    if (coeffs[a] == 0) coeffs[a] = rng.uniform(0, 1) ? 1 : -1;
    if (coeffs[b] == 0) coeffs[b] = rng.uniform(0, 1) ? 2 : -1;
  }
  return AffineExpr(std::move(coeffs), rng.uniform(-3, 3));
}

/// Interval of `s` over the constant-bounds box `box`.
std::pair<i64, i64> subscript_range(const AffineExpr& s,
                                    const std::vector<std::pair<i64, i64>>& box) {
  i64 lo = s.constant_term(), hi = s.constant_term();
  for (std::size_t k = 0; k < box.size(); ++k) {
    i64 c = s.coeffs()[k];
    lo += c * (c >= 0 ? box[k].first : box[k].second);
    hi += c * (c >= 0 ? box[k].second : box[k].first);
  }
  return {lo, hi};
}

/// One random nest. Writes go to array "A"; every rhs reads A at most once
/// (additive value growth, no int64 overflow) plus optionally a read-only
/// array "B" and a constant. Subscript arity 1-2, coefficients small, so
/// dependence equations stay well inside exact-arithmetic range.
LoopNest random_nest(Rng& rng) {
  int depth = static_cast<int>(rng.uniform(1, 3));
  // Extents sized so depth-3 spaces stay ~a few hundred iterations.
  i64 extent = depth == 1 ? rng.uniform(20, 60)
             : depth == 2 ? rng.uniform(5, 14)
                          : rng.uniform(3, 7);
  std::vector<i64> extents(static_cast<std::size_t>(depth), extent);
  // A quarter of the cases get tiny extents (2-4 per dimension, the same
  // order as the dependence distances): spaces that are nearly all
  // prologue/epilogue, where the steady-state loop partition's edge
  // handling — empty steady regions, boundary classes — has to be exact.
  if (rng.chance(1, 4))
    for (auto& e : extents) e = rng.uniform(2, 4);
  // A quarter of the multi-dimensional nests get skewed extents — tiny
  // outer loop, large innermost loop — so the inner-axis descriptor
  // splitter (runtime/task.h) is fuzzed across every backend, not only hit
  // by the hand-written skewed suite cases.
  if (depth >= 2 && rng.chance(1, 4)) {
    extents[0] = rng.uniform(1, 2);
    for (int k = 1; k + 1 < depth; ++k)
      extents[static_cast<std::size_t>(k)] = rng.uniform(2, 4);
    extents[static_cast<std::size_t>(depth - 1)] = rng.uniform(64, 96);
  }
  LoopNestBuilder b;
  std::vector<std::pair<i64, i64>> box;
  for (int k = 0; k < depth; ++k) {
    i64 lo = rng.uniform(-2, 2);
    i64 ext = extents[static_cast<std::size_t>(k)];
    i64 hi = lo + ext - 1;
    box.emplace_back(lo, hi);
    // A third of the inner levels get an affine non-constant bound: the
    // constant stays as one max/min term, so the triangular space is a
    // subset of the rectangular box (the declared array hulls and the
    // value-growth bound still hold). These are the wedge shapes the
    // steady-state partition pass splits into prologue/steady/epilogue.
    if (k >= 1 && rng.chance(1, 3)) {
      int m = static_cast<int>(rng.uniform(0, k - 1));
      intlin::Vec coeffs(static_cast<std::size_t>(depth), 0);
      coeffs[static_cast<std::size_t>(m)] = rng.chance(1, 2) ? 1 : -1;
      AffineExpr e(std::move(coeffs), rng.uniform(-2, 2));
      loopir::Bound lower = loopir::Bound::constant(depth, lo);
      loopir::Bound upper = loopir::Bound::constant(depth, hi);
      if (rng.chance(1, 2))
        lower.add_term({e, 1});  // lower = max(lo, e)
      else
        upper.add_term({e, 1});  // upper = min(hi, e)
      b.loop("i" + std::to_string(k + 1), std::move(lower), std::move(upper));
    } else {
      b.loop("i" + std::to_string(k + 1), lo, hi);
    }
  }

  int arity = static_cast<int>(rng.uniform(1, depth >= 2 ? 2 : 1));
  bool with_b = rng.chance(1, 2);
  int statements = static_cast<int>(rng.uniform(1, 2));

  // Subscripts first, so the array dims can be declared as their hull.
  struct StmtSubs {
    std::vector<AffineExpr> write, read_a, read_b;
    i64 constant;
    bool has_read_b;
    i64 b_scale;
  };
  std::vector<StmtSubs> stmts;
  std::vector<std::pair<i64, i64>> a_dims(static_cast<std::size_t>(arity),
                                          {0, 0});
  std::vector<std::pair<i64, i64>> b_dims(static_cast<std::size_t>(arity),
                                          {0, 0});
  auto widen = [&](std::vector<std::pair<i64, i64>>& dims,
                   const std::vector<AffineExpr>& subs) {
    for (std::size_t d = 0; d < subs.size(); ++d) {
      auto [lo, hi] = subscript_range(subs[d], box);
      dims[d].first = std::min(dims[d].first, lo);
      dims[d].second = std::max(dims[d].second, hi);
    }
  };
  for (int s = 0; s < statements; ++s) {
    StmtSubs st;
    for (int d = 0; d < arity; ++d) {
      st.write.push_back(random_subscript(rng, depth, rng.chance(2, 3)));
      st.read_a.push_back(random_subscript(rng, depth, rng.chance(2, 3)));
      st.read_b.push_back(random_subscript(rng, depth, false));
    }
    st.constant = rng.uniform(-9, 9);
    st.has_read_b = with_b && rng.chance(2, 3);
    st.b_scale = rng.uniform(1, 3);
    widen(a_dims, st.write);
    widen(a_dims, st.read_a);
    if (st.has_read_b) widen(b_dims, st.read_b);
    stmts.push_back(std::move(st));
  }

  b.array("A", a_dims);
  if (with_b) b.array("B", b_dims);

  for (const StmtSubs& st : stmts) {
    ExprPtr rhs = Expr::add(Expr::read(loopir::ArrayRef{"A", st.read_a}),
                            Expr::constant(st.constant));
    if (st.has_read_b) {
      ExprPtr rb = Expr::read(loopir::ArrayRef{"B", st.read_b});
      if (st.b_scale > 1)
        rb = Expr::mul(rb, Expr::constant(st.b_scale));
      rhs = Expr::add(rhs, rb);
    }
    b.assign(loopir::ArrayRef{"A", st.write}, rhs);
  }
  return b.build();
}

// -------------------------------------------------- indirect generator

/// One random indirect-subscript nest plus the index-array contents it
/// must run against. Statement forms (all additive in A, so values stay
/// well inside int64):
///   scatter-accumulate  A[B[i]] = A[B[i]] + C[i]
///   pure scatter        A[B[i]] = C[i] + const   (duplicate order matters)
///   pure gather         D[i]    = A[B[i]] + C[i]
/// Index arrays come in the three shapes that stress the inspector
/// differently: a random permutation (all classes singleton chains),
/// duplicate-heavy values in a small range (long conflict chains), and a
/// monotone non-decreasing ramp (runs of adjacent conflicts).
struct IndirectCase {
  LoopNest nest;
  std::vector<i64> index_values;
  std::string shape;
};

IndirectCase random_indirect_nest(Rng& rng) {
  i64 n = rng.uniform(24, 72);
  int shape = static_cast<int>(rng.uniform(0, 2));
  i64 a_hi;
  std::vector<i64> vals(static_cast<std::size_t>(n));
  if (shape == 0) {  // permutation
    a_hi = n - 1;
    for (i64 i = 0; i < n; ++i) vals[static_cast<std::size_t>(i)] = i;
    for (i64 i = n - 1; i > 0; --i)
      std::swap(vals[static_cast<std::size_t>(i)],
                vals[static_cast<std::size_t>(rng.uniform(0, i))]);
  } else if (shape == 1) {  // duplicate-heavy
    a_hi = std::max<i64>(1, n / 6);
    for (auto& v : vals) v = rng.uniform(0, a_hi);
  } else {  // monotone non-decreasing
    a_hi = std::max<i64>(1, n / 2);
    i64 cur = 0;
    for (auto& v : vals) {
      v = cur;
      cur = std::min(a_hi, cur + rng.uniform(0, 1));
    }
  }

  int form = static_cast<int>(rng.uniform(0, 2));
  LoopNestBuilder b;
  b.loop("i", 0, n - 1);
  b.array("A", {{0, a_hi}});
  b.array("B", {{0, n - 1}});
  b.array("C", {{0, n - 1}});
  if (form == 2) b.array("D", {{0, n - 1}});
  loopir::ArrayRef a_ind;
  a_ind.array = "A";
  a_ind.subscripts = {b.cst(0)};
  a_ind.indirect = {loopir::IndirectSubscript{"B", b.idx(0)}};
  ExprPtr read_c = Expr::read(b.ref("C", {b.idx(0)}));
  if (form == 0) {
    b.assign(a_ind, Expr::add(Expr::read(a_ind), std::move(read_c)));
  } else if (form == 1) {
    b.assign(a_ind,
             Expr::add(std::move(read_c), Expr::constant(rng.uniform(-9, 9))));
  } else {
    b.assign(b.ref("D", {b.idx(0)}),
             Expr::add(Expr::read(a_ind), std::move(read_c)));
  }
  const char* shapes[] = {"permutation", "duplicate-heavy", "monotone"};
  const char* forms[] = {"scatter-accumulate", "scatter", "gather"};
  return {b.build(), std::move(vals),
          std::string(shapes[shape]) + "/" + forms[form]};
}

// ----------------------------------------------------------- differential

struct FuzzStats {
  int attempted = 0;
  int compiled = 0;  ///< analysis succeeded, cross-check ran
  int skipped = 0;   ///< analysis rejected the nest (kUnsupported etc.)
  int jit_native = 0;
  /// Divergence reports (empty = all backends bit-identical). Collected
  /// instead of raised so the standalone --fuzz mode can run outside a
  /// gtest test context.
  std::vector<std::string> failures;
};

/// Cross-checks one nest through every backend/thread combination against
/// the sequential reference; divergences append to stats.failures.
void cross_check(const Compiler& compiler, const LoopNest& nest,
                 const std::string& trace, FuzzStats& stats) {
  Expected<CompiledLoop> loop = compiler.compile(nest);
  if (!loop) {
    ++stats.skipped;
    return;  // outside the supported model: nothing to differentiate
  }
  ++stats.compiled;

  exec::ArrayStore init(nest);
  init.fill_pattern();
  exec::ArrayStore ref = init;
  exec::run_sequential(nest, ref);

  const ExecBackend backends[] = {ExecBackend::kInterpreter,
                                  ExecBackend::kCompiled, ExecBackend::kJit,
                                  ExecBackend::kInspector};
  const char* names[] = {"interpreter", "compiled", "jit", "inspector"};
  const std::size_t thread_counts[] = {1, 2, 8};
  for (int bk = 0; bk < 4; ++bk) {
    for (std::size_t threads : thread_counts) {
      exec::ArrayStore got = init;
      ExecPolicy policy;
      policy.backend(backends[bk]).threads(threads);
      Expected<ExecReport> rep = loop->execute(policy, got);
      if (!rep) {
        stats.failures.push_back("execute(" + std::string(names[bk]) +
                                 ", threads=" + std::to_string(threads) +
                                 ") failed: " + rep.error().to_string() +
                                 "\n" + trace + nest.to_string());
        continue;
      }
      if (backends[bk] == ExecBackend::kJit && threads == 1 && rep->jit)
        ++stats.jit_native;
      if (!(got == ref)) {
        stats.failures.push_back("backend " + std::string(names[bk]) +
                                 " at " + std::to_string(threads) +
                                 " thread(s) diverged from sequential\n" +
                                 trace + nest.to_string());
      }
    }
  }
}

/// Indirect nests have exactly one parallel strategy — the runtime
/// inspector — so the differential axis is inspector-vs-sequential across
/// worker counts (every ExecPolicy backend routes to the inspector for a
/// non-affine nest; kInspector is pinned explicitly for clarity).
void indirect_cross_check(const Compiler& compiler, const IndirectCase& c,
                          const std::string& trace, FuzzStats& stats) {
  Expected<CompiledLoop> loop = compiler.compile(c.nest);
  if (!loop) {
    stats.failures.push_back("indirect compile failed: " +
                             loop.error().to_string() + "\n" + trace +
                             c.nest.to_string());
    return;
  }
  ++stats.compiled;

  exec::ArrayStore init(c.nest);
  init.fill_pattern();
  for (std::size_t k = 0; k < c.index_values.size(); ++k)
    init.write("B", intlin::Vec{static_cast<i64>(k)}, c.index_values[k]);
  exec::ArrayStore ref = init;
  exec::run_sequential(c.nest, ref);

  for (std::size_t threads : {1u, 2u, 8u}) {
    exec::ArrayStore got = init;
    ExecPolicy policy;
    policy.backend(ExecBackend::kInspector).threads(threads);
    Expected<ExecReport> rep = loop->execute(policy, got);
    if (!rep) {
      stats.failures.push_back("indirect execute(threads=" +
                               std::to_string(threads) +
                               ") failed: " + rep.error().to_string() + "\n" +
                               trace + c.nest.to_string());
      continue;
    }
    if (!rep->inspector) {
      stats.failures.push_back("indirect nest did not run via the inspector\n" +
                               trace + c.nest.to_string());
    }
    if (!(got == ref)) {
      stats.failures.push_back(
          "inspector at " + std::to_string(threads) +
          " thread(s) diverged from sequential (" + c.shape + ")\n" + trace +
          c.nest.to_string());
    }
  }
}

/// Runs `cases` random indirect nests from `seed`.
FuzzStats run_indirect_fuzz(std::uint64_t seed, int cases) {
  Compiler compiler;
  Rng rng(seed);
  FuzzStats stats;
  for (int k = 0; k < cases && stats.failures.empty(); ++k) {
    ++stats.attempted;
    IndirectCase c = random_indirect_nest(rng);
    std::string trace = "indirect seed " + std::to_string(seed) + " case " +
                        std::to_string(k) + " (" + c.shape + "):\n";
    indirect_cross_check(compiler, c, trace, stats);
  }
  return stats;
}

/// Runs `cases` random nests from `seed` through the full cross-check.
FuzzStats run_fuzz(std::uint64_t seed, int cases) {
  Compiler compiler;
  Rng rng(seed);
  FuzzStats stats;
  for (int k = 0; k < cases && stats.failures.empty(); ++k) {
    ++stats.attempted;
    LoopNest nest = random_nest(rng);
    std::string trace =
        "seed " + std::to_string(seed) + " case " + std::to_string(k) + ":\n";
    cross_check(compiler, nest, trace, stats);
  }
  return stats;
}

void expect_clean(const FuzzStats& s) {
  for (const std::string& f : s.failures) ADD_FAILURE() << f;
  // Pin a yield floor so generator drift can't silently hollow the suite
  // out (the exact compiled count is deterministic per seed).
  EXPECT_GE(s.compiled, 50) << "generator yield collapsed";
}

// The four fixed-seed suites: >= 200 compiled cases total.
TEST(Differential, FuzzSeedA) { expect_clean(run_fuzz(0xA11CE, 60)); }
TEST(Differential, FuzzSeedB) { expect_clean(run_fuzz(0xB0B, 60)); }
TEST(Differential, FuzzSeedC) { expect_clean(run_fuzz(0xC0FFEE, 60)); }
TEST(Differential, FuzzSeedD) { expect_clean(run_fuzz(0xD00D, 60)); }

// Indirect-subscript suites: every generated nest compiles (the non-affine
// artifact path never rejects), so compiled == attempted.
TEST(Differential, IndirectFuzzSeedE) {
  FuzzStats s = run_indirect_fuzz(0xE44E, 50);
  for (const std::string& f : s.failures) ADD_FAILURE() << f;
  EXPECT_EQ(s.compiled, 50);
}
TEST(Differential, IndirectFuzzSeedF) {
  FuzzStats s = run_indirect_fuzz(0xF00F, 50);
  for (const std::string& f : s.failures) ADD_FAILURE() << f;
  EXPECT_EQ(s.compiled, 50);
}

// Pinned hard cases: the paper's own examples (variable distances with
// nontrivial class structure) and the classical kernels, through the same
// cross-check harness at sizes the fuzz generator does not reach.
TEST(Differential, PaperSuiteCrossCheck) {
  Compiler compiler;
  FuzzStats stats;
  for (i64 n : {i64{6}, i64{13}}) {
    for (const core::NamedNest& c : core::paper_suite(n)) {
      cross_check(compiler, c.nest, c.name + " at n=" + std::to_string(n) + ":\n",
                  stats);
    }
  }
  for (const std::string& f : stats.failures) ADD_FAILURE() << f;
  EXPECT_GE(stats.compiled, 18);
}

}  // namespace
}  // namespace vdep

// Custom main: gtest by default; `--fuzz N [seed]` runs N standalone cases
// (used by the CI soak leg and for local bug hunting).
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--fuzz") == 0 && k + 1 < argc) {
      int cases = std::atoi(argv[k + 1]);
      std::uint64_t seed =
          k + 2 < argc ? std::strtoull(argv[k + 2], nullptr, 0) : 0xF422;
      vdep::FuzzStats stats = vdep::run_fuzz(seed, cases);
      for (const std::string& f : stats.failures)
        std::fprintf(stderr, "FAIL: %s\n", f.c_str());
      std::printf(
          "fuzz: %d attempted, %d compiled+cross-checked, %d skipped "
          "(unsupported), %d native-jit, %zu failures\n",
          stats.attempted, stats.compiled, stats.skipped, stats.jit_native,
          stats.failures.size());
      return stats.failures.empty() ? 0 : 1;
    }
  }
  return RUN_ALL_TESTS();
}
