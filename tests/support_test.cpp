// Unit tests for the support substrate: checked arithmetic, rationals,
// the thread pool and the deterministic RNG.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "support/checked.h"
#include "support/error.h"
#include "support/rational.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace vdep {
namespace {

using checked::i64;

constexpr i64 kMax = std::numeric_limits<i64>::max();
constexpr i64 kMin = std::numeric_limits<i64>::min();

TEST(Checked, AddBasics) {
  EXPECT_EQ(checked::add(2, 3), 5);
  EXPECT_EQ(checked::add(-2, 3), 1);
  EXPECT_EQ(checked::add(kMax, 0), kMax);
}

TEST(Checked, AddOverflowThrows) {
  EXPECT_THROW(checked::add(kMax, 1), OverflowError);
  EXPECT_THROW(checked::add(kMin, -1), OverflowError);
}

TEST(Checked, SubOverflowThrows) {
  EXPECT_THROW(checked::sub(kMin, 1), OverflowError);
  EXPECT_THROW(checked::sub(0, kMin), OverflowError);
}

TEST(Checked, MulBasics) {
  EXPECT_EQ(checked::mul(7, -6), -42);
  EXPECT_EQ(checked::mul(0, kMax), 0);
}

TEST(Checked, MulOverflowThrows) {
  EXPECT_THROW(checked::mul(kMax, 2), OverflowError);
  EXPECT_THROW(checked::mul(kMin, -1), OverflowError);
}

TEST(Checked, NegAndAbs) {
  EXPECT_EQ(checked::neg(5), -5);
  EXPECT_EQ(checked::abs(-5), 5);
  EXPECT_THROW(checked::neg(kMin), OverflowError);
  EXPECT_THROW(checked::abs(kMin), OverflowError);
}

TEST(Checked, FloorDivMatchesMath) {
  EXPECT_EQ(checked::floor_div(7, 2), 3);
  EXPECT_EQ(checked::floor_div(-7, 2), -4);
  EXPECT_EQ(checked::floor_div(7, -2), -4);
  EXPECT_EQ(checked::floor_div(-7, -2), 3);
  EXPECT_EQ(checked::floor_div(6, 3), 2);
  EXPECT_EQ(checked::floor_div(-6, 3), -2);
}

TEST(Checked, CeilDivMatchesMath) {
  EXPECT_EQ(checked::ceil_div(7, 2), 4);
  EXPECT_EQ(checked::ceil_div(-7, 2), -3);
  EXPECT_EQ(checked::ceil_div(7, -2), -3);
  EXPECT_EQ(checked::ceil_div(-7, -2), 4);
  EXPECT_EQ(checked::ceil_div(6, 3), 2);
}

TEST(Checked, FloorDivIntMinByMinusOneThrows) {
  EXPECT_THROW(checked::floor_div(kMin, -1), OverflowError);
  EXPECT_THROW(checked::ceil_div(kMin, -1), OverflowError);
}

TEST(Checked, DivByZeroThrows) {
  EXPECT_THROW(checked::floor_div(1, 0), PreconditionError);
  EXPECT_THROW(checked::ceil_div(1, 0), PreconditionError);
  EXPECT_THROW(checked::mod(1, 0), PreconditionError);
}

TEST(Checked, ModAlwaysNonNegative) {
  EXPECT_EQ(checked::mod(7, 3), 1);
  EXPECT_EQ(checked::mod(-7, 3), 2);
  EXPECT_EQ(checked::mod(7, -3), 1);
  EXPECT_EQ(checked::mod(-7, -3), 2);
  EXPECT_EQ(checked::mod(0, 5), 0);
}

TEST(Checked, FloorDivModIdentity) {
  // a == b * floor_div(a, b) + sign-adjusted mod for positive b.
  for (i64 a = -20; a <= 20; ++a)
    for (i64 b : {1, 2, 3, 5, 7}) {
      EXPECT_EQ(checked::add(checked::mul(checked::floor_div(a, b), b),
                             checked::mod(a, b)),
                a)
          << "a=" << a << " b=" << b;
    }
}

TEST(Checked, GcdBasics) {
  EXPECT_EQ(checked::gcd(12, 18), 6);
  EXPECT_EQ(checked::gcd(-12, 18), 6);
  EXPECT_EQ(checked::gcd(0, 0), 0);
  EXPECT_EQ(checked::gcd(0, 7), 7);
  EXPECT_EQ(checked::gcd(1, kMax), 1);
}

TEST(Checked, LcmBasics) {
  EXPECT_EQ(checked::lcm(4, 6), 12);
  EXPECT_EQ(checked::lcm(0, 5), 0);
  EXPECT_EQ(checked::lcm(-4, 6), 12);
}

TEST(Checked, ExtGcdBezoutSweep) {
  for (i64 a = -12; a <= 12; ++a)
    for (i64 b = -12; b <= 12; ++b) {
      auto e = checked::ext_gcd(a, b);
      EXPECT_EQ(e.g, checked::gcd(a, b));
      EXPECT_EQ(e.x * a + e.y * b, e.g) << "a=" << a << " b=" << b;
      EXPECT_GE(e.g, 0);
    }
}

TEST(Rational, NormalizesOnConstruction) {
  Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
  EXPECT_THROW(Rational(1, 0), PreconditionError);
}

TEST(Rational, ZeroHasDenominatorOne) {
  Rational r(0, 17);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_zero());
}

TEST(Rational, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 2) / Rational(0), PreconditionError);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
}

TEST(Rational, AsInteger) {
  EXPECT_EQ(Rational(6, 2).as_integer(), 3);
  EXPECT_THROW(Rational(1, 2).as_integer(), PreconditionError);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(1, 2).to_string(), "1/2");
  EXPECT_EQ(Rational(4, 2).to_string(), "2");
}

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&](std::int64_t c) { hits[static_cast<std::size_t>(c)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndNegativeChunksAreNoops) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, [&](std::int64_t) { count++; });
  pool.parallel_for(-5, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::int64_t c) {
                                   if (c == 3) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::int64_t sum = 0;
  pool.parallel_for(100, [&](std::int64_t c) { sum += c; });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(64, [&](std::int64_t c) { sum += c; });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_THROW(rng.uniform(3, 2), PreconditionError);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(99);
  bool seen[11] = {};
  for (int i = 0; i < 2000; ++i) seen[rng.uniform(0, 10)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace vdep
