// Tests for the observability layer: the per-thread trace recorder (ring
// buffers, Chrome JSON export, disabled-path emptiness), the metrics
// registry (Prometheus round-trip, JSON lines), and the ExecReport phase
// breakdown. The parallel-run tests execute with 8 workers while the
// recorder is live — this binary runs under TSan in CI, so single-writer
// buffer discipline is checked, not just asserted in comments.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "api/vdep.h"
#include "core/suite.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"

namespace vdep {
namespace {

using obs::EventKind;
using obs::MetricsRegistry;
using obs::TraceEvent;
using obs::TraceRecorder;

// ------------------------------------------------------- minimal JSON parse
// Strict-enough recursive-descent validator for the exporters' output; no
// third-party JSON dependency in the image.

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : p_(s.c_str()), end_(p_ + s.size()) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  bool value() {
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') { ++p_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (p_ == end_ || *p_++ != ':') return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == '}') { ++p_; return true; }
      return false;
    }
  }
  bool array() {
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') { ++p_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == ']') { ++p_; return true; }
      return false;
    }
  }
  bool string() {
    if (p_ == end_ || *p_++ != '"') return false;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
      }
      ++p_;
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool number() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                          *p_ == '-' || *p_ == '+')) {
      if (std::isdigit(static_cast<unsigned char>(*p_))) digits = true;
      ++p_;
    }
    return digits && p_ != start;
  }
  bool literal(const char* lit) {
    for (; *lit; ++lit, ++p_)
      if (p_ == end_ || *p_ != *lit) return false;
    return true;
  }
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r'))
      ++p_;
  }

  const char* p_;
  const char* end_;
};

std::size_t count_substr(const std::string& s, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = s.find(needle); at != std::string::npos;
       at = s.find(needle, at + needle.size()))
    ++n;
  return n;
}

/// Restores a quiescent global recorder/registry around every test so the
/// suites don't leak state into each other (both singletons are global).
struct ObsQuiet {
  ObsQuiet() { reset(); }
  ~ObsQuiet() { reset(); }
  static void reset() {
    TraceRecorder::instance().disable();
    TraceRecorder::instance().clear();
    MetricsRegistry::instance().disable();
    MetricsRegistry::instance().reset();
  }
};

ExecReport run_traced(const CompiledLoop& loop, std::size_t threads) {
  exec::ArrayStore store(loop.nest());
  store.fill_pattern();
  ExecPolicy policy;
  policy.threads(threads).digest(false);
  Expected<ExecReport> r = loop.execute(policy, store);
  EXPECT_TRUE(r) << (r ? "" : r.error().to_string());
  return r ? *r : ExecReport{};
}

// ------------------------------------------------------------------- trace

TEST(Trace, DisabledRecorderStaysEmpty) {
  ObsQuiet quiet;
  Compiler compiler;
  CompiledLoop loop = compiler.compile(core::example41(64)).value();
  run_traced(loop, 4);
  // Disabled: no events, and — stronger — no thread ever registered a
  // buffer, so the disabled path allocated nothing.
  EXPECT_EQ(TraceRecorder::instance().event_count(), 0u);
  EXPECT_EQ(TraceRecorder::instance().thread_buffer_count(), 0u);
  EXPECT_EQ(TraceRecorder::instance().dropped_count(), 0u);
}

TEST(Trace, CompileEmitsPipelineSpans) {
  ObsQuiet quiet;
  TraceRecorder::instance().enable();
  Compiler compiler;
  CompiledLoop loop = compiler.compile(core::example41(64)).value();
  (void)loop;
  std::map<EventKind, int> kinds;
  TraceRecorder::instance().for_each_event(
      [&](std::size_t, const TraceEvent& ev) { ++kinds[ev.kind]; });
  EXPECT_GE(kinds[EventKind::kFingerprint], 1);
  EXPECT_GE(kinds[EventKind::kCacheProbe], 1);
  EXPECT_GE(kinds[EventKind::kAnalyze], 1);
  EXPECT_GE(kinds[EventKind::kPlan], 1);
  // A second compile of the same structure is a cache hit: one more probe,
  // no new analysis.
  int analyzes = kinds[EventKind::kAnalyze];
  CompiledLoop again = compiler.compile(core::example41(128)).value();
  (void)again;
  kinds.clear();
  TraceRecorder::instance().for_each_event(
      [&](std::size_t, const TraceEvent& ev) { ++kinds[ev.kind]; });
  EXPECT_EQ(kinds[EventKind::kAnalyze], analyzes);
  EXPECT_GE(kinds[EventKind::kCacheProbe], 2);
}

TEST(Trace, EventsBalanceUnderParallelRun) {
  ObsQuiet quiet;
  Compiler compiler;
  CompiledLoop loop = compiler.compile(core::example41(512)).value();

  TraceRecorder::instance().enable();
  ExecReport rep = run_traced(loop, 8);
  TraceRecorder::instance().disable();

  ASSERT_EQ(TraceRecorder::instance().dropped_count(), 0u);
  // <= 8 workers + the calling thread (executor-build span).
  EXPECT_LE(TraceRecorder::instance().thread_buffer_count(), 9u);

  i64 leaves = 0, steals = 0, splits = 0;
  TraceRecorder::instance().for_each_event([&](std::size_t,
                                               const TraceEvent& ev) {
    EXPECT_GE(ev.start_ns, 0);
    EXPECT_GE(ev.dur_ns, 0);
    switch (ev.kind) {
      case EventKind::kLeafExec:
        ++leaves;
        EXPECT_GE(ev.worker, 0);
        EXPECT_GT(ev.args[0], 0);  // cells
        break;
      case EventKind::kSteal:
        ++steals;
        EXPECT_GE(ev.worker, 0);
        EXPECT_GE(ev.args[0], 0);  // victim id
        break;
      case EventKind::kSplit:
        ++splits;
        EXPECT_EQ(ev.dur_ns, 0);  // instant
        break;
      default:
        break;
    }
  });
  // Every executed leaf descriptor produced exactly one span, every
  // successful steal exactly one episode span.
  EXPECT_EQ(leaves, rep.tasks);
  EXPECT_EQ(steals, rep.steals);
  EXPECT_GE(splits, rep.inner_splits);
}

TEST(Trace, ChromeJsonParsesAndNamesThreads) {
  ObsQuiet quiet;
  Compiler compiler;
  CompiledLoop loop = compiler.compile(core::variable_3deep(16)).value();
  TraceRecorder::instance().enable();
  run_traced(loop, 4);
  TraceRecorder::instance().disable();

  const std::string json = TraceRecorder::instance().chrome_json();
  ASSERT_TRUE(JsonParser(json).parse()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One thread_name metadata row per registered buffer.
  EXPECT_EQ(count_substr(json, "\"thread_name\""),
            TraceRecorder::instance().thread_buffer_count());
  // Spans became complete events, and at least the leaves are there.
  EXPECT_GE(count_substr(json, "\"ph\":\"X\""), 1u);
  EXPECT_GE(count_substr(json, "\"name\":\"leaf_exec\""), 1u);
}

TEST(Trace, RingBufferDropsInsteadOfGrowing) {
  ObsQuiet quiet;
  Compiler compiler;
  CompiledLoop loop = compiler.compile(core::example41(128)).value();
  // Tiny rings: the run must overflow them and count drops, never resize.
  TraceRecorder::instance().enable(/*events_per_thread=*/16);
  ExecPolicy policy;
  policy.threads(4).grain(1).digest(false);
  exec::ArrayStore store(loop.nest());
  store.fill_pattern();
  ASSERT_TRUE(loop.execute(policy, store));
  TraceRecorder::instance().disable();

  std::size_t buffers = TraceRecorder::instance().thread_buffer_count();
  EXPECT_LE(TraceRecorder::instance().event_count(), buffers * 16);
  EXPECT_GT(TraceRecorder::instance().dropped_count(), 0u);
}

TEST(Trace, PolicyToggleKeepsRunOutOfTrace) {
  ObsQuiet quiet;
  Compiler compiler;
  CompiledLoop loop = compiler.compile(core::example41(128)).value();
  TraceRecorder::instance().enable();
  TraceRecorder::instance().clear();

  exec::ArrayStore store(loop.nest());
  store.fill_pattern();
  ExecPolicy policy;
  policy.threads(4).digest(false).trace(false);
  ASSERT_TRUE(loop.execute(policy, store));
  // Recorder is live, but the run opted out: no runtime events.
  i64 runtime_events = 0;
  TraceRecorder::instance().for_each_event(
      [&](std::size_t, const TraceEvent& ev) {
        if (ev.kind == EventKind::kLeafExec || ev.kind == EventKind::kSplit ||
            ev.kind == EventKind::kSteal || ev.kind == EventKind::kIdle)
          ++runtime_events;
      });
  EXPECT_EQ(runtime_events, 0);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, ExpBucketsStrictlyAscend) {
  std::vector<obs::i64> b = obs::exp_buckets(1, 1.1, 32);
  ASSERT_EQ(b.size(), 32u);
  for (std::size_t k = 1; k < b.size(); ++k) EXPECT_GT(b[k], b[k - 1]);
}

TEST(Metrics, HistogramBucketsOwnRanges) {
  obs::Histogram h({10, 100, 1000});
  h.observe(5);     // <= 10
  h.observe(10);    // <= 10 (inclusive upper edge)
  h.observe(11);    // <= 100
  h.observe(5000);  // +Inf
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 0);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 5 + 10 + 11 + 5000);
}

TEST(Metrics, PrometheusRoundTrip) {
  ObsQuiet quiet;
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.enable();
  reg.counter("vdep_test_requests_total", "test counter").inc(7);
  obs::Histogram& h =
      reg.histogram("vdep_test_latency_ns", {100, 1000}, "test histogram");
  h.observe(50);
  h.observe(500);
  h.observe(5000);

  const std::string text = reg.prometheus_text();
  // Parse the exposition back: name{labels} value per line.
  std::map<std::string, double> values;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    values[line.substr(0, sp)] = std::atof(line.c_str() + sp + 1);
  }
  EXPECT_EQ(values["vdep_test_requests_total"], 7);
  // Cumulative le buckets: 1 at <=100, 2 at <=1000, 3 at +Inf == _count.
  EXPECT_EQ(values["vdep_test_latency_ns_bucket{le=\"100\"}"], 1);
  EXPECT_EQ(values["vdep_test_latency_ns_bucket{le=\"1000\"}"], 2);
  EXPECT_EQ(values["vdep_test_latency_ns_bucket{le=\"+Inf\"}"], 3);
  EXPECT_EQ(values["vdep_test_latency_ns_sum"], 50 + 500 + 5000);
  EXPECT_EQ(values["vdep_test_latency_ns_count"], 3);
  // HELP/TYPE headers are present for both metric families.
  EXPECT_GE(count_substr(text, "# HELP"), 2u);
  EXPECT_GE(count_substr(text, "# TYPE"), 2u);
}

TEST(Metrics, JsonLinesParse) {
  ObsQuiet quiet;
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.enable();
  reg.counter("vdep_test_c", "c").inc(3);
  reg.histogram("vdep_test_h", {10}, "h").observe(4);
  const std::string lines = reg.json_lines();
  std::size_t pos = 0, parsed = 0;
  while (pos < lines.size()) {
    std::size_t eol = lines.find('\n', pos);
    if (eol == std::string::npos) eol = lines.size();
    std::string line = lines.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    EXPECT_TRUE(JsonParser(line).parse()) << line;
    ++parsed;
  }
  EXPECT_GE(parsed, 2u);
}

TEST(Metrics, RunPublishesWorkerMetrics) {
  ObsQuiet quiet;
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.enable();
  Compiler compiler;
  CompiledLoop loop = compiler.compile(core::example41(256)).value();
  ExecReport rep = run_traced(loop, 4);
  obs::Counter& tasks = reg.counter("vdep_tasks_total");
  obs::Counter& iters = reg.counter("vdep_iterations_total");
  EXPECT_EQ(tasks.value(), rep.tasks);
  EXPECT_EQ(iters.value(), rep.iterations);
  // The leaf-size histogram observed one sample per leaf.
  obs::Histogram& leaf = reg.histogram("vdep_leaf_cells", {});
  EXPECT_EQ(leaf.count(), rep.tasks);
}

// ------------------------------------------------------------------ phases

TEST(Phases, ExecReportBreakdownCoversWall) {
  ObsQuiet quiet;
  // Aggregated over the paper suite: the phase sum must account for the
  // wall time within 10% (the remainder is unattributed glue).
  i64 wall = 0, phases = 0;
  for (core::NamedNest& c : core::paper_suite(96)) {
    Compiler compiler;
    CompiledLoop loop = compiler.compile(std::move(c.nest)).value();
    exec::ArrayStore store(loop.nest());
    store.fill_pattern();
    ExecPolicy policy;
    policy.threads(2).digest(false);
    Expected<ExecReport> r = loop.execute(policy, store);
    ASSERT_TRUE(r) << c.name;
    i64 sum = r->analyze_ns + r->codegen_ns + r->jit_compile_ns + r->exec_ns;
    EXPECT_GT(r->exec_ns, 0) << c.name;
    EXPECT_LE(sum, r->wall_ns) << c.name;
    wall += r->wall_ns;
    phases += sum;
  }
  EXPECT_GE(phases, wall - wall / 10) << "phase sum " << phases
                                      << " vs wall " << wall;
}

TEST(Phases, TimerIsInertWithoutScope) {
  // No PhaseScope open on this thread: the timer must not record anywhere.
  { obs::PhaseTimer t(obs::Phase::kExec); }
  obs::PhaseScope scope;
  { obs::PhaseTimer t(obs::Phase::kExec); }
  EXPECT_GE(scope.ns(obs::Phase::kExec), 0);
  EXPECT_EQ(scope.ns(obs::Phase::kParse), 0);
}

// ------------------------------------------------------------------- batch

TEST(Batch, QueueLatencyPopulated) {
  ObsQuiet quiet;
  Compiler compiler;
  CompiledLoop loop = compiler.compile(core::example41(128)).value();
  std::vector<exec::ArrayStore> stores;
  std::vector<exec::ArrayStore*> ptrs;
  for (int k = 0; k < 6; ++k) {
    stores.emplace_back(loop.nest());
    stores.back().fill_pattern();
  }
  for (exec::ArrayStore& s : stores) ptrs.push_back(&s);
  ExecPolicy policy;
  policy.threads(4).digest(false);
  Expected<std::vector<ExecReport>> reps =
      loop.execute_batch(std::span<exec::ArrayStore* const>(ptrs), policy);
  ASSERT_TRUE(reps);
  for (const ExecReport& r : *reps) {
    // queue_ns stamps at least 1 once the request's first descriptor ran.
    EXPECT_GE(r.queue_ns, 1);
    EXPECT_LE(r.queue_ns, r.wall_ns);
    EXPECT_EQ(r.exec_ns, r.wall_ns - r.queue_ns);
  }
}

}  // namespace
}  // namespace vdep
