// Tests for the transformation framework: Theorem 1 legality, the
// elementary legal operations (Corollaries 2-4), Algorithm 1 and the
// Theorem 2 partitioner, plus the combined planner.
#include <gtest/gtest.h>

#include <set>

#include "intlin/det.h"
#include "loopir/builder.h"
#include "trans/algorithm1.h"
#include "trans/legality.h"
#include "trans/partition.h"
#include "trans/planner.h"
#include "support/rng.h"

namespace vdep::trans {
namespace {

using dep::Pdm;
using dep::compute_pdm;
using loopir::Expr;
using loopir::LoopNest;
using loopir::LoopNestBuilder;

Mat random_hnf(Rng& rng, int rows, int cols) {
  Mat gens(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) gens.at(r, c) = rng.uniform(-4, 4);
  return intlin::hermite_normal_form(gens);
}

// ----------------------------------------------------------- legality

TEST(Legality, IdentityIsAlwaysLegal) {
  Mat h = Mat::from_rows({{2, -2}});
  EXPECT_TRUE(is_legal_transform(h, Mat::identity(2)));
}

TEST(Legality, Theorem1AcceptsKnownLegalTransform) {
  // Example 4.1: H = [2,-2], T = [[1,1],[1,0]] gives H*T = [0,2].
  Mat h = Mat::from_rows({{2, -2}});
  Mat t = Mat::from_rows({{1, 1}, {1, 0}});
  EXPECT_TRUE(is_legal_transform(h, t));
  EXPECT_EQ(h * t, Mat::from_rows({{0, 2}}));
}

TEST(Legality, Theorem1RejectsOrderReversal) {
  // Full reversal maps (2,-2) to (-2,2): lexicographically negative.
  Mat h = Mat::from_rows({{2, -2}});
  Mat rev = Mat::from_rows({{-1, 0}, {0, -1}});
  EXPECT_FALSE(is_legal_transform(h, rev));
}

TEST(Legality, RejectsNonUnimodular) {
  Mat h = Mat::from_rows({{1, 0}});
  EXPECT_FALSE(is_legal_transform(h, Mat::from_rows({{2, 0}, {0, 1}})));
}

TEST(Legality, EmptyPdmAcceptsAnyUnimodular) {
  Mat h(0, 2);
  EXPECT_TRUE(is_legal_transform(h, Mat::from_rows({{0, 1}, {1, 0}})));
  EXPECT_TRUE(is_legal_transform(h, Mat::from_rows({{-1, 0}, {0, -1}})));
  EXPECT_FALSE(is_legal_transform(h, Mat::from_rows({{2, 0}, {0, 1}})));
}

TEST(Legality, InterchangeOnDiagonalPdmIsIllegal) {
  // H = [[1,0],[0,1]]: interchange maps distance (0,1)|(1,-5)... the row
  // (1, -5) is admissible (t = (1,-5) lex positive) and maps to (-5, 1):
  // lex negative. Theorem 1 detects this via the echelon shape.
  Mat h = Mat::from_rows({{1, 0}, {0, 1}});
  EXPECT_FALSE(interchange_is_legal(h, 0, 1));
}

TEST(Legality, InterchangeLegalWhenColumnDecoupled) {
  // H = [[0,1,0],[0,0,2]] (loops 2,3 carry deps; loop 1 free):
  // interchanging levels 0 and 1 hoists the free loop — legal.
  Mat h = Mat::from_rows({{0, 1, 0}, {0, 0, 2}});
  EXPECT_TRUE(interchange_is_legal(h, 0, 1));
  EXPECT_FALSE(interchange_is_legal(h, 1, 2));
}

TEST(Legality, RightSkewAlwaysLegalProperty) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    int n = static_cast<int>(rng.uniform(2, 4));
    Mat h = random_hnf(rng, static_cast<int>(rng.uniform(1, 3)), n);
    if (h.rows() == 0) continue;
    int src = static_cast<int>(rng.uniform(0, n - 2));
    int dst = static_cast<int>(rng.uniform(src + 1, n - 1));
    i64 k = rng.uniform(-5, 5);
    EXPECT_TRUE(is_legal_transform(h, right_skew(n, src, dst, k)))
        << h.to_string() << " skew(" << src << "," << dst << "," << k << ")";
  }
}

TEST(Legality, ShiftZeroColumnToFrontProperty) {
  // Corollary 3: moving a zero column to the leftmost position is legal.
  Rng rng(123);
  for (int iter = 0; iter < 100; ++iter) {
    int n = 3;
    Mat h = random_hnf(rng, 2, n);
    if (h.rows() == 0) continue;
    for (int c = 0; c < n; ++c) {
      if (!h.col_is_zero(c)) continue;
      EXPECT_TRUE(shift_is_legal(h, c, 0)) << h.to_string() << " col " << c;
      Mat moved = h * cycle(n, c, 0);
      EXPECT_TRUE(moved.col_is_zero(0));
    }
  }
}

TEST(Legality, CompositionOfLegalStepsIsLegal) {
  // Corollary 1 on example 4.1's op sequence.
  Mat h = Mat::from_rows({{2, -2}});
  Mat t1 = right_skew(2, 0, 1, 1);  // H*t1 = [2, 0]
  ASSERT_TRUE(is_legal_transform(h, t1));
  Mat h1 = h * t1;
  Mat t2 = cycle(2, 1, 0);  // move zero column of [2,0] to front
  ASSERT_TRUE(is_legal_transform(h1, t2));
  EXPECT_TRUE(legal_composition(h, t1, t2));
  EXPECT_TRUE(is_legal_transform(h, t1 * t2));
  EXPECT_EQ(h * (t1 * t2), Mat::from_rows({{0, 2}}));
}

TEST(Legality, CycleMatrixShape) {
  // cycle(3, 2, 0) sends old index 2 to position 0: (a,b,c) -> (c,a,b).
  Mat t = cycle(3, 2, 0);
  EXPECT_EQ(intlin::vec_mat_mul(Vec{10, 20, 30}, t), (Vec{30, 10, 20}));
  EXPECT_TRUE(intlin::is_unimodular(t));
  EXPECT_EQ(cycle(3, 0, 0), Mat::identity(3));
}

TEST(Legality, ReversalAndInterchangeAreUnimodular) {
  EXPECT_TRUE(intlin::is_unimodular(reversal(3, 1)));
  EXPECT_TRUE(intlin::is_unimodular(interchange(4, 0, 3)));
  EXPECT_TRUE(intlin::is_unimodular(skew(3, 2, 0, -7)));
}

// --------------------------------------------------------- algorithm 1

TEST(Algorithm1, Example41Pdm) {
  Mat h = Mat::from_rows({{2, -2}});
  Algorithm1Result r = algorithm1(h);
  EXPECT_EQ(r.zero_columns, 1);
  EXPECT_TRUE(r.transformed_pdm.col_is_zero(0));
  EXPECT_EQ(r.transformed_pdm.at(0, 1), 2);  // the full-rank block [2]
  EXPECT_TRUE(intlin::is_unimodular(r.t));
  EXPECT_TRUE(is_legal_transform(h, r.t));
  EXPECT_FALSE(r.ops.empty());
}

TEST(Algorithm1, AlreadyZeroColumn) {
  // H = [[0, 1]]: loop 0 independent; algorithm must expose 1 zero column.
  Mat h = Mat::from_rows({{0, 1}});
  Algorithm1Result r = algorithm1(h);
  EXPECT_EQ(r.zero_columns, 1);
  EXPECT_TRUE(r.transformed_pdm.col_is_zero(0));
}

TEST(Algorithm1, FullRankIsANoop) {
  Mat h = Mat::from_rows({{2, 1}, {0, 2}});
  Algorithm1Result r = algorithm1(h);
  EXPECT_EQ(r.zero_columns, 0);
  EXPECT_EQ(r.t, Mat::identity(2));
  EXPECT_EQ(r.transformed_pdm, h);
}

TEST(Algorithm1, EmptyPdmAllColumnsZero) {
  Mat h(0, 3);
  Algorithm1Result r = algorithm1(h);
  EXPECT_EQ(r.zero_columns, 3);
  EXPECT_EQ(r.t, Mat::identity(3));
}

TEST(Algorithm1, ThreeDeepRankOne) {
  // H = [1, 2, 3]: two DOALL loops after transformation.
  Mat h = Mat::from_rows({{1, 2, 3}});
  Algorithm1Result r = algorithm1(h);
  EXPECT_EQ(r.zero_columns, 2);
  EXPECT_TRUE(r.transformed_pdm.col_is_zero(0));
  EXPECT_TRUE(r.transformed_pdm.col_is_zero(1));
  EXPECT_GT(r.transformed_pdm.at(0, 2), 0);
  EXPECT_TRUE(is_legal_transform(h, r.t));
  // Content is preserved: gcd of the row is the surviving pivot.
  EXPECT_EQ(r.transformed_pdm.at(0, 2), 1);
}

TEST(Algorithm1, PreservesContentOfRankOneRow) {
  Mat h = Mat::from_rows({{4, -6}});
  Algorithm1Result r = algorithm1(h);
  EXPECT_EQ(r.zero_columns, 1);
  EXPECT_EQ(r.transformed_pdm.at(0, 1), 2);  // gcd(4,6)
}

TEST(Algorithm1Property, RandomPdmInvariants) {
  Rng rng(31337);
  int nontrivial = 0;
  for (int iter = 0; iter < 300; ++iter) {
    int n = static_cast<int>(rng.uniform(1, 4));
    int gens = static_cast<int>(rng.uniform(1, 3));
    Mat h = random_hnf(rng, gens, n);
    Algorithm1Result r = algorithm1(h);
    int rho = h.rows();
    EXPECT_EQ(r.zero_columns, n - rho);
    EXPECT_TRUE(intlin::is_unimodular(r.t));
    EXPECT_EQ(h * r.t, r.transformed_pdm);
    EXPECT_TRUE(is_legal_transform(h, r.t)) << h.to_string();
    for (int c = 0; c < r.zero_columns; ++c)
      EXPECT_TRUE(r.transformed_pdm.col_is_zero(c));
    EXPECT_TRUE(intlin::is_echelon_lex_positive(r.transformed_pdm));
    if (rho > 0 && rho < n) ++nontrivial;
  }
  EXPECT_GT(nontrivial, 50);
}

TEST(Algorithm1Property, TransformedLatticeIsOriginalTimesT) {
  Rng rng(2718);
  for (int iter = 0; iter < 100; ++iter) {
    int n = 3;
    Mat h = random_hnf(rng, 2, n);
    if (h.rows() == 0) continue;
    Algorithm1Result r = algorithm1(h);
    // Every row d of H maps to d*T inside lattice(H*T) and back.
    intlin::Lattice lt = intlin::Lattice::from_generators(r.transformed_pdm);
    for (int row = 0; row < h.rows(); ++row)
      EXPECT_TRUE(lt.contains(intlin::vec_mat_mul(h.row(row), r.t)));
  }
}

TEST(Algorithm1, RejectsNonHnfInput) {
  EXPECT_THROW(algorithm1(Mat::from_rows({{0, 1}, {1, 0}})), PreconditionError);
}

// --------------------------------------------------------- partitioning

TEST(Partitioning, Example42FourClasses) {
  Partitioning p(Mat::from_rows({{2, 1}, {0, 2}}));
  EXPECT_EQ(p.num_classes(), 4);
  EXPECT_EQ(p.dim(), 2);
}

TEST(Partitioning, ResidueMatchesLatticeMembership) {
  Partitioning p(Mat::from_rows({{2, 1}, {0, 2}}));
  intlin::Lattice lat =
      intlin::Lattice::from_generators(Mat::from_rows({{2, 1}, {0, 2}}));
  for (i64 a1 = -4; a1 <= 4; ++a1)
    for (i64 a2 = -4; a2 <= 4; ++a2)
      for (i64 b1 = -4; b1 <= 4; ++b1)
        for (i64 b2 = -4; b2 <= 4; ++b2) {
          Vec x{a1, a2}, y{b1, b2};
          bool same = p.residue_of(x) == p.residue_of(y);
          EXPECT_EQ(same, lat.contains(intlin::sub(y, x)))
              << intlin::to_string(x) << " vs " << intlin::to_string(y);
        }
}

TEST(Partitioning, SkewedOffsetsInResidue) {
  // H = [[2,1],[0,2]]: iterations (0,0) and (2,1) are in the same class
  // ((2,1) is a lattice row), but (2,0) is not ((2,0) - (0,0) = (2,0) is
  // not in the lattice).
  Partitioning p(Mat::from_rows({{2, 1}, {0, 2}}));
  EXPECT_EQ(p.residue_of(Vec{0, 0}), p.residue_of(Vec{2, 1}));
  EXPECT_NE(p.residue_of(Vec{0, 0}), p.residue_of(Vec{2, 0}));
}

TEST(Partitioning, ClassIdRoundTrip) {
  Partitioning p(Mat::from_rows({{3, 1}, {0, 2}}));
  EXPECT_EQ(p.num_classes(), 6);
  std::set<i64> ids;
  for (i64 id = 0; id < 6; ++id) {
    Vec label = p.class_label(id);
    EXPECT_GE(label[0], 0);
    EXPECT_LT(label[0], 3);
    EXPECT_GE(label[1], 0);
    EXPECT_LT(label[1], 2);
    // A representative iteration with this residue encodes back to id.
    EXPECT_EQ(p.class_id(label), id);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 6u);
}

LoopNest simple_square(i64 n) {
  LoopNestBuilder b;
  b.loop("i1", -n, n).loop("i2", -n, n);
  b.array("A", {{-3 * n - 10, 3 * n + 10}});
  b.assign(b.ref("A", {b.affine({1, -2}, 4)}),
           Expr::add(b.read("A", {b.affine({1, -2}, 0)}), Expr::constant(1)));
  return b.build();
}

TEST(Partitioning, ClassScanCoversSpaceDisjointly) {
  LoopNest nest = simple_square(5);
  Partitioning p(Mat::from_rows({{2, 1}, {0, 2}}));
  std::set<Vec> seen;
  i64 total = 0;
  for (i64 id = 0; id < p.num_classes(); ++id) {
    Vec label = p.class_label(id);
    Vec prev;
    bool first = true;
    p.for_each_class_iteration(nest, label, [&](const Vec& i) {
      EXPECT_TRUE(nest.contains(i));
      EXPECT_EQ(p.class_id(i), id);            // member of the right class
      EXPECT_TRUE(seen.insert(i).second);      // disjoint across classes
      if (!first) {
        EXPECT_TRUE(intlin::lex_less(prev, i));  // lex order
      }
      prev = i;
      first = false;
      ++total;
    });
  }
  EXPECT_EQ(total, nest.iteration_count());  // classes cover the space
}

TEST(Partitioning, TrailingBlockScanWithPrefix) {
  // 3-deep nest, partition dims 1..2 with H = [[2,0],[0,2]].
  LoopNestBuilder b;
  b.loop("j0", 0, 1).loop("j1", -2, 2).loop("j2", -2, 2);
  b.array("A", {{-20, 20}});
  b.assign(b.ref("A", {b.affine({0, 1, -2}, 4)}),
           b.read("A", {b.affine({0, 1, -2}, 0)}));
  LoopNest nest = b.build();
  Partitioning p(Mat::from_rows({{2, 0}, {0, 2}}));
  std::set<Vec> seen;
  for (i64 j0 = 0; j0 <= 1; ++j0) {
    for (i64 id = 0; id < 4; ++id) {
      Vec iter{j0, 0, 0};
      p.for_each_class_iteration_from(nest, 1, p.class_label(id), iter,
                                      [&](const Vec& i) {
                                        EXPECT_EQ(i[0], j0);
                                        EXPECT_TRUE(seen.insert(i).second);
                                      });
    }
  }
  EXPECT_EQ(static_cast<i64>(seen.size()), nest.iteration_count());
}

TEST(Partitioning, RejectsNonTriangular) {
  EXPECT_THROW(Partitioning(Mat::from_rows({{0, 1}, {1, 0}})), PreconditionError);
  EXPECT_THROW(Partitioning(Mat::from_rows({{1, 2, 3}})), PreconditionError);
}

TEST(PartitioningProperty, RandomLatticesPartitionCorrectly) {
  Rng rng(60221023);
  for (int iter = 0; iter < 50; ++iter) {
    Mat gens(2, 2);
    do {
      for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 2; ++c) gens.at(r, c) = rng.uniform(-3, 3);
    } while (intlin::determinant(gens) == 0);
    Mat h = intlin::hermite_normal_form(gens);
    Partitioning p(h);
    intlin::Lattice lat = intlin::Lattice::from_generators(h);
    EXPECT_EQ(p.num_classes(), lat.index());
    // Count residues over a big box: every class appears equally often
    // in any box of side num_classes * k.
    std::map<i64, int> counts;
    i64 side = p.num_classes();
    for (i64 a = 0; a < side * 2; ++a)
      for (i64 b = 0; b < side * 2; ++b) counts[p.class_id(Vec{a, b})]++;
    EXPECT_EQ(static_cast<i64>(counts.size()), p.num_classes());
  }
}

// -------------------------------------------------------------- planner

TEST(Planner, Example41Plan) {
  LoopNestBuilder b;
  b.loop("i1", -10, 10).loop("i2", -10, 10);
  b.array("A", {{-70, 70}, {-70, 70}});
  b.assign(b.ref("A", {b.affine({3, -2}, 2), b.affine({-2, 3}, -2)}),
           Expr::add(b.read("A", {b.idx(0), b.idx(1)}), Expr::constant(1)));
  Pdm pdm = compute_pdm(b.build());
  ASSERT_EQ(pdm.matrix(), Mat::from_rows({{2, -2}}));
  TransformPlan plan = plan_transform(pdm);
  EXPECT_EQ(plan.num_doall, 1);
  ASSERT_TRUE(plan.partition.has_value());
  EXPECT_EQ(plan.partition_classes, 2);
  EXPECT_FALSE(plan.is_identity_transform());
  EXPECT_TRUE(is_legal_transform(pdm.matrix(), plan.t));
}

TEST(Planner, Example42Plan) {
  Pdm pdm(2, Mat::from_rows({{2, 1}, {0, 2}}), {});
  TransformPlan plan = plan_transform(pdm);
  EXPECT_EQ(plan.num_doall, 0);
  EXPECT_TRUE(plan.is_identity_transform());
  ASSERT_TRUE(plan.partition.has_value());
  EXPECT_EQ(plan.partition_classes, 4);
}

TEST(Planner, EmptyPdmFullyParallel) {
  Pdm pdm(3, Mat(0, 3), {});
  TransformPlan plan = plan_transform(pdm);
  EXPECT_EQ(plan.num_doall, 3);
  EXPECT_FALSE(plan.partition.has_value());
  EXPECT_EQ(plan.partition_classes, 1);
}

TEST(Planner, UniformUnitDistanceNoPartition) {
  // H = [[1,0],[0,1]]: full rank but det 1 — nothing to partition.
  Pdm pdm(2, Mat::identity(2), {});
  TransformPlan plan = plan_transform(pdm);
  EXPECT_EQ(plan.num_doall, 0);
  EXPECT_FALSE(plan.partition.has_value());
  EXPECT_EQ(plan.partition_classes, 1);
}

TEST(Planner, ZeroColumnBecomesOuterDoall) {
  // H = [[1,0]] (only loop 0 carries the dependence): one DOALL after
  // transformation; no partition (pivot 1).
  Pdm pdm(2, Mat::from_rows({{1, 0}}), {});
  TransformPlan plan = plan_transform(pdm);
  EXPECT_EQ(plan.num_doall, 1);
  EXPECT_FALSE(plan.partition.has_value());
  // The dependent loop moved innermost: H*T = [0, 1].
  EXPECT_EQ(plan.transformed_pdm, Mat::from_rows({{0, 1}}));
}

TEST(PlannerProperty, ParallelismNeverWorseThanSerial) {
  Rng rng(8080);
  for (int iter = 0; iter < 100; ++iter) {
    int n = static_cast<int>(rng.uniform(1, 3));
    Mat h = random_hnf(rng, static_cast<int>(rng.uniform(1, 3)), n);
    Pdm pdm(n, h, {});
    TransformPlan plan = plan_transform(pdm);
    EXPECT_GE(plan.num_doall, n - h.rows());
    EXPECT_GE(plan.partition_classes, 1);
    EXPECT_TRUE(is_legal_transform(h, plan.t));
  }
}

}  // namespace
}  // namespace vdep::trans
