// Tests for the on-disk artifact cache (src/cache/): envelope integrity,
// plan/kernel round trips across fresh sessions, counter-verified zero-cc
// warm starts, corruption and toolchain-upgrade behaviour, LRU eviction,
// multi-process fork stress with bit-identical execution, and the
// cold-start bugfixes that ride along (stale workdir sweep, PATH hygiene).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/vdep.h"
#include "cache/disk_cache.h"
#include "cache/serialize.h"
#include "core/suite.h"
#include "exec/array_store.h"
#include "dep/pdm.h"
#include "exec/interpreter.h"
#include "jit/toolchain.h"
#include "obs/metrics.h"
#include "trans/planner.h"

namespace vdep {
namespace {

namespace fs = std::filesystem;
using intlin::i64;

bool have_toolchain() { return jit::discover_toolchain().has_value(); }

/// Restores an environment variable on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }

 private:
  std::string name_, old_;
  bool had_ = false;
};

/// A fresh directory under the system temp root, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const char* tag) {
    std::string templ =
        (fs::temp_directory_path() / (std::string("vdep-") + tag + "-XXXXXX"))
            .string();
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    path_ = ::mkdtemp(buf.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A 1-D indirect nest `A[B[i]] = A[B[i]] + C[i]`: no static PDM, the plan
/// degrades to the inspector identity plan — which must round-trip too.
loopir::LoopNest indirect_nest(i64 n) {
  loopir::LoopNestBuilder b;
  b.loop("i", 0, n - 1);
  b.array("A", {{0, n}});
  b.array("B", {{0, n - 1}});
  b.array("C", {{0, n - 1}});
  loopir::ArrayRef lhs;
  lhs.array = "A";
  lhs.subscripts = {b.cst(0)};
  lhs.indirect = {loopir::IndirectSubscript{"B", b.idx(0)}};
  loopir::ArrayRef rhs_a = lhs;
  b.assign(lhs, loopir::Expr::add(loopir::Expr::read(rhs_a),
                                  loopir::Expr::read(b.ref("C", {b.idx(0)}))));
  return b.build();
}

i64 counter_value(const char* name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

/// Enables metrics for the test body and restores the prior state.
class ScopedMetrics {
 public:
  ScopedMetrics() : was_(obs::MetricsRegistry::enabled()) {
    obs::MetricsRegistry::instance().enable();
  }
  ~ScopedMetrics() {
    if (!was_) obs::MetricsRegistry::instance().disable();
  }

 private:
  bool was_;
};

// -------------------------------------------------------------- envelope

TEST(Envelope, RoundTripsAndRejectsDamage) {
  std::string body = "the artifact body \0 with embedded nul";
  std::string enc = cache::envelope(body);
  auto back = cache::open_envelope(enc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, body);

  // Truncation at every point fails the length or digest check.
  for (std::size_t cut : {enc.size() - 1, enc.size() / 2, std::size_t{3}})
    EXPECT_FALSE(cache::open_envelope(enc.substr(0, cut)).has_value());
  // Appended garbage is not silently ignored.
  EXPECT_FALSE(cache::open_envelope(enc + "x").has_value());
  // A single flipped body bit fails the digest.
  std::string flipped = enc;
  flipped[flipped.size() - 1] ^= 0x40;
  EXPECT_FALSE(cache::open_envelope(flipped).has_value());
  // Wrong magic is a different format, not a parse attempt.
  std::string magic = enc;
  magic[0] = 'X';
  EXPECT_FALSE(cache::open_envelope(magic).has_value());
}

// ------------------------------------------------------- plan round trips

TEST(PlanDiskCache, SecondSessionLoadsPlanFromDisk) {
  TempDir dir("plancache");
  loopir::LoopNest nest = core::example42(12);

  Compiler first(CompileOptions{}.disk_cache(dir.path()));
  auto a = first.compile(nest);
  ASSERT_TRUE(a.has_value()) << a.error().to_string();

  auto disk = cache::DiskCache::resolve(dir.path(), true);
  ASSERT_NE(disk, nullptr);
  auto before = disk->stats();

  // A fresh session has a cold in-memory cache; the plan must come off
  // disk, not from a second full analysis.
  Compiler second(CompileOptions{}.disk_cache(dir.path()));
  auto b = second.compile(nest);
  ASSERT_TRUE(b.has_value()) << b.error().to_string();
  EXPECT_GT(disk->stats().hits, before.hits);

  // The loaded plan is the same certified plan, not a lookalike.
  EXPECT_TRUE(b->plan().legal);
  EXPECT_EQ(b->plan().doall_loops, a->plan().doall_loops);
  EXPECT_EQ(b->plan().partition_classes, a->plan().partition_classes);
  EXPECT_EQ(b->plan().transform.t.to_string(), a->plan().transform.t.to_string());
  EXPECT_EQ(b->analysis().pdm.matrix().to_string(),
            a->analysis().pdm.matrix().to_string());
  EXPECT_EQ(b->analysis().rank, a->analysis().rank);
}

TEST(PlanDiskCache, NonAffinePlansRoundTripToo) {
  TempDir dir("planindirect");
  loopir::LoopNest nest = indirect_nest(16);

  Compiler first(CompileOptions{}.disk_cache(dir.path()));
  auto a = first.compile(nest);
  ASSERT_TRUE(a.has_value()) << a.error().to_string();
  ASSERT_FALSE(a->analysis().affine);

  auto disk = cache::DiskCache::resolve(dir.path(), true);
  ASSERT_NE(disk, nullptr);
  auto before = disk->stats();
  Compiler second(CompileOptions{}.disk_cache(dir.path()));
  auto b = second.compile(nest);
  ASSERT_TRUE(b.has_value()) << b.error().to_string();
  EXPECT_GT(disk->stats().hits, before.hits);
  EXPECT_FALSE(b->analysis().affine);
  EXPECT_EQ(b->plan().doall_loops, 0);
}

TEST(PlanDiskCache, CorruptedPlanFilesAreRecompiledNotCrashed) {
  TempDir dir("plancorrupt");
  loopir::LoopNest nest = core::example41(10);

  {
    Compiler c(CompileOptions{}.disk_cache(dir.path()));
    ASSERT_TRUE(c.compile(nest).has_value());
  }

  // Damage every stored plan three ways across three rounds: truncate,
  // bit-flip, replace with garbage. Every round must compile fine and
  // repopulate the cache.
  for (int round = 0; round < 3; ++round) {
    for (const auto& de : fs::directory_iterator(dir.path() + "/plans")) {
      fs::path p = de.path();
      std::ifstream in(p, std::ios::binary);
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      in.close();
      if (round == 0 && bytes.size() > 8) bytes.resize(bytes.size() / 2);
      if (round == 1 && !bytes.empty()) bytes[bytes.size() / 2] ^= 0x20;
      if (round == 2) bytes = "not an artifact at all";
      std::ofstream out(p, std::ios::binary | std::ios::trunc);
      out << bytes;
    }
    Compiler c(CompileOptions{}.disk_cache(dir.path()));
    auto loop = c.compile(nest);
    ASSERT_TRUE(loop.has_value()) << "round " << round;
    EXPECT_TRUE(loop->plan().legal);
  }
}

TEST(PlanDiskCache, DisabledSwitchAndMissingEnvMeanNoDiskTraffic) {
  TempDir dir("plandisabled");
  ScopedEnv env("VDEP_CACHE_DIR", nullptr);
  Compiler off(CompileOptions{}.disk_cache(dir.path()).disk_cache_enabled(false));
  ASSERT_TRUE(off.compile(core::example42(8)).has_value());
  EXPECT_TRUE(!fs::exists(dir.path() + "/plans") ||
              fs::is_empty(dir.path() + "/plans"));

  // No directory configured anywhere: resolve yields no cache.
  EXPECT_EQ(cache::DiskCache::resolve("", true), nullptr);
}

TEST(PlanDiskCache, EnvHookEngagesTheCache) {
  TempDir dir("planenv");
  ScopedEnv env("VDEP_CACHE_DIR", dir.path().c_str());
  Compiler c;  // no explicit dir: $VDEP_CACHE_DIR drives it
  ASSERT_TRUE(c.compile(core::example42(9)).has_value());
  bool stored = false;
  for (const auto& de : fs::directory_iterator(dir.path() + "/plans"))
    stored |= de.path().extension() == ".plan";
  EXPECT_TRUE(stored);
}

// --------------------------------------------------------------- kernels

TEST(KernelDiskCache, FreshSessionServesKernelWithZeroCcInvocations) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  TempDir dir("kerncache");
  ScopedMetrics metrics;
  loopir::LoopNest nest = core::example42(16);
  jit::JitOptions jo;
  jo.cache_dir = dir.path();

  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore init = ref;
  exec::run_sequential(nest, ref);

  i64 cold_checksum = 0;
  {
    Compiler c(CompileOptions{}.disk_cache(dir.path()));
    auto loop = c.compile(nest);
    ASSERT_TRUE(loop.has_value());
    auto k = loop->jit(jo);
    ASSERT_TRUE(k.has_value()) << k.error().to_string();
    exec::ArrayStore got = init;
    ExecPolicy policy;
    policy.threads(2).backend(ExecBackend::kJit).jit_options(jo);
    auto rep = loop->execute(policy, got);
    ASSERT_TRUE(rep.has_value());
    EXPECT_TRUE(rep->jit);
    EXPECT_TRUE(ref == got);
    cold_checksum = rep->checksum;
  }

  // Fresh session: cold in-memory memos, warm disk. The kernel must load
  // with ZERO cc subprocesses — that is the whole point of the cache.
  i64 builds_before = counter_value("vdep_jit_builds_total");
  {
    Compiler c(CompileOptions{}.disk_cache(dir.path()));
    auto loop = c.compile(nest);
    ASSERT_TRUE(loop.has_value());
    auto k = loop->jit(jo);
    ASSERT_TRUE(k.has_value()) << k.error().to_string();
    EXPECT_TRUE((*k)->library_path().empty());  // default lifecycle holds
    exec::ArrayStore got = init;
    ExecPolicy policy;
    policy.threads(2).backend(ExecBackend::kJit).jit_options(jo);
    auto rep = loop->execute(policy, got);
    ASSERT_TRUE(rep.has_value());
    EXPECT_TRUE(rep->jit);
    EXPECT_TRUE(ref == got);           // bit-identical store
    EXPECT_EQ(rep->checksum, cold_checksum);
  }
  EXPECT_EQ(counter_value("vdep_jit_builds_total"), builds_before)
      << "warm-disk start still invoked cc";
}

TEST(KernelDiskCache, VerifierVerdictSurvivesReload) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  TempDir dir("kernverdict");
  jit::JitOptions jo;
  jo.cache_dir = dir.path();
  loopir::LoopNest nest = core::example42(16);

  std::string cold_verdict;
  bool cold_partitioned = false;
  {
    Compiler c;
    auto loop = c.compile(nest);
    ASSERT_TRUE(loop.has_value());
    auto k = loop->jit(jo);
    ASSERT_TRUE(k.has_value());
    cold_verdict = (*k)->partition_verdict();
    cold_partitioned = (*k)->partitioned();
  }
  Compiler c;
  auto loop = c.compile(nest);
  ASSERT_TRUE(loop.has_value());
  auto k = loop->jit(jo);
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ((*k)->partitioned(), cold_partitioned);
  EXPECT_EQ((*k)->partition_verdict(), cold_verdict);
  EXPECT_FALSE((*k)->source().empty());
}

TEST(KernelDiskCache, DeterministicCompileFailureIsCachedAcrossSessions) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  TempDir dir("kernnegative");
  ScopedMetrics metrics;
  jit::JitOptions bad;
  bad.cache_dir = dir.path();
  bad.extra_flags = "--definitely-not-a-flag-xyz";
  loopir::LoopNest nest = core::example41(8);

  {
    Compiler c;
    auto loop = c.compile(nest);
    ASSERT_TRUE(loop.has_value());
    auto k = loop->jit(bad);
    ASSERT_FALSE(k.has_value());
    EXPECT_EQ(k.error().kind, ErrorKind::kUnsupported);
  }
  // Fresh session: the failure must come from the negative disk entry, not
  // a second doomed cc run.
  i64 builds_before = counter_value("vdep_jit_builds_total");
  Compiler c;
  auto loop = c.compile(nest);
  ASSERT_TRUE(loop.has_value());
  auto k = loop->jit(bad);
  ASSERT_FALSE(k.has_value());
  EXPECT_EQ(k.error().kind, ErrorKind::kUnsupported);
  EXPECT_EQ(counter_value("vdep_jit_builds_total"), builds_before);
}

TEST(KernelDiskCache, CorruptedSoIsRejectedAndRebuilt) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  TempDir dir("kerncorrupt");
  ScopedMetrics metrics;
  jit::JitOptions jo;
  jo.cache_dir = dir.path();
  loopir::LoopNest nest = core::example42(14);

  {
    Compiler c;
    auto loop = c.compile(nest);
    ASSERT_TRUE(loop.has_value());
    ASSERT_TRUE(loop->jit(jo).has_value());
  }
  // Flip bits in every cached .so; digests must catch it and recompile.
  for (const auto& de : fs::directory_iterator(dir.path() + "/kernels")) {
    if (de.path().extension() != ".so") continue;
    std::fstream f(de.path(), std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(64);
    f.put('\x5a');
  }
  i64 builds_before = counter_value("vdep_jit_builds_total");
  Compiler c;
  auto loop = c.compile(nest);
  ASSERT_TRUE(loop.has_value());
  auto k = loop->jit(jo);
  ASSERT_TRUE(k.has_value()) << k.error().to_string();
  EXPECT_GT(counter_value("vdep_jit_builds_total"), builds_before)
      << "a corrupted .so must be rebuilt, not dlopen-ed";

  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::ArrayStore got = ref;
  exec::run_sequential(nest, ref);
  ExecPolicy policy;
  policy.threads(2).backend(ExecBackend::kJit).jit_options(jo);
  auto rep = loop->execute(policy, got);
  ASSERT_TRUE(rep.has_value());
  EXPECT_TRUE(ref == got);
}

TEST(KernelDiskCache, ToolchainVersionChangeMissesInsteadOfServingStaleSo) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  TempDir dir("kernupgrade");
  TempDir bin("fakebin");
  ScopedMetrics metrics;
  std::string real = *jit::discover_toolchain();
  std::string wrapper = bin.path() + "/fakecc";
  auto write_wrapper = [&](const std::string& version) {
    std::ofstream out(wrapper, std::ios::trunc);
    out << "#!/bin/sh\n"
        << "if [ \"$1\" = \"--version\" ]; then echo '" << version
        << "'; exit 0; fi\n"
        << "exec '" << real << "' \"$@\"\n";
    out.close();
    ::chmod(wrapper.c_str(), 0755);
  };
  // The two version banners differ in LENGTH, not just content: the
  // identity memo re-probes on (mtime, size) change, and coarse mtime
  // granularity could otherwise hide a same-second rewrite.
  write_wrapper("fakecc 1.0");

  jit::JitOptions jo;
  jo.cache_dir = dir.path();
  jo.compiler = wrapper;
  loopir::LoopNest nest = core::example42(12);

  {
    Compiler c;
    auto loop = c.compile(nest);
    ASSERT_TRUE(loop.has_value());
    auto k = loop->jit(jo);
    ASSERT_TRUE(k.has_value()) << k.error().to_string();
  }
  // Same toolchain, fresh session: hit, zero builds.
  i64 builds = counter_value("vdep_jit_builds_total");
  {
    Compiler c;
    auto loop = c.compile(nest);
    ASSERT_TRUE(loop.has_value());
    ASSERT_TRUE(loop->jit(jo).has_value());
    EXPECT_EQ(counter_value("vdep_jit_builds_total"), builds);
  }
  // "Upgrade" the toolchain: new version banner, same path. The cache must
  // miss and rebuild — serving the old .so would pin the old compiler's
  // codegen forever.
  write_wrapper("fakecc 2.0 (rebuilt banner, longer on purpose)");
  builds = counter_value("vdep_jit_builds_total");
  Compiler c;
  auto loop = c.compile(nest);
  ASSERT_TRUE(loop.has_value());
  auto k = loop->jit(jo);
  ASSERT_TRUE(k.has_value()) << k.error().to_string();
  EXPECT_GT(counter_value("vdep_jit_builds_total"), builds);
}

// -------------------------------------------------------------- eviction

TEST(DiskCacheEviction, OldestEntriesGoFirstAndCapHolds) {
  TempDir dir("evict");
  Compiler plain;
  auto loop = plain.compile(core::example42(10));
  ASSERT_TRUE(loop.has_value());

  // A tiny cap: a handful of ~100-byte plan entries overflow it.
  auto cache = cache::DiskCache::open(dir.path(), 512);
  ASSERT_NE(cache, nullptr);
  std::vector<std::string> keys;
  for (int k = 0; k < 12; ++k) {
    keys.push_back("key-" + std::to_string(k));
    ASSERT_TRUE(
        cache->store_plan(keys.back(), loop->analysis(), loop->plan()));
  }
  EXPECT_LE(cache->usage().bytes, 512u);
  EXPECT_GT(cache->stats().evictions, 0);
  // The newest entry survives; the oldest is gone.
  EXPECT_TRUE(cache->load_plan(keys.back()).has_value());
  EXPECT_FALSE(cache->load_plan(keys.front()).has_value());
}

TEST(DiskCacheEviction, ClearEmptiesAndVerifyPassesOnHealthyCache) {
  TempDir dir("mgmt");
  Compiler plain;
  auto loop = plain.compile(core::example41(10));
  ASSERT_TRUE(loop.has_value());
  auto cache = cache::DiskCache::open(dir.path());
  ASSERT_NE(cache, nullptr);
  ASSERT_TRUE(cache->store_plan("k", loop->analysis(), loop->plan()));

  auto report = cache->verify();
  EXPECT_EQ(report.plans_ok, 1u);
  EXPECT_TRUE(report.ok());

  EXPECT_GT(cache->clear(), 0u);
  EXPECT_EQ(cache->usage().bytes, 0u);
  EXPECT_FALSE(cache->load_plan("k").has_value());
}

// ------------------------------------------------------ multi-process use

TEST(DiskCacheForkStress, ConcurrentProcessesShareOneCacheBitIdentically) {
  TempDir dir("forkstress");
  constexpr int kProcs = 6;
  loopir::LoopNest nest = core::example42(18);

  // The expected result, computed in-process.
  exec::ArrayStore ref(nest);
  ref.fill_pattern();
  exec::run_sequential(nest, ref);

  const bool jit = have_toolchain();
  for (int round = 0; round < 2; ++round) {  // cold herd, then warm herd
    int pipefd[2];
    ASSERT_EQ(::pipe(pipefd), 0);
    std::vector<pid_t> kids;
    for (int p = 0; p < kProcs; ++p) {
      pid_t pid = ::fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        // Child: fresh session against the shared cache directory; all of
        // them race compile + publish in round 0 and all must hit in
        // round 1. Plain exit codes — no gtest in the child.
        ::close(pipefd[0]);
        int status = 1;
        {
          Compiler c(CompileOptions{}.disk_cache(dir.path()));
          auto loop = c.compile(nest);
          if (loop) {
            exec::ArrayStore got(nest);
            got.fill_pattern();
            ExecPolicy policy;
            policy.threads(2).backend(jit ? ExecBackend::kJit
                                          : ExecBackend::kCompiled);
            jit::JitOptions jo;
            jo.cache_dir = dir.path();
            policy.jit_options(jo);
            auto rep = loop->execute(policy, got);
            if (rep && ref == got) status = 0;
          }
        }
        ::close(pipefd[1]);
        ::_exit(status);
      }
      kids.push_back(pid);
    }
    ::close(pipefd[1]);
    ::close(pipefd[0]);
    for (pid_t pid : kids) {
      int status = 0;
      ASSERT_EQ(::waitpid(pid, &status, 0), pid);
      EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "child " << pid << " diverged or failed in round " << round;
    }
  }

  // After both herds the cache holds exactly one plan for the structure
  // (all writers collapsed onto one key) and it still verifies.
  auto cache = cache::DiskCache::open(dir.path());
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->usage().plan_entries, 1u);
  EXPECT_TRUE(cache->verify().ok());
}

// ------------------------------------------- stale workdir sweep (bugfix)

TEST(WorkDirSweep, DeadOwnersDirectoryIsReclaimedLiveOnesSurvive) {
  TempDir base("sweepbase");

  // A guaranteed-dead PID: fork a child that exits immediately and reap it.
  pid_t dead = ::fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) ::_exit(0);
  int status = 0;
  ASSERT_EQ(::waitpid(dead, &status, 0), dead);

  fs::path stale = fs::path(base.path()) / "vdep-jit-stale0";
  fs::create_directories(stale);
  std::ofstream(stale / "owner.pid") << dead << "\n";
  std::ofstream(stale / "kernel.c") << "int x;\n";

  fs::path live = fs::path(base.path()) / "vdep-jit-live00";
  fs::create_directories(live);
  std::ofstream(live / "owner.pid") << ::getpid() << "\n";

  // A fresh unstamped directory: ambiguous, must NOT be swept (could be a
  // live compile from an older build).
  fs::path young = fs::path(base.path()) / "vdep-jit-young0";
  fs::create_directories(young);

  EXPECT_EQ(jit::sweep_stale_work_dirs(base.path()), 1u);
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(live));
  EXPECT_TRUE(fs::exists(young));

  // Once per (process, root): a second call is a no-op by design.
  fs::create_directories(stale);
  std::ofstream(stale / "owner.pid") << dead << "\n";
  EXPECT_EQ(jit::sweep_stale_work_dirs(base.path()), 0u);
}

TEST(WorkDirSweep, ToolchainCompilerConstructionSweepsItsWorkRoot) {
  TempDir base("sweepctor");
  pid_t dead = ::fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) ::_exit(0);
  int status = 0;
  ASSERT_EQ(::waitpid(dead, &status, 0), dead);

  fs::path stale = fs::path(base.path()) / "vdep-jit-crash0";
  fs::create_directories(stale);
  std::ofstream(stale / "owner.pid") << dead << "\n";

  jit::JitOptions jo;
  jo.work_dir = base.path();
  jit::ToolchainCompiler tc(jo);
  EXPECT_FALSE(fs::exists(stale));
}

TEST(WorkDirSweep, CompileLeavesNoWorkDirBehind) {
  if (!have_toolchain()) GTEST_SKIP() << "no C toolchain";
  TempDir base("leakcheck");
  loopir::LoopNest nest = core::example42(10);
  jit::JitOptions jo;
  jo.work_dir = base.path();
  jit::ToolchainCompiler tc(jo);
  auto k = tc.compile(nest, trans::plan_transform(dep::compute_pdm(nest)));
  ASSERT_TRUE(k.has_value()) << k.error().to_string();
  std::size_t leftovers = 0;
  for (const auto& de : fs::directory_iterator(base.path())) {
    (void)de;
    ++leftovers;
  }
  EXPECT_EQ(leftovers, 0u);
}

// ------------------------------------------------- PATH hygiene (bugfix)

TEST(ToolchainDiscovery, EmptyAndRelativePathEntriesAreNeverCandidates) {
  // Plant an executable "cc" in a directory, then reference it through a
  // PATH whose entries are empty ("::" = CWD) and relative. Discovery must
  // refuse both — picking a compiler out of the CWD is a planting vector.
  TempDir trap("pathtrap");
  std::string cc = trap.path() + "/cc";
  {
    std::ofstream out(cc);
    out << "#!/bin/sh\nexit 0\n";
  }
  ::chmod(cc.c_str(), 0755);

  std::vector<char> oldcwd(4096);
  ASSERT_NE(::getcwd(oldcwd.data(), oldcwd.size()), nullptr);
  ASSERT_EQ(::chdir(trap.path().c_str()), 0);

  {
    ScopedEnv vdep_cc("VDEP_CC", nullptr);
    // Leading ':' = empty entry = CWD, where ./cc exists and is executable.
    ScopedEnv path("PATH", ":.");
    EXPECT_FALSE(jit::discover_toolchain().has_value());
  }
  {
    ScopedEnv vdep_cc("VDEP_CC", nullptr);
    // A relative entry resolves against the CWD: same trap, same answer.
    ScopedEnv path("PATH", "subdir:.:nonexistent");
    EXPECT_FALSE(jit::discover_toolchain().has_value());
  }
  {
    ScopedEnv vdep_cc("VDEP_CC", nullptr);
    // Absolute entries still work.
    ScopedEnv path("PATH", trap.path().c_str());
    auto found = jit::discover_toolchain();
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, cc);
  }
  ASSERT_EQ(::chdir(oldcwd.data()), 0);
}

// -------------------------------------------- key anatomy (bugfix sweep)

TEST(CacheKeys, LengthPrefixedFieldsCannotForgeBoundaries) {
  // The historical collision: concatenating free-form fields with
  // separators lets one field impersonate another's framing.
  jit::JitOptions a, b;
  a.compiler = "x;flags=";
  a.extra_flags = "y";
  b.compiler = "x";
  b.extra_flags = ";flags=y";  // old scheme: same "cc=x;flags=...;..." text
  EXPECT_NE(a.memo_key(), b.memo_key());

  std::string k1 = cache::kernel_cache_key("id", "fp", "bounds", "opt", "tc");
  std::string k2 = cache::kernel_cache_key("id", "fpbounds", "", "opt", "tc");
  EXPECT_NE(k1, k2);
}

TEST(CacheKeys, PlanAndKernelKeyspacesAreDisjoint) {
  EXPECT_NE(cache::plan_cache_key("id", "k"),
            cache::kernel_cache_key("id", "k", "", "", ""));
}

}  // namespace
}  // namespace vdep
