// Tests for constraint systems and exact Fourier-Motzkin elimination,
// including brute-force cross-validation of extracted loop bounds.
#include <gtest/gtest.h>

#include <set>

#include "loopir/builder.h"
#include "poly/constraints.h"
#include "poly/fourier_motzkin.h"
#include "support/rng.h"

namespace vdep::poly {
namespace {

using loopir::AffineExpr;
using loopir::Bound;
using loopir::LoopNest;
using loopir::LoopNestBuilder;

// Enumerate all integer points of a system by brute force over a box.
std::set<Vec> brute_points(const ConstraintSystem& cs, i64 lo, i64 hi) {
  std::set<Vec> pts;
  VDEP_REQUIRE(cs.dim() >= 1 && cs.dim() <= 3, "brute_points supports dim 1..3");
  Vec p(static_cast<std::size_t>(cs.dim()));
  for (i64 a = lo; a <= hi; ++a) {
    p[0] = a;
    if (cs.dim() == 1) {
      if (cs.satisfied_by(p)) pts.insert(p);
      continue;
    }
    for (i64 b = lo; b <= hi; ++b) {
      p[1] = b;
      if (cs.dim() == 2) {
        if (cs.satisfied_by(p)) pts.insert(p);
        continue;
      }
      for (i64 c = lo; c <= hi; ++c) {
        p[2] = c;
        if (cs.satisfied_by(p)) pts.insert(p);
      }
    }
  }
  return pts;
}

// Enumerate the points visited by extracted bounds (outer to inner).
std::set<Vec> bound_points(const NestBounds& nb, int dim) {
  std::set<Vec> pts;
  Vec p(static_cast<std::size_t>(dim), 0);
  std::function<void(int)> rec = [&](int k) {
    if (k == dim) {
      pts.insert(p);
      return;
    }
    i64 lo = nb.lower[static_cast<std::size_t>(k)].eval_lower(p);
    i64 hi = nb.upper[static_cast<std::size_t>(k)].eval_upper(p);
    for (i64 v = lo; v <= hi; ++v) {
      p[static_cast<std::size_t>(k)] = v;
      rec(k + 1);
    }
    p[static_cast<std::size_t>(k)] = 0;
  };
  rec(0);
  return pts;
}

TEST(Constraint, SatisfactionAndNormalization) {
  Constraint c{Vec{2, 4}, 7};
  EXPECT_TRUE(c.satisfied_by(Vec{1, 1}));    // 6 <= 7
  EXPECT_FALSE(c.satisfied_by(Vec{2, 1}));   // 8 > 7
  Constraint n = c.normalized();
  EXPECT_EQ(n.coeffs, (Vec{1, 2}));
  EXPECT_EQ(n.rhs, 3);  // floor(7/2) — tighter but equivalent over Z
  for (i64 a = -5; a <= 5; ++a)
    for (i64 b = -5; b <= 5; ++b)
      EXPECT_EQ(c.satisfied_by(Vec{a, b}), n.satisfied_by(Vec{a, b}));
}

TEST(ConstraintSystem, BoxAndMembership) {
  ConstraintSystem cs(2);
  cs.add_box(0, -2, 3);
  cs.add_box(1, 0, 1);
  EXPECT_TRUE(cs.satisfied_by(Vec{3, 1}));
  EXPECT_FALSE(cs.satisfied_by(Vec{4, 0}));
  EXPECT_FALSE(cs.satisfied_by(Vec{0, -1}));
  EXPECT_EQ(brute_points(cs, -5, 5).size(), 12u);
}

TEST(ConstraintSystem, FromNestMatchesEnumeration) {
  LoopNestBuilder b;
  b.loop("i1", 0, 4);
  b.loop("i2", Bound(AffineExpr(Vec{1, 0}, 0)), Bound(AffineExpr::constant(2, 4)));
  b.array("A", {{0, 4}});
  b.assign(b.ref("A", {b.idx(1)}), loopir::Expr::constant(0));
  LoopNest nest = b.build();
  ConstraintSystem cs = ConstraintSystem::from_nest(nest);
  std::set<Vec> pts = brute_points(cs, -2, 6);
  EXPECT_EQ(pts.size(), 15u);
  for (const Vec& i : nest.iterations()) EXPECT_TRUE(pts.count(i));
}

TEST(ConstraintSystem, TransformedPreservesMembership) {
  ConstraintSystem cs(2);
  cs.add_box(0, -3, 3);
  cs.add_box(1, -2, 2);
  Mat t = Mat::from_rows({{1, 1}, {1, 0}});  // j = i*T
  ConstraintSystem ct = cs.transformed(t);
  for (i64 a = -3; a <= 3; ++a)
    for (i64 b = -2; b <= 2; ++b) {
      Vec i{a, b};
      Vec j = intlin::vec_mat_mul(i, t);
      EXPECT_TRUE(ct.satisfied_by(j));
    }
  // Points outside the image must not satisfy.
  int count = 0;
  for (i64 a = -10; a <= 10; ++a)
    for (i64 b = -10; b <= 10; ++b)
      if (ct.satisfied_by(Vec{a, b})) ++count;
  EXPECT_EQ(count, 7 * 5);
}

TEST(ConstraintSystem, SimplifyMergesDuplicates) {
  ConstraintSystem cs(1);
  cs.add(Vec{1}, 5);
  cs.add(Vec{1}, 3);
  cs.add(Vec{1}, 7);
  cs.simplify();
  ASSERT_EQ(cs.constraints().size(), 1u);
  EXPECT_EQ(cs.constraints()[0].rhs, 3);
}

TEST(FourierMotzkin, EliminateKeepsShadow) {
  // Triangle: 0 <= x <= y <= 4. Projecting out y leaves 0 <= x <= 4.
  ConstraintSystem cs(2);
  cs.add(Vec{-1, 0}, 0);   // -x <= 0
  cs.add(Vec{1, -1}, 0);   // x - y <= 0
  cs.add(Vec{0, 1}, 4);    // y <= 4
  ConstraintSystem p = eliminate_variable(cs, 1);
  for (i64 x = -3; x <= 7; ++x) {
    bool member = x >= 0 && x <= 4;
    EXPECT_EQ(p.satisfied_by(Vec{x, 0}), member) << x;
  }
}

TEST(FourierMotzkin, InfeasibleDetected) {
  ConstraintSystem cs(2);
  cs.add(Vec{1, 0}, -1);   // x <= -1
  cs.add(Vec{-1, 0}, -1);  // x >= 1
  EXPECT_TRUE(relaxation_infeasible(cs));
  ConstraintSystem ok(2);
  ok.add_box(0, 0, 1);
  ok.add_box(1, 0, 1);
  EXPECT_FALSE(relaxation_infeasible(ok));
}

TEST(FourierMotzkin, ExtractBoundsRectangle) {
  ConstraintSystem cs(2);
  cs.add_box(0, -2, 5);
  cs.add_box(1, 1, 3);
  NestBounds nb = extract_bounds(cs);
  EXPECT_EQ(nb.lower[0].eval_lower(Vec{0, 0}), -2);
  EXPECT_EQ(nb.upper[0].eval_upper(Vec{0, 0}), 5);
  EXPECT_EQ(nb.lower[1].eval_lower(Vec{0, 0}), 1);
  EXPECT_EQ(nb.upper[1].eval_upper(Vec{0, 0}), 3);
}

TEST(FourierMotzkin, ExtractBoundsSkewedParallelogram) {
  // Image of the box [-3,3]x[-2,2] under j = i*T, T = [[1,1],[1,0]]:
  // j2 = i1 in [-3,3]; j1 = i1+i2 with j1 - j2 = i2 in [-2,2].
  ConstraintSystem cs(2);
  cs.add_box(0, -3, 3);
  cs.add_box(1, -2, 2);
  ConstraintSystem ct = cs.transformed(Mat::from_rows({{1, 1}, {1, 0}}));
  NestBounds nb = extract_bounds(ct);
  std::set<Vec> got = bound_points(nb, 2);
  std::set<Vec> expected;
  for (i64 a = -3; a <= 3; ++a)
    for (i64 b = -2; b <= 2; ++b)
      expected.insert(Vec{a + b, a});
  EXPECT_EQ(got, expected);
}

TEST(FourierMotzkinProperty, RandomSystemsProjectExactly) {
  // FM projection over the rationals must contain exactly the integer points
  // whose fibers are nonempty *in the relaxation*; for systems built from
  // boxes and unimodular images the integer shadow equals the rational one,
  // which is what loop-bound generation relies on. Verify point sets match.
  Rng rng(271828);
  for (int iter = 0; iter < 60; ++iter) {
    ConstraintSystem cs(2);
    cs.add_box(0, rng.uniform(-4, 0), rng.uniform(1, 4));
    cs.add_box(1, rng.uniform(-4, 0), rng.uniform(1, 4));
    // Random unimodular transform built from elementary column ops.
    Mat t = Mat::identity(2);
    for (int k = 0; k < 4; ++k) {
      if (rng.chance(1, 3)) {
        t.swap_cols(0, 1);
      } else {
        int dst = static_cast<int>(rng.uniform(0, 1));
        t.add_col_multiple(dst, dst ^ 1, rng.uniform(-2, 2));
      }
    }
    if (!intlin::is_unimodular(t)) continue;
    ConstraintSystem ct = cs.transformed(t);
    NestBounds nb = extract_bounds(ct);
    std::set<Vec> got = bound_points(nb, 2);
    std::set<Vec> expected = brute_points(ct, -40, 40);
    EXPECT_EQ(got, expected) << "T=" << t.to_string();
  }
}

TEST(FourierMotzkinProperty, ThreeDeepTriangularBounds) {
  // 0 <= x <= 3, x <= y <= 3, y <= z <= x + y.
  ConstraintSystem cs(3);
  cs.add(Vec{-1, 0, 0}, 0);
  cs.add(Vec{1, 0, 0}, 3);
  cs.add(Vec{1, -1, 0}, 0);
  cs.add(Vec{0, 1, 0}, 3);
  cs.add(Vec{0, 1, -1}, 0);
  cs.add(Vec{-1, -1, 1}, 0);
  NestBounds nb = extract_bounds(cs);
  std::set<Vec> got = bound_points(nb, 3);
  std::set<Vec> expected = brute_points(cs, -2, 8);
  EXPECT_EQ(got, expected);
}

TEST(FourierMotzkin, VariableRange) {
  ConstraintSystem cs(2);
  cs.add_box(0, -3, 3);
  cs.add_box(1, -2, 2);
  ConstraintSystem ct = cs.transformed(Mat::from_rows({{1, 1}, {1, 0}}));
  auto r0 = ct.variable_range(0);  // j1 = i1 + i2 in [-5, 5]
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->first, -5);
  EXPECT_EQ(r0->second, 5);
  auto r1 = ct.variable_range(1);  // j2 = i1 in [-3, 3]
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->first, -3);
  EXPECT_EQ(r1->second, 3);
}

TEST(FourierMotzkin, UnboundedRangeReturnsNullopt) {
  ConstraintSystem cs(2);
  cs.add(Vec{1, 0}, 5);  // only an upper bound on x
  EXPECT_FALSE(cs.variable_range(0).has_value());
}

}  // namespace
}  // namespace vdep::poly
